// Umbrella header for the Sharon library: shared online event sequence
// aggregation (Poppe et al., ICDE 2018).
//
// Typical use (see examples/quickstart.cpp):
//
//   Workload workload = ...;                       // parse or build queries
//   Scenario stream = GenerateTaxi({});            // or your own events
//   CostModel cm(EstimateRates(stream));           // per-type rates
//   OptimizerResult opt = OptimizeSharon(workload, cm);
//   Engine engine(workload, opt.plan);             // shared executor
//   RunStats stats = engine.Run(stream.events, stream.duration);
//   engine.results().Value(query_id, window_id, group, AggFunction::kCountStar);

#ifndef SHARON_SHARON_H_
#define SHARON_SHARON_H_

#include "src/adaptive/plan_manager.h"
#include "src/checkpoint/checkpoint.h"
#include "src/common/alloc_stats.h"
#include "src/common/event.h"
#include "src/common/flat_map.h"
#include "src/common/inline_attrs.h"
#include "src/common/metrics.h"
#include "src/common/ring_deque.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/schema.h"
#include "src/common/time.h"
#include "src/common/watermark.h"
#include "src/exec/chain_runner.h"
#include "src/exec/engine.h"
#include "src/exec/multi_engine.h"
#include "src/exec/result.h"
#include "src/exec/segment_counter.h"
#include "src/graph/expansion.h"
#include "src/graph/export.h"
#include "src/graph/gwmin.h"
#include "src/graph/reduction.h"
#include "src/graph/sharon_graph.h"
#include "src/planner/optimizer.h"
#include "src/planner/plan_finder.h"
#include "src/query/aggregate.h"
#include "src/query/parser.h"
#include "src/query/pattern.h"
#include "src/query/query.h"
#include "src/query/window.h"
#include "src/runtime/partition.h"
#include "src/runtime/plan_swap.h"
#include "src/runtime/result_merger.h"
#include "src/runtime/runtime_stats.h"
#include "src/runtime/shard.h"
#include "src/runtime/sharded_runtime.h"
#include "src/runtime/spsc_queue.h"
#include "src/sharing/candidate.h"
#include "src/sharing/ccspan.h"
#include "src/sharing/cost_model.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/drift.h"
#include "src/streamgen/ecommerce.h"
#include "src/streamgen/fixtures.h"
#include "src/streamgen/linear_road.h"
#include "src/streamgen/rate_monitor.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/replay.h"
#include "src/streamgen/scenario.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"
#include "src/twostep/reference.h"
#include "src/twostep/two_step.h"

#endif  // SHARON_SHARON_H_
