// Per-(query, window, group) result accumulation shared by all executors,
// so that online engines and two-step baselines can be compared result-for-
// result in tests.
//
// Storage layout (the hot-path optimization, DESIGN.md "Hot-path memory
// layout"): cells are grouped into ROWS keyed by (query, group) in a
// FlatMap (src/common/flat_map.h), each row holding a DENSE array of
// AggStates indexed by window id. Window ids are dense integers that
// advance with stream time, so an emission into windows [j0, j1] is ONE
// small-table probe (the row set is #queries x #groups, cache-resident)
// followed by sequential array writes — instead of one probe of an
// ever-growing (query, window, group) hash map per window. Watermark
// finalization extracts a PREFIX of each row, which keeps rows compact
// and allocation-free in steady state.

#ifndef SHARON_EXEC_RESULT_H_
#define SHARON_EXEC_RESULT_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/flat_map.h"
#include "src/query/aggregate.h"
#include "src/query/query.h"
#include "src/query/window.h"

namespace sharon {

/// Identifies one aggregation result cell.
struct ResultKey {
  QueryId query = 0;
  WindowId window = 0;
  AttrValue group = 0;

  bool operator==(const ResultKey&) const = default;
};

struct ResultKeyHash {
  size_t operator()(const ResultKey& k) const {
    uint64_t h = k.query;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(k.window);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(k.group);
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

/// Accumulates AggStates per result cell.
class ResultCollector {
 public:
  void Add(QueryId q, WindowId w, AttrValue g, const AggState& delta) {
    if (delta.IsZero()) return;
    AggState& cell = CellFor(rows_[RowKey{q, g}], w);
    if (cell.IsZero()) ++size_;  // deltas are non-zero: cell becomes live
    cell.MergeFrom(delta);
  }

  /// Aggregate state of a cell; Zero if absent.
  AggState Get(QueryId q, WindowId w, AttrValue g) const {
    const AggState* cell = FindCell(q, w, g);
    return cell ? *cell : AggState::Zero();
  }

  /// The cell's state, or nullptr when the cell was never written (lets
  /// callers distinguish "absent" from a legitimately zero-valued cell).
  const AggState* FindCell(QueryId q, WindowId w, AttrValue g) const {
    auto it = rows_.find(RowKey{q, g});
    if (it == rows_.end()) return nullptr;
    const Row& row = it->second;
    if (w < row.base || w - row.base >= static_cast<WindowId>(row.Width())) {
      return nullptr;
    }
    const AggState& cell = row.slots[row.head + (w - row.base)];
    return cell.IsZero() ? nullptr : &cell;
  }

  /// Final numeric value of a cell under `fn`.
  double Value(QueryId q, WindowId w, AttrValue g, AggFunction fn) const {
    return Get(q, w, g).Final(fn);
  }

  /// Visits every live cell as (ResultKey, AggState). Iteration order is
  /// unspecified.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    for (const auto& [key, row] : rows_) {
      for (size_t i = row.head; i < row.slots.size(); ++i) {
        if (row.slots[i].IsZero()) continue;
        fn(ResultKey{key.query,
                     row.base + static_cast<WindowId>(i - row.head),
                     key.group},
           row.slots[i]);
      }
    }
  }

  /// Checkpoint-restore primitive (src/checkpoint/): installs one cell
  /// VERBATIM. Unlike Add, the state is assigned rather than merged, so a
  /// checkpointed cell restores bit-identical (merging into a zero cell
  /// would rewrite -0.0 sums and NaN payloads). Restore targets start
  /// empty, so overwriting a live cell indicates a corrupt checkpoint;
  /// the cell is replaced and the count stays consistent regardless.
  void RestoreCell(QueryId q, WindowId w, AttrValue g, const AggState& state) {
    if (state.IsZero()) return;
    AggState& cell = CellFor(rows_[RowKey{q, g}], w);
    if (cell.IsZero()) ++size_;
    cell = state;
  }

  /// Number of live (non-zero) cells.
  size_t size() const { return size_; }

  /// Drops every cell but keeps the rows and their slot capacity, so a
  /// drain-refill cycle (DrainFinalized) allocates nothing in steady
  /// state. Empty rows of groups that stay quiet are reclaimed by
  /// ExtractWindowsBefore, not here.
  void Clear() {
    for (auto& [key, row] : rows_) {
      row.head = 0;
      row.slots.clear();  // keeps capacity
    }
    size_ = 0;
  }

  /// Moves every cell with window id < `limit` into `into`, merging into
  /// any existing cells there. Returns {cells moved, distinct windows
  /// moved}. This is the watermark finalization primitive: a window's
  /// staged cells transfer to the finalized store exactly once, because
  /// extraction empties them here and finalization limits are monotone.
  std::pair<size_t, size_t> ExtractWindowsBefore(WindowId limit,
                                                 ResultCollector& into) {
    size_t cells = 0;
    window_scratch_.clear();
    for (auto it = rows_.begin(); it != rows_.end();) {
      Row& row = it->second;
      const size_t width = row.Width();
      const size_t take =
          limit <= row.base
              ? 0
              : std::min(width, static_cast<size_t>(limit - row.base));
      for (size_t i = 0; i < take; ++i) {
        AggState& cell = row.slots[row.head + i];
        if (cell.IsZero()) continue;
        const WindowId w = row.base + static_cast<WindowId>(i);
        into.Add(it->first.query, w, it->first.group, cell);
        window_scratch_.push_back(w);
        ++cells;
        --size_;
      }
      if (take == width) {
        it = rows_.erase(it);  // row fully drained; revisits are harmless
        continue;
      }
      if (take > 0) {
        row.head += take;
        row.base += static_cast<WindowId>(take);
        row.CompactIfSparse();
      }
      ++it;
    }
    std::sort(window_scratch_.begin(), window_scratch_.end());
    const size_t windows = static_cast<size_t>(
        std::unique(window_scratch_.begin(), window_scratch_.end()) -
        window_scratch_.begin());
    return {cells, windows};
  }

  /// Number of distinct window ids present across live cells.
  size_t NumWindows() const {
    std::unordered_set<WindowId> windows;
    ForEachCell([&](const ResultKey& key, const AggState&) {
      windows.insert(key.window);
    });
    return windows.size();
  }

  size_t EstimatedBytes() const {
    size_t bytes = 0;
    for (const auto& [key, row] : rows_) {
      bytes += sizeof(RowKey) + sizeof(Row) + 16;
      bytes += row.Width() * sizeof(AggState);
    }
    return bytes;
  }

 private:
  struct RowKey {
    QueryId query = 0;
    AttrValue group = 0;

    bool operator==(const RowKey&) const = default;
  };

  struct RowKeyHash {
    size_t operator()(const RowKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.group) * 0x9e3779b97f4a7c15ULL +
                   k.query;
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      return static_cast<size_t>(h ^ (h >> 27));
    }
  };

  /// Dense window range [base, base + Width()) for one (query, group):
  /// slots[head + i] is window base + i. Extraction advances head/base;
  /// CompactIfSparse reclaims the dead prefix without reallocating.
  struct Row {
    WindowId base = 0;
    size_t head = 0;
    std::vector<AggState> slots;

    size_t Width() const { return slots.size() - head; }

    void CompactIfSparse() {
      if (head > 0 && head >= slots.size() / 2) {
        slots.erase(slots.begin(),
                    slots.begin() + static_cast<ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  /// The slot of window `w` in `row`, growing the range as needed.
  AggState& CellFor(Row& row, WindowId w) {
    if (row.slots.size() == row.head) {  // empty row: anchor at w
      row.head = 0;
      row.slots.clear();
      row.base = w;
      row.slots.emplace_back();
      return row.slots[0];
    }
    if (w < row.base) {  // rare: emission behind the row's first window
      const size_t need = static_cast<size_t>(row.base - w);
      if (row.head >= need) {
        // Reclaim dead-prefix slots; they hold stale extracted states
        // and must be zeroed before re-entering the valid range.
        row.head -= need;
        for (size_t i = 0; i < need; ++i) row.slots[row.head + i] = AggState();
      } else {
        for (size_t i = 0; i < row.head; ++i) row.slots[i] = AggState();
        row.slots.insert(row.slots.begin(), need - row.head, AggState());
        row.head = 0;
      }
      row.base = w;
      return row.slots[row.head];
    }
    const size_t idx = row.head + static_cast<size_t>(w - row.base);
    if (idx >= row.slots.size()) {
      // Grow the valid range in chunks: trailing zero slots are skipped
      // by every reader, and the coarser growth keeps the per-window
      // resize bookkeeping off the emission path.
      row.slots.resize(idx + 1 + kRowGrowSlack);
    }
    return row.slots[idx];
  }

  static constexpr size_t kRowGrowSlack = 7;

  FlatMap<RowKey, Row, RowKeyHash> rows_;
  size_t size_ = 0;  ///< live (non-zero) cells across rows
  /// ExtractWindowsBefore scratch (distinct-window count without a
  /// per-call set allocation); capacity persists across watermarks.
  std::vector<WindowId> window_scratch_;
};

}  // namespace sharon

#endif  // SHARON_EXEC_RESULT_H_
