// Per-(query, window, group) result accumulation shared by all executors,
// so that online engines and two-step baselines can be compared result-for-
// result in tests.

#ifndef SHARON_EXEC_RESULT_H_
#define SHARON_EXEC_RESULT_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/query/aggregate.h"
#include "src/query/query.h"
#include "src/query/window.h"

namespace sharon {

/// Identifies one aggregation result cell.
struct ResultKey {
  QueryId query = 0;
  WindowId window = 0;
  AttrValue group = 0;

  bool operator==(const ResultKey&) const = default;
};

struct ResultKeyHash {
  size_t operator()(const ResultKey& k) const {
    uint64_t h = k.query;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(k.window);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(k.group);
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

/// Accumulates AggStates per result cell.
class ResultCollector {
 public:
  void Add(QueryId q, WindowId w, AttrValue g, const AggState& delta) {
    if (delta.IsZero()) return;
    cells_[ResultKey{q, w, g}].MergeFrom(delta);
  }

  /// Aggregate state of a cell; Zero if absent.
  AggState Get(QueryId q, WindowId w, AttrValue g) const {
    auto it = cells_.find(ResultKey{q, w, g});
    return it == cells_.end() ? AggState::Zero() : it->second;
  }

  /// Final numeric value of a cell under `fn`.
  double Value(QueryId q, WindowId w, AttrValue g, AggFunction fn) const {
    return Get(q, w, g).Final(fn);
  }

  const std::unordered_map<ResultKey, AggState, ResultKeyHash>& cells() const {
    return cells_;
  }

  size_t size() const { return cells_.size(); }
  void Clear() { cells_.clear(); }

  /// Moves every cell with window id < `limit` into `into`, merging into
  /// any existing cells there. Returns {cells moved, distinct windows
  /// moved}. This is the watermark finalization primitive: a window's
  /// staged cells transfer to the finalized store exactly once, because
  /// extraction empties them here and finalization limits are monotone.
  std::pair<size_t, size_t> ExtractWindowsBefore(WindowId limit,
                                                 ResultCollector& into) {
    size_t cells = 0;
    std::unordered_set<WindowId> windows;
    for (auto it = cells_.begin(); it != cells_.end();) {
      if (it->first.window < limit) {
        into.cells_[it->first].MergeFrom(it->second);
        windows.insert(it->first.window);
        ++cells;
        it = cells_.erase(it);
      } else {
        ++it;
      }
    }
    return {cells, windows.size()};
  }

  /// Number of distinct window ids present across cells.
  size_t NumWindows() const {
    std::unordered_set<WindowId> windows;
    for (const auto& [key, state] : cells_) windows.insert(key.window);
    return windows.size();
  }

  size_t EstimatedBytes() const {
    return cells_.size() * (sizeof(ResultKey) + sizeof(AggState) + 16);
  }

 private:
  std::unordered_map<ResultKey, AggState, ResultKeyHash> cells_;
};

}  // namespace sharon

#endif  // SHARON_EXEC_RESULT_H_
