// The Sharon runtime executor (§2.2, §3).
//
// An Engine evaluates a whole workload against a stream according to a
// sharing plan:
//   - the empty plan yields the Non-Shared method — every query runs its
//     own A-Seq prefix-count machine (one single-segment chain per query);
//   - a non-empty plan compiles each query into a chain of segments; a
//     segment covered by a plan candidate points at a *shared*
//     SegmentCounter evaluated once per (pattern, projected aggregation)
//     for all subscribing queries, the gaps get private counters.
//
// The stream is partitioned by the workload's common equivalence/grouping
// attribute (§2.1 assumption 2, §7.2): every group value lazily gets its
// own counters + chains instantiated from the compiled template.

#ifndef SHARON_EXEC_ENGINE_H_
#define SHARON_EXEC_ENGINE_H_

#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/metrics.h"
#include "src/common/serde.h"
#include "src/common/watermark.h"
#include "src/exec/chain_runner.h"
#include "src/exec/result.h"
#include "src/exec/segment_counter.h"
#include "src/obs/engine_obs.h"
#include "src/sharing/candidate.h"

namespace sharon {

/// Restricts an aggregation spec to a segment pattern: segments that do not
/// contain the aggregation target contribute pure counts, which lets them
/// be shared across queries with different RETURN clauses (see DESIGN.md).
AggSpec ProjectSpec(const AggSpec& spec, const Pattern& segment);

/// The plan compiled into counter/chain templates.
struct CompiledEngine {
  struct CounterSpec {
    Pattern pattern;
    AggSpec spec;
    bool shared = false;
  };
  struct ChainSpec {
    /// All queries evaluated by this chain: queries whose plans compile to
    /// the same segment sequence share the chain outright (the paper's
    /// whole-pattern sharing has zero combination cost, Eq. 5).
    std::vector<QueryId> queries;
    std::vector<uint32_t> counter_idx;  ///< segments in pattern order
  };

  std::vector<CounterSpec> counters;
  std::vector<ChainSpec> chains;
  /// Dispatch lists indexed by event type id.
  std::vector<std::vector<uint32_t>> counters_by_type;
  std::vector<std::vector<uint32_t>> chains_by_type;
  WindowSpec window;
  AttrIndex partition = kNoAttr;
};

/// Compiles `plan` over `workload`. Returns an empty string on success or
/// a diagnostic when the plan is unusable (overlapping candidates in one
/// query, pattern not contained in a member query, non-uniform workload).
std::string CompilePlan(const Workload& workload, const SharingPlan& plan,
                        CompiledEngine* out);

/// Immutable compiled plan shared between executors. The compiled templates
/// are read-only at run time, so any number of engines — in particular the
/// per-shard engines of runtime::ShardedRuntime — can instantiate their
/// group state from one compilation pass.
using CompiledPlanHandle = std::shared_ptr<const CompiledEngine>;

/// Compiles once for reuse across engines/shards. Returns nullptr and sets
/// `*error` (when given) if the plan is unusable.
CompiledPlanHandle CompilePlanShared(const Workload& workload,
                                     const SharingPlan& plan,
                                     std::string* error = nullptr);

/// Workload executor. Single-threaded. By default events must arrive in
/// timestamp order (the seed contract); with a DisorderPolicy enabled the
/// engine accepts bounded out-of-order arrival: events wait in a reorder
/// buffer until a watermark proves their prefix of the stream complete,
/// are released in time order into the order-dependent A-Seq machinery,
/// and every window whose close precedes watermark - max_lateness is
/// finalized into results() exactly once while the state that fed it is
/// evicted. See src/common/watermark.h for the contract.
class Engine {
 public:
  /// An empty `plan` gives the Non-Shared (A-Seq) method.
  Engine(const Workload& workload, const SharingPlan& plan = {});

  /// Instantiates from a pre-compiled plan (one optimizer + compile pass
  /// shared by many engines). `compiled` must not be null and must have
  /// been produced from `workload`.
  Engine(const Workload& workload, CompiledPlanHandle compiled);

  /// True if plan compilation succeeded; otherwise error() explains.
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Processes one event through every counter and chain of its group.
  /// Watermark punctuations (IsWatermark) are routed to AdvanceWatermark;
  /// with a disorder policy enabled, data events are buffered until a
  /// watermark releases them and events below the safe point are dropped
  /// and counted (watermark_stats().late_dropped).
  void OnEvent(const Event& e);

  /// Convenience: processes a whole recorded stream, collecting RunStats.
  /// `duration` (ticks) is used to count windows for latency-per-window.
  RunStats Run(const std::vector<Event>& events, Duration duration);

  // --- bounded-disorder ingestion (src/common/watermark.h) --------------

  /// Enables watermark-driven ingestion. Call before the first event.
  void SetDisorderPolicy(const DisorderPolicy& policy);
  const DisorderPolicy& disorder_policy() const { return policy_; }

  /// Applies watermark `t` (the stream's observed high-mark): releases
  /// buffered events below the safe point t - max_lateness in time order,
  /// finalizes every window whose close does not exceed the safe point
  /// (its staged cells move to results() exactly once), and evicts
  /// counter/snapshot/group state that can no longer reach an open
  /// window. Non-advancing watermarks are counted and ignored. No-op
  /// unless a disorder policy is enabled.
  void AdvanceWatermark(Timestamp t);

  /// End of stream: advances the watermark far enough to release every
  /// buffered event and finalize every window.
  void CloseStream();

  /// Declares that windows closing at or before `floor` belong to a
  /// PREDECESSOR of this engine (plan hot-swap, src/runtime/plan_swap.h):
  /// an engine instantiated mid-stream has only partial data for them, so
  /// their staged cells are discarded at finalization time instead of
  /// moving into results() — counted in watermark_stats().suppressed_cells,
  /// never emitted. Call before the first event; watermark mode only.
  void SetResultsFloor(Timestamp floor);
  Timestamp results_floor() const { return results_floor_; }

  /// True once `window` has been finalized (its results are complete and
  /// immutable). Always false while no disorder policy is enabled —
  /// without watermarks nothing ever finalizes.
  bool Finalized(WindowId window) const;

  /// Safe point implied by the highest watermark seen (kNoWatermark
  /// before the first watermark).
  Timestamp SafePoint() const { return policy_.SafePoint(wm_stats_.watermark); }

  const WatermarkStats& watermark_stats() const { return wm_stats_; }

  /// Attaches telemetry (src/obs/): cells and the trace ring of `obs` are
  /// written from the engine's thread on the event/watermark path. The
  /// pointed-to handle must outlive the engine (or be detached with
  /// nullptr); null (the default) keeps the seed behaviour. Cells are
  /// preallocated by the registry, so the event path stays
  /// zero-allocation with observability attached.
  void SetObservability(const obs::EngineObs* o) { obs_ = o; }
  const obs::EngineObs* observability() const { return obs_; }

  /// Results of windows that are not yet finalized (watermark mode only;
  /// these cells may still grow).
  const ResultCollector& staged_results() const { return staged_; }

  /// Visits and removes every finalized result cell. Long-running sinks
  /// drain finalized windows so the result store stays bounded; returns
  /// the number of cells drained.
  size_t DrainFinalized(
      const std::function<void(const ResultKey&, const AggState&)>& fn);

  /// Census of live executor state (the bounded-state invariant).
  LiveState LiveStateSnapshot() const;

  /// In watermark mode results() holds FINALIZED cells only; windows
  /// still open are in staged_results() until their watermark passes.
  const ResultCollector& results() const { return results_; }
  ResultCollector& mutable_results() { return results_; }

  const CompiledEngine& compiled() const { return *compiled_; }
  const CompiledPlanHandle& compiled_handle() const { return compiled_; }
  const Workload& workload() const { return *workload_; }

  /// Current logical state bytes across all groups.
  size_t EstimatedBytes() const;
  size_t peak_bytes() const { return memory_.peak(); }

  /// Number of shared counter templates in the compiled plan.
  size_t num_shared_counters() const;

  // --- checkpoint/restore (orchestrated by src/checkpoint/) -------------
  // The engine exposes its state in four routable pieces — scalars,
  // per-group state, result cells, reorder-buffered events — so the
  // restore path can re-partition a checkpoint across a DIFFERENT shard
  // count: everything except the scalars is keyed by group. All restore
  // methods must run before the first post-restore event, on an engine
  // built from the SAME compiled plan (src/checkpoint/ verifies a plan
  // fingerprint before calling them).

  /// Non-group-keyed executor state. Frontier fields are identical across
  /// the shards of a consistent cut; counter fields are per-shard sums.
  struct ScalarState {
    Timestamp now = 0;                 ///< last processed event time
    Timestamp frontier = 0;            ///< reorder release point
    Timestamp high_mark = kNoWatermark;
    WindowId next_finalize = 0;
    Timestamp results_floor = kNoWatermark;
    uint64_t events_since_sweep = 0;
    WatermarkStats wm;
  };

  ScalarState SaveScalarState() const;
  void RestoreScalarState(const ScalarState& s);

  /// Serializes every group's counters + chains as length-prefixed
  /// (group, payload) records (serde::SaveFlatMap), the unit the
  /// resharding router moves between shards.
  void SaveGroupStates(serde::BinaryWriter& w) const;

  /// Instantiates group `g` from the compiled template and loads one
  /// payload written by SaveGroupStates (reader positioned after the
  /// group key). Empty string on success.
  std::string LoadGroupState(AttrValue g, serde::BinaryReader& r);

  /// Visits a copy of the reorder-buffered events (order unspecified;
  /// the buffer re-sorts by time on restore anyway).
  void SaveBufferedEvents(const std::function<void(const Event&)>& fn) const;

  /// Reinserts one buffered event saved by SaveBufferedEvents, without
  /// touching arrival counters (the original arrival already counted).
  void RestoreBufferedEvent(const Event& e);

  /// Staged (not-yet-finalized) cells, restore target for
  /// ResultCollector::RestoreCell. Finalized cells restore through
  /// mutable_results().
  ResultCollector& mutable_staged_results() { return staged_; }

 private:
  struct GroupState {
    std::vector<std::unique_ptr<SegmentCounter>> counters;
    std::vector<ChainRunner> chains;
    uint64_t events_seen = 0;
  };

  GroupState& GroupFor(AttrValue g);

  /// The seed event path: in-order processing through counters + chains.
  void ProcessOrdered(const Event& e);

  /// Watermark eviction: expires counter starts and snapshot panes
  /// against `safe` and erases groups left with no state at all.
  void EvictBefore(Timestamp safe);

  /// The collector chain emissions go to: staged under watermarking
  /// (finalization moves cells to results_), results_ otherwise.
  ResultCollector& sink() { return policy_.enabled ? staged_ : results_; }

  const Workload* workload_;
  std::string error_;
  CompiledPlanHandle compiled_;
  /// Per-group executor state, keyed by the partition attribute value.
  /// Open-addressing flat table: the per-event group lookup is a probe
  /// over contiguous slots, and a warmed table allocates nothing
  /// (DESIGN.md "Hot-path memory layout").
  FlatMap<AttrValue, GroupState, Mix64Hash> groups_;
  ResultCollector results_;
  MemoryMeter memory_;
  uint64_t events_since_sweep_ = 0;
  Timestamp now_ = 0;

  // --- watermark mode state ---------------------------------------------
  struct LaterTime {
    bool operator()(const Event& a, const Event& b) const {
      return a.time > b.time;
    }
  };
  DisorderPolicy policy_;
  std::priority_queue<Event, std::vector<Event>, LaterTime> reorder_;
  ResultCollector staged_;          ///< cells of not-yet-finalized windows
  WatermarkStats wm_stats_;
  Timestamp frontier_ = 0;          ///< ticks below this were released
  Timestamp high_mark_ = kNoWatermark;  ///< highest event time observed
  WindowId next_finalize_ = 0;      ///< windows below this are finalized
  Timestamp results_floor_ = kNoWatermark;  ///< hot-swap handoff boundary
  WindowId floor_limit_ = 0;        ///< windows below this are suppressed
  const obs::EngineObs* obs_ = nullptr;  ///< optional telemetry handle

  static constexpr uint64_t kSweepInterval = 4096;
};

}  // namespace sharon

#endif  // SHARON_EXEC_ENGINE_H_
