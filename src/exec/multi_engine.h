// §7.2 extension: workloads with DIFFERENT windows or predicates/grouping.
//
// The paper's core assumption 2 requires one window and one partitioning
// per workload; §7.2 sketches the relaxation: partition the workload into
// uniform segments and share within each segment. MultiEngine implements
// exactly that: queries are grouped by (window, partition attribute), each
// segment gets its own Sharon optimizer pass and Engine, and events fan
// out to every segment. Sharing still happens inside each segment, which
// is where it is legal.
//
// Planning (optimizer + plan compilation) is split from instantiation:
// PlanMultiEngine produces an immutable MultiEnginePlan that any number of
// MultiEngine instances share — the per-shard engines of
// runtime::ShardedRuntime all reuse one planning pass.

#ifndef SHARON_EXEC_MULTI_ENGINE_H_
#define SHARON_EXEC_MULTI_ENGINE_H_

#include <memory>
#include <vector>

#include "src/exec/engine.h"
#include "src/planner/optimizer.h"

namespace sharon {

/// Immutable outcome of planning a non-uniform workload: the uniform
/// segment workloads, their compiled sharing plans, and the routing table
/// from original query ids to (segment, segment-local id). Owns the
/// segment workloads, so engines built from it must not outlive it — hold
/// it in a shared_ptr when instances share it.
struct MultiEnginePlan {
  struct Segment {
    Workload workload;                  ///< segment-local query ids
    std::vector<QueryId> original_ids;  ///< segment-local id -> original id
    CompiledPlanHandle compiled;
  };

  /// Segment index and segment-local id for one original query.
  struct Route {
    size_t segment = 0;
    QueryId local = 0;
  };

  std::string error;  ///< empty on success
  std::vector<Segment> segments;
  std::vector<Route> routes;            ///< indexed by original query id
  std::vector<OptimizerResult> plans;   ///< per-segment optimizer outcomes
  size_t total_queries = 0;

  bool ok() const { return error.empty(); }
};

/// Partitions `workload` into uniform segments by (window, partition
/// attribute) and optimizes each with `cost_model` (Sharon optimizer,
/// `config`). Never returns null; check `->ok()`.
std::shared_ptr<const MultiEnginePlan> PlanMultiEngine(
    const Workload& workload, const CostModel& cost_model,
    const OptimizerConfig& config = {});

/// Executes a non-uniform workload as independent uniform segments.
class MultiEngine {
 public:
  /// Plans and instantiates in one step (single-instance convenience).
  MultiEngine(const Workload& workload, const CostModel& cost_model,
              const OptimizerConfig& config = {});

  /// Instantiates executor state from a shared plan (one planning pass for
  /// many instances). `plan` must not be null.
  explicit MultiEngine(std::shared_ptr<const MultiEnginePlan> plan);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Number of uniform segments the workload was split into.
  size_t num_segments() const { return plan_ ? plan_->segments.size() : 0; }

  /// Total number of shared counters across segments.
  size_t num_shared_counters() const;

  void OnEvent(const Event& e);
  RunStats Run(const std::vector<Event>& events, Duration duration);

  // --- bounded-disorder ingestion (src/common/watermark.h) --------------
  // Each segment engine reorders and finalizes independently against its
  // own window grid; watermarks fan out like events, so one punctuation
  // advances every segment.

  /// Enables watermark-driven ingestion on every segment engine.
  void SetDisorderPolicy(const DisorderPolicy& policy);

  /// Applies a watermark to every segment engine.
  void AdvanceWatermark(Timestamp t);

  /// Releases and finalizes everything on every segment engine.
  void CloseStream();

  /// Attaches one telemetry handle to every segment engine (they share
  /// the shard's cells: the segments run on one thread, so the one-writer
  /// contract holds; counters simply sum across segments). Null detaches.
  void SetObservability(const obs::EngineObs* o) {
    for (auto& e : engines_) e->SetObservability(o);
  }

  /// True once `window` (in the query's own window grid) is finalized.
  bool Finalized(QueryId query, WindowId window) const;

  /// Rolled-up watermark counters across segment engines (watermark is
  /// the MIN across segments).
  WatermarkStats watermark_stats() const;

  /// Aggregated live-state census across segment engines.
  LiveState LiveStateSnapshot() const;

  /// Result for a query of the ORIGINAL workload (query ids are the
  /// original ids; windows are in the query's own window grid).
  double Value(QueryId query, WindowId window, AttrValue group,
               AggFunction fn) const;
  AggState Get(QueryId query, WindowId window, AttrValue group) const;

  /// Per-segment optimizer outcomes (for inspection).
  const std::vector<OptimizerResult>& plans() const { return plan_->plans; }

  /// The shared plan this instance executes.
  const std::shared_ptr<const MultiEnginePlan>& plan() const { return plan_; }

  /// Per-segment engines, in plan segment order (read-only inspection).
  const std::vector<std::unique_ptr<Engine>>& engines() const {
    return engines_;
  }

  /// Mutable segment engine for checkpoint restore ONLY (src/checkpoint/
  /// loads per-segment state before the first post-restore event); all
  /// normal execution goes through OnEvent.
  Engine* mutable_segment_engine(size_t segment) {
    return engines_[segment].get();
  }

  size_t EstimatedBytes() const;

 private:
  std::string error_;
  std::shared_ptr<const MultiEnginePlan> plan_;
  std::vector<std::unique_ptr<Engine>> engines_;  ///< one per plan segment
};

}  // namespace sharon

#endif  // SHARON_EXEC_MULTI_ENGINE_H_
