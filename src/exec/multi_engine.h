// §7.2 extension: workloads with DIFFERENT windows or predicates/grouping.
//
// The paper's core assumption 2 requires one window and one partitioning
// per workload; §7.2 sketches the relaxation: partition the workload into
// uniform segments and share within each segment. MultiEngine implements
// exactly that: queries are grouped by (window, partition attribute), each
// segment gets its own Sharon optimizer pass and Engine, and events fan
// out to every segment. Sharing still happens inside each segment, which
// is where it is legal.

#ifndef SHARON_EXEC_MULTI_ENGINE_H_
#define SHARON_EXEC_MULTI_ENGINE_H_

#include <memory>
#include <vector>

#include "src/exec/engine.h"
#include "src/planner/optimizer.h"

namespace sharon {

/// Executes a non-uniform workload as independent uniform segments.
class MultiEngine {
 public:
  /// Partitions `workload` into uniform segments and optimizes each with
  /// `cost_model` (Sharon optimizer, `config`).
  MultiEngine(const Workload& workload, const CostModel& cost_model,
              const OptimizerConfig& config = {});

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Number of uniform segments the workload was split into.
  size_t num_segments() const { return segments_.size(); }

  /// Total number of shared counters across segments.
  size_t num_shared_counters() const;

  void OnEvent(const Event& e);
  RunStats Run(const std::vector<Event>& events, Duration duration);

  /// Result for a query of the ORIGINAL workload (query ids are the
  /// original ids; windows are in the query's own window grid).
  double Value(QueryId query, WindowId window, AttrValue group,
               AggFunction fn) const;
  AggState Get(QueryId query, WindowId window, AttrValue group) const;

  /// Per-segment optimizer outcomes (for inspection).
  const std::vector<OptimizerResult>& plans() const { return plans_; }

  size_t EstimatedBytes() const;

 private:
  struct Segment {
    Workload workload;                 ///< segment-local query ids
    std::vector<QueryId> original_ids; ///< segment id -> original id
    std::unique_ptr<Engine> engine;
  };

  /// segment index and segment-local id for each original query.
  struct Route {
    size_t segment = 0;
    QueryId local = 0;
  };

  std::string error_;
  std::vector<Segment> segments_;
  std::vector<Route> routes_;
  std::vector<OptimizerResult> plans_;
  size_t total_queries_ = 0;
};

}  // namespace sharon

#endif  // SHARON_EXEC_MULTI_ENGINE_H_
