// SegmentCounter: the A-Seq per-START-event prefix-aggregation machine
// (paper §3.2, Fig. 6).
//
// For a segment pattern (T0 ... Tm-1) the counter keeps, for every
// not-yet-expired START event s (type T0), a vector pref[j] that aggregates
// all sequences matching the prefix (T0..Tj) which start exactly at s and
// use only events seen so far. An arriving event of type Tj folds
// Extend(pref[j-1], e) into pref[j] for every live start (Fig. 6a); starts
// whose window has passed are dropped (Fig. 6b). When the END type Tm-1
// arrives, the per-start *deltas* of the complete aggregate are exposed so
// that consumers (ChainRunner) can fold them into exactly the windows the
// END event falls into.
//
// One SegmentCounter instance is the unit of sharing: the Sharon executor
// evaluates a shared pattern's counter once per group and lets every
// subscribed query chain read it (§3.3 step 1).
//
// §7.3 extension: an event type may occur k times in the segment; the
// update then touches the k prefix positions in descending order so one
// event never extends through itself.

#ifndef SHARON_EXEC_SEGMENT_COUNTER_H_
#define SHARON_EXEC_SEGMENT_COUNTER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/ring_deque.h"
#include "src/common/serde.h"
#include "src/query/aggregate.h"
#include "src/query/pattern.h"
#include "src/query/window.h"

namespace sharon {

/// Stable identifier of a START event within one SegmentCounter.
using StartId = uint64_t;

/// Per-START-event prefix aggregates for one segment pattern.
class SegmentCounter {
 public:
  /// `spec` defines per-event contributions (use a projected spec:
  /// CountStar when the aggregation target does not occur in `pattern`).
  SegmentCounter(Pattern pattern, AggSpec spec, WindowSpec window);

  /// Delta of the complete-segment aggregate produced by the last OnEvent.
  struct CompleteDelta {
    StartId start;
    Timestamp start_time;
    AggState delta;
  };

  /// Processes one event (any type; non-matching types are ignored).
  void OnEvent(const Event& e);

  /// Deltas produced by the most recent OnEvent whose type was the END
  /// type of the segment; empty otherwise.
  const std::vector<CompleteDelta>& last_deltas() const {
    return last_deltas_;
  }

  /// Id of the most recently created START entry. Only meaningful right
  /// after an OnEvent with the START type.
  StartId NewestStartId() const { return base_ + starts_.size() - 1; }

  /// Complete-segment aggregate for `id` accumulated so far; Zero if the
  /// start has expired or never completed.
  const AggState& CompleteFor(StartId id) const;

  /// Start timestamp for `id`; -1 if expired.
  Timestamp StartTimeFor(StartId id) const;

  /// Drops starts that cannot share a window with `now` (§3.2). Returns
  /// the number of starts dropped (for eviction accounting).
  size_t ExpireBefore(Timestamp now);

  const Pattern& pattern() const { return pattern_; }
  const AggSpec& spec() const { return spec_; }
  EventTypeId start_type() const { return pattern_.front(); }
  EventTypeId end_type() const { return pattern_.back(); }
  size_t num_live_starts() const { return starts_.size(); }

  /// Logical state footprint in bytes (per-start aggregate vectors).
  size_t EstimatedBytes() const;

  // --- checkpoint/restore (src/checkpoint/) -----------------------------

  /// Serializes the live prefix-aggregation state: the start-id base and
  /// every live start's (time, pref vector). Recycling pools and the
  /// transient last_deltas are storage details and not saved.
  void SaveState(serde::BinaryWriter& w) const;

  /// Restores state saved by SaveState into a counter built from the SAME
  /// (pattern, spec, window) template. Returns an empty string on success
  /// or a diagnostic (truncated payload, prefix-length mismatch).
  std::string LoadState(serde::BinaryReader& r);

 private:
  struct Start {
    Timestamp time = 0;
    std::vector<AggState> pref;  // pref[j]: prefix (T0..Tj) aggregates
  };

  Pattern pattern_;
  AggSpec spec_;
  WindowSpec window_;
  /// COUNT(*) spec: updates only touch the `count` lane (see OnEvent).
  bool count_only_ = false;
  /// positions_by_type_[t] = descending positions of type t in pattern_.
  std::vector<std::vector<uint32_t>> positions_by_type_;
  /// Live starts, FIFO by start time. Ring buffer + recycled pref
  /// vectors: in steady state a start's birth and expiration allocate
  /// nothing (DESIGN.md "Hot-path memory layout").
  RingDeque<Start> starts_;
  std::vector<std::vector<AggState>> pref_pool_;  ///< recycled pref buffers
  StartId base_ = 0;  ///< id of starts_.front()
  /// First tick at which the FRONT start is expired (cached so the
  /// per-event expiration probe is one comparison, not two divisions;
  /// max() while no start is live).
  Timestamp front_expire_ = kNeverExpires;
  static constexpr Timestamp kNeverExpires =
      std::numeric_limits<Timestamp>::max();
  std::vector<CompleteDelta> last_deltas_;
  AggState zero_;
};

}  // namespace sharon

#endif  // SHARON_EXEC_SEGMENT_COUNTER_H_
