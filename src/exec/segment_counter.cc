#include "src/exec/segment_counter.h"

#include <algorithm>

namespace sharon {

SegmentCounter::SegmentCounter(Pattern pattern, AggSpec spec,
                               WindowSpec window)
    : pattern_(std::move(pattern)),
      spec_(spec),
      window_(window),
      count_only_(spec.fn == AggFunction::kCountStar) {
  EventTypeId max_type = 0;
  for (EventTypeId t : pattern_.types()) max_type = std::max(max_type, t);
  positions_by_type_.resize(max_type + 1);
  for (size_t j = 0; j < pattern_.length(); ++j) {
    positions_by_type_[pattern_.type(j)].push_back(static_cast<uint32_t>(j));
  }
  // Descending positions: an event must never extend through itself when a
  // type repeats (§7.3).
  for (auto& v : positions_by_type_) {
    std::sort(v.begin(), v.end(), std::greater<uint32_t>());
  }
}

void SegmentCounter::OnEvent(const Event& e) {
  last_deltas_.clear();
  if (e.type >= positions_by_type_.size()) return;
  const auto& positions = positions_by_type_[e.type];
  if (positions.empty()) return;

  ExpireBefore(e.time);

  const EventContribution contrib =
      count_only_ ? EventContribution{} : ContributionOf(e, spec_);
  const size_t last_pos = pattern_.length() - 1;

  if (count_only_) {
    // COUNT(*) fast path (the spec every shared counter projects to when
    // the aggregation target lies outside its segment, ProjectSpec):
    // with an all-zero contribution, Extend and MergeFrom only ever move
    // the `count` lane — sum/target stay 0 and min/max stay at their
    // identities — so the update touches one double per start instead of
    // five. Bit-identical to the generic path by construction.
    for (uint32_t j : positions) {
      if (j == 0) continue;
      for (size_t i = 0; i < starts_.size(); ++i) {
        Start& s = starts_[i];
        const double grown = s.pref[j - 1].count;
        if (grown == 0) continue;
        s.pref[j].count += grown;
        if (j == last_pos) {
          AggState delta;
          delta.count = grown;
          last_deltas_.push_back({base_ + i, s.time, delta});
        }
      }
    }
  } else {
    for (uint32_t j : positions) {
      if (j == 0) continue;  // handled below: the new start appends last
      for (size_t i = 0; i < starts_.size(); ++i) {
        Start& s = starts_[i];
        AggState grown = AggState::Extend(s.pref[j - 1], contrib);
        if (grown.IsZero()) continue;
        s.pref[j].MergeFrom(grown);
        if (j == last_pos) {
          last_deltas_.push_back({base_ + i, s.time, grown});
        }
      }
    }
  }

  if (!positions.empty() && positions.back() == 0) {
    Start s;
    s.time = e.time;
    if (!pref_pool_.empty()) {  // recycle an expired start's buffer
      s.pref = std::move(pref_pool_.back());
      pref_pool_.pop_back();
    }
    s.pref.assign(pattern_.length(), AggState::Zero());
    s.pref[0] = AggState::Unit(contrib);
    starts_.push_back(std::move(s));
    if (starts_.size() == 1) {
      front_expire_ =
          window_.WindowEnd(window_.LastWindowCovering(e.time));
    }
    if (last_pos == 0) {
      last_deltas_.push_back(
          {NewestStartId(), e.time, starts_.back().pref[0]});
    }
  }
}

const AggState& SegmentCounter::CompleteFor(StartId id) const {
  if (id < base_ || id - base_ >= starts_.size()) return zero_;
  return starts_[id - base_].pref.back();
}

Timestamp SegmentCounter::StartTimeFor(StartId id) const {
  if (id < base_ || id - base_ >= starts_.size()) return -1;
  return starts_[id - base_].time;
}

size_t SegmentCounter::ExpireBefore(Timestamp now) {
  // front_expire_ caches WindowEnd(LastWindowCovering(front.time)), the
  // first tick with no window containing both the front start and `now`
  // — equivalent to WindowSpec::Expired but one comparison on the
  // nothing-expires fast path instead of two divisions per event.
  size_t dropped = 0;
  while (now >= front_expire_) {
    pref_pool_.push_back(std::move(starts_.front().pref));
    starts_.pop_front();
    ++base_;
    ++dropped;
    front_expire_ = starts_.empty()
                        ? kNeverExpires
                        : window_.WindowEnd(
                              window_.LastWindowCovering(starts_.front().time));
  }
  return dropped;
}

size_t SegmentCounter::EstimatedBytes() const {
  return starts_.size() *
         (sizeof(Start) + pattern_.length() * sizeof(AggState));
}

void SegmentCounter::SaveState(serde::BinaryWriter& w) const {
  w.U64(base_);
  w.U64(pattern_.length());
  serde::SaveRingDeque(w, starts_, [](serde::BinaryWriter& out, const Start& s) {
    out.I64(s.time);
    for (const AggState& a : s.pref) SaveAggState(out, a);
  });
}

std::string SegmentCounter::LoadState(serde::BinaryReader& r) {
  base_ = r.U64();
  const uint64_t plen = r.U64();
  if (plen != pattern_.length()) {
    return "segment counter prefix length mismatch (plan does not match "
           "the checkpointed plan)";
  }
  serde::LoadRingDeque(r, starts_, [&](serde::BinaryReader& in, Start& s) {
    s.time = in.I64();
    s.pref.resize(pattern_.length());
    for (AggState& a : s.pref) a = LoadAggState(in);
  });
  if (!r.ok()) return "segment counter state truncated";
  front_expire_ = starts_.empty()
                      ? kNeverExpires
                      : window_.WindowEnd(
                            window_.LastWindowCovering(starts_.front().time));
  last_deltas_.clear();
  return "";
}

}  // namespace sharon
