#include "src/exec/engine.h"

#include <algorithm>
#include <map>

namespace sharon {

AggSpec ProjectSpec(const AggSpec& spec, const Pattern& segment) {
  if (spec.fn == AggFunction::kCountStar) return AggSpec::CountStar();
  if (segment.CountType(spec.target_type) == 0) return AggSpec::CountStar();
  return spec;
}

namespace {

// Segment of one query: [begin, begin+pattern.length) of the query pattern,
// either covered by a shared candidate or a private gap.
struct Segment {
  size_t begin;
  Pattern pattern;
  bool shared;
};

}  // namespace

std::string CompilePlan(const Workload& workload, const SharingPlan& plan,
                        CompiledEngine* out) {
  if (workload.empty()) return "empty workload";
  if (workload.num_active() == 0) return "no active queries";
  if (!workload.Uniform()) {
    return "workload is not uniform (assumption 2): partition the stream "
           "first (section 7.2)";
  }
  out->counters.clear();
  out->chains.clear();
  out->window = workload.window();
  out->partition = workload.partition_attr();

  // Counter de-duplication key: shared counters by (pattern, spec);
  // private counters are never de-duplicated.
  std::map<std::pair<Pattern, std::pair<int, std::pair<EventTypeId, AttrIndex>>>,
           uint32_t>
      shared_index;
  auto counter_for = [&](const Pattern& p, const AggSpec& s,
                         bool shared) -> uint32_t {
    if (shared) {
      auto key = std::make_pair(
          p, std::make_pair(static_cast<int>(s.fn),
                            std::make_pair(s.target_type, s.target_attr)));
      auto it = shared_index.find(key);
      if (it != shared_index.end()) return it->second;
      uint32_t idx = static_cast<uint32_t>(out->counters.size());
      out->counters.push_back({p, s, true});
      shared_index.emplace(std::move(key), idx);
      return idx;
    }
    out->counters.push_back({p, s, false});
    return static_cast<uint32_t>(out->counters.size() - 1);
  };

  for (const Query& q : workload.queries()) {
    // A retired query compiles to nothing: no chains, no counters, so the
    // engine never emits a cell for its id — its already-finalized windows
    // live on in the shard archive (src/query/registration.h).
    if (!workload.active(q.id)) continue;
    // Candidates of the plan that apply to this query.
    struct Placed {
      size_t begin, end;  // [begin, end) in q.pattern
      const Candidate* cand;
    };
    std::vector<Placed> placed;
    for (const Candidate& c : plan) {
      if (!c.Contains(q.id)) continue;
      auto pos = q.pattern.Find(c.pattern);
      if (!pos.has_value()) {
        return "plan candidate " + std::to_string(&c - plan.data()) +
               " pattern not contained in query " + std::to_string(q.id);
      }
      placed.push_back({*pos, *pos + c.pattern.length(), &c});
    }
    std::sort(placed.begin(), placed.end(),
              [](const Placed& a, const Placed& b) { return a.begin < b.begin; });
    for (size_t i = 1; i < placed.size(); ++i) {
      if (placed[i].begin < placed[i - 1].end) {
        return "invalid plan: overlapping candidates in query " +
               std::to_string(q.id);
      }
    }

    // Build segment list: shared candidate ranges plus private gaps.
    std::vector<Segment> segments;
    size_t cursor = 0;
    for (const Placed& pl : placed) {
      if (pl.begin > cursor) {
        segments.push_back(
            {cursor, q.pattern.Sub(cursor, pl.begin - cursor), false});
      }
      segments.push_back(
          {pl.begin, q.pattern.Sub(pl.begin, pl.end - pl.begin), true});
      cursor = pl.end;
    }
    if (cursor < q.pattern.length()) {
      segments.push_back(
          {cursor, q.pattern.Sub(cursor, q.pattern.length() - cursor), false});
    }

    std::vector<uint32_t> counter_idx;
    for (const Segment& seg : segments) {
      AggSpec proj = ProjectSpec(q.agg, seg.pattern);
      counter_idx.push_back(counter_for(seg.pattern, proj, seg.shared));
    }
    // Queries compiling to the same segment sequence share the chain
    // (whole-pattern sharing has no combination cost, Eq. 5).
    bool merged = false;
    for (auto& existing : out->chains) {
      if (existing.counter_idx == counter_idx) {
        existing.queries.push_back(q.id);
        merged = true;
        break;
      }
    }
    if (!merged) {
      out->chains.push_back({{q.id}, std::move(counter_idx)});
    }
  }

  // Dispatch lists by event type.
  EventTypeId max_type = 0;
  for (const auto& c : out->counters) {
    for (EventTypeId t : c.pattern.types()) max_type = std::max(max_type, t);
  }
  out->counters_by_type.assign(max_type + 1, {});
  out->chains_by_type.assign(max_type + 1, {});
  for (uint32_t i = 0; i < out->counters.size(); ++i) {
    std::vector<bool> seen(max_type + 1, false);
    for (EventTypeId t : out->counters[i].pattern.types()) {
      if (!seen[t]) {
        out->counters_by_type[t].push_back(i);
        seen[t] = true;
      }
    }
  }
  for (uint32_t i = 0; i < out->chains.size(); ++i) {
    std::vector<bool> seen(max_type + 1, false);
    auto subscribe = [&](EventTypeId t) {
      if (!seen[t]) {
        out->chains_by_type[t].push_back(i);
        seen[t] = true;
      }
    };
    const auto& chain = out->chains[i];
    for (uint32_t ci : chain.counter_idx) {
      subscribe(out->counters[ci].pattern.front());
    }
    subscribe(out->counters[chain.counter_idx.back()].pattern.back());
  }
  return "";
}

CompiledPlanHandle CompilePlanShared(const Workload& workload,
                                     const SharingPlan& plan,
                                     std::string* error) {
  auto compiled = std::make_shared<CompiledEngine>();
  std::string diag = CompilePlan(workload, plan, compiled.get());
  if (!diag.empty()) {
    if (error) *error = std::move(diag);
    return nullptr;
  }
  if (error) error->clear();
  return compiled;
}

Engine::Engine(const Workload& workload, const SharingPlan& plan)
    : workload_(&workload) {
  compiled_ = CompilePlanShared(workload, plan, &error_);
  if (!compiled_) compiled_ = std::make_shared<CompiledEngine>();
}

Engine::Engine(const Workload& workload, CompiledPlanHandle compiled)
    : workload_(&workload), compiled_(std::move(compiled)) {
  if (!compiled_) {
    error_ = "null compiled plan";
    compiled_ = std::make_shared<CompiledEngine>();
  }
}

Engine::GroupState& Engine::GroupFor(AttrValue g) {
  auto it = groups_.find(g);
  if (it != groups_.end()) return it->second;
  const CompiledEngine& compiled = *compiled_;
  GroupState& state = groups_[g];
  state.counters.reserve(compiled.counters.size());
  for (const auto& cs : compiled.counters) {
    state.counters.push_back(
        std::make_unique<SegmentCounter>(cs.pattern, cs.spec, compiled.window));
  }
  state.chains.reserve(compiled.chains.size());
  for (const auto& ch : compiled.chains) {
    std::vector<SegmentCounter*> refs;
    refs.reserve(ch.counter_idx.size());
    for (uint32_t ci : ch.counter_idx) refs.push_back(state.counters[ci].get());
    state.chains.emplace_back(ch.queries, std::move(refs), compiled.window);
  }
  return state;
}

void Engine::OnEvent(const Event& e) {
  if (IsWatermark(e)) {
    AdvanceWatermark(e.time);
    return;
  }
  if (!policy_.enabled) {
    ProcessOrdered(e);
    return;
  }
  if (e.time > high_mark_) high_mark_ = e.time;
  if (e.time < frontier_) {
    // Below the safe point: the event's prefix of the stream was declared
    // complete (and its windows possibly finalized), so absorbing it
    // would break exactly-once. Drop it, visibly.
    ++wm_stats_.late_dropped;
    if (obs_) {
      if (obs_->late_dropped) obs_->late_dropped->Inc();
      if (obs_->ring) obs_->ring->Emit(obs::TraceKind::kLateDrop, e.time,
                                       frontier_);
    }
    return;
  }
  reorder_.push(e);
  if (reorder_.size() > wm_stats_.buffered_peak) {
    wm_stats_.buffered_peak = reorder_.size();
  }
  if (obs_) {
    if (obs_->event_lateness) {
      obs_->event_lateness->Record(static_cast<uint64_t>(high_mark_ - e.time));
    }
    if (obs_->buffered_events) {
      obs_->buffered_events->Set(static_cast<int64_t>(reorder_.size()));
    }
  }
}

void Engine::ProcessOrdered(const Event& e) {
  now_ = e.time;
  const CompiledEngine& compiled = *compiled_;
  if (e.type >= compiled.counters_by_type.size()) return;
  const AttrValue g =
      compiled.partition == kNoAttr ? 0 : e.attr(compiled.partition);
  GroupState& gs = GroupFor(g);
  for (uint32_t ci : compiled.counters_by_type[e.type]) {
    gs.counters[ci]->OnEvent(e);
  }
  for (uint32_t chi : compiled.chains_by_type[e.type]) {
    gs.chains[chi].OnEvent(e, g, sink());
  }
  ++gs.events_seen;
  if (++events_since_sweep_ >= kSweepInterval) {
    events_since_sweep_ = 0;
    for (auto& [gv, state] : groups_) {
      for (auto& c : state.counters) {
        wm_stats_.evicted_panes += c->ExpireBefore(now_);
      }
      for (auto& ch : state.chains) {
        wm_stats_.evicted_panes += ch.ExpireBefore(now_);
      }
    }
    memory_.Set(EstimatedBytes());
  }
}

void Engine::SetDisorderPolicy(const DisorderPolicy& policy) {
  policy_ = policy;
}

void Engine::SetResultsFloor(Timestamp floor) {
  results_floor_ = floor;
  floor_limit_ = compiled_->window.Valid() && floor >= 0
                     ? compiled_->window.FirstWindowCovering(floor)
                     : 0;
}

void Engine::AdvanceWatermark(Timestamp t) {
  if (!policy_.enabled) return;
  if (t <= wm_stats_.watermark) {
    // Watermarks must advance; a regression (merged streams, replayed
    // punctuation) is counted and ignored rather than applied.
    ++wm_stats_.regressions;
    return;
  }
  wm_stats_.watermark = t;
  const Timestamp safe = policy_.SafePoint(t);
  wm_stats_.safe_point = safe;

  // 1. Release buffered events strictly below the safe point, in time
  //    order — the A-Seq machinery sees a sorted stream.
  uint64_t released = 0;
  while (!reorder_.empty() && reorder_.top().time < safe) {
    ProcessOrdered(reorder_.top());
    reorder_.pop();
    ++released;
  }
  if (safe > frontier_) frontier_ = safe;
  if (obs_) {
    if (obs_->watermark) obs_->watermark->Set(t);
    if (obs_->safe_point) obs_->safe_point->Set(safe);
    if (obs_->released_events) obs_->released_events->Add(released);
    if (obs_->release_batch) obs_->release_batch->Record(released);
    if (obs_->buffered_events) {
      obs_->buffered_events->Set(static_cast<int64_t>(reorder_.size()));
    }
    if (obs_->ring) {
      obs_->ring->Emit(obs::TraceKind::kWatermarkAdvance, t, safe);
      if (released > 0) {
        obs_->ring->Emit(obs::TraceKind::kReorderRelease, safe,
                         static_cast<int64_t>(released));
      }
    }
  }

  // 2. Finalize windows that close at or before the safe point: all of
  //    their events (times < close <= safe) were released in step 1, so
  //    the staged cells are complete. Extraction empties them, making
  //    finalization exactly-once.
  const WindowSpec& window = compiled_->window;
  if (window.Valid() && safe >= 0) {
    const WindowId limit = window.FirstWindowCovering(safe);
    if (limit > next_finalize_) {
      // Windows below the results floor belong to a predecessor engine
      // (plan hot-swap): this engine only saw part of their events, so
      // their cells are discarded, not finalized.
      const WindowId suppress = std::min(limit, floor_limit_);
      if (suppress > next_finalize_) {
        ResultCollector discard;
        auto [cells, windows] = staged_.ExtractWindowsBefore(suppress, discard);
        wm_stats_.suppressed_cells += cells;
        (void)windows;
        next_finalize_ = suppress;
      }
      if (limit > next_finalize_) {
        auto [cells, windows] = staged_.ExtractWindowsBefore(limit, results_);
        wm_stats_.finalized_cells += cells;
        wm_stats_.finalized_windows += windows;
        next_finalize_ = limit;
        if (obs_) {
          if (obs_->finalized_cells) obs_->finalized_cells->Add(cells);
          if (obs_->finalized_windows) obs_->finalized_windows->Add(windows);
        }
      }
    }
  }

  // 3. Evict state that can no longer reach an open window.
  if (policy_.evict && safe >= 0) EvictBefore(safe);
}

void Engine::EvictBefore(Timestamp safe) {
  for (auto it = groups_.begin(); it != groups_.end();) {
    GroupState& state = it->second;
    bool empty = true;
    for (auto& c : state.counters) {
      wm_stats_.evicted_panes += c->ExpireBefore(safe);
      empty = empty && c->num_live_starts() == 0;
    }
    for (auto& ch : state.chains) {
      wm_stats_.evicted_panes += ch.ExpireBefore(safe);
      empty = empty && ch.Empty();
    }
    if (empty) {
      ++wm_stats_.evicted_groups;
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  memory_.Set(EstimatedBytes());
}

void Engine::CloseStream() {
  if (!policy_.enabled) return;
  // Far enough that the safe point passes every buffered event and the
  // close of every window any event can reach.
  const Duration length =
      compiled_->window.Valid() ? compiled_->window.length : 0;
  const Timestamp base = high_mark_ == kNoWatermark ? 0 : high_mark_;
  AdvanceWatermark(base + length + policy_.max_lateness + 1);
}

bool Engine::Finalized(WindowId window) const {
  if (!policy_.enabled || !compiled_->window.Valid()) return false;
  const Timestamp safe = SafePoint();
  return safe >= 0 && compiled_->window.WindowEnd(window) <= safe;
}

size_t Engine::DrainFinalized(
    const std::function<void(const ResultKey&, const AggState&)>& fn) {
  // Without a disorder policy nothing ever finalizes: results_ holds
  // live, still-growing cells that must not be handed out as sealed.
  if (!policy_.enabled) return 0;
  const size_t n = results_.size();
  results_.ForEachCell(fn);
  results_.Clear();
  return n;
}

LiveState Engine::LiveStateSnapshot() const {
  LiveState live;
  live.groups = groups_.size();
  for (const auto& [g, state] : groups_) {
    for (const auto& c : state.counters) live.counter_starts += c->num_live_starts();
    for (const auto& ch : state.chains) live.snapshot_panes += ch.NumLivePanes();
  }
  live.pending_windows = policy_.enabled ? staged_.NumWindows() : results_.NumWindows();
  live.buffered_events = reorder_.size();
  return live;
}

RunStats Engine::Run(const std::vector<Event>& events, Duration duration) {
  RunStats stats;
  StopWatch watch;
  for (const Event& e : events) OnEvent(e);
  stats.wall_seconds = watch.ElapsedSeconds();
  // Throughput counts each event once per query, matching the paper's
  // "events processed by all queries per second".
  stats.events_processed = events.size() * workload_->size();
  stats.results_emitted = results_.size();
  memory_.Set(EstimatedBytes());
  stats.peak_state_bytes = memory_.peak();
  (void)duration;
  return stats;
}

size_t Engine::EstimatedBytes() const {
  size_t bytes = results_.EstimatedBytes() + staged_.EstimatedBytes() +
                 reorder_.size() * (sizeof(Event) + 2 * sizeof(AttrValue));
  for (const auto& [g, state] : groups_) {
    for (const auto& c : state.counters) bytes += c->EstimatedBytes();
    for (const auto& ch : state.chains) bytes += ch.EstimatedBytes();
  }
  return bytes;
}

size_t Engine::num_shared_counters() const {
  size_t n = 0;
  for (const auto& c : compiled_->counters) n += c.shared;
  return n;
}

Engine::ScalarState Engine::SaveScalarState() const {
  ScalarState s;
  s.now = now_;
  s.frontier = frontier_;
  s.high_mark = high_mark_;
  s.next_finalize = next_finalize_;
  s.results_floor = results_floor_;
  s.events_since_sweep = events_since_sweep_;
  s.wm = wm_stats_;
  return s;
}

void Engine::RestoreScalarState(const ScalarState& s) {
  now_ = s.now;
  frontier_ = s.frontier;
  high_mark_ = s.high_mark;
  next_finalize_ = s.next_finalize;
  events_since_sweep_ = s.events_since_sweep;
  wm_stats_ = s.wm;
  // Recomputes floor_limit_ from the restored floor (kNoWatermark keeps
  // the no-floor default).
  SetResultsFloor(s.results_floor);
}

void Engine::SaveGroupStates(serde::BinaryWriter& w) const {
  serde::SaveFlatMap(
      w, groups_,
      [](serde::BinaryWriter& out, AttrValue g, const GroupState& gs) {
        out.I64(g);
        out.U64(gs.events_seen);
        out.U64(gs.counters.size());
        for (const auto& c : gs.counters) c->SaveState(out);
        out.U64(gs.chains.size());
        for (const auto& ch : gs.chains) ch.SaveState(out);
      });
}

std::string Engine::LoadGroupState(AttrValue g, serde::BinaryReader& r) {
  if (groups_.contains(g)) {
    return "duplicate group in checkpoint (group routed twice)";
  }
  GroupState& gs = GroupFor(g);
  gs.events_seen = r.U64();
  if (r.U64() != gs.counters.size()) {
    return "group counter count mismatch (plan does not match the "
           "checkpointed plan)";
  }
  for (auto& c : gs.counters) {
    std::string err = c->LoadState(r);
    if (!err.empty()) return err;
  }
  if (r.U64() != gs.chains.size()) {
    return "group chain count mismatch (plan does not match the "
           "checkpointed plan)";
  }
  for (auto& ch : gs.chains) {
    std::string err = ch.LoadState(r);
    if (!err.empty()) return err;
  }
  if (!r.ok()) return "group state truncated";
  return "";
}

void Engine::SaveBufferedEvents(
    const std::function<void(const Event&)>& fn) const {
  auto copy = reorder_;  // priority_queue exposes no iteration; drain a copy
  while (!copy.empty()) {
    fn(copy.top());
    copy.pop();
  }
}

void Engine::RestoreBufferedEvent(const Event& e) { reorder_.push(e); }

}  // namespace sharon
