#include "src/exec/chain_runner.h"

#include <algorithm>
#include <cassert>

namespace sharon {

ChainRunner::ChainRunner(std::vector<QueryId> queries,
                         std::vector<SegmentCounter*> counters,
                         WindowSpec window)
    : queries_(std::move(queries)),
      counters_(std::move(counters)),
      window_(window),
      stages_(counters_.size()) {}

void ChainRunner::OnEvent(const Event& e, AttrValue group,
                          ResultCollector& out) {
#ifndef NDEBUG
  // Ordering contract (see header): a regression here means an
  // out-of-order event bypassed the watermark reorder buffer.
  assert(e.time > last_time_ && "ChainRunner requires in-order events");
  last_time_ = e.time;
#endif
  // Boundary handling: at most one stage has e.type as its START type
  // (types are unique within a query pattern). Process it before the final
  // emission so a single-event last segment sees its own snapshot.
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i]->start_type() == e.type) {
      TakeSnapshot(i, e);
      break;
    }
  }
  if (counters_.back()->end_type() == e.type) {
    EmitFinal(e, group, out);
  }
}

std::vector<ChainRunner::PaneAgg> ChainRunner::TakePaneVector() {
  if (pane_pool_.empty()) return {};
  std::vector<PaneAgg> v = std::move(pane_pool_.back());
  pane_pool_.pop_back();
  v.clear();
  return v;
}

void ChainRunner::TakeSnapshot(size_t stage, const Event& e) {
  SegmentCounter& counter = *counters_[stage];
  // The engine updated the counter on this event already, creating the
  // start entry for e.
  const StartId sid = counter.NewestStartId();

  Snapshot snap;
  snap.start = sid;
  snap.start_time = e.time;

  if (stage == 0) {
    // F_0: one empty-chain unit in the pane of the chain's first event.
    snap.per_pane = TakePaneVector();
    snap.per_pane.push_back({window_.PaneOf(e.time), AggState::Identity()});
    stages_[0].push_back(std::move(snap));
    return;
  }

  // F_stage[e] = sum over live stage-1 snapshots s' of
  //             Concat(F_{stage-1}[s'], complete_{stage-1}[s'] as of now).
  // All seg_{stage-1} completions seen so far finished strictly before e
  // (timestamps are strict), so this freezes exactly the chains that may
  // legally precede e.
  auto& prev = stages_[stage - 1];
  SegmentCounter& prev_counter = *counters_[stage - 1];
  // Ascending panes, merged across snapshots (recycled buffer).
  std::vector<PaneAgg> acc = TakePaneVector();
  for (size_t i = 0; i < prev.size(); ++i) {
    Snapshot& prev_snap = prev[i];
    if (!PrunePanes(prev_snap, e.time)) continue;
    const AggState& complete = prev_counter.CompleteFor(prev_snap.start);
    if (complete.IsZero()) continue;
    for (const PaneAgg& pa : prev_snap.per_pane) {
      AggState piece = AggState::Concat(pa.agg, complete);
      if (piece.IsZero()) continue;
      // Insert into acc keeping ascending pane order (few panes).
      auto pos = std::lower_bound(
          acc.begin(), acc.end(), pa.pane,
          [](const PaneAgg& x, PaneId p) { return x.pane < p; });
      if (pos != acc.end() && pos->pane == pa.pane) {
        pos->agg.MergeFrom(piece);
      } else {
        acc.insert(pos, {pa.pane, piece});
      }
    }
  }
  if (acc.empty()) {  // nothing can precede e; skip storing
    pane_pool_.push_back(std::move(acc));
    return;
  }
  snap.per_pane = std::move(acc);
  stages_[stage].push_back(std::move(snap));
}

void ChainRunner::EmitFinal(const Event& e, AttrValue group,
                            ResultCollector& out) {
  SegmentCounter& last = *counters_.back();
  const auto& deltas = last.last_deltas();
  if (deltas.empty()) return;
  auto& snaps = stages_.back();
  const WindowId first_w = window_.FirstWindowCovering(e.time);

  // Batch all of this event's deltas by the pane of the chain's first
  // event, then fold the pane buckets into per-window accumulators and
  // touch the result map ONCE per (window, query). The number of live
  // panes is at most length/slide, so the map traffic per END event
  // drops from O(deltas * panes * windows) to O(windows) per query.
  pane_batch_.clear();
  for (const SegmentCounter::CompleteDelta& d : deltas) {
    // Find the snapshot for this start (ascending StartId order).
    size_t lo = 0, hi = snaps.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (snaps[mid].start < d.start) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == snaps.size() || snaps[lo].start != d.start) continue;
    Snapshot& snap = snaps[lo];
    if (!PrunePanes(snap, e.time)) continue;
    for (const PaneAgg& pa : snap.per_pane) {
      AggState full = AggState::Concat(pa.agg, d.delta);
      if (full.IsZero()) continue;
      auto pos = std::lower_bound(
          pane_batch_.begin(), pane_batch_.end(), pa.pane,
          [](const PaneAgg& x, PaneId p) { return x.pane < p; });
      if (pos != pane_batch_.end() && pos->pane == pa.pane) {
        pos->agg.MergeFrom(full);
      } else {
        pane_batch_.insert(pos, {pa.pane, full});
      }
    }
  }
  if (pane_batch_.empty()) return;
  // Chain first events in pane p contribute to windows j in [first_w, p]:
  // window j collects every pane >= j. Walk windows descending with a
  // running suffix sum over the (ascending) pane buckets.
  const WindowId base_w = std::max<WindowId>(first_w, 0);
  const WindowId last_w = pane_batch_.back().pane;
  if (last_w < base_w) return;
  window_batch_.assign(static_cast<size_t>(last_w - base_w + 1),
                       AggState::Zero());
  size_t pane_idx = pane_batch_.size();
  AggState suffix = AggState::Zero();
  for (WindowId j = last_w; j >= base_w; --j) {
    while (pane_idx > 0 && pane_batch_[pane_idx - 1].pane >= j) {
      suffix.MergeFrom(pane_batch_[--pane_idx].agg);
    }
    window_batch_[static_cast<size_t>(j - base_w)] = suffix;
    if (j == 0) break;  // WindowId is unsigned in spirit; avoid wrap
  }
  for (WindowId j = base_w; j <= last_w; ++j) {
    const AggState& agg = window_batch_[static_cast<size_t>(j - base_w)];
    for (QueryId q : queries_) out.Add(q, j, group, agg);
  }
}

bool ChainRunner::PrunePanes(Snapshot& s, Timestamp now) const {
  // Pane p feeds windows j <= p; the newest of them ends at
  // p*slide + length. Once now passes that, the pane is dead.
  auto& v = s.per_pane;
  size_t drop = 0;
  while (drop < v.size() &&
         v[drop].pane * window_.slide + window_.length <= now) {
    ++drop;
  }
  if (drop > 0) v.erase(v.begin(), v.begin() + drop);
  return !v.empty();
}

size_t ChainRunner::ExpireBefore(Timestamp now) {
  size_t panes_freed = 0;
  for (auto& stage : stages_) {
    while (!stage.empty() && window_.Expired(stage.front().start_time, now)) {
      panes_freed += std::max<size_t>(stage.front().per_pane.size(), 1);
      pane_pool_.push_back(std::move(stage.front().per_pane));
      stage.pop_front();
    }
    // Snapshots whose own start is live may still hold dead panes (the
    // chain's first event is older than the snapshot); prune those too so
    // watermark-driven eviction leaves only reachable state behind.
    for (size_t i = 0; i < stage.size(); ++i) {
      Snapshot& s = stage[i];
      const size_t before = s.per_pane.size();
      PrunePanes(s, now);
      panes_freed += before - s.per_pane.size();
    }
  }
  return panes_freed;
}

size_t ChainRunner::NumLivePanes() const {
  size_t n = 0;
  for (const auto& stage : stages_) {
    for (size_t i = 0; i < stage.size(); ++i) n += stage[i].per_pane.size();
  }
  return n;
}

bool ChainRunner::Empty() const {
  for (const auto& stage : stages_) {
    if (!stage.empty()) return false;
  }
  return true;
}

void ChainRunner::SaveState(serde::BinaryWriter& w) const {
  w.U64(stages_.size());
  for (const auto& stage : stages_) {
    serde::SaveRingDeque(
        w, stage, [](serde::BinaryWriter& out, const Snapshot& s) {
          out.U64(s.start);
          out.I64(s.start_time);
          out.U64(s.per_pane.size());
          for (const PaneAgg& pa : s.per_pane) {
            out.I64(pa.pane);
            SaveAggState(out, pa.agg);
          }
        });
  }
}

std::string ChainRunner::LoadState(serde::BinaryReader& r) {
  const uint64_t nstages = r.U64();
  if (nstages != stages_.size()) {
    return "chain stage count mismatch (plan does not match the "
           "checkpointed plan)";
  }
  for (auto& stage : stages_) {
    serde::LoadRingDeque(r, stage, [](serde::BinaryReader& in, Snapshot& s) {
      s.start = in.U64();
      s.start_time = in.I64();
      const uint64_t npanes = in.U64();
      s.per_pane.clear();
      for (uint64_t i = 0; i < npanes && in.ok(); ++i) {
        PaneAgg pa;
        pa.pane = in.I64();
        pa.agg = LoadAggState(in);
        s.per_pane.push_back(pa);
      }
    });
  }
  if (!r.ok()) return "chain runner state truncated";
#ifndef NDEBUG
  // The restored engine releases only events at or above its reorder
  // frontier, all later than anything processed before the checkpoint, so
  // the ordering contract stays intact with the sentinel reset.
  last_time_ = -1;
#endif
  return "";
}

size_t ChainRunner::EstimatedBytes() const {
  size_t bytes = 0;
  for (const auto& stage : stages_) {
    bytes += stage.size() * sizeof(Snapshot);
    for (size_t i = 0; i < stage.size(); ++i) {
      bytes += stage[i].per_pane.size() * sizeof(PaneAgg);
    }
  }
  return bytes;
}

}  // namespace sharon
