#include "src/exec/multi_engine.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace sharon {

std::shared_ptr<const MultiEnginePlan> PlanMultiEngine(
    const Workload& workload, const CostModel& cost_model,
    const OptimizerConfig& config) {
  auto plan = std::make_shared<MultiEnginePlan>();
  if (workload.empty()) {
    plan->error = "empty workload";
    return plan;
  }
  plan->total_queries = workload.size();
  plan->routes.resize(workload.size());

  // Group queries into uniform segments by (window, partition attribute).
  std::map<std::tuple<Duration, Duration, AttrIndex>, size_t> index;
  for (const Query& q : workload.queries()) {
    auto key = std::make_tuple(q.window.length, q.window.slide,
                               q.partition_attr);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, plan->segments.size()).first;
      plan->segments.emplace_back();
    }
    MultiEnginePlan::Segment& seg = plan->segments[it->second];
    Query local = q;  // re-keyed by Workload::Add
    QueryId local_id = seg.workload.Add(std::move(local));
    seg.original_ids.push_back(q.id);
    plan->routes[q.id] = {it->second, local_id};
  }

  // Optimize and compile each segment independently (§7.2: sharing within
  // segments only).
  for (MultiEnginePlan::Segment& seg : plan->segments) {
    OptimizerResult opt = OptimizeSharon(seg.workload, cost_model, config);
    seg.compiled = CompilePlanShared(seg.workload, opt.plan, &plan->error);
    if (!seg.compiled) return plan;
    plan->plans.push_back(std::move(opt));
  }
  return plan;
}

MultiEngine::MultiEngine(const Workload& workload, const CostModel& cost_model,
                         const OptimizerConfig& config)
    : MultiEngine(PlanMultiEngine(workload, cost_model, config)) {}

MultiEngine::MultiEngine(std::shared_ptr<const MultiEnginePlan> plan)
    : plan_(std::move(plan)) {
  if (!plan_) {
    error_ = "null multi-engine plan";
    plan_ = std::make_shared<MultiEnginePlan>();
    return;
  }
  if (!plan_->ok()) {
    error_ = plan_->error;
    return;
  }
  engines_.reserve(plan_->segments.size());
  for (const MultiEnginePlan::Segment& seg : plan_->segments) {
    engines_.push_back(std::make_unique<Engine>(seg.workload, seg.compiled));
    if (!engines_.back()->ok()) {
      error_ = engines_.back()->error();
      return;
    }
  }
}

void MultiEngine::OnEvent(const Event& e) {
  for (auto& engine : engines_) engine->OnEvent(e);
}

void MultiEngine::SetDisorderPolicy(const DisorderPolicy& policy) {
  for (auto& engine : engines_) engine->SetDisorderPolicy(policy);
}

void MultiEngine::AdvanceWatermark(Timestamp t) {
  for (auto& engine : engines_) engine->AdvanceWatermark(t);
}

void MultiEngine::CloseStream() {
  for (auto& engine : engines_) engine->CloseStream();
}

bool MultiEngine::Finalized(QueryId query, WindowId window) const {
  const MultiEnginePlan::Route& r = plan_->routes.at(query);
  return engines_[r.segment]->Finalized(window);
}

WatermarkStats MultiEngine::watermark_stats() const {
  // Every segment engine sees the SAME arrival stream, so stream-level
  // counters (late drops, regressions, buffer peak) must not be summed
  // across segments — that would overcount by the segment count. They
  // combine by max (identical in practice); per-engine state counters
  // (eviction, finalization) are disjoint and sum; the frontier is the
  // minimum. Contrast WatermarkStats::MergeFrom, whose additive semantics
  // fit shards that each see a disjoint slice of the stream.
  WatermarkStats out;
  for (const auto& engine : engines_) {
    const WatermarkStats& ws = engine->watermark_stats();
    if (out.watermark == kNoWatermark || ws.watermark < out.watermark) {
      out.watermark = ws.watermark;
    }
    if (out.safe_point == kNoWatermark || ws.safe_point < out.safe_point) {
      out.safe_point = ws.safe_point;
    }
    out.late_dropped = std::max(out.late_dropped, ws.late_dropped);
    out.regressions = std::max(out.regressions, ws.regressions);
    out.buffered_peak = std::max(out.buffered_peak, ws.buffered_peak);
    out.evicted_panes += ws.evicted_panes;
    out.evicted_groups += ws.evicted_groups;
    out.finalized_windows += ws.finalized_windows;
    out.finalized_cells += ws.finalized_cells;
  }
  return out;
}

LiveState MultiEngine::LiveStateSnapshot() const {
  LiveState live;
  for (const auto& engine : engines_) {
    live.MergeFrom(engine->LiveStateSnapshot());
  }
  return live;
}

RunStats MultiEngine::Run(const std::vector<Event>& events,
                          Duration duration) {
  RunStats stats;
  StopWatch watch;
  for (const Event& e : events) OnEvent(e);
  stats.wall_seconds = watch.ElapsedSeconds();
  stats.events_processed = events.size() * plan_->total_queries;
  stats.peak_state_bytes = EstimatedBytes();
  (void)duration;
  return stats;
}

double MultiEngine::Value(QueryId query, WindowId window, AttrValue group,
                          AggFunction fn) const {
  return Get(query, window, group).Final(fn);
}

AggState MultiEngine::Get(QueryId query, WindowId window,
                          AttrValue group) const {
  const MultiEnginePlan::Route& r = plan_->routes.at(query);
  return engines_[r.segment]->results().Get(r.local, window, group);
}

size_t MultiEngine::num_shared_counters() const {
  size_t n = 0;
  for (const auto& engine : engines_) n += engine->num_shared_counters();
  return n;
}

size_t MultiEngine::EstimatedBytes() const {
  size_t n = 0;
  for (const auto& engine : engines_) n += engine->EstimatedBytes();
  return n;
}

}  // namespace sharon
