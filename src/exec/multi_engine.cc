#include "src/exec/multi_engine.h"

#include <map>

namespace sharon {

MultiEngine::MultiEngine(const Workload& workload, const CostModel& cost_model,
                         const OptimizerConfig& config) {
  if (workload.empty()) {
    error_ = "empty workload";
    return;
  }
  total_queries_ = workload.size();
  routes_.resize(workload.size());

  // Group queries into uniform segments by (window, partition attribute).
  std::map<std::tuple<Duration, Duration, AttrIndex>, size_t> index;
  for (const Query& q : workload.queries()) {
    auto key = std::make_tuple(q.window.length, q.window.slide,
                               q.partition_attr);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, segments_.size()).first;
      segments_.emplace_back();
    }
    Segment& seg = segments_[it->second];
    Query local = q;  // re-keyed by Workload::Add
    QueryId local_id = seg.workload.Add(std::move(local));
    seg.original_ids.push_back(q.id);
    routes_[q.id] = {it->second, local_id};
  }

  // Optimize and instantiate each segment independently (§7.2: sharing
  // within segments only).
  for (Segment& seg : segments_) {
    OptimizerResult opt = OptimizeSharon(seg.workload, cost_model, config);
    seg.engine = std::make_unique<Engine>(seg.workload, opt.plan);
    if (!seg.engine->ok()) {
      error_ = seg.engine->error();
      return;
    }
    plans_.push_back(std::move(opt));
  }
}

void MultiEngine::OnEvent(const Event& e) {
  for (Segment& seg : segments_) seg.engine->OnEvent(e);
}

RunStats MultiEngine::Run(const std::vector<Event>& events,
                          Duration duration) {
  RunStats stats;
  StopWatch watch;
  for (const Event& e : events) OnEvent(e);
  stats.wall_seconds = watch.ElapsedSeconds();
  stats.events_processed = events.size() * total_queries_;
  stats.peak_state_bytes = EstimatedBytes();
  (void)duration;
  return stats;
}

double MultiEngine::Value(QueryId query, WindowId window, AttrValue group,
                          AggFunction fn) const {
  return Get(query, window, group).Final(fn);
}

AggState MultiEngine::Get(QueryId query, WindowId window,
                          AttrValue group) const {
  const Route& r = routes_.at(query);
  return segments_[r.segment].engine->results().Get(r.local, window, group);
}

size_t MultiEngine::num_shared_counters() const {
  size_t n = 0;
  for (const Segment& seg : segments_) n += seg.engine->num_shared_counters();
  return n;
}

size_t MultiEngine::EstimatedBytes() const {
  size_t n = 0;
  for (const Segment& seg : segments_) n += seg.engine->EstimatedBytes();
  return n;
}

}  // namespace sharon
