// ChainRunner: evaluates one query as a chain of segments and combines the
// segments' shared aggregates into final per-window results.
//
// This generalises the paper's prefix/p/suffix combination (§3.3, Fig. 7):
// a valid sharing plan may assign several disjoint shared patterns to one
// query (the paper's own optimal plan gives q4 both p2 and p4), so a query
// pattern is compiled into segments seg_0..seg_{k-1}, each evaluated by a
// SegmentCounter (shared or private). The A-Seq non-shared method is the
// k = 1 special case.
//
// Combination works through *snapshots*. When a START event s of seg_i
// arrives, the runner freezes
//     F_i[s] = sum over seg_{i-1} starts s' of Concat(F_{i-1}[s'], c_{i-1}[s'])
// — the aggregate of all chains through seg_0..seg_{i-1} completed strictly
// before s ("the count of prefix_i is multiplied with the count for each
// START event of p", §3.3 step 2). Snapshots are bucketed by the *pane*
// (slide bucket) of the chain's first event: all first events in one pane
// belong to exactly the same windows, so per-window results stay exact
// under sliding-window expiration with at most length/slide buckets per
// snapshot. When the END event e of the last segment arrives, the per-start
// complete deltas are concatenated with the frozen snapshots and folded
// into every window containing both the first-event pane and e.

#ifndef SHARON_EXEC_CHAIN_RUNNER_H_
#define SHARON_EXEC_CHAIN_RUNNER_H_

#include <string>
#include <vector>

#include "src/common/ring_deque.h"
#include "src/common/serde.h"
#include "src/exec/result.h"
#include "src/exec/segment_counter.h"

namespace sharon {

/// Executes one segment chain against shared/private counters, emitting
/// results for every subscribed query (queries whose plans produced the
/// same segment sequence share the whole chain).
class ChainRunner {
 public:
  /// `counters` are the chain's segments in pattern order; they are owned
  /// by the engine and updated (once per event) before chain OnEvent runs.
  ChainRunner(std::vector<QueryId> queries,
              std::vector<SegmentCounter*> counters, WindowSpec window);

  /// Processes one event *after* all counters processed it. Only START
  /// types of segments and the END type of the last segment do work.
  /// `group` is the partition value the engine routed this event by.
  ///
  /// ORDERING CONTRACT (audited for the watermark subsystem): events MUST
  /// arrive in strictly increasing time order. Pane bucketing depends on
  /// it in three load-bearing places —
  ///   * TakeSnapshot appends stage-0 snapshots to the deque back, so the
  ///     deques are ascending in both StartId and start_time;
  ///   * ExpireBefore pops expired snapshots from the front only;
  ///   * PrunePanes drops dead panes from the front of the (ascending)
  ///     per-pane vector only.
  /// A late first event landing in an already-emitted pane would corrupt
  /// all three silently, and the upstream SegmentCounter prefix machine
  /// is equally order-dependent (a late event could never extend through
  /// sequences that should follow it). Out-of-order ingestion is
  /// therefore handled strictly upstream: Engine's watermark reorder
  /// buffer releases events in time order (src/exec/engine.h), and this
  /// class rejects regressions loudly in debug builds instead of
  /// corrupting state (tests/chain_runner_test.cc regression-tests the
  /// slide-not-dividing-length case through the watermark path).
  void OnEvent(const Event& e, AttrValue group, ResultCollector& out);

  /// Drops snapshots that can no longer contribute to any open window.
  /// Returns the number of pane buckets freed (eviction accounting).
  size_t ExpireBefore(Timestamp now);

  const std::vector<QueryId>& queries() const { return queries_; }
  size_t num_stages() const { return counters_.size(); }

  /// Live pane buckets across all stage snapshots (bounded-state census).
  size_t NumLivePanes() const;

  /// True when no snapshot state is held (group state is evictable).
  bool Empty() const;

  /// Logical state footprint in bytes (snapshots).
  size_t EstimatedBytes() const;

  // --- checkpoint/restore (src/checkpoint/) -----------------------------

  /// Serializes the frozen combination state: per stage, every live
  /// snapshot's (start id, start time, pane buckets). Pane-vector pools
  /// and scratch buffers are storage details and not saved. StartIds stay
  /// meaningful because SegmentCounter::SaveState preserves its id base.
  void SaveState(serde::BinaryWriter& w) const;

  /// Restores state saved by SaveState into a runner built from the SAME
  /// chain template (stage count must match). Empty string on success.
  std::string LoadState(serde::BinaryReader& r);

 private:
  struct PaneAgg {
    PaneId pane = 0;
    AggState agg;
  };

  /// Frozen combination state for one START event of one stage.
  struct Snapshot {
    StartId start = 0;
    Timestamp start_time = 0;
    std::vector<PaneAgg> per_pane;  ///< ascending pane ids
  };

  /// Builds F_{stage}[new start of e] from stage-1 snapshots.
  void TakeSnapshot(size_t stage, const Event& e);

  /// Folds last-segment complete deltas into window results.
  void EmitFinal(const Event& e, AttrValue group, ResultCollector& out);

  /// Drops expired panes from a snapshot; true if anything remains.
  bool PrunePanes(Snapshot& s, Timestamp now) const;

  /// A recycled (or fresh) empty pane vector from the pool.
  std::vector<PaneAgg> TakePaneVector();

  std::vector<QueryId> queries_;
  std::vector<SegmentCounter*> counters_;
  WindowSpec window_;
  /// Per stage, ascending StartId. Ring buffers + a recycled pane-vector
  /// pool: snapshot birth and expiration allocate nothing in steady
  /// state (DESIGN.md "Hot-path memory layout").
  std::vector<RingDeque<Snapshot>> stages_;
  std::vector<std::vector<PaneAgg>> pane_pool_;  ///< recycled per_pane buffers
  std::vector<PaneAgg> pane_batch_;    ///< EmitFinal scratch (reused)
  std::vector<AggState> window_batch_; ///< EmitFinal per-window scratch
#ifndef NDEBUG
  Timestamp last_time_ = -1;  ///< ordering-contract check (debug only)
#endif
};

}  // namespace sharon

#endif  // SHARON_EXEC_CHAIN_RUNNER_H_
