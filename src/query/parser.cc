#include "src/query/parser.h"

#include <cctype>
#include <vector>

namespace sharon {
namespace {

// Whitespace/punctuation tokenizer. Parens, brackets, commas and dots are
// their own tokens; everything else groups into words.
std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (char ch : text) {
    if (std::isspace(static_cast<unsigned char>(ch))) {
      flush();
    } else if (ch == '(' || ch == ')' || ch == ',' || ch == '[' || ch == ']' ||
               ch == '.' || ch == '*') {
      flush();
      out.push_back(std::string(1, ch));
    } else {
      cur.push_back(ch);
    }
  }
  flush();
  return out;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

// Cursor over the token list with convenience matchers.
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> toks) : toks_(std::move(toks)) {}

  bool Done() const { return i_ >= toks_.size(); }
  const std::string& Peek() const { return toks_[i_]; }
  std::string Take() { return toks_[i_++]; }

  /// Consumes the next token if it case-insensitively equals `kw`.
  bool Accept(std::string_view kw) {
    if (Done()) return false;
    if (Upper(toks_[i_]) != Upper(std::string(kw))) return false;
    ++i_;
    return true;
  }

  bool AcceptSymbol(char c) {
    if (Done() || toks_[i_].size() != 1 || toks_[i_][0] != c) return false;
    ++i_;
    return true;
  }

 private:
  std::vector<std::string> toks_;
  size_t i_ = 0;
};

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  int64_t v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

// "<n> min|sec|s|ticks" -> ticks. A missing unit means ticks.
bool ParseDuration(Cursor& cur, Duration* out, std::string* err) {
  if (cur.Done()) {
    *err = "expected duration";
    return false;
  }
  int64_t n;
  if (!ParseInt(cur.Take(), &n)) {
    *err = "expected integer duration";
    return false;
  }
  if (cur.Accept("min") || cur.Accept("minutes")) {
    *out = Minutes(n);
  } else if (cur.Accept("sec") || cur.Accept("s") || cur.Accept("seconds")) {
    *out = Seconds(n);
  } else {
    cur.Accept("ticks");
    *out = n;
  }
  return true;
}

// COUNT ( * ) | COUNT ( E ) | SUM|MIN|MAX|AVG ( E . attr )
bool ParseReturn(Cursor& cur, TypeRegistry& types, const StreamSchema& schema,
                 AggSpec* out, std::string* err) {
  AggFunction fn;
  if (cur.Accept("COUNT")) {
    fn = AggFunction::kCountType;  // refined below for '*'
  } else if (cur.Accept("SUM")) {
    fn = AggFunction::kSum;
  } else if (cur.Accept("MIN")) {
    fn = AggFunction::kMin;
  } else if (cur.Accept("MAX")) {
    fn = AggFunction::kMax;
  } else if (cur.Accept("AVG")) {
    fn = AggFunction::kAvg;
  } else {
    *err = "expected aggregation function after RETURN";
    return false;
  }
  if (!cur.AcceptSymbol('(')) {
    *err = "expected '(' after aggregation function";
    return false;
  }
  if (fn == AggFunction::kCountType && cur.AcceptSymbol('*')) {
    if (!cur.AcceptSymbol(')')) {
      *err = "expected ')' after COUNT(*";
      return false;
    }
    *out = AggSpec::CountStar();
    return true;
  }
  if (cur.Done()) {
    *err = "expected event type in aggregation";
    return false;
  }
  EventTypeId type = types.Intern(cur.Take());
  AttrIndex attr = kNoAttr;
  if (cur.AcceptSymbol('.')) {
    if (cur.Done()) {
      *err = "expected attribute after '.'";
      return false;
    }
    std::string attr_name = cur.Take();
    attr = schema.Find(attr_name);
    if (attr == kNoAttr) {
      *err = "unknown attribute '" + attr_name + "'";
      return false;
    }
  } else if (fn != AggFunction::kCountType) {
    *err = "aggregation over an attribute requires 'Type.attr'";
    return false;
  }
  if (!cur.AcceptSymbol(')')) {
    *err = "expected ')' closing aggregation";
    return false;
  }
  *out = AggSpec::Of(fn, type, attr);
  return true;
}

}  // namespace

ParseResult ParseQuery(std::string_view text, TypeRegistry& types,
                       const StreamSchema& schema) {
  Cursor cur(Tokenize(text));
  Query q;
  std::string err;

  if (!cur.Accept("RETURN")) return ParseResult::Error("expected RETURN");
  if (!ParseReturn(cur, types, schema, &q.agg, &err)) {
    return ParseResult::Error(err);
  }

  if (!cur.Accept("PATTERN") || !cur.Accept("SEQ") || !cur.AcceptSymbol('(')) {
    return ParseResult::Error("expected PATTERN SEQ(...)");
  }
  std::vector<EventTypeId> seq;
  while (!cur.Done() && !cur.AcceptSymbol(')')) {
    if (cur.AcceptSymbol(',')) continue;
    seq.push_back(types.Intern(cur.Take()));
  }
  if (seq.empty()) return ParseResult::Error("empty PATTERN");
  q.pattern = Pattern(std::move(seq));

  if (cur.Accept("WHERE")) {
    if (!cur.AcceptSymbol('[')) {
      return ParseResult::Error("expected '[attr]' after WHERE");
    }
    if (cur.Done()) return ParseResult::Error("expected attribute in WHERE");
    std::string attr_name = cur.Take();
    q.partition_attr = schema.Find(attr_name);
    if (q.partition_attr == kNoAttr) {
      return ParseResult::Error("unknown attribute '" + attr_name + "'");
    }
    if (!cur.AcceptSymbol(']')) {
      return ParseResult::Error("expected ']' closing WHERE predicate");
    }
  }

  if (cur.Accept("GROUP")) {
    if (!cur.Accept("BY")) return ParseResult::Error("expected BY after GROUP");
    if (cur.Done()) return ParseResult::Error("expected attribute after GROUP BY");
    std::string attr_name = cur.Take();
    AttrIndex a = schema.Find(attr_name);
    if (a == kNoAttr) {
      return ParseResult::Error("unknown attribute '" + attr_name + "'");
    }
    if (q.partition_attr != kNoAttr && q.partition_attr != a) {
      return ParseResult::Error(
          "WHERE equivalence and GROUP BY must name the same attribute");
    }
    q.partition_attr = a;
  }

  if (!cur.Accept("WITHIN")) return ParseResult::Error("expected WITHIN");
  if (!ParseDuration(cur, &q.window.length, &err)) return ParseResult::Error(err);
  if (!cur.Accept("SLIDE")) return ParseResult::Error("expected SLIDE");
  if (!ParseDuration(cur, &q.window.slide, &err)) return ParseResult::Error(err);
  if (!q.window.Valid()) {
    return ParseResult::Error("invalid window: need 0 < slide <= length");
  }
  if (!cur.Done()) {
    return ParseResult::Error("trailing tokens after SLIDE clause: '" +
                              cur.Peek() + "'");
  }

  ParseResult r;
  r.ok = true;
  r.query = std::move(q);
  return r;
}

}  // namespace sharon
