// Sliding-window arithmetic (Def. 2, WITHIN/SLIDE clause).
//
// Windows are identified by a dense WindowId j, window j covering the
// half-open tick interval [j*slide, j*slide + length). A sequence whose
// first event is at t1 and last at t2 belongs to every window containing
// both, i.e. j in [FirstWindowCovering(t2), LastWindowCovering(t1)].
//
// A *pane* is one slide-width bucket (t / slide). The Sharon executor
// buckets chain-start snapshots by pane: all sequence starts in the same
// pane belong to exactly the same set of windows, which is what makes
// shared combination window-exact without per-window state (DESIGN.md §3).

#ifndef SHARON_QUERY_WINDOW_H_
#define SHARON_QUERY_WINDOW_H_

#include <algorithm>
#include <cstdint>

#include "src/common/time.h"

namespace sharon {

/// Dense identifier of a sliding window instance.
using WindowId = int64_t;

/// Dense identifier of a slide-width pane.
using PaneId = int64_t;

/// WITHIN length SLIDE slide (both in ticks). slide must divide into the
/// stream sensibly but is not required to divide length.
struct WindowSpec {
  Duration length = 0;
  Duration slide = 0;

  bool Valid() const { return length > 0 && slide > 0 && slide <= length; }

  PaneId PaneOf(Timestamp t) const { return t / slide; }

  /// Start tick of window j.
  Timestamp WindowStart(WindowId j) const { return j * slide; }

  /// End tick (exclusive) of window j.
  Timestamp WindowEnd(WindowId j) const { return j * slide + length; }

  /// Largest j with j*slide <= t: the last window whose start covers t.
  WindowId LastWindowCovering(Timestamp t) const { return t / slide; }

  /// Smallest j >= 0 with t < j*slide + length.
  WindowId FirstWindowCovering(Timestamp t) const {
    // j > (t - length) / slide  <=>  j >= floor((t - length) / slide) + 1
    if (t < length) return 0;
    return (t - length) / slide + 1;
  }

  /// Number of panes per window, rounded up: the maximal number of windows
  /// any single time point belongs to.
  int64_t PanesPerWindow() const { return (length + slide - 1) / slide; }

  /// A start event is expired relative to `now` iff no window contains
  /// both (§3.2: the START event expires first). Exact: the last window
  /// whose start covers `start` must still cover `now`. (The weaker test
  /// now-start >= length misses starts stranded between window starts when
  /// slide does not align.)
  bool Expired(Timestamp start, Timestamp now) const {
    return LastWindowCovering(start) < FirstWindowCovering(now);
  }

  bool operator==(const WindowSpec&) const = default;
};

}  // namespace sharon

#endif  // SHARON_QUERY_WINDOW_H_
