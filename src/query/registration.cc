#include "src/query/registration.h"

namespace sharon::query {

const std::vector<LiveInterval> QueryRegistry::kNoIntervals;

const char* ChurnRefusalName(ChurnRefusal code) {
  switch (code) {
    case ChurnRefusal::kNone:
      return "none";
    case ChurnRefusal::kUnknownQuery:
      return "unknown_query";
    case ChurnRefusal::kNotLive:
      return "not_live";
    case ChurnRefusal::kAlreadyLive:
      return "already_live";
    case ChurnRefusal::kLastActiveQuery:
      return "last_active_query";
    case ChurnRefusal::kNotUniform:
      return "not_uniform";
    case ChurnRefusal::kBadQuery:
      return "bad_query";
  }
  return "unknown";
}

namespace {

ChurnResult Refuse(ChurnRefusal code, std::string reason) {
  ChurnResult r;
  r.code = code;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

QueryRegistry::QueryRegistry(Workload* workload) : workload_(workload) {
  // Queries present at construction are live since stream start: their
  // one interval opens at 0 and is still open.
  intervals_.resize(workload_->size());
  for (QueryId id = 0; id < workload_->size(); ++id) {
    if (workload_->active(id)) intervals_[id].push_back({0, kWatermarkMax});
  }
}

ChurnResult QueryRegistry::Register(Query q) {
  if (q.pattern.length() == 0) {
    return Refuse(ChurnRefusal::kBadQuery, "register: empty pattern");
  }
  if (!workload_->empty()) {
    // Assumption 2 (§2.1) holds for the whole vector — retired queries
    // included — so Uniform() stays a cheap invariant everywhere else.
    if (!(q.window == workload_->window()) ||
        q.partition_attr != workload_->partition_attr()) {
      return Refuse(ChurnRefusal::kNotUniform,
                    "register: window/partition differs from the workload's "
                    "(partition the stream instead, section 7.2)");
    }
  }
  const QueryId id = workload_->Add(std::move(q));
  intervals_.emplace_back();  // opens at the commit boundary
  pending_.push_back({ChurnOp::Kind::kRegister, id});
  ChurnResult r;
  r.accepted = true;
  r.id = id;
  return r;
}

ChurnResult QueryRegistry::Retire(QueryId id) {
  if (id >= workload_->size()) {
    return Refuse(ChurnRefusal::kUnknownQuery,
                  "retire: unknown query id " + std::to_string(id));
  }
  if (!workload_->active(id)) {
    return Refuse(ChurnRefusal::kNotLive,
                  "retire: query " + std::to_string(id) + " is not live");
  }
  if (workload_->num_active() == 1) {
    return Refuse(ChurnRefusal::kLastActiveQuery,
                  "retire: query " + std::to_string(id) +
                      " is the last active query (an empty standing set has "
                      "no compilable plan)");
  }
  workload_->SetActive(id, false);
  pending_.push_back({ChurnOp::Kind::kRetire, id});
  ChurnResult r;
  r.accepted = true;
  r.id = id;
  return r;
}

ChurnResult QueryRegistry::Reactivate(QueryId id) {
  if (id >= workload_->size()) {
    return Refuse(ChurnRefusal::kUnknownQuery,
                  "reactivate: unknown query id " + std::to_string(id));
  }
  if (workload_->active(id)) {
    return Refuse(ChurnRefusal::kAlreadyLive,
                  "reactivate: query " + std::to_string(id) +
                      " is already live");
  }
  workload_->SetActive(id, true);
  pending_.push_back({ChurnOp::Kind::kRegister, id});
  ChurnResult r;
  r.accepted = true;
  r.id = id;
  return r;
}

void QueryRegistry::CommitPending(Timestamp boundary) {
  for (const ChurnOp& op : pending_) {
    std::vector<LiveInterval>& iv = intervals_[op.id];
    if (op.kind == ChurnOp::Kind::kRegister) {
      iv.push_back({boundary, kWatermarkMax});
      ++registrations_;
    } else {
      // A register+retire pair still pending together collapses to the
      // empty interval (boundary, boundary] — never live, zero windows.
      if (!iv.empty() && iv.back().until == kWatermarkMax) {
        iv.back().until = boundary;
      }
      ++retirements_;
    }
  }
  pending_.clear();
}

bool QueryRegistry::live(QueryId id) const {
  return id < workload_->size() && workload_->active(id);
}

const std::vector<LiveInterval>& QueryRegistry::intervals(QueryId id) const {
  if (id >= intervals_.size()) return kNoIntervals;
  return intervals_[id];
}

bool QueryRegistry::OwnsWindowClose(QueryId id, Timestamp close) const {
  for (const LiveInterval& iv : intervals(id)) {
    if (iv.from < close && close <= iv.until) return true;
  }
  return false;
}

}  // namespace sharon::query
