// A small textual query language mirroring the paper's SASE-style examples
// (Fig. 1 / Fig. 2), for the example programs and tests:
//
//   RETURN COUNT(*)
//   PATTERN SEQ(OakSt, MainSt)
//   WHERE [vehicle]
//   WITHIN 10 min SLIDE 1 min
//
// Also supported in the RETURN clause: COUNT(E), SUM(E.attr), MIN(E.attr),
// MAX(E.attr), AVG(E.attr); and GROUP BY attr as an alternative to the
// equivalence predicate. WITHIN/SLIDE take "<n> min|sec|ticks".
//
// Parse errors are reported via ParseResult; there are no exceptions.

#ifndef SHARON_QUERY_PARSER_H_
#define SHARON_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "src/common/schema.h"
#include "src/query/query.h"

namespace sharon {

/// Outcome of parsing one query string.
struct ParseResult {
  bool ok = false;
  std::string error;
  Query query;

  static ParseResult Error(std::string msg) {
    ParseResult r;
    r.error = std::move(msg);
    return r;
  }
};

/// Parses one query. Event type names are interned into `types`; attribute
/// names must already exist in `schema`.
ParseResult ParseQuery(std::string_view text, TypeRegistry& types,
                       const StreamSchema& schema);

}  // namespace sharon

#endif  // SHARON_QUERY_PARSER_H_
