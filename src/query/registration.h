// Live query churn: register/retire standing queries against a RUNNING
// runtime (ROADMAP "Query churn at scale", modeled on RedisGears'
// FlatExecutionPlan register/unregister lifecycle).
//
// The registry is the DESIRED standing query set; the runtime's compiled
// plan is the CURRENT incarnation. A churn call validates, flips the
// workload's active mask immediately (desired state), and enqueues a
// ChurnOp. The ops take effect at the next watermark-aligned plan-swap
// boundary — the driver (adaptive::PlanManager) compiles a plan over the
// new active set and reuses the existing hot-swap protocol
// (src/runtime/plan_swap.h), so a changed query set is just another
// compiled-plan handoff. When the runtime ACCEPTS a swap with boundary B,
// the driver calls CommitPending(B) and the registry records each op's
// live interval:
//
//   - a REGISTERED query owns windows closing strictly after B: the new
//     engine starts with SetResultsFloor(B), and the dual-run tee hands it
//     every event of its first full window;
//   - a RETIRED query keeps windows closing at or before B: the old engine
//     finalizes them and retires into the shard archive, where the id
//     stays readable forever (result-surface identity).
//
// Every (query, window) pair is therefore finalized by exactly ONE plan
// incarnation (DESIGN.md invariant) — the differential churn suite
// (tests/query_churn_diff_test.cc) checks the finalized cells of every id
// bit-identically against an oracle restricted to that id's live
// intervals.
//
// Threading: all methods are ingest-thread only, like the runtime's
// swap/checkpoint requests. Mutating the workload while shard workers run
// is safe because workers never read workload contents after engine
// construction (they execute the immutable CompiledEngine).

#ifndef SHARON_QUERY_REGISTRATION_H_
#define SHARON_QUERY_REGISTRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/common/watermark.h"
#include "src/query/query.h"

namespace sharon::query {

/// Why a churn call was refused (the churn analogue of runtime::OpRefusal;
/// refusals are typed so callers and tests can branch without string
/// matching).
enum class ChurnRefusal : uint8_t {
  kNone = 0,
  kUnknownQuery = 1,     ///< id was never registered
  kNotLive = 2,          ///< retire of an already-retired id
  kAlreadyLive = 3,      ///< re-register (reactivate) of a live id
  kLastActiveQuery = 4,  ///< retiring would empty the standing set
  kNotUniform = 5,       ///< window/partition differs from the workload's
  kBadQuery = 6,         ///< empty pattern / no registry attached
};

/// Stable lower_snake_case name of `code` (diagnostics, OPERATIONS.md).
const char* ChurnRefusalName(ChurnRefusal code);

/// One queued churn operation, applied at the next accepted swap boundary.
struct ChurnOp {
  enum class Kind : uint8_t { kRegister = 0, kRetire = 1 };
  Kind kind = Kind::kRegister;
  QueryId id = 0;
};

/// Outcome of one churn call. `id` is the assigned query id on an
/// accepted Register (callers need it before the op commits).
struct ChurnResult {
  bool accepted = false;
  ChurnRefusal code = ChurnRefusal::kNone;
  std::string reason;  ///< human diagnostic when !accepted
  QueryId id = 0;
};

/// Half-open-below interval (from, until]: the query owns exactly the
/// windows whose CLOSE time lies in this range. `from` == 0 means "since
/// stream start"; `until` == kWatermarkMax means "still live".
struct LiveInterval {
  Timestamp from = 0;
  Timestamp until = kWatermarkMax;
};

/// Desired-state registry over one master Workload. The workload must
/// outlive the registry; queries present at construction are live since
/// stream start.
class QueryRegistry {
 public:
  explicit QueryRegistry(Workload* workload);

  /// Registers a NEW standing query: validates uniformity against the
  /// workload's common window/partition, appends it active (fresh dense
  /// id), and queues a kRegister op. The query produces results beginning
  /// at the next accepted swap boundary.
  ChurnResult Register(Query q);

  /// Retires a live query: its id keeps already-finalized windows
  /// readable, but no window closing after the commit boundary is ever
  /// computed for it. Refuses unknown ids, already-retired ids, and
  /// retiring the last active query (an empty standing set has no
  /// compilable plan).
  ChurnResult Retire(QueryId id);

  /// Re-registers a previously retired id (same pattern/agg), opening a
  /// NEW live interval at the next boundary. Refuses unknown ids and ids
  /// that are currently live.
  ChurnResult Reactivate(QueryId id);

  /// Ops enqueued but not yet committed at a swap boundary.
  const std::vector<ChurnOp>& pending() const { return pending_; }

  /// Called by the churn driver when a plan swap carrying the pending ops
  /// was ACCEPTED with watermark-aligned boundary B: opens registered
  /// queries' intervals at B, closes retired queries' intervals at B, and
  /// clears the queue. ANY accepted swap commits — drift-triggered swaps
  /// compile from the same active mask, so they realize pending churn at
  /// their boundary too.
  void CommitPending(Timestamp boundary);

  /// Desired liveness of `id` (false for unknown ids).
  bool live(QueryId id) const;

  /// Number of queries desired live (committed or pending).
  size_t num_live() const { return workload_->num_active(); }

  /// Committed live intervals of `id` (empty vector for unknown ids). An
  /// op still pending has not opened/closed its interval yet.
  const std::vector<LiveInterval>& intervals(QueryId id) const;

  /// True when a (query, window) cell belongs to `id`'s result surface:
  /// some committed live interval contains the window's close time.
  bool OwnsWindowClose(QueryId id, Timestamp close) const;

  const Workload& workload() const { return *workload_; }

  uint64_t registrations() const { return registrations_; }   ///< committed
  uint64_t retirements() const { return retirements_; }       ///< committed

 private:
  Workload* workload_;
  std::vector<ChurnOp> pending_;
  std::vector<std::vector<LiveInterval>> intervals_;  ///< indexed by id
  static const std::vector<LiveInterval> kNoIntervals;
  uint64_t registrations_ = 0;
  uint64_t retirements_ = 0;
};

}  // namespace sharon::query

#endif  // SHARON_QUERY_REGISTRATION_H_
