#include "src/query/aggregate.h"

#include <cmath>

namespace sharon {

double AggState::Final(AggFunction fn) const {
  switch (fn) {
    case AggFunction::kCountStar:
      return count;
    case AggFunction::kCountType:
      return target_count;
    case AggFunction::kSum:
      return sum;
    case AggFunction::kMin:
      return count > 0 && min != std::numeric_limits<double>::infinity()
                 ? min
                 : std::numeric_limits<double>::quiet_NaN();
    case AggFunction::kMax:
      return count > 0 && max != -std::numeric_limits<double>::infinity()
                 ? max
                 : std::numeric_limits<double>::quiet_NaN();
    case AggFunction::kAvg:
      return target_count > 0 ? sum / target_count
                              : std::numeric_limits<double>::quiet_NaN();
  }
  return std::numeric_limits<double>::quiet_NaN();
}

EventContribution ContributionOf(const Event& e, const AggSpec& spec) {
  EventContribution c;
  if (spec.fn == AggFunction::kCountStar) return c;
  if (e.type != spec.target_type) return c;
  c.is_target = true;
  c.target = 1;
  double v = spec.fn == AggFunction::kCountType
                 ? 1.0
                 : static_cast<double>(e.attr(spec.target_attr));
  c.add = v;
  c.value = v;
  return c;
}

const char* AggFunctionName(AggFunction fn) {
  switch (fn) {
    case AggFunction::kCountStar:
      return "COUNT(*)";
    case AggFunction::kCountType:
      return "COUNT";
    case AggFunction::kSum:
      return "SUM";
    case AggFunction::kMin:
      return "MIN";
    case AggFunction::kMax:
      return "MAX";
    case AggFunction::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggSpec::ToString(const TypeRegistry& reg) const {
  if (fn == AggFunction::kCountStar) return "COUNT(*)";
  std::string s = AggFunctionName(fn);
  s += "(";
  s += target_type != kInvalidType ? reg.Name(target_type) : "?";
  if (fn != AggFunction::kCountType && target_attr != kNoAttr) {
    s += ".attr" + std::to_string(target_attr);
  }
  s += ")";
  return s;
}

}  // namespace sharon
