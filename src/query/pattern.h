// Event sequence patterns (Sharon Def. 1) and positional sub-pattern
// arithmetic used by the sharing model (Defs. 4 and 6).

#ifndef SHARON_QUERY_PATTERN_H_
#define SHARON_QUERY_PATTERN_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/common/event.h"

namespace sharon {

/// An event sequence pattern P = (E1 ... El), l >= 1 (Def. 1).
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<EventTypeId> types) : types_(std::move(types)) {}

  size_t length() const { return types_.size(); }
  bool empty() const { return types_.empty(); }
  EventTypeId type(size_t i) const { return types_[i]; }
  const std::vector<EventTypeId>& types() const { return types_; }

  EventTypeId front() const { return types_.front(); }
  EventTypeId back() const { return types_.back(); }

  /// Contiguous sub-pattern [begin, begin+len).
  Pattern Sub(size_t begin, size_t len) const {
    return Pattern(std::vector<EventTypeId>(types_.begin() + begin,
                                            types_.begin() + begin + len));
  }

  /// Positions at which `sub` occurs contiguously in this pattern.
  /// Under the paper's assumption 3 (a type appears at most once per
  /// pattern) there is at most one occurrence, but the general form is
  /// needed for the §7.3 extension.
  std::vector<size_t> FindOccurrences(const Pattern& sub) const;

  /// First occurrence of `sub`, if any.
  std::optional<size_t> Find(const Pattern& sub) const;

  /// True if some occurrence of `a` overlaps positionally with some
  /// occurrence of `b` inside this pattern (Def. 6 specialised to
  /// contiguous occurrences: position ranges intersect).
  bool Overlaps(const Pattern& a, const Pattern& b) const;

  /// Number of occurrences of event type `t` (the k factor of §7.3).
  size_t CountType(EventTypeId t) const;

  /// Renders as "(A,B,C)" using the registry.
  std::string ToString(const TypeRegistry& reg) const;

  bool operator==(const Pattern& other) const = default;

  /// Lexicographic order; used to keep candidates sorted in plans (§6).
  bool operator<(const Pattern& other) const { return types_ < other.types_; }

 private:
  std::vector<EventTypeId> types_;
};

/// Hash functor so patterns can key hash tables (Alg. 1 / Alg. 7).
struct PatternHash {
  size_t operator()(const Pattern& p) const {
    size_t h = 1469598103934665603ULL;
    for (EventTypeId t : p.types()) {
      h ^= t + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace sharon

#endif  // SHARON_QUERY_PATTERN_H_
