// The aggregate semiring underlying both the A-Seq executor (§3.2) and the
// Sharon shared executor (§3.3).
//
// A single state, AggState, summarises a *set of event sequences*:
//   count        — number of sequences (COUNT(*))
//   sum          — sum over sequences of the per-sequence sum of the target
//                  attribute (SUM(E.attr); with contribution 1 per target
//                  event it also yields COUNT(E))
//   target_count — number of target-type events across all sequences
//                  (COUNT(E); AVG = sum / target_count)
//   min / max    — min/max of the target attribute over all events of the
//                  target type in all sequences (MIN/MAX(E.attr))
//
// Three operations cover everything the paper needs:
//   Extend(A, c)  — append one event (with contribution c) to every sequence
//                   of A: the A-Seq prefix-count update (Fig. 6a).
//   Concat(A, B)  — concatenate two independently aggregated sequence sets:
//                   the Sharon count-combination step (Fig. 7).
//   Merge(A, B)   — disjoint union of two sequence sets (summing counts).
//
// All three are O(1); distributive and algebraic aggregates compose through
// them exactly (Gray et al.'s cube classification, cited by the paper).

#ifndef SHARON_QUERY_AGGREGATE_H_
#define SHARON_QUERY_AGGREGATE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "src/common/event.h"
#include "src/common/serde.h"

namespace sharon {

/// Which aggregation function a query's RETURN clause computes (Def. 2).
enum class AggFunction : uint8_t {
  kCountStar,  ///< COUNT(*)  — number of matched sequences
  kCountType,  ///< COUNT(E)  — number of E events across matched sequences
  kSum,        ///< SUM(E.attr)
  kMin,        ///< MIN(E.attr)
  kMax,        ///< MAX(E.attr)
  kAvg,        ///< AVG(E.attr) = SUM(E.attr) / COUNT(E)
};

/// Aggregation specification: function + target type/attribute.
/// COUNT(*) ignores the target.
struct AggSpec {
  AggFunction fn = AggFunction::kCountStar;
  EventTypeId target_type = kInvalidType;
  AttrIndex target_attr = kNoAttr;

  static AggSpec CountStar() { return {}; }
  static AggSpec Of(AggFunction f, EventTypeId type, AttrIndex attr) {
    return {f, type, attr};
  }

  bool operator==(const AggSpec&) const = default;

  std::string ToString(const TypeRegistry& reg) const;
};

/// Per-event contribution to an AggState, derived from AggSpec.
struct EventContribution {
  double add = 0;        ///< added to `sum` per sequence the event joins
  double target = 0;     ///< 1 if the event is of the target type, else 0
  double value = 0;      ///< attribute value (min/max candidate) if target
  bool is_target = false;
};

/// Aggregated summary of a set of event sequences. See file comment.
struct AggState {
  double count = 0;
  double sum = 0;
  double target_count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// The empty set of sequences.
  static AggState Zero() { return {}; }

  /// The set containing exactly one empty sequence. Identity of Concat.
  static AggState Identity() {
    AggState s;
    s.count = 1;
    return s;
  }

  /// The set containing the single one-event sequence with contribution c.
  static AggState Unit(const EventContribution& c) {
    AggState s;
    s.count = 1;
    s.sum = c.add;
    s.target_count = c.target;
    if (c.is_target) {
      s.min = c.value;
      s.max = c.value;
    }
    return s;
  }

  bool IsZero() const { return count == 0; }

  /// Disjoint union: sequences of `this` plus sequences of `o`.
  void MergeFrom(const AggState& o) {
    count += o.count;
    sum += o.sum;
    target_count += o.target_count;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  /// Sequences of `a`, each extended by one event with contribution `c`.
  static AggState Extend(const AggState& a, const EventContribution& c) {
    if (a.IsZero()) return Zero();
    AggState s;
    s.count = a.count;
    s.sum = a.sum + a.count * c.add;
    s.target_count = a.target_count + a.count * c.target;
    s.min = c.is_target ? std::min(a.min, c.value) : a.min;
    s.max = c.is_target ? std::max(a.max, c.value) : a.max;
    return s;
  }

  /// Cross-concatenation: every sequence of `a` followed by every sequence
  /// of `b`. This is the shared-method combination step (§3.3): counts
  /// multiply, sums cross-scale, min/max combine.
  static AggState Concat(const AggState& a, const AggState& b) {
    if (a.IsZero() || b.IsZero()) return Zero();
    AggState s;
    s.count = a.count * b.count;
    s.sum = a.sum * b.count + b.sum * a.count;
    s.target_count = a.target_count * b.count + b.target_count * a.count;
    s.min = std::min(a.min, b.min);
    s.max = std::max(a.max, b.max);
    return s;
  }

  /// Extracts the final answer for `fn`. Returns NaN for MIN/MAX/AVG over
  /// an empty set.
  double Final(AggFunction fn) const;

  bool operator==(const AggState&) const = default;
};

/// Serializes an AggState as five IEEE-754 bit patterns — restores
/// bit-identical, which is what lets checkpoint round-trips be compared
/// with operator== (src/checkpoint/).
inline void SaveAggState(serde::BinaryWriter& w, const AggState& s) {
  w.F64(s.count);
  w.F64(s.sum);
  w.F64(s.target_count);
  w.F64(s.min);
  w.F64(s.max);
}

inline AggState LoadAggState(serde::BinaryReader& r) {
  AggState s;
  s.count = r.F64();
  s.sum = r.F64();
  s.target_count = r.F64();
  s.min = r.F64();
  s.max = r.F64();
  return s;
}

/// Computes the contribution of `e` under `spec`.
EventContribution ContributionOf(const Event& e, const AggSpec& spec);

/// Human-readable name of an aggregation function.
const char* AggFunctionName(AggFunction fn);

}  // namespace sharon

#endif  // SHARON_QUERY_AGGREGATE_H_
