#include "src/query/pattern.h"

namespace sharon {

std::vector<size_t> Pattern::FindOccurrences(const Pattern& sub) const {
  std::vector<size_t> out;
  if (sub.empty() || sub.length() > length()) return out;
  for (size_t i = 0; i + sub.length() <= length(); ++i) {
    bool match = true;
    for (size_t j = 0; j < sub.length(); ++j) {
      if (types_[i + j] != sub.type(j)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(i);
  }
  return out;
}

std::optional<size_t> Pattern::Find(const Pattern& sub) const {
  auto occ = FindOccurrences(sub);
  if (occ.empty()) return std::nullopt;
  return occ.front();
}

bool Pattern::Overlaps(const Pattern& a, const Pattern& b) const {
  for (size_t ia : FindOccurrences(a)) {
    size_t a_end = ia + a.length();  // exclusive
    for (size_t ib : FindOccurrences(b)) {
      size_t b_end = ib + b.length();
      if (ia < b_end && ib < a_end) return true;
    }
  }
  return false;
}

size_t Pattern::CountType(EventTypeId t) const {
  size_t k = 0;
  for (EventTypeId x : types_) k += (x == t);
  return k;
}

std::string Pattern::ToString(const TypeRegistry& reg) const {
  std::string s = "(";
  for (size_t i = 0; i < types_.size(); ++i) {
    if (i) s += ",";
    s += reg.Name(types_[i]);
  }
  s += ")";
  return s;
}

}  // namespace sharon
