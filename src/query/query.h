// Event sequence aggregation queries and workloads (Sharon Def. 2, §2.1).

#ifndef SHARON_QUERY_QUERY_H_
#define SHARON_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/query/aggregate.h"
#include "src/query/pattern.h"
#include "src/query/window.h"

namespace sharon {

/// Dense identifier of a query within a workload.
using QueryId = uint32_t;

/// An event sequence aggregation query (Def. 2):
/// RETURN agg PATTERN SEQ(E1..El) [WHERE [attr]] [GROUP BY attr]
/// WITHIN length SLIDE slide.
///
/// The paper's WHERE [vehicle] predicate requires all events of a sequence
/// to agree on an attribute, which is evaluated by partitioning the stream
/// on that attribute — the same mechanism as GROUP BY (§7.2). We therefore
/// represent both with `partition_attr`; kNoAttr means neither clause.
struct Query {
  QueryId id = 0;
  std::string name;
  Pattern pattern;
  AggSpec agg;
  WindowSpec window;
  AttrIndex partition_attr = kNoAttr;

  size_t length() const { return pattern.length(); }
};

/// A workload Q of queries sharing one input stream.
///
/// Under the paper's initial assumptions (§2.1, assumption 2) all queries
/// have the same predicates, grouping and windows; `Uniform()` checks this.
/// The §7.2 extension (different groupings / windows) is handled upstream by
/// stream partitioning, so the core engines require Uniform() workloads.
///
/// Query churn (src/query/registration.h) never removes entries: ids are
/// dense vector indices and a mountain of code relies on id == index
/// (graph construction, cost model, the two-step oracle), so a retired
/// query stays in the vector with its `active` flag cleared. Plan
/// compilation and candidate mining skip inactive queries; result readers
/// keep resolving retired ids against already-finalized cells.
class Workload {
 public:
  Workload() = default;

  /// Adds a query, assigning its id. Returns the id. New queries start
  /// active.
  QueryId Add(Query q) {
    q.id = static_cast<QueryId>(queries_.size());
    queries_.push_back(std::move(q));
    active_.push_back(true);
    return queries_.back().id;
  }

  const std::vector<Query>& queries() const { return queries_; }
  const Query& query(QueryId id) const { return queries_.at(id); }
  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  /// True while `id` is part of the standing query set. Compilation and
  /// the sharing optimizer only consider active queries; the id itself
  /// stays valid forever (see the class comment).
  bool active(QueryId id) const { return active_.at(id); }

  /// Flips a query's standing-set membership (ingest/churn thread only:
  /// shard workers never read workload contents after construction, which
  /// is what makes live churn safe without locks).
  void SetActive(QueryId id, bool on) { active_.at(id) = on; }

  /// Number of active (standing) queries.
  size_t num_active() const {
    size_t n = 0;
    for (const bool a : active_) n += a ? 1 : 0;
    return n;
  }

  /// True if all queries agree on window and partitioning (assumption 2).
  bool Uniform() const {
    for (const Query& q : queries_) {
      if (!(q.window == queries_.front().window) ||
          q.partition_attr != queries_.front().partition_attr) {
        return false;
      }
    }
    return true;
  }

  /// The common window of a Uniform() workload.
  const WindowSpec& window() const { return queries_.front().window; }

  /// The common partition attribute of a Uniform() workload.
  AttrIndex partition_attr() const { return queries_.front().partition_attr; }

 private:
  std::vector<Query> queries_;
  std::vector<bool> active_;  ///< parallel to queries_; see class comment
};

}  // namespace sharon

#endif  // SHARON_QUERY_QUERY_H_
