#include "src/streamgen/taxi.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace sharon {

const std::vector<std::string>& TaxiStreetNames() {
  static const std::vector<std::string> kNames = {
      "OakSt",   "MainSt",  "ParkAve", "WestSt",  "StateSt", "ElmSt",
      "LakeDr",  "HillRd",  "RiverRd", "BayAve",  "PineSt",  "HighSt",
      "KingSt",  "QueenSt", "DukeSt",  "MillSt",  "FordAve", "GateWay",
      "NorthSt", "SouthSt", "EastAve", "CampRd",  "DocksRd", "FairWay",
      "GlenRd",  "IvyLn",   "JayCt",   "KnollDr", "LocustSt", "MapleAve",
      "NutmegLn", "OrchardRd"};
  return kNames;
}

namespace {

// Precomputed Zipf sampler over [0, n).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s) {
    cdf_.reserve(n);
    double acc = 0;
    for (uint32_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(acc);
    }
    for (double& v : cdf_) v /= acc;
  }

  uint32_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// A vehicle progresses along a route of streets; each emitted report is the
// next street of its route, restarting with a fresh route when done.
struct Vehicle {
  std::vector<uint32_t> route;
  size_t pos = 0;
};

std::vector<uint32_t> MakeRoute(Rng& rng, const ZipfSampler& zipf,
                                uint32_t num_streets, uint32_t len) {
  std::vector<uint32_t> route;
  route.reserve(len);
  while (route.size() < len) {
    uint32_t street = zipf.Sample(rng) % num_streets;
    // Avoid immediate repeats so per-trip sequences look like movement.
    if (!route.empty() && route.back() == street) continue;
    route.push_back(street);
  }
  return route;
}

}  // namespace

Scenario GenerateTaxi(const TaxiConfig& config) {
  Scenario s;
  const auto& names = TaxiStreetNames();
  for (uint32_t i = 0; i < config.num_streets; ++i) {
    s.types.Intern(names[i % names.size()] +
                   (i < names.size() ? "" : std::to_string(i)));
  }
  s.schema.Register("vehicle");
  s.schema.Register("speed");
  s.duration = config.duration;

  Rng rng(config.seed);
  ZipfSampler zipf(config.num_streets, config.zipf_s);

  std::vector<Vehicle> vehicles(config.num_vehicles);
  for (auto& v : vehicles) {
    v.route = MakeRoute(rng, zipf, config.num_streets, config.route_length);
  }

  const uint64_t total_events = static_cast<uint64_t>(
      config.events_per_second * static_cast<double>(config.duration) /
      kTicksPerSecond);
  s.events.reserve(total_events);
  for (uint64_t i = 0; i < total_events; ++i) {
    Timestamp t = static_cast<Timestamp>(
        static_cast<double>(i) * static_cast<double>(config.duration) /
        static_cast<double>(total_events));
    uint32_t vid = static_cast<uint32_t>(rng.Below(config.num_vehicles));
    Vehicle& v = vehicles[vid];
    if (v.pos >= v.route.size()) {
      v.route = MakeRoute(rng, zipf, config.num_streets, config.route_length);
      v.pos = 0;
    }
    Event e;
    e.time = t;
    e.type = v.route[v.pos++];
    e.attrs = {static_cast<AttrValue>(vid),
               static_cast<AttrValue>(20 + rng.Below(40))};
    s.events.push_back(std::move(e));
  }
  EnforceStrictOrder(&s.events);
  if (!s.events.empty() && s.events.back().time >= s.duration) {
    s.duration = s.events.back().time + 1;
  }
  return s;
}

}  // namespace sharon
