// The paper's running-example workloads, used as ground truth throughout
// the tests, examples and the Table 1 / Fig. 4 bench:
//  - Traffic monitoring q1..q7 (Fig. 1, Table 1, Fig. 4, Examples 5-12).
//  - Purchase monitoring q8..q11 (Fig. 2).
//
// Query patterns for the traffic workload are reverse-engineered from
// Table 1 (the unique assignment of sub-patterns to queries):
//   q1 = (OakSt, MainSt, StateSt)          contains p1, p6
//   q2 = (OakSt, MainSt, WestSt)           contains p1, p4, p5
//   q3 = (ParkAve, OakSt, MainSt)          contains p1, p2, p3
//   q4 = (ParkAve, OakSt, MainSt, WestSt)  contains p1..p5
//   q5 = (MainSt, StateSt)                 contains p6
//   q6 = (ElmSt, ParkAve)                  contains p7
//   q7 = (ElmSt, ParkAve, StateSt)         contains p7
// CCSpan over these yields exactly the candidates p1..p7 of Table 1, and
// with the paper's benefit weights (25, 9, 12, 15, 20, 8, 18) the Sharon
// graph of Fig. 4 with its Example 7/10/12 arithmetic.

#ifndef SHARON_STREAMGEN_FIXTURES_H_
#define SHARON_STREAMGEN_FIXTURES_H_

#include <vector>

#include "src/common/schema.h"
#include "src/query/query.h"

namespace sharon {

/// Traffic running example (Fig. 1): registry, schema and workload q1..q7.
struct TrafficFixture {
  TypeRegistry types;
  StreamSchema schema;
  Workload workload;

  /// The paper's benefit weights of candidates p1..p7 (Fig. 4), keyed by
  /// the pattern of each candidate.
  std::vector<std::pair<Pattern, double>> paper_weights;

  /// The seven sharable patterns of Table 1 in order p1..p7.
  std::vector<Pattern> paper_patterns;
};

TrafficFixture MakeTrafficFixture();

/// Purchase monitoring example (Fig. 2): workload q8..q11 over the
/// e-commerce types (Laptop, Case, Adapter, Keyboard, iPhone,
/// ScreenProtector).
struct PurchaseFixture {
  TypeRegistry types;
  StreamSchema schema;
  Workload workload;
};

PurchaseFixture MakePurchaseFixture();

}  // namespace sharon

#endif  // SHARON_STREAMGEN_FIXTURES_H_
