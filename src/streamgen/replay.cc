#include "src/streamgen/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/metrics.h"

namespace sharon {

ReplayReport ReplayStream(const std::vector<Event>& events,
                          const ReplayConfig& config,
                          const std::function<void(const Event&)>& sink) {
  if (config.disorder.Disorders()) {
    // Materialize the disordered arrival sequence once, then deliver it
    // through the ordered path (injection is deterministic, so a given
    // config always replays the same arrival order).
    ReplayConfig ordered = config;
    ordered.disorder = DisorderConfig{};
    return ReplayStream(InjectDisorder(events, config.disorder), ordered,
                        sink);
  }
  ReplayReport report;
  StopWatch watch;
  if (config.target_events_per_second <= 0) {
    for (const Event& e : events) sink(e);
    report.events_delivered = events.size();
    report.wall_seconds = watch.ElapsedSeconds();
    return report;
  }

  const size_t chunk = config.chunk > 0 ? config.chunk : 1;
  const double rate = config.target_events_per_second;
  size_t delivered = 0;
  while (delivered < events.size()) {
    const size_t end = std::min(delivered + chunk, events.size());
    for (size_t i = delivered; i < end; ++i) sink(events[i]);
    delivered = end;
    // Sleep off any lead over the target schedule.
    const double due = static_cast<double>(delivered) / rate;
    const double lead = due - watch.ElapsedSeconds();
    if (lead > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(lead));
    }
  }
  report.events_delivered = delivered;
  report.wall_seconds = watch.ElapsedSeconds();
  return report;
}

ReplayReport ReplayScenario(const Scenario& scenario,
                            const ReplayConfig& config,
                            const std::function<void(const Event&)>& sink) {
  return ReplayStream(scenario.events, config, sink);
}

}  // namespace sharon
