#include "src/streamgen/rate_monitor.h"

#include <algorithm>

namespace sharon {

void RateMonitor::OnEvent(const Event& e) {
  const int64_t epoch_id = e.time / epoch_;
  if (current_epoch_ < 0) {
    current_epoch_ = epoch_id;
  } else if (epoch_id > current_epoch_) {
    CloseEpochsUpTo(epoch_id);
  }
  // epoch_id <= current_epoch_ falls through: a bounded-disorder feed can
  // straddle an epoch boundary backwards, and re-opening the closed epoch
  // would thrash the deque (close the fresh epoch with almost no counts,
  // then close the stale one again). Folding the straggler into the
  // current epoch keeps every epoch closed exactly once and biases the
  // estimate by at most the disorder budget.
  if (e.type >= current_.counts.size()) {
    current_.counts.resize(e.type + 1, 0.0);
  }
  current_.counts[e.type] += 1.0;
}

void RateMonitor::CloseEpochsUpTo(int64_t up_to) {
  closed_.push_back(std::move(current_));
  // Epochs the stream skipped entirely close empty (at most window_epochs_
  // of them matter; anything older would be evicted immediately).
  const int64_t gap = up_to - current_epoch_ - 1;
  const int64_t cap = static_cast<int64_t>(window_epochs_);
  for (int64_t i = 0; i < std::min(gap, cap); ++i) {
    closed_.push_back(EpochCounts{});
  }
  if (gap > cap) epochs_dropped_ += static_cast<size_t>(gap - cap);
  while (closed_.size() > window_epochs_) {
    closed_.pop_front();
    ++epochs_dropped_;
  }
  current_ = EpochCounts{};
  current_epoch_ = up_to;
}

TypeRates RateMonitor::CurrentRates() const {
  size_t max_types = current_.counts.size();
  for (const EpochCounts& ec : closed_) {
    max_types = std::max(max_types, ec.counts.size());
  }
  std::vector<double> totals(max_types, 0.0);
  for (const EpochCounts& ec : closed_) {
    for (size_t t = 0; t < ec.counts.size(); ++t) totals[t] += ec.counts[t];
  }
  const double seconds = closed_.empty()
                             ? 1.0
                             : static_cast<double>(closed_.size()) *
                                   static_cast<double>(epoch_) /
                                   kTicksPerSecond;
  TypeRates rates;
  for (size_t t = 0; t < max_types; ++t) {
    rates.Set(static_cast<EventTypeId>(t), totals[t] / seconds);
  }
  return rates;
}

void RateMonitor::RebaseOnCurrent() {
  baseline_ = CurrentRates();
  has_baseline_ = true;
}

bool RateMonitor::DriftDetected() const {
  if (!has_baseline_) return false;
  TypeRates now = CurrentRates();
  const size_t n = std::max(now.size(), baseline_.size());
  for (size_t t = 0; t < n; ++t) {
    const double cur = now.Of(static_cast<EventTypeId>(t));
    const double base = baseline_.Of(static_cast<EventTypeId>(t));
    if (cur <= 1.0 && base <= 1.0) continue;  // ignore negligible types
    if (Relative(cur, base) > drift_threshold_) return true;
  }
  return false;
}

}  // namespace sharon
