#include "src/streamgen/scenario.h"

namespace sharon {

void EnforceStrictOrder(std::vector<Event>* events) {
  Timestamp last = -1;
  for (Event& e : *events) {
    if (e.time <= last) e.time = last + 1;
    last = e.time;
  }
}

}  // namespace sharon
