// §7.4 extension: runtime statistics for dynamic workloads.
//
// RateMonitor maintains sliding per-type rate estimates over recent
// epochs and flags drift: when current rates diverge from the rates the
// active sharing plan was optimized for, the caller should re-run the
// Sharon optimizer and migrate plans (see examples/dynamic_workload.cpp).

#ifndef SHARON_STREAMGEN_RATE_MONITOR_H_
#define SHARON_STREAMGEN_RATE_MONITOR_H_

#include <deque>

#include "src/streamgen/rates.h"

namespace sharon {

/// Sliding-epoch per-type rate estimator with drift detection.
class RateMonitor {
 public:
  /// `epoch` is the aggregation granularity; the estimate averages over
  /// the most recent `window_epochs` epochs.
  RateMonitor(Duration epoch, size_t window_epochs = 4,
              double drift_threshold = 0.5)
      : epoch_(epoch),
        window_epochs_(window_epochs),
        drift_threshold_(drift_threshold) {}

  /// Observes one event. Events should be roughly in time order; an event
  /// straddling back over an already-closed epoch boundary (bounded
  /// disorder) is folded into the CURRENT epoch rather than re-opening the
  /// old one, so the sliding estimate never double-closes an epoch. Epochs
  /// that pass with no events at all close empty, decaying the estimate
  /// toward zero instead of freezing it at the last busy epoch's rates.
  void OnEvent(const Event& e);

  /// Current estimate over the sliding window of closed epochs.
  TypeRates CurrentRates() const;

  /// Marks the current estimate as the baseline the active plan was
  /// optimized for (call after re-optimizing).
  void RebaseOnCurrent();

  /// True if the current estimate's relative deviation from the baseline
  /// exceeds the drift threshold for any type with meaningful rate.
  bool DriftDetected() const;

  /// Number of fully closed epochs observed so far.
  size_t epochs_closed() const { return closed_.size() + epochs_dropped_; }

 private:
  struct EpochCounts {
    std::vector<double> counts;
  };

  /// Closes the current epoch (and any empty epochs the stream skipped)
  /// so that `up_to` becomes the new current epoch.
  void CloseEpochsUpTo(int64_t up_to);

  static double Relative(double now, double base) {
    double denom = base > 1e-9 ? base : 1e-9;
    return now > base ? (now - base) / denom : (base - now) / denom;
  }

  Duration epoch_;
  size_t window_epochs_;
  double drift_threshold_;

  int64_t current_epoch_ = -1;
  EpochCounts current_;
  std::deque<EpochCounts> closed_;
  size_t epochs_dropped_ = 0;
  TypeRates baseline_;
  bool has_baseline_ = false;
};

}  // namespace sharon

#endif  // SHARON_STREAMGEN_RATE_MONITOR_H_
