// Rate-drift scenario: a stream whose per-type rates FLIP between phases,
// built to make a statically chosen sharing plan visibly suboptimal.
//
// The type alphabet is split into two clusters, A = [0, num_types/2) and
// B = [num_types/2, num_types). In even phases cluster A carries
// `hot_share` of the traffic, in odd phases cluster B does. Each group
// walks each cluster's types in cyclic order, so consecutive-type SEQ
// patterns inside a cluster have real matches — and the paired workload
// (DriftWorkload) has heavily-overlapping queries inside EACH cluster.
//
// The effect on the §3 cost model is the point: sharing benefit and
// composition cost are functions of the pattern types' rates (Eq. 1-8),
// and the paired workload (DriftWorkload) is built so the OPTIMAL
// conflict resolution flips with the hot cluster. Two candidate patterns
// overlap at a pivot type inside a family of bridge queries — an
// either/or the optimizer must resolve — and whichever candidate wins
// decides where the bridges' private gap segment begins: at a hot type
// (every hot event opens a new A-Seq start in every bridge's private
// counter, the expensive resolution) or at a cold one (the cheap
// resolution). A plan frozen at phase 0 keeps the resolution that is
// about to become the expensive one. Note the flip has to cross the
// boundary: benefit is homogeneous in rates, so conflicts contained
// inside ONE cluster are rate-flip-invariant (scaling a cluster's rates
// scales its candidates' benefits together and changes nothing).
// The adaptive planner (src/adaptive/) detects the flip and swaps;
// bench_adaptive_drift.cc measures the gap, tests/adaptive_swap_test.cc
// proves the swap exact.

#ifndef SHARON_STREAMGEN_DRIFT_H_
#define SHARON_STREAMGEN_DRIFT_H_

#include <cstdint>

#include "src/query/query.h"
#include "src/streamgen/scenario.h"

namespace sharon {

/// Configuration of the rate-drift stream.
struct DriftConfig {
  uint32_t num_types = 8;      ///< split into two clusters of half each
  uint32_t num_groups = 16;    ///< distinct entity ids (groups)
  double events_per_second = 1000;
  Duration phase_length = Seconds(30);
  uint32_t num_phases = 2;     ///< >= 2 for at least one rate flip
  /// Fraction of events drawn from the phase's hot cluster. The cold
  /// cluster keeps the remainder so its queries still produce results.
  double hot_share = 0.85;
  uint64_t seed = 11;
};

/// Generates the drifting stream. schema: attrs[0]=entity, attrs[1]=value.
Scenario GenerateDrift(const DriftConfig& config);

/// A uniform workload tailored to the drift stream, all queries on one
/// window and partitioned by entity (config.num_types >= 8):
///   - `anchors_per_side` copies of PA = (h-3, h-2, h-1) (inside cluster
///     A) and of PB = (h-1, h, h+1) (straddling into B), h = num_types/2;
///   - `bridges` queries containing both, (h-3 .. h+1, unique tail).
/// PA and PB overlap at the pivot h-1 inside every bridge, so their
/// candidates conflict and exactly one can be shared — the rate-flip
/// decides which (see the header comment), which makes the phase-0 plan
/// measurably wrong after the first flip.
Workload DriftWorkload(const DriftConfig& config, const WindowSpec& window,
                       uint32_t anchors_per_side = 8, uint32_t bridges = 3);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_DRIFT_H_
