// Scalable query-workload generator for the parameter sweeps of §8
// ("we evaluate 20 queries; the default length of their patterns is 10").
//
// Queries are generated in clusters: each cluster draws a "backbone"
// sequence of distinct event types and every query in the cluster takes a
// contiguous slice of it. Overlapping slices give exactly the kind of
// common contiguous sub-patterns (and sharing conflicts) the paper's
// workloads exhibit, while distinct types per backbone keep assumption 3
// (a type appears at most once per pattern) intact.

#ifndef SHARON_STREAMGEN_WORKLOAD_GEN_H_
#define SHARON_STREAMGEN_WORKLOAD_GEN_H_

#include <cstdint>

#include "src/query/query.h"

namespace sharon {

/// Configuration of the workload generator.
struct WorkloadGenConfig {
  uint32_t num_queries = 20;     ///< paper default (§8.1)
  uint32_t pattern_length = 10;  ///< paper default (§8.1)
  uint32_t cluster_size = 4;     ///< queries per backbone
  uint32_t backbone_extra = 4;   ///< backbone length = pattern_length + extra
  WindowSpec window{Minutes(10), Minutes(1)};
  AttrIndex partition_attr = 0;
  AggSpec agg = AggSpec::CountStar();
  uint64_t seed = 1;
};

/// Generates `config.num_queries` queries over the first `num_types` event
/// types of a registry. Pattern lengths are capped by the alphabet size.
Workload GenerateWorkload(const WorkloadGenConfig& config, uint32_t num_types);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_WORKLOAD_GEN_H_
