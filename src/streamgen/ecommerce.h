// EC: e-commerce purchase stream (paper §1 and §8.1).
//
// Matches the paper's generator description exactly: "sequences of items
// bought together for 3 hours. Each event carries a time stamp in seconds,
// item and customer identifiers. We consider 50 items and 20 users. The
// values of item and customer identifiers of an event are randomly
// generated. The stream rate is 3k events per second."

#ifndef SHARON_STREAMGEN_ECOMMERCE_H_
#define SHARON_STREAMGEN_ECOMMERCE_H_

#include <cstdint>

#include "src/streamgen/scenario.h"

namespace sharon {

/// Configuration of the synthetic e-commerce stream.
struct EcommerceConfig {
  uint32_t num_items = 50;      ///< distinct item event types
  uint32_t num_customers = 20;  ///< distinct customer ids (groups)
  double events_per_second = 3000;
  Duration duration = Minutes(180);
  uint64_t seed = 11;
};

/// Generates the EC scenario. schema: attrs[0]=customer, attrs[1]=price.
/// Item types are Item0..ItemN with the first few aliased to the paper's
/// examples (Laptop, Case, Adapter, iPhone, ScreenProtector, ...).
Scenario GenerateEcommerce(const EcommerceConfig& config);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_ECOMMERCE_H_
