#include "src/streamgen/ecommerce.h"

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace sharon {

Scenario GenerateEcommerce(const EcommerceConfig& config) {
  Scenario s;
  static const char* kNamed[] = {"Laptop", "Case",   "Adapter",
                                 "Keyboard", "iPhone", "ScreenProtector"};
  for (uint32_t i = 0; i < config.num_items; ++i) {
    if (i < sizeof(kNamed) / sizeof(kNamed[0])) {
      s.types.Intern(kNamed[i]);
    } else {
      s.types.Intern("Item" + std::to_string(i));
    }
  }
  s.schema.Register("customer");
  s.schema.Register("price");
  s.duration = config.duration;

  Rng rng(config.seed);
  const uint64_t total_events = static_cast<uint64_t>(
      config.events_per_second * static_cast<double>(config.duration) /
      kTicksPerSecond);
  s.events.reserve(total_events);
  for (uint64_t i = 0; i < total_events; ++i) {
    Event e;
    e.time = static_cast<Timestamp>(
        static_cast<double>(i) * static_cast<double>(config.duration) /
        static_cast<double>(total_events));
    e.type = static_cast<EventTypeId>(rng.Below(config.num_items));
    e.attrs = {static_cast<AttrValue>(rng.Below(config.num_customers)),
               static_cast<AttrValue>(5 + rng.Below(995))};
    s.events.push_back(std::move(e));
  }
  EnforceStrictOrder(&s.events);
  if (!s.events.empty() && s.events.back().time >= s.duration) {
    s.duration = s.events.back().time + 1;
  }
  return s;
}

}  // namespace sharon
