// Bounded-disorder injector: turns a sorted recorded stream into the
// disordered arrival sequence a real feed would deliver, while honouring
// the DisorderPolicy contract (src/common/watermark.h).
//
// Each event is delayed by a deterministic pseudo-random jitter in
// [0, max_lateness] ticks and the stream is re-sorted by arrival; an
// event's occurrence time therefore never trails the observed high-mark
// by more than max_lateness — exactly the bound a watermarked engine is
// promised. Punctuation watermarks carrying the running high-mark are
// stamped in every punctuation_period ticks so downstream consumers can
// advance without a side channel.

#ifndef SHARON_STREAMGEN_DISORDER_H_
#define SHARON_STREAMGEN_DISORDER_H_

#include <cstdint>
#include <vector>

#include "src/common/event.h"
#include "src/common/watermark.h"

namespace sharon {

/// Configuration of one disorder injection.
struct DisorderConfig {
  /// Maximum arrival delay in ticks; 0 keeps the stream sorted.
  Duration max_lateness = 0;

  /// Stamp a watermark punctuation whenever the observed high-mark
  /// crosses another multiple of this period; 0 stamps no watermarks.
  Duration punctuation_period = 0;

  /// Jitter seed (deterministic; same seed + stream = same arrival order).
  uint64_t seed = 1;

  bool Disorders() const {
    return max_lateness > 0 || punctuation_period > 0;
  }
};

/// Returns `sorted` in disordered arrival order with watermarks stamped
/// in. `sorted` must be in non-decreasing time order. Data events keep
/// their original timestamps and payloads; only the arrival order
/// changes. The result length is events + stamped punctuations.
std::vector<Event> InjectDisorder(const std::vector<Event>& sorted,
                                  const DisorderConfig& config);

/// The data events of an arrival sequence, punctuations removed, restored
/// to time order — the stream a sorted-input oracle should see.
std::vector<Event> SortedDataEvents(const std::vector<Event>& arrivals);

/// Largest number of ticks any event in `arrivals` trails the running
/// high-mark (0 for a sorted stream); punctuations are ignored. This is
/// the observed disorder, by construction <= config.max_lateness.
Duration ObservedLateness(const std::vector<Event>& arrivals);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_DISORDER_H_
