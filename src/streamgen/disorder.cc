#include "src/streamgen/disorder.h"

#include <algorithm>

#include "src/common/rng.h"

namespace sharon {

std::vector<Event> InjectDisorder(const std::vector<Event>& sorted,
                                  const DisorderConfig& config) {
  Rng rng(config.seed);

  // Arrival position = occurrence time + jitter in [0, max_lateness].
  // Sorting by arrival key is stable in the original index, so equal
  // arrival keys break ties deterministically and a zero-lateness
  // injection reproduces the input order exactly.
  struct Arrival {
    Timestamp key;
    size_t index;
  };
  std::vector<Arrival> order;
  order.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Duration jitter =
        config.max_lateness > 0
            ? static_cast<Duration>(
                  rng.Below(static_cast<uint64_t>(config.max_lateness) + 1))
            : 0;
    order.push_back({sorted[i].time + jitter, i});
  }
  std::sort(order.begin(), order.end(), [](const Arrival& a, const Arrival& b) {
    return a.key != b.key ? a.key < b.key : a.index < b.index;
  });

  std::vector<Event> out;
  out.reserve(sorted.size() + sorted.size() / 8);
  Timestamp high_mark = kNoWatermark;
  Timestamp next_punctuation =
      config.punctuation_period > 0 ? config.punctuation_period : 0;
  for (const Arrival& a : order) {
    const Event& e = sorted[a.index];
    out.push_back(e);
    if (e.time > high_mark) high_mark = e.time;
    // The high-mark crossed one or more period boundaries: one watermark
    // carrying the current high-mark covers them all.
    if (config.punctuation_period > 0 && high_mark >= next_punctuation) {
      out.push_back(WatermarkEvent(high_mark));
      while (next_punctuation <= high_mark) {
        next_punctuation += config.punctuation_period;
      }
    }
  }
  return out;
}

std::vector<Event> SortedDataEvents(const std::vector<Event>& arrivals) {
  std::vector<Event> out;
  out.reserve(arrivals.size());
  for (const Event& e : arrivals) {
    if (!IsWatermark(e)) out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
  return out;
}

Duration ObservedLateness(const std::vector<Event>& arrivals) {
  Duration worst = 0;
  Timestamp high_mark = kNoWatermark;
  for (const Event& e : arrivals) {
    if (IsWatermark(e)) continue;
    if (e.time > high_mark) {
      high_mark = e.time;
    } else {
      worst = std::max(worst, high_mark - e.time);
    }
  }
  return worst;
}

}  // namespace sharon
