// Rate-controlled stream replay.
//
// Benches and soak tests need to drive an executor at a *target* load
// rather than as-fast-as-possible: ReplayStream delivers a recorded event
// stream to a sink at a configured events/s wall-clock rate (pacing in
// small chunks, sleeping off any accumulated lead) and reports the rate it
// actually achieved. With no target it degenerates to a tight replay
// loop, which is what throughput benches want.

#ifndef SHARON_STREAMGEN_REPLAY_H_
#define SHARON_STREAMGEN_REPLAY_H_

#include <functional>
#include <vector>

#include "src/common/event.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/scenario.h"

namespace sharon {

/// Configuration of one replay.
struct ReplayConfig {
  /// Target delivery rate in events per wall-clock second; 0 replays as
  /// fast as possible (no pacing).
  double target_events_per_second = 0;

  /// Pacing granularity: the driver checks the clock every `chunk`
  /// events. Smaller chunks track the target more tightly but cost more
  /// clock reads.
  size_t chunk = 64;

  /// Disorder knobs: when max_lateness or punctuation_period is set, the
  /// recorded stream is delivered in bounded-disorder arrival order with
  /// watermark punctuations stamped in (see src/streamgen/disorder.h) —
  /// the sink sees what a real disordered feed would deliver and should
  /// run under a matching DisorderPolicy. Punctuations count toward
  /// events_delivered and the pacing rate.
  DisorderConfig disorder;
};

/// What a replay actually did.
struct ReplayReport {
  uint64_t events_delivered = 0;
  double wall_seconds = 0;

  /// Events per wall second actually achieved.
  double AchievedRate() const {
    return wall_seconds > 0
               ? static_cast<double>(events_delivered) / wall_seconds
               : 0;
  }
};

/// Delivers `events` to `sink` in order, paced to `config`. The sink is
/// typically ShardedRuntime::Ingest or Engine::OnEvent bound to the
/// executor instance.
ReplayReport ReplayStream(const std::vector<Event>& events,
                          const ReplayConfig& config,
                          const std::function<void(const Event&)>& sink);

/// Convenience overload for whole scenarios.
ReplayReport ReplayScenario(const Scenario& scenario,
                            const ReplayConfig& config,
                            const std::function<void(const Event&)>& sink);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_REPLAY_H_
