// LR: Linear Road-style position-report stream (paper §8.1).
//
// The Linear Road benchmark's traffic simulator emits car position reports
// whose rate ramps up over the run ("from a few dozen to 4k events per
// second"). We reproduce exactly that property: reports typed by road
// segment, attrs = (car, speed), with a linearly increasing event rate.

#ifndef SHARON_STREAMGEN_LINEAR_ROAD_H_
#define SHARON_STREAMGEN_LINEAR_ROAD_H_

#include <cstdint>

#include "src/streamgen/scenario.h"

namespace sharon {

/// Configuration of the synthetic Linear Road stream.
struct LinearRoadConfig {
  uint32_t num_segments = 20;   ///< distinct segment event types Seg0..SegN
  uint32_t num_cars = 60;       ///< distinct car ids (groups)
  double start_rate = 50;       ///< events/second at stream start
  double end_rate = 4000;       ///< events/second at stream end
  Duration duration = Minutes(30);
  uint64_t seed = 7;
};

/// Generates the LR scenario. schema: attrs[0]=car, attrs[1]=speed.
/// Cars drive down consecutive segments (Seg(k), Seg(k+1), ...), so
/// consecutive-segment patterns have matches.
Scenario GenerateLinearRoad(const LinearRoadConfig& config);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_LINEAR_ROAD_H_
