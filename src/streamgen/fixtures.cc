#include "src/streamgen/fixtures.h"

#include <string>

namespace sharon {
namespace {

Query MakeCountQuery(const std::string& name,
                     std::vector<EventTypeId> pattern_types,
                     const WindowSpec& window, AttrIndex partition) {
  Query q;
  q.name = name;
  q.pattern = Pattern(std::move(pattern_types));
  q.agg = AggSpec::CountStar();
  q.window = window;
  q.partition_attr = partition;
  return q;
}

}  // namespace

TrafficFixture MakeTrafficFixture() {
  TrafficFixture f;
  EventTypeId oak = f.types.Intern("OakSt");
  EventTypeId main = f.types.Intern("MainSt");
  EventTypeId park = f.types.Intern("ParkAve");
  EventTypeId west = f.types.Intern("WestSt");
  EventTypeId state = f.types.Intern("StateSt");
  EventTypeId elm = f.types.Intern("ElmSt");
  AttrIndex vehicle = f.schema.Register("vehicle");
  f.schema.Register("speed");

  // 10-minute window sliding every minute (Fig. 1).
  WindowSpec w{Minutes(10), Minutes(1)};

  f.workload.Add(MakeCountQuery("q1", {oak, main, state}, w, vehicle));
  f.workload.Add(MakeCountQuery("q2", {oak, main, west}, w, vehicle));
  f.workload.Add(MakeCountQuery("q3", {park, oak, main}, w, vehicle));
  f.workload.Add(MakeCountQuery("q4", {park, oak, main, west}, w, vehicle));
  f.workload.Add(MakeCountQuery("q5", {main, state}, w, vehicle));
  f.workload.Add(MakeCountQuery("q6", {elm, park}, w, vehicle));
  f.workload.Add(MakeCountQuery("q7", {elm, park, state}, w, vehicle));

  f.paper_patterns = {
      Pattern({oak, main}),              // p1
      Pattern({park, oak}),              // p2
      Pattern({park, oak, main}),        // p3
      Pattern({main, west}),             // p4
      Pattern({oak, main, west}),        // p5
      Pattern({main, state}),            // p6
      Pattern({elm, park}),              // p7
  };
  const double weights[] = {25, 9, 12, 15, 20, 8, 18};
  for (size_t i = 0; i < f.paper_patterns.size(); ++i) {
    f.paper_weights.emplace_back(f.paper_patterns[i], weights[i]);
  }
  return f;
}

PurchaseFixture MakePurchaseFixture() {
  PurchaseFixture f;
  EventTypeId laptop = f.types.Intern("Laptop");
  EventTypeId cse = f.types.Intern("Case");
  EventTypeId adapter = f.types.Intern("Adapter");
  EventTypeId keyboard = f.types.Intern("Keyboard");
  EventTypeId iphone = f.types.Intern("iPhone");
  EventTypeId screen = f.types.Intern("ScreenProtector");
  AttrIndex customer = f.schema.Register("customer");
  f.schema.Register("price");

  // 20-minute window sliding every minute (§1, e-commerce example).
  WindowSpec w{Minutes(20), Minutes(1)};

  f.workload.Add(MakeCountQuery("q8", {laptop, cse, adapter}, w, customer));
  f.workload.Add(MakeCountQuery("q9", {laptop, cse, keyboard}, w, customer));
  f.workload.Add(MakeCountQuery("q10", {laptop, cse}, w, customer));
  f.workload.Add(
      MakeCountQuery("q11", {laptop, cse, iphone, screen}, w, customer));
  return f;
}

}  // namespace sharon
