#include "src/streamgen/workload_gen.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace sharon {

Workload GenerateWorkload(const WorkloadGenConfig& config, uint32_t num_types) {
  Workload w;
  Rng rng(config.seed);

  const uint32_t pat_len = std::min(config.pattern_length, num_types);
  const uint32_t backbone_len =
      std::min(pat_len + config.backbone_extra, num_types);
  const uint32_t cluster = std::max<uint32_t>(1, config.cluster_size);

  std::vector<EventTypeId> alphabet(num_types);
  std::iota(alphabet.begin(), alphabet.end(), 0);

  std::vector<EventTypeId> backbone;
  uint32_t in_cluster = cluster;  // force a fresh backbone on first query
  for (uint32_t qi = 0; qi < config.num_queries; ++qi) {
    if (in_cluster >= cluster) {
      // Fisher-Yates shuffle, then take a prefix as the new backbone.
      for (uint32_t i = num_types - 1; i > 0; --i) {
        uint32_t j = static_cast<uint32_t>(rng.Below(i + 1));
        std::swap(alphabet[i], alphabet[j]);
      }
      backbone.assign(alphabet.begin(), alphabet.begin() + backbone_len);
      in_cluster = 0;
    }
    ++in_cluster;

    const uint32_t max_off = backbone_len - pat_len;
    const uint32_t off =
        max_off > 0 ? static_cast<uint32_t>(rng.Below(max_off + 1)) : 0;
    Query q;
    q.name = "q" + std::to_string(qi);
    q.pattern = Pattern(std::vector<EventTypeId>(
        backbone.begin() + off, backbone.begin() + off + pat_len));
    q.agg = config.agg;
    q.window = config.window;
    q.partition_attr = config.partition_attr;
    w.Add(std::move(q));
  }
  return w;
}

}  // namespace sharon
