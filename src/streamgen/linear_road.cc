#include "src/streamgen/linear_road.h"

#include <cmath>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace sharon {

Scenario GenerateLinearRoad(const LinearRoadConfig& config) {
  Scenario s;
  for (uint32_t i = 0; i < config.num_segments; ++i) {
    s.types.Intern("Seg" + std::to_string(i));
  }
  s.schema.Register("car");
  s.schema.Register("speed");
  s.duration = config.duration;

  Rng rng(config.seed);

  // Car state: current segment, direction of travel.
  struct Car {
    uint32_t segment;
    int dir;
  };
  std::vector<Car> cars(config.num_cars);
  for (auto& c : cars) {
    c.segment = static_cast<uint32_t>(rng.Below(config.num_segments));
    c.dir = rng.Chance(0.5) ? 1 : -1;
  }

  // With a linearly ramping rate r(t) = r0 + (r1 - r0) * t / D, the event
  // count up to t is N(t) = r0*t + (r1-r0)*t^2/(2D) (rates per tick).
  const double r0 = config.start_rate / kTicksPerSecond;
  const double r1 = config.end_rate / kTicksPerSecond;
  const double d = static_cast<double>(config.duration);
  const double total = r0 * d + (r1 - r0) * d / 2.0;

  s.events.reserve(static_cast<size_t>(total) + 1);
  // Invert N(t) = i to place the i-th event: solve the quadratic
  // (r1-r0)/(2D) t^2 + r0 t - i = 0 for t >= 0.
  const double a = (r1 - r0) / (2.0 * d);
  for (uint64_t i = 0; i < static_cast<uint64_t>(total); ++i) {
    double t;
    if (std::abs(a) < 1e-15) {
      t = static_cast<double>(i) / r0;
    } else {
      t = (-r0 + std::sqrt(r0 * r0 + 4.0 * a * static_cast<double>(i))) /
          (2.0 * a);
    }
    uint32_t cid = static_cast<uint32_t>(rng.Below(config.num_cars));
    Car& car = cars[cid];
    Event e;
    e.time = static_cast<Timestamp>(t);
    e.type = car.segment;
    e.attrs = {static_cast<AttrValue>(cid),
               static_cast<AttrValue>(30 + rng.Below(60))};
    s.events.push_back(std::move(e));
    // Advance the car; bounce at the ends of the road.
    int next = static_cast<int>(car.segment) + car.dir;
    if (next < 0 || next >= static_cast<int>(config.num_segments)) {
      car.dir = -car.dir;
      next = static_cast<int>(car.segment) + car.dir;
    }
    car.segment = static_cast<uint32_t>(next);
  }
  EnforceStrictOrder(&s.events);
  if (!s.events.empty() && s.events.back().time >= s.duration) {
    s.duration = s.events.back().time + 1;
  }
  return s;
}

}  // namespace sharon
