#include "src/streamgen/drift.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace sharon {

Scenario GenerateDrift(const DriftConfig& config) {
  Scenario s;
  for (uint32_t t = 0; t < config.num_types; ++t) {
    s.types.Intern("T" + std::to_string(t));
  }
  s.schema.Register("entity");
  s.schema.Register("value");
  s.duration = config.phase_length * config.num_phases;

  Rng rng(config.seed);
  const uint32_t half = config.num_types / 2;
  const uint64_t total_events = static_cast<uint64_t>(
      config.events_per_second * static_cast<double>(s.duration) /
      kTicksPerSecond);
  s.events.reserve(total_events);

  // Per-group cyclic walker through each cluster's types: consecutive
  // same-cluster events of a group form SEQ runs, so consecutive-type
  // patterns match (the same trick the taxi generator's routes play).
  struct Walker {
    uint32_t pos[2] = {0, 0};
  };
  std::vector<Walker> walkers(config.num_groups);

  for (uint64_t i = 0; i < total_events; ++i) {
    const Timestamp t = static_cast<Timestamp>(
        static_cast<double>(i) * static_cast<double>(s.duration) /
        static_cast<double>(total_events));
    const uint32_t phase = static_cast<uint32_t>(t / config.phase_length);
    const uint32_t hot = phase % 2;  // cluster A hot in even phases
    const uint32_t cluster =
        rng.NextDouble() < config.hot_share ? hot : 1 - hot;
    const uint32_t group = static_cast<uint32_t>(rng.Below(config.num_groups));
    Walker& w = walkers[group];
    const uint32_t base = cluster == 0 ? 0 : half;
    const uint32_t span = cluster == 0 ? half : config.num_types - half;
    Event e;
    e.time = t;
    e.type = base + (w.pos[cluster]++ % span);
    e.attrs = {static_cast<AttrValue>(group),
               static_cast<AttrValue>(1 + rng.Below(9))};
    s.events.push_back(std::move(e));
  }
  EnforceStrictOrder(&s.events);
  if (!s.events.empty() && s.events.back().time >= s.duration) {
    s.duration = s.events.back().time + 1;
  }
  return s;
}

Workload DriftWorkload(const DriftConfig& config, const WindowSpec& window,
                       uint32_t anchors_per_side, uint32_t bridges) {
  Workload w;
  const EventTypeId h = config.num_types / 2;
  auto add = [&](std::vector<EventTypeId> types, const std::string& name) {
    Query q;
    q.name = name;
    q.pattern = Pattern(std::move(types));
    q.agg = AggSpec::CountStar();
    q.window = window;
    q.partition_attr = 0;  // entity
    w.Add(q);
  };
  // Anchor families: repeated dashboard-style queries on each side of the
  // boundary. PA lives in cluster A; PB straddles into B; they overlap at
  // the pivot type h-1.
  for (uint32_t i = 0; i < anchors_per_side; ++i) {
    add({h - 3, h - 2, h - 1}, "drift_pa" + std::to_string(i));
  }
  for (uint32_t i = 0; i < anchors_per_side; ++i) {
    add({h - 1, h, h + 1}, "drift_pb" + std::to_string(i));
  }
  // Bridges contain BOTH anchor patterns, so the candidates (PA, ...) and
  // (PB, ...) conflict inside them: at most one can be in a valid plan.
  // The resolution decides where each bridge's private gap segment
  // starts — a hot or a cold type — which is what the rate flip inverts.
  // Each bridge needs a distinct tail type outside the core (assumption
  // 3: a type at most once per pattern), which caps the bridge count.
  bridges = std::min(bridges, config.num_types - 5);
  for (uint32_t i = 0; i < bridges; ++i) {
    const EventTypeId tail = (h + 2 + i) % config.num_types;
    add({h - 3, h - 2, h - 1, h, h + 1, tail},
        "drift_bridge" + std::to_string(i));
  }
  return w;
}

}  // namespace sharon
