// TX: taxi / ridesharing position-report stream (paper §1 and §8.1).
//
// The paper uses the 330 GB NYC taxi & Uber data set; we synthesise the
// properties the experiments actually exercise: position reports typed by
// street, a per-vehicle identity attribute driving the [vehicle] equivalence
// predicate, skewed street popularity (some routes are much hotter than
// others), and vehicles that move along multi-street routes so that real
// sequence matches occur.

#ifndef SHARON_STREAMGEN_TAXI_H_
#define SHARON_STREAMGEN_TAXI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/streamgen/scenario.h"

namespace sharon {

/// Configuration of the synthetic taxi stream.
struct TaxiConfig {
  uint32_t num_streets = 12;    ///< distinct position-report event types
  uint32_t num_vehicles = 40;   ///< distinct vehicle ids (groups)
  double events_per_second = 1000;
  Duration duration = Minutes(30);
  double zipf_s = 0.8;          ///< street popularity skew (0 = uniform)
  uint32_t route_length = 6;    ///< streets visited per trip
  uint64_t seed = 42;
};

/// Street names used by the generator; index i < num_streets is used.
/// The first streets match the paper's running example (Fig. 1).
const std::vector<std::string>& TaxiStreetNames();

/// Generates the TX scenario. schema: attrs[0]=vehicle, attrs[1]=speed.
Scenario GenerateTaxi(const TaxiConfig& config);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_TAXI_H_
