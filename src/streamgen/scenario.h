// A Scenario bundles everything one experiment consumes: the interned event
// types, the attribute schema, the recorded event stream, and the stream's
// duration. The three generators (taxi, linear road, e-commerce) mirror the
// paper's TX / LR / EC data sets (§8.1); see DESIGN.md for the substitution
// rationale.

#ifndef SHARON_STREAMGEN_SCENARIO_H_
#define SHARON_STREAMGEN_SCENARIO_H_

#include <vector>

#include "src/common/event.h"
#include "src/common/schema.h"
#include "src/common/time.h"

namespace sharon {

/// A generated stream plus its metadata.
struct Scenario {
  TypeRegistry types;
  StreamSchema schema;
  std::vector<Event> events;
  Duration duration = 0;  ///< stream time covered, in ticks

  size_t size() const { return events.size(); }

  /// Average event rate in events per second of stream time.
  double EventsPerSecond() const {
    return duration > 0
               ? static_cast<double>(events.size()) * kTicksPerSecond /
                     static_cast<double>(duration)
               : 0;
  }
};

/// Asserts (in debug builds) and repairs strictly-increasing timestamps by
/// nudging ties forward one tick. Generators call this before returning.
void EnforceStrictOrder(std::vector<Event>* events);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_SCENARIO_H_
