// Per-type event rates (events per second of stream time): the statistics
// that feed the Sharon cost model (§3, Eq. 1). Estimated from a recorded
// stream or constructed directly in tests.

#ifndef SHARON_STREAMGEN_RATES_H_
#define SHARON_STREAMGEN_RATES_H_

#include <vector>

#include "src/query/pattern.h"
#include "src/streamgen/scenario.h"

namespace sharon {

/// Events per second, per event type.
class TypeRates {
 public:
  TypeRates() = default;
  explicit TypeRates(std::vector<double> rates) : rates_(std::move(rates)) {}

  /// Rate of a single event type; unknown types have rate 0.
  double Of(EventTypeId t) const {
    return t < rates_.size() ? rates_[t] : 0.0;
  }

  /// Rate(P) = sum of the rates of all event types in P (Eq. 1).
  double OfPattern(const Pattern& p) const {
    double r = 0;
    for (EventTypeId t : p.types()) r += Of(t);
    return r;
  }

  void Set(EventTypeId t, double rate) {
    if (t >= rates_.size()) rates_.resize(t + 1, 0.0);
    rates_[t] = rate;
  }

  size_t size() const { return rates_.size(); }

 private:
  std::vector<double> rates_;
};

/// Counts events per type over the scenario's duration.
TypeRates EstimateRates(const Scenario& s);

/// Rates over the stream-time slice [from, to): what a planner sees when
/// it only knows part of the stream (startup planning, per-phase rates in
/// drift experiments). Events outside the slice are ignored; `num_types`
/// sizes the result so silent types report an explicit 0 rate.
TypeRates RatesOfSlice(const std::vector<Event>& events, Timestamp from,
                       Timestamp to, uint32_t num_types);

}  // namespace sharon

#endif  // SHARON_STREAMGEN_RATES_H_
