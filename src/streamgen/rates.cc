#include "src/streamgen/rates.h"

namespace sharon {

TypeRates EstimateRates(const Scenario& s) {
  std::vector<double> counts(s.types.size(), 0.0);
  for (const Event& e : s.events) {
    if (e.type < counts.size()) counts[e.type] += 1.0;
  }
  double seconds = static_cast<double>(s.duration) / kTicksPerSecond;
  if (seconds <= 0) seconds = 1;
  TypeRates rates;
  for (size_t t = 0; t < counts.size(); ++t) {
    rates.Set(static_cast<EventTypeId>(t), counts[t] / seconds);
  }
  return rates;
}

TypeRates RatesOfSlice(const std::vector<Event>& events, Timestamp from,
                       Timestamp to, uint32_t num_types) {
  std::vector<double> counts(num_types, 0.0);
  for (const Event& e : events) {
    if (e.time >= from && e.time < to && e.type < counts.size()) {
      counts[e.type] += 1.0;
    }
  }
  double seconds = static_cast<double>(to - from) / kTicksPerSecond;
  if (seconds <= 0) seconds = 1;
  TypeRates rates;
  for (uint32_t t = 0; t < num_types; ++t) {
    rates.Set(t, counts[t] / seconds);
  }
  return rates;
}

}  // namespace sharon
