#include "src/streamgen/rates.h"

namespace sharon {

TypeRates EstimateRates(const Scenario& s) {
  std::vector<double> counts(s.types.size(), 0.0);
  for (const Event& e : s.events) {
    if (e.type < counts.size()) counts[e.type] += 1.0;
  }
  double seconds = static_cast<double>(s.duration) / kTicksPerSecond;
  if (seconds <= 0) seconds = 1;
  TypeRates rates;
  for (size_t t = 0; t < counts.size(); ++t) {
    rates.Set(static_cast<EventTypeId>(t), counts[t] / seconds);
  }
  return rates;
}

}  // namespace sharon
