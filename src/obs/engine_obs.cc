#include "src/obs/engine_obs.h"

namespace sharon::obs {

EngineObs RegisterEngineObs(MetricsRegistry& registry, size_t shard) {
  const MetricLabels labels = ShardLabels(shard);
  EngineObs obs;
  obs.source = static_cast<uint32_t>(shard);
  obs.late_dropped = registry.Counter("sharon_late_dropped_total", labels);
  obs.released_events =
      registry.Counter("sharon_released_events_total", labels);
  obs.finalized_windows =
      registry.Counter("sharon_finalized_windows_total", labels);
  obs.finalized_cells =
      registry.Counter("sharon_finalized_cells_total", labels);
  obs.watermark = registry.Gauge("sharon_watermark_ticks", labels);
  obs.safe_point = registry.Gauge("sharon_safe_point_ticks", labels);
  obs.buffered_events = registry.Gauge("sharon_buffered_events", labels);
  obs.event_lateness =
      registry.Histogram("sharon_event_lateness_ticks", labels);
  obs.release_batch =
      registry.Histogram("sharon_release_batch_events", labels);
  obs.watermark->Set(kNoWatermark);
  obs.safe_point->Set(kNoWatermark);
  return obs;
}

}  // namespace sharon::obs
