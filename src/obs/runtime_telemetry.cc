#include "src/obs/runtime_telemetry.h"

namespace sharon::obs {

RuntimeTelemetry::RuntimeTelemetry(size_t num_shards, size_t num_partitions,
                                   const ObsOptions& options)
    : options_(options), num_shards_(num_shards) {
  if (options_.trace) {
    const size_t ring_count = num_shards + 1 + num_partitions;
    rings_.reserve(ring_count);
    for (size_t i = 0; i < ring_count; ++i) {
      rings_.push_back(std::make_unique<TraceRing>(
          &clock_, static_cast<uint32_t>(i), options_.trace_ring_capacity));
    }
  }

  engine_obs_.resize(num_shards);
  shard_cells_.resize(num_shards);
  ingest_cells_.resize(num_partitions);

  for (size_t i = 0; i < num_shards; ++i) {
    if (options_.metrics) {
      engine_obs_[i] = RegisterEngineObs(registry_, i);
    } else {
      engine_obs_[i].source = static_cast<uint32_t>(i);
    }
    engine_obs_[i].ring = shard_ring(i);
  }

  if (!options_.metrics) return;

  for (size_t i = 0; i < num_shards; ++i) {
    const MetricLabels labels = ShardLabels(i);
    ShardCells& c = shard_cells_[i];
    c.events = registry_.Counter("sharon_shard_events_total", labels);
    c.batches = registry_.Counter("sharon_shard_batches_total", labels);
    c.batch_occupancy =
        registry_.Histogram("sharon_shard_batch_occupancy_events", labels);
    c.swaps_started = registry_.Counter("sharon_swaps_started_total", labels);
    c.swaps_retired = registry_.Counter("sharon_swaps_retired_total", labels);
    c.checkpoints_quiesced =
        registry_.Counter("sharon_checkpoints_quiesced_total", labels);
    c.checkpoint_bytes =
        registry_.Counter("sharon_shard_checkpoint_bytes_total", labels);
    c.busy_micros = registry_.Gauge("sharon_shard_busy_micros", labels);
    c.idle_spins = registry_.Gauge("sharon_shard_idle_spins", labels);
    c.queue_full_stalls =
        registry_.Gauge("sharon_shard_queue_full_stalls", labels);
    c.evicted_panes = registry_.Gauge("sharon_shard_evicted_panes", labels);
    c.evicted_groups = registry_.Gauge("sharon_shard_evicted_groups", labels);
    c.buffered_peak = registry_.Gauge("sharon_shard_buffered_peak", labels);
  }

  for (size_t p = 0; p < ingest_cells_.size(); ++p) {
    const MetricLabels labels = PartitionLabels(p);
    IngestCells& c = ingest_cells_[p];
    c.events = registry_.Counter("sharon_ingest_events_total", labels);
    c.watermarks = registry_.Counter("sharon_ingest_watermarks_total", labels);
    c.batches = registry_.Counter("sharon_ingest_batches_total", labels);
    c.queue_full_stalls =
        registry_.Counter("sharon_ingest_queue_full_stalls_total", labels);
    c.batch_allocs =
        registry_.Counter("sharon_ingest_batch_allocs_total", labels);
    c.batches_recycled =
        registry_.Counter("sharon_ingest_batches_recycled_total", labels);
  }

  control_cells_.swap_requests =
      registry_.Counter("sharon_swap_requests_total", {});
  control_cells_.swaps_rejected =
      registry_.Counter("sharon_swaps_rejected_total", {});
  control_cells_.checkpoint_requests =
      registry_.Counter("sharon_checkpoint_requests_total", {});
  control_cells_.checkpoints_rejected =
      registry_.Counter("sharon_checkpoints_rejected_total", {});
  control_cells_.checkpoints_sealed =
      registry_.Counter("sharon_checkpoints_sealed_total", {});
  control_cells_.checkpoint_bytes =
      registry_.Counter("sharon_checkpoint_bytes_total", {});
  control_cells_.queries_registered =
      registry_.Counter("sharon_queries_registered_total", {});
  control_cells_.queries_retired =
      registry_.Counter("sharon_queries_retired_total", {});
  control_cells_.churn_swaps =
      registry_.Counter("sharon_churn_swaps_total", {});
  control_cells_.wall_micros = registry_.Gauge("sharon_wall_micros", {});
  control_cells_.completed_swaps =
      registry_.Gauge("sharon_completed_swaps", {});
  control_cells_.swap_teed_events =
      registry_.Gauge("sharon_swap_teed_events", {});
  control_cells_.swap_max_stall_micros =
      registry_.Gauge("sharon_swap_max_stall_micros", {});
}

std::vector<TraceEvent> RuntimeTelemetry::DumpTrace() const {
  std::vector<const TraceRing*> rings;
  rings.reserve(rings_.size());
  for (const auto& r : rings_) rings.push_back(r.get());
  return MergeTraces(rings);
}

uint64_t RuntimeTelemetry::trace_dropped() const {
  uint64_t total = 0;
  for (const auto& r : rings_) total += r->dropped();
  return total;
}

}  // namespace sharon::obs
