#include "src/obs/trace.h"

#include <algorithm>
#include <bit>

namespace sharon::obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSwapRequested:
      return "swap_requested";
    case TraceKind::kSwapBoundary:
      return "swap_boundary";
    case TraceKind::kSwapDualRunStart:
      return "swap_dual_run_start";
    case TraceKind::kSwapRetired:
      return "swap_retired";
    case TraceKind::kCheckpointRequested:
      return "checkpoint_requested";
    case TraceKind::kCheckpointQuiesce:
      return "checkpoint_quiesce";
    case TraceKind::kCheckpointShardDone:
      return "checkpoint_shard_done";
    case TraceKind::kCheckpointSealed:
      return "checkpoint_sealed";
    case TraceKind::kWatermarkAdvance:
      return "watermark_advance";
    case TraceKind::kReorderRelease:
      return "reorder_release";
    case TraceKind::kLateDrop:
      return "late_drop";
    case TraceKind::kQueueFullStall:
      return "queue_full_stall";
    case TraceKind::kReoptTriggered:
      return "reopt_triggered";
    case TraceKind::kReoptDecision:
      return "reopt_decision";
    case TraceKind::kSwapRejected:
      return "swap_rejected";
    case TraceKind::kCheckpointRejected:
      return "checkpoint_rejected";
    case TraceKind::kQueryRegistered:
      return "query_registered";
    case TraceKind::kQueryRetired:
      return "query_retired";
  }
  return "unknown";
}

TraceRing::TraceRing(const TraceClock* clock, uint32_t source,
                     size_t capacity)
    : clock_(clock),
      source_(source),
      capacity_(std::bit_ceil(std::max<size_t>(capacity, 8))),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void TraceRing::Emit(TraceKind kind, Timestamp stream_time, int64_t a,
                     int64_t b) {
  const uint64_t idx = emitted_.load(std::memory_order_relaxed);
  Slot& s = slots_[idx & mask_];
  // Odd version = write in progress; a concurrent Dump skips the slot.
  s.ver.store(2 * idx + 1, std::memory_order_release);
  s.nanos.store(clock_->Nanos(), std::memory_order_relaxed);
  s.stream_time.store(stream_time, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  s.ver.store(2 * idx + 2, std::memory_order_release);
  emitted_.store(idx + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Dump() const {
  const uint64_t n = emitted_.load(std::memory_order_acquire);
  const uint64_t start = n > capacity_ ? n - capacity_ : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(n - start));
  for (uint64_t i = start; i < n; ++i) {
    const Slot& s = slots_[i & mask_];
    const uint64_t v1 = s.ver.load(std::memory_order_acquire);
    if (v1 != 2 * i + 2) continue;  // overwritten or mid-write: skip
    TraceEvent e;
    e.nanos = s.nanos.load(std::memory_order_relaxed);
    e.stream_time = s.stream_time.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.kind = static_cast<TraceKind>(s.kind.load(std::memory_order_relaxed));
    const uint64_t v2 = s.ver.load(std::memory_order_acquire);
    if (v2 != v1) continue;  // writer lapped us mid-copy: skip
    e.seq = i;
    e.source = source_;
    out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> MergeTraces(
    const std::vector<const TraceRing*>& rings) {
  std::vector<TraceEvent> merged;
  for (const TraceRing* ring : rings) {
    if (!ring) continue;
    std::vector<TraceEvent> dump = ring->Dump();
    merged.insert(merged.end(), dump.begin(), dump.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.nanos != y.nanos) return x.nanos < y.nanos;
                     if (x.source != y.source) return x.source < y.source;
                     return x.seq < y.seq;
                   });
  return merged;
}

}  // namespace sharon::obs
