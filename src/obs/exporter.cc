#include "src/obs/exporter.h"

#include <cstdio>
#include <utility>

namespace sharon::obs {

namespace {

/// Minimal string escape shared by the JSON and Prometheus emitters
/// (metric names and label values are plain identifiers by convention;
/// this keeps a stray quote from corrupting the stream anyway).
void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void AppendJsonLabels(std::string& out, const MetricLabels& labels) {
  out += "\"labels\":{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out.push_back(',');
    out.push_back('"');
    AppendEscaped(out, labels[i].first);
    out += "\":\"";
    AppendEscaped(out, labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

/// `{label="v",...}` suffix for a Prometheus series ("" when unlabelled).
std::string PromLabels(const MetricLabels& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(out, v);
    out.push_back('"');
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

/// Emits the `# TYPE` header once per metric name, in first-appearance
/// order, with every series of that name grouped under it (the text
/// exposition format requires one contiguous group per metric).
template <typename Value, typename EmitSeries>
void PromGroupByName(std::string& out, const std::vector<Value>& values,
                     const char* type, const EmitSeries& emit) {
  std::vector<bool> done(values.size(), false);
  for (size_t i = 0; i < values.size(); ++i) {
    if (done[i]) continue;
    out += "# TYPE ";
    out += values[i].name;
    out += " ";
    out += type;
    out.push_back('\n');
    for (size_t j = i; j < values.size(); ++j) {
      if (done[j] || values[j].name != values[i].name) continue;
      done[j] = true;
      emit(values[j]);
    }
  }
}

std::string WriteWholeFile(const std::string& path, const std::string& text,
                           bool append) {
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (!f) return "cannot open " + path;
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  if (!ok) return "short write to " + path;
  return "";
}

}  // namespace

std::string MetricsJsonLine(const MetricsSnapshot& snapshot, uint64_t seq,
                            double wall_seconds) {
  std::string out = "{\"schema_version\":";
  AppendU64(out, kSchemaVersion);
  out += ",\"kind\":\"metrics\",\"seq\":";
  AppendU64(out, seq);
  char buf[40];
  std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.6f", wall_seconds);
  out += buf;
  out += ",\"counters\":[";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    if (i) out.push_back(',');
    out += "{\"name\":\"";
    AppendEscaped(out, c.name);
    out += "\",";
    AppendJsonLabels(out, c.labels);
    out += ",\"value\":";
    AppendU64(out, c.value);
    out.push_back('}');
  }
  out += "],\"gauges\":[";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    if (i) out.push_back(',');
    out += "{\"name\":\"";
    AppendEscaped(out, g.name);
    out += "\",";
    AppendJsonLabels(out, g.labels);
    out += ",\"value\":";
    AppendI64(out, g.value);
    out.push_back('}');
  }
  out += "],\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i) out.push_back(',');
    out += "{\"name\":\"";
    AppendEscaped(out, h.name);
    out += "\",";
    AppendJsonLabels(out, h.labels);
    out += ",\"count\":";
    AppendU64(out, h.data.count);
    out += ",\"sum\":";
    AppendU64(out, h.data.sum);
    out += ",\"buckets\":[";
    for (size_t j = 0; j < h.data.buckets.size(); ++j) {
      if (j) out.push_back(',');
      AppendU64(out, h.data.buckets[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TraceJsonLine(const TraceEvent& event) {
  std::string out = "{\"schema_version\":";
  AppendU64(out, kSchemaVersion);
  out += ",\"kind\":\"trace\",\"nanos\":";
  AppendU64(out, event.nanos);
  out += ",\"seq\":";
  AppendU64(out, event.seq);
  out += ",\"source\":";
  AppendU64(out, event.source);
  out += ",\"event\":\"";
  out += TraceKindName(event.kind);
  out += "\",\"stream_time\":";
  AppendI64(out, event.stream_time);
  out += ",\"a\":";
  AppendI64(out, event.a);
  out += ",\"b\":";
  AppendI64(out, event.b);
  out.push_back('}');
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  PromGroupByName(out, snapshot.counters, "counter",
                  [&](const MetricsSnapshot::CounterValue& c) {
                    out += c.name;
                    out += PromLabels(c.labels);
                    out.push_back(' ');
                    AppendU64(out, c.value);
                    out.push_back('\n');
                  });
  PromGroupByName(out, snapshot.gauges, "gauge",
                  [&](const MetricsSnapshot::GaugeValue& g) {
                    out += g.name;
                    out += PromLabels(g.labels);
                    out.push_back(' ');
                    AppendI64(out, g.value);
                    out.push_back('\n');
                  });
  PromGroupByName(
      out, snapshot.histograms, "histogram",
      [&](const MetricsSnapshot::HistogramValue& h) {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.data.buckets.size(); ++i) {
          cumulative += h.data.buckets[i];
          std::string le;
          if (i == HistogramCell::kOverflowBucket) {
            le = "le=\"+Inf\"";
          } else {
            le = "le=\"";
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              HistogramCell::UpperBound(i)));
            le += buf;
            le += "\"";
          }
          out += h.name;
          out += "_bucket";
          out += PromLabels(h.labels, le);
          out.push_back(' ');
          AppendU64(out, cumulative);
          out.push_back('\n');
        }
        out += h.name;
        out += "_sum";
        out += PromLabels(h.labels);
        out.push_back(' ');
        AppendU64(out, h.data.sum);
        out.push_back('\n');
        out += h.name;
        out += "_count";
        out += PromLabels(h.labels);
        out.push_back(' ');
        AppendU64(out, h.data.count);
        out.push_back('\n');
      });
  return out;
}

std::string WriteTraceFile(const std::string& path,
                           const std::vector<TraceEvent>& events) {
  std::string text;
  for (const TraceEvent& e : events) {
    text += TraceJsonLine(e);
    text.push_back('\n');
  }
  return WriteWholeFile(path, text, /*append=*/false);
}

SnapshotExporter::SnapshotExporter(std::function<MetricsSnapshot()> source,
                                   ExporterOptions options)
    : source_(std::move(source)), options_(std::move(options)) {}

bool SnapshotExporter::Tick() {
  const double now = wall_.ElapsedSeconds();
  if (last_export_seconds_ >= 0 &&
      now - last_export_seconds_ < options_.period_seconds) {
    return false;
  }
  return ExportNow();
}

bool SnapshotExporter::ExportNow() {
  const double now = wall_.ElapsedSeconds();
  const MetricsSnapshot snapshot = source_();
  const std::string line = MetricsJsonLine(snapshot, exports_, now);
  bool ok = true;
  if (!options_.metrics_path.empty()) {
    const std::string err =
        WriteWholeFile(options_.metrics_path, line + "\n", /*append=*/true);
    if (!err.empty()) {
      error_ = err;
      ok = false;
    }
  }
  if (!options_.prometheus_path.empty()) {
    const std::string err = WriteWholeFile(
        options_.prometheus_path, PrometheusText(snapshot), /*append=*/false);
    if (!err.empty()) {
      error_ = err;
      ok = false;
    }
  }
  if (options_.sink) options_.sink(line);
  last_export_seconds_ = now;
  ++exports_;
  return ok;
}

}  // namespace sharon::obs
