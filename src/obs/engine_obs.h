// Executor-level observability handle.
//
// Engine (and MultiEngine, which fans one handle out to its segment
// engines) accepts an optional EngineObs via SetObservability. All
// members are nullable: a null cell/ring simply skips that signal, and a
// null handle (the default) keeps the executor bit-for-bit on the seed
// hot path. Every pointer targets registry- or caller-owned storage that
// must outlive the engine; all writes are single-threaded from the
// engine's own thread (the shard worker), matching the cells'
// one-writer contract.

#ifndef SHARON_OBS_ENGINE_OBS_H_
#define SHARON_OBS_ENGINE_OBS_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sharon::obs {

/// Cell/ring pointers an executor emits into. Register the standard set
/// with RegisterEngineObs, or wire individual cells by hand (tests).
struct EngineObs {
  uint32_t source = 0;  ///< trace source id (shard index)

  // --- counters ---------------------------------------------------------
  CounterCell* late_dropped = nullptr;      ///< events below the safe point
  CounterCell* released_events = nullptr;   ///< reorder-buffer releases
  CounterCell* finalized_windows = nullptr; ///< windows sealed exactly-once
  CounterCell* finalized_cells = nullptr;   ///< result cells sealed

  // --- gauges -----------------------------------------------------------
  GaugeCell* watermark = nullptr;      ///< highest applied watermark (ticks)
  GaugeCell* safe_point = nullptr;     ///< watermark - max_lateness (ticks)
  GaugeCell* buffered_events = nullptr;  ///< reorder-buffer occupancy

  // --- histograms -------------------------------------------------------
  /// Arrival lateness in ticks (observed high-mark minus event time),
  /// recorded per buffered data event.
  HistogramCell* event_lateness = nullptr;
  /// Events released per watermark application (release-batch size).
  HistogramCell* release_batch = nullptr;

  /// Lifecycle ring (watermark advances, releases, late drops); may be
  /// set with all cells null for trace-only observability.
  TraceRing* ring = nullptr;
};

/// Registers the standard executor cell set on `registry`, labelled
/// shard="shard". The ring is left null (attach one if tracing).
EngineObs RegisterEngineObs(MetricsRegistry& registry, size_t shard);

}  // namespace sharon::obs

#endif  // SHARON_OBS_ENGINE_OBS_H_
