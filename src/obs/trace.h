// Lifecycle trace ring (the "why did throughput dip at 12:03?" half of
// src/obs/).
//
// Every lifecycle transition the runtime goes through — swap requested /
// boundary picked / dual-run start / retired, checkpoint requested /
// quiesce / shard written / sealed, watermark advances, reorder-buffer
// releases, late drops, queue-full stalls, re-optimization trigger and
// decision — is a fixed-size structured TraceEvent appended to a bounded
// per-writer ring buffer:
//
//   - ONE writer per ring (the shard worker, one ingest partition, or the
//     control/ingest thread), matching the runtime's no-shared-mutable-
//     state discipline. Emit never allocates and never blocks: the ring
//     is preallocated at construction and overwrites its oldest entries
//     (dropped() counts the overwritten ones).
//   - Readers may dump concurrently: slots carry a seqlock-style version
//     and every field is an atomic, so a torn slot is skipped, never
//     misread (ASan/TSan-clean by construction).
//   - Cross-ring ordering: all rings of one runtime share a TraceClock
//     (one steady-clock epoch); MergeTraces sorts by (nanos, source,
//     seq), which respects causality because an event that happens-before
//     another (swap request before the marker's pickup) also reads an
//     earlier steady clock.
//
// The merged dump is what lines up against the oracle when a chaos/soak
// run diverges (ROADMAP), and what the lifecycle-reconstruction test
// (tests/obs_runtime_test.cc) asserts pairs up begin/end.

#ifndef SHARON_OBS_TRACE_H_
#define SHARON_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/common/watermark.h"

namespace sharon::obs {

/// What happened. Payload fields `a`/`b` are kind-specific; see
/// docs/OPERATIONS.md "Trace event reference" for the full table.
enum class TraceKind : uint8_t {
  kSwapRequested = 0,     ///< control: a=swap id, b=0
  kSwapBoundary = 1,      ///< control: a=swap id, stream_time=boundary B
  kSwapDualRunStart = 2,  ///< shard: a=swap id, stream_time=boundary
  kSwapRetired = 3,       ///< shard: a=swap id, b=teed events
  kCheckpointRequested = 4,  ///< control: a=ckpt id, stream_time=boundary
  kCheckpointQuiesce = 5,    ///< shard: a=ckpt id, stream_time=frontier
  kCheckpointShardDone = 6,  ///< shard: a=ckpt id, b=shard file bytes
  kCheckpointSealed = 7,     ///< control: a=ckpt id, b=total bytes
  kWatermarkAdvance = 8,  ///< shard: stream_time=watermark, a=safe point
  kReorderRelease = 9,    ///< shard: a=events released by this watermark
  kLateDrop = 10,         ///< shard: stream_time=event time, a=frontier
  kQueueFullStall = 11,   ///< partition: a=target shard index
  kReoptTriggered = 12,   ///< control: a=epoch id, b=1 if drift detected
  kReoptDecision = 13,    ///< control: a=outcome (see ReoptOutcome), b=gain ppm
  kSwapRejected = 14,        ///< control: a=OpRefusal code of the refusal
  kCheckpointRejected = 15,  ///< control: a=OpRefusal code of the refusal
  kQueryRegistered = 16,  ///< control: a=query id, b=pending churn ops
  kQueryRetired = 17,     ///< control: a=query id, b=pending churn ops
};

/// Payload values of TraceKind::kReoptDecision's `a` field.
enum class ReoptOutcome : int64_t {
  kHold = 0,          ///< incumbent kept (gain under hysteresis)
  kSwapAccepted = 1,  ///< runtime accepted the swap request
  kSwapRejected = 2,  ///< compile failure or runtime refusal
};

/// Stable lower_snake_case name of `kind` (the exporter's `event` field).
const char* TraceKindName(TraceKind kind);

/// One structured trace event, fixed-size (no strings on the emit path).
struct TraceEvent {
  uint64_t nanos = 0;       ///< TraceClock nanoseconds at emission
  uint64_t seq = 0;         ///< per-ring emission index (dense from 0)
  uint32_t source = 0;      ///< writer id (see RuntimeTelemetry sources)
  TraceKind kind = TraceKind::kWatermarkAdvance;
  Timestamp stream_time = kNoWatermark;  ///< stream-time anchor (or none)
  int64_t a = 0;            ///< kind-specific payload
  int64_t b = 0;            ///< kind-specific payload
};

/// Shared steady-clock epoch. All rings of one runtime point at the same
/// TraceClock so their nanosecond stamps are mutually comparable.
class TraceClock {
 public:
  TraceClock() : epoch_(std::chrono::steady_clock::now()) {}

  /// Nanoseconds since construction (monotone).
  uint64_t Nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Bounded single-writer ring of TraceEvents. Capacity is rounded up to
/// a power of two and fully preallocated at construction; Emit is
/// allocation-free and overwrites the oldest entry when full.
class TraceRing {
 public:
  /// `clock` must outlive the ring; `source` tags every event (shard
  /// index / partition id / control id); `capacity` is rounded up to a
  /// power of two (minimum 8).
  TraceRing(const TraceClock* clock, uint32_t source, size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Appends one event (writer thread only; never allocates).
  void Emit(TraceKind kind, Timestamp stream_time = kNoWatermark,
            int64_t a = 0, int64_t b = 0);

  /// Events ever emitted on this ring.
  uint64_t emitted() const { return emitted_.load(std::memory_order_acquire); }

  /// Events overwritten before any dump could see them.
  uint64_t dropped() const {
    const uint64_t n = emitted();
    return n > capacity_ ? n - capacity_ : 0;
  }

  size_t capacity() const { return capacity_; }
  uint32_t source() const { return source_; }

  /// Copies the surviving events oldest-to-newest. Safe concurrently
  /// with Emit: slots the writer is racing on are skipped via their
  /// version word, never misread.
  std::vector<TraceEvent> Dump() const;

 private:
  // Seqlock-per-slot encoding: ver == 2*idx + 2 publishes emission idx;
  // odd values mark a write in progress. Payload words are atomics so
  // concurrent dumps are formally race-free.
  struct Slot {
    std::atomic<uint64_t> ver{0};
    std::atomic<uint64_t> nanos{0};
    std::atomic<int64_t> stream_time{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<uint32_t> kind{0};
  };

  const TraceClock* clock_;
  uint32_t source_;
  size_t capacity_;  ///< power of two
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> emitted_{0};
};

/// Merge-sorted dump across rings: every surviving event of every ring,
/// ordered by (nanos, source, seq). Null rings are permitted and skipped.
std::vector<TraceEvent> MergeTraces(const std::vector<const TraceRing*>& rings);

}  // namespace sharon::obs

#endif  // SHARON_OBS_TRACE_H_
