// Per-runtime telemetry hub: owns the metrics registry and the lifecycle
// trace rings for one ShardedRuntime, and hands each runtime thread the
// cell/ring set it is allowed to write.
//
// Writer topology mirrors the runtime's thread topology — that is what
// makes the whole layer contention-free without locks:
//   - shard worker i writes engine_obs(i) + shard_cells(i) + shard_ring(i),
//   - ingest partition p writes ingest_cells(p) + partition_ring(p),
//   - the control thread (ingest thread: swap/checkpoint requests,
//     PlanManager decisions) writes control_cells() + control_ring().
// Readers (periodic export, post-run dumps) only touch atomics, so a
// snapshot while the workers run is race-free.
//
// Trace sources are numbered shards first (0..S-1), then the control
// thread (S), then the partitions (S+1..S+P) — see the source accessors.

#ifndef SHARON_OBS_RUNTIME_TELEMETRY_H_
#define SHARON_OBS_RUNTIME_TELEMETRY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/obs/engine_obs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sharon::obs {

/// Observability switches (RuntimeOptions::obs). Both default OFF so the
/// seed hot path is untouched; with metrics/trace ON every emission is a
/// relaxed atomic write into preallocated storage, keeping the
/// zero-allocation contract (tests/zero_alloc_test.cc).
struct ObsOptions {
  bool metrics = false;  ///< register + update metric cells
  bool trace = false;    ///< emit lifecycle trace events
  /// Events each ring retains (rounded up to a power of two). One ring
  /// per shard, per partition, plus the control ring.
  size_t trace_ring_capacity = 4096;

  bool enabled() const { return metrics || trace; }
};

/// Worker-thread cells of one shard, beyond the executor's EngineObs.
/// Null members are simply skipped (metrics disabled).
struct ShardCells {
  CounterCell* events = nullptr;   ///< data events processed
  CounterCell* batches = nullptr;  ///< batches popped
  HistogramCell* batch_occupancy = nullptr;  ///< events per popped batch
  CounterCell* swaps_started = nullptr;   ///< dual runs begun
  CounterCell* swaps_retired = nullptr;   ///< old engines retired
  CounterCell* checkpoints_quiesced = nullptr;  ///< markers honoured
  CounterCell* checkpoint_bytes = nullptr;      ///< shard file bytes written
  // Fold-time gauges: set by ShardedRuntime::TelemetrySnapshot from the
  // post-join rollups (RuntimeStats / WatermarkStats), so the snapshot
  // is the single export surface for them too.
  GaugeCell* busy_micros = nullptr;
  GaugeCell* idle_spins = nullptr;
  GaugeCell* queue_full_stalls = nullptr;
  GaugeCell* evicted_panes = nullptr;
  GaugeCell* evicted_groups = nullptr;
  GaugeCell* buffered_peak = nullptr;
};

/// Producer-thread cells of one ingest partition.
struct IngestCells {
  CounterCell* events = nullptr;      ///< data events routed
  CounterCell* watermarks = nullptr;  ///< punctuations broadcast
  CounterCell* batches = nullptr;     ///< batches pushed
  CounterCell* queue_full_stalls = nullptr;  ///< yields on full channels
  CounterCell* batch_allocs = nullptr;       ///< fresh buffer allocations
  CounterCell* batches_recycled = nullptr;   ///< pooled buffers reused
};

/// Control-thread cells (swap/checkpoint orchestration, wall clock).
struct ControlCells {
  CounterCell* swap_requests = nullptr;        ///< accepted swap requests
  CounterCell* swaps_rejected = nullptr;       ///< refused swap requests
  CounterCell* checkpoint_requests = nullptr;  ///< accepted checkpoints
  CounterCell* checkpoints_rejected = nullptr;  ///< refused checkpoints
  CounterCell* checkpoints_sealed = nullptr;   ///< manifests written
  CounterCell* checkpoint_bytes = nullptr;     ///< total serialized bytes
  CounterCell* queries_registered = nullptr;   ///< churn: queries added
  CounterCell* queries_retired = nullptr;      ///< churn: queries removed
  CounterCell* churn_swaps = nullptr;          ///< churn-committing swaps
  // Fold-time gauges (see ShardCells).
  GaugeCell* wall_micros = nullptr;
  GaugeCell* completed_swaps = nullptr;
  GaugeCell* swap_teed_events = nullptr;
  GaugeCell* swap_max_stall_micros = nullptr;
};

/// Owns registry + rings for one runtime; see file comment for the
/// writer topology. Construct before Start, destroy after the workers
/// joined (the runtime owns it for exactly that span).
class RuntimeTelemetry {
 public:
  RuntimeTelemetry(size_t num_shards, size_t num_partitions,
                   const ObsOptions& options);

  const ObsOptions& options() const { return options_; }

  /// The registry behind every cell (snapshot with Snapshot()).
  MetricsRegistry& registry() { return registry_; }

  /// Executor handle of shard `i` (cells null unless metrics, ring null
  /// unless trace — never returns null itself).
  EngineObs* engine_obs(size_t i) { return &engine_obs_[i]; }

  ShardCells& shard_cells(size_t i) { return shard_cells_[i]; }
  IngestCells& ingest_cells(size_t p) { return ingest_cells_[p]; }
  ControlCells& control_cells() { return control_cells_; }

  /// Rings (null when tracing is off).
  TraceRing* shard_ring(size_t i) { return Ring(i); }
  TraceRing* control_ring() { return Ring(num_shards_); }
  TraceRing* partition_ring(size_t p) { return Ring(num_shards_ + 1 + p); }

  /// Trace source ids, matching TraceEvent::source.
  uint32_t control_source() const {
    return static_cast<uint32_t>(num_shards_);
  }
  uint32_t partition_source(size_t p) const {
    return static_cast<uint32_t>(num_shards_ + 1 + p);
  }

  /// Merge-sorted dump across every ring (oldest first; see MergeTraces).
  std::vector<TraceEvent> DumpTrace() const;

  /// Events overwritten before any dump, summed over rings.
  uint64_t trace_dropped() const;

  /// Registry snapshot (fold-time gauges hold their last Set values).
  MetricsSnapshot Snapshot() const { return registry_.Snapshot(); }

 private:
  TraceRing* Ring(size_t idx) {
    return rings_.empty() ? nullptr : rings_[idx].get();
  }

  ObsOptions options_;
  size_t num_shards_;
  MetricsRegistry registry_;
  TraceClock clock_;
  /// Shards, then control, then partitions; empty when tracing is off.
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<EngineObs> engine_obs_;
  std::vector<ShardCells> shard_cells_;
  std::vector<IngestCells> ingest_cells_;
  ControlCells control_cells_;
};

}  // namespace sharon::obs

#endif  // SHARON_OBS_RUNTIME_TELEMETRY_H_
