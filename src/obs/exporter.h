// Snapshot exporter: serializes MetricsSnapshots and trace dumps to
// stable text formats and drives periodic export to a sink.
//
// Two wire formats, both with an explicit schema version the way
// src/common/serde.h versions its binary frames:
//   - JSON-lines: one self-contained JSON object per line —
//     kind="metrics" lines carry a whole snapshot, kind="trace" lines
//     carry one lifecycle event. tools/check_metrics_schema.py validates
//     dumps against the checked-in schema (kSchemaVersion); unknown
//     versions are refused, never guessed at.
//   - Prometheus text exposition (version 0.0.4): counters as `_total`,
//     histograms as cumulative `_bucket{le=...}` series + `_sum`/`_count`,
//     ready for a scrape endpoint to serve verbatim
//     (docs/OPERATIONS.md "Monitoring reference").
//
// The periodic driver (SnapshotExporter) is pull-based and runs on the
// caller's thread: Tick() between ingest calls exports when the period
// elapsed, ExportNow() forces one (benches dump a final snapshot this
// way). File sinks append JSON-lines and rewrite the Prometheus file
// whole, so the latest exposition is always a complete scrape.

#ifndef SHARON_OBS_EXPORTER_H_
#define SHARON_OBS_EXPORTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sharon::obs {

/// Version stamped into every exported line; bump on any breaking field
/// change and teach tools/check_metrics_schema.py the new shape first.
inline constexpr uint32_t kSchemaVersion = 1;

/// One metrics snapshot as a single JSON line (no trailing newline).
/// `seq` is the export sequence number, `wall_seconds` the exporter's
/// wall clock at sampling time.
std::string MetricsJsonLine(const MetricsSnapshot& snapshot, uint64_t seq,
                            double wall_seconds);

/// One trace event as a single JSON line (no trailing newline).
std::string TraceJsonLine(const TraceEvent& event);

/// The whole snapshot in Prometheus text exposition format 0.0.4
/// (# TYPE comments, cumulative histogram buckets, final newline).
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Writes `events` as trace JSON-lines to `path` (truncating). Returns
/// an empty string on success, a diagnostic otherwise.
std::string WriteTraceFile(const std::string& path,
                           const std::vector<TraceEvent>& events);

/// Where and how often SnapshotExporter writes.
struct ExporterOptions {
  /// JSON-lines file, appended one metrics line per export ("" = off).
  std::string metrics_path;
  /// Prometheus text file, rewritten whole per export ("" = off).
  std::string prometheus_path;
  /// Callback sink, invoked with each metrics JSON line (null = off).
  std::function<void(const std::string& line)> sink;
  /// Minimum seconds between Tick()-driven exports.
  double period_seconds = 1.0;
};

/// Periodic, pull-based export driver. Single-threaded: call Tick /
/// ExportNow from one thread (the ingest thread); the snapshot source
/// itself reads atomically-published cells, so sampling while shard
/// workers run is safe.
class SnapshotExporter {
 public:
  /// `source` produces the snapshot to serialize (e.g. wraps
  /// ShardedRuntime::TelemetrySnapshot); must remain callable for the
  /// exporter's lifetime.
  SnapshotExporter(std::function<MetricsSnapshot()> source,
                   ExporterOptions options);

  /// Exports if `period_seconds` elapsed since the last export. Returns
  /// true when an export happened.
  bool Tick();

  /// Exports unconditionally. Returns false on a sink I/O failure
  /// (error() explains; the exporter keeps running).
  bool ExportNow();

  /// Last I/O diagnostic ("" when every export succeeded).
  const std::string& error() const { return error_; }

  /// Completed exports (the `seq` of the next line).
  uint64_t exports() const { return exports_; }

 private:
  std::function<MetricsSnapshot()> source_;
  ExporterOptions options_;
  StopWatch wall_;
  double last_export_seconds_ = -1;  ///< first Tick always exports
  uint64_t exports_ = 0;
  std::string error_;
};

}  // namespace sharon::obs

#endif  // SHARON_OBS_EXPORTER_H_
