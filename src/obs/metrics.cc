#include "src/obs/metrics.h"

namespace sharon::obs {

MetricLabels ShardLabels(size_t shard) {
  return {{"shard", std::to_string(shard)}};
}

MetricLabels PartitionLabels(size_t partition) {
  return {{"partition", std::to_string(partition)}};
}

namespace {

// The cells hold atomics and are neither copyable nor movable, so every
// Entry is default-constructed in place and named afterwards.
template <typename Deque>
auto* RegisterEntry(Deque& entries, std::string name, MetricLabels labels) {
  entries.emplace_back();
  auto& e = entries.back();
  e.name = std::move(name);
  e.labels = std::move(labels);
  return &e.cell;
}

}  // namespace

CounterCell* MetricsRegistry::Counter(std::string name, MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterEntry(counters_, std::move(name), std::move(labels));
}

GaugeCell* MetricsRegistry::Gauge(std::string name, MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterEntry(gauges_, std::move(name), std::move(labels));
}

HistogramCell* MetricsRegistry::Histogram(std::string name,
                                          MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterEntry(histograms_, std::move(name), std::move(labels));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_) {
    snap.counters.push_back({e.name, e.labels, e.cell.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& e : gauges_) {
    snap.gauges.push_back({e.name, e.labels, e.cell.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = e.name;
    h.labels = e.labels;
    uint64_t count = 0;
    for (size_t i = 0; i < HistogramCell::kNumBuckets; ++i) {
      h.data.buckets[i] = e.cell.bucket(i);
      count += h.data.buckets[i];
    }
    h.data.count = count;
    h.data.sum = e.cell.sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace sharon::obs
