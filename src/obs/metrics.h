// Zero-allocation metrics registry (the telemetry half of src/obs/).
//
// Design contract, in the order the hot path cares about:
//   - Cells are PREALLOCATED at registration time. Registration (startup,
//     shard construction) may allocate; Add/Set/Record never do — the
//     executor event path stays zero-allocation with metrics enabled
//     (tests/zero_alloc_test.cc).
//   - Cells are CONTENTION-FREE by layout, not by locking: every shard or
//     ingest partition registers its own cells (labelled shard="i" /
//     partition="i"), so each atomic is written by exactly one thread.
//     The atomics exist for the READER: MetricsRegistry::Snapshot() may
//     run concurrently with the writers (periodic export) and sees a
//     race-free, monotone view — relaxed loads of monotone counters.
//   - Histograms are FIXED log2-bucketed: bucket 0 holds the value 0,
//     bucket i (1..32) holds values with bit-width i (2^(i-1) .. 2^i - 1),
//     and the last bucket is the overflow for values >= 2^32. Bucket
//     array sizes are compile-time constants, so recording is one
//     bit_width plus two relaxed fetch_adds.
//
// Aggregation happens on demand: Snapshot() walks the registered cells
// into a typed MetricsSnapshot, the single source of truth the exporter
// (src/obs/exporter.h) serializes. Rollups that used to live only in
// RuntimeStats are folded onto the same snapshot by the runtime
// (ShardedRuntime::TelemetrySnapshot).

#ifndef SHARON_OBS_METRICS_H_
#define SHARON_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sharon::obs {

/// Monotone counter cell. One writer thread; any number of readers.
class CounterCell {
 public:
  /// Adds `n` (relaxed; never allocates).
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Adds 1.
  void Inc() { Add(1); }
  /// Current value (relaxed read; monotone across reads).
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge cell (signed: watermark gauges use kNoWatermark = -1).
class GaugeCell {
 public:
  /// Replaces the value (relaxed; never allocates).
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Current value (relaxed read).
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-bucketed histogram cell for latencies and sizes.
class HistogramCell {
 public:
  /// Bucket 0 (value 0) + buckets for bit widths 1..32 + one overflow.
  static constexpr size_t kNumBuckets = 34;
  static constexpr size_t kOverflowBucket = kNumBuckets - 1;

  /// Bucket index of `v`: 0 for 0, bit_width for values below 2^32,
  /// the overflow bucket otherwise.
  static constexpr size_t BucketFor(uint64_t v) {
    if (v == 0) return 0;
    const size_t w = static_cast<size_t>(std::bit_width(v));
    return w <= 32 ? w : kOverflowBucket;
  }

  /// Inclusive upper bound of bucket `i` (2^i - 1), or UINT64_MAX for the
  /// overflow bucket ("+Inf" in the Prometheus exposition).
  static constexpr uint64_t UpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= kOverflowBucket) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  /// Records one observation (two relaxed fetch_adds; never allocates).
  void Record(uint64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Total observations, derived from the buckets so a concurrent
  /// snapshot is always internally consistent (count == sum of buckets).
  uint64_t count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Sum of observed values (may trail `count` under concurrent writes).
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Observations in bucket `i` (relaxed read).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// One `key="value"` metric label. By convention the registry uses
/// shard="i" / partition="i" to keep per-thread cells apart.
using MetricLabel = std::pair<std::string, std::string>;
using MetricLabels = std::vector<MetricLabel>;

/// Convenience label sets for the runtime's per-thread cells.
MetricLabels ShardLabels(size_t shard);
MetricLabels PartitionLabels(size_t partition);

/// Point-in-time copy of one histogram cell.
struct HistogramData {
  uint64_t count = 0;  ///< sum over `buckets`
  uint64_t sum = 0;    ///< sum of observed values
  std::array<uint64_t, HistogramCell::kNumBuckets> buckets{};
};

/// Typed, self-contained aggregation of every registered cell — the unit
/// the exporter serializes and the unit a future cluster mode merges
/// across nodes.
struct MetricsSnapshot {
  /// One sampled counter.
  struct CounterValue {
    std::string name;     ///< metric name (sharon_..._total convention)
    MetricLabels labels;  ///< identity labels (may be empty)
    uint64_t value = 0;   ///< sampled value
  };
  /// One sampled gauge.
  struct GaugeValue {
    std::string name;     ///< metric name
    MetricLabels labels;  ///< identity labels (may be empty)
    int64_t value = 0;    ///< sampled value
  };
  /// One sampled histogram.
  struct HistogramValue {
    std::string name;     ///< metric name
    MetricLabels labels;  ///< identity labels (may be empty)
    HistogramData data;   ///< sampled buckets/count/sum
  };

  std::vector<CounterValue> counters;      ///< in registration order
  std::vector<GaugeValue> gauges;          ///< in registration order
  std::vector<HistogramValue> histograms;  ///< in registration order
};

/// Owns the cells. Registration allocates and takes a mutex (startup
/// path); the returned pointers are stable for the registry's lifetime,
/// so the hot path holds raw cell pointers and never touches the
/// registry again. Snapshot() may run concurrently with cell writers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a counter cell. `name` should follow the
  /// `sharon_<noun>_total` convention (docs/OPERATIONS.md).
  CounterCell* Counter(std::string name, MetricLabels labels = {});

  /// Registers a gauge cell.
  GaugeCell* Gauge(std::string name, MetricLabels labels = {});

  /// Registers a histogram cell (fixed log2 buckets, see HistogramCell).
  HistogramCell* Histogram(std::string name, MetricLabels labels = {});

  /// Copies every cell into a typed snapshot (relaxed loads; safe while
  /// writers run). Cells appear in registration order.
  MetricsSnapshot Snapshot() const;

  /// Number of registered cells across all kinds.
  size_t size() const;

 private:
  template <typename Cell>
  struct Entry {
    std::string name;
    MetricLabels labels;
    Cell cell;
  };

  mutable std::mutex mu_;  ///< registration + snapshot iteration guard
  // deques: stable addresses across registration (the hot path keeps raw
  // pointers into them).
  std::deque<Entry<CounterCell>> counters_;
  std::deque<Entry<GaugeCell>> gauges_;
  std::deque<Entry<HistogramCell>> histograms_;
};

}  // namespace sharon::obs

#endif  // SHARON_OBS_METRICS_H_
