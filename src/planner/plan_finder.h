// The optimal sharing plan finder (paper §6, Algorithms 3 and 4).
//
// Traverses ONLY the valid portion of the 2^|V| plan lattice (Fig. 8)
// breadth-first. Level s+1 is generated apriori-style from level s
// (Lemma 6): two valid plans sharing their first s-1 candidates join into
// a child, which is valid iff their two differing candidates are not in
// conflict — no other parent needs checking. Invalid branches are thereby
// cut at their roots (Lemma 4), and only one level is held in memory at a
// time.

#ifndef SHARON_PLANNER_PLAN_FINDER_H_
#define SHARON_PLANNER_PLAN_FINDER_H_

#include <cstdint>
#include <vector>

#include "src/graph/sharon_graph.h"

namespace sharon {

/// Limits for the exponential worst case (§6 "extreme cases").
struct PlanFinderOptions {
  double time_limit_seconds = 60.0;
  uint64_t max_level_plans = 2'000'000;
};

/// Which of the §6 extreme-case limits stopped an incomplete search.
enum class PlanFinderLimit {
  kNone,       ///< search completed
  kTime,       ///< time_limit_seconds expired
  kLevelSize,  ///< a lattice level exceeded max_level_plans
  kVertexCount ///< too many vertices to enumerate at all (exhaustive)
};

/// Human-readable name of a limit ("time limit", "level-size limit", ...).
const char* PlanFinderLimitName(PlanFinderLimit limit);

/// Outcome of the search.
struct PlanFinderResult {
  std::vector<VertexId> best;   ///< optimal valid plan (vertex ids)
  double best_score = 0;
  uint64_t plans_considered = 0;
  size_t peak_level_plans = 0;  ///< widest level held in memory
  size_t peak_bytes = 0;        ///< memory proxy for Fig. 15(b)
  bool completed = true;        ///< false: hit the time/size limit
  /// The limit that triggered completed=false (kNone when completed), so
  /// callers can report WHY a search fell back instead of a bare flag.
  PlanFinderLimit limit = PlanFinderLimit::kNone;
};

/// One lattice level: plans as sorted vertex-id vectors plus their scores.
struct PlanLevel {
  std::vector<std::vector<VertexId>> plans;  ///< lexicographically sorted
  std::vector<double> scores;
};

/// Algorithm 3: generates level s+1 from level s over `graph`. Stops and
/// sets `*overflow` once the level exceeds `max_plans` (0 = unlimited), so
/// an oversized level is never materialised.
PlanLevel GetNextLevel(const SharonGraph& graph, const PlanLevel& parents,
                       uint64_t max_plans = 0, bool* overflow = nullptr);

/// Algorithm 4: BFS over valid plans, returning the best one.
PlanFinderResult FindOptimalPlan(const SharonGraph& graph,
                                 const PlanFinderOptions& opts = {});

/// Reference exhaustive search over ALL 2^|V| subsets (the paper's
/// "exhaustive optimizer"). Honors the same limits.
PlanFinderResult ExhaustiveSearch(const SharonGraph& graph,
                                  const PlanFinderOptions& opts = {});

}  // namespace sharon

#endif  // SHARON_PLANNER_PLAN_FINDER_H_
