#include "src/planner/optimizer.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/graph/gwmin.h"
#include "src/graph/reduction.h"
#include "src/sharing/ccspan.h"

namespace sharon {
namespace {

SharonGraph BuildTimed(const Workload& workload,
                       const std::vector<Candidate>& candidates,
                       const SharonGraph::WeightFn& weight,
                       OptimizerResult* r) {
  StopWatch watch;
  SharonGraph g = SharonGraph::Build(workload, candidates, weight);
  r->candidates = candidates.size();
  r->graph_vertices = g.num_vertices();
  r->graph_edges = g.num_edges();
  r->phases.push_back(
      {"graph construction", watch.ElapsedMillis(), g.EstimatedBytes(), ""});
  return g;
}

}  // namespace

OptimizerResult OptimizeGreedy(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const SharonGraph::WeightFn& weight) {
  OptimizerResult r;
  SharonGraph g = BuildTimed(workload, candidates, weight, &r);

  StopWatch watch;
  GwminResult greedy = RunGwmin(g);
  r.score = greedy.weight;
  r.plan = g.ToPlan(greedy.independent_set);
  r.plans_considered = greedy.independent_set.size();
  r.phases.push_back({"GWMIN", watch.ElapsedMillis(), g.EstimatedBytes(), ""});
  return r;
}

OptimizerResult OptimizeExhaustive(const Workload& workload,
                                   const std::vector<Candidate>& candidates,
                                   const SharonGraph::WeightFn& weight,
                                   const OptimizerConfig& config) {
  OptimizerResult r;
  SharonGraph g = BuildTimed(workload, candidates, weight, &r);

  if (config.expand) {
    StopWatch watch;
    g = ExpandGraph(g, workload, weight, config.expansion);
    r.expanded_vertices = g.num_vertices();
    r.phases.push_back(
        {"graph expansion", watch.ElapsedMillis(), g.EstimatedBytes(), ""});
  }

  StopWatch watch;
  PlanFinderResult found = ExhaustiveSearch(g, config.finder);
  r.completed = found.completed;
  r.limit = found.limit;
  r.plans_considered = found.plans_considered;
  r.score = found.best_score;
  r.plan = g.ToPlan(found.best);
  // The naive exhaustive optimizer materialises every plan it considers;
  // model that storage explicitly (Fig. 15(b) exponential memory).
  const size_t per_plan_bytes =
      g.num_vertices() / 2 * sizeof(VertexId) + sizeof(double);
  r.phases.push_back({"exhaustive search", watch.ElapsedMillis(),
                      g.EstimatedBytes() +
                          found.plans_considered * per_plan_bytes,
                      found.completed ? "" : PlanFinderLimitName(found.limit)});
  return r;
}

OptimizerResult OptimizeSharon(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const SharonGraph::WeightFn& weight,
                               const OptimizerConfig& config) {
  OptimizerResult r;
  SharonGraph g = BuildTimed(workload, candidates, weight, &r);

  if (config.expand) {
    StopWatch watch;
    g = ExpandGraph(g, workload, weight, config.expansion);
    r.expanded_vertices = g.num_vertices();
    r.phases.push_back(
        {"graph expansion", watch.ElapsedMillis(), g.EstimatedBytes(), ""});
  }

  std::vector<VertexId> conflict_free;
  if (config.reduce) {
    StopWatch watch;
    ReductionResult red = ReduceGraph(g);
    conflict_free = std::move(red.conflict_free);
    r.conflict_free = conflict_free.size();
    r.pruned_ridden = red.pruned_ridden.size();
    r.reduced_vertices = red.remaining;
    r.phases.push_back(
        {"graph reduction", watch.ElapsedMillis(), g.EstimatedBytes(), ""});
  } else {
    r.reduced_vertices = g.num_vertices();
  }

  StopWatch watch;
  PlanFinderResult found = FindOptimalPlan(g, config.finder);
  r.plans_considered = found.plans_considered;

  std::vector<VertexId> chosen;
  if (found.completed) {
    chosen = found.best;
  } else {
    // §6 extreme case 1: fall back to GWMIN's polynomial-time plan. The
    // phase note names the limit that triggered the fallback so Fig. 15
    // output (and adaptive-planner logs) show time-outs and level
    // overflows as distinct events.
    r.used_fallback = true;
    r.completed = false;
    r.limit = found.limit;
    chosen = RunGwmin(g).independent_set;
  }
  // Conflict-free candidates always join the final plan (Alg. 4 line 11).
  chosen.insert(chosen.end(), conflict_free.begin(), conflict_free.end());
  r.score = g.WeightOf(chosen);
  r.plan = g.ToPlan(chosen);
  r.phases.push_back(
      {"plan finder", watch.ElapsedMillis(),
       g.EstimatedBytes() + found.peak_bytes,
       found.completed
           ? ""
           : std::string(PlanFinderLimitName(found.limit)) +
                 " -> GWMIN fallback"});
  return r;
}

OptimizerResult OptimizeCluster(const Workload& workload,
                                const std::vector<Candidate>& cluster,
                                const SharonGraph::WeightFn& weight,
                                const OptimizerConfig& config) {
  OptimizerResult go = OptimizeGreedy(workload, cluster, weight);
  if (go.graph_edges == 0) return go;
  OptimizerResult so = OptimizeSharon(workload, cluster, weight, config);
  return so.score > go.score ? so : go;
}

OptimizerResult OptimizeGreedy(const Workload& workload, const CostModel& cm) {
  auto cands = FindSharableCandidates(workload);
  return OptimizeGreedy(workload, cands, [&](const Candidate& c) {
    return cm.BValue(c, workload);
  });
}

OptimizerResult OptimizeExhaustive(const Workload& workload,
                                   const CostModel& cm,
                                   const OptimizerConfig& config) {
  auto cands = FindSharableCandidates(workload);
  return OptimizeExhaustive(
      workload, cands,
      [&](const Candidate& c) { return cm.BValue(c, workload); }, config);
}

OptimizerResult OptimizeSharon(const Workload& workload, const CostModel& cm,
                               const OptimizerConfig& config) {
  auto cands = FindSharableCandidates(workload);
  return OptimizeSharon(
      workload, cands,
      [&](const Candidate& c) { return cm.BValue(c, workload); }, config);
}

ReoptimizeResult Reoptimize(const Workload& workload, const CostModel& cm,
                            const SharingPlan& current,
                            const ReoptimizeOptions& opts) {
  ReoptimizeResult r;
  StopWatch watch;
  r.current_score = PlanScore(current, workload, cm);
  r.phases.push_back({"re-cost current", watch.ElapsedMillis(), 0, ""});

  watch.Reset();
  OptimizerResult go = OptimizeGreedy(workload, cm);
  r.phases.push_back(
      {"GO", watch.ElapsedMillis(), go.PeakBytes(), ""});

  const double go_gain = go.score - r.current_score;
  const double denom = r.current_score > 1.0 ? r.current_score : 1.0;
  if (go_gain / denom > opts.so_escalation_gap) {
    watch.Reset();
    OptimizerResult so = OptimizeSharon(workload, cm, opts.config);
    r.escalated = true;
    r.phases.push_back({"SO", watch.ElapsedMillis(), so.PeakBytes(),
                        so.completed ? "" : PlanFinderLimitName(so.limit)});
    r.chosen = so.score >= go.score ? std::move(so) : std::move(go);
  } else {
    r.chosen = std::move(go);
  }
  return r;
}

}  // namespace sharon
