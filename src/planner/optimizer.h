// The three optimizer pipelines compared in the paper's §8.3 (Fig. 15):
//
//  - Greedy optimizer (GO):     graph construction -> GWMIN.
//  - Exhaustive optimizer (EO): graph construction -> expansion (§7.1) ->
//                               exhaustive search over all 2^|V| plans.
//  - Sharon optimizer (SO):     graph construction -> expansion ->
//                               reduction (§5) -> sharing plan finder (§6);
//                               falls back to GWMIN when the time limit
//                               expires (§6 extreme case 1).
//
// Every pipeline reports per-phase latency and memory so the Fig. 15
// bench can print phase-segmented bars.

#ifndef SHARON_PLANNER_OPTIMIZER_H_
#define SHARON_PLANNER_OPTIMIZER_H_

#include <string>
#include <vector>

#include "src/graph/expansion.h"
#include "src/graph/sharon_graph.h"
#include "src/planner/plan_finder.h"
#include "src/sharing/cost_model.h"

namespace sharon {

/// Latency/memory of one optimizer phase (Fig. 15 bar segment).
struct OptimizerPhase {
  std::string name;
  double millis = 0;
  size_t bytes = 0;
};

/// Outcome of an optimizer pipeline.
struct OptimizerResult {
  SharingPlan plan;
  double score = 0;            ///< sum of candidate benefits (Def. 8)
  bool completed = true;       ///< false: EO/SO hit its limits
  bool used_fallback = false;  ///< SO timed out and returned GWMIN's plan
  std::vector<OptimizerPhase> phases;

  // Pipeline statistics.
  size_t candidates = 0;        ///< sharable candidates found (Alg. 7)
  size_t graph_vertices = 0;    ///< beneficial candidates (Alg. 1)
  size_t graph_edges = 0;
  size_t expanded_vertices = 0; ///< after §7.1 expansion
  size_t conflict_free = 0;     ///< |F| from reduction
  size_t pruned_ridden = 0;     ///< conflict-ridden candidates pruned
  size_t reduced_vertices = 0;  ///< remaining after reduction
  uint64_t plans_considered = 0;

  double TotalMillis() const {
    double t = 0;
    for (const auto& p : phases) t += p.millis;
    return t;
  }
  size_t PeakBytes() const {
    size_t b = 0;
    for (const auto& p : phases) b = std::max(b, p.bytes);
    return b;
  }
};

/// Pipeline knobs.
struct OptimizerConfig {
  bool expand = true;  ///< §7.1 conflict resolution (EO and SO)
  bool reduce = true;  ///< §5 candidate pruning (SO)
  ExpansionOptions expansion;
  PlanFinderOptions finder;
};

/// Low-level entry points taking precomputed candidates and a weight
/// function (tests inject the paper's Fig. 4 weights through these).
OptimizerResult OptimizeGreedy(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const SharonGraph::WeightFn& weight);
OptimizerResult OptimizeExhaustive(const Workload& workload,
                                   const std::vector<Candidate>& candidates,
                                   const SharonGraph::WeightFn& weight,
                                   const OptimizerConfig& config = {});
OptimizerResult OptimizeSharon(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const SharonGraph::WeightFn& weight,
                               const OptimizerConfig& config = {});

/// Convenience entry points: candidates via modified CCSpan, weights via
/// the §3 cost model.
OptimizerResult OptimizeGreedy(const Workload& workload, const CostModel& cm);
OptimizerResult OptimizeExhaustive(const Workload& workload,
                                   const CostModel& cm,
                                   const OptimizerConfig& config = {});
OptimizerResult OptimizeSharon(const Workload& workload, const CostModel& cm,
                               const OptimizerConfig& config = {});

}  // namespace sharon

#endif  // SHARON_PLANNER_OPTIMIZER_H_
