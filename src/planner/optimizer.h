// The three optimizer pipelines compared in the paper's §8.3 (Fig. 15):
//
//  - Greedy optimizer (GO):     graph construction -> GWMIN.
//  - Exhaustive optimizer (EO): graph construction -> expansion (§7.1) ->
//                               exhaustive search over all 2^|V| plans.
//  - Sharon optimizer (SO):     graph construction -> expansion ->
//                               reduction (§5) -> sharing plan finder (§6);
//                               falls back to GWMIN when the time limit
//                               expires (§6 extreme case 1).
//
// Every pipeline reports per-phase latency and memory so the Fig. 15
// bench can print phase-segmented bars.

#ifndef SHARON_PLANNER_OPTIMIZER_H_
#define SHARON_PLANNER_OPTIMIZER_H_

#include <string>
#include <vector>

#include "src/graph/expansion.h"
#include "src/graph/sharon_graph.h"
#include "src/planner/plan_finder.h"
#include "src/sharing/cost_model.h"

namespace sharon {

/// Latency/memory of one optimizer phase (Fig. 15 bar segment).
struct OptimizerPhase {
  std::string name;
  double millis = 0;
  size_t bytes = 0;
  /// Diagnostic annotation, e.g. which limit cut the phase short
  /// ("time limit", "level-size limit"). Empty for clean phases.
  std::string note;
};

/// Outcome of an optimizer pipeline.
struct OptimizerResult {
  SharingPlan plan;
  double score = 0;            ///< sum of candidate benefits (Def. 8)
  bool completed = true;       ///< false: EO/SO hit its limits
  bool used_fallback = false;  ///< SO timed out and returned GWMIN's plan
  /// The specific limit behind completed=false (kNone when completed):
  /// time expired vs. an oversized lattice level vs. too many vertices.
  PlanFinderLimit limit = PlanFinderLimit::kNone;
  std::vector<OptimizerPhase> phases;

  // Pipeline statistics.
  size_t candidates = 0;        ///< sharable candidates found (Alg. 7)
  size_t graph_vertices = 0;    ///< beneficial candidates (Alg. 1)
  size_t graph_edges = 0;
  size_t expanded_vertices = 0; ///< after §7.1 expansion
  size_t conflict_free = 0;     ///< |F| from reduction
  size_t pruned_ridden = 0;     ///< conflict-ridden candidates pruned
  size_t reduced_vertices = 0;  ///< remaining after reduction
  uint64_t plans_considered = 0;

  double TotalMillis() const {
    double t = 0;
    for (const auto& p : phases) t += p.millis;
    return t;
  }
  size_t PeakBytes() const {
    size_t b = 0;
    for (const auto& p : phases) b = std::max(b, p.bytes);
    return b;
  }
};

/// Pipeline knobs.
struct OptimizerConfig {
  bool expand = true;  ///< §7.1 conflict resolution (EO and SO)
  bool reduce = true;  ///< §5 candidate pruning (SO)
  ExpansionOptions expansion;
  PlanFinderOptions finder;
};

/// Low-level entry points taking precomputed candidates and a weight
/// function (tests inject the paper's Fig. 4 weights through these).
OptimizerResult OptimizeGreedy(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const SharonGraph::WeightFn& weight);
OptimizerResult OptimizeExhaustive(const Workload& workload,
                                   const std::vector<Candidate>& candidates,
                                   const SharonGraph::WeightFn& weight,
                                   const OptimizerConfig& config = {});
OptimizerResult OptimizeSharon(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const SharonGraph::WeightFn& weight,
                               const OptimizerConfig& config = {});

/// Solves ONE conflict cluster (a connected component of the sharing
/// graph): runs GO, escalating to SO only when the cluster carries at
/// least one conflict edge — a conflict-free cluster's GWMIN pick is
/// already every positive vertex, so SO cannot improve it. Unlike
/// Reoptimize's gain-based escalation this rule is STRUCTURAL, i.e. a
/// pure function of (candidates, weights): a cluster born from a churn
/// merge has no incumbent score to measure gain against, and the
/// incremental optimizer (src/sharing/incremental.h) needs patched and
/// rebuilt clusters to make bit-identical escalation decisions. Ties
/// between the SO and GO scores keep GO's plan.
OptimizerResult OptimizeCluster(const Workload& workload,
                                const std::vector<Candidate>& cluster,
                                const SharonGraph::WeightFn& weight,
                                const OptimizerConfig& config = {});

/// Convenience entry points: candidates via modified CCSpan, weights via
/// the §3 cost model.
OptimizerResult OptimizeGreedy(const Workload& workload, const CostModel& cm);
OptimizerResult OptimizeExhaustive(const Workload& workload,
                                   const CostModel& cm,
                                   const OptimizerConfig& config = {});
OptimizerResult OptimizeSharon(const Workload& workload, const CostModel& cm,
                               const OptimizerConfig& config = {});

// --- incremental re-optimization (§7.4 dynamic workloads) -------------------
//
// When runtime statistics show drifted rates, the cheap question is "how
// much better could a fresh plan be?" — answered by re-costing the CURRENT
// plan under the new rates (Def. 8 is a pure function of rates) and running
// the polynomial GO pipeline. Only when GO already promises a significant
// gain is the exponential SO pipeline worth its latency; the escalation
// threshold makes that trade explicit. src/adaptive/PlanManager drives this
// on an epoch cadence and hot-swaps the winner (src/runtime/plan_swap.h).

/// Knobs of one re-optimization pass.
struct ReoptimizeOptions {
  /// Escalate from GO to SO when GO's predicted relative gain over the
  /// current plan exceeds this ratio (SO can only widen the gain).
  double so_escalation_gap = 0.5;
  /// Pipeline configuration for the SO escalation.
  OptimizerConfig config;
};

/// Outcome of one re-optimization pass.
struct ReoptimizeResult {
  /// The incumbent plan's score (Def. 8 sum) under the NEW rates.
  double current_score = 0;
  /// The winning freshly-optimized pipeline outcome (GO, or SO when
  /// escalated and better).
  OptimizerResult chosen;
  bool escalated = false;  ///< SO pipeline ran
  /// Phase stats of the whole pass: "re-cost current", "GO", ["SO"].
  std::vector<OptimizerPhase> phases;

  /// Predicted benefit gain of swapping to the chosen plan.
  double Gain() const { return chosen.score - current_score; }

  /// Gain relative to the incumbent (denominator floored at 1 so an
  /// empty/zero-benefit incumbent still produces a finite ratio).
  double GainRatio() const {
    return Gain() / (current_score > 1.0 ? current_score : 1.0);
  }

  double TotalMillis() const {
    double t = 0;
    for (const auto& p : phases) t += p.millis;
    return t;
  }
};

/// Re-scores `current` under `cm`'s rates and searches for a better plan
/// (GO, escalating to SO per `opts`). Pure planning: the caller decides
/// whether the gain clears its hysteresis margin and performs the swap.
ReoptimizeResult Reoptimize(const Workload& workload, const CostModel& cm,
                            const SharingPlan& current,
                            const ReoptimizeOptions& opts = {});

}  // namespace sharon

#endif  // SHARON_PLANNER_OPTIMIZER_H_
