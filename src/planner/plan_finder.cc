#include "src/planner/plan_finder.h"

#include <algorithm>

#include "src/common/metrics.h"

namespace sharon {
namespace {

size_t LevelBytes(const PlanLevel& level, size_t plan_size) {
  return level.plans.size() *
         (plan_size * sizeof(VertexId) + sizeof(double) + sizeof(void*));
}

}  // namespace

const char* PlanFinderLimitName(PlanFinderLimit limit) {
  switch (limit) {
    case PlanFinderLimit::kNone: return "none";
    case PlanFinderLimit::kTime: return "time limit";
    case PlanFinderLimit::kLevelSize: return "level-size limit";
    case PlanFinderLimit::kVertexCount: return "vertex-count limit";
  }
  return "unknown";
}

PlanLevel GetNextLevel(const SharonGraph& graph, const PlanLevel& parents,
                       uint64_t max_plans, bool* overflow) {
  PlanLevel children;
  if (overflow) *overflow = false;
  const size_t n = parents.plans.size();
  if (n < 2) return children;
  const size_t s = parents.plans.front().size();

  // Plans are lexicographically sorted, so plans sharing the same s-1
  // prefix form contiguous blocks; join within each block (Alg. 3).
  size_t block_start = 0;
  while (block_start < n) {
    size_t block_end = block_start + 1;
    while (block_end < n &&
           std::equal(parents.plans[block_start].begin(),
                      parents.plans[block_start].end() - 1,
                      parents.plans[block_end].begin(),
                      parents.plans[block_end].end() - 1)) {
      ++block_end;
    }
    for (size_t i = block_start; i < block_end; ++i) {
      for (size_t j = i + 1; j < block_end; ++j) {
        const VertexId vi = parents.plans[i].back();
        const VertexId vj = parents.plans[j].back();
        // Lemma 6: the child is valid iff the two differing candidates
        // are not in conflict.
        if (graph.HasEdge(vi, vj)) continue;
        if (max_plans > 0 && children.plans.size() >= max_plans) {
          if (overflow) *overflow = true;
          return children;
        }
        std::vector<VertexId> child = parents.plans[i];
        child.push_back(vj);  // vi < vj by sort order, so child is sorted
        children.plans.push_back(std::move(child));
        children.scores.push_back(parents.scores[i] + graph.weight(vj));
      }
    }
    block_start = block_end;
  }
  (void)s;
  return children;
}

namespace {

// Algorithm 4 over one set of vertices (a connected component). Appends
// the component's optimal sub-plan to `result->best`.
bool FindOptimalForComponent(const SharonGraph& graph,
                             const std::vector<VertexId>& vertices,
                             const PlanFinderOptions& opts,
                             const StopWatch& watch,
                             PlanFinderResult* result) {
  // Level 1: single candidates (Alg. 4 lines 1-4).
  PlanLevel level;
  for (VertexId v : vertices) {
    level.plans.push_back({v});
    level.scores.push_back(graph.weight(v));
  }
  std::sort(level.plans.begin(), level.plans.end());
  for (size_t i = 0; i < level.plans.size(); ++i) {
    level.scores[i] = graph.weight(level.plans[i][0]);
  }

  double best_score = 0;
  std::vector<VertexId> best;
  size_t plan_size = 1;
  while (!level.plans.empty()) {
    result->plans_considered += level.plans.size();
    result->peak_level_plans =
        std::max(result->peak_level_plans, level.plans.size());
    result->peak_bytes =
        std::max(result->peak_bytes, LevelBytes(level, plan_size));
    for (size_t i = 0; i < level.plans.size(); ++i) {
      if (level.scores[i] > best_score) {
        best_score = level.scores[i];
        best = level.plans[i];
      }
    }
    if (watch.ElapsedSeconds() > opts.time_limit_seconds) {
      result->limit = PlanFinderLimit::kTime;
      return false;
    }
    bool overflow = false;
    level = GetNextLevel(graph, level, opts.max_level_plans, &overflow);
    if (overflow) {
      result->limit = PlanFinderLimit::kLevelSize;
      return false;
    }
    ++plan_size;
  }
  result->best_score += best_score;
  result->best.insert(result->best.end(), best.begin(), best.end());
  return true;
}

}  // namespace

PlanFinderResult FindOptimalPlan(const SharonGraph& graph,
                                 const PlanFinderOptions& opts) {
  PlanFinderResult result;
  StopWatch watch;
  // Conflicts never cross connected components, so the optimal plan is
  // the union of per-component optima. Components are usually small after
  // reduction, which keeps the exponential Alg. 4 traversal tractable far
  // beyond what a whole-graph lattice would allow.
  for (const auto& component : graph.ConnectedComponents()) {
    if (!FindOptimalForComponent(graph, component, opts, watch, &result)) {
      result.completed = false;
      return result;
    }
  }
  std::sort(result.best.begin(), result.best.end());
  return result;
}

PlanFinderResult ExhaustiveSearch(const SharonGraph& graph,
                                  const PlanFinderOptions& opts) {
  PlanFinderResult result;
  StopWatch watch;
  const std::vector<VertexId> vs = graph.AliveVertices();
  const size_t n = vs.size();
  if (n == 0) return result;
  if (n >= 63) {
    result.completed = false;
    result.limit = PlanFinderLimit::kVertexCount;
    return result;
  }

  std::vector<VertexId> current;
  // Depth-first enumeration of all subsets, validity checked incrementally
  // (no pruning of invalid branches: every subset is "considered").
  uint64_t checked_since_clock = 0;
  bool aborted = false;
  auto recurse = [&](auto&& self, size_t idx, double score,
                     bool valid) -> void {
    if (aborted) return;
    if (idx == n) {
      ++result.plans_considered;
      if (valid && score > result.best_score) {
        result.best_score = score;
        result.best = current;
      }
      if (++checked_since_clock >= 65536) {
        checked_since_clock = 0;
        if (watch.ElapsedSeconds() > opts.time_limit_seconds) {
          aborted = true;
        }
      }
      return;
    }
    self(self, idx + 1, score, valid);  // exclude vs[idx]
    bool still_valid = valid;
    if (valid) {
      for (VertexId u : current) {
        if (graph.HasEdge(u, vs[idx])) {
          still_valid = false;
          break;
        }
      }
    }
    current.push_back(vs[idx]);
    self(self, idx + 1, score + graph.weight(vs[idx]), still_valid);
    current.pop_back();
  };
  recurse(recurse, 0, 0.0, true);
  result.completed = !aborted;
  if (aborted) result.limit = PlanFinderLimit::kTime;
  result.peak_level_plans = result.plans_considered;
  result.peak_bytes =
      (uint64_t{1} << std::min<size_t>(n, 40)) / 8;  // subset bitmap proxy
  return result;
}

}  // namespace sharon
