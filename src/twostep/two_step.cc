#include "src/twostep/two_step.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/exec/engine.h"  // ProjectSpec

namespace sharon {
namespace {

/// One explicitly constructed (partial) event sequence.
struct Match {
  Timestamp first;
  Timestamp last;
  AggState agg;  ///< aggregate of this single sequence (count == 1)
};

/// Shared guts of both baselines: per-pattern sequence construction with
/// explicit partial-match lists.
class SequenceConstructor {
 public:
  SequenceConstructor(const Pattern& pattern, AggSpec spec, WindowSpec window)
      : pattern_(pattern), spec_(spec), window_(window),
        levels_(pattern.length()) {}

  /// Extends partial matches by `e`; completed sequences go to `on_full`.
  /// Returns false when the budget is exhausted.
  template <typename OnFull>
  bool OnEvent(const Event& e, const TwoStepBudget& budget, uint64_t* ops,
               uint64_t* live, OnFull&& on_full) {
    const size_t L = pattern_.length();
    const EventContribution c = ContributionOf(e, spec_);
    for (size_t j = L; j-- > 0;) {
      if (pattern_.type(j) != e.type) continue;
      if (j == 0) {
        Match m{e.time, e.time, AggState::Unit(c)};
        if (L == 1) {
          ++*ops;
          on_full(m);
        } else {
          levels_[0].push_back(m);
          ++*live;
        }
        continue;
      }
      for (const Match& p : levels_[j - 1]) {
        if (window_.Expired(p.first, e.time)) continue;
        ++*ops;
        Match m{p.first, e.time, AggState::Extend(p.agg, c)};
        if (j == L - 1) {
          on_full(m);
        } else {
          levels_[j].push_back(m);
          ++*live;
        }
        if (*ops > budget.max_operations || *live > budget.max_live_matches) {
          return false;
        }
      }
    }
    return true;
  }

  /// Drops partials that can no longer be extended within any window.
  void Compact(Timestamp now, uint64_t* live) {
    for (auto& level : levels_) {
      size_t kept = 0;
      for (Match& m : level) {
        if (!window_.Expired(m.first, now)) level[kept++] = m;
      }
      *live -= level.size() - kept;
      level.resize(kept);
    }
  }

  size_t LiveBytes() const {
    size_t n = 0;
    for (const auto& level : levels_) n += level.size();
    return n * sizeof(Match);
  }

 private:
  Pattern pattern_;
  AggSpec spec_;
  WindowSpec window_;
  std::vector<std::vector<Match>> levels_;
};

void FoldMatchIntoWindows(QueryId q, AttrValue g, const Match& m,
                          const WindowSpec& w, ResultCollector* out) {
  const WindowId lo = std::max<WindowId>(w.FirstWindowCovering(m.last), 0);
  const WindowId hi = w.LastWindowCovering(m.first);
  for (WindowId j = lo; j <= hi; ++j) out->Add(q, j, g, m.agg);
}

/// Ordering key for (pattern, spec) maps.
using PatSpecKey =
    std::tuple<std::vector<EventTypeId>, int, EventTypeId, AttrIndex>;

PatSpecKey KeyOf(const Pattern& p, const AggSpec& s) {
  return {p.types(), static_cast<int>(s.fn), s.target_type, s.target_attr};
}

}  // namespace

RunStats RunFlinkLike(const Workload& workload,
                      const std::vector<Event>& events,
                      const TwoStepBudget& budget, ResultCollector* out) {
  RunStats stats;
  StopWatch watch;
  const WindowSpec w = workload.window();
  const AttrIndex part = workload.partition_attr();

  // One constructor per (group, query): fully independent evaluation.
  std::map<AttrValue, std::vector<SequenceConstructor>> groups;
  uint64_t ops = 0, live = 0;
  size_t peak_bytes = 0;
  uint64_t since_compact = 0;
  bool finished = true;

  for (const Event& e : events) {
    const AttrValue g = part == kNoAttr ? 0 : e.attr(part);
    auto it = groups.find(g);
    if (it == groups.end()) {
      std::vector<SequenceConstructor> cons;
      cons.reserve(workload.size());
      for (const Query& q : workload.queries()) {
        cons.emplace_back(q.pattern, q.agg, q.window);
      }
      it = groups.emplace(g, std::move(cons)).first;
    }
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      const QueryId qid = workload.queries()[qi].id;
      bool in_budget = it->second[qi].OnEvent(
          e, budget, &ops, &live,
          [&](const Match& m) { FoldMatchIntoWindows(qid, g, m, w, out); });
      if (!in_budget) {
        finished = false;
        break;
      }
    }
    if (!finished) break;
    if (++since_compact >= 2048) {
      since_compact = 0;
      size_t bytes = 0;
      for (auto& [gv, cons] : groups) {
        for (auto& c : cons) {
          c.Compact(e.time, &live);
          bytes += c.LiveBytes();
        }
      }
      peak_bytes = std::max(peak_bytes, bytes);
    }
  }

  size_t bytes = 0;
  for (auto& [gv, cons] : groups) {
    for (auto& c : cons) bytes += c.LiveBytes();
  }
  stats.peak_state_bytes = std::max(peak_bytes, bytes) + out->EstimatedBytes();
  stats.wall_seconds = watch.ElapsedSeconds();
  stats.events_processed = events.size() * workload.size();
  stats.results_emitted = out->size();
  stats.finished = finished;
  return stats;
}

namespace {

/// Per-query segment decomposition for the shared two-step baseline:
/// shared candidate ranges + private gaps, in pattern order.
struct SegmentPlanEntry {
  Pattern pattern;
  AggSpec spec;
};

std::vector<std::vector<SegmentPlanEntry>> SegmentizeForPlan(
    const Workload& workload, const SharingPlan& plan) {
  std::vector<std::vector<SegmentPlanEntry>> out(workload.size());
  for (const Query& q : workload.queries()) {
    struct Placed {
      size_t begin, end;
      const Pattern* p;
    };
    std::vector<Placed> placed;
    for (const Candidate& c : plan) {
      if (!c.Contains(q.id)) continue;
      auto pos = q.pattern.Find(c.pattern);
      if (!pos) continue;
      placed.push_back({*pos, *pos + c.pattern.length(), &c.pattern});
    }
    std::sort(placed.begin(), placed.end(),
              [](const Placed& a, const Placed& b) { return a.begin < b.begin; });
    size_t cursor = 0;
    auto& segs = out[q.id];
    auto push = [&](const Pattern& p) {
      segs.push_back({p, ProjectSpec(q.agg, p)});
    };
    for (const Placed& pl : placed) {
      if (pl.begin < cursor) continue;  // overlapping candidate: skip
      if (pl.begin > cursor) push(q.pattern.Sub(cursor, pl.begin - cursor));
      push(*pl.p);
      cursor = pl.end;
    }
    if (cursor < q.pattern.length()) {
      push(q.pattern.Sub(cursor, q.pattern.length() - cursor));
    }
  }
  return out;
}

/// Recursively enumerates ordered combinations of segment matches and folds
/// each full sequence into the window's result cell — once for every query
/// in `queries` (queries with identical segmentations share the join; this
/// is the "shared event sequence construction" of SPASS).
bool JoinSegments(const std::vector<const std::vector<Match>*>& lists,
                  size_t stage, Timestamp prev_last, const AggState& acc,
                  Timestamp window_end, const QueryList& queries, AttrValue g,
                  WindowId j, const TwoStepBudget& budget, uint64_t* ops,
                  ResultCollector* out) {
  if (stage == lists.size()) {
    for (QueryId q : queries) out->Add(q, j, g, acc);
    return true;
  }
  const std::vector<Match>& list = *lists[stage];
  // Matches are sorted by first; seek the first joinable one.
  auto it = std::lower_bound(
      list.begin(), list.end(), prev_last,
      [](const Match& m, Timestamp t) { return m.first <= t; });
  for (; it != list.end(); ++it) {
    if (it->first >= window_end) break;  // sorted by first: no more fits
    if (++*ops > budget.max_operations) return false;
    if (it->last >= window_end) continue;
    if (!JoinSegments(lists, stage + 1, it->last,
                      AggState::Concat(acc, it->agg), window_end, queries, g,
                      j, budget, ops, out)) {
      return false;
    }
  }
  return true;
}

}  // namespace

RunStats RunSpassLike(const Workload& workload, const SharingPlan& plan,
                      const std::vector<Event>& events,
                      const TwoStepBudget& budget, ResultCollector* out) {
  RunStats stats;
  StopWatch watch;
  const WindowSpec w = workload.window();
  const AttrIndex part = workload.partition_attr();
  const auto segmented = SegmentizeForPlan(workload, plan);

  uint64_t ops = 0, live = 0;
  bool finished = true;

  std::map<AttrValue, std::vector<Event>> by_group;
  for (const Event& e : events) {
    by_group[part == kNoAttr ? 0 : e.attr(part)].push_back(e);
  }

  // Join groups: queries with identical segmentations share construction
  // AND the downstream join (shared event sequence construction).
  std::map<std::vector<PatSpecKey>, QueryList> join_groups;
  for (const Query& q : workload.queries()) {
    std::vector<PatSpecKey> sig;
    for (const auto& seg : segmented[q.id]) {
      sig.push_back(KeyOf(seg.pattern, seg.spec));
    }
    join_groups[std::move(sig)].push_back(q.id);
  }
  // Segment patterns needed by multi-segment joins get their matches
  // stored; single-segment groups fold each constructed sequence directly
  // into result windows (no join needed).
  std::map<PatSpecKey, QueryList> fold_direct;
  std::map<PatSpecKey, bool> store_needed;
  for (const auto& [sig, queries] : join_groups) {
    if (sig.size() == 1) {
      QueryList& qs = fold_direct[sig[0]];
      qs.insert(qs.end(), queries.begin(), queries.end());
    } else {
      for (const PatSpecKey& key : sig) store_needed[key] = true;
    }
  }

  // Step 1 — construction, shared per (pattern, spec) per group.
  size_t construct_bytes = 0;
  std::map<AttrValue, std::map<PatSpecKey, std::vector<Match>>> matches;
  for (auto& [g, evs] : by_group) {
    auto& pattern_matches = matches[g];
    // One constructor per distinct (pattern, spec), with its output sinks
    // (match list and/or direct result folding) resolved up front.
    struct Slot {
      SequenceConstructor cons;
      std::vector<Match>* store = nullptr;
      const QueryList* direct = nullptr;
    };
    std::map<PatSpecKey, size_t> index;
    std::vector<Slot> slots;
    for (const Query& q : workload.queries()) {
      for (const auto& seg : segmented[q.id]) {
        PatSpecKey key = KeyOf(seg.pattern, seg.spec);
        if (index.count(key)) continue;
        index.emplace(key, slots.size());
        Slot slot{SequenceConstructor(seg.pattern, seg.spec, w), nullptr,
                  nullptr};
        if (store_needed.count(key)) slot.store = &pattern_matches[key];
        auto fold_it = fold_direct.find(key);
        if (fold_it != fold_direct.end()) slot.direct = &fold_it->second;
        slots.push_back(std::move(slot));
      }
    }
    uint64_t since_compact = 0;
    for (const Event& e : evs) {
      for (Slot& slot : slots) {
        bool in_budget = slot.cons.OnEvent(
            e, budget, &ops, &live, [&](const Match& m) {
              if (slot.store) slot.store->push_back(m);
              if (slot.direct) {
                for (QueryId q : *slot.direct) {
                  FoldMatchIntoWindows(q, g, m, w, out);
                }
              }
            });
        if (!in_budget) {
          finished = false;
          break;
        }
      }
      if (!finished) break;
      // Group sub-streams are short; compact often enough that expired
      // partials never dominate the scan.
      if (++since_compact >= 256) {
        since_compact = 0;
        for (Slot& slot : slots) slot.cons.Compact(e.time, &live);
      }
    }
    for (auto& [key, list] : pattern_matches) {
      std::sort(list.begin(), list.end(),
                [](const Match& a, const Match& b) { return a.first < b.first; });
      construct_bytes += list.size() * sizeof(Match);
    }
    for (const Slot& slot : slots) construct_bytes += slot.cons.LiveBytes();
    if (!finished) break;
  }

  // Step 2 — join + aggregation per window for multi-segment groups.
  if (finished && !events.empty()) {
    const WindowId last_window = w.LastWindowCovering(events.back().time);
    for (auto& [g, pattern_matches] : matches) {
      for (const auto& [sig, queries] : join_groups) {
        if (sig.size() == 1) continue;  // folded during construction
        std::vector<const std::vector<Match>*> lists;
        static const std::vector<Match> kEmpty;
        for (const PatSpecKey& key : sig) {
          auto it = pattern_matches.find(key);
          lists.push_back(it == pattern_matches.end() ? &kEmpty : &it->second);
        }
        for (WindowId j = 0; j <= last_window && finished; ++j) {
          finished = JoinSegments(lists, 0, w.WindowStart(j) - 1,
                                  AggState::Identity(), w.WindowEnd(j),
                                  queries, g, j, budget, &ops, out);
        }
        if (!finished) break;
      }
      if (!finished) break;
    }
  }

  stats.peak_state_bytes = construct_bytes + out->EstimatedBytes();
  stats.wall_seconds = watch.ElapsedSeconds();
  stats.events_processed = events.size() * workload.size();
  stats.results_emitted = out->size();
  stats.finished = finished;
  return stats;
}

}  // namespace sharon
