#include "src/twostep/reference.h"

#include <algorithm>
#include <map>

namespace sharon {

AggState ReferenceAggregate(const Pattern& pattern, const AggSpec& spec,
                            const Event* begin, const Event* end) {
  std::vector<AggState> agg(pattern.length(), AggState::Zero());
  for (const Event* e = begin; e != end; ++e) {
    const EventContribution c = ContributionOf(*e, spec);
    // Descending positions so an event never extends through itself.
    for (size_t j = pattern.length(); j-- > 0;) {
      if (pattern.type(j) != e->type) continue;
      if (j == 0) {
        agg[0].MergeFrom(AggState::Unit(c));
      } else {
        agg[j].MergeFrom(AggState::Extend(agg[j - 1], c));
      }
    }
  }
  return agg.back();
}

ResultCollector ReferenceResults(const Workload& workload,
                                 const std::vector<Event>& events) {
  ResultCollector out;
  if (events.empty() || workload.empty()) return out;
  const WindowSpec w = workload.window();
  const AttrIndex part = workload.partition_attr();

  // Partition events by group (stable: preserves time order).
  std::map<AttrValue, std::vector<Event>> by_group;
  for (const Event& e : events) {
    by_group[part == kNoAttr ? 0 : e.attr(part)].push_back(e);
  }

  const WindowId last_window = w.LastWindowCovering(events.back().time);
  for (const auto& [g, evs] : by_group) {
    for (WindowId j = 0; j <= last_window; ++j) {
      const Timestamp ws = w.WindowStart(j);
      const Timestamp we = w.WindowEnd(j);
      auto lo = std::lower_bound(
          evs.begin(), evs.end(), ws,
          [](const Event& e, Timestamp t) { return e.time < t; });
      auto hi = std::lower_bound(
          evs.begin(), evs.end(), we,
          [](const Event& e, Timestamp t) { return e.time < t; });
      if (lo == hi) continue;
      for (const Query& q : workload.queries()) {
        AggState a = ReferenceAggregate(q.pattern, q.agg, &*lo, &*lo + (hi - lo));
        out.Add(q.id, j, g, a);
      }
    }
  }
  return out;
}

}  // namespace sharon
