// Exact per-window reference evaluator, used as the correctness oracle for
// every executor in this repository.
//
// For each window instance and group it recomputes the aggregate from
// scratch with a prefix DP over the window's events — an implementation
// deliberately independent of the online engines' start-event/snapshot
// machinery (no expiration logic, no panes, no sharing), so agreement is
// meaningful evidence.

#ifndef SHARON_TWOSTEP_REFERENCE_H_
#define SHARON_TWOSTEP_REFERENCE_H_

#include <vector>

#include "src/exec/result.h"
#include "src/query/query.h"

namespace sharon {

/// Evaluates the whole workload exactly; events must be in time order.
ResultCollector ReferenceResults(const Workload& workload,
                                 const std::vector<Event>& events);

/// Exact aggregate of `pattern` over `events` (already filtered to one
/// window and one group), via prefix DP.
AggState ReferenceAggregate(const Pattern& pattern, const AggSpec& spec,
                            const Event* begin, const Event* end);

}  // namespace sharon

#endif  // SHARON_TWOSTEP_REFERENCE_H_
