// Two-step baselines (paper §1 "State-of-the-Art Approaches", §8.2):
//
//  - FlinkLikeExecutor: the *non-shared two-step* approach (Flink, SASE,
//    Cayuga, ZStream). Every query independently CONSTRUCTS all matching
//    event sequences as explicit partial-match lists and aggregates them
//    afterwards. The number of sequences is polynomial in the number of
//    events per window, which is why the paper observes this approach
//    failing beyond a few thousand events per window.
//
//  - SpassLikeExecutor: the *shared two-step* approach (SPASS, E-Cube).
//    Construction of shared sub-pattern sequences happens once per shared
//    pattern; each query then joins the shared match lists (and its private
//    gap matches) into full sequences and aggregates them. Construction is
//    shared, but the join still enumerates every full sequence.
//
// Both executors honour a work budget: when the number of stored partial
// matches or join operations exceeds the budget the run stops and reports
// finished = false ("does not terminate" in the paper's terms) instead of
// hanging the benchmark harness.

#ifndef SHARON_TWOSTEP_TWO_STEP_H_
#define SHARON_TWOSTEP_TWO_STEP_H_

#include <cstdint>
#include <vector>

#include "src/common/metrics.h"
#include "src/exec/result.h"
#include "src/query/query.h"
#include "src/sharing/candidate.h"

namespace sharon {

/// Work limits for the two-step baselines.
struct TwoStepBudget {
  uint64_t max_operations = 2'000'000'000ULL;  ///< extensions + join steps
  uint64_t max_live_matches = 50'000'000ULL;   ///< stored (partial) matches
};

/// Non-shared two-step execution of `workload` over `events`.
/// Results (when finished) are exact and land in `out`.
RunStats RunFlinkLike(const Workload& workload,
                      const std::vector<Event>& events,
                      const TwoStepBudget& budget, ResultCollector* out);

/// Shared two-step execution: sequence construction shared per `plan`
/// candidate, then per-query joins + aggregation.
RunStats RunSpassLike(const Workload& workload, const SharingPlan& plan,
                      const std::vector<Event>& events,
                      const TwoStepBudget& budget, ResultCollector* out);

}  // namespace sharon

#endif  // SHARON_TWOSTEP_TWO_STEP_H_
