#include "src/sharing/incremental.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/graph/sharon_graph.h"

namespace sharon::sharing {

IncrementalSharingOptimizer::IncrementalSharingOptimizer(
    const Workload* workload, CostModel cm, IncrementalConfig config)
    : workload_(workload), cm_(std::move(cm)), config_(config) {
  for (const Query& q : workload_->queries()) {
    if (workload_->active(q.id)) IndexAdd(TouchedPatterns(q.id), q.id);
  }
  Rebuild();
}

double IncrementalSharingOptimizer::WeightOf(const Candidate& c) const {
  return cm_.BValue(c, *workload_);
}

bool IncrementalSharingOptimizer::IsVertex(const Candidate& c) const {
  return c.queries.size() > 1 && WeightOf(c) > 0;
}

std::vector<Pattern> IncrementalSharingOptimizer::TouchedPatterns(
    QueryId id) const {
  const Pattern& qp = workload_->query(id).pattern;
  std::vector<Pattern> out;
  std::unordered_set<Pattern, PatternHash> seen;
  const size_t l = qp.length();
  for (size_t end = 1; end < l; ++end) {
    for (size_t start = 0; start < end; ++start) {
      Pattern p = qp.Sub(start, end - start + 1);
      if (seen.insert(p).second) out.push_back(std::move(p));
    }
  }
  return out;
}

void IncrementalSharingOptimizer::IndexAdd(
    const std::vector<Pattern>& patterns, QueryId id) {
  for (const Pattern& p : patterns) {
    QueryList& qs = index_[p];
    auto it = std::lower_bound(qs.begin(), qs.end(), id);
    if (it == qs.end() || *it != id) qs.insert(it, id);
  }
}

void IncrementalSharingOptimizer::IndexRemove(
    const std::vector<Pattern>& patterns, QueryId id) {
  for (const Pattern& p : patterns) {
    auto row = index_.find(p);
    if (row == index_.end()) continue;
    QueryList& qs = row->second;
    auto it = std::lower_bound(qs.begin(), qs.end(), id);
    if (it != qs.end() && *it == id) qs.erase(it);
    if (qs.empty()) index_.erase(row);
  }
}

void IncrementalSharingOptimizer::OnRegister(QueryId id) {
  const std::vector<Pattern> touched = TouchedPatterns(id);
  IndexAdd(touched, id);
  Patch(touched);
}

void IncrementalSharingOptimizer::OnRetire(QueryId id) {
  const std::vector<Pattern> touched = TouchedPatterns(id);
  IndexRemove(touched, id);
  Patch(touched);
}

void IncrementalSharingOptimizer::SetRates(TypeRates rates) {
  cm_ = CostModel(std::move(rates));
  Rebuild();
}

void IncrementalSharingOptimizer::Rebuild() {
  clusters_.clear();
  cluster_of_.clear();
  std::vector<Candidate> pool;
  pool.reserve(index_.size());
  for (const auto& [p, qs] : index_) {
    Candidate c{p, qs};
    if (IsVertex(c)) pool.push_back(std::move(c));
  }
  ClusterAndSolve(std::move(pool));
  AssemblePlan();
  ++stats_.full_rebuilds;
}

void IncrementalSharingOptimizer::Patch(const std::vector<Pattern>& touched) {
  // Fresh vertex versions of the touched patterns (a pattern missing from
  // the index, or failing the vertex test, simply leaves the graph).
  std::vector<Candidate> fresh;
  size_t entering = 0;
  for (const Pattern& p : touched) {
    auto row = index_.find(p);
    if (row == index_.end()) continue;
    Candidate c{p, row->second};
    if (!IsVertex(c)) continue;
    if (!cluster_of_.count(p)) ++entering;
    fresh.push_back(std::move(c));
  }

  // Clusters to dissolve: every cluster owning a touched vertex, plus —
  // for ENTERING vertices only (see the file comment) — every cluster an
  // entering vertex conflicts into.
  std::set<size_t> affected;
  for (const Pattern& p : touched) {
    auto it = cluster_of_.find(p);
    if (it != cluster_of_.end()) affected.insert(it->second);
  }
  for (const Candidate& c : fresh) {
    if (cluster_of_.count(c.pattern)) continue;  // surviving, not entering
    for (size_t idx = 0; idx < clusters_.size(); ++idx) {
      if (affected.count(idx)) continue;
      for (const Candidate& m : clusters_[idx].cands) {
        if (SharonGraph::InConflict(c, m, *workload_)) {
          affected.insert(idx);
          break;
        }
      }
    }
  }

  // Fallback: when the touched pool is most of the graph, patching redoes
  // the work of a rebuild with bookkeeping on top.
  size_t touched_vertices = entering;
  for (const size_t idx : affected) {
    touched_vertices += clusters_[idx].cands.size();
  }
  const size_t total = num_vertices() + entering;
  if (total > 0 &&
      static_cast<double>(touched_vertices) >
          config_.fallback_fraction * static_cast<double>(total)) {
    ++stats_.fallbacks;
    Rebuild();
    return;
  }

  // Dissolve the affected clusters into a candidate pool: their untouched
  // members verbatim, touched patterns replaced by their fresh versions.
  std::unordered_set<Pattern, PatternHash> touched_set(touched.begin(),
                                                       touched.end());
  std::vector<Candidate> pool = fresh;
  for (const size_t idx : affected) {
    for (const Candidate& m : clusters_[idx].cands) {
      if (!touched_set.count(m.pattern)) pool.push_back(m);
    }
  }
  for (auto it = affected.rbegin(); it != affected.rend(); ++it) {
    EraseCluster(*it);
  }
  ClusterAndSolve(std::move(pool));
  AssemblePlan();
  ++stats_.patches;
}

void IncrementalSharingOptimizer::ClusterAndSolve(std::vector<Candidate> pool) {
  if (pool.empty()) return;
  std::sort(pool.begin(), pool.end());

  // Union-find over the pool's conflict edges.
  const size_t n = pool.size();
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (SharonGraph::InConflict(pool[i], pool[j], *workload_)) {
        edges.emplace_back(i, j);
        parent[find(i)] = find(j);
      }
    }
  }

  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(i);
  std::unordered_set<size_t> conflicted;
  for (const auto& [i, j] : edges) conflicted.insert(find(i));

  for (auto& [root, members] : groups) {
    Cluster cl;
    cl.cands.reserve(members.size());
    for (const size_t i : members) cl.cands.push_back(pool[i]);
    // members ascend over the sorted pool, so cl.cands is sorted — the
    // canonical solver input patch ≡ rebuild equality rests on.
    const OptimizerResult solved = OptimizeCluster(
        *workload_, cl.cands, [&](const Candidate& c) { return WeightOf(c); },
        config_.optimizer);
    cl.plan = solved.plan;
    cl.score = solved.score;
    cl.escalated = conflicted.count(root) > 0;
    ++stats_.clusters_resolved;
    if (cl.escalated) ++stats_.so_escalations;
    const size_t idx = clusters_.size();
    for (const Candidate& c : cl.cands) cluster_of_[c.pattern] = idx;
    clusters_.push_back(std::move(cl));
  }
}

void IncrementalSharingOptimizer::AssemblePlan() {
  plan_.clear();
  for (const Cluster& cl : clusters_) {
    plan_.insert(plan_.end(), cl.plan.begin(), cl.plan.end());
  }
  std::sort(plan_.begin(), plan_.end());
  score_ = PlanScore(plan_, *workload_, cm_);
}

void IncrementalSharingOptimizer::EraseCluster(size_t idx) {
  for (const Candidate& c : clusters_[idx].cands) {
    cluster_of_.erase(c.pattern);
  }
  const size_t last = clusters_.size() - 1;
  if (idx != last) {
    clusters_[idx] = std::move(clusters_[last]);
    for (const Candidate& c : clusters_[idx].cands) {
      cluster_of_[c.pattern] = idx;
    }
  }
  clusters_.pop_back();
}

std::vector<std::vector<Candidate>> IncrementalSharingOptimizer::Clusters()
    const {
  std::vector<std::vector<Candidate>> out;
  out.reserve(clusters_.size());
  for (const Cluster& cl : clusters_) out.push_back(cl.cands);
  std::sort(out.begin(), out.end(),
            [](const std::vector<Candidate>& a,
               const std::vector<Candidate>& b) { return a.front() < b.front(); });
  return out;
}

size_t IncrementalSharingOptimizer::num_vertices() const {
  size_t n = 0;
  for (const Cluster& cl : clusters_) n += cl.cands.size();
  return n;
}

void UpdateSharingGraph(IncrementalSharingOptimizer& opt,
                        query::ChurnOp::Kind kind, QueryId id) {
  if (kind == query::ChurnOp::Kind::kRegister) {
    opt.OnRegister(id);
  } else {
    opt.OnRetire(id);
  }
}

}  // namespace sharon::sharing
