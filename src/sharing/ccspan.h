// Sharable-pattern detection: the modified CCSpan algorithm
// (paper Appendix A, Algorithm 7).
//
// The original CCSpan mines closed contiguous sequential patterns; Sharon
// modifies it to report *every* contiguous sub-pattern of length > 1 that
// appears in more than one query, because shorter sub-patterns can be
// shared by more queries than closed (maximal) ones.

#ifndef SHARON_SHARING_CCSPAN_H_
#define SHARON_SHARING_CCSPAN_H_

#include <vector>

#include "src/sharing/candidate.h"

namespace sharon {

/// Returns all sharing candidates (p, Qp) of the workload (Def. 3):
/// p.length > 1 and |Qp| > 1, Qp sorted, candidates sorted by pattern.
std::vector<Candidate> FindSharableCandidates(const Workload& workload);

}  // namespace sharon

#endif  // SHARON_SHARING_CCSPAN_H_
