#include "src/sharing/candidate.h"

namespace sharon {

std::string Candidate::ToString(const TypeRegistry& reg) const {
  std::string s = pattern.ToString(reg);
  s += " shared by {";
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i) s += ",";
    s += "q" + std::to_string(queries[i]);
  }
  s += "}";
  return s;
}

}  // namespace sharon
