// Incremental sharing optimizer for live query churn (ROADMAP "Query
// churn at scale"; the dynamic-workload half of paper §7.4).
//
// Re-running the whole GO/SO pipeline on every register/retire wastes the
// structure of the problem: conflict edges (Def. 6) need a COMMON query,
// so one churned query q can only change the graph locally —
//
//   - the candidates whose query set changes are exactly the contiguous
//     sub-patterns of q.pattern (the modified-CCSpan universe, Alg. 7);
//   - an edge gained or lost by a SURVIVING candidate runs through q as
//     the common query, so both endpoints are sub-patterns of q.pattern;
//   - only a candidate ENTERING the graph (|Qp| just crossed 1, or its
//     benefit turned positive) can bridge to untouched clusters, through
//     the other queries it shares — a scan of its conflict edges finds
//     every such cluster.
//
// The optimizer therefore keeps the CCSpan hash (pattern -> active query
// list) and the conflict-cluster partition persistent, and on churn
// dissolves only the touched clusters, re-clusters their candidate pool,
// and re-solves each resulting cluster with planner::OptimizeCluster (GO,
// escalating to SO on conflict-bearing clusters — see optimizer.h for why
// the escalation is structural here). Untouched clusters keep their
// solved sub-plans and scores verbatim. When the touched pool exceeds
// `fallback_fraction` of all vertices the patch degenerates, so the
// optimizer falls back to a full from-scratch pass.
//
// Every step is a pure function of (active query set, rates): a patched
// optimizer and a freshly rebuilt one hold bit-identical clusters, plans
// and scores — asserted across fuzzed edit scripts by
// tests/incremental_optimizer_test.cc. Rate drift invalidates every
// cluster weight at once (Eq. 8 is a function of rates), which is the
// designed-for fallback: call SetRates() and the optimizer rebuilds.

#ifndef SHARON_SHARING_INCREMENTAL_H_
#define SHARON_SHARING_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/planner/optimizer.h"
#include "src/query/registration.h"
#include "src/sharing/candidate.h"
#include "src/sharing/cost_model.h"

namespace sharon::sharing {

/// Knobs of the incremental optimizer.
struct IncrementalConfig {
  /// Full re-optimization when the touched clusters hold more than this
  /// fraction of all graph vertices (patching would redo most of the work
  /// anyway, with bookkeeping on top).
  double fallback_fraction = 0.5;
  /// Pipeline configuration of the per-cluster SO escalation.
  OptimizerConfig optimizer;
};

/// Monotone counters of one optimizer instance.
struct IncrementalStats {
  uint64_t patches = 0;        ///< incremental cluster repairs applied
  uint64_t full_rebuilds = 0;  ///< from-scratch passes (ctor/SetRates/fallback)
  uint64_t fallbacks = 0;      ///< rebuilds forced by the touched-set threshold
  uint64_t clusters_resolved = 0;  ///< per-cluster solves run
  uint64_t so_escalations = 0;     ///< solves that escalated to SO
};

/// Maintains the sharing graph and a solved plan across query churn.
/// Single-threaded (the churn driver's thread). The workload must outlive
/// the optimizer; its active mask must already reflect each operation
/// when OnRegister/OnRetire runs (query::QueryRegistry does this at
/// enqueue time).
class IncrementalSharingOptimizer {
 public:
  IncrementalSharingOptimizer(const Workload* workload, CostModel cm,
                              IncrementalConfig config = {});

  /// Patches the graph for query `id` just added to the active set.
  void OnRegister(QueryId id);

  /// Patches the graph for query `id` just removed from the active set.
  void OnRetire(QueryId id);

  /// Replaces the rates (drift) and rebuilds from scratch: every cluster
  /// weight changed, so there is nothing incremental left to save.
  void SetRates(TypeRates rates);

  /// Full from-scratch pass over the current active set (also the ctor's
  /// initialization path). Patching must be indistinguishable from this.
  void Rebuild();

  /// The solved plan over the current active set (sorted candidates).
  const SharingPlan& plan() const { return plan_; }

  /// PlanScore of plan() under the current rates (Def. 8 sum).
  double score() const { return score_; }

  /// Canonical cluster view for the equivalence tests: each cluster's
  /// candidate vertices sorted, clusters sorted by their first candidate.
  std::vector<std::vector<Candidate>> Clusters() const;

  /// Graph vertices currently alive (beneficial sharable candidates).
  size_t num_vertices() const;

  const IncrementalStats& stats() const { return stats_; }
  const CostModel& cost_model() const { return cm_; }

 private:
  struct Cluster {
    std::vector<Candidate> cands;  ///< sorted vertex candidates
    SharingPlan plan;              ///< solved sub-plan (may hold expansions)
    double score = 0;
    bool escalated = false;  ///< cluster carried conflict edges -> SO ran
  };

  /// Benefit of the candidate under the current rates.
  double WeightOf(const Candidate& c) const;

  /// Vertex test: sharable (|Qp| > 1) and beneficial (weight > 0) —
  /// exactly SharonGraph::Build's admission rule.
  bool IsVertex(const Candidate& c) const;

  /// Unique contiguous sub-patterns (length >= 2) of `id`'s pattern, the
  /// candidate universe the churned query participates in.
  std::vector<Pattern> TouchedPatterns(QueryId id) const;

  /// Inserts/removes `id` in the CCSpan hash rows of `patterns`.
  void IndexAdd(const std::vector<Pattern>& patterns, QueryId id);
  void IndexRemove(const std::vector<Pattern>& patterns, QueryId id);

  /// Shared patch body of OnRegister/OnRetire (the index is already
  /// updated). `entering` lists fresh vertices with no prior cluster.
  void Patch(const std::vector<Pattern>& touched);

  /// Union-finds `pool` into conflict clusters, solves each with
  /// OptimizeCluster, and appends them to clusters_.
  void ClusterAndSolve(std::vector<Candidate> pool);

  /// Rebuilds plan_/score_ from the cluster sub-plans.
  void AssemblePlan();

  /// Erases cluster `idx` (swap-with-last; cluster_of_ is re-pointed).
  void EraseCluster(size_t idx);

  const Workload* workload_;
  CostModel cm_;
  IncrementalConfig config_;
  /// The persistent modified-CCSpan hash: every contiguous sub-pattern
  /// (length >= 2) of every ACTIVE query -> sorted active query ids.
  std::unordered_map<Pattern, QueryList, PatternHash> index_;
  std::vector<Cluster> clusters_;
  /// Vertex pattern -> owning cluster index. Every alive vertex belongs
  /// to exactly one cluster (singletons included).
  std::unordered_map<Pattern, size_t, PatternHash> cluster_of_;
  SharingPlan plan_;
  double score_ = 0;
  IncrementalStats stats_;
};

/// The churn entry point the PlanManager drives: applies one enqueued
/// register/retire operation to the optimizer's sharing graph, patching
/// only the clusters the query touches (full re-optimization past the
/// fallback threshold). The workload's active mask must already reflect
/// the operation.
void UpdateSharingGraph(IncrementalSharingOptimizer& opt,
                        query::ChurnOp::Kind kind, QueryId id);

}  // namespace sharon::sharing

#endif  // SHARON_SHARING_INCREMENTAL_H_
