#include "src/sharing/ccspan.h"

#include <algorithm>
#include <unordered_map>

namespace sharon {

std::vector<Candidate> FindSharableCandidates(const Workload& workload) {
  // H: pattern -> queries containing it (Alg. 7 lines 1-8).
  std::unordered_map<Pattern, QueryList, PatternHash> h;
  for (const Query& q : workload.queries()) {
    // Retired queries keep their ids but leave the standing set: they
    // must not attract sharing (src/query/registration.h).
    if (!workload.active(q.id)) continue;
    const size_t l = q.pattern.length();
    for (size_t end = 1; end < l; ++end) {        // end index inclusive
      for (size_t start = 0; start < end; ++start) {
        Pattern p = q.pattern.Sub(start, end - start + 1);
        QueryList& qs = h[std::move(p)];
        // A pattern repeating inside one query is recorded once.
        if (qs.empty() || qs.back() != q.id) qs.push_back(q.id);
      }
    }
  }

  // S: sharable patterns only (Alg. 7 lines 9-11).
  std::vector<Candidate> out;
  out.reserve(h.size());
  for (auto& [p, qs] : h) {
    if (qs.size() > 1) out.push_back({p, qs});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sharon
