// The sharing benefit model (paper §3, Equations 1-8).
//
// All costs are per-second CPU work estimates built from per-type event
// rates:
//   Rate(P)            = sum of type rates in P                     (Eq. 1)
//   NonShared(p, qi)   = Rate(E1) * Rate(Pi)                        (Eq. 2)
//   NonShared(p, Qp)   = sum over qi                                (Eq. 3)
//   Comp(p, qi)        = Rate(E1)*Rate(prefix) + Rate(Es)*Rate(suffix)
//                                                                   (Eq. 4)
//   Comb(p, qi)        = Rate(E1) * Rate(Em) * Rate(Es)             (Eq. 5)
//   Shared(p, qi)      = Comp + Comb                                (Eq. 6)
//   Shared(p, Qp)      = Rate(Em)*Rate(p) + sum over qi             (Eq. 7)
//   BValue(p, Qp)      = NonShared - Shared                         (Eq. 8)
// where E1 is the first type of qi's pattern, Em the first type of p and
// Es the first type of the suffix. Empty prefixes/suffixes drop their
// terms (their rates act as the multiplicative identity in Eq. 5).
//
// §7.3: a type occurring k times in a pattern multiplies the per-event
// update work by k; the model accounts for that via the pattern's maximal
// type multiplicity.

#ifndef SHARON_SHARING_COST_MODEL_H_
#define SHARON_SHARING_COST_MODEL_H_

#include "src/sharing/candidate.h"
#include "src/streamgen/rates.h"

namespace sharon {

/// Computes sharing benefits from per-type stream rates.
class CostModel {
 public:
  explicit CostModel(TypeRates rates) : rates_(std::move(rates)) {}

  const TypeRates& rates() const { return rates_; }

  /// Eq. 2 (with the §7.3 multiplicity factor).
  double NonSharedQuery(const Query& q) const;

  /// Eq. 3.
  double NonShared(const Candidate& c, const Workload& w) const;

  /// Eq. 4. `p` must occur in q's pattern.
  double Comp(const Pattern& p, const Query& q) const;

  /// Eq. 5.
  double Comb(const Pattern& p, const Query& q) const;

  /// Eq. 6.
  double SharedQuery(const Pattern& p, const Query& q) const;

  /// Eq. 7.
  double Shared(const Candidate& c, const Workload& w) const;

  /// Eq. 8. Positive = beneficial (Def. 5).
  double BValue(const Candidate& c, const Workload& w) const;

 private:
  /// Maximal multiplicity of any type in `p` (1 under assumption 3).
  static double MultiplicityFactor(const Pattern& p);

  TypeRates rates_;
};

/// Score of a whole sharing plan under `cm`'s rates: the sum of its
/// candidates' benefit values (the quantity the §6 plan finder maximizes).
/// Because Def. 8 is a pure function of per-type rates, re-evaluating an
/// incumbent plan under FRESH rates is how drift is priced: the same plan
/// object scores differently as the stream's rates move, and the adaptive
/// planner (src/adaptive/) compares that against a freshly optimized
/// alternative before paying for a hot-swap.
double PlanScore(const SharingPlan& plan, const Workload& workload,
                 const CostModel& cm);

}  // namespace sharon

#endif  // SHARON_SHARING_COST_MODEL_H_
