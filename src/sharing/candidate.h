// Sharing candidates (Def. 3) and sharing plans (Def. 7).
//
// A sharing candidate (p, Qp) says: the aggregation of pattern p could be
// computed once and shared by the queries Qp. A sharing plan is a set of
// candidates; the planner guarantees validity (no two candidates in the
// plan overlap inside a common query).

#ifndef SHARON_SHARING_CANDIDATE_H_
#define SHARON_SHARING_CANDIDATE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/query/pattern.h"
#include "src/query/query.h"

namespace sharon {

/// Sorted list of query ids.
using QueryList = std::vector<QueryId>;

/// Sorted intersection of two query lists.
inline QueryList Intersect(const QueryList& a, const QueryList& b) {
  QueryList out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// A sharing candidate (p, Qp): pattern p shared by queries Qp (Def. 3).
struct Candidate {
  Pattern pattern;
  QueryList queries;  ///< sorted

  bool Contains(QueryId q) const {
    return std::binary_search(queries.begin(), queries.end(), q);
  }

  bool operator==(const Candidate&) const = default;

  /// Order by pattern then query set; plans keep candidates sorted (§6,
  /// "sorted alphabetically by their patterns within a plan").
  bool operator<(const Candidate& o) const {
    if (pattern == o.pattern) return queries < o.queries;
    return pattern < o.pattern;
  }

  std::string ToString(const TypeRegistry& reg) const;
};

/// A sharing plan: the set of candidates chosen for shared execution.
using SharingPlan = std::vector<Candidate>;

}  // namespace sharon

#endif  // SHARON_SHARING_CANDIDATE_H_
