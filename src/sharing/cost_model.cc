#include "src/sharing/cost_model.h"

#include <algorithm>

namespace sharon {

double CostModel::MultiplicityFactor(const Pattern& p) {
  size_t k = 1;
  for (EventTypeId t : p.types()) k = std::max(k, p.CountType(t));
  return static_cast<double>(k);
}

double CostModel::NonSharedQuery(const Query& q) const {
  return rates_.Of(q.pattern.front()) * rates_.OfPattern(q.pattern) *
         MultiplicityFactor(q.pattern);
}

double CostModel::NonShared(const Candidate& c, const Workload& w) const {
  double total = 0;
  for (QueryId qid : c.queries) total += NonSharedQuery(w.query(qid));
  return total;
}

double CostModel::Comp(const Pattern& p, const Query& q) const {
  auto pos = q.pattern.Find(p);
  if (!pos) return 0;
  const size_t m = *pos;
  const size_t after = m + p.length();
  double cost = 0;
  if (m > 0) {
    Pattern prefix = q.pattern.Sub(0, m);
    cost += rates_.Of(prefix.front()) * rates_.OfPattern(prefix);
  }
  if (after < q.pattern.length()) {
    Pattern suffix = q.pattern.Sub(after, q.pattern.length() - after);
    cost += rates_.Of(suffix.front()) * rates_.OfPattern(suffix);
  }
  return cost * MultiplicityFactor(q.pattern);
}

double CostModel::Comb(const Pattern& p, const Query& q) const {
  auto pos = q.pattern.Find(p);
  if (!pos) return 0;
  const size_t m = *pos;
  const size_t after = m + p.length();
  const bool has_prefix = m > 0;
  const bool has_suffix = after < q.pattern.length();
  if (!has_prefix && !has_suffix) return 0;  // p is the whole pattern
  double cost = rates_.Of(p.front());
  if (has_prefix) cost *= rates_.Of(q.pattern.front());
  if (has_suffix) cost *= rates_.Of(q.pattern.type(after));
  return cost;
}

double CostModel::SharedQuery(const Pattern& p, const Query& q) const {
  return Comp(p, q) + Comb(p, q);
}

double CostModel::Shared(const Candidate& c, const Workload& w) const {
  double total = rates_.Of(c.pattern.front()) * rates_.OfPattern(c.pattern) *
                 MultiplicityFactor(c.pattern);
  for (QueryId qid : c.queries) total += SharedQuery(c.pattern, w.query(qid));
  return total;
}

double CostModel::BValue(const Candidate& c, const Workload& w) const {
  return NonShared(c, w) - Shared(c, w);
}

double PlanScore(const SharingPlan& plan, const Workload& workload,
                 const CostModel& cm) {
  double score = 0;
  for (const Candidate& c : plan) score += cm.BValue(c, workload);
  return score;
}

}  // namespace sharon
