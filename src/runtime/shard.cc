#include "src/runtime/shard.h"

#include <algorithm>

namespace sharon::runtime {

Shard::Shard(size_t index, const Workload& workload,
             CompiledPlanHandle compiled, const RuntimeOptions& options)
    : index_(index),
      queue_(options.queue_capacity),
      engine_(std::make_unique<Engine>(workload, std::move(compiled))) {
  if (!engine_->ok()) error_ = engine_->error();
  if (options.disorder.enabled) engine_->SetDisorderPolicy(options.disorder);
}

Shard::Shard(size_t index, std::shared_ptr<const MultiEnginePlan> plan,
             const RuntimeOptions& options)
    : index_(index),
      queue_(options.queue_capacity),
      multi_(std::make_unique<MultiEngine>(std::move(plan))) {
  if (!multi_->ok()) error_ = multi_->error();
  if (multi_->ok() && options.disorder.enabled) {
    multi_->SetDisorderPolicy(options.disorder);
  }
}

Shard::~Shard() {
  SignalDone();
  Join();
}

void Shard::Start() {
  if (started_ || !ok()) return;
  started_ = true;
  thread_ = std::thread(&Shard::WorkerLoop, this);
}

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::Process(const EventBatch& batch) {
  StopWatch watch;
  uint64_t data_events = 0;
  for (const Event& e : batch) {
    if (IsWatermark(e)) {
      // Publish before applying so a reader never observes a finalized
      // window whose shard watermark it cannot see. Punctuations arrive
      // monotone per shard (one broadcaster); the executor double-checks.
      if (e.time > watermark_.load(std::memory_order_relaxed)) {
        watermark_.store(e.time, std::memory_order_release);
      }
    } else {
      ++data_events;
    }
    if (engine_) {
      engine_->OnEvent(e);
    } else {
      multi_->OnEvent(e);
    }
  }
  stats_.busy_seconds += watch.ElapsedSeconds();
  stats_.events += data_events;
  ++stats_.batches;
}

void Shard::WorkerLoop() {
  EventBatch batch;
  for (;;) {
    if (queue_.TryPop(batch)) {
      Process(batch);
      batch.clear();
      continue;
    }
    if (done_.load(std::memory_order_acquire)) {
      // done_ was set after the final push; drain whatever is left.
      while (queue_.TryPop(batch)) {
        Process(batch);
        batch.clear();
      }
      return;
    }
    ++stats_.idle_spins;
    std::this_thread::yield();
  }
}

AggState Shard::Get(QueryId query, WindowId window, AttrValue group) const {
  if (engine_) return engine_->results().Get(query, window, group);
  return multi_->Get(query, window, group);
}

void Shard::ForEachCell(
    const std::function<void(const ResultKey&, const AggState&)>& fn) const {
  if (engine_) {
    for (const auto& [key, state] : engine_->results().cells()) {
      fn(key, state);
    }
    return;
  }
  const MultiEnginePlan& plan = *multi_->plan();
  for (size_t s = 0; s < multi_->engines().size(); ++s) {
    const std::vector<QueryId>& originals = plan.segments[s].original_ids;
    for (const auto& [key, state] : multi_->engines()[s]->results().cells()) {
      ResultKey remapped = key;
      remapped.query = originals.at(key.query);
      fn(remapped, state);
    }
  }
}

size_t Shard::NumCells() const {
  if (engine_) return engine_->results().size();
  size_t n = 0;
  for (const auto& e : multi_->engines()) n += e->results().size();
  return n;
}

size_t Shard::EstimatedBytes() const {
  return engine_ ? engine_->EstimatedBytes() : multi_->EstimatedBytes();
}

size_t Shard::PeakBytes() const {
  // Engine's meter is updated at sweep time; fold in the current figure
  // the way Engine::Run's final Set() would.
  auto peak_of = [](const Engine& e) {
    return std::max(e.peak_bytes(), e.EstimatedBytes());
  };
  if (engine_) return peak_of(*engine_);
  size_t n = 0;
  for (const auto& e : multi_->engines()) n += peak_of(*e);
  return n;
}

size_t Shard::num_shared_counters() const {
  return engine_ ? engine_->num_shared_counters()
                 : multi_->num_shared_counters();
}

WatermarkStats Shard::watermark_stats() const {
  return engine_ ? engine_->watermark_stats() : multi_->watermark_stats();
}

bool Shard::Finalized(QueryId query, WindowId window) const {
  return engine_ ? engine_->Finalized(window)
                 : multi_->Finalized(query, window);
}

LiveState Shard::LiveStateSnapshot() const {
  return engine_ ? engine_->LiveStateSnapshot() : multi_->LiveStateSnapshot();
}

}  // namespace sharon::runtime
