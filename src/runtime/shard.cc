#include "src/runtime/shard.h"

#include <algorithm>
#include <limits>

#include "src/checkpoint/checkpoint.h"

namespace sharon::runtime {

namespace {

std::vector<std::unique_ptr<BatchChannel>> MakeChannels(
    const RuntimeOptions& options) {
  const size_t n = options.ingest_partitions > 0 ? options.ingest_partitions : 1;
  std::vector<std::unique_ptr<BatchChannel>> channels;
  channels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    channels.push_back(std::make_unique<BatchChannel>(options.queue_capacity));
  }
  return channels;
}

}  // namespace

Shard::Shard(size_t index, const Workload& workload,
             CompiledPlanHandle compiled, const RuntimeOptions& options)
    : index_(index),
      channels_(MakeChannels(options)),
      channel_frontier_(channels_.size(), kNoWatermark),
      marker_seen_(channels_.size(), 0),
      held_(channels_.size()),
      engine_(std::make_unique<Engine>(workload, std::move(compiled))),
      engine_mode_(true),
      disorder_(options.disorder) {
  if (!engine_->ok()) error_ = engine_->error();
  if (options.disorder.enabled) engine_->SetDisorderPolicy(options.disorder);
}

Shard::Shard(size_t index, std::shared_ptr<const MultiEnginePlan> plan,
             const RuntimeOptions& options)
    : index_(index),
      channels_(MakeChannels(options)),
      channel_frontier_(channels_.size(), kNoWatermark),
      marker_seen_(channels_.size(), 0),
      held_(channels_.size()),
      multi_(std::make_unique<MultiEngine>(std::move(plan))),
      engine_mode_(false),
      disorder_(options.disorder) {
  if (!multi_->ok()) error_ = multi_->error();
  if (multi_->ok() && options.disorder.enabled) {
    multi_->SetDisorderPolicy(options.disorder);
  }
}

Shard::~Shard() {
  SignalDone();
  Join();
}

void Shard::Start() {
  if (started_ || !ok()) return;
  started_ = true;
  thread_ = std::thread(&Shard::WorkerLoop, this);
}

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::MergeWatermark(size_t p, Timestamp t) {
  const bool channel_regression = t <= channel_frontier_[p];
  if (!channel_regression) channel_frontier_[p] = t;
  // The executor may only advance to ticks EVERY producer has vouched
  // for: the merged watermark is the minimum over producer frontiers
  // (kNoWatermark until all producers punctuated at least once).
  Timestamp merged = channel_frontier_[0];
  for (size_t i = 1; i < channel_frontier_.size(); ++i) {
    merged = std::min(merged, channel_frontier_[i]);
  }
  if (merged != kNoWatermark && merged > merged_watermark_) {
    merged_watermark_ = merged;
    // Publish before applying so a reader never observes a finalized
    // window whose shard watermark it cannot see.
    watermark_.store(merged, std::memory_order_release);
    if (engine_) {
      ApplyWatermark(merged);
    } else {
      multi_->OnEvent(WatermarkEvent(merged));
    }
    return;
  }
  if (channel_regression && merged_watermark_ != kNoWatermark &&
      t <= merged_watermark_) {
    // A producer re-announced an old frontier. Keep the executor's loud
    // regression accounting (WatermarkStats::regressions): deliver the
    // stale punctuation — but ONLY when it does not exceed the merged
    // minimum already applied, so the executor sees it as the regression
    // it is. A stale-per-channel value ABOVE the merged minimum (other
    // producers lag behind this one) must never reach the executor: it
    // would advance past ticks those producers have not vouched for.
    // Punctuations that advance their own frontier but not the merged
    // minimum are likewise folded silently.
    if (engine_) {
      ApplyWatermark(t);
    } else {
      multi_->OnEvent(WatermarkEvent(t));
    }
  }
}

void Shard::Process(const EventBatch& batch, size_t channel_idx) {
  StopWatch watch;
  batch_data_events_ = 0;
  for (const Event& e : batch) HandleEvent(e, channel_idx);
  stats_.busy_seconds += watch.ElapsedSeconds();
  stats_.events += batch_data_events_;
  ++stats_.batches;
  if (obs_cells_) {
    if (obs_cells_->events) obs_cells_->events->Add(batch_data_events_);
    if (obs_cells_->batches) obs_cells_->batches->Inc();
    if (obs_cells_->batch_occupancy) {
      obs_cells_->batch_occupancy->Record(batch_data_events_);
    }
  }
}

void Shard::HandleEvent(const Event& e, size_t p) {
  if (IsSwapMarker(e) || IsCheckpointMarker(e)) {
    OnControlMarker(e, p);
    return;
  }
  if (markers_seen_ > 0 && marker_seen_[p]) {
    // This channel already delivered its marker for the pending control
    // op: everything behind it is part of the POST-cut stream and must
    // wait until the remaining channels align (a marker can sit mid-batch
    // when the producer kept appending before the flush).
    held_[p].push_back(e);
    return;
  }
  if (IsWatermark(e)) {
    MergeWatermark(p, e.time);
    return;
  }
  ++batch_data_events_;
  if (!engine_) {
    multi_->OnEvent(e);
    return;
  }
  if (!swap_active_) {
    engine_->OnEvent(e);
    return;
  }
  // Dual run: the old engine owns windows closing <= boundary (events
  // below the boundary), the new engine owns windows closing above it
  // (events at or past the overlap start). Events in the overlap feed
  // both — each window still sees its events exactly once per engine.
  const bool to_old = e.time < swap_.boundary;
  const bool to_new = e.time >= tee_from_;
  if (to_old) engine_->OnEvent(e);
  if (to_new) next_engine_->OnEvent(e);
  if (to_old && to_new) ++swap_record_.teed_events;
}

void Shard::OnControlMarker(const Event& e, size_t p) {
  if (marker_seen_[p]) {
    // A marker for a LATER control op behind the pending one (defensive:
    // the runtime serializes control ops, so this is unreachable through
    // the public API). Park it with the channel's held events; the replay
    // below re-delivers it and starts a fresh alignment round.
    held_[p].push_back(e);
    return;
  }
  marker_seen_[p] = 1;
  if (++markers_seen_ < channels_.size()) return;
  // Every producer channel delivered its marker: the shard is quiesced at
  // a cut ordered after everything every producer routed before the
  // request. Reset the alignment state BEFORE executing so the replayed
  // events (and any held next-op marker) see a fresh round.
  std::fill(marker_seen_.begin(), marker_seen_.end(), 0);
  markers_seen_ = 0;
  if (IsSwapMarker(e)) {
    BeginSwap();
  } else {
    WriteCheckpoint();
  }
  for (size_t q = 0; q < held_.size(); ++q) {
    if (held_[q].empty()) continue;
    EventBatch replay = std::move(held_[q]);
    held_[q] = EventBatch();
    for (const Event& held_event : replay) HandleEvent(held_event, q);
  }
}

void Shard::BeginSwap() {
  SwapCommand cmd;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    if (pending_swaps_.empty()) return;  // spurious marker; nothing staged
    cmd = std::move(pending_swaps_.front());
    pending_swaps_.pop_front();
  }
  // Guarded by the producer (one swap in flight, Engine shards only,
  // disorder enabled); bail defensively if those invariants are violated.
  if (!engine_ || !disorder_.enabled || swap_active_ || !cmd.plan) {
    swap_in_flight_.store(false, std::memory_order_release);
    return;
  }
  swap_ = std::move(cmd);
  const WindowSpec& window = engine_->compiled().window;
  tee_from_ = window.Valid()
                  ? swap_.boundary + window.slide - window.length
                  : swap_.boundary;
  next_engine_ = std::make_unique<Engine>(engine_->workload(), swap_.plan);
  next_engine_->SetDisorderPolicy(disorder_);
  next_engine_->SetResultsFloor(swap_.boundary);
  next_engine_->SetObservability(obs_engine_);
  swap_record_ = ShardSwapRecord{};
  swap_record_.id = swap_.id;
  swap_record_.boundary = swap_.boundary;
  swap_watch_.Reset();
  swap_active_ = true;
  if (obs_cells_ && obs_cells_->swaps_started) obs_cells_->swaps_started->Inc();
  if (obs_ring_) {
    obs_ring_->Emit(obs::TraceKind::kSwapDualRunStart, swap_.boundary,
                    static_cast<int64_t>(swap_.id));
  }
}

void Shard::ApplyWatermark(Timestamp t) {
  if (!swap_active_) {
    engine_->AdvanceWatermark(t);
    return;
  }
  // The old engine's watermark is capped so its safe point never passes
  // the boundary: it finalizes exactly the windows it owns, and the
  // windows it does not own stay staged (discarded at retirement).
  const Timestamp cap = SwapWatermarkCap();
  engine_->AdvanceWatermark(std::min(t, cap));
  next_engine_->AdvanceWatermark(t);
  swap_record_.peak_dual_bytes =
      std::max(swap_record_.peak_dual_bytes,
               engine_->EstimatedBytes() + next_engine_->EstimatedBytes());
  // Once the uncapped watermark implies safe point >= boundary, every
  // window the old engine owns is finalized — hand off.
  if (t >= cap) RetireOldEngine();
}

void Shard::RetireOldEngine() {
  swap_record_.dual_run_seconds = swap_watch_.ElapsedSeconds();
  retired_peak_bytes_ = std::max(
      retired_peak_bytes_,
      std::max(engine_->peak_bytes(), engine_->EstimatedBytes()));
  // Fold the retiring engine's counters (its watermark/safe point are
  // frozen at the cap and would poison a MIN-rollup; counters are sums).
  retired_wm_.MergeCountersFrom(engine_->watermark_stats());
  // Drain the finalized results (windows closing <= boundary, complete
  // and immutable) into the shard archive; staged cells of windows the
  // new engine owns die with the old engine.
  engine_->mutable_results().ExtractWindowsBefore(
      std::numeric_limits<WindowId>::max(), archived_);
  engine_ = std::move(next_engine_);
  swap_active_ = false;
  swap_record_.post_swap_bytes =
      engine_->EstimatedBytes() + archived_.EstimatedBytes();
  swap_records_.push_back(swap_record_);
  if (obs_cells_ && obs_cells_->swaps_retired) obs_cells_->swaps_retired->Inc();
  if (obs_ring_) {
    obs_ring_->Emit(obs::TraceKind::kSwapRetired, swap_record_.boundary,
                    static_cast<int64_t>(swap_record_.id),
                    static_cast<int64_t>(swap_record_.teed_events));
  }
  swap_in_flight_.store(false, std::memory_order_release);
}

bool Shard::PushSwapCommand(const SwapCommand& cmd) {
  if (!engine_mode_ || !disorder_.enabled || !cmd.plan) return false;
  if (swap_in_flight_.load(std::memory_order_acquire)) return false;
  // Mutually exclusive with checkpoints: a swap picked up between a
  // checkpoint command and its marker would make the cut ambiguous (two
  // engines, neither owning the full window set).
  if (checkpoint_in_flight_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    pending_swaps_.push_back(cmd);
  }
  swap_in_flight_.store(true, std::memory_order_release);
  return true;
}

void Shard::CancelSwapCommand() {
  std::lock_guard<std::mutex> lock(swap_mu_);
  if (pending_swaps_.empty()) return;  // worker already consumed it
  pending_swaps_.pop_back();
  swap_in_flight_.store(false, std::memory_order_release);
}

bool Shard::PushCheckpointCommand(const CheckpointCommand& cmd) {
  if (checkpoint_in_flight_.load(std::memory_order_acquire)) return false;
  // Mutually exclusive with swaps (see PushSwapCommand): a cut during the
  // dual-run would have to serialize BOTH engines plus the tee position.
  if (swap_in_flight_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    pending_checkpoints_.push_back(cmd);
  }
  checkpoint_in_flight_.store(true, std::memory_order_release);
  return true;
}

void Shard::CancelCheckpointCommand() {
  std::lock_guard<std::mutex> lock(swap_mu_);
  if (pending_checkpoints_.empty()) return;  // worker already consumed it
  pending_checkpoints_.pop_back();
  checkpoint_in_flight_.store(false, std::memory_order_release);
}

Shard::CheckpointOutcome Shard::checkpoint_outcome() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return checkpoint_outcome_;
}

void Shard::WriteCheckpoint() {
  CheckpointCommand cmd;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    if (pending_checkpoints_.empty()) return;  // spurious marker
    cmd = std::move(pending_checkpoints_.front());
    pending_checkpoints_.pop_front();
  }
  CheckpointOutcome outcome;
  outcome.watermark = merged_watermark_;
  if (obs_cells_ && obs_cells_->checkpoints_quiesced) {
    obs_cells_->checkpoints_quiesced->Inc();
  }
  if (obs_ring_) {
    obs_ring_->Emit(obs::TraceKind::kCheckpointQuiesce, merged_watermark_,
                    static_cast<int64_t>(cmd.id));
  }
  if (swap_active_) {
    // Guarded producer-side (swaps and checkpoints are mutually
    // exclusive); record the violation instead of writing an ambiguous
    // cut.
    outcome.error = "checkpoint marker arrived during an active plan swap";
  } else {
    checkpoint::ShardCheckpointInput in;
    in.checkpoint_id = cmd.id;
    in.boundary = cmd.boundary;
    in.shard_index = index_;
    in.num_shards = cmd.num_shards;
    in.merged_watermark = merged_watermark_;
    in.engine = engine_.get();
    in.multi = multi_.get();
    in.archive = &archived_;
    in.retired = &retired_wm_;
    const std::vector<uint8_t> bytes = checkpoint::EncodeShardCheckpoint(in);
    outcome.bytes = bytes.size();
    outcome.error = checkpoint::WriteFileBytes(cmd.path, bytes);
    if (outcome.error.empty()) {
      if (obs_cells_ && obs_cells_->checkpoint_bytes) {
        obs_cells_->checkpoint_bytes->Add(outcome.bytes);
      }
      if (obs_ring_) {
        obs_ring_->Emit(obs::TraceKind::kCheckpointShardDone, cmd.boundary,
                        static_cast<int64_t>(cmd.id),
                        static_cast<int64_t>(outcome.bytes));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    checkpoint_outcome_ = std::move(outcome);
  }
  checkpoint_in_flight_.store(false, std::memory_order_release);
}

void Shard::RestoreFrontier(Timestamp merged) {
  if (merged == kNoWatermark) return;
  for (Timestamp& frontier : channel_frontier_) frontier = merged;
  merged_watermark_ = merged;
  watermark_.store(merged, std::memory_order_release);
}

void Shard::Recycle(size_t p, EventBatch&& batch) {
  batch.clear();  // keeps capacity: the producer reuses the buffer as-is
  if (!channels_[p]->free.TryPush(std::move(batch))) {
    ++stats_.recycle_drops;  // free ring is sized to make this unreachable
  }
}

void Shard::WorkerLoop() {
  EventBatch batch;
  const size_t nch = channels_.size();
  for (;;) {
    bool popped = false;
    for (size_t p = 0; p < nch; ++p) {
      if (channels_[p]->full.TryPop(batch)) {
        Process(batch, p);
        Recycle(p, std::move(batch));
        batch = EventBatch();
        popped = true;
      }
    }
    if (popped) continue;
    if (done_.load(std::memory_order_acquire)) {
      // done_ was set after the final pushes; drain whatever is left on
      // every channel.
      for (;;) {
        bool drained_any = false;
        for (size_t p = 0; p < nch; ++p) {
          while (channels_[p]->full.TryPop(batch)) {
            Process(batch, p);
            Recycle(p, std::move(batch));
            batch = EventBatch();
            drained_any = true;
          }
        }
        if (!drained_any) return;
      }
    }
    ++stats_.idle_spins;
    std::this_thread::yield();
  }
}

AggState Shard::Get(QueryId query, WindowId window, AttrValue group) const {
  if (engine_) {
    // A cell lives in exactly one store: retired engines archived their
    // windows (closing <= their boundary); the current engine owns the
    // rest. Probe the archive by key so a legitimately zero-valued
    // archived cell is not shadowed by the current engine's Zero().
    if (const AggState* cell =
            archived_.FindCell(query, window, group)) {
      return *cell;
    }
    AggState state = engine_->results().Get(query, window, group);
    // A swap stalled at shutdown leaves the incoming engine holding the
    // finalized cells of its windows — the same cells ForEachCell
    // enumerates, so Get must see them too.
    if (state.IsZero() && swap_active_ && next_engine_) {
      state = next_engine_->results().Get(query, window, group);
    }
    return state;
  }
  return multi_->Get(query, window, group);
}

void Shard::ForEachCell(
    const std::function<void(const ResultKey&, const AggState&)>& fn) const {
  if (engine_) {
    archived_.ForEachCell(fn);
    engine_->results().ForEachCell(fn);
    // A swap that never completed (stalled watermark at shutdown) leaves
    // the incoming engine holding finalized cells of its own windows.
    if (swap_active_ && next_engine_) {
      next_engine_->results().ForEachCell(fn);
    }
    return;
  }
  const MultiEnginePlan& plan = *multi_->plan();
  for (size_t s = 0; s < multi_->engines().size(); ++s) {
    const std::vector<QueryId>& originals = plan.segments[s].original_ids;
    multi_->engines()[s]->results().ForEachCell(
        [&](const ResultKey& key, const AggState& state) {
          ResultKey remapped = key;
          remapped.query = originals.at(key.query);
          fn(remapped, state);
        });
  }
}

size_t Shard::NumCells() const {
  if (engine_) {
    size_t n = archived_.size() + engine_->results().size();
    if (swap_active_ && next_engine_) n += next_engine_->results().size();
    return n;
  }
  size_t n = 0;
  for (const auto& e : multi_->engines()) n += e->results().size();
  return n;
}

size_t Shard::EstimatedBytes() const {
  if (engine_) {
    size_t n = engine_->EstimatedBytes() + archived_.EstimatedBytes();
    if (swap_active_ && next_engine_) n += next_engine_->EstimatedBytes();
    return n;
  }
  return multi_->EstimatedBytes();
}

size_t Shard::PeakBytes() const {
  // Engine's meter is updated at sweep time; fold in the current figure
  // the way Engine::Run's final Set() would.
  auto peak_of = [](const Engine& e) {
    return std::max(e.peak_bytes(), e.EstimatedBytes());
  };
  if (engine_) {
    size_t peak = peak_of(*engine_) + archived_.EstimatedBytes();
    peak = std::max(peak, retired_peak_bytes_);
    for (const ShardSwapRecord& r : swap_records_) {
      peak = std::max(peak, r.peak_dual_bytes);
    }
    return peak;
  }
  size_t n = 0;
  for (const auto& e : multi_->engines()) n += peak_of(*e);
  return n;
}

size_t Shard::num_shared_counters() const {
  return engine_ ? engine_->num_shared_counters()
                 : multi_->num_shared_counters();
}

WatermarkStats Shard::watermark_stats() const {
  if (!engine_) return multi_->watermark_stats();
  // Watermark/safe point come from the CURRENT engine (retired engines
  // were deliberately capped at their swap boundary); counters sum over
  // every engine this shard ever ran.
  WatermarkStats out = engine_->watermark_stats();
  out.MergeCountersFrom(retired_wm_);
  return out;
}

bool Shard::Finalized(QueryId query, WindowId window) const {
  return engine_ ? engine_->Finalized(window)
                 : multi_->Finalized(query, window);
}

LiveState Shard::LiveStateSnapshot() const {
  if (!engine_) return multi_->LiveStateSnapshot();
  LiveState live = engine_->LiveStateSnapshot();
  if (swap_active_ && next_engine_) {
    live.MergeFrom(next_engine_->LiveStateSnapshot());
  }
  return live;
}

}  // namespace sharon::runtime
