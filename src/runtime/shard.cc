#include "src/runtime/shard.h"

#include <algorithm>
#include <limits>

namespace sharon::runtime {

Shard::Shard(size_t index, const Workload& workload,
             CompiledPlanHandle compiled, const RuntimeOptions& options)
    : index_(index),
      queue_(options.queue_capacity),
      engine_(std::make_unique<Engine>(workload, std::move(compiled))),
      engine_mode_(true),
      disorder_(options.disorder) {
  if (!engine_->ok()) error_ = engine_->error();
  if (options.disorder.enabled) engine_->SetDisorderPolicy(options.disorder);
}

Shard::Shard(size_t index, std::shared_ptr<const MultiEnginePlan> plan,
             const RuntimeOptions& options)
    : index_(index),
      queue_(options.queue_capacity),
      multi_(std::make_unique<MultiEngine>(std::move(plan))),
      engine_mode_(false),
      disorder_(options.disorder) {
  if (!multi_->ok()) error_ = multi_->error();
  if (multi_->ok() && options.disorder.enabled) {
    multi_->SetDisorderPolicy(options.disorder);
  }
}

Shard::~Shard() {
  SignalDone();
  Join();
}

void Shard::Start() {
  if (started_ || !ok()) return;
  started_ = true;
  thread_ = std::thread(&Shard::WorkerLoop, this);
}

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
}

void Shard::Process(const EventBatch& batch) {
  StopWatch watch;
  uint64_t data_events = 0;
  for (const Event& e : batch) {
    if (IsSwapMarker(e)) {
      BeginSwap();
      continue;
    }
    if (IsWatermark(e)) {
      // Publish before applying so a reader never observes a finalized
      // window whose shard watermark it cannot see. Punctuations arrive
      // monotone per shard (one broadcaster); the executor double-checks.
      if (e.time > watermark_.load(std::memory_order_relaxed)) {
        watermark_.store(e.time, std::memory_order_release);
      }
      if (engine_) {
        ApplyWatermark(e.time);
      } else {
        multi_->OnEvent(e);
      }
      continue;
    }
    ++data_events;
    if (!engine_) {
      multi_->OnEvent(e);
      continue;
    }
    if (!swap_active_) {
      engine_->OnEvent(e);
      continue;
    }
    // Dual run: the old engine owns windows closing <= boundary (events
    // below the boundary), the new engine owns windows closing above it
    // (events at or past the overlap start). Events in the overlap feed
    // both — each window still sees its events exactly once per engine.
    const bool to_old = e.time < swap_.boundary;
    const bool to_new = e.time >= tee_from_;
    if (to_old) engine_->OnEvent(e);
    if (to_new) next_engine_->OnEvent(e);
    if (to_old && to_new) ++swap_record_.teed_events;
  }
  stats_.busy_seconds += watch.ElapsedSeconds();
  stats_.events += data_events;
  ++stats_.batches;
}

void Shard::BeginSwap() {
  SwapCommand cmd;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    if (pending_swaps_.empty()) return;  // spurious marker; nothing staged
    cmd = std::move(pending_swaps_.front());
    pending_swaps_.pop_front();
  }
  // Guarded by the producer (one swap in flight, Engine shards only,
  // disorder enabled); bail defensively if those invariants are violated.
  if (!engine_ || !disorder_.enabled || swap_active_ || !cmd.plan) {
    swap_in_flight_.store(false, std::memory_order_release);
    return;
  }
  swap_ = std::move(cmd);
  const WindowSpec& window = engine_->compiled().window;
  tee_from_ = window.Valid()
                  ? swap_.boundary + window.slide - window.length
                  : swap_.boundary;
  next_engine_ = std::make_unique<Engine>(engine_->workload(), swap_.plan);
  next_engine_->SetDisorderPolicy(disorder_);
  next_engine_->SetResultsFloor(swap_.boundary);
  swap_record_ = ShardSwapRecord{};
  swap_record_.id = swap_.id;
  swap_record_.boundary = swap_.boundary;
  swap_watch_.Reset();
  swap_active_ = true;
}

void Shard::ApplyWatermark(Timestamp t) {
  if (!swap_active_) {
    engine_->AdvanceWatermark(t);
    return;
  }
  // The old engine's watermark is capped so its safe point never passes
  // the boundary: it finalizes exactly the windows it owns, and the
  // windows it does not own stay staged (discarded at retirement).
  const Timestamp cap = SwapWatermarkCap();
  engine_->AdvanceWatermark(std::min(t, cap));
  next_engine_->AdvanceWatermark(t);
  swap_record_.peak_dual_bytes =
      std::max(swap_record_.peak_dual_bytes,
               engine_->EstimatedBytes() + next_engine_->EstimatedBytes());
  // Once the uncapped watermark implies safe point >= boundary, every
  // window the old engine owns is finalized — hand off.
  if (t >= cap) RetireOldEngine();
}

void Shard::RetireOldEngine() {
  swap_record_.dual_run_seconds = swap_watch_.ElapsedSeconds();
  retired_peak_bytes_ = std::max(
      retired_peak_bytes_,
      std::max(engine_->peak_bytes(), engine_->EstimatedBytes()));
  // Fold the retiring engine's counters (its watermark/safe point are
  // frozen at the cap and would poison a MIN-rollup; counters are sums).
  retired_wm_.MergeCountersFrom(engine_->watermark_stats());
  // Drain the finalized results (windows closing <= boundary, complete
  // and immutable) into the shard archive; staged cells of windows the
  // new engine owns die with the old engine.
  engine_->mutable_results().ExtractWindowsBefore(
      std::numeric_limits<WindowId>::max(), archived_);
  engine_ = std::move(next_engine_);
  swap_active_ = false;
  swap_record_.post_swap_bytes =
      engine_->EstimatedBytes() + archived_.EstimatedBytes();
  swap_records_.push_back(swap_record_);
  swap_in_flight_.store(false, std::memory_order_release);
}

bool Shard::PushSwapCommand(const SwapCommand& cmd) {
  if (!engine_mode_ || !disorder_.enabled || !cmd.plan) return false;
  if (swap_in_flight_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    pending_swaps_.push_back(cmd);
  }
  swap_in_flight_.store(true, std::memory_order_release);
  return true;
}

void Shard::CancelSwapCommand() {
  std::lock_guard<std::mutex> lock(swap_mu_);
  if (pending_swaps_.empty()) return;  // worker already consumed it
  pending_swaps_.pop_back();
  swap_in_flight_.store(false, std::memory_order_release);
}

void Shard::WorkerLoop() {
  EventBatch batch;
  for (;;) {
    if (queue_.TryPop(batch)) {
      Process(batch);
      batch.clear();
      continue;
    }
    if (done_.load(std::memory_order_acquire)) {
      // done_ was set after the final push; drain whatever is left.
      while (queue_.TryPop(batch)) {
        Process(batch);
        batch.clear();
      }
      return;
    }
    ++stats_.idle_spins;
    std::this_thread::yield();
  }
}

AggState Shard::Get(QueryId query, WindowId window, AttrValue group) const {
  if (engine_) {
    // A cell lives in exactly one store: retired engines archived their
    // windows (closing <= their boundary); the current engine owns the
    // rest. Probe the archive by key so a legitimately zero-valued
    // archived cell is not shadowed by the current engine's Zero().
    auto it = archived_.cells().find(ResultKey{query, window, group});
    if (it != archived_.cells().end()) return it->second;
    AggState state = engine_->results().Get(query, window, group);
    // A swap stalled at shutdown leaves the incoming engine holding the
    // finalized cells of its windows — the same cells ForEachCell
    // enumerates, so Get must see them too.
    if (state.IsZero() && swap_active_ && next_engine_) {
      state = next_engine_->results().Get(query, window, group);
    }
    return state;
  }
  return multi_->Get(query, window, group);
}

void Shard::ForEachCell(
    const std::function<void(const ResultKey&, const AggState&)>& fn) const {
  if (engine_) {
    for (const auto& [key, state] : archived_.cells()) fn(key, state);
    for (const auto& [key, state] : engine_->results().cells()) {
      fn(key, state);
    }
    // A swap that never completed (stalled watermark at shutdown) leaves
    // the incoming engine holding finalized cells of its own windows.
    if (swap_active_ && next_engine_) {
      for (const auto& [key, state] : next_engine_->results().cells()) {
        fn(key, state);
      }
    }
    return;
  }
  const MultiEnginePlan& plan = *multi_->plan();
  for (size_t s = 0; s < multi_->engines().size(); ++s) {
    const std::vector<QueryId>& originals = plan.segments[s].original_ids;
    for (const auto& [key, state] : multi_->engines()[s]->results().cells()) {
      ResultKey remapped = key;
      remapped.query = originals.at(key.query);
      fn(remapped, state);
    }
  }
}

size_t Shard::NumCells() const {
  if (engine_) {
    size_t n = archived_.size() + engine_->results().size();
    if (swap_active_ && next_engine_) n += next_engine_->results().size();
    return n;
  }
  size_t n = 0;
  for (const auto& e : multi_->engines()) n += e->results().size();
  return n;
}

size_t Shard::EstimatedBytes() const {
  if (engine_) {
    size_t n = engine_->EstimatedBytes() + archived_.EstimatedBytes();
    if (swap_active_ && next_engine_) n += next_engine_->EstimatedBytes();
    return n;
  }
  return multi_->EstimatedBytes();
}

size_t Shard::PeakBytes() const {
  // Engine's meter is updated at sweep time; fold in the current figure
  // the way Engine::Run's final Set() would.
  auto peak_of = [](const Engine& e) {
    return std::max(e.peak_bytes(), e.EstimatedBytes());
  };
  if (engine_) {
    size_t peak = peak_of(*engine_) + archived_.EstimatedBytes();
    peak = std::max(peak, retired_peak_bytes_);
    for (const ShardSwapRecord& r : swap_records_) {
      peak = std::max(peak, r.peak_dual_bytes);
    }
    return peak;
  }
  size_t n = 0;
  for (const auto& e : multi_->engines()) n += peak_of(*e);
  return n;
}

size_t Shard::num_shared_counters() const {
  return engine_ ? engine_->num_shared_counters()
                 : multi_->num_shared_counters();
}

WatermarkStats Shard::watermark_stats() const {
  if (!engine_) return multi_->watermark_stats();
  // Watermark/safe point come from the CURRENT engine (retired engines
  // were deliberately capped at their swap boundary); counters sum over
  // every engine this shard ever ran.
  WatermarkStats out = engine_->watermark_stats();
  out.MergeCountersFrom(retired_wm_);
  return out;
}

bool Shard::Finalized(QueryId query, WindowId window) const {
  return engine_ ? engine_->Finalized(window)
                 : multi_->Finalized(query, window);
}

LiveState Shard::LiveStateSnapshot() const {
  if (!engine_) return multi_->LiveStateSnapshot();
  LiveState live = engine_->LiveStateSnapshot();
  if (swap_active_ && next_engine_) {
    live.MergeFrom(next_engine_->LiveStateSnapshot());
  }
  return live;
}

}  // namespace sharon::runtime
