// One shard of the sharded runtime: a worker thread that owns a private
// executor (Engine for uniform workloads, MultiEngine for non-uniform
// ones) and drains event batches from bounded SPSC channels — one per
// ingest partition, so any number of producer threads feed the shard
// without sharing a queue.
//
// Each channel is a PAIR of rings: `full` carries filled batches from
// the producer, `free` carries the emptied buffers back for reuse, so a
// warmed-up channel moves events with zero steady-state allocations
// (DESIGN.md "Hot-path memory layout").
//
// With several producers the shard is where their watermarks merge: the
// worker tracks one frontier per channel and advances its executor to
// the MINIMUM across producer frontiers — only ticks every producer has
// vouched for are treated as complete.
//
// Control markers (swap/checkpoint, src/runtime/plan_swap.h) follow the
// same per-channel discipline: the runtime broadcasts one marker per
// channel, and the worker quiesces at the cut only once the marker of
// EVERY channel arrived. After a channel delivers its marker, events
// behind it are held in a worker-owned buffer; when the last channel
// aligns, the control operation executes at a position ordered after
// everything every producer routed before the request, and the held
// events replay in order. With one channel the first marker completes
// the alignment immediately — identical to the single-producer path.
//
// The shard never shares mutable state with other shards — the executor,
// its group state and its ResultCollector are all private — so no locks
// are taken on the event path. Results are read only after Join().

#ifndef SHARON_RUNTIME_SHARD_H_
#define SHARON_RUNTIME_SHARD_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/engine.h"
#include "src/exec/multi_engine.h"
#include "src/runtime/plan_swap.h"
#include "src/runtime/runtime_stats.h"
#include "src/runtime/spsc_queue.h"

namespace sharon::runtime {

/// A batch of events owned by the queue while in flight.
using EventBatch = std::vector<Event>;

/// One checkpoint, as handed to a shard (side-channel, like SwapCommand;
/// the in-band checkpoint marker only says "write the next staged
/// checkpoint"). The worker serializes its executor state at the marker
/// position and writes `path` itself — shard files are written in
/// parallel, the coordinator only writes the manifest afterwards.
struct CheckpointCommand {
  uint64_t id = 0;         ///< checkpoint sequence number (runtime-wide)
  Timestamp boundary = 0;  ///< watermark-aligned boundary recorded for the cut
  size_t num_shards = 0;   ///< topology recorded into the shard header
  std::string path;        ///< target file for THIS shard's frames
};

/// One (producer, shard) link: filled batches travel producer -> worker
/// through `full`; emptied buffers travel worker -> producer through
/// `free` for reuse. Exactly one producer thread touches full.TryPush /
/// free.TryPop; the worker touches the opposite ends.
struct BatchChannel {
  explicit BatchChannel(size_t capacity)
      // free holds every buffer the channel can have in circulation:
      // everything `full` can hold + 1 pending at the producer + 1 in
      // the worker, so a recycle push never drops (recycle_drops counts
      // the impossible case). Sized from full.capacity(), the ROUNDED-UP
      // power of two, not the requested capacity.
      : full(capacity), free(full.capacity() + 2) {}

  SpscQueue<EventBatch> full;
  SpscQueue<EventBatch> free;
};

/// Worker shard. Construct, Start(), feed each channel from its ONE
/// producer thread, then SignalDone() + Join() before reading results.
class Shard {
 public:
  /// Uniform-workload shard: instantiates an Engine from a shared
  /// compiled plan (one compile pass for all shards).
  Shard(size_t index, const Workload& workload, CompiledPlanHandle compiled,
        const RuntimeOptions& options);

  /// Non-uniform-workload shard: instantiates a MultiEngine from a shared
  /// multi-engine plan (one optimizer pass for all shards).
  Shard(size_t index, std::shared_ptr<const MultiEnginePlan> plan,
        const RuntimeOptions& options);

  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  size_t index() const { return index_; }

  /// Spawns the worker thread. Idempotent.
  void Start();

  /// Attaches telemetry (src/obs/) BEFORE Start: `eo` feeds the executor
  /// (and any engine a later hot-swap instantiates), `cells` the shard's
  /// own counters, `ring` the lifecycle trace. All nullable, all owned by
  /// the caller (RuntimeTelemetry) and written only from the worker
  /// thread afterwards.
  void SetObservability(const obs::EngineObs* eo, obs::ShardCells* cells,
                        obs::TraceRing* ring) {
    obs_engine_ = eo;
    obs_cells_ = cells;
    obs_ring_ = ring;
    if (engine_) engine_->SetObservability(eo);
    if (multi_) multi_->SetObservability(eo);
  }

  /// The channel of ingest partition `p` (stable address; the partition
  /// keeps pushing to it for the lifetime of the runtime).
  BatchChannel& channel(size_t p) { return *channels_[p]; }
  size_t num_channels() const { return channels_.size(); }

  /// Producer side: no more batches will be enqueued on any channel.
  void SignalDone() { done_.store(true, std::memory_order_release); }

  /// Producer side: stages a plan-swap command for pickup by the next
  /// in-band swap marker (src/runtime/plan_swap.h). Must be followed by a
  /// marker broadcast ordered after it; false if this shard cannot swap
  /// (MultiEngine mode) or a swap is already in flight.
  bool PushSwapCommand(const SwapCommand& cmd);

  /// Producer side: un-stages a command pushed by PushSwapCommand whose
  /// marker has NOT been broadcast (partial-broadcast rollback).
  void CancelSwapCommand();

  /// True from PushSwapCommand until the worker retires the old engine.
  bool swap_in_flight() const {
    return swap_in_flight_.load(std::memory_order_acquire);
  }

  /// Producer side: stages a checkpoint for pickup by the next in-band
  /// checkpoint marker (src/checkpoint/). Must be followed by a marker
  /// broadcast ordered after it; false while a swap or another checkpoint
  /// is in flight (the two operations are mutually exclusive — each needs
  /// the executor set it cuts to be unambiguous).
  bool PushCheckpointCommand(const CheckpointCommand& cmd);

  /// Producer side: un-stages a command pushed by PushCheckpointCommand
  /// whose marker has NOT been broadcast (partial-broadcast rollback).
  void CancelCheckpointCommand();

  /// True from PushCheckpointCommand until the worker wrote (or failed to
  /// write) its shard file.
  bool checkpoint_in_flight() const {
    return checkpoint_in_flight_.load(std::memory_order_acquire);
  }

  /// Outcome of the most recent completed checkpoint on this shard.
  /// Meaningful once checkpoint_in_flight() dropped back to false.
  struct CheckpointOutcome {
    std::string error;  ///< empty on success
    size_t bytes = 0;   ///< shard file size
    Timestamp watermark = kNoWatermark;  ///< merged frontier at the cut
  };
  CheckpointOutcome checkpoint_outcome() const;

  /// Blocks until the worker drained every channel and exited. Idempotent.
  void Join();

  /// Folds producer-side stall counts into this shard's stats. Called by
  /// the runtime at Finish, after the producers stopped (post-join).
  void AddProducerStalls(uint64_t n) { stats_.queue_full_stalls += n; }

  /// Highest watermark this shard's worker has applied. Safe to read
  /// while the worker runs (atomic); kNoWatermark before the first
  /// punctuation or when the runtime has no disorder policy.
  Timestamp watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  // --- post-Join reads -------------------------------------------------

  const ShardStats& stats() const { return stats_; }

  /// Watermark/eviction counters of this shard's executor (post-join).
  WatermarkStats watermark_stats() const;

  /// True once the executor finalized `window` of `query` (post-join).
  bool Finalized(QueryId query, WindowId window) const;

  /// Live-state census of this shard's executor (post-join).
  LiveState LiveStateSnapshot() const;

  /// Result cell for an ORIGINAL-workload query id.
  AggState Get(QueryId query, WindowId window, AttrValue group) const;

  /// Visits every result cell, with cell keys in ORIGINAL query ids.
  /// Iteration order is unspecified.
  void ForEachCell(
      const std::function<void(const ResultKey&, const AggState&)>& fn) const;

  size_t NumCells() const;
  size_t EstimatedBytes() const;
  /// Peak logical state bytes (Engine::peak_bytes convention). Includes
  /// retired pre-swap engines and the dual-run overlap.
  size_t PeakBytes() const;
  size_t num_shared_counters() const;

  /// Completed plan swaps this shard executed, in order (post-join).
  const std::vector<ShardSwapRecord>& swap_records() const {
    return swap_records_;
  }

  /// The underlying executors (exactly one is non-null). engine() is the
  /// CURRENT engine after any swaps.
  const Engine* engine() const { return engine_.get(); }
  const MultiEngine* multi() const { return multi_.get(); }

  // --- checkpoint restore hooks (pre-Start only) ------------------------
  // Used exclusively by ShardedRuntime::Restore before the worker thread
  // exists, so none of them synchronize.

  Engine* restore_engine() { return engine_.get(); }
  MultiEngine* restore_multi() { return multi_.get(); }
  ResultCollector& restore_archive() { return archived_; }
  void RestoreRetiredCounters(const WatermarkStats& wm) {
    retired_wm_.MergeCountersFrom(wm);
  }

  /// Seeds every producer frontier and the published shard watermark with
  /// the checkpointed merged frontier, so a stale post-restore
  /// punctuation is treated exactly as the uninterrupted run would have
  /// treated it (regression accounting instead of a frontier rewind).
  void RestoreFrontier(Timestamp merged);

 private:
  void WorkerLoop();
  void Process(const EventBatch& batch, size_t channel_idx);
  /// Dispatches one event from channel `p`: control-marker alignment,
  /// watermark merging, or executor delivery (data). Also the replay path
  /// for events held behind an aligned channel's marker.
  void HandleEvent(const Event& e, size_t p);
  /// Folds a control marker from channel `p` into the alignment state;
  /// executes the staged operation once every channel's marker arrived,
  /// then replays the held events.
  void OnControlMarker(const Event& e, size_t p);
  /// Returns the emptied buffer to channel `p`'s free ring.
  void Recycle(size_t p, EventBatch&& batch);
  /// Applies producer `p`'s watermark `t` and advances the executor to
  /// the new minimum over producer frontiers (if it moved).
  void MergeWatermark(size_t p, Timestamp t);

  // --- plan hot-swap (worker thread only; see plan_swap.h) -------------
  void BeginSwap();
  void ApplyWatermark(Timestamp t);
  void RetireOldEngine();
  Timestamp SwapWatermarkCap() const {
    return swap_.boundary + disorder_.max_lateness;
  }

  size_t index_;
  std::string error_;
  /// One channel per ingest partition (created at construction; the
  /// vector itself is immutable afterwards).
  std::vector<std::unique_ptr<BatchChannel>> channels_;
  /// Worker-owned: highest watermark seen per channel (kNoWatermark
  /// until the producer punctuates) and the merged minimum applied.
  std::vector<Timestamp> channel_frontier_;
  Timestamp merged_watermark_ = kNoWatermark;
  // Control-marker alignment (worker-owned). marker_seen_[p] is set when
  // channel p delivered its marker for the pending control op;
  // markers_seen_ counts the set flags. Events arriving on an aligned
  // channel are parked in held_[p] and replayed once the operation ran.
  std::vector<uint8_t> marker_seen_;
  size_t markers_seen_ = 0;
  std::vector<EventBatch> held_;
  uint64_t batch_data_events_ = 0;  ///< data events of the batch in Process
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<MultiEngine> multi_;
  /// Set at construction, never changes: lets the producer thread test
  /// the executor mode without touching engine_ (which the worker
  /// reassigns at swap retirement).
  const bool engine_mode_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  std::atomic<Timestamp> watermark_{kNoWatermark};
  bool started_ = false;
  ShardStats stats_;
  DisorderPolicy disorder_;

  // Telemetry handles (src/obs/); null when observability is off. The
  // worker thread is the only writer after Start.
  const obs::EngineObs* obs_engine_ = nullptr;
  obs::ShardCells* obs_cells_ = nullptr;
  obs::TraceRing* obs_ring_ = nullptr;

  /// Worker thread only: pops the staged checkpoint command at the
  /// in-band marker, serializes the executor state and writes the shard
  /// file (src/checkpoint/).
  void WriteCheckpoint();

  // Swap state. Producer stages commands under swap_mu_; the worker owns
  // everything else. swap_in_flight_ is the cross-thread handshake: set by
  // the producer on push, cleared by the worker at retirement.
  mutable std::mutex swap_mu_;
  std::deque<SwapCommand> pending_swaps_;
  std::atomic<bool> swap_in_flight_{false};

  // Checkpoint state, same discipline as the swap state: commands staged
  // under swap_mu_, checkpoint_in_flight_ set by the producer on push and
  // cleared by the worker after the file write; the outcome fields are
  // written by the worker under swap_mu_ before the flag clears.
  std::deque<CheckpointCommand> pending_checkpoints_;
  std::atomic<bool> checkpoint_in_flight_{false};
  CheckpointOutcome checkpoint_outcome_;
  bool swap_active_ = false;       ///< worker picked the command up
  SwapCommand swap_;               ///< the active swap
  Timestamp tee_from_ = 0;         ///< overlap start B + slide - length
  std::unique_ptr<Engine> next_engine_;
  StopWatch swap_watch_;
  ShardSwapRecord swap_record_;    ///< being accumulated for the active swap
  std::vector<ShardSwapRecord> swap_records_;

  // Results of retired engines (windows closing <= their boundary) plus
  // their folded-in counters; owned by the worker, read post-join.
  ResultCollector archived_;
  WatermarkStats retired_wm_;      ///< counter fields only (sums)
  size_t retired_peak_bytes_ = 0;  ///< max peak among retired engines
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_SHARD_H_
