// Group-to-shard partitioning.
//
// Sharon's correctness argument for the sharded runtime rests on one
// invariant: ALL events of a group value are processed by ONE shard, in
// stream order (see DESIGN.md). Both the ingest path and the result
// merger must therefore agree on the mapping, which is pinned down here:
// a 64-bit finalizer over the group value, reduced modulo the shard
// count. Raw group values are often small dense integers (vehicle ids,
// customer ids); the finalizer spreads them so neighbouring ids do not
// land on the same shard.

#ifndef SHARON_RUNTIME_PARTITION_H_
#define SHARON_RUNTIME_PARTITION_H_

#include <cstddef>
#include <cstdint>

#include "src/common/event.h"

namespace sharon::runtime {

/// splitmix64 finalizer: bijective 64-bit mix with good avalanche.
inline uint64_t MixGroup(AttrValue group) {
  uint64_t x = static_cast<uint64_t>(group);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The shard owning `group` among `num_shards` shards.
inline size_t ShardIndexFor(AttrValue group, size_t num_shards) {
  return num_shards > 1 ? static_cast<size_t>(MixGroup(group) % num_shards)
                        : 0;
}

/// The group value the engines partition `e` by: the event's partition
/// attribute, or 0 when the workload has no grouping clause.
inline AttrValue GroupOf(const Event& e, AttrIndex partition) {
  return partition == kNoAttr ? 0 : e.attr(partition);
}

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_PARTITION_H_
