// Merged, engine-compatible view over the per-shard result stores.
//
// Because every group value is owned by exactly one shard, "merging" is
// routing: a (query, window, group) lookup goes straight to the owning
// shard's collector and returns its AggState untouched — no cross-shard
// combination ever happens, which is why sharded results are bit-identical
// to the single-threaded engines'. The iteration helpers visit each
// shard's private cells in turn.

#ifndef SHARON_RUNTIME_RESULT_MERGER_H_
#define SHARON_RUNTIME_RESULT_MERGER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/watermark.h"
#include "src/exec/result.h"
#include "src/runtime/partition.h"
#include "src/runtime/shard.h"

namespace sharon::runtime {

/// Read-only facade exposing the same Value/Get surface as
/// Engine::results() / MultiEngine over a set of shards. Valid only after
/// the owning runtime finished (shards joined); the shards must outlive
/// the merger.
class ResultMerger {
 public:
  ResultMerger() = default;
  ResultMerger(const std::vector<std::unique_ptr<Shard>>* shards,
               AttrIndex partition)
      : shards_(shards), partition_(partition) {}

  /// Aggregate state of a cell; Zero if absent (also when the merger has
  /// no shards, e.g. its runtime failed to construct). `query` is an id
  /// of the ORIGINAL workload.
  AggState Get(QueryId query, WindowId window, AttrValue group) const {
    if (!shards_ || shards_->empty()) return AggState::Zero();
    return OwnerOf(group).Get(query, window, group);
  }

  /// Final numeric value of a cell under `fn`.
  double Value(QueryId query, WindowId window, AttrValue group,
               AggFunction fn) const {
    return Get(query, window, group).Final(fn);
  }

  /// The shard whose collector owns `group`. Requires a non-empty shard
  /// set (a successfully constructed runtime).
  const Shard& OwnerOf(AttrValue group) const {
    return *(*shards_)[ShardIndexFor(group, shards_->size())];
  }

  /// Visits every result cell across all shards, keys in ORIGINAL query
  /// ids. Iteration order is unspecified.
  void ForEachCell(
      const std::function<void(const ResultKey&, const AggState&)>& fn) const {
    if (!shards_) return;
    for (const auto& shard : *shards_) shard->ForEachCell(fn);
  }

  /// Total number of result cells across shards.
  size_t NumCells() const {
    if (!shards_) return 0;
    size_t n = 0;
    for (const auto& shard : *shards_) n += shard->NumCells();
    return n;
  }

  // --- watermark finalization surface (disorder-enabled runtimes) -------
  // A window is finalized only when EVERY shard finalized it: one shard's
  // stalled watermark holds the merged frontier back, because the
  // window's cells on that shard could still change. Runs without a
  // disorder policy never finalize anything (nothing ever seals).

  /// True once `window` of `query` is finalized on every shard — its
  /// merged results are complete and immutable. Valid after Finish().
  bool Finalized(QueryId query, WindowId window) const {
    if (!shards_ || shards_->empty()) return false;
    for (const auto& shard : *shards_) {
      if (!shard->Finalized(query, window)) return false;
    }
    return true;
  }

  /// The merged watermark: the MINIMUM across shard watermarks, i.e. the
  /// highest punctuation every shard has applied. Safe to read while the
  /// workers run (per-shard watermarks are atomic); kNoWatermark until
  /// all shards saw one.
  Timestamp MinWatermark() const {
    if (!shards_ || shards_->empty()) return kNoWatermark;
    Timestamp min = kWatermarkMax;
    for (const auto& shard : *shards_) {
      const Timestamp w = shard->watermark();
      if (w == kNoWatermark) return kNoWatermark;
      min = std::min(min, w);
    }
    return min;
  }

  AttrIndex partition() const { return partition_; }

 private:
  const std::vector<std::unique_ptr<Shard>>* shards_ = nullptr;
  AttrIndex partition_ = kNoAttr;
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_RESULT_MERGER_H_
