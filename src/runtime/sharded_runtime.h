// ShardedRuntime: parallel streaming execution of a Sharon workload.
//
// Sharon partitions all executor state by the workload's grouping
// attribute (§2.1 assumption 2), so groups are independent by
// construction. The runtime exploits exactly that: incoming events are
// hash-partitioned by group value across N worker shards, each owning a
// private Engine (or MultiEngine for non-uniform workloads) instantiated
// from ONE shared compiled plan. Batches travel through bounded SPSC ring
// buffers; a full ring stalls the ingest thread (backpressure) rather
// than growing memory without bound.
//
// Determinism: a shard sees the events of its groups in stream order, and
// result cells are keyed by group, so every cell is computed by the same
// operations in the same order as in the single-threaded engine — results
// are bit-identical for any shard count (tests/runtime_test.cc asserts
// this). See DESIGN.md for the full invariant.

#ifndef SHARON_RUNTIME_SHARDED_RUNTIME_H_
#define SHARON_RUNTIME_SHARDED_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/engine.h"
#include "src/exec/multi_engine.h"
#include "src/runtime/plan_swap.h"
#include "src/runtime/result_merger.h"
#include "src/runtime/runtime_stats.h"
#include "src/runtime/shard.h"
#include "src/sharing/cost_model.h"

namespace sharon::runtime {

/// Parallel workload executor with the same result surface as Engine.
///
/// Lifecycle: construct -> [Start -> Ingest... -> Finish] -> read results;
/// or simply Run(events, duration) which does all of it. A runtime is
/// single-use: after Finish() the workers are gone and further Ingest/Run
/// calls are ignored (construct a new runtime to process another stream).
/// `workload` (and the sharing plan sources) must outlive the runtime.
class ShardedRuntime {
 public:
  /// Uniform workload, explicit sharing plan (empty = A-Seq). The plan is
  /// compiled once and shared by all shards.
  explicit ShardedRuntime(const Workload& workload,
                          const SharingPlan& plan = {},
                          const RuntimeOptions& options = {});

  /// Non-uniform workload: one PlanMultiEngine pass (optimizer included),
  /// shared by all shards. Requires every query to agree on the grouping
  /// attribute — windows may differ, the partitioning may not, since a
  /// shard must own all state of the groups routed to it.
  ShardedRuntime(const Workload& workload, const CostModel& cost_model,
                 const OptimizerConfig& config = {},
                 const RuntimeOptions& options = {});

  /// Non-uniform workload from a pre-computed shared plan.
  ShardedRuntime(const Workload& workload,
                 std::shared_ptr<const MultiEnginePlan> plan,
                 const RuntimeOptions& options = {});

  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  size_t num_shards() const { return shards_.size(); }
  const RuntimeOptions& options() const { return options_; }

  /// Spawns the shard workers and starts the wall clock. Idempotent.
  void Start();

  /// Routes one event to its owning shard's pending batch; pushes the
  /// batch when full, stalling (with yield) while that shard's queue is
  /// full. Call from ONE thread, events in timestamp order — unless
  /// `options.disorder` is enabled, in which case arrival may trail the
  /// observed high-mark by up to max_lateness ticks (the shards reorder).
  /// Watermark punctuations (IsWatermark) route to IngestWatermark.
  void Ingest(const Event& e);

  /// Broadcasts watermark `t` to every shard, ordered after everything
  /// ingested so far. Each shard advances independently; the merged
  /// finalization frontier is the minimum across shards (ResultMerger).
  void IngestWatermark(Timestamp t);

  /// Outcome of a plan-swap request (see RequestPlanSwap).
  struct SwapRequest {
    bool accepted = false;
    std::string reason;      ///< why the swap was refused (when !accepted)
    uint64_t id = 0;         ///< swap sequence number (when accepted)
    Timestamp boundary = 0;  ///< chosen window-aligned boundary B
  };

  /// Hot-swaps the sharing plan of every shard at a watermark-aligned
  /// boundary (src/runtime/plan_swap.h). `plan` must be compiled from the
  /// SAME workload this runtime was built with (uniform constructor).
  /// Call from the ingest thread, between Ingest calls. The boundary is
  /// the first window close past the ingest high-mark, so every window
  /// closing at or before it is finalized by the current engines and
  /// every later window is computed by the new plan — finalized results
  /// stay exactly-once and bit-identical to a single-plan oracle run.
  ///
  /// Refused (accepted=false) when: the runtime is not uniform-Engine
  /// mode, no disorder policy is enabled (swaps need watermarks to drain
  /// the old engines), a previous swap is still in flight on some shard,
  /// or the runtime already finished.
  SwapRequest RequestPlanSwap(CompiledPlanHandle plan);

  /// Plan swaps completed so far (valid after Finish(); see also
  /// stats().plan_swaps).
  uint64_t swaps_requested() const { return swaps_requested_; }

  /// Pushes all non-empty pending batches regardless of occupancy.
  void Flush();

  /// Flushes, signals end-of-stream, joins all workers and stops the wall
  /// clock. Results and stats are valid afterwards. Idempotent.
  void Finish();

  /// Convenience: Start + Ingest(all) + Finish, reporting RunStats that
  /// are comparable with Engine::Run (events_processed counts each event
  /// once per query, the paper's convention).
  RunStats Run(const std::vector<Event>& events, Duration duration);

  /// Merged result view (valid after Finish()).
  const ResultMerger& results() const { return merger_; }
  AggState Get(QueryId query, WindowId window, AttrValue group) const {
    return merger_.Get(query, window, group);
  }
  double Value(QueryId query, WindowId window, AttrValue group,
               AggFunction fn) const {
    return merger_.Value(query, window, group, fn);
  }

  /// Per-shard and aggregate counters (valid after Finish()).
  RuntimeStats stats() const;

  /// Logical state bytes across all shards (valid after Finish()).
  size_t EstimatedBytes() const;

  /// Aggregated live-state census across shards (valid after Finish()).
  LiveState LiveStateSnapshot() const;

  /// Shared counters per shard template (same for every shard).
  size_t num_shared_counters() const;

  /// The grouping attribute events are partitioned by.
  AttrIndex partition() const { return partition_; }

 private:
  /// Checks the common-grouping invariant and records workload size /
  /// partition attribute; sets error_ and returns false on violation.
  bool ValidateForSharding(const Workload& workload);
  void InitShardsUniform(const Workload& workload, const SharingPlan& plan);
  void InitShardsMulti(const Workload& workload,
                       std::shared_ptr<const MultiEnginePlan> plan);
  void PushBatch(size_t shard_idx);

  std::string error_;
  RuntimeOptions options_;
  AttrIndex partition_ = kNoAttr;
  size_t workload_size_ = 0;
  const Workload* workload_ = nullptr;  ///< uniform ctor only (swap support)
  WindowSpec window_;                   ///< uniform ctor only
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<EventBatch> pending_;  ///< ingest-side per-shard batches
  ResultMerger merger_;
  StopWatch wall_;
  double wall_seconds_ = 0;
  uint64_t events_ingested_ = 0;
  uint64_t watermarks_ingested_ = 0;
  uint64_t swaps_requested_ = 0;
  Timestamp high_mark_ = 0;  ///< max data-event time ingested
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_SHARDED_RUNTIME_H_
