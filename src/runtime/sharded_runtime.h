// ShardedRuntime: parallel streaming execution of a Sharon workload.
//
// Sharon partitions all executor state by the workload's grouping
// attribute (§2.1 assumption 2), so groups are independent by
// construction. The runtime exploits exactly that: incoming events are
// hash-partitioned by group value across N worker shards, each owning a
// private Engine (or MultiEngine for non-uniform workloads) instantiated
// from ONE shared compiled plan. Batches travel through bounded SPSC ring
// buffers; a full ring stalls the ingest thread (backpressure) rather
// than growing memory without bound. Emptied batch buffers ride a free
// ring back to the producer, so steady-state ingest allocates nothing
// (DESIGN.md "Hot-path memory layout").
//
// The ingest side itself shards: `options.ingest_partitions` creates N
// independent producers (IngestPartition), each with a private channel
// to every shard, so the one-ingest-thread serial bottleneck disappears
// for sources that are naturally split (kafka-style partitions, one
// socket per NIC queue). Multi-producer mode requires a disorder policy:
// each producer punctuates its own observed high-mark, every shard
// advances to the MINIMUM across producer frontiers, and the shard-side
// reorder buffer restores deterministic time order before the
// order-dependent executors run.
//
// Determinism: a shard sees the events of its groups in stream order
// (single producer) or releases them in time order from the reorder
// buffer (multi-producer + watermarks), and result cells are keyed by
// group, so every cell is computed by the same operations in the same
// order as in the single-threaded engine — results are bit-identical for
// any shard count and any producer count (tests/runtime_test.cc,
// tests/hotpath_diff_test.cc). See DESIGN.md for the full invariant.

#ifndef SHARON_RUNTIME_SHARDED_RUNTIME_H_
#define SHARON_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/exec/engine.h"
#include "src/exec/multi_engine.h"
#include "src/runtime/plan_swap.h"
#include "src/runtime/result_merger.h"
#include "src/runtime/runtime_stats.h"
#include "src/runtime/shard.h"
#include "src/sharing/cost_model.h"

namespace sharon::runtime {

class ShardedRuntime;

/// One ingest producer: a single-threaded routing front-end with a
/// private batch channel to every shard. Obtain via
/// ShardedRuntime::ingest_partition(i); all methods must be called from
/// ONE thread per partition (different partitions may run on different
/// threads concurrently). The runtime's own Ingest/IngestWatermark are
/// partition 0.
class IngestPartition {
 public:
  IngestPartition(const IngestPartition&) = delete;
  IngestPartition& operator=(const IngestPartition&) = delete;

  /// Routes one event to its owning shard's pending batch; pushes the
  /// batch when full, stalling (with yield) while that shard's channel
  /// is full. Events of THIS partition must be in timestamp order up to
  /// the runtime's disorder bound; watermark punctuations route to
  /// IngestWatermark.
  void Ingest(const Event& e);

  /// Broadcasts this producer's watermark to every shard, ordered after
  /// everything this partition ingested so far. Shards advance to the
  /// minimum across producer frontiers.
  void IngestWatermark(Timestamp t);

  /// Pushes all non-empty pending batches regardless of occupancy.
  void Flush();

  /// This producer's counters (stable after the runtime finished).
  const IngestStats& stats() const { return stats_; }

  /// Max data-event time this partition ingested.
  Timestamp high_mark() const { return high_mark_; }

 private:
  friend class ShardedRuntime;

  IngestPartition(ShardedRuntime* runtime, size_t index);

  /// Pending batch for `shard_idx`, backed by a recycled buffer.
  EventBatch& PendingFor(size_t shard_idx);
  void PushBatch(size_t shard_idx);

  ShardedRuntime* runtime_;
  size_t index_;
  std::vector<EventBatch> pending_;        ///< per-shard fill buffers
  std::vector<uint64_t> stalls_by_shard_;  ///< folded into ShardStats at Finish
  IngestStats stats_;
  Timestamp high_mark_ = 0;
  // Telemetry handles (src/obs/), wired by the runtime at construction;
  // null when observability is off. This partition's thread is the only
  // writer.
  obs::IngestCells* obs_cells_ = nullptr;
  obs::TraceRing* obs_ring_ = nullptr;
};

/// Parallel workload executor with the same result surface as Engine.
///
/// Lifecycle: construct -> [Start -> Ingest... -> Finish] -> read results;
/// or simply Run(events, duration) which does all of it. A runtime is
/// single-use: after Finish() the workers are gone and further Ingest/Run
/// calls are ignored (construct a new runtime to process another stream).
/// `workload` (and the sharing plan sources) must outlive the runtime.
class ShardedRuntime {
 public:
  /// Uniform workload, explicit sharing plan (empty = A-Seq). The plan is
  /// compiled once and shared by all shards.
  explicit ShardedRuntime(const Workload& workload,
                          const SharingPlan& plan = {},
                          const RuntimeOptions& options = {});

  /// Non-uniform workload: one PlanMultiEngine pass (optimizer included),
  /// shared by all shards. Requires every query to agree on the grouping
  /// attribute — windows may differ, the partitioning may not, since a
  /// shard must own all state of the groups routed to it.
  ShardedRuntime(const Workload& workload, const CostModel& cost_model,
                 const OptimizerConfig& config = {},
                 const RuntimeOptions& options = {});

  /// Non-uniform workload from a pre-computed shared plan.
  ShardedRuntime(const Workload& workload,
                 std::shared_ptr<const MultiEnginePlan> plan,
                 const RuntimeOptions& options = {});

  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  size_t num_shards() const { return shards_.size(); }
  const RuntimeOptions& options() const { return options_; }

  /// Spawns the shard workers and starts the wall clock. Idempotent and
  /// thread-safe (multi-producer drivers may race the first call).
  void Start();

  /// Number of ingest partitions (options.ingest_partitions, clamped to
  /// at least 1).
  size_t num_ingest_partitions() const { return partitions_.size(); }

  /// Producer handle of partition `i`. Each partition must be driven by
  /// ONE thread; partitions may run concurrently. Call Start() before
  /// driving partitions from their own threads, and stop all producer
  /// threads before Finish().
  IngestPartition& ingest_partition(size_t i) { return *partitions_[i]; }

  /// Single-producer convenience: partition 0's Ingest. Routes one event
  /// to its owning shard's pending batch; pushes the batch when full,
  /// stalling (with yield) while that shard's channel is full. Call from
  /// ONE thread, events in timestamp order — unless `options.disorder`
  /// is enabled, in which case arrival may trail the observed high-mark
  /// by up to max_lateness ticks (the shards reorder). Watermark
  /// punctuations (IsWatermark) route to IngestWatermark.
  void Ingest(const Event& e);

  /// Single-producer convenience: partition 0's watermark broadcast,
  /// ordered after everything partition 0 ingested so far. Each shard
  /// advances to the minimum across producer frontiers; the merged
  /// finalization frontier is the minimum across shards (ResultMerger).
  void IngestWatermark(Timestamp t);

  /// Outcome of a plan-swap request (see RequestPlanSwap).
  struct SwapRequest {
    bool accepted = false;
    OpRefusal code = OpRefusal::kNone;  ///< typed refusal (when !accepted)
    std::string reason;      ///< why the swap was refused (when !accepted)
    uint64_t id = 0;         ///< swap sequence number (when accepted)
    Timestamp boundary = 0;  ///< chosen window-aligned boundary B
  };

  /// Hot-swaps the sharing plan of every shard at a watermark-aligned
  /// boundary (src/runtime/plan_swap.h). `plan` must be compiled from the
  /// SAME workload this runtime was built with (uniform constructor).
  /// The boundary is the first window close past the ingest high-mark
  /// (max over producers), so every window closing at or before it is
  /// finalized by the current engines and every later window is computed
  /// by the new plan — finalized results stay exactly-once and
  /// bit-identical to a single-plan oracle run.
  ///
  /// Works with any producer count: the marker is broadcast through EVERY
  /// partition's channels and each shard quiesces only once all channels'
  /// markers arrived (Shard::OnControlMarker). With several partitions the
  /// caller must be externally synchronized with all producer threads — no
  /// partition may have a concurrent Ingest in progress (a single thread
  /// driving all partitions satisfies this trivially).
  ///
  /// Refused (accepted=false) when: the runtime is not uniform-Engine
  /// mode, no disorder policy is enabled (swaps need watermarks to drain
  /// the old engines), a previous swap is still in flight on some shard,
  /// or the runtime already finished. Every refusal emits a
  /// kSwapRejected trace event and bumps sharon_swaps_rejected_total.
  SwapRequest RequestPlanSwap(CompiledPlanHandle plan);

  /// Plan swaps completed so far (valid after Finish(); see also
  /// stats().plan_swaps).
  uint64_t swaps_requested() const { return swaps_requested_; }

  // --- checkpoint/restore (src/checkpoint/; docs/OPERATIONS.md) ---------

  /// Outcome of a checkpoint request (see RequestCheckpoint).
  struct CheckpointRequest {
    bool accepted = false;
    OpRefusal code = OpRefusal::kNone;
    std::string reason;
    uint64_t id = 0;
    Timestamp boundary = 0;  ///< watermark-aligned boundary of the cut
  };

  /// Outcome of a completed (or refused/failed) checkpoint.
  struct CheckpointResult {
    bool ok = false;
    OpRefusal code = OpRefusal::kNone;
    std::string reason;
    uint64_t id = 0;
    Timestamp boundary = 0;
    std::string manifest_path;  ///< written LAST; presence = validity
    size_t bytes = 0;           ///< total serialized shard-file bytes
    double seconds = 0;         ///< request to manifest, wall time
  };

  /// Snapshots the COMPLETE executor state of every shard into `dir`
  /// (created if missing) and blocks until the manifest is written:
  /// stages a command per shard, broadcasts an in-band checkpoint marker
  /// ordered after everything ingested so far (through every partition's
  /// channels, each shard quiescing once all channels' markers arrived),
  /// flushes every partition, and waits for each worker to quiesce at the
  /// marker and write its shard file. With several partitions the caller
  /// must be externally synchronized with all producer threads, exactly
  /// as for RequestPlanSwap (the stall is the slowest shard's
  /// serialization time — see RuntimeStats.checkpoints).
  ///
  /// Refused with a typed code when: the runtime failed/finished
  /// (kNotRunning), no disorder policy (kNoDisorderPolicy — the
  /// consistent cut is defined by watermark frontiers), or a plan swap is
  /// in flight (kSwapInFlight — regression-tested together with the
  /// reverse order in tests/checkpoint_test.cc). Every refusal emits a
  /// kCheckpointRejected trace event and bumps
  /// sharon_checkpoints_rejected_total.
  CheckpointResult Checkpoint(const std::string& dir);

  /// Asynchronous half of Checkpoint: stages commands and broadcasts the
  /// marker WITHOUT flushing or waiting — the workers write their files
  /// when the marker reaches them through the queues, and the manifest is
  /// written at the next Checkpoint/RequestPlanSwap/Finish call that
  /// finds all shards done (query last_checkpoint() afterwards). While
  /// the checkpoint is in flight, RequestPlanSwap refuses with
  /// kCheckpointInFlight.
  CheckpointRequest RequestCheckpoint(const std::string& dir);

  /// True while a requested checkpoint has not completed on every shard.
  bool CheckpointInFlight() const;

  /// Outcome of the most recently completed checkpoint (empty-path
  /// default before the first one).
  const CheckpointResult& last_checkpoint() const { return last_checkpoint_; }

  /// Everything Restore needs besides the checkpoint directory. The
  /// workload (and plan) must be the SAME the checkpointed runtime ran —
  /// restore verifies a structural fingerprint of the compiled templates
  /// and refuses a mismatch. `runtime.num_shards` may differ from the
  /// checkpointed count: group state is re-partitioned by the hash
  /// attribute. The disorder policy is taken from the manifest (it is
  /// part of the checkpoint's semantics), not from `runtime`.
  struct RestoreOptions {
    RuntimeOptions runtime;
    const Workload* workload = nullptr;
    SharingPlan plan;  ///< uniform mode: the incumbent plan at the cut
    std::shared_ptr<const MultiEnginePlan> multi_plan;  ///< non-uniform mode
  };

  /// Outcome of Restore: a ready-to-ingest runtime (not yet started) or a
  /// diagnostic. Corrupt frames (CRC), truncated files, version
  /// mismatches and plan-fingerprint mismatches all refuse loudly.
  struct RestoreOutcome {
    std::unique_ptr<ShardedRuntime> runtime;
    std::string error;                ///< empty on success
    checkpoint::Manifest manifest;    ///< valid when runtime is non-null
  };

  /// Reconstructs a runtime from a checkpoint directory, re-partitioning
  /// state across `opts.runtime.num_shards` shards. Resume ingestion with
  /// the events after the checkpointed cut: finalized cells end up
  /// bit-identical to an uninterrupted run (tests/checkpoint_diff_test.cc,
  /// same and different shard counts).
  static RestoreOutcome Restore(const std::string& dir,
                                const RestoreOptions& opts);

  /// Manifest this runtime was restored from; nullptr for a fresh one.
  const checkpoint::Manifest* restored_from() const {
    return restored_ ? &*restored_ : nullptr;
  }

  /// Pushes all non-empty pending batches of every partition regardless
  /// of occupancy. With several partitions, only call once their
  /// producer threads have stopped (Finish does this for you).
  void Flush();

  /// Flushes every partition (broadcasting each producer's closing
  /// watermark under a disorder policy), signals end-of-stream, joins
  /// all workers and stops the wall clock. Results and stats are valid
  /// afterwards. Idempotent. All producer threads must have stopped
  /// before the call.
  void Finish();

  /// Convenience: Start + Ingest(all) + Finish, reporting RunStats that
  /// are comparable with Engine::Run (events_processed counts each event
  /// once per query, the paper's convention).
  RunStats Run(const std::vector<Event>& events, Duration duration);

  /// Merged result view (valid after Finish()).
  const ResultMerger& results() const { return merger_; }
  AggState Get(QueryId query, WindowId window, AttrValue group) const {
    return merger_.Get(query, window, group);
  }
  double Value(QueryId query, WindowId window, AttrValue group,
               AggFunction fn) const {
    return merger_.Value(query, window, group, fn);
  }

  /// Per-shard and aggregate counters (valid after Finish()).
  RuntimeStats stats() const;

  /// Logical state bytes across all shards (valid after Finish()).
  size_t EstimatedBytes() const;

  /// Aggregated live-state census across shards (valid after Finish()).
  LiveState LiveStateSnapshot() const;

  /// Shared counters per shard template (same for every shard).
  size_t num_shared_counters() const;

  /// The grouping attribute events are partitioned by.
  AttrIndex partition() const { return partition_; }

  // --- observability (src/obs/; enabled via RuntimeOptions::obs) --------

  /// The telemetry hub, or null when options().obs is fully off.
  obs::RuntimeTelemetry* telemetry() { return telemetry_.get(); }

  /// Snapshot of every registered metric cell. Safe to call while the
  /// workers run (cells are atomics); after Finish() the RuntimeStats
  /// rollups (busy time, stalls, eviction counters, swap figures, wall
  /// clock) are folded onto their gauges first, so the snapshot is the
  /// single export surface. Empty when observability is off.
  obs::MetricsSnapshot TelemetrySnapshot() const;

  /// Merge-sorted lifecycle trace across every ring (empty when tracing
  /// is off). Call after Finish() for a complete run, or concurrently for
  /// a live sample (in-progress slots are skipped, never torn).
  std::vector<obs::TraceEvent> DumpTrace() const;

  /// The control thread's trace ring (swap/checkpoint/re-opt lifecycle),
  /// for co-located emitters like adaptive::PlanManager. Null when
  /// tracing is off.
  obs::TraceRing* control_trace() {
    return telemetry_ ? telemetry_->control_ring() : nullptr;
  }

  /// Test-only direct shard access (e.g. planting a control command to
  /// exercise the shard-refusal unwind paths). Not part of the stable
  /// API; `i` must be a valid shard index.
  Shard& shard_for_test(size_t i) { return *shards_[i]; }

 private:
  friend class IngestPartition;

  /// Checks the common-grouping invariant and records workload size /
  /// partition attribute; sets error_ and returns false on violation.
  bool ValidateForSharding(const Workload& workload);
  /// Validates ingest options (partitions > 1 need a disorder policy)
  /// and creates the partition handles; false on violation.
  bool InitIngest();
  void InitShardsUniform(const Workload& workload, const SharingPlan& plan);
  void InitShardsMulti(const Workload& workload,
                       std::shared_ptr<const MultiEnginePlan> plan);
  /// Builds the telemetry hub and hands every shard/partition its cells
  /// and ring (no-op when options_.obs is off). Runs after InitIngest.
  void InitTelemetry();
  /// Folds the post-join RuntimeStats rollups onto their snapshot gauges
  /// (mutates atomic cells only, hence const).
  void FoldFinalStats() const;

  /// Completes a fully-staged checkpoint whose shards all finished:
  /// collects per-shard outcomes and writes the manifest. Pre-condition:
  /// a job is pending and no shard has it in flight.
  CheckpointResult FinalizeCheckpoint();

  /// Max data-event time routed across ALL partitions — the high-mark
  /// control-op boundaries are computed from.
  Timestamp IngestHighMark() const;
  /// Appends `marker` to every (partition, shard) pending batch, pushing
  /// batches that filled up — one marker per channel, the alignment set
  /// Shard::OnControlMarker waits for. Producer threads must be quiescent.
  void BroadcastControlMarker(const Event& marker);

  std::string error_;
  RuntimeOptions options_;
  AttrIndex partition_ = kNoAttr;
  size_t workload_size_ = 0;
  const Workload* workload_ = nullptr;  ///< uniform ctor only (swap support)
  WindowSpec window_;                   ///< uniform ctor only
  CompiledPlanHandle compiled_;         ///< uniform ctor only (fingerprint)
  std::shared_ptr<const MultiEnginePlan> multi_plan_;  ///< multi ctors only
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<IngestPartition>> partitions_;
  /// Telemetry hub (src/obs/); null unless options_.obs enables it. Its
  /// writers are the shard workers and producer threads, all joined or
  /// stopped by Finish() — which ~ShardedRuntime runs first — so the
  /// hub is never destroyed under a live writer.
  std::unique_ptr<obs::RuntimeTelemetry> telemetry_;
  ResultMerger merger_;
  StopWatch wall_;
  double wall_seconds_ = 0;
  uint64_t swaps_requested_ = 0;
  /// Pending checkpoint job (ingest-thread-only, like the swap request
  /// path): set by RequestCheckpoint, cleared by FinalizeCheckpoint.
  struct CheckpointJob {
    uint64_t id = 0;
    Timestamp boundary = 0;
    std::string dir;
    StopWatch watch;
    /// Ingest figures sampled at REQUEST time — the marker cut — so an
    /// asynchronously-sealed manifest records the cut, not whatever was
    /// ingested between the request and FinalizeCheckpoint.
    Timestamp high_mark_at_cut = 0;
    uint64_t events_at_cut = 0;
  };
  std::optional<CheckpointJob> checkpoint_job_;
  uint64_t checkpoints_requested_ = 0;
  CheckpointResult last_checkpoint_;
  std::optional<checkpoint::Manifest> restored_;  ///< set by Restore
  std::mutex start_mu_;             ///< serializes the first Start()
  std::atomic<bool> started_{false};
  bool finished_ = false;
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_SHARDED_RUNTIME_H_
