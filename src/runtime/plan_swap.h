// Watermark-aligned sharing-plan hot-swap: the runtime-side mechanics of
// adaptive re-optimization (policy lives in src/adaptive/plan_manager.h).
//
// A swap replaces the compiled sharing plan of every shard's executor
// while the stream keeps flowing, without losing, duplicating or altering
// a single finalized result cell. The trick is to cut the WINDOW set, not
// the event stream: sliding windows overlap, so no single timestamp
// separates "old plan's events" from "new plan's events" — but every
// window closes exactly once.
//
//   boundary B   = a window close on the workload's window grid, chosen
//                  past the ingest high-mark so that no event of any
//                  window closing after B has been routed yet
//   old engine   owns every window closing <= B: it keeps receiving
//                  events below B, its watermark is CAPPED at
//                  B + max_lateness so it finalizes exactly its windows
//                  and then retires (results drained into the shard's
//                  archive)
//   new engine   owns every window closing > B: it is instantiated from
//                  the new CompiledPlanHandle when the in-band swap
//                  marker arrives, receives every event at or above the
//                  first such window's start (events in the overlap
//                  [B+slide-length, B) are TEED to both engines), and a
//                  results floor discards its partial cells for windows
//                  closing <= B
//
// Because each window is computed by exactly one engine from exactly the
// events the sorted stream puts in it, finalized cells stay bit-identical
// to an oracle run under any swap schedule (tests/adaptive_swap_test.cc).
//
// Commands carry a shared_ptr plan handle, which cannot ride inside an
// Event; they travel in a side queue per shard while an in-band MARKER
// punctuation (type kSwapMarkerType) holds the swap's position relative
// to data events through the batch queues — the same trick watermarks
// use. The runtime pushes the command strictly before broadcasting the
// marker, so the worker always finds the command when the marker arrives.
//
// With several ingest partitions the marker is broadcast on EVERY
// partition's channels; a shard executes the operation only once the
// marker of every channel arrived, holding each aligned channel's
// subsequent events until then (Shard::OnControlMarker) — the same
// min-over-channels discipline watermark merging uses. Control requests
// therefore require all producer threads to be externally quiescent for
// the duration of the call, nothing more.

#ifndef SHARON_RUNTIME_PLAN_SWAP_H_
#define SHARON_RUNTIME_PLAN_SWAP_H_

#include <cstdint>

#include "src/common/event.h"
#include "src/common/time.h"
#include "src/exec/engine.h"

namespace sharon::runtime {

/// Punctuation type of the in-band swap marker (kInvalidType is taken by
/// watermarks). Markers are runtime-internal: they are broadcast by
/// ShardedRuntime::RequestPlanSwap and consumed by Shard workers, never
/// fed to an executor.
inline constexpr EventTypeId kSwapMarkerType = static_cast<EventTypeId>(-2);

/// Builds the in-band marker that triggers pickup of a pending swap.
inline Event SwapMarkerEvent() {
  Event e;
  e.type = kSwapMarkerType;
  return e;
}

/// True if `e` is a swap marker rather than a data event or watermark.
inline bool IsSwapMarker(const Event& e) { return e.type == kSwapMarkerType; }

/// Punctuation type of the in-band checkpoint marker (src/checkpoint/):
/// broadcast by ShardedRuntime::RequestCheckpoint with the same ordering
/// discipline as swap markers, consumed by Shard workers, which quiesce
/// and serialize their executor state at the marker position.
inline constexpr EventTypeId kCheckpointMarkerType =
    static_cast<EventTypeId>(-3);

/// Builds the in-band marker that triggers a staged checkpoint write.
inline Event CheckpointMarkerEvent() {
  Event e;
  e.type = kCheckpointMarkerType;
  return e;
}

/// True if `e` is a checkpoint marker.
inline bool IsCheckpointMarker(const Event& e) {
  return e.type == kCheckpointMarkerType;
}

/// Typed refusal codes for the runtime's control operations (plan swap
/// and checkpoint). The human-readable `reason` strings explain; the code
/// is what callers branch on — in particular the mutual exclusion between
/// swaps and checkpoints (a checkpoint is refused kSwapInFlight while a
/// swap drains, a swap is refused kCheckpointInFlight while a checkpoint
/// marker is still in the queues; tests/checkpoint_test.cc regression-
/// tests both orders).
enum class OpRefusal : uint8_t {
  kNone = 0,            ///< accepted
  kNotRunning,          ///< runtime failed to construct or already finished
  kNotUniform,          ///< operation requires uniform-Engine shards
  kNoDisorderPolicy,    ///< operation requires watermarks
  kMultiProducer,       ///< historical (pre-marker-alignment); never returned
  kBadPlan,             ///< null plan or plan from a different workload
  kSwapInFlight,        ///< a plan swap has not retired on every shard yet
  kCheckpointInFlight,  ///< a checkpoint has not completed on every shard
  kShardRefused,        ///< a shard rejected the staged command
  kIoError,             ///< checkpoint directory/file write failed
};

/// One plan swap, as handed to a shard (side-channel; the in-band marker
/// only says "pop the next command").
struct SwapCommand {
  uint64_t id = 0;             ///< swap sequence number (runtime-wide)
  Timestamp boundary = 0;      ///< window close B separating old/new plan
  CompiledPlanHandle plan;     ///< compiled new plan, shared by all shards
};

/// What one shard measured for one completed swap (worker-owned; read
/// after Join like the rest of ShardStats).
struct ShardSwapRecord {
  uint64_t id = 0;
  Timestamp boundary = 0;
  /// Marker pickup to old-engine retirement, wall seconds: the dual-run
  /// span during which the shard carries both engines.
  double dual_run_seconds = 0;
  /// Events in the overlap [B+slide-length, B) processed by BOTH engines.
  uint64_t teed_events = 0;
  /// Peak combined executor bytes observed during the dual run (sampled
  /// at watermark application, the only points state can shrink anyway).
  size_t peak_dual_bytes = 0;
  /// Executor bytes right after the old engine retired — the "recovery"
  /// figure the drift bench plots against peak_dual_bytes.
  size_t post_swap_bytes = 0;
};

/// Cross-shard rollup of one swap (RuntimeStats::plan_swaps). A swap's
/// stall is the SLOWEST shard's dual-run span: until then the runtime as
/// a whole still carries old-plan state.
struct PlanSwapStats {
  uint64_t id = 0;
  Timestamp boundary = 0;
  double max_dual_run_seconds = 0;  ///< per-swap stall time
  uint64_t teed_events = 0;         ///< summed over shards
  size_t peak_dual_bytes = 0;       ///< summed over shards
  size_t post_swap_bytes = 0;       ///< summed over shards
  size_t shards_completed = 0;
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_PLAN_SWAP_H_
