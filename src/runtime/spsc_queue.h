// Bounded single-producer / single-consumer ring buffer.
//
// The sharded runtime moves event batches from the one ingest thread to
// each shard's worker through one of these queues, so the only
// synchronization on the hot path is a pair of acquire/release atomics
// (the classic Lamport queue). Capacity is fixed at construction and
// rounded up to a power of two; a full queue rejects the push, which is
// how backpressure propagates to the producer.

#ifndef SHARON_RUNTIME_SPSC_QUEUE_H_
#define SHARON_RUNTIME_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sharon::runtime {

/// Bounded SPSC queue of movable values. Exactly one thread may call
/// TryPush and exactly one thread may call TryPop.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Moves `v` into the queue; false (and `v` untouched) when full.
  bool TryPush(T&& v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Moves the oldest value into `out`; false when empty.
  bool TryPop(T& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot; exact only from the consumer thread.
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Snapshot of the number of queued values.
  size_t Size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines to avoid
  // false sharing between the two threads.
  alignas(64) std::atomic<uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< producer cursor
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_SPSC_QUEUE_H_
