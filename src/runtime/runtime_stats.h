// Runtime configuration and per-shard / aggregate counters.
//
// Built on the explicit-measurement style of src/common/metrics.h: shards
// count what they do (events, batches, busy seconds) and the producer
// counts what it had to wait for (full queues), so throughput numbers are
// deterministic functions of the run rather than sampled estimates.

#ifndef SHARON_RUNTIME_RUNTIME_STATS_H_
#define SHARON_RUNTIME_RUNTIME_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/watermark.h"
#include "src/obs/runtime_telemetry.h"
#include "src/runtime/plan_swap.h"

namespace sharon::runtime {

/// Tuning knobs of the sharded runtime.
struct RuntimeOptions {
  /// Worker shards. 0 means one per available hardware thread.
  size_t num_shards = 0;

  /// Events per ingest batch. Larger batches amortize queue traffic;
  /// smaller batches reduce ingest-to-result latency.
  size_t batch_size = 256;

  /// Ring-buffer slots (batches) per (producer, shard) channel. Bounds
  /// in-flight memory to roughly ingest_partitions * num_shards *
  /// queue_capacity * batch_size events and is the mechanism of
  /// backpressure.
  size_t queue_capacity = 64;

  /// Ingest producer partitions. Each partition is an independent
  /// single-threaded producer (ShardedRuntime::ingest_partition) with a
  /// private SPSC channel to every shard, so N producer threads feed the
  /// runtime without sharing a queue. Values > 1 require a disorder
  /// policy: events of one group may then interleave across producers,
  /// and only the shard-side reorder buffer (watermark contract,
  /// src/common/watermark.h) restores the deterministic time order the
  /// executors need. Each shard merges watermarks as the MINIMUM over
  /// producer frontiers.
  size_t ingest_partitions = 1;

  /// Bounded-disorder contract for out-of-order streams (disabled by
  /// default: the seed's in-order behaviour). When enabled, every shard's
  /// executor reorders/finalizes/evicts, watermark punctuations are
  /// broadcast to all shards, and ResultMerger exposes Finalized().
  DisorderPolicy disorder;

  /// Observability switches (src/obs/). Both off by default, leaving the
  /// hot path exactly as in the seed; when enabled the runtime builds a
  /// RuntimeTelemetry, wires per-shard/per-partition cells and trace
  /// rings, and exposes TelemetrySnapshot() / DumpTrace().
  obs::ObsOptions obs;

  size_t ResolvedShards() const {
    if (num_shards > 0) return num_shards;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }
};

/// Counters of one shard. The worker thread owns events/batches/
/// busy_seconds/idle_spins; the ingest thread owns queue_full_stalls.
/// Read them together only after the runtime finished.
struct ShardStats {
  uint64_t events = 0;        ///< events processed by the worker
  uint64_t batches = 0;       ///< batches popped by the worker
  uint64_t queue_full_stalls = 0;  ///< producer yields on a full queue
  uint64_t idle_spins = 0;    ///< worker yields on an empty queue
  uint64_t recycle_drops = 0; ///< batch buffers the free ring refused
  double busy_seconds = 0;    ///< wall time spent inside engine code

  /// Mean events per popped batch (batch occupancy).
  double AvgBatchOccupancy() const {
    return batches > 0 ? static_cast<double>(events) /
                             static_cast<double>(batches)
                       : 0;
  }

  /// Events per second of shard busy time.
  double BusyThroughput() const {
    return busy_seconds > 0
               ? static_cast<double>(events) / busy_seconds
               : 0;
  }
};

/// Counters of one ingest partition (owned by its producer thread; read
/// together with the rest of the stats after the runtime finished).
/// The batch-buffer counters measure the recycling ring: in steady state
/// every pushed batch rides a recycled buffer and batch_allocs stays at
/// its warm-up figure — the zero-allocation ingest invariant the
/// scaling bench records (DESIGN.md "Hot-path memory layout").
struct IngestStats {
  uint64_t events = 0;            ///< data events routed by this producer
  uint64_t watermarks = 0;        ///< punctuations broadcast
  uint64_t batches = 0;           ///< batches pushed to shard channels
  uint64_t batches_recycled = 0;  ///< pushes that reused a pooled buffer
  uint64_t batch_allocs = 0;      ///< pushes that allocated a fresh buffer
  uint64_t queue_full_stalls = 0; ///< producer yields on full channels
};

/// Aggregate counters of one sharded run.
struct RuntimeStats {
  std::vector<ShardStats> shards;
  /// Per-producer ingest counters (index-aligned with the runtime's
  /// ingest partitions).
  std::vector<IngestStats> ingest;
  /// Per-shard watermark/eviction counters (index-aligned with shards;
  /// empty when the runtime ran without a disorder policy).
  std::vector<WatermarkStats> shard_watermarks;
  /// Completed plan hot-swaps, in swap order, rolled up across shards
  /// (src/runtime/plan_swap.h; empty when no swap was requested).
  std::vector<PlanSwapStats> plan_swaps;
  uint64_t events_ingested = 0;
  uint64_t watermarks_ingested = 0;  ///< punctuations broadcast to shards
  double wall_seconds = 0;  ///< Start() to Finish(), ingest included

  /// Number of plan swaps every shard completed.
  uint64_t CompletedSwaps() const { return plan_swaps.size(); }

  /// Slowest per-swap stall (dual-run span) across all completed swaps.
  double MaxSwapStallSeconds() const {
    double s = 0;
    for (const PlanSwapStats& p : plan_swaps) {
      s = std::max(s, p.max_dual_run_seconds);
    }
    return s;
  }

  /// Cross-shard watermark rollup: watermark/safe point are the MIN over
  /// shards (the merged finalization frontier), counters are sums.
  WatermarkStats Watermarks() const {
    WatermarkStats out;
    for (const WatermarkStats& w : shard_watermarks) out.MergeFrom(w);
    return out;
  }

  uint64_t TotalLateDropped() const {
    uint64_t n = 0;
    for (const WatermarkStats& w : shard_watermarks) n += w.late_dropped;
    return n;
  }

  uint64_t TotalEvictedPanes() const {
    uint64_t n = 0;
    for (const WatermarkStats& w : shard_watermarks) n += w.evicted_panes;
    return n;
  }

  /// Stream events per wall second (NOT multiplied by workload size; see
  /// RunStats::Throughput for the paper's per-query convention).
  double EventsPerSecond() const {
    return wall_seconds > 0
               ? static_cast<double>(events_ingested) / wall_seconds
               : 0;
  }

  uint64_t TotalStalls() const {
    uint64_t n = 0;
    for (const ShardStats& s : shards) n += s.queue_full_stalls;
    return n;
  }

  /// Fresh batch-buffer allocations across producers (warm-up cost; flat
  /// in steady state thanks to the recycling rings).
  uint64_t TotalBatchAllocs() const {
    uint64_t n = 0;
    for (const IngestStats& s : ingest) n += s.batch_allocs;
    return n;
  }

  uint64_t TotalBatchesRecycled() const {
    uint64_t n = 0;
    for (const IngestStats& s : ingest) n += s.batches_recycled;
    return n;
  }

  double TotalBusySeconds() const {
    double t = 0;
    for (const ShardStats& s : shards) t += s.busy_seconds;
    return t;
  }

  /// Mean batch occupancy across shards, weighted by batches.
  double AvgBatchOccupancy() const {
    uint64_t events = 0, batches = 0;
    for (const ShardStats& s : shards) {
      events += s.events;
      batches += s.batches;
    }
    return batches > 0
               ? static_cast<double>(events) / static_cast<double>(batches)
               : 0;
  }
};

}  // namespace sharon::runtime

#endif  // SHARON_RUNTIME_RUNTIME_STATS_H_
