#include "src/runtime/sharded_runtime.h"

#include <algorithm>
#include <thread>

namespace sharon::runtime {

// --- IngestPartition -------------------------------------------------------

IngestPartition::IngestPartition(ShardedRuntime* runtime, size_t index)
    : runtime_(runtime),
      index_(index),
      pending_(runtime->shards_.size()),
      stalls_by_shard_(runtime->shards_.size(), 0) {}

EventBatch& IngestPartition::PendingFor(size_t shard_idx) {
  EventBatch& batch = pending_[shard_idx];
  if (batch.capacity() == 0) {
    // Prefer a buffer the worker recycled through the free ring; fall
    // back to a fresh allocation (warm-up, or a worker that has not
    // returned buffers yet).
    BatchChannel& ch = runtime_->shards_[shard_idx]->channel(index_);
    if (ch.free.TryPop(batch)) {
      ++stats_.batches_recycled;
    } else {
      ++stats_.batch_allocs;
    }
    if (batch.capacity() < runtime_->options_.batch_size) {
      batch.reserve(runtime_->options_.batch_size);
    }
  }
  return batch;
}

void IngestPartition::PushBatch(size_t shard_idx) {
  EventBatch& batch = pending_[shard_idx];
  if (batch.empty()) return;
  Shard& shard = *runtime_->shards_[shard_idx];
  BatchChannel& ch = shard.channel(index_);
  while (!ch.full.TryPush(std::move(batch))) {
    ++stalls_by_shard_[shard_idx];
    ++stats_.queue_full_stalls;
    std::this_thread::yield();
  }
  ++stats_.batches;
  batch = EventBatch();  // next PendingFor pulls a recycled buffer
}

void IngestPartition::Ingest(const Event& e) {
  ShardedRuntime& rt = *runtime_;
  // A failed runtime has no shards to index; a finished one has no
  // workers left to drain the queues, so pushing would livelock.
  if (!rt.ok() || rt.finished_) return;
  if (IsWatermark(e)) {
    IngestWatermark(e.time);
    return;
  }
  if (!rt.started_.load(std::memory_order_acquire)) {
    rt.Start();  // otherwise a full channel would stall forever
  }
  const size_t idx = ShardIndexFor(GroupOf(e, rt.partition_), rt.shards_.size());
  EventBatch& batch = PendingFor(idx);
  batch.push_back(e);
  ++stats_.events;
  if (e.time > high_mark_) high_mark_ = e.time;
  if (batch.size() >= rt.options_.batch_size) PushBatch(idx);
}

void IngestPartition::IngestWatermark(Timestamp t) {
  ShardedRuntime& rt = *runtime_;
  if (!rt.ok() || rt.finished_) return;
  // Without a disorder policy the executors ignore watermarks and the
  // shard.h contract keeps shard watermark() at kNoWatermark — drop the
  // punctuation here so a pre-stamped feed cannot fake a frontier.
  if (!rt.options_.disorder.enabled) return;
  if (!rt.started_.load(std::memory_order_acquire)) rt.Start();
  // Appending to every pending batch keeps the punctuation ordered after
  // all events THIS producer ingested before it — on every shard,
  // through the same channels the events travel. Shards fold it into
  // their per-producer frontier and advance to the minimum.
  const Event punctuation = WatermarkEvent(t);
  for (size_t i = 0; i < pending_.size(); ++i) {
    EventBatch& batch = PendingFor(i);
    batch.push_back(punctuation);
    if (batch.size() >= rt.options_.batch_size) PushBatch(i);
  }
  ++stats_.watermarks;
}

void IngestPartition::Flush() {
  for (size_t i = 0; i < pending_.size(); ++i) PushBatch(i);
}

// --- ShardedRuntime --------------------------------------------------------

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               const SharingPlan& plan,
                               const RuntimeOptions& options)
    : options_(options) {
  if (workload.empty()) {
    error_ = "empty workload";
    return;
  }
  workload_size_ = workload.size();
  workload_ = &workload;
  InitShardsUniform(workload, plan);
}

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               const CostModel& cost_model,
                               const OptimizerConfig& config,
                               const RuntimeOptions& options)
    : options_(options) {
  // Validate before PlanMultiEngine: planning runs the optimizer per
  // segment, far too expensive to spend on a workload we then reject.
  if (!ValidateForSharding(workload)) return;
  InitShardsMulti(workload, PlanMultiEngine(workload, cost_model, config));
}

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               std::shared_ptr<const MultiEnginePlan> plan,
                               const RuntimeOptions& options)
    : options_(options) {
  if (!ValidateForSharding(workload)) return;
  InitShardsMulti(workload, std::move(plan));
}

bool ShardedRuntime::ValidateForSharding(const Workload& workload) {
  if (workload.empty()) {
    error_ = "empty workload";
    return false;
  }
  workload_size_ = workload.size();
  // All state of a group must live on the group's shard (DESIGN.md), so
  // every segment has to partition by the same attribute.
  partition_ = workload.queries().front().partition_attr;
  for (const Query& q : workload.queries()) {
    if (q.partition_attr != partition_) {
      error_ =
          "sharding requires a common grouping attribute across queries; "
          "this workload mixes partition attributes (run segments in "
          "separate runtimes instead)";
      return false;
    }
  }
  return true;
}

bool ShardedRuntime::InitIngest() {
  if (options_.ingest_partitions == 0) options_.ingest_partitions = 1;
  if (options_.ingest_partitions > 1 && !options_.disorder.enabled) {
    // Without the reorder buffer a group's events would reach its shard
    // in whatever order the producers interleave — silently
    // nondeterministic. Refuse loudly instead.
    error_ =
        "ingest_partitions > 1 requires a disorder policy: only the "
        "watermark reorder buffer restores deterministic time order when "
        "several producers interleave (src/common/watermark.h)";
    return false;
  }
  partitions_.reserve(options_.ingest_partitions);
  for (size_t i = 0; i < options_.ingest_partitions; ++i) {
    partitions_.push_back(
        std::unique_ptr<IngestPartition>(new IngestPartition(this, i)));
  }
  return true;
}

void ShardedRuntime::InitShardsUniform(const Workload& workload,
                                       const SharingPlan& plan) {
  CompiledPlanHandle compiled = CompilePlanShared(workload, plan, &error_);
  if (!compiled) return;
  partition_ = compiled->partition;
  window_ = compiled->window;
  const size_t n = options_.ResolvedShards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, workload, compiled, options_));
    if (!shards_.back()->ok()) {
      error_ = shards_.back()->error();
      return;
    }
  }
  if (!InitIngest()) return;
  merger_ = ResultMerger(&shards_, partition_);
}

void ShardedRuntime::InitShardsMulti(
    const Workload& workload, std::shared_ptr<const MultiEnginePlan> plan) {
  (void)workload;
  if (!plan || !plan->ok()) {
    error_ = plan ? plan->error : "null multi-engine plan";
    return;
  }
  const size_t n = options_.ResolvedShards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, plan, options_));
    if (!shards_.back()->ok()) {
      error_ = shards_.back()->error();
      return;
    }
  }
  if (!InitIngest()) return;
  merger_ = ResultMerger(&shards_, partition_);
}

ShardedRuntime::~ShardedRuntime() {
  if (started_.load(std::memory_order_acquire) && !finished_) Finish();
}

void ShardedRuntime::Start() {
  if (!ok()) return;
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  for (auto& shard : shards_) shard->Start();
  wall_.Reset();
  started_.store(true, std::memory_order_release);
}

void ShardedRuntime::Ingest(const Event& e) {
  if (partitions_.empty()) return;  // failed construction
  partitions_[0]->Ingest(e);
}

void ShardedRuntime::IngestWatermark(Timestamp t) {
  if (partitions_.empty()) return;
  partitions_[0]->IngestWatermark(t);
}

ShardedRuntime::SwapRequest ShardedRuntime::RequestPlanSwap(
    CompiledPlanHandle plan) {
  SwapRequest req;
  auto refuse = [&](const char* why) {
    req.reason = why;
    return req;
  };
  if (!ok() || finished_) return refuse("runtime not running");
  if (!workload_) {
    return refuse(
        "plan swap requires the uniform-workload runtime (MultiEngine "
        "shards re-plan per segment; rebuild the runtime instead)");
  }
  if (!options_.disorder.enabled) {
    return refuse(
        "plan swap requires a disorder policy: watermarks are what drain "
        "and retire the old engines");
  }
  if (partitions_.size() > 1) {
    return refuse(
        "plan swap requires a single ingest partition: the swap marker "
        "must be ordered after ALL routed events, which only one "
        "producer can guarantee");
  }
  if (!plan) return refuse("null compiled plan");
  if (plan->partition != partition_ || !(plan->window == window_)) {
    return refuse("new plan was compiled for a different workload");
  }
  for (const auto& shard : shards_) {
    if (shard->swap_in_flight()) {
      return refuse("previous swap still in flight");
    }
  }
  if (!started_.load(std::memory_order_acquire)) Start();

  // Boundary: the close of the last window whose start covers the ingest
  // high-mark. Every event routed so far has time <= high-mark, and the
  // first window closing after B starts at B + slide - length
  // > high-mark — so no event of a new-plan window has been routed yet,
  // and the overlap tee (shard.cc) sees all of them.
  IngestPartition& ingest = *partitions_[0];
  SwapCommand cmd;
  cmd.id = ++swaps_requested_;
  cmd.boundary =
      window_.WindowEnd(window_.LastWindowCovering(ingest.high_mark()));
  cmd.plan = std::move(plan);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->PushSwapCommand(cmd)) {
      // Un-arm the shards already staged: their markers were not
      // broadcast yet, so cancelling producer-side is safe and leaves no
      // shard stuck with swap_in_flight set.
      for (size_t j = 0; j < i; ++j) shards_[j]->CancelSwapCommand();
      --swaps_requested_;
      return refuse("shard refused swap command");
    }
  }
  // In-band markers, ordered after everything ingested so far — same
  // broadcast discipline as watermarks.
  const Event marker = SwapMarkerEvent();
  for (size_t i = 0; i < shards_.size(); ++i) {
    EventBatch& batch = ingest.PendingFor(i);
    batch.push_back(marker);
    if (batch.size() >= options_.batch_size) ingest.PushBatch(i);
  }
  req.accepted = true;
  req.id = cmd.id;
  req.boundary = cmd.boundary;
  return req;
}

void ShardedRuntime::Flush() {
  for (auto& partition : partitions_) partition->Flush();
}

void ShardedRuntime::Finish() {
  if (!started_.load(std::memory_order_acquire) || finished_) return;
  if (options_.disorder.enabled && options_.disorder.close_on_finish) {
    // Closing watermark from EVERY producer: the per-shard minimum over
    // producer frontiers reaches kWatermarkMax, releasing every reorder
    // buffer and finalizing every window, so results() is complete.
    for (auto& partition : partitions_) {
      partition->IngestWatermark(kWatermarkMax);
    }
  }
  Flush();
  for (auto& shard : shards_) shard->SignalDone();
  for (auto& shard : shards_) shard->Join();
  // Producer-side stall counts become visible in ShardStats only now,
  // post-join, so readers never race the producers.
  for (auto& partition : partitions_) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->AddProducerStalls(partition->stalls_by_shard_[s]);
    }
  }
  wall_seconds_ = wall_.ElapsedSeconds();
  finished_ = true;
}

RunStats ShardedRuntime::Run(const std::vector<Event>& events,
                             Duration duration) {
  RunStats stats;
  if (!ok() || finished_) return stats;
  Start();
  for (const Event& e : events) Ingest(e);
  Finish();
  stats.wall_seconds = wall_seconds_;
  // Per-query convention of Engine::Run: each event counts once per query.
  stats.events_processed = events.size() * workload_size_;
  stats.results_emitted = merger_.NumCells();
  // Engine::Run convention: report the PEAK, not the post-sweep figure.
  size_t peak = 0;
  for (const auto& shard : shards_) peak += shard->PeakBytes();
  stats.peak_state_bytes = peak;
  (void)duration;
  return stats;
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) out.shards.push_back(shard->stats());
  out.ingest.reserve(partitions_.size());
  for (const auto& partition : partitions_) {
    out.ingest.push_back(partition->stats());
  }
  if (options_.disorder.enabled) {
    out.shard_watermarks.reserve(shards_.size());
    for (const auto& shard : shards_) {
      out.shard_watermarks.push_back(shard->watermark_stats());
    }
  }
  for (const auto& partition : partitions_) {
    out.events_ingested += partition->stats().events;
    out.watermarks_ingested += partition->stats().watermarks;
  }
  out.wall_seconds = wall_seconds_;
  // Roll completed swaps up across shards: a swap counts once it
  // completed on EVERY shard; its stall is the slowest shard's dual run.
  size_t completed = shards_.empty() ? 0 : shards_.front()->swap_records().size();
  for (const auto& shard : shards_) {
    completed = std::min(completed, shard->swap_records().size());
  }
  for (size_t k = 0; k < completed; ++k) {
    PlanSwapStats swap;
    for (const auto& shard : shards_) {
      const ShardSwapRecord& r = shard->swap_records()[k];
      swap.id = r.id;
      swap.boundary = r.boundary;
      swap.max_dual_run_seconds =
          std::max(swap.max_dual_run_seconds, r.dual_run_seconds);
      swap.teed_events += r.teed_events;
      swap.peak_dual_bytes += r.peak_dual_bytes;
      swap.post_swap_bytes += r.post_swap_bytes;
      ++swap.shards_completed;
    }
    out.plan_swaps.push_back(swap);
  }
  return out;
}

size_t ShardedRuntime::EstimatedBytes() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->EstimatedBytes();
  return n;
}

LiveState ShardedRuntime::LiveStateSnapshot() const {
  LiveState live;
  for (const auto& shard : shards_) live.MergeFrom(shard->LiveStateSnapshot());
  return live;
}

size_t ShardedRuntime::num_shared_counters() const {
  return shards_.empty() ? 0 : shards_.front()->num_shared_counters();
}

}  // namespace sharon::runtime
