#include "src/runtime/sharded_runtime.h"

#include <algorithm>
#include <thread>

namespace sharon::runtime {

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               const SharingPlan& plan,
                               const RuntimeOptions& options)
    : options_(options) {
  if (workload.empty()) {
    error_ = "empty workload";
    return;
  }
  workload_size_ = workload.size();
  workload_ = &workload;
  InitShardsUniform(workload, plan);
}

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               const CostModel& cost_model,
                               const OptimizerConfig& config,
                               const RuntimeOptions& options)
    : options_(options) {
  // Validate before PlanMultiEngine: planning runs the optimizer per
  // segment, far too expensive to spend on a workload we then reject.
  if (!ValidateForSharding(workload)) return;
  InitShardsMulti(workload, PlanMultiEngine(workload, cost_model, config));
}

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               std::shared_ptr<const MultiEnginePlan> plan,
                               const RuntimeOptions& options)
    : options_(options) {
  if (!ValidateForSharding(workload)) return;
  InitShardsMulti(workload, std::move(plan));
}

bool ShardedRuntime::ValidateForSharding(const Workload& workload) {
  if (workload.empty()) {
    error_ = "empty workload";
    return false;
  }
  workload_size_ = workload.size();
  // All state of a group must live on the group's shard (DESIGN.md), so
  // every segment has to partition by the same attribute.
  partition_ = workload.queries().front().partition_attr;
  for (const Query& q : workload.queries()) {
    if (q.partition_attr != partition_) {
      error_ =
          "sharding requires a common grouping attribute across queries; "
          "this workload mixes partition attributes (run segments in "
          "separate runtimes instead)";
      return false;
    }
  }
  return true;
}

void ShardedRuntime::InitShardsUniform(const Workload& workload,
                                       const SharingPlan& plan) {
  CompiledPlanHandle compiled = CompilePlanShared(workload, plan, &error_);
  if (!compiled) return;
  partition_ = compiled->partition;
  window_ = compiled->window;
  const size_t n = options_.ResolvedShards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, workload, compiled, options_));
    if (!shards_.back()->ok()) {
      error_ = shards_.back()->error();
      return;
    }
  }
  pending_.resize(n);
  merger_ = ResultMerger(&shards_, partition_);
}

void ShardedRuntime::InitShardsMulti(
    const Workload& workload, std::shared_ptr<const MultiEnginePlan> plan) {
  (void)workload;
  if (!plan || !plan->ok()) {
    error_ = plan ? plan->error : "null multi-engine plan";
    return;
  }
  const size_t n = options_.ResolvedShards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, plan, options_));
    if (!shards_.back()->ok()) {
      error_ = shards_.back()->error();
      return;
    }
  }
  pending_.resize(n);
  merger_ = ResultMerger(&shards_, partition_);
}

ShardedRuntime::~ShardedRuntime() {
  if (started_ && !finished_) Finish();
}

void ShardedRuntime::Start() {
  if (started_ || !ok()) return;
  started_ = true;
  for (auto& shard : shards_) shard->Start();
  wall_.Reset();
}

void ShardedRuntime::PushBatch(size_t shard_idx) {
  EventBatch& batch = pending_[shard_idx];
  if (batch.empty()) return;
  Shard& shard = *shards_[shard_idx];
  while (!shard.TryEnqueue(std::move(batch))) {
    shard.CountStall();
    std::this_thread::yield();
  }
  batch = EventBatch();
  batch.reserve(options_.batch_size);
}

void ShardedRuntime::Ingest(const Event& e) {
  // A failed runtime has no shards to index; a finished one has no
  // workers left to drain the queues, so pushing would livelock.
  if (!ok() || finished_) return;
  if (IsWatermark(e)) {
    IngestWatermark(e.time);
    return;
  }
  if (!started_) Start();  // otherwise a full queue would stall forever
  const size_t idx =
      ShardIndexFor(GroupOf(e, partition_), shards_.size());
  EventBatch& batch = pending_[idx];
  if (batch.capacity() == 0) batch.reserve(options_.batch_size);
  batch.push_back(e);
  ++events_ingested_;
  if (e.time > high_mark_) high_mark_ = e.time;
  if (batch.size() >= options_.batch_size) PushBatch(idx);
}

void ShardedRuntime::IngestWatermark(Timestamp t) {
  if (!ok() || finished_) return;
  // Without a disorder policy the executors ignore watermarks and the
  // shard.h contract keeps shard watermark() at kNoWatermark — drop the
  // punctuation here so a pre-stamped feed cannot fake a frontier.
  if (!options_.disorder.enabled) return;
  if (!started_) Start();
  // Appending to every pending batch keeps the punctuation ordered after
  // all events ingested before it — on every shard, through the same
  // queues the events travel.
  const Event punctuation = WatermarkEvent(t);
  for (size_t i = 0; i < pending_.size(); ++i) {
    EventBatch& batch = pending_[i];
    if (batch.capacity() == 0) batch.reserve(options_.batch_size + 1);
    batch.push_back(punctuation);
    if (batch.size() >= options_.batch_size) PushBatch(i);
  }
  ++watermarks_ingested_;
}

ShardedRuntime::SwapRequest ShardedRuntime::RequestPlanSwap(
    CompiledPlanHandle plan) {
  SwapRequest req;
  auto refuse = [&](const char* why) {
    req.reason = why;
    return req;
  };
  if (!ok() || finished_) return refuse("runtime not running");
  if (!workload_) {
    return refuse(
        "plan swap requires the uniform-workload runtime (MultiEngine "
        "shards re-plan per segment; rebuild the runtime instead)");
  }
  if (!options_.disorder.enabled) {
    return refuse(
        "plan swap requires a disorder policy: watermarks are what drain "
        "and retire the old engines");
  }
  if (!plan) return refuse("null compiled plan");
  if (plan->partition != partition_ || !(plan->window == window_)) {
    return refuse("new plan was compiled for a different workload");
  }
  for (const auto& shard : shards_) {
    if (shard->swap_in_flight()) {
      return refuse("previous swap still in flight");
    }
  }
  if (!started_) Start();

  // Boundary: the close of the last window whose start covers the ingest
  // high-mark. Every event routed so far has time <= high-mark, and the
  // first window closing after B starts at B + slide - length
  // > high-mark — so no event of a new-plan window has been routed yet,
  // and the overlap tee (shard.cc) sees all of them.
  SwapCommand cmd;
  cmd.id = ++swaps_requested_;
  cmd.boundary = window_.WindowEnd(window_.LastWindowCovering(high_mark_));
  cmd.plan = std::move(plan);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->PushSwapCommand(cmd)) {
      // Un-arm the shards already staged: their markers were not
      // broadcast yet, so cancelling producer-side is safe and leaves no
      // shard stuck with swap_in_flight set.
      for (size_t j = 0; j < i; ++j) shards_[j]->CancelSwapCommand();
      --swaps_requested_;
      return refuse("shard refused swap command");
    }
  }
  // In-band markers, ordered after everything ingested so far — same
  // broadcast discipline as watermarks.
  const Event marker = SwapMarkerEvent();
  for (size_t i = 0; i < pending_.size(); ++i) {
    EventBatch& batch = pending_[i];
    if (batch.capacity() == 0) batch.reserve(options_.batch_size + 1);
    batch.push_back(marker);
    if (batch.size() >= options_.batch_size) PushBatch(i);
  }
  req.accepted = true;
  req.id = cmd.id;
  req.boundary = cmd.boundary;
  return req;
}

void ShardedRuntime::Flush() {
  for (size_t i = 0; i < pending_.size(); ++i) PushBatch(i);
}

void ShardedRuntime::Finish() {
  if (!started_ || finished_) return;
  if (options_.disorder.enabled && options_.disorder.close_on_finish) {
    // Closing watermark: releases every reorder buffer and finalizes
    // every window on every shard, so results() is complete.
    IngestWatermark(kWatermarkMax);
  }
  Flush();
  for (auto& shard : shards_) shard->SignalDone();
  for (auto& shard : shards_) shard->Join();
  wall_seconds_ = wall_.ElapsedSeconds();
  finished_ = true;
}

RunStats ShardedRuntime::Run(const std::vector<Event>& events,
                             Duration duration) {
  RunStats stats;
  if (!ok() || finished_) return stats;
  Start();
  for (const Event& e : events) Ingest(e);
  Finish();
  stats.wall_seconds = wall_seconds_;
  // Per-query convention of Engine::Run: each event counts once per query.
  stats.events_processed = events.size() * workload_size_;
  stats.results_emitted = merger_.NumCells();
  // Engine::Run convention: report the PEAK, not the post-sweep figure.
  size_t peak = 0;
  for (const auto& shard : shards_) peak += shard->PeakBytes();
  stats.peak_state_bytes = peak;
  (void)duration;
  return stats;
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) out.shards.push_back(shard->stats());
  if (options_.disorder.enabled) {
    out.shard_watermarks.reserve(shards_.size());
    for (const auto& shard : shards_) {
      out.shard_watermarks.push_back(shard->watermark_stats());
    }
  }
  out.events_ingested = events_ingested_;
  out.watermarks_ingested = watermarks_ingested_;
  out.wall_seconds = wall_seconds_;
  // Roll completed swaps up across shards: a swap counts once it
  // completed on EVERY shard; its stall is the slowest shard's dual run.
  size_t completed = shards_.empty() ? 0 : shards_.front()->swap_records().size();
  for (const auto& shard : shards_) {
    completed = std::min(completed, shard->swap_records().size());
  }
  for (size_t k = 0; k < completed; ++k) {
    PlanSwapStats swap;
    for (const auto& shard : shards_) {
      const ShardSwapRecord& r = shard->swap_records()[k];
      swap.id = r.id;
      swap.boundary = r.boundary;
      swap.max_dual_run_seconds =
          std::max(swap.max_dual_run_seconds, r.dual_run_seconds);
      swap.teed_events += r.teed_events;
      swap.peak_dual_bytes += r.peak_dual_bytes;
      swap.post_swap_bytes += r.post_swap_bytes;
      ++swap.shards_completed;
    }
    out.plan_swaps.push_back(swap);
  }
  return out;
}

size_t ShardedRuntime::EstimatedBytes() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->EstimatedBytes();
  return n;
}

LiveState ShardedRuntime::LiveStateSnapshot() const {
  LiveState live;
  for (const auto& shard : shards_) live.MergeFrom(shard->LiveStateSnapshot());
  return live;
}

size_t ShardedRuntime::num_shared_counters() const {
  return shards_.empty() ? 0 : shards_.front()->num_shared_counters();
}

}  // namespace sharon::runtime
