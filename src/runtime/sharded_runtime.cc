#include "src/runtime/sharded_runtime.h"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "src/runtime/partition.h"

namespace sharon::runtime {

// --- IngestPartition -------------------------------------------------------

IngestPartition::IngestPartition(ShardedRuntime* runtime, size_t index)
    : runtime_(runtime),
      index_(index),
      pending_(runtime->shards_.size()),
      stalls_by_shard_(runtime->shards_.size(), 0) {}

EventBatch& IngestPartition::PendingFor(size_t shard_idx) {
  EventBatch& batch = pending_[shard_idx];
  if (batch.capacity() == 0) {
    // Prefer a buffer the worker recycled through the free ring; fall
    // back to a fresh allocation (warm-up, or a worker that has not
    // returned buffers yet).
    BatchChannel& ch = runtime_->shards_[shard_idx]->channel(index_);
    if (ch.free.TryPop(batch)) {
      ++stats_.batches_recycled;
      if (obs_cells_ && obs_cells_->batches_recycled) {
        obs_cells_->batches_recycled->Inc();
      }
    } else {
      ++stats_.batch_allocs;
      if (obs_cells_ && obs_cells_->batch_allocs) {
        obs_cells_->batch_allocs->Inc();
      }
    }
    if (batch.capacity() < runtime_->options_.batch_size) {
      batch.reserve(runtime_->options_.batch_size);
    }
  }
  return batch;
}

void IngestPartition::PushBatch(size_t shard_idx) {
  EventBatch& batch = pending_[shard_idx];
  if (batch.empty()) return;
  Shard& shard = *runtime_->shards_[shard_idx];
  BatchChannel& ch = shard.channel(index_);
  bool stalled = false;
  while (!ch.full.TryPush(std::move(batch))) {
    ++stalls_by_shard_[shard_idx];
    ++stats_.queue_full_stalls;
    if (obs_cells_ && obs_cells_->queue_full_stalls) {
      obs_cells_->queue_full_stalls->Inc();
    }
    if (!stalled && obs_ring_) {
      // One trace event per stall EPISODE (the counter tracks the spins):
      // the episode marks backpressure onset, which is what lines up
      // against watermark stalls in the merged trace.
      obs_ring_->Emit(obs::TraceKind::kQueueFullStall, kNoWatermark,
                      static_cast<int64_t>(shard_idx));
      stalled = true;
    }
    std::this_thread::yield();
  }
  ++stats_.batches;
  if (obs_cells_ && obs_cells_->batches) obs_cells_->batches->Inc();
  batch = EventBatch();  // next PendingFor pulls a recycled buffer
}

void IngestPartition::Ingest(const Event& e) {
  ShardedRuntime& rt = *runtime_;
  // A failed runtime has no shards to index; a finished one has no
  // workers left to drain the queues, so pushing would livelock.
  if (!rt.ok() || rt.finished_) return;
  if (IsWatermark(e)) {
    IngestWatermark(e.time);
    return;
  }
  if (!rt.started_.load(std::memory_order_acquire)) {
    rt.Start();  // otherwise a full channel would stall forever
  }
  const size_t idx = ShardIndexFor(GroupOf(e, rt.partition_), rt.shards_.size());
  EventBatch& batch = PendingFor(idx);
  batch.push_back(e);
  ++stats_.events;
  if (obs_cells_ && obs_cells_->events) obs_cells_->events->Inc();
  if (e.time > high_mark_) high_mark_ = e.time;
  if (batch.size() >= rt.options_.batch_size) PushBatch(idx);
}

void IngestPartition::IngestWatermark(Timestamp t) {
  ShardedRuntime& rt = *runtime_;
  if (!rt.ok() || rt.finished_) return;
  // Without a disorder policy the executors ignore watermarks and the
  // shard.h contract keeps shard watermark() at kNoWatermark — drop the
  // punctuation here so a pre-stamped feed cannot fake a frontier.
  if (!rt.options_.disorder.enabled) return;
  if (!rt.started_.load(std::memory_order_acquire)) rt.Start();
  // Appending to every pending batch keeps the punctuation ordered after
  // all events THIS producer ingested before it — on every shard,
  // through the same channels the events travel. Shards fold it into
  // their per-producer frontier and advance to the minimum.
  const Event punctuation = WatermarkEvent(t);
  for (size_t i = 0; i < pending_.size(); ++i) {
    EventBatch& batch = PendingFor(i);
    batch.push_back(punctuation);
    if (batch.size() >= rt.options_.batch_size) PushBatch(i);
  }
  ++stats_.watermarks;
  if (obs_cells_ && obs_cells_->watermarks) obs_cells_->watermarks->Inc();
}

void IngestPartition::Flush() {
  for (size_t i = 0; i < pending_.size(); ++i) PushBatch(i);
}

// --- ShardedRuntime --------------------------------------------------------

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               const SharingPlan& plan,
                               const RuntimeOptions& options)
    : options_(options) {
  if (workload.empty()) {
    error_ = "empty workload";
    return;
  }
  workload_size_ = workload.size();
  workload_ = &workload;
  InitShardsUniform(workload, plan);
}

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               const CostModel& cost_model,
                               const OptimizerConfig& config,
                               const RuntimeOptions& options)
    : options_(options) {
  // Validate before PlanMultiEngine: planning runs the optimizer per
  // segment, far too expensive to spend on a workload we then reject.
  if (!ValidateForSharding(workload)) return;
  InitShardsMulti(workload, PlanMultiEngine(workload, cost_model, config));
}

ShardedRuntime::ShardedRuntime(const Workload& workload,
                               std::shared_ptr<const MultiEnginePlan> plan,
                               const RuntimeOptions& options)
    : options_(options) {
  if (!ValidateForSharding(workload)) return;
  InitShardsMulti(workload, std::move(plan));
}

bool ShardedRuntime::ValidateForSharding(const Workload& workload) {
  if (workload.empty()) {
    error_ = "empty workload";
    return false;
  }
  workload_size_ = workload.size();
  // All state of a group must live on the group's shard (DESIGN.md), so
  // every segment has to partition by the same attribute.
  partition_ = workload.queries().front().partition_attr;
  for (const Query& q : workload.queries()) {
    if (q.partition_attr != partition_) {
      error_ =
          "sharding requires a common grouping attribute across queries; "
          "this workload mixes partition attributes (run segments in "
          "separate runtimes instead)";
      return false;
    }
  }
  return true;
}

bool ShardedRuntime::InitIngest() {
  if (options_.ingest_partitions == 0) options_.ingest_partitions = 1;
  if (options_.ingest_partitions > 1 && !options_.disorder.enabled) {
    // Without the reorder buffer a group's events would reach its shard
    // in whatever order the producers interleave — silently
    // nondeterministic. Refuse loudly instead.
    error_ =
        "ingest_partitions > 1 requires a disorder policy: only the "
        "watermark reorder buffer restores deterministic time order when "
        "several producers interleave (src/common/watermark.h)";
    return false;
  }
  partitions_.reserve(options_.ingest_partitions);
  for (size_t i = 0; i < options_.ingest_partitions; ++i) {
    partitions_.push_back(
        std::unique_ptr<IngestPartition>(new IngestPartition(this, i)));
  }
  return true;
}

void ShardedRuntime::InitShardsUniform(const Workload& workload,
                                       const SharingPlan& plan) {
  CompiledPlanHandle compiled = CompilePlanShared(workload, plan, &error_);
  if (!compiled) return;
  compiled_ = compiled;
  partition_ = compiled->partition;
  window_ = compiled->window;
  const size_t n = options_.ResolvedShards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, workload, compiled, options_));
    if (!shards_.back()->ok()) {
      error_ = shards_.back()->error();
      return;
    }
  }
  if (!InitIngest()) return;
  InitTelemetry();
  merger_ = ResultMerger(&shards_, partition_);
}

void ShardedRuntime::InitShardsMulti(
    const Workload& workload, std::shared_ptr<const MultiEnginePlan> plan) {
  (void)workload;
  if (!plan || !plan->ok()) {
    error_ = plan ? plan->error : "null multi-engine plan";
    return;
  }
  multi_plan_ = plan;
  const size_t n = options_.ResolvedShards();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, plan, options_));
    if (!shards_.back()->ok()) {
      error_ = shards_.back()->error();
      return;
    }
  }
  if (!InitIngest()) return;
  InitTelemetry();
  merger_ = ResultMerger(&shards_, partition_);
}

void ShardedRuntime::InitTelemetry() {
  if (!options_.obs.enabled()) return;
  telemetry_ = std::make_unique<obs::RuntimeTelemetry>(
      shards_.size(), partitions_.size(), options_.obs);
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->SetObservability(telemetry_->engine_obs(i),
                                 &telemetry_->shard_cells(i),
                                 telemetry_->shard_ring(i));
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    partitions_[p]->obs_cells_ = &telemetry_->ingest_cells(p);
    partitions_[p]->obs_ring_ = telemetry_->partition_ring(p);
  }
}

ShardedRuntime::~ShardedRuntime() {
  if (started_.load(std::memory_order_acquire) && !finished_) Finish();
}

void ShardedRuntime::Start() {
  if (!ok()) return;
  std::lock_guard<std::mutex> lock(start_mu_);
  if (started_.load(std::memory_order_relaxed)) return;
  for (auto& shard : shards_) shard->Start();
  wall_.Reset();
  started_.store(true, std::memory_order_release);
}

void ShardedRuntime::Ingest(const Event& e) {
  if (partitions_.empty()) return;  // failed construction
  partitions_[0]->Ingest(e);
}

void ShardedRuntime::IngestWatermark(Timestamp t) {
  if (partitions_.empty()) return;
  partitions_[0]->IngestWatermark(t);
}

ShardedRuntime::SwapRequest ShardedRuntime::RequestPlanSwap(
    CompiledPlanHandle plan) {
  SwapRequest req;
  auto refuse = [&](OpRefusal code, const char* why) {
    req.code = code;
    req.reason = why;
    // Every refusal is visible to operators: PlanManager counts only its
    // own rejections, so without this the runtime-side refusals (direct
    // callers, races with in-flight ops) would be silent.
    if (telemetry_) {
      obs::ControlCells& cc = telemetry_->control_cells();
      if (cc.swaps_rejected) cc.swaps_rejected->Inc();
      if (obs::TraceRing* ring = telemetry_->control_ring()) {
        ring->Emit(obs::TraceKind::kSwapRejected, kNoWatermark,
                   static_cast<int64_t>(code));
      }
    }
    return req;
  };
  if (!ok() || finished_) {
    return refuse(OpRefusal::kNotRunning, "runtime not running");
  }
  if (!workload_) {
    return refuse(
        OpRefusal::kNotUniform,
        "plan swap requires the uniform-workload runtime (MultiEngine "
        "shards re-plan per segment; rebuild the runtime instead)");
  }
  if (!options_.disorder.enabled) {
    return refuse(
        OpRefusal::kNoDisorderPolicy,
        "plan swap requires a disorder policy: watermarks are what drain "
        "and retire the old engines");
  }
  if (!plan) return refuse(OpRefusal::kBadPlan, "null compiled plan");
  if (plan->partition != partition_ || !(plan->window == window_)) {
    return refuse(OpRefusal::kBadPlan,
                  "new plan was compiled for a different workload");
  }
  for (const auto& shard : shards_) {
    if (shard->swap_in_flight()) {
      return refuse(OpRefusal::kSwapInFlight,
                    "previous swap still in flight");
    }
  }
  // Mutually exclusive with checkpoints, in both orders (the reverse one
  // is enforced in RequestCheckpoint): a swap command staged while the
  // checkpoint marker is still in the queues would let the marker land
  // mid-dual-run, making the cut ambiguous.
  if (checkpoint_job_) {
    if (CheckpointInFlight()) {
      return refuse(OpRefusal::kCheckpointInFlight,
                    "checkpoint still in flight: its marker has not "
                    "reached every shard yet");
    }
    FinalizeCheckpoint();  // all shards done — seal it, then swap freely
  }
  if (!started_.load(std::memory_order_acquire)) Start();

  // Boundary: the close of the last window whose start covers the ingest
  // high-mark — the MAX over all producers' high marks, since with
  // several partitions each has routed events up to its own. Every event
  // routed so far has time <= that high-mark, and the first window
  // closing after B starts at B + slide - length > high-mark — so no
  // event of a new-plan window has been routed yet, and the overlap tee
  // (shard.cc) sees all of them.
  SwapCommand cmd;
  cmd.id = ++swaps_requested_;
  cmd.boundary =
      window_.WindowEnd(window_.LastWindowCovering(IngestHighMark()));
  cmd.plan = std::move(plan);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->PushSwapCommand(cmd)) {
      // Un-arm the shards already staged: their markers were not
      // broadcast yet, so cancelling producer-side is safe and leaves no
      // shard stuck with swap_in_flight set.
      for (size_t j = 0; j < i; ++j) shards_[j]->CancelSwapCommand();
      --swaps_requested_;
      return refuse(OpRefusal::kShardRefused, "shard refused swap command");
    }
  }
  // In-band markers, ordered after everything ingested so far — same
  // broadcast discipline as watermarks, through EVERY partition's
  // channels. Each shard quiesces only once the marker of every channel
  // arrived (Shard::OnControlMarker), so the cut is ordered after
  // everything every producer routed. The caller must have externally
  // synchronized with all producer threads (see the header contract).
  BroadcastControlMarker(SwapMarkerEvent());
  // The accepted plan is the incumbent from here on. A checkpoint is only
  // allowed once no swap is in flight — i.e. once every shard runs THIS
  // plan — so the handle recorded for the checkpoint fingerprint must
  // follow the swap, not stay at the constructor plan.
  compiled_ = cmd.plan;
  req.accepted = true;
  req.id = cmd.id;
  req.boundary = cmd.boundary;
  if (telemetry_) {
    obs::ControlCells& cc = telemetry_->control_cells();
    if (cc.swap_requests) cc.swap_requests->Inc();
    if (obs::TraceRing* ring = telemetry_->control_ring()) {
      ring->Emit(obs::TraceKind::kSwapRequested, kNoWatermark,
                 static_cast<int64_t>(cmd.id));
      ring->Emit(obs::TraceKind::kSwapBoundary, cmd.boundary,
                 static_cast<int64_t>(cmd.id));
    }
  }
  return req;
}

void ShardedRuntime::Flush() {
  for (auto& partition : partitions_) partition->Flush();
}

Timestamp ShardedRuntime::IngestHighMark() const {
  Timestamp high_mark = 0;
  for (const auto& partition : partitions_) {
    high_mark = std::max(high_mark, partition->high_mark());
  }
  return high_mark;
}

void ShardedRuntime::BroadcastControlMarker(const Event& marker) {
  for (auto& partition : partitions_) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      EventBatch& batch = partition->PendingFor(i);
      batch.push_back(marker);
      if (batch.size() >= options_.batch_size) partition->PushBatch(i);
    }
  }
}

// --- checkpoint/restore ------------------------------------------------------

bool ShardedRuntime::CheckpointInFlight() const {
  if (!checkpoint_job_) return false;
  for (const auto& shard : shards_) {
    if (shard->checkpoint_in_flight()) return true;
  }
  return false;
}

ShardedRuntime::CheckpointRequest ShardedRuntime::RequestCheckpoint(
    const std::string& dir) {
  CheckpointRequest req;
  auto refuse = [&](OpRefusal code, const std::string& why) {
    req.code = code;
    req.reason = why;
    // Same operator-visibility discipline as RequestPlanSwap's refusals.
    if (telemetry_) {
      obs::ControlCells& cc = telemetry_->control_cells();
      if (cc.checkpoints_rejected) cc.checkpoints_rejected->Inc();
      if (obs::TraceRing* ring = telemetry_->control_ring()) {
        ring->Emit(obs::TraceKind::kCheckpointRejected, kNoWatermark,
                   static_cast<int64_t>(code));
      }
    }
    return req;
  };
  if (!ok() || finished_) {
    return refuse(OpRefusal::kNotRunning, "runtime not running");
  }
  if (!options_.disorder.enabled) {
    return refuse(
        OpRefusal::kNoDisorderPolicy,
        "checkpoint requires a disorder policy: the consistent cut is "
        "defined by watermark frontiers (src/checkpoint/checkpoint.h)");
  }
  if (checkpoint_job_) {
    if (CheckpointInFlight()) {
      return refuse(OpRefusal::kCheckpointInFlight,
                    "previous checkpoint still in flight");
    }
    FinalizeCheckpoint();
  }
  // Mutually exclusive with plan swaps (regression-tested in both orders,
  // tests/checkpoint_test.cc): a cut during the dual-run would have to
  // serialize two engines plus the tee position — refuse instead, the
  // caller retries once the swap retired.
  for (const auto& shard : shards_) {
    if (shard->swap_in_flight()) {
      return refuse(OpRefusal::kSwapInFlight,
                    "plan swap in flight: checkpoint after it retires");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return refuse(OpRefusal::kIoError,
                  "cannot create checkpoint directory " + dir + ": " +
                      ec.message());
  }
  if (!started_.load(std::memory_order_acquire)) Start();

  const Timestamp high_mark = IngestHighMark();
  CheckpointCommand cmd;
  cmd.id = ++checkpoints_requested_;
  // The watermark-aligned boundary of the cut: the close of the last
  // window whose start covers the ingest high-mark — max over producers,
  // as in RequestPlanSwap (the grid point a plan swap would pick).
  // MultiEngine workloads have several grids; record the high-mark
  // itself.
  cmd.boundary = workload_ && window_.Valid()
                     ? window_.WindowEnd(window_.LastWindowCovering(high_mark))
                     : high_mark;
  cmd.num_shards = shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    cmd.path = dir + "/" + checkpoint::ShardFileName(i);
    if (!shards_[i]->PushCheckpointCommand(cmd)) {
      for (size_t j = 0; j < i; ++j) shards_[j]->CancelCheckpointCommand();
      --checkpoints_requested_;
      return refuse(OpRefusal::kShardRefused,
                    "shard refused checkpoint command");
    }
  }
  // In-band markers, ordered after everything ingested so far — the same
  // broadcast discipline as watermarks and swap markers, through every
  // partition's channels (see RequestPlanSwap).
  BroadcastControlMarker(CheckpointMarkerEvent());
  checkpoint_job_.emplace();
  checkpoint_job_->id = cmd.id;
  checkpoint_job_->boundary = cmd.boundary;
  checkpoint_job_->dir = dir;
  checkpoint_job_->watch.Reset();
  checkpoint_job_->high_mark_at_cut = high_mark;
  for (const auto& partition : partitions_) {
    checkpoint_job_->events_at_cut += partition->stats().events;
  }
  req.accepted = true;
  req.id = cmd.id;
  req.boundary = cmd.boundary;
  if (telemetry_) {
    obs::ControlCells& cc = telemetry_->control_cells();
    if (cc.checkpoint_requests) cc.checkpoint_requests->Inc();
    if (obs::TraceRing* ring = telemetry_->control_ring()) {
      ring->Emit(obs::TraceKind::kCheckpointRequested, cmd.boundary,
                 static_cast<int64_t>(cmd.id));
    }
  }
  return req;
}

ShardedRuntime::CheckpointResult ShardedRuntime::FinalizeCheckpoint() {
  CheckpointResult res;
  res.id = checkpoint_job_->id;
  res.boundary = checkpoint_job_->boundary;
  const std::string dir = checkpoint_job_->dir;
  Timestamp merged = kWatermarkMax;
  uint64_t total_bytes = 0;
  for (const auto& shard : shards_) {
    const Shard::CheckpointOutcome outcome = shard->checkpoint_outcome();
    if (!outcome.error.empty()) {
      res.code = OpRefusal::kIoError;
      res.reason = "shard " + std::to_string(shard->index()) + ": " +
                   outcome.error;
      checkpoint_job_.reset();
      last_checkpoint_ = res;
      return res;
    }
    total_bytes += outcome.bytes;
    // Min over shard frontiers; one shard without a frontier pins the
    // merged value at "none" (kNoWatermark is negative, so min sticks).
    merged = std::min(merged, outcome.watermark);
  }
  checkpoint::Manifest m;
  m.checkpoint_id = res.id;
  m.boundary = res.boundary;
  m.mode = workload_ ? 1 : 2;
  m.num_shards = shards_.size();
  m.num_segments =
      workload_ ? 1 : shards_.front()->multi()->engines().size();
  m.partition = partition_;
  m.plan_fingerprint = workload_ ? checkpoint::PlanFingerprint(*compiled_)
                                 : checkpoint::PlanFingerprint(*multi_plan_);
  m.disorder = options_.disorder;
  m.merged_watermark = merged == kWatermarkMax ? kNoWatermark : merged;
  m.ingest_high_mark = checkpoint_job_->high_mark_at_cut;
  m.swaps_requested = swaps_requested_;
  m.events_ingested = checkpoint_job_->events_at_cut;
  const std::string manifest_path =
      dir + "/" + checkpoint::kManifestFileName;
  const std::string err = checkpoint::SaveManifest(m, manifest_path);
  if (!err.empty()) {
    res.code = OpRefusal::kIoError;
    res.reason = err;
    checkpoint_job_.reset();
    last_checkpoint_ = res;
    return res;
  }
  res.ok = true;
  res.manifest_path = manifest_path;
  res.bytes = total_bytes;
  res.seconds = checkpoint_job_->watch.ElapsedSeconds();
  checkpoint_job_.reset();
  last_checkpoint_ = res;
  if (telemetry_) {
    obs::ControlCells& cc = telemetry_->control_cells();
    if (cc.checkpoints_sealed) cc.checkpoints_sealed->Inc();
    if (cc.checkpoint_bytes) cc.checkpoint_bytes->Add(total_bytes);
    if (obs::TraceRing* ring = telemetry_->control_ring()) {
      ring->Emit(obs::TraceKind::kCheckpointSealed, res.boundary,
                 static_cast<int64_t>(res.id),
                 static_cast<int64_t>(total_bytes));
    }
  }
  return res;
}

ShardedRuntime::CheckpointResult ShardedRuntime::Checkpoint(
    const std::string& dir) {
  const CheckpointRequest req = RequestCheckpoint(dir);
  if (!req.accepted) {
    CheckpointResult res;
    res.code = req.code;
    res.reason = req.reason;
    return res;
  }
  // The markers must reach the workers even if no further event does —
  // from EVERY partition, or a shard would wait forever for the missing
  // channel's marker.
  Flush();
  while (CheckpointInFlight()) std::this_thread::yield();
  return FinalizeCheckpoint();
}

ShardedRuntime::RestoreOutcome ShardedRuntime::Restore(
    const std::string& dir, const RestoreOptions& opts) {
  RestoreOutcome out;
  checkpoint::Manifest m;
  std::string err = checkpoint::LoadManifest(
      dir + "/" + checkpoint::kManifestFileName, &m);
  if (!err.empty()) {
    out.error = "checkpoint manifest: " + err;
    return out;
  }
  if (!opts.workload) {
    out.error = "RestoreOptions::workload is required";
    return out;
  }
  RuntimeOptions ropts = opts.runtime;
  // The policy is part of the checkpoint's semantics (it decides what is
  // late and when windows seal); restoring under a different one would
  // silently change results.
  ropts.disorder = m.disorder;
  std::unique_ptr<ShardedRuntime> rt;
  if (m.mode == 1) {
    rt.reset(new ShardedRuntime(*opts.workload, opts.plan, ropts));
  } else if (m.mode == 2) {
    if (!opts.multi_plan) {
      out.error =
          "checkpoint holds MultiEngine shards: RestoreOptions::multi_plan "
          "is required";
      return out;
    }
    rt.reset(new ShardedRuntime(*opts.workload, opts.multi_plan, ropts));
  } else {
    out.error = "unknown executor mode in manifest";
    return out;
  }
  if (!rt->ok()) {
    out.error = rt->error();
    return out;
  }
  const uint64_t fingerprint =
      m.mode == 1 ? checkpoint::PlanFingerprint(*rt->compiled_)
                  : checkpoint::PlanFingerprint(*rt->multi_plan_);
  if (fingerprint != m.plan_fingerprint) {
    out.error =
        "plan fingerprint mismatch: the supplied workload/plan compiles to "
        "different executor templates than the checkpointed ones";
    return out;
  }
  const size_t num_segments = static_cast<size_t>(m.num_segments);
  const size_t new_shards = rt->shards_.size();
  const bool same_topology = new_shards == m.num_shards;

  // The engine of (new shard j, segment s).
  auto engine_of = [&](size_t j, size_t s) -> Engine* {
    return m.mode == 1
               ? rt->shards_[j]->restore_engine()
               : rt->shards_[j]->restore_multi()->mutable_segment_engine(s);
  };

  // Pass 1: decode every old shard file (integrity-checked frame by
  // frame), so scalars can be composed across old shards before anything
  // is applied.
  std::vector<checkpoint::ShardCheckpointData> data(m.num_shards);
  for (size_t i = 0; i < m.num_shards; ++i) {
    std::vector<uint8_t> bytes;
    const std::string file = dir + "/" + checkpoint::ShardFileName(i);
    err = checkpoint::ReadFileBytes(file, &bytes);
    if (err.empty()) err = checkpoint::DecodeShardCheckpoint(bytes, &data[i]);
    if (err.empty() && (data[i].shard_index != i ||
                        data[i].checkpoint_id != m.checkpoint_id ||
                        data[i].num_shards != m.num_shards ||
                        data[i].mode != m.mode ||
                        data[i].segments.size() != num_segments)) {
      err = "shard header does not match the manifest";
    }
    if (!err.empty()) {
      out.error = file + ": " + err;
      return out;
    }
  }

  // Pass 2: scalars. Frontier fields are identical across the shards of a
  // consistent cut (every shard saw the same punctuation sequence), so
  // they restore onto every new engine; high marks are per-shard data and
  // fold by MAX; monotone counters are per-shard sums — with an unchanged
  // topology they restore per index, otherwise they cannot be split by
  // group and land on new shard 0 (rollups stay exact, per-shard
  // attribution does not — see docs/OPERATIONS.md).
  for (size_t s = 0; s < num_segments; ++s) {
    Engine::ScalarState base = data[0].segments[s].scalars;
    for (size_t i = 1; i < data.size(); ++i) {
      const Engine::ScalarState& o = data[i].segments[s].scalars;
      base.now = std::max(base.now, o.now);
      base.high_mark = std::max(base.high_mark, o.high_mark);
    }
    for (size_t j = 0; j < new_shards; ++j) {
      Engine::ScalarState applied = base;
      if (same_topology) {
        applied = data[j].segments[s].scalars;
        applied.now = base.now;
        applied.high_mark = base.high_mark;
      } else {
        WatermarkStats counters;  // zero counters, frontier fields kept
        counters.watermark = base.wm.watermark;
        counters.safe_point = base.wm.safe_point;
        applied.wm = counters;
        applied.events_since_sweep = 0;
        if (j == 0) {
          for (const auto& d : data) {
            applied.wm.MergeCountersFrom(d.segments[s].scalars.wm);
          }
        }
      }
      engine_of(j, s)->RestoreScalarState(applied);
    }
  }

  // Pass 3: group-keyed state, re-partitioned with the SAME hash the
  // ingest path routes by — the sharding invariant (all state of a group
  // on the group's shard) holds again by construction.
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t s = 0; s < num_segments; ++s) {
      const auto& seg = data[i].segments[s];
      for (const auto& [group, payload] : seg.groups) {
        serde::BinaryReader r(payload);
        const size_t j = ShardIndexFor(group, new_shards);
        err = engine_of(j, s)->LoadGroupState(group, r);
        if (!err.empty()) {
          out.error = checkpoint::ShardFileName(i) + ": group " +
                      std::to_string(group) + ": " + err;
          return out;
        }
      }
      for (const checkpoint::CellRecord& c : seg.cells) {
        Engine* e = engine_of(ShardIndexFor(c.group, new_shards), s);
        ResultCollector& store =
            c.store == 0 ? e->mutable_staged_results() : e->mutable_results();
        store.RestoreCell(c.query, c.window, c.group, c.state);
      }
      for (const Event& e : seg.buffered) {
        const size_t j =
            ShardIndexFor(GroupOf(e, rt->partition_), new_shards);
        engine_of(j, s)->RestoreBufferedEvent(e);
      }
    }
    for (const checkpoint::CellRecord& c : data[i].archive) {
      rt->shards_[ShardIndexFor(c.group, new_shards)]
          ->restore_archive()
          .RestoreCell(c.query, c.window, c.group, c.state);
    }
    const size_t retired_target = same_topology ? i : 0;
    rt->shards_[retired_target]->RestoreRetiredCounters(data[i].retired);
  }

  // Pass 4: frontiers and runtime-level baselines.
  for (auto& shard : rt->shards_) shard->RestoreFrontier(m.merged_watermark);
  rt->swaps_requested_ = m.swaps_requested;
  // Checkpoint ids keep counting across incarnations, so two checkpoints
  // of one logical deployment never share an id (mixing shard files from
  // different checkpoints then fails the header validation above).
  rt->checkpoints_requested_ = m.checkpoint_id;
  // The routed high-mark survives so a post-restore plan swap picks its
  // boundary past everything the PREVIOUS incarnation routed — on every
  // partition, since the boundary is the max over producer high marks and
  // the restored topology may have any producer count.
  for (auto& partition : rt->partitions_) {
    partition->high_mark_ = m.ingest_high_mark;
  }
  rt->restored_ = m;
  out.manifest = m;
  out.runtime = std::move(rt);
  return out;
}

void ShardedRuntime::Finish() {
  if (!started_.load(std::memory_order_acquire) || finished_) return;
  if (options_.disorder.enabled && options_.disorder.close_on_finish) {
    // Closing watermark from EVERY producer: the per-shard minimum over
    // producer frontiers reaches kWatermarkMax, releasing every reorder
    // buffer and finalizing every window, so results() is complete.
    for (auto& partition : partitions_) {
      partition->IngestWatermark(kWatermarkMax);
    }
  }
  Flush();
  for (auto& shard : shards_) shard->SignalDone();
  for (auto& shard : shards_) shard->Join();
  // Producer-side stall counts become visible in ShardStats only now,
  // post-join, so readers never race the producers.
  for (auto& partition : partitions_) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->AddProducerStalls(partition->stalls_by_shard_[s]);
    }
  }
  wall_seconds_ = wall_.ElapsedSeconds();
  finished_ = true;
  // A checkpoint requested asynchronously (RequestCheckpoint without the
  // blocking wrapper) completes here at the latest: the workers are
  // joined, so every marker was processed and every shard file written —
  // seal the manifest (query last_checkpoint() for the outcome).
  if (checkpoint_job_) FinalizeCheckpoint();
}

RunStats ShardedRuntime::Run(const std::vector<Event>& events,
                             Duration duration) {
  RunStats stats;
  if (!ok() || finished_) return stats;
  Start();
  for (const Event& e : events) Ingest(e);
  Finish();
  stats.wall_seconds = wall_seconds_;
  // Per-query convention of Engine::Run: each event counts once per query.
  stats.events_processed = events.size() * workload_size_;
  stats.results_emitted = merger_.NumCells();
  // Engine::Run convention: report the PEAK, not the post-sweep figure.
  size_t peak = 0;
  for (const auto& shard : shards_) peak += shard->PeakBytes();
  stats.peak_state_bytes = peak;
  (void)duration;
  return stats;
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) out.shards.push_back(shard->stats());
  out.ingest.reserve(partitions_.size());
  for (const auto& partition : partitions_) {
    out.ingest.push_back(partition->stats());
  }
  if (options_.disorder.enabled) {
    out.shard_watermarks.reserve(shards_.size());
    for (const auto& shard : shards_) {
      out.shard_watermarks.push_back(shard->watermark_stats());
    }
  }
  for (const auto& partition : partitions_) {
    out.events_ingested += partition->stats().events;
    out.watermarks_ingested += partition->stats().watermarks;
  }
  out.wall_seconds = wall_seconds_;
  // Roll completed swaps up across shards: a swap counts once it
  // completed on EVERY shard; its stall is the slowest shard's dual run.
  size_t completed = shards_.empty() ? 0 : shards_.front()->swap_records().size();
  for (const auto& shard : shards_) {
    completed = std::min(completed, shard->swap_records().size());
  }
  for (size_t k = 0; k < completed; ++k) {
    PlanSwapStats swap;
    for (const auto& shard : shards_) {
      const ShardSwapRecord& r = shard->swap_records()[k];
      swap.id = r.id;
      swap.boundary = r.boundary;
      swap.max_dual_run_seconds =
          std::max(swap.max_dual_run_seconds, r.dual_run_seconds);
      swap.teed_events += r.teed_events;
      swap.peak_dual_bytes += r.peak_dual_bytes;
      swap.post_swap_bytes += r.post_swap_bytes;
      ++swap.shards_completed;
    }
    out.plan_swaps.push_back(swap);
  }
  return out;
}

size_t ShardedRuntime::EstimatedBytes() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->EstimatedBytes();
  return n;
}

LiveState ShardedRuntime::LiveStateSnapshot() const {
  LiveState live;
  for (const auto& shard : shards_) live.MergeFrom(shard->LiveStateSnapshot());
  return live;
}

size_t ShardedRuntime::num_shared_counters() const {
  return shards_.empty() ? 0 : shards_.front()->num_shared_counters();
}

void ShardedRuntime::FoldFinalStats() const {
  const RuntimeStats rs = stats();
  auto set = [](obs::GaugeCell* g, int64_t v) {
    if (g) g->Set(v);
  };
  for (size_t i = 0; i < shards_.size(); ++i) {
    obs::ShardCells& c = telemetry_->shard_cells(i);
    const ShardStats& s = rs.shards[i];
    set(c.busy_micros, static_cast<int64_t>(s.busy_seconds * 1e6));
    set(c.idle_spins, static_cast<int64_t>(s.idle_spins));
    set(c.queue_full_stalls, static_cast<int64_t>(s.queue_full_stalls));
    if (i < rs.shard_watermarks.size()) {
      const WatermarkStats& w = rs.shard_watermarks[i];
      set(c.evicted_panes, static_cast<int64_t>(w.evicted_panes));
      set(c.evicted_groups, static_cast<int64_t>(w.evicted_groups));
      set(c.buffered_peak, static_cast<int64_t>(w.buffered_peak));
    }
  }
  obs::ControlCells& cc = telemetry_->control_cells();
  set(cc.wall_micros, static_cast<int64_t>(rs.wall_seconds * 1e6));
  set(cc.completed_swaps, static_cast<int64_t>(rs.CompletedSwaps()));
  int64_t teed = 0;
  for (const PlanSwapStats& p : rs.plan_swaps) {
    teed += static_cast<int64_t>(p.teed_events);
  }
  set(cc.swap_teed_events, teed);
  set(cc.swap_max_stall_micros,
      static_cast<int64_t>(rs.MaxSwapStallSeconds() * 1e6));
}

obs::MetricsSnapshot ShardedRuntime::TelemetrySnapshot() const {
  if (!telemetry_) return {};
  // Post-run, the RuntimeStats rollups (worker-owned plain counters,
  // unreadable mid-run) become safe to read — fold them onto their
  // gauges so the snapshot is the one export surface for everything.
  if (finished_ && options_.obs.metrics) FoldFinalStats();
  return telemetry_->Snapshot();
}

std::vector<obs::TraceEvent> ShardedRuntime::DumpTrace() const {
  if (!telemetry_) return {};
  return telemetry_->DumpTrace();
}

}  // namespace sharon::runtime
