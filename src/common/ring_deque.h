// RingDeque: power-of-two circular buffer with deque semantics.
//
// SegmentCounter's live starts and ChainRunner's snapshot stages are
// strict FIFO structures (push_back on arrival, pop_front on window
// expiration) with positional reads in between. `std::deque` serves that
// access pattern but churns chunk allocations in steady state: every
// ~chunk of pushes allocates a node the matching pops free again.
// RingDeque keeps one contiguous power-of-two slot array and moves head/
// tail cursors instead — once it has grown to the high-water mark of a
// run, pushes and pops never allocate again (the zero-allocation
// invariant, tests/zero_alloc_test.cc).
//
// T must be default-constructible and move-assignable; pop_front resets
// the vacated slot to T() so popped elements release their resources.

#ifndef SHARON_COMMON_RING_DEQUE_H_
#define SHARON_COMMON_RING_DEQUE_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace sharon {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Element `i` positions behind the front (0 = oldest).
  T& operator[](size_t i) {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T&& v) {
    if (size_ == slots_.size()) Grow();
    slots_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    slots_[head_] = T();  // release the popped element's resources
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void Grow() {
    const size_t cap = slots_.empty() ? kMinCapacity : slots_.size() * 2;
    std::vector<T> wider(cap);
    for (size_t i = 0; i < size_; ++i) {
      wider[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(wider);
    mask_ = cap - 1;
    head_ = 0;
  }

  static constexpr size_t kMinCapacity = 8;

  std::vector<T> slots_;
  size_t mask_ = 0;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace sharon

#endif  // SHARON_COMMON_RING_DEQUE_H_
