// Global operator new/delete replacement with allocation counting.
// See alloc_stats.h for the contract. The replacements forward to
// std::malloc / std::free, which keeps them compatible with sanitizer
// allocators (ASan intercepts malloc underneath).

#include "src/common/alloc_stats.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace sharon::alloc_stats {
namespace {

// Relaxed: the counters are measurement, not synchronization.
std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

void* CountedAlloc(std::size_t n) {
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p != nullptr) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  return p;
}

void CountedFree(void* p) noexcept {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}

void* CountedAlignedAlloc(std::size_t n, std::align_val_t align) {
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded);
  if (p != nullptr) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  return p;
}

}  // namespace

Counters Snapshot() {
  Counters c;
  c.allocations = g_allocations.load(std::memory_order_relaxed);
  c.frees = g_frees.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  return c;
}

}  // namespace sharon::alloc_stats

// --- global replacement (one definition per program; pulled in whenever
// --- a binary references alloc_stats::Snapshot) -----------------------

void* operator new(std::size_t n) {
  void* p = sharon::alloc_stats::CountedAlloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = sharon::alloc_stats::CountedAlloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return sharon::alloc_stats::CountedAlloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return sharon::alloc_stats::CountedAlloc(n);
}

void operator delete(void* p) noexcept { sharon::alloc_stats::CountedFree(p); }
void operator delete[](void* p) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete(void* p, std::size_t) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  sharon::alloc_stats::CountedFree(p);
}

// Over-aligned forms (alignas(64) queue cursors etc.).

void* operator new(std::size_t n, std::align_val_t a) {
  void* p = sharon::alloc_stats::CountedAlignedAlloc(n, a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t a) {
  void* p = sharon::alloc_stats::CountedAlignedAlloc(n, a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p, std::align_val_t) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  sharon::alloc_stats::CountedFree(p);
}
