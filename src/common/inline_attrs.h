// InlineAttrs: small-buffer attribute storage for Event.
//
// Every shipped schema carries two attributes (group id + value), so the
// seed's `std::vector<AttrValue>` paid one heap allocation, one pointer
// indirection and 24 bytes of header per event for a payload that fits in
// a cache line. InlineAttrs keeps up to kInlineCapacity values inside the
// event itself — copying an event is a flat memcpy-sized copy, an
// EventBatch is contiguous event payloads, and the steady-state ingest
// path allocates nothing. Wider schemas than the inline capacity still
// work: the array spills to the heap (tests/hotpath_diff_test.cc covers
// the spill path), it is only the shipped hot path that is guaranteed
// allocation-free.

#ifndef SHARON_COMMON_INLINE_ATTRS_H_
#define SHARON_COMMON_INLINE_ATTRS_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace sharon {

/// Integer attribute value carried by an event (mirrors event.h; defined
/// here so this header stays dependency-free).
using InlineAttrValue = int64_t;

/// Small-buffer array of attribute values. Values up to kInlineCapacity
/// live inline (no allocation); longer schemas spill to the heap.
class InlineAttrs {
 public:
  /// Inline slots. Covers every shipped schema (TX/LR/EC/drift use 2);
  /// raising it trades event size for spill headroom.
  static constexpr uint32_t kInlineCapacity = 4;

  InlineAttrs() = default;

  InlineAttrs(std::initializer_list<InlineAttrValue> init) {
    assign(init.begin(), init.size());
  }

  InlineAttrs(const InlineAttrs& o) { assign(o.data(), o.size_); }

  InlineAttrs(InlineAttrs&& o) noexcept { MoveFrom(o); }

  InlineAttrs& operator=(const InlineAttrs& o) {
    if (this != &o) assign(o.data(), o.size_);
    return *this;
  }

  InlineAttrs& operator=(InlineAttrs&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(o);
    }
    return *this;
  }

  InlineAttrs& operator=(std::initializer_list<InlineAttrValue> init) {
    assign(init.begin(), init.size());
    return *this;
  }

  ~InlineAttrs() { Release(); }

  /// Replaces the contents with `n` values from `src` (reuses any
  /// existing spill buffer that is large enough).
  void assign(const InlineAttrValue* src, size_t n) {
    Reserve(n);
    InlineAttrValue* dst = slots();
    for (size_t i = 0; i < n; ++i) dst[i] = src[i];
    size_ = static_cast<uint32_t>(n);
  }

  void push_back(InlineAttrValue v) {
    if (size_ == capacity()) Grow();
    slots()[size_++] = v;
  }

  void clear() { size_ = 0; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the values spilled past the inline buffer to the heap.
  bool spilled() const { return heap_ != nullptr; }

  InlineAttrValue operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  InlineAttrValue& operator[](size_t i) {
    assert(i < size_);
    return slots()[i];
  }

  const InlineAttrValue* data() const { return heap_ ? heap_ : inline_; }
  const InlineAttrValue* begin() const { return data(); }
  const InlineAttrValue* end() const { return data() + size_; }

  bool operator==(const InlineAttrs& o) const {
    return size_ == o.size_ && std::equal(begin(), end(), o.begin());
  }

 private:
  InlineAttrValue* slots() { return heap_ ? heap_ : inline_; }
  uint32_t capacity() const { return heap_ ? heap_cap_ : kInlineCapacity; }

  void Reserve(size_t n) {
    if (n > capacity()) Spill(n);
  }

  void Grow() { Spill(static_cast<size_t>(capacity()) * 2); }

  void Spill(size_t cap) {
    InlineAttrValue* wider = new InlineAttrValue[cap];
    const InlineAttrValue* src = data();
    for (size_t i = 0; i < size_; ++i) wider[i] = src[i];
    delete[] heap_;
    heap_ = wider;
    heap_cap_ = static_cast<uint32_t>(cap);
  }

  void MoveFrom(InlineAttrs& o) noexcept {
    size_ = o.size_;
    heap_ = o.heap_;
    heap_cap_ = o.heap_cap_;
    if (!heap_) {
      for (uint32_t i = 0; i < size_; ++i) inline_[i] = o.inline_[i];
    }
    o.heap_ = nullptr;
    o.heap_cap_ = 0;
    o.size_ = 0;
  }

  void Release() {
    delete[] heap_;
    heap_ = nullptr;
    heap_cap_ = 0;
    size_ = 0;
  }

  InlineAttrValue inline_[kInlineCapacity];
  InlineAttrValue* heap_ = nullptr;  ///< non-null once spilled
  uint32_t heap_cap_ = 0;
  uint32_t size_ = 0;
};

}  // namespace sharon

#endif  // SHARON_COMMON_INLINE_ATTRS_H_
