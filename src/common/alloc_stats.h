// Process-wide heap allocation counters (the hot-path measurement hook).
//
// alloc_stats.cc replaces the global `operator new` / `operator delete`
// family with forwarding versions that bump relaxed atomic counters, so
// benches and tests can measure ALLOCATIONS PER EVENT directly instead of
// inferring them: snapshot Counters() around a run and diff. The
// replacement is linked into every binary that links the sharon library
// (tests, benches, examples); the cost is one relaxed fetch_add per
// allocation, which is noise next to the allocation itself.
//
// The executor's zero-allocation contract (DESIGN.md "Hot-path memory
// layout") is regression-tested with exactly this hook: after warm-up,
// Engine::Run performs zero steady-state allocations per event
// (tests/zero_alloc_test.cc).

#ifndef SHARON_COMMON_ALLOC_STATS_H_
#define SHARON_COMMON_ALLOC_STATS_H_

#include <cstddef>
#include <cstdint>

namespace sharon::alloc_stats {

/// Snapshot of the process-wide allocation counters.
struct Counters {
  uint64_t allocations = 0;  ///< operator new calls since process start
  uint64_t frees = 0;        ///< operator delete calls
  uint64_t bytes = 0;        ///< bytes requested through operator new

  Counters operator-(const Counters& o) const {
    return {allocations - o.allocations, frees - o.frees, bytes - o.bytes};
  }
};

/// Current counter values (relaxed reads; exact between single-threaded
/// measurement points, a near-exact snapshot under concurrency).
Counters Snapshot();

}  // namespace sharon::alloc_stats

#endif  // SHARON_COMMON_ALLOC_STATS_H_
