// Time model: integer ticks, strictly ordered.
//
// The paper (Def. 1) requires a strict temporal order between the events of a
// sequence. We therefore represent time as int64 "ticks" and require stream
// generators to emit strictly increasing timestamps; kTicksPerSecond ticks
// make up one wall-clock "second" of stream time so that per-second event
// rates of a few thousand events still get unique timestamps.

#ifndef SHARON_COMMON_TIME_H_
#define SHARON_COMMON_TIME_H_

#include <cstdint>

namespace sharon {

/// A point in stream time, measured in ticks. Non-negative.
using Timestamp = int64_t;

/// A length of stream time, measured in ticks.
using Duration = int64_t;

/// Number of ticks per second of stream time. Strict ordering allows at
/// most one event per tick, so this bounds the representable stream rate;
/// 10k ticks/second comfortably covers the paper's rates (up to 4k
/// events/second).
inline constexpr Duration kTicksPerSecond = 10000;

/// Convenience conversion: seconds of stream time to ticks.
constexpr Duration Seconds(int64_t s) { return s * kTicksPerSecond; }

/// Convenience conversion: minutes of stream time to ticks.
constexpr Duration Minutes(int64_t m) { return Seconds(m * 60); }

}  // namespace sharon

#endif  // SHARON_COMMON_TIME_H_
