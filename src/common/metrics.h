// Measurement utilities used by executors, optimizers and benches:
//  - StopWatch: wall-clock timing.
//  - MemoryMeter: explicit state-byte accounting with peak tracking. The
//    paper's "peak memory" metric is the maximal memory for storing
//    aggregates, events and sequences (for executors) or the graph and plan
//    levels (for optimizers); we account those bytes explicitly rather than
//    scraping the allocator, which makes measurements deterministic.

#ifndef SHARON_COMMON_METRICS_H_
#define SHARON_COMMON_METRICS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace sharon {

/// Wall-clock stopwatch (steady clock).
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Tracks current and peak logical state size in bytes.
class MemoryMeter {
 public:
  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void Sub(size_t bytes) { current_ -= bytes < current_ ? bytes : current_; }

  /// Replaces the current figure (used when a component recomputes its
  /// footprint wholesale).
  void Set(size_t bytes) {
    current_ = bytes;
    if (current_ > peak_) peak_ = current_;
  }

  size_t current() const { return current_; }
  size_t peak() const { return peak_; }

  void ResetPeak() { peak_ = current_; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

/// Summary statistics reported by executor runs.
struct RunStats {
  uint64_t events_processed = 0;
  uint64_t results_emitted = 0;
  double wall_seconds = 0;
  size_t peak_state_bytes = 0;
  bool finished = true;  ///< false when a work budget was exhausted (DNF).

  /// Events per wall second; 0 when nothing ran.
  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(events_processed) / wall_seconds : 0;
  }

  /// Average per-window processing latency in milliseconds.
  double LatencyMillisPerWindow(uint64_t windows) const {
    return windows > 0 ? wall_seconds * 1e3 / static_cast<double>(windows) : 0;
  }
};

}  // namespace sharon

#endif  // SHARON_COMMON_METRICS_H_
