// Watermarks and the bounded-disorder contract.
//
// The paper (Def. 1) and the seed executors assume in-order arrival. Real
// feeds are disordered, so the engines support a *bounded-disorder*
// relaxation: an event with occurrence time t may arrive any time before
// the stream's observed high-mark passes t + max_lateness. A watermark
// W(t) is a punctuation asserting "the high-mark has reached t": combined
// with the lateness bound it makes every tick strictly below
// t - max_lateness (the SAFE POINT) complete — no event below the safe
// point will ever arrive again. That is what lets an engine
//   1. release reorder-buffered events below the safe point, in time
//      order, into the order-dependent A-Seq machinery,
//   2. finalize every window whose close does not exceed the safe point
//      (all of its events have been processed) exactly once, and
//   3. evict counter starts, chain snapshot panes and whole groups that
//      can no longer reach any open window,
// turning grow-forever execution into O(active panes) state. Events that
// violate the contract (arrive below the safe point) are dropped and
// counted — never silently absorbed (see WatermarkStats::late_dropped).
//
// Watermarks travel in-band as punctuation events (type kInvalidType) so
// they keep their position relative to data events through batch queues.

#ifndef SHARON_COMMON_WATERMARK_H_
#define SHARON_COMMON_WATERMARK_H_

#include <cstdint>
#include <limits>

#include "src/common/event.h"
#include "src/common/time.h"

namespace sharon {

/// "No watermark observed yet" sentinel (all real watermarks are >= 0).
inline constexpr Timestamp kNoWatermark = -1;

/// Watermark value that closes a stream: large enough to finalize every
/// window, small enough that window arithmetic on it cannot overflow.
inline constexpr Timestamp kWatermarkMax =
    std::numeric_limits<Timestamp>::max() / 4;

/// A watermark punctuation: the stream's observed time high-mark.
struct Watermark {
  Timestamp time = kNoWatermark;

  bool valid() const { return time >= 0; }
  bool operator==(const Watermark&) const = default;
};

/// The bounded-disorder contract an engine runs under. Disabled (the
/// default) preserves the seed behaviour exactly: events are processed on
/// arrival and must be in order; watermarks are ignored.
struct DisorderPolicy {
  /// Enables the reorder buffer, watermark-driven finalization and
  /// eviction. Must be set before the first event.
  bool enabled = false;

  /// Maximum ticks an event may trail the observed high-mark. 0 means
  /// "ordered ingestion with finalization/eviction" — still useful, it is
  /// the long-stream bounded-memory mode.
  Duration max_lateness = 0;

  /// When false, watermarks still release buffered events and finalize
  /// windows but never evict state (for differential tests and benches
  /// proving eviction changes no finalized value).
  bool evict = true;

  /// Runtime-level knob: broadcast a closing watermark on Finish() so
  /// every window finalizes. Disable to observe a stalled watermark.
  bool close_on_finish = true;

  /// The safe point implied by watermark `wm`: every tick strictly below
  /// it is complete. kNoWatermark if no watermark has been seen.
  Timestamp SafePoint(Timestamp wm) const {
    if (wm < 0) return kNoWatermark;
    return wm >= max_lateness ? wm - max_lateness : 0;
  }
};

/// Builds the in-band punctuation event for watermark `t`.
inline Event WatermarkEvent(Timestamp t) {
  Event e;
  e.time = t;
  e.type = kInvalidType;
  return e;
}

/// True if `e` is a watermark punctuation rather than a data event.
inline bool IsWatermark(const Event& e) { return e.type == kInvalidType; }

/// Counters of one watermarked executor. All monotone over a run.
struct WatermarkStats {
  Timestamp watermark = kNoWatermark;   ///< highest watermark applied
  Timestamp safe_point = kNoWatermark;  ///< watermark - max_lateness
  uint64_t late_dropped = 0;      ///< events below the safe point, dropped
  uint64_t evicted_panes = 0;     ///< counter starts + snapshot panes freed
  uint64_t evicted_groups = 0;    ///< group states erased outright
  uint64_t finalized_windows = 0; ///< result-carrying windows sealed
  uint64_t finalized_cells = 0;   ///< result cells emitted by finalization
  uint64_t suppressed_cells = 0;  ///< cells discarded below a results floor
  uint64_t regressions = 0;       ///< non-advancing watermarks (ignored)
  uint64_t buffered_peak = 0;     ///< reorder-buffer high-mark (events)

  /// Folds another executor's COUNTERS in, leaving watermark/safe_point
  /// untouched — for rollups whose frontier comes from elsewhere (e.g. a
  /// retired pre-swap engine, whose watermark was deliberately capped at
  /// its swap boundary and would poison a MIN).
  void MergeCountersFrom(const WatermarkStats& o) {
    late_dropped += o.late_dropped;
    evicted_panes += o.evicted_panes;
    evicted_groups += o.evicted_groups;
    finalized_windows += o.finalized_windows;
    finalized_cells += o.finalized_cells;
    suppressed_cells += o.suppressed_cells;
    regressions += o.regressions;
    buffered_peak += o.buffered_peak;
  }

  /// Folds another executor's counters in (MultiEngine / runtime rollups).
  /// Watermarks combine by MIN: the merged safe point is only as far as
  /// the slowest participant.
  void MergeFrom(const WatermarkStats& o) {
    if (watermark == kNoWatermark || o.watermark < watermark) {
      watermark = o.watermark;
    }
    if (safe_point == kNoWatermark || o.safe_point < safe_point) {
      safe_point = o.safe_point;
    }
    MergeCountersFrom(o);
  }
};

/// Live-state census of one executor, the quantity the long-stream bench
/// proves bounded: with eviction every component is O(active panes), not
/// O(stream length).
struct LiveState {
  size_t groups = 0;           ///< instantiated group states
  size_t counter_starts = 0;   ///< live A-Seq start entries
  size_t snapshot_panes = 0;   ///< pane buckets across chain snapshots
  size_t pending_windows = 0;  ///< result-carrying windows not yet final
  size_t buffered_events = 0;  ///< events waiting in the reorder buffer

  size_t LivePanes() const {
    return counter_starts + snapshot_panes + pending_windows;
  }

  void MergeFrom(const LiveState& o) {
    groups += o.groups;
    counter_starts += o.counter_starts;
    snapshot_panes += o.snapshot_panes;
    pending_windows += o.pending_windows;
    buffered_events += o.buffered_events;
  }
};

}  // namespace sharon

#endif  // SHARON_COMMON_WATERMARK_H_
