// Binary serialization primitives for the checkpoint subsystem
// (src/checkpoint/): an endian-stable, bounds-checked byte-buffer writer/
// reader pair plus save/load helpers for the hot-path containers
// (InlineAttrs, RingDeque, FlatMap) and a CRC-32 for frame integrity.
//
// Conventions — every consumer of these primitives follows them, which is
// what makes a checkpoint written on one machine readable on another:
//  - all multi-byte integers are LITTLE-ENDIAN, assembled byte by byte
//    (no reinterpret_cast of the buffer, so host endianness never leaks);
//  - doubles travel as the IEEE-754 bit pattern in a u64, so an AggState
//    restores BIT-IDENTICAL — the checkpoint tests compare cells with
//    operator==, not with a tolerance;
//  - variable-size payloads are length-prefixed (u64), so a reader can
//    skip or route a record without understanding its contents — the
//    restore-with-resharding router moves per-group payloads between
//    shards exactly this way;
//  - readers never trust lengths: every read is bounds-checked and flips
//    a sticky ok() flag instead of running past the buffer, so a
//    truncated or corrupted frame fails loudly (and safely) at decode.

#ifndef SHARON_COMMON_SERDE_H_
#define SHARON_COMMON_SERDE_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/inline_attrs.h"
#include "src/common/ring_deque.h"

namespace sharon::serde {

/// Appends little-endian primitives to a growable byte buffer.
class BinaryWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  /// IEEE-754 bit pattern: restores bit-identical, NaN payloads included.
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

  void Bytes(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Length-prefixed string.
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Reserves a u64 length slot for a nested block; pair with EndBlock.
  /// This is the routing primitive: a reader that does not understand the
  /// block can still skip or forward it wholesale.
  size_t BeginBlock() {
    const size_t mark = buf_.size();
    U64(0);
    return mark;
  }

  /// Patches the length slot reserved by BeginBlock with the number of
  /// bytes written since.
  void EndBlock(size_t mark) {
    const uint64_t len = buf_.size() - mark - 8;
    for (int i = 0; i < 8; ++i) {
      buf_[mark + static_cast<size_t>(i)] = static_cast<uint8_t>(len >> (8 * i));
    }
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a byte span. All reads after
/// an overrun return zero values; check ok() once at the end of a decode
/// instead of after every field.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  int64_t I64() { return static_cast<int64_t>(U64()); }

  double F64() { return std::bit_cast<double>(U64()); }

  std::string Str() {
    const uint64_t n = U64();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  /// Consumes a BeginBlock/EndBlock payload and returns a sub-reader over
  /// it (the routing primitive's read side).
  BinaryReader Block() {
    const uint64_t n = U64();
    if (!Need(n)) return BinaryReader(nullptr, 0);
    BinaryReader sub(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return sub;
  }

  /// The raw bytes of a BeginBlock/EndBlock payload (for forwarding a
  /// record to another consumer without re-encoding).
  std::vector<uint8_t> BlockBytes() {
    const uint64_t n = U64();
    return Bytes(n);
  }

  /// The next `n` raw bytes as one bulk copy (empty + !ok() on overrun).
  std::vector<uint8_t> Bytes(uint64_t n) {
    if (!Need(n)) return {};
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<size_t>(n);
    return out;
  }

  /// Everything from the cursor to the end, as one bulk copy.
  std::vector<uint8_t> Rest() { return Bytes(remaining()); }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte span. Table is
/// built on first use; cost is irrelevant on the checkpoint path.
inline uint32_t Crc32(const uint8_t* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

// --- container helpers ------------------------------------------------------

/// InlineAttrs: count + values. The inline/spilled distinction is a
/// storage detail and deliberately not serialized — a restored event
/// re-decides based on its own width.
inline void SaveAttrs(BinaryWriter& w, const InlineAttrs& attrs) {
  w.U64(attrs.size());
  for (InlineAttrValue v : attrs) w.I64(v);
}

inline void LoadAttrs(BinaryReader& r, InlineAttrs& attrs) {
  const uint64_t n = r.U64();
  attrs.clear();
  for (uint64_t i = 0; i < n && r.ok(); ++i) attrs.push_back(r.I64());
}

/// RingDeque: element count + elements front-to-back via `elem(w, e)`.
/// Restore pushes back in order, so positional indices (StartId offsets)
/// are preserved; head/mask cursors are storage details and not saved.
template <typename T, typename Fn>
void SaveRingDeque(BinaryWriter& w, const RingDeque<T>& rd, Fn&& elem) {
  w.U64(rd.size());
  for (size_t i = 0; i < rd.size(); ++i) elem(w, rd[i]);
}

template <typename T, typename Fn>
void LoadRingDeque(BinaryReader& r, RingDeque<T>& rd, Fn&& elem) {
  rd.clear();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    T v{};
    elem(r, v);
    rd.push_back(std::move(v));
  }
}

/// FlatMap: entry count + length-prefixed (key, payload) records in
/// iteration order. Iteration order is NOT deterministic across tables —
/// restore must be order-insensitive (both executor uses are: group
/// tables and result rows are keyed stores). The length prefix is what
/// lets the resharding router forward a record to a different shard
/// without parsing the payload.
template <typename Key, typename T, typename Hash, typename Eq, typename Fn>
void SaveFlatMap(BinaryWriter& w, const FlatMap<Key, T, Hash, Eq>& map,
                 Fn&& entry) {
  w.U64(map.size());
  for (const auto& [key, value] : map) {
    const size_t mark = w.BeginBlock();
    entry(w, key, value);
    w.EndBlock(mark);
  }
}

}  // namespace sharon::serde

#endif  // SHARON_COMMON_SERDE_H_
