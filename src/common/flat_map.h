// FlatMap: open-addressing robin-hood hash map for the executor hot path.
//
// The seed kept per-group executor state and result cells in
// `std::unordered_map`, paying one heap node per entry and a pointer
// chase per event. FlatMap stores entries flat in one slot array with
// robin-hood probing (each entry records its probe distance; inserts
// displace richer entries, lookups stop as soon as they out-distance the
// slot), so a lookup is a short linear scan over contiguous memory and an
// insert into a warmed table allocates nothing. Deletion uses backward
// shifting — the cluster behind the hole slides back one slot — so there
// are no tombstones and probe distances stay tight under the group churn
// that watermark eviction produces.
//
// Contracts and quirks callers rely on:
//  - Key and T must be default-constructible and move-assignable (empty
//    slots hold default-constructed pairs; erase move-assigns).
//  - clear() keeps the slot array: a table that reached its steady-state
//    capacity never allocates again (the zero-allocation invariant,
//    tests/zero_alloc_test.cc).
//  - erase(it) returns an iterator that continues the sweep without
//    skipping entries. Because backward shifting can move an entry of a
//    cluster that wraps the array end from the front of the array back
//    to the tail, a sweep that erases may REVISIT a relocated entry;
//    callers must be idempotent about revisits (both executor sweeps —
//    group eviction and window extraction — are).

#ifndef SHARON_COMMON_FLAT_MAP_H_
#define SHARON_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace sharon {

/// splitmix64 finalizer: turns dense integer keys (vehicle ids, group
/// values) into well-spread hashes for power-of-two tables.
struct Mix64Hash {
  size_t operator()(uint64_t x) const {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
  size_t operator()(int64_t x) const {
    return (*this)(static_cast<uint64_t>(x));
  }
};

template <typename Key, typename T, typename Hash = std::hash<Key>,
          typename KeyEq = std::equal_to<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Map* map, size_t slot) : map_(map), slot_(slot) {}
    /// Const iterators convert from mutable ones (find / erase interop).
    /// Template so it is never the copy constructor.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& o)  // NOLINT(google-explicit-constructor)
        : map_(o.map()), slot_(o.slot()) {}

    Ref operator*() const { return map_->slots_[slot_]; }
    Ptr operator->() const { return &map_->slots_[slot_]; }

    Iter& operator++() {
      ++slot_;
      SkipEmpty();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++*this;
      return tmp;
    }

    bool operator==(const Iter& o) const { return slot_ == o.slot_; }

    Map* map() const { return map_; }
    size_t slot() const { return slot_; }

    void SkipEmpty() {
      while (slot_ < map_->dist_.size() && map_->dist_[slot_] == 0) ++slot_;
    }

   private:
    Map* map_ = nullptr;
    size_t slot_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return dist_.size(); }

  /// Drops every entry but keeps the slot arrays (steady-state reuse).
  void clear() {
    for (size_t i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        slots_[i] = value_type();
        dist_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Grows the table so `n` entries fit without rehashing.
  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kLoadDen) cap <<= 1;
    if (cap > dist_.size()) Rehash(cap);
  }

  iterator begin() {
    iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  iterator end() { return iterator(this, dist_.size()); }
  const_iterator begin() const {
    const_iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  const_iterator end() const { return const_iterator(this, dist_.size()); }

  iterator find(const Key& key) {
    const size_t slot = FindSlot(key);
    return slot == kNpos ? end() : iterator(this, slot);
  }
  const_iterator find(const Key& key) const {
    const size_t slot = FindSlot(key);
    return slot == kNpos ? end() : const_iterator(this, slot);
  }

  bool contains(const Key& key) const { return FindSlot(key) != kNpos; }

  /// Value for `key`, default-constructed and inserted when absent.
  T& operator[](const Key& key) {
    return slots_[InsertSlot(key)].second;
  }

  /// Inserts (key, T(args...)) when absent; returns {slot it, inserted}.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    const size_t before = size_;
    const size_t slot = InsertSlot(key);
    const bool inserted = size_ != before;
    if (inserted) slots_[slot].second = T(std::forward<Args>(args)...);
    return {iterator(this, slot), inserted};
  }

  /// Erases the entry at `it`. Returns an iterator continuing the sweep
  /// (the same slot, now holding the backward-shifted successor or
  /// skipped forward past empties). See the header comment for the
  /// wrap-around revisit caveat.
  iterator erase(const_iterator it) {
    size_t idx = it.slot();
    assert(idx < dist_.size() && dist_[idx] != 0);
    size_t next = (idx + 1) & mask_;
    while (dist_[next] > 1) {
      slots_[idx] = std::move(slots_[next]);
      dist_[idx] = static_cast<uint8_t>(dist_[next] - 1);
      idx = next;
      next = (next + 1) & mask_;
    }
    slots_[idx] = value_type();  // release the moved-from tail slot
    dist_[idx] = 0;
    --size_;
    iterator out(this, it.slot());
    out.SkipEmpty();
    return out;
  }

  /// Erases `key` when present; returns the number of entries removed.
  size_t erase(const Key& key) {
    const size_t slot = FindSlot(key);
    if (slot == kNpos) return 0;
    erase(const_iterator(this, slot));
    return 1;
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;
  // Grow at 3/4 load: robin-hood keeps mean probe length ~1-2 there,
  // which measures faster on the per-event emission path than the denser
  // 7/8 table despite the extra memory.
  static constexpr size_t kMaxLoadNum = 3;
  static constexpr size_t kLoadDen = 4;
  static constexpr uint8_t kMaxDist = 255;

  size_t FindSlot(const Key& key) const {
    if (size_ == 0) return kNpos;
    size_t idx = Hash{}(key)&mask_;
    uint8_t d = 1;
    for (;;) {
      const uint8_t sd = dist_[idx];
      if (sd < d) return kNpos;  // an occupant this poor would sit here
      if (sd == d && KeyEq{}(slots_[idx].first, key)) return idx;
      // Chains never exceed kMaxDist (inserts rehash at the cap), so a
      // probe this long proves absence — and stops `d` from wrapping.
      if (d == kMaxDist) return kNpos;
      idx = (idx + 1) & mask_;
      ++d;
    }
  }

  /// Slot of `key`, inserting a default-constructed entry when absent.
  size_t InsertSlot(const Key& key) {
    if (dist_.empty() || (size_ + 1) * kLoadDen > dist_.size() * kMaxLoadNum) {
      Rehash(dist_.empty() ? kMinCapacity : dist_.size() * 2);
    }
    for (;;) {
      size_t slot = TryInsert(key);
      // A mid-bubble distance overflow rehashes with the key already
      // placed (see TryInsert); pick it up instead of growing again.
      if (slot == kNpos) slot = FindSlot(key);
      if (slot != kNpos) return slot;
      Rehash(dist_.size() * 2);  // probe distance overflow: spread out
    }
  }

  /// Robin-hood insert of `key`; kNpos if a probe distance would
  /// overflow the uint8 field (caller rehashes).
  size_t TryInsert(const Key& key) {
    size_t idx = Hash{}(key)&mask_;
    uint8_t d = 1;
    // Phase 1: find the key or the displacement point.
    for (;;) {
      const uint8_t sd = dist_[idx];
      if (sd == 0) {
        slots_[idx].first = key;
        dist_[idx] = d;
        ++size_;
        return idx;
      }
      if (sd == d && KeyEq{}(slots_[idx].first, key)) return idx;
      if (sd < d) break;  // rich occupant: displace it (robin hood)
      if (d == kMaxDist) return kNpos;
      idx = (idx + 1) & mask_;
      ++d;
    }
    // Phase 2: place the new entry here and bubble the displaced chain.
    const size_t home = idx;
    value_type carry;
    carry.first = key;
    uint8_t carry_d = d;
    for (;;) {
      const uint8_t sd = dist_[idx];
      if (sd == 0) {
        slots_[idx] = std::move(carry);
        dist_[idx] = carry_d;
        ++size_;
        return home;
      }
      if (sd < carry_d) {
        std::swap(slots_[idx], carry);
        std::swap(dist_[idx], carry_d);
      }
      if (carry_d == kMaxDist) {
        // Undo is impossible mid-bubble; grow instead. Walk the carry
        // back into the table first so no entry is lost: since we got
        // here the table is overloaded, force the rehash with the carry
        // re-inserted afterwards.
        Rehash(dist_.size() * 2, &carry);
        return kNpos;
      }
      idx = (idx + 1) & mask_;
      ++carry_d;
    }
  }

  void Rehash(size_t cap, value_type* carry = nullptr) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_dist = std::move(dist_);
    slots_ = std::vector<value_type>(cap);  // default-construct (move-only T)
    dist_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
    for (size_t i = 0; i < old_dist.size(); ++i) {
      if (old_dist[i] != 0) Reinsert(std::move(old_slots[i]));
    }
    if (carry) Reinsert(std::move(*carry));
  }

  void Reinsert(value_type&& entry) {
    for (;;) {
      size_t slot = TryInsert(entry.first);
      if (slot == kNpos) slot = FindSlot(entry.first);
      if (slot != kNpos) {
        slots_[slot].second = std::move(entry.second);
        return;
      }
      Rehash(dist_.size() * 2);  // phase-1 distance overflow: spread out
    }
  }

  std::vector<value_type> slots_;
  std::vector<uint8_t> dist_;  ///< 0 = empty, else probe distance + 1
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace sharon

#endif  // SHARON_COMMON_FLAT_MAP_H_
