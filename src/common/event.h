// Event and event-type model (Sharon §2.1).
//
// An event is a timestamped message of a particular event type carrying a
// small fixed set of integer attributes (e.g. vehicle id, speed, price).
// Event types are interned in a TypeRegistry that maps names <-> dense ids,
// so patterns and executors work on dense uint32 ids.

#ifndef SHARON_COMMON_EVENT_H_
#define SHARON_COMMON_EVENT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/inline_attrs.h"
#include "src/common/time.h"

namespace sharon {

/// Dense identifier of an event type (position in the TypeRegistry).
using EventTypeId = uint32_t;

/// Sentinel for "no event type".
inline constexpr EventTypeId kInvalidType = static_cast<EventTypeId>(-1);

/// Integer attribute value carried by an event.
using AttrValue = int64_t;

/// Index of an attribute within an event's attribute vector.
using AttrIndex = uint32_t;

/// Sentinel for "no attribute" (e.g. no GROUP-BY clause).
inline constexpr AttrIndex kNoAttr = static_cast<AttrIndex>(-1);

/// A single stream event (Sharon §2.1). Events arrive in strictly
/// increasing timestamp order on the input stream.
///
/// Attributes live inline (InlineAttrs small buffer): an event of any
/// shipped schema occupies one flat 64-byte block, batches of events are
/// contiguous, and copying an event on the ingest path allocates nothing.
struct Event {
  Timestamp time = 0;
  EventTypeId type = kInvalidType;
  /// Attribute values; their meaning is defined by the stream schema
  /// (see streamgen). attrs[0] is conventionally the grouping attribute
  /// (vehicle / customer id) for the paper's workloads.
  InlineAttrs attrs;

  /// Attribute `i` of this event. Reading past the event's schema is a
  /// bug (a query aggregating or grouping on an attribute the stream
  /// does not carry): debug/ASan builds assert so the mismatch surfaces
  /// at the offending event; release builds keep the seed's tolerant
  /// read-as-zero so a misconfigured query degrades instead of crashing.
  AttrValue attr(AttrIndex i) const {
    assert(i < attrs.size() &&
           "Event::attr: index past the event's schema (check the query's "
           "GROUP-BY / aggregation attribute against the stream schema)");
    return i < attrs.size() ? attrs[i] : 0;
  }
};

/// Interns event type names and assigns dense ids.
///
/// Thread-compatible: registration is not synchronized; register all types
/// up front, then share freely.
class TypeRegistry {
 public:
  /// Returns the id of `name`, registering it if unseen.
  EventTypeId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    EventTypeId id = static_cast<EventTypeId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of `name` or kInvalidType if not registered.
  EventTypeId Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidType : it->second;
  }

  /// Returns the name of `id`; `id` must be registered.
  const std::string& Name(EventTypeId id) const { return names_.at(id); }

  /// Number of registered types.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventTypeId> ids_;
};

}  // namespace sharon

#endif  // SHARON_COMMON_EVENT_H_
