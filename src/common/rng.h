// Deterministic pseudo-random number generation for stream generators and
// property tests. SplitMix64 seeding + xoshiro256** core; reproducible across
// platforms (unlike std::mt19937 distributions, the helpers here are fully
// specified).

#ifndef SHARON_COMMON_RNG_H_
#define SHARON_COMMON_RNG_H_

#include <cstdint>

namespace sharon {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t x = seed;
    for (auto& si : s_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace sharon

#endif  // SHARON_COMMON_RNG_H_
