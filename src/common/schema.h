// Stream schema: names for the integer attribute slots carried by events.
// Shared between stream generators (which fill attributes) and the query
// parser (which resolves attribute names in WHERE/GROUP BY/RETURN clauses).

#ifndef SHARON_COMMON_SCHEMA_H_
#define SHARON_COMMON_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/event.h"

namespace sharon {

/// Maps attribute names to dense indices into Event::attrs.
class StreamSchema {
 public:
  StreamSchema() = default;
  explicit StreamSchema(std::vector<std::string> names)
      : names_(std::move(names)) {}

  /// Registers `name` (idempotent) and returns its index.
  AttrIndex Register(std::string_view name) {
    AttrIndex existing = Find(name);
    if (existing != kNoAttr) return existing;
    names_.emplace_back(name);
    return static_cast<AttrIndex>(names_.size() - 1);
  }

  /// Returns the index of `name` or kNoAttr.
  AttrIndex Find(std::string_view name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<AttrIndex>(i);
    }
    return kNoAttr;
  }

  const std::string& Name(AttrIndex i) const { return names_.at(i); }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

}  // namespace sharon

#endif  // SHARON_COMMON_SCHEMA_H_
