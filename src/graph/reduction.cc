#include "src/graph/reduction.h"

#include <algorithm>

namespace sharon {
namespace {

// GWMIN's guaranteed weight (Eq. 10) restricted to one component. Degrees
// within a component equal global degrees (edges never cross components).
double ComponentBound(const SharonGraph& g,
                      const std::vector<VertexId>& component) {
  double total = 0;
  for (VertexId v : component) {
    if (g.alive(v)) {
      total += g.weight(v) / static_cast<double>(g.Degree(v) + 1);
    }
  }
  return total;
}

// Scoremax (Def. 12) restricted to one component.
double ComponentScoreMax(const SharonGraph& g, VertexId v,
                         const std::vector<VertexId>& component) {
  double total = 0;
  for (VertexId u : component) {
    if (g.alive(u) && !g.HasEdge(v, u)) total += g.weight(u);
  }
  return total;
}

}  // namespace

ReductionResult ReduceGraph(SharonGraph& graph) {
  ReductionResult result;
  // Conflicts never cross connected components, so an optimal plan is the
  // union of per-component optima. Evaluating the Def. 13 comparison per
  // component makes it strictly stronger than the paper's global bound —
  // weak candidates no longer hide behind unrelated components' weights —
  // while remaining sound for exactly the same Lemma 2 reason.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& component : graph.ConnectedComponents()) {
      const double bound = ComponentBound(graph, component);
      // Conflict-ridden pruning (Def. 13): collect on one snapshot, then
      // remove, so the comparison is uniform within the pass.
      std::vector<VertexId> ridden;
      for (VertexId v : component) {
        if (ComponentScoreMax(graph, v, component) < bound) {
          ridden.push_back(v);
        }
      }
      for (VertexId v : ridden) {
        graph.Remove(v);
        result.pruned_ridden.push_back(v);
        changed = true;
      }
      // Conflict-free extraction (Def. 14).
      for (VertexId v : component) {
        if (graph.alive(v) && graph.Degree(v) == 0) {
          graph.Remove(v);
          result.conflict_free.push_back(v);
          changed = true;
        }
      }
    }
  }
  std::sort(result.pruned_ridden.begin(), result.pruned_ridden.end());
  std::sort(result.conflict_free.begin(), result.conflict_free.end());
  result.remaining = graph.num_vertices();
  return result;
}

}  // namespace sharon
