#include "src/graph/export.h"

#include <algorithm>
#include <cmath>

namespace sharon {

std::string ToDot(const SharonGraph& graph, const TypeRegistry& types,
                  const std::vector<VertexId>& highlight) {
  auto highlighted = [&](VertexId v) {
    return std::find(highlight.begin(), highlight.end(), v) !=
           highlight.end();
  };
  std::string out = "graph sharon {\n  node [shape=box];\n";
  for (VertexId v : graph.AliveVertices()) {
    const Candidate& c = graph.candidate(v);
    out += "  v" + std::to_string(v) + " [label=\"" +
           c.pattern.ToString(types) + "\\nQ={";
    for (size_t i = 0; i < c.queries.size(); ++i) {
      if (i) out += ",";
      out += "q" + std::to_string(c.queries[i]);
    }
    out += "}\\nbenefit=" + std::to_string(graph.weight(v)) + "\"";
    if (highlighted(v)) out += " style=filled fillcolor=lightblue";
    out += "];\n";
  }
  for (VertexId v : graph.AliveVertices()) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v < u) {
        out += "  v" + std::to_string(v) + " -- v" + std::to_string(u) +
               ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

std::string ResultsToCsv(const ResultCollector& results,
                         const Workload& workload) {
  std::vector<std::pair<ResultKey, double>> rows;
  rows.reserve(results.size());
  results.ForEachCell([&](const ResultKey& key, const AggState& state) {
    const Query& q = workload.query(key.query);
    double v = state.Final(q.agg.fn);
    if (std::isnan(v)) return;
    rows.emplace_back(key, v);
  });
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.query, a.first.window, a.first.group) <
           std::tie(b.first.query, b.first.window, b.first.group);
  });
  std::string out = "query,window,group,value\n";
  for (const auto& [key, v] : rows) {
    out += std::to_string(key.query) + "," + std::to_string(key.window) +
           "," + std::to_string(key.group) + "," + std::to_string(v) + "\n";
  }
  return out;
}

}  // namespace sharon
