// Export utilities: Graphviz DOT rendering of Sharon graphs (vertices
// labelled with candidate, benefit and degree; edges are conflicts) and
// CSV dumps of executor results — the inspection surface a user of the
// library reaches for when debugging a sharing plan.

#ifndef SHARON_GRAPH_EXPORT_H_
#define SHARON_GRAPH_EXPORT_H_

#include <string>

#include "src/exec/result.h"
#include "src/graph/sharon_graph.h"

namespace sharon {

/// Renders the alive part of `graph` as an undirected Graphviz graph.
/// Members of `highlight` (e.g. a chosen plan) are drawn filled.
std::string ToDot(const SharonGraph& graph, const TypeRegistry& types,
                  const std::vector<VertexId>& highlight = {});

/// Dumps results as "query,window,group,value" CSV rows (header included),
/// ordered by (query, window, group). `workload` supplies each query's
/// aggregation function.
std::string ResultsToCsv(const ResultCollector& results,
                         const Workload& workload);

}  // namespace sharon

#endif  // SHARON_GRAPH_EXPORT_H_
