// Sharing conflict resolution by candidate expansion
// (paper §7.1, Algorithms 5 and 6, Figs. 11-12).
//
// A conflict between candidates may be resolvable by *not* sharing the
// pattern with the conflict-causing queries: each candidate (p, Qp) is
// expanded into options (p, Q'p), Q'p ⊂ Qp obtained by dropping subsets of
// conflict-causing queries (BFS over subsets, Alg. 5). The expanded
// candidate set then gets a fresh conflict graph (Alg. 6) whose plans can
// strictly beat the original graph's best plan (Example 13).

#ifndef SHARON_GRAPH_EXPANSION_H_
#define SHARON_GRAPH_EXPANSION_H_

#include <cstdint>
#include <vector>

#include "src/graph/sharon_graph.h"

namespace sharon {

/// Limits on expansion growth; the blow-up is combinatorial (Eq. 14).
struct ExpansionOptions {
  uint32_t max_options_per_candidate = 64;
  uint32_t max_total_candidates = 4096;
  uint32_t max_conflict_queries = 12;  ///< cap on |Qc| subset enumeration
};

/// Algorithm 5: the option set Op for vertex `v` of `graph` (the original
/// candidate first, then derived options in BFS order).
std::vector<Candidate> ExpandCandidate(const SharonGraph& graph, VertexId v,
                                       const Workload& workload,
                                       const ExpansionOptions& opts);

/// Algorithm 6: expands every vertex and rebuilds the conflict graph over
/// all options (weights recomputed; non-beneficial options dropped).
SharonGraph ExpandGraph(const SharonGraph& graph, const Workload& workload,
                        const SharonGraph::WeightFn& weight,
                        const ExpansionOptions& opts);

}  // namespace sharon

#endif  // SHARON_GRAPH_EXPANSION_H_
