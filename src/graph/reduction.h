// SHARON graph reduction (paper §5, Algorithm 2).
//
// Two prunes, iterated to a fixpoint:
//  - conflict-FREE candidates (degree 0, Def. 14) are guaranteed to be in
//    an optimal plan: moved to the result set F and removed;
//  - conflict-RIDDEN candidates (Def. 13): Scoremax(v) — the best any plan
//    containing v could score — falls below GWMIN's guaranteed weight
//    (Eq. 10), so no optimal plan contains v: removed.
//
// Soundness refinement (documented in DESIGN.md): within each iteration the
// GWMIN bound and Scoremax are evaluated on the *same* graph snapshot, and
// conflict-ridden pruning runs before conflict-free extraction. This keeps
// both sides of the Def. 13 comparison consistent as the graph shrinks,
// preserving optimality (Lemma 2) while pruning at least as much as a
// single-bound pass.

#ifndef SHARON_GRAPH_REDUCTION_H_
#define SHARON_GRAPH_REDUCTION_H_

#include <vector>

#include "src/graph/sharon_graph.h"

namespace sharon {

/// Outcome of graph reduction.
struct ReductionResult {
  std::vector<VertexId> conflict_free;   ///< F: part of every optimal plan
  std::vector<VertexId> pruned_ridden;   ///< removed, provably not optimal
  size_t remaining = 0;                  ///< alive vertices after reduction
};

/// Algorithm 2. Mutates `graph` in place.
ReductionResult ReduceGraph(SharonGraph& graph);

}  // namespace sharon

#endif  // SHARON_GRAPH_REDUCTION_H_
