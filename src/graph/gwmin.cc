#include "src/graph/gwmin.h"

namespace sharon {

GwminResult RunGwmin(const SharonGraph& graph) {
  SharonGraph g = graph;  // vertex removal below must not affect the caller
  GwminResult result;
  while (g.num_vertices() > 0) {
    // Select v maximising weight / (degree + 1) (Alg. 8 lines 3-7).
    VertexId best = 0;
    double best_ratio = -1;
    for (VertexId v : g.AliveVertices()) {
      double ratio = g.weight(v) / static_cast<double>(g.Degree(v) + 1);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = v;
      }
    }
    result.independent_set.push_back(best);
    result.weight += g.weight(best);
    for (VertexId u : g.Neighbors(best)) g.Remove(u);
    g.Remove(best);
  }
  return result;
}

}  // namespace sharon
