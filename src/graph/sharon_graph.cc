#include "src/graph/sharon_graph.h"

#include <algorithm>

namespace sharon {

bool SharonGraph::InConflict(const Candidate& a, const Candidate& b,
                             const Workload& workload) {
  if (&a == &b) return false;
  for (QueryId q : Intersect(a.queries, b.queries)) {
    if (workload.query(q).pattern.Overlaps(a.pattern, b.pattern)) return true;
  }
  return false;
}

SharonGraph SharonGraph::Build(const Workload& workload,
                               const std::vector<Candidate>& candidates,
                               const WeightFn& weight) {
  SharonGraph g;
  // Alg. 1 lines 2-5: beneficial candidates only.
  for (const Candidate& c : candidates) {
    if (c.queries.size() < 2) continue;
    double w = weight(c);
    if (w <= 0) continue;
    g.cands_.push_back(c);
    g.weights_.push_back(w);
  }
  const size_t n = g.cands_.size();
  g.adj_.resize(n);
  g.alive_.assign(n, true);
  g.alive_count_ = n;
  // Alg. 1 lines 6-8: conflict edges.
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      if (InConflict(g.cands_[i], g.cands_[j], workload)) {
        g.adj_[i].push_back(j);
        g.adj_[j].push_back(i);
      }
    }
  }
  return g;
}

size_t SharonGraph::num_edges() const {
  size_t n = 0;
  for (VertexId v = 0; v < adj_.size(); ++v) {
    if (alive_[v]) n += Degree(v);
  }
  return n / 2;
}

std::vector<VertexId> SharonGraph::Neighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (VertexId u : adj_[v]) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

size_t SharonGraph::Degree(VertexId v) const {
  size_t d = 0;
  for (VertexId u : adj_[v]) d += alive_[u];
  return d;
}

bool SharonGraph::HasEdge(VertexId a, VertexId b) const {
  if (!alive_[a] || !alive_[b]) return false;
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

std::vector<VertexId> SharonGraph::AliveVertices() const {
  std::vector<VertexId> out;
  out.reserve(alive_count_);
  for (VertexId v = 0; v < alive_.size(); ++v) {
    if (alive_[v]) out.push_back(v);
  }
  return out;
}

std::vector<std::vector<VertexId>> SharonGraph::ConnectedComponents() const {
  std::vector<std::vector<VertexId>> components;
  std::vector<bool> visited(alive_.size(), false);
  for (VertexId seed = 0; seed < alive_.size(); ++seed) {
    if (!alive_[seed] || visited[seed]) continue;
    std::vector<VertexId> component, stack = {seed};
    visited[seed] = true;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      component.push_back(v);
      for (VertexId u : adj_[v]) {
        if (alive_[u] && !visited[u]) {
          visited[u] = true;
          stack.push_back(u);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

void SharonGraph::Remove(VertexId v) {
  if (alive_[v]) {
    alive_[v] = false;
    --alive_count_;
  }
}

double SharonGraph::GuaranteedWeight() const {
  double total = 0;
  for (VertexId v = 0; v < alive_.size(); ++v) {
    if (alive_[v]) {
      total += weights_[v] / static_cast<double>(Degree(v) + 1);
    }
  }
  return total;
}

double SharonGraph::ScoreMax(VertexId v) const {
  double total = 0;
  for (VertexId u = 0; u < alive_.size(); ++u) {
    if (alive_[u] && !HasEdge(v, u)) total += weights_[u];
  }
  return total;
}

double SharonGraph::WeightOf(const std::vector<VertexId>& vs) const {
  double total = 0;
  for (VertexId v : vs) total += weights_[v];
  return total;
}

SharingPlan SharonGraph::ToPlan(const std::vector<VertexId>& vs) const {
  SharingPlan plan;
  plan.reserve(vs.size());
  for (VertexId v : vs) plan.push_back(cands_[v]);
  std::sort(plan.begin(), plan.end());
  return plan;
}

size_t SharonGraph::EstimatedBytes() const {
  size_t bytes = 0;
  for (VertexId v = 0; v < alive_.size(); ++v) {
    if (!alive_[v]) continue;
    bytes += sizeof(Candidate) + sizeof(double);
    bytes += cands_[v].pattern.length() * sizeof(EventTypeId);
    bytes += cands_[v].queries.size() * sizeof(QueryId);
    bytes += adj_[v].size() * sizeof(VertexId);
  }
  return bytes;
}

std::string SharonGraph::ToString(const TypeRegistry& reg) const {
  std::string s;
  for (VertexId v = 0; v < alive_.size(); ++v) {
    if (!alive_[v]) continue;
    s += cands_[v].ToString(reg);
    s += " weight=" + std::to_string(weights_[v]);
    s += " degree=" + std::to_string(Degree(v));
    s += "\n";
  }
  return s;
}

}  // namespace sharon
