// GWMIN: the greedy minimum-degree algorithm for the Maximum Weight
// Independent Set problem (Sakai et al., paper Appendix B, Algorithm 8).
//
// Repeatedly selects the alive vertex maximising weight(v)/(degree(v)+1),
// adds it to the independent set, and removes it plus its neighbors. The
// returned set's weight is guaranteed >= sum of weight(v)/(degree(v)+1)
// over the input graph (Eq. 10) — the bound Sharon uses to prune
// conflict-ridden candidates (§5).

#ifndef SHARON_GRAPH_GWMIN_H_
#define SHARON_GRAPH_GWMIN_H_

#include <vector>

#include "src/graph/sharon_graph.h"

namespace sharon {

/// Result of running GWMIN.
struct GwminResult {
  std::vector<VertexId> independent_set;
  double weight = 0;
};

/// Runs Algorithm 8 on a copy of `graph` (the input is not modified).
GwminResult RunGwmin(const SharonGraph& graph);

}  // namespace sharon

#endif  // SHARON_GRAPH_GWMIN_H_
