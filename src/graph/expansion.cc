#include "src/graph/expansion.h"

#include <algorithm>
#include <deque>
#include <set>

namespace sharon {
namespace {

/// Queries of `a` that cause its conflict with `b` (Def. 6 / Def. 16).
QueryList ConflictCausingQueries(const Candidate& a, const Candidate& b,
                                 const Workload& workload) {
  QueryList out;
  for (QueryId q : Intersect(a.queries, b.queries)) {
    if (workload.query(q).pattern.Overlaps(a.pattern, b.pattern)) {
      out.push_back(q);
    }
  }
  return out;
}

QueryList Without(const QueryList& qs, const QueryList& drop) {
  QueryList out;
  std::set_difference(qs.begin(), qs.end(), drop.begin(), drop.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<Candidate> ExpandCandidate(const SharonGraph& graph, VertexId v,
                                       const Workload& workload,
                                       const ExpansionOptions& opts) {
  const Candidate& original = graph.candidate(v);
  std::vector<Candidate> options = {original};
  std::set<QueryList> seen = {original.queries};
  std::deque<QueryList> frontier = {original.queries};

  while (!frontier.empty() &&
         options.size() < opts.max_options_per_candidate) {
    QueryList current = std::move(frontier.front());
    frontier.pop_front();
    Candidate cur_cand{original.pattern, current};

    // Conflicts of the current option with the *other* original
    // candidates (Alg. 5 line 5: u in V \ Op).
    for (VertexId u : graph.AliveVertices()) {
      if (u == v) continue;
      const Candidate& other = graph.candidate(u);
      if (other.pattern == original.pattern) continue;
      QueryList qc = ConflictCausingQueries(cur_cand, other, workload);
      if (qc.empty()) continue;
      if (qc.size() > opts.max_conflict_queries) {
        qc.resize(opts.max_conflict_queries);
      }
      // Every non-empty subset C of Qc may resolve part of the conflict
      // (Alg. 5 line 7); dropping all of Qc resolves it fully.
      const uint32_t subsets = 1u << qc.size();
      for (uint32_t mask = 1; mask < subsets; ++mask) {
        QueryList drop;
        for (size_t bit = 0; bit < qc.size(); ++bit) {
          if (mask & (1u << bit)) drop.push_back(qc[bit]);
        }
        QueryList next = Without(current, drop);
        if (next.size() < 2) continue;
        if (!seen.insert(next).second) continue;
        options.push_back({original.pattern, next});
        frontier.push_back(std::move(next));
        if (options.size() >= opts.max_options_per_candidate) break;
      }
      if (options.size() >= opts.max_options_per_candidate) break;
    }
  }
  return options;
}

SharonGraph ExpandGraph(const SharonGraph& graph, const Workload& workload,
                        const SharonGraph::WeightFn& weight,
                        const ExpansionOptions& opts) {
  std::vector<Candidate> all;
  for (VertexId v : graph.AliveVertices()) {
    for (Candidate& c : ExpandCandidate(graph, v, workload, opts)) {
      all.push_back(std::move(c));
      if (all.size() >= opts.max_total_candidates) break;
    }
    if (all.size() >= opts.max_total_candidates) break;
  }
  // Alg. 6: rebuild the conflict graph over all options. Build() also
  // recomputes weights and drops non-beneficial options.
  return SharonGraph::Build(workload, all, weight);
}

}  // namespace sharon
