// The SHARON graph (paper §4, Def. 10, Algorithm 1).
//
// Vertices are beneficial sharing candidates weighted by BValue; undirected
// edges are sharing conflicts (Def. 6): two candidates conflict when their
// patterns overlap positionally inside a query they both want to share.
// The graph supports vertex removal (for reduction / GWMIN) via an alive
// mask so indices stay stable across the optimizer pipeline.

#ifndef SHARON_GRAPH_SHARON_GRAPH_H_
#define SHARON_GRAPH_SHARON_GRAPH_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sharing/candidate.h"

namespace sharon {

/// Index of a vertex within a SharonGraph.
using VertexId = uint32_t;

/// Weighted conflict graph over sharing candidates.
class SharonGraph {
 public:
  /// Assigns each candidate its benefit value.
  using WeightFn = std::function<double(const Candidate&)>;

  /// Algorithm 1: keeps candidates with positive benefit and |Qp| > 1,
  /// inserting conflict edges. `workload` supplies the query patterns for
  /// the Def. 6 overlap test.
  static SharonGraph Build(const Workload& workload,
                           const std::vector<Candidate>& candidates,
                           const WeightFn& weight);

  /// Def. 6: true if the candidates' patterns overlap in a common query.
  static bool InConflict(const Candidate& a, const Candidate& b,
                         const Workload& workload);

  size_t num_vertices() const { return alive_count_; }
  size_t capacity() const { return cands_.size(); }
  size_t num_edges() const;

  bool alive(VertexId v) const { return alive_[v]; }
  const Candidate& candidate(VertexId v) const { return cands_[v]; }
  double weight(VertexId v) const { return weights_[v]; }

  /// Alive neighbors of v.
  std::vector<VertexId> Neighbors(VertexId v) const;

  /// Degree of v counting alive neighbors only.
  size_t Degree(VertexId v) const;

  bool HasEdge(VertexId a, VertexId b) const;

  /// All alive vertex ids.
  std::vector<VertexId> AliveVertices() const;

  /// Connected components over alive vertices. Conflicts never cross
  /// component boundaries, so an optimal plan of the whole graph is the
  /// union of per-component optima — the decomposition behind the
  /// component-wise reduction and plan finder.
  std::vector<std::vector<VertexId>> ConnectedComponents() const;

  /// Removes v (and implicitly its edges) from the graph.
  void Remove(VertexId v);

  /// Sum over alive v of weight(v) / (degree(v) + 1): the guaranteed
  /// weight of GWMIN (Eq. 10).
  double GuaranteedWeight() const;

  /// Def. 12: sum of weights of alive candidates not in conflict with v
  /// (including v itself).
  double ScoreMax(VertexId v) const;

  /// Total weight of a vertex set.
  double WeightOf(const std::vector<VertexId>& vs) const;

  /// Materialises a vertex set as a sharing plan (sorted candidates).
  SharingPlan ToPlan(const std::vector<VertexId>& vs) const;

  /// Logical size in bytes (vertices, query lists, adjacency).
  size_t EstimatedBytes() const;

  std::string ToString(const TypeRegistry& reg) const;

 private:
  std::vector<Candidate> cands_;
  std::vector<double> weights_;
  std::vector<std::vector<VertexId>> adj_;  ///< sorted neighbor lists
  std::vector<bool> alive_;
  size_t alive_count_ = 0;
};

}  // namespace sharon

#endif  // SHARON_GRAPH_SHARON_GRAPH_H_
