// Adaptive rate-driven re-optimization (paper §7.4, closing the loop).
//
// Sharon's sharing benefit (Def. 8) is a pure function of per-type event
// rates, so a plan chosen at startup degrades silently when rates drift:
// patterns it shares go cold (benefit evaporates) while newly-hot
// patterns run non-shared (work the optimizer would now share). The
// PlanManager closes the monitor -> optimizer -> executor loop:
//
//   RateMonitor      sliding per-type rate estimate + drift detection
//        │ epoch cadence
//   Reoptimize       re-cost incumbent under fresh rates, run GO,
//        │           escalate to SO when the gap warrants it
//   hysteresis       swap only when the predicted relative gain clears
//        │           a margin (re-planning is cheap, swapping is not:
//        │           the dual-run overlap costs memory and CPU)
//   RequestPlanSwap  watermark-aligned hot-swap into the running
//                    ShardedRuntime (src/runtime/plan_swap.h): finalized
//                    results stay exactly-once and bit-identical to a
//                    single-plan oracle run under any swap schedule
//
// The manager wraps the runtime's ingest path: feed every event (and
// in-band watermark punctuation) through Ingest(). It is single-threaded
// by construction — it runs on the ingest thread, the only thread allowed
// to call ShardedRuntime::Ingest/RequestPlanSwap — so re-planning happens
// inline between events. Keep optimizer limits sharp (the default SO
// escalation config uses bench-grade limits) if ingest latency matters.

#ifndef SHARON_ADAPTIVE_PLAN_MANAGER_H_
#define SHARON_ADAPTIVE_PLAN_MANAGER_H_

#include <cstdint>
#include <memory>

#include "src/planner/optimizer.h"
#include "src/query/registration.h"
#include "src/runtime/sharded_runtime.h"
#include "src/sharing/incremental.h"
#include "src/streamgen/rate_monitor.h"

namespace sharon::adaptive {

/// Policy knobs of the adaptive planner.
struct PlanManagerOptions {
  /// Rate-sampling epoch (stream time). Re-optimization is considered at
  /// most once per epoch; the estimate averages over `window_epochs`.
  Duration epoch = Seconds(5);
  size_t window_epochs = 2;

  /// RateMonitor drift threshold (relative per-type deviation from the
  /// rates the active plan was last validated against).
  double drift_threshold = 0.4;

  /// When true (default), the optimizer only runs on detected drift;
  /// false re-optimizes every epoch regardless (bench/diagnostics mode).
  bool require_drift = true;

  /// Minimum predicted relative gain (ReoptimizeResult::GainRatio) before
  /// a swap is requested. The margin absorbs estimation noise so the
  /// runtime does not thrash between near-equal plans.
  double hysteresis = 0.10;

  /// GO -> SO escalation threshold (ReoptimizeOptions::so_escalation_gap).
  double so_escalation_gap = 0.5;

  /// Pipeline configuration for the SO escalation.
  OptimizerConfig optimizer;

  /// Knobs of the incremental churn optimizer (fallback threshold and the
  /// per-cluster SO escalation pipeline).
  sharing::IncrementalConfig incremental;
};

/// Counters of one adaptive run (monotone; inspect any time).
struct PlanManagerStats {
  uint64_t epochs_seen = 0;        ///< epoch boundaries crossed
  uint64_t evaluations = 0;        ///< re-optimization passes run
  uint64_t drift_detections = 0;   ///< evaluations triggered by drift
  uint64_t escalations = 0;        ///< GO -> SO escalations
  uint64_t holds = 0;              ///< gain below hysteresis, kept plan
  uint64_t swaps_requested = 0;
  uint64_t swaps_accepted = 0;
  uint64_t swaps_rejected = 0;     ///< runtime refused (swap in flight...)
  uint64_t queries_registered = 0;  ///< accepted Register/Reactivate calls
  uint64_t queries_retired = 0;     ///< accepted Retire calls
  uint64_t churn_swaps = 0;         ///< churn-driven swaps accepted
  uint64_t churn_swap_retries = 0;  ///< churn swaps refused, left pending
  double last_current_score = 0;   ///< incumbent score at last evaluation
  double last_candidate_score = 0; ///< challenger score at last evaluation
  double planning_millis = 0;      ///< total time spent in Reoptimize
};

/// Drives adaptive re-optimization of a uniform-workload ShardedRuntime.
/// Construct with the runtime's workload and the plan the runtime started
/// with, then feed the stream through Ingest(). The runtime must have a
/// disorder policy enabled (plan swaps retire old engines via watermarks)
/// and must outlive the manager.
class PlanManager {
 public:
  PlanManager(const Workload& workload, runtime::ShardedRuntime* rt,
              SharingPlan initial_plan, const PlanManagerOptions& options = {});

  /// Forwards `e` to the runtime (ingest partition 0) and samples it into
  /// the rate monitor; on an epoch boundary, considers re-optimization
  /// and a plan swap.
  void Ingest(const Event& e);

  /// Multi-producer variant: routes `e` through ingest partition
  /// `partition` instead of partition 0. The manager stays single-
  /// threaded — ALL partitions must be driven from the manager's one
  /// thread (which also satisfies the quiescence contract of
  /// RequestPlanSwap); watermark punctuations reach only the given
  /// partition, so the caller broadcasts them per producer as usual.
  void Ingest(const Event& e, size_t partition);

  /// The plan currently executing (initial plan until the first accepted
  /// swap; updated at swap REQUEST time — the runtime applies it at the
  /// watermark-aligned boundary).
  const SharingPlan& current_plan() const { return current_plan_; }

  /// Identifier of the incumbent plan: the runtime's accepted-swap count
  /// when the plan became current (0 for a never-swapped initial plan).
  /// Checkpoints persist it (checkpoint::Manifest::swaps_requested) and
  /// restore seeds the runtime's swap counter from it, so a manager
  /// constructed on a restored runtime — with the checkpoint-time
  /// incumbent as its initial plan — continues the id sequence and
  /// re-optimizes from the right baseline instead of restarting at 0.
  uint64_t incumbent_plan_id() const { return incumbent_plan_id_; }

  const PlanManagerStats& stats() const { return stats_; }
  const RateMonitor& monitor() const { return monitor_; }

  /// Outcome of the most recent Reoptimize pass (phase stats included).
  const ReoptimizeResult& last_reoptimize() const { return last_reopt_; }

  // --- live query churn (src/query/registration.h) ----------------------
  //
  // The attached registry is the DESIRED standing query set; the manager
  // turns accepted churn calls into a plan swap at the next watermark-
  // aligned boundary, reusing the drift hot-swap machinery. The sharing
  // plan over the changed query set comes from the INCREMENTAL optimizer
  // (src/sharing/incremental.h): only the conflict clusters the churned
  // query touches are re-solved. All churn calls are ingest-thread only,
  // like Ingest itself.

  /// Attaches the registry (must wrap the SAME workload this manager was
  /// constructed with, and outlive the manager). Churn calls without an
  /// attached registry are refused with kBadQuery.
  void AttachRegistry(query::QueryRegistry* registry);

  /// Registers a new standing query. On acceptance the sharing graph is
  /// patched incrementally and a churn swap is attempted immediately
  /// (retried on later watermark punctuations while refused). The
  /// returned id produces results beginning at the commit boundary.
  query::ChurnResult RegisterQuery(Query q);

  /// Retires a live query at the next boundary; its id keeps already-
  /// finalized windows readable forever (result-surface identity).
  query::ChurnResult RetireQuery(QueryId id);

  /// Re-opens a retired id's result surface at the next boundary.
  query::ChurnResult ReactivateQuery(QueryId id);

  /// Churn ops accepted but not yet committed at a swap boundary.
  size_t pending_churn() const {
    return registry_ ? registry_->pending().size() : 0;
  }

  /// Outcome of the most recent churn swap attempt (typed OpRefusal when
  /// the runtime refused, e.g. kSwapInFlight/kCheckpointInFlight).
  const runtime::ShardedRuntime::SwapRequest& last_churn_swap() const {
    return last_churn_swap_;
  }

  /// The incremental optimizer (null until the first accepted churn op).
  const sharing::IncrementalSharingOptimizer* incremental() const {
    return inc_.get();
  }

 private:
  void EvaluateEpoch();

  /// Lazily builds the incremental optimizer over the current active set
  /// (rates: monitor estimate when a window closed, zero otherwise —
  /// zero-rate plans share nothing, which is the right cold-start plan).
  void EnsureIncremental();

  /// Compiles the incremental plan and requests the swap that commits
  /// every pending churn op. Refusals leave the ops pending; the caller
  /// retries on watermark punctuations.
  void TryChurnSwap();

  /// Trace + metrics emission of one accepted churn call.
  void NoteChurn(obs::TraceKind kind, QueryId id);

  const Workload* workload_;
  runtime::ShardedRuntime* runtime_;
  SharingPlan current_plan_;
  PlanManagerOptions options_;
  RateMonitor monitor_;
  PlanManagerStats stats_;
  ReoptimizeResult last_reopt_;
  uint64_t incumbent_plan_id_ = 0;
  int64_t last_evaluated_epoch_ = -1;
  bool baselined_ = false;
  query::QueryRegistry* registry_ = nullptr;
  std::unique_ptr<sharing::IncrementalSharingOptimizer> inc_;
  runtime::ShardedRuntime::SwapRequest last_churn_swap_;
};

}  // namespace sharon::adaptive

#endif  // SHARON_ADAPTIVE_PLAN_MANAGER_H_
