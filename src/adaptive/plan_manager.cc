#include "src/adaptive/plan_manager.h"

namespace sharon::adaptive {

PlanManager::PlanManager(const Workload& workload,
                         runtime::ShardedRuntime* rt, SharingPlan initial_plan,
                         const PlanManagerOptions& options)
    : workload_(&workload),
      runtime_(rt),
      current_plan_(std::move(initial_plan)),
      options_(options),
      monitor_(options.epoch, options.window_epochs,
               options.drift_threshold),
      // On a checkpoint-restored runtime the swap counter was seeded from
      // the manifest, so the id sequence continues across incarnations
      // (the caller passes the checkpoint-time incumbent as initial_plan).
      incumbent_plan_id_(rt ? rt->swaps_requested() : 0) {}

void PlanManager::Ingest(const Event& e) { Ingest(e, 0); }

void PlanManager::Ingest(const Event& e, size_t partition) {
  runtime_->ingest_partition(partition).Ingest(e);
  if (IsWatermark(e)) {
    // A watermark may have cleared whatever refused the last churn swap
    // (old engines retire and checkpoints seal on watermark progress), so
    // pending churn retries here rather than waiting for the next call.
    if (registry_ && !registry_->pending().empty()) TryChurnSwap();
    return;
  }
  monitor_.OnEvent(e);
  const int64_t epoch_id = e.time / options_.epoch;
  if (epoch_id <= last_evaluated_epoch_) return;
  if (last_evaluated_epoch_ >= 0) {
    stats_.epochs_seen +=
        static_cast<uint64_t>(epoch_id - last_evaluated_epoch_);
  }
  last_evaluated_epoch_ = epoch_id;
  // A full estimation window must close before rates mean anything.
  if (monitor_.epochs_closed() < options_.window_epochs) return;
  if (!baselined_) {
    // First complete window: take it as the rates the INITIAL plan stands
    // for (the caller optimized against startup rates; drift is measured
    // from here).
    monitor_.RebaseOnCurrent();
    baselined_ = true;
    return;
  }
  EvaluateEpoch();
}

void PlanManager::EvaluateEpoch() {
  const bool drifted = monitor_.DriftDetected();
  if (options_.require_drift && !drifted) return;
  if (drifted) ++stats_.drift_detections;
  ++stats_.evaluations;

  // Lifecycle trace (src/obs/): the manager runs on the ingest thread —
  // the control ring's designated writer — so emitting here keeps the
  // one-writer contract. Decision events carry the predicted gain in
  // parts-per-million (the ring payload is integral).
  obs::TraceRing* ring = runtime_ ? runtime_->control_trace() : nullptr;
  if (ring) {
    ring->Emit(obs::TraceKind::kReoptTriggered, kNoWatermark,
               last_evaluated_epoch_, drifted ? 1 : 0);
  }
  auto decide = [&](obs::ReoptOutcome outcome, double gain) {
    if (ring) {
      ring->Emit(obs::TraceKind::kReoptDecision, kNoWatermark,
                 static_cast<int64_t>(outcome),
                 static_cast<int64_t>(gain * 1e6));
    }
  };

  ReoptimizeOptions ropts;
  ropts.so_escalation_gap = options_.so_escalation_gap;
  ropts.config = options_.optimizer;
  CostModel cm(monitor_.CurrentRates());
  last_reopt_ = Reoptimize(*workload_, cm, current_plan_, ropts);
  stats_.planning_millis += last_reopt_.TotalMillis();
  if (last_reopt_.escalated) ++stats_.escalations;
  stats_.last_current_score = last_reopt_.current_score;
  stats_.last_candidate_score = last_reopt_.chosen.score;

  if (last_reopt_.GainRatio() <= options_.hysteresis ||
      last_reopt_.chosen.plan == current_plan_) {
    ++stats_.holds;
    // The incumbent survived a fresh evaluation: it now stands for the
    // CURRENT rates, so drift is measured from here on. Without the
    // rebase a one-time rate shift would re-trigger the optimizer every
    // epoch forever even though the answer never changes.
    monitor_.RebaseOnCurrent();
    decide(obs::ReoptOutcome::kHold, last_reopt_.GainRatio());
    return;
  }

  std::string error;
  CompiledPlanHandle compiled =
      CompilePlanShared(*workload_, last_reopt_.chosen.plan, &error);
  ++stats_.swaps_requested;
  if (!compiled) {
    // An optimizer plan that fails compilation is a bug upstream; count
    // the refusal and keep the incumbent rather than crash the stream.
    ++stats_.swaps_rejected;
    decide(obs::ReoptOutcome::kSwapRejected, last_reopt_.GainRatio());
    return;
  }
  runtime::ShardedRuntime::SwapRequest req =
      runtime_->RequestPlanSwap(std::move(compiled));
  if (!req.accepted) {
    // Typically "previous swap still in flight": retry next epoch.
    ++stats_.swaps_rejected;
    decide(obs::ReoptOutcome::kSwapRejected, last_reopt_.GainRatio());
    return;
  }
  ++stats_.swaps_accepted;
  current_plan_ = last_reopt_.chosen.plan;
  incumbent_plan_id_ = req.id;
  // A drift swap compiles from the same active mask as a churn swap, so
  // it realizes any pending churn at its boundary: commit the ops there.
  if (registry_) registry_->CommitPending(req.boundary);
  // Drift invalidates every cluster weight at once (Eq. 8 is a pure
  // function of rates) — the incremental optimizer's designed-for rebuild.
  if (inc_) inc_->SetRates(monitor_.CurrentRates());
  monitor_.RebaseOnCurrent();
  decide(obs::ReoptOutcome::kSwapAccepted, last_reopt_.GainRatio());
}

void PlanManager::AttachRegistry(query::QueryRegistry* registry) {
  registry_ = registry;
}

query::ChurnResult PlanManager::RegisterQuery(Query q) {
  if (!registry_) {
    return {false, query::ChurnRefusal::kBadQuery, "no registry attached", 0};
  }
  query::ChurnResult r = registry_->Register(std::move(q));
  if (!r.accepted) return r;
  ++stats_.queries_registered;
  EnsureIncremental();
  sharing::UpdateSharingGraph(*inc_, query::ChurnOp::Kind::kRegister, r.id);
  NoteChurn(obs::TraceKind::kQueryRegistered, r.id);
  TryChurnSwap();
  return r;
}

query::ChurnResult PlanManager::RetireQuery(QueryId id) {
  if (!registry_) {
    return {false, query::ChurnRefusal::kBadQuery, "no registry attached", 0};
  }
  query::ChurnResult r = registry_->Retire(id);
  if (!r.accepted) return r;
  ++stats_.queries_retired;
  EnsureIncremental();
  sharing::UpdateSharingGraph(*inc_, query::ChurnOp::Kind::kRetire, id);
  NoteChurn(obs::TraceKind::kQueryRetired, id);
  TryChurnSwap();
  return r;
}

query::ChurnResult PlanManager::ReactivateQuery(QueryId id) {
  if (!registry_) {
    return {false, query::ChurnRefusal::kBadQuery, "no registry attached", 0};
  }
  query::ChurnResult r = registry_->Reactivate(id);
  if (!r.accepted) return r;
  ++stats_.queries_registered;
  EnsureIncremental();
  sharing::UpdateSharingGraph(*inc_, query::ChurnOp::Kind::kRegister, id);
  NoteChurn(obs::TraceKind::kQueryRegistered, id);
  TryChurnSwap();
  return r;
}

void PlanManager::EnsureIncremental() {
  if (inc_) return;
  // Before the first full estimation window the monitor reports zero
  // rates; a zero-rate graph has no beneficial candidate, so the cold-
  // start churn plan runs every query non-shared — correct, just unshared
  // until drift planning (or SetRates on the next drift swap) kicks in.
  inc_ = std::make_unique<sharing::IncrementalSharingOptimizer>(
      workload_, CostModel(monitor_.CurrentRates()), options_.incremental);
}

void PlanManager::NoteChurn(obs::TraceKind kind, QueryId id) {
  obs::TraceRing* ring = runtime_ ? runtime_->control_trace() : nullptr;
  if (ring) {
    ring->Emit(kind, kNoWatermark, static_cast<int64_t>(id),
               static_cast<int64_t>(registry_->pending().size()));
  }
  obs::RuntimeTelemetry* tel = runtime_ ? runtime_->telemetry() : nullptr;
  if (tel) {
    obs::CounterCell* cell = kind == obs::TraceKind::kQueryRegistered
                                 ? tel->control_cells().queries_registered
                                 : tel->control_cells().queries_retired;
    if (cell) cell->Inc();
  }
}

void PlanManager::TryChurnSwap() {
  if (!registry_ || !inc_ || registry_->pending().empty()) return;
  std::string error;
  CompiledPlanHandle compiled =
      CompilePlanShared(*workload_, inc_->plan(), &error);
  if (!compiled) {
    ++stats_.churn_swap_retries;
    last_churn_swap_ = {};
    last_churn_swap_.code = runtime::OpRefusal::kBadPlan;
    last_churn_swap_.reason = error;
    return;
  }
  last_churn_swap_ = runtime_->RequestPlanSwap(std::move(compiled));
  if (!last_churn_swap_.accepted) {
    // Typed refusal (kSwapInFlight, kCheckpointInFlight, ...): the ops
    // stay pending and retry on the next watermark punctuation.
    ++stats_.churn_swap_retries;
    return;
  }
  registry_->CommitPending(last_churn_swap_.boundary);
  current_plan_ = inc_->plan();
  incumbent_plan_id_ = last_churn_swap_.id;
  // The swapped-in plan stands for the current rates: measure drift from
  // here, exactly as after a drift-triggered swap.
  monitor_.RebaseOnCurrent();
  ++stats_.churn_swaps;
  obs::RuntimeTelemetry* tel = runtime_ ? runtime_->telemetry() : nullptr;
  if (tel && tel->control_cells().churn_swaps) {
    tel->control_cells().churn_swaps->Inc();
  }
}

}  // namespace sharon::adaptive
