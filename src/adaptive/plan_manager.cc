#include "src/adaptive/plan_manager.h"

namespace sharon::adaptive {

PlanManager::PlanManager(const Workload& workload,
                         runtime::ShardedRuntime* rt, SharingPlan initial_plan,
                         const PlanManagerOptions& options)
    : workload_(&workload),
      runtime_(rt),
      current_plan_(std::move(initial_plan)),
      options_(options),
      monitor_(options.epoch, options.window_epochs,
               options.drift_threshold),
      // On a checkpoint-restored runtime the swap counter was seeded from
      // the manifest, so the id sequence continues across incarnations
      // (the caller passes the checkpoint-time incumbent as initial_plan).
      incumbent_plan_id_(rt ? rt->swaps_requested() : 0) {}

void PlanManager::Ingest(const Event& e) { Ingest(e, 0); }

void PlanManager::Ingest(const Event& e, size_t partition) {
  runtime_->ingest_partition(partition).Ingest(e);
  if (IsWatermark(e)) return;
  monitor_.OnEvent(e);
  const int64_t epoch_id = e.time / options_.epoch;
  if (epoch_id <= last_evaluated_epoch_) return;
  if (last_evaluated_epoch_ >= 0) {
    stats_.epochs_seen +=
        static_cast<uint64_t>(epoch_id - last_evaluated_epoch_);
  }
  last_evaluated_epoch_ = epoch_id;
  // A full estimation window must close before rates mean anything.
  if (monitor_.epochs_closed() < options_.window_epochs) return;
  if (!baselined_) {
    // First complete window: take it as the rates the INITIAL plan stands
    // for (the caller optimized against startup rates; drift is measured
    // from here).
    monitor_.RebaseOnCurrent();
    baselined_ = true;
    return;
  }
  EvaluateEpoch();
}

void PlanManager::EvaluateEpoch() {
  const bool drifted = monitor_.DriftDetected();
  if (options_.require_drift && !drifted) return;
  if (drifted) ++stats_.drift_detections;
  ++stats_.evaluations;

  // Lifecycle trace (src/obs/): the manager runs on the ingest thread —
  // the control ring's designated writer — so emitting here keeps the
  // one-writer contract. Decision events carry the predicted gain in
  // parts-per-million (the ring payload is integral).
  obs::TraceRing* ring = runtime_ ? runtime_->control_trace() : nullptr;
  if (ring) {
    ring->Emit(obs::TraceKind::kReoptTriggered, kNoWatermark,
               last_evaluated_epoch_, drifted ? 1 : 0);
  }
  auto decide = [&](obs::ReoptOutcome outcome, double gain) {
    if (ring) {
      ring->Emit(obs::TraceKind::kReoptDecision, kNoWatermark,
                 static_cast<int64_t>(outcome),
                 static_cast<int64_t>(gain * 1e6));
    }
  };

  ReoptimizeOptions ropts;
  ropts.so_escalation_gap = options_.so_escalation_gap;
  ropts.config = options_.optimizer;
  CostModel cm(monitor_.CurrentRates());
  last_reopt_ = Reoptimize(*workload_, cm, current_plan_, ropts);
  stats_.planning_millis += last_reopt_.TotalMillis();
  if (last_reopt_.escalated) ++stats_.escalations;
  stats_.last_current_score = last_reopt_.current_score;
  stats_.last_candidate_score = last_reopt_.chosen.score;

  if (last_reopt_.GainRatio() <= options_.hysteresis ||
      last_reopt_.chosen.plan == current_plan_) {
    ++stats_.holds;
    // The incumbent survived a fresh evaluation: it now stands for the
    // CURRENT rates, so drift is measured from here on. Without the
    // rebase a one-time rate shift would re-trigger the optimizer every
    // epoch forever even though the answer never changes.
    monitor_.RebaseOnCurrent();
    decide(obs::ReoptOutcome::kHold, last_reopt_.GainRatio());
    return;
  }

  std::string error;
  CompiledPlanHandle compiled =
      CompilePlanShared(*workload_, last_reopt_.chosen.plan, &error);
  ++stats_.swaps_requested;
  if (!compiled) {
    // An optimizer plan that fails compilation is a bug upstream; count
    // the refusal and keep the incumbent rather than crash the stream.
    ++stats_.swaps_rejected;
    decide(obs::ReoptOutcome::kSwapRejected, last_reopt_.GainRatio());
    return;
  }
  runtime::ShardedRuntime::SwapRequest req =
      runtime_->RequestPlanSwap(std::move(compiled));
  if (!req.accepted) {
    // Typically "previous swap still in flight": retry next epoch.
    ++stats_.swaps_rejected;
    decide(obs::ReoptOutcome::kSwapRejected, last_reopt_.GainRatio());
    return;
  }
  ++stats_.swaps_accepted;
  current_plan_ = last_reopt_.chosen.plan;
  incumbent_plan_id_ = req.id;
  monitor_.RebaseOnCurrent();
  decide(obs::ReoptOutcome::kSwapAccepted, last_reopt_.GainRatio());
}

}  // namespace sharon::adaptive
