// Chaos soak harness: one seeded, deterministic driver that composes
// every subsystem the engine has grown — drifting rates (src/streamgen/
// drift.h), bounded disorder, adaptive re-optimization plan swaps
// (src/adaptive/), periodic checkpoints with kill/restore cycles into a
// DIFFERENT shard and producer topology (src/checkpoint/), and the
// telemetry layer (src/obs/) — and continuously cross-checks the whole
// composition against the two-step oracle (src/twostep/reference.h).
//
// The harness is a bug-flushing instrument, not a benchmark: everything
// is derived from one master seed, so any divergence it finds is
// replayable by seed alone, and the first divergence aborts the run with
// a labelled diagnostic (round, cycle, topology) so a failing soak can be
// minimized into a deterministic regression test. The stream is cut into
// ROUNDS (fixed arrival-order chunks); every `kill_every` rounds the run
// checkpoints, destroys the runtime mid-stream and restores into the next
// topology of a schedule cycling all shard x producer combinations, with
// each transition changing BOTH counts. Swaps ride on the PlanManager's
// epoch cadence; a checkpoint refused because a swap is still draining is
// retried next round (the refusal itself is validated to carry the typed
// kSwapInFlight code).
//
// Telemetry is validated per cycle while the workers run — registry
// snapshots must stay internally consistent (histogram count == sum of
// buckets) and monotone (counters never regress within an incarnation),
// trace dumps must contain only known event kinds from known sources.
// Result cells are diffed ONLY after the final Finish: mid-run result
// reads would race the shard workers by design.

#ifndef SHARON_CHAOS_SOAK_H_
#define SHARON_CHAOS_SOAK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace sharon::chaos {

/// Everything a soak run derives from: one master seed plus shape knobs.
/// Two runs with equal configs replay the same stream, the same disorder,
/// the same topology schedule and the same kill points.
struct SoakConfig {
  /// Master seed: drives the drift scenario, the disorder injection and
  /// the topology schedule's starting point.
  uint64_t seed = 1;

  /// Ingest rounds (fixed arrival-order chunks of the stream). The
  /// default pairs with `kill_every` to visit every topology of the
  /// schedule at least once; raise it for long soaks.
  size_t rounds = 24;

  /// Checkpoint + kill + restore every this many rounds (0 disables the
  /// kill/restore axis entirely — swaps and telemetry still run).
  size_t kill_every = 4;

  /// Stream time per round. With the default drift phase of two rounds,
  /// rates flip every second round, keeping the PlanManager busy.
  Duration round_length = Seconds(10);

  /// Drift scenario shape (src/streamgen/drift.h).
  uint32_t events_per_second = 600;
  uint32_t num_types = 8;    ///< event schema size of the generated stream
  uint32_t num_groups = 12;  ///< group-by key cardinality

  /// Bounded-disorder budget of the injected arrival order; also the
  /// runtime's max_lateness. Must stay below `round_length` so watermarks
  /// keep finalizing within a round.
  Duration max_lateness = Seconds(4);

  /// Live query churn axis (src/query/registration.h): attempt one seeded
  /// register/retire/reactivate every this many data events (0 disables).
  /// Churn pauses while the harness quiesces into a kill, and a due kill
  /// defers until pending churn ops have committed at a swap boundary —
  /// the checkpoint fingerprint pins the compiled query set. The final
  /// oracle diff restricts each id to its committed live intervals.
  size_t churn_every = 0;

  /// Validate metrics snapshots and trace dumps each cycle (and once at
  /// the end). Off only for perf-focused soaks.
  bool validate_telemetry = true;

  /// Scratch directory for checkpoint cycles ("" = under the system temp
  /// directory, named by seed). The harness wipes and reuses it.
  std::string checkpoint_dir;

  /// Final telemetry dumps of the last incarnation, written after Finish
  /// ("" = off). Both formats are what tools/check_metrics_schema.py
  /// validates: metrics as one appended JSON line, trace as JSON lines.
  std::string metrics_out;
  std::string trace_out;

  /// Per-round progress lines on stderr (soak_main --verbose).
  bool verbose = false;
};

/// One completed kill/restore cycle (for the report and for minimizing a
/// failure into a regression test).
struct SoakCycleRecord {
  size_t round = 0;            ///< round after which the kill happened
  uint64_t checkpoint_id = 0;  ///< id the sealed checkpoint carried
  size_t from_shards = 0;      ///< topology checkpointed under
  size_t from_producers = 0;
  size_t to_shards = 0;        ///< topology restored into
  size_t to_producers = 0;
};

/// Outcome of one soak run. `ok` is the single pass/fail bit; everything
/// else is evidence (and feeds soak_main's JSON record).
struct SoakReport {
  bool ok = false;     ///< every round ran and every validation held
  std::string error;   ///< first failure, labelled with round/cycle ("" ok)

  size_t rounds_run = 0;             ///< rounds fully ingested
  uint64_t events_ingested = 0;      ///< data events fed (all incarnations)
  std::vector<SoakCycleRecord> cycles;  ///< completed kill/restore cycles
  size_t checkpoint_retries = 0;  ///< kills deferred by an in-flight swap
  size_t churn_deferred_kills = 0;  ///< kills deferred by pending churn
  uint64_t swaps_accepted = 0;    ///< over all incarnations (PlanManager)
  uint64_t swaps_rejected = 0;    ///< over all incarnations (PlanManager)
  uint64_t queries_registered = 0;  ///< accepted register/reactivate calls
  uint64_t queries_retired = 0;     ///< accepted retire calls
  uint64_t churn_swaps = 0;         ///< churn-committing swaps accepted
  uint64_t telemetry_validations = 0;  ///< snapshot+trace passes that ran
  size_t cells_compared = 0;  ///< oracle cells checked in the final diff
  double wall_seconds = 0;    ///< whole-run wall time
};

/// Runs one composed chaos soak (see the file comment for the scenario).
/// Deterministic in `config`; returns on the FIRST failed validation.
SoakReport RunSoak(const SoakConfig& config);

}  // namespace sharon::chaos

#endif  // SHARON_CHAOS_SOAK_H_
