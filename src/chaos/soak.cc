#include "src/chaos/soak.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "src/adaptive/plan_manager.h"
#include "src/common/metrics.h"
#include "src/obs/exporter.h"
#include "src/obs/runtime_telemetry.h"
#include "src/obs/trace.h"
#include "src/planner/optimizer.h"
#include "src/query/registration.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/drift.h"
#include "src/streamgen/rates.h"
#include "src/twostep/reference.h"

namespace sharon::chaos {
namespace {

using adaptive::PlanManager;
using adaptive::PlanManagerOptions;
using runtime::OpRefusal;
using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

// Works for both ResultCollector (the oracle) and the runtime's
// ResultMerger — both expose the same ForEachCell shape.
template <typename Results>
CellMap CellsOf(const Results& results) {
  CellMap cells;
  results.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

// Every shard x producer combination, ordered so each kill/restore
// transition (including the wrap-around) changes BOTH counts — the
// harshest re-partitioning the restore path supports.
struct Topology {
  size_t shards;
  size_t producers;
};
constexpr Topology kSchedule[] = {{1, 1}, {2, 3}, {8, 1},
                                  {1, 3}, {2, 1}, {8, 3}};
constexpr size_t kScheduleSize = sizeof(kSchedule) / sizeof(kSchedule[0]);

std::string CellKey(const std::string& name, const obs::MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) key += "|" + k + "=" + v;
  return key;
}

/// Validates one incarnation's telemetry while its workers run: registry
/// snapshots must be internally consistent and monotone, trace dumps must
/// contain only known kinds from known sources in merge order. Reset at
/// every restore (a fresh incarnation starts its counters at zero).
class TelemetryValidator {
 public:
  void Reset() { last_counters_.clear(); }

  /// Returns "" when every invariant held, a diagnostic otherwise.
  std::string Validate(const ShardedRuntime& rt) {
    const obs::MetricsSnapshot snap = rt.TelemetrySnapshot();
    for (const auto& h : snap.histograms) {
      uint64_t sum = 0;
      for (const uint64_t b : h.data.buckets) sum += b;
      if (sum != h.data.count) {
        return "histogram " + CellKey(h.name, h.labels) +
               " count != sum of buckets";
      }
    }
    for (const auto& c : snap.counters) {
      const std::string key = CellKey(c.name, c.labels);
      auto [it, inserted] = last_counters_.try_emplace(key, c.value);
      if (!inserted) {
        if (c.value < it->second) {
          return "counter " + key + " regressed within an incarnation";
        }
        it->second = c.value;
      }
    }
    const size_t num_sources = rt.num_shards() + 1 + rt.num_ingest_partitions();
    uint64_t prev_nanos = 0;
    for (const obs::TraceEvent& e : rt.DumpTrace()) {
      if (std::strcmp(obs::TraceKindName(e.kind), "unknown") == 0) {
        return "trace event with unknown kind " +
               std::to_string(static_cast<int>(e.kind));
      }
      if (e.source >= num_sources) {
        return "trace event from out-of-range source " +
               std::to_string(e.source);
      }
      if (e.nanos < prev_nanos) return "trace dump out of merge order";
      prev_nanos = e.nanos;
    }
    return "";
  }

 private:
  std::map<std::string, uint64_t> last_counters_;
};

RuntimeOptions OptionsFor(const Topology& topo, const SoakConfig& config) {
  RuntimeOptions opts;
  opts.num_shards = topo.shards;
  opts.ingest_partitions = topo.producers;
  opts.batch_size = 64;
  opts.queue_capacity = 4;  // tight: backpressure keeps epochs honest
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = config.max_lateness;
  opts.obs.metrics = config.validate_telemetry;
  opts.obs.trace = config.validate_telemetry;
  return opts;
}

}  // namespace

SoakReport RunSoak(const SoakConfig& config) {
  SoakReport report;
  StopWatch wall;
  auto fail = [&](const std::string& what) {
    report.ok = false;
    report.error = what;
    report.wall_seconds = wall.ElapsedSeconds();
    return report;
  };
  if (config.rounds == 0) return fail("config: rounds must be > 0");
  if (config.max_lateness >= config.round_length) {
    return fail("config: max_lateness must stay below round_length");
  }

  // --- the one composed scenario, all derived from config.seed ---------
  DriftConfig drift;
  drift.num_types = config.num_types;
  drift.num_groups = config.num_groups;
  drift.events_per_second = config.events_per_second;
  drift.phase_length = 2 * config.round_length;  // rates flip every 2 rounds
  drift.num_phases =
      static_cast<uint32_t>((config.rounds + 1) / 2);  // covers every round
  drift.seed = config.seed;
  Scenario scenario = GenerateDrift(drift);

  const WindowSpec window{Seconds(10), Seconds(4)};  // slide ∤ length
  // Non-const: the churn axis appends queries and flips the active mask
  // through the registry (safe mid-stream — workers never read workload
  // contents after engine construction).
  Workload workload =
      DriftWorkload(drift, window, /*anchors_per_side=*/6, /*bridges=*/3);
  query::QueryRegistry registry(&workload);

  // The static plan only ever sees phase 0 — drift makes it stale, which
  // is exactly what keeps the PlanManager swapping.
  CostModel cm(RatesOfSlice(scenario.events, 0, drift.phase_length,
                            drift.num_types));
  const SharingPlan initial_plan = OptimizeGreedy(workload, cm).plan;

  // The oracle diff moves to AFTER the run: churn appends queries, and the
  // reference must cover every id ever known before its interval filter.

  DisorderConfig inj;
  inj.max_lateness = config.max_lateness;
  inj.punctuation_period = Seconds(1);
  inj.seed = config.seed * 0x9e3779b97f4a7c15ULL + 1;
  const std::vector<Event> arrivals = InjectDisorder(scenario.events, inj);

  const std::string ckpt_dir =
      config.checkpoint_dir.empty()
          ? (std::filesystem::temp_directory_path() /
             ("sharon_soak_" + std::to_string(config.seed)))
                .string()
          : config.checkpoint_dir;

  PlanManagerOptions popts;
  popts.epoch = Seconds(4);
  popts.window_epochs = 2;
  popts.drift_threshold = 0.3;
  popts.hysteresis = 0.05;

  // --- incarnation state ------------------------------------------------
  size_t topo_idx = config.seed % kScheduleSize;
  auto rt = std::make_unique<ShardedRuntime>(
      workload, initial_plan, OptionsFor(kSchedule[topo_idx], config));
  if (!rt->ok()) return fail("initial runtime: " + rt->error());
  auto mgr =
      std::make_unique<PlanManager>(workload, rt.get(), initial_plan, popts);
  mgr->AttachRegistry(&registry);
  rt->Start();
  TelemetryValidator validator;

  auto fold_manager = [&] {
    report.swaps_accepted += mgr->stats().swaps_accepted;
    report.swaps_rejected += mgr->stats().swaps_rejected;
    report.queries_registered += mgr->stats().queries_registered;
    report.queries_retired += mgr->stats().queries_retired;
    report.churn_swaps += mgr->stats().churn_swaps;
  };

  // Churn schedule: seeded independently of the topology schedule, paced
  // by GLOBAL data-event count so the op sequence replays identically no
  // matter where kills land. Refusals (last active query, dead id) are
  // normal outcomes of a random schedule.
  std::mt19937_64 churn_rng(config.seed * 0xd1342543de82ef95ULL + 3);
  uint64_t churn_data_seen = 0;
  auto churn_step = [&] {
    const uint64_t roll = churn_rng() % 3;
    if (roll == 0) {
      std::uniform_int_distribution<size_t> len_dist(2, 3);
      const size_t len = len_dist(churn_rng);
      std::vector<EventTypeId> types(config.num_types);
      for (uint32_t t = 0; t < config.num_types; ++t) types[t] = t;
      std::shuffle(types.begin(), types.end(), churn_rng);
      types.resize(len);
      Query q;
      q.pattern = Pattern(std::move(types));
      q.agg = AggSpec::CountStar();
      q.window = window;
      q.partition_attr = workload.partition_attr();
      mgr->RegisterQuery(std::move(q));
    } else if (roll == 1) {
      const QueryId id = static_cast<QueryId>(churn_rng() % workload.size());
      mgr->RetireQuery(id);
    } else {
      std::vector<QueryId> dead;
      for (const Query& q : workload.queries()) {
        if (!registry.live(q.id)) dead.push_back(q.id);
      }
      if (!dead.empty()) mgr->ReactivateQuery(dead[churn_rng() % dead.size()]);
    }
  };

  // Rounds are fixed arrival-order chunks; the last round takes the
  // remainder so every event is ingested exactly once.
  const size_t per_round = arrivals.size() / config.rounds;
  if (per_round == 0) return fail("config: fewer arrivals than rounds");

  bool kill_pending = false;  // a due kill deferred by an in-flight swap
  size_t rr = 0;              // data-event round robin across producers
  for (size_t round = 0; round < config.rounds; ++round) {
    const size_t begin = round * per_round;
    const size_t end =
        round + 1 == config.rounds ? arrivals.size() : begin + per_round;
    const size_t producers = rt->num_ingest_partitions();
    const bool last_round = round + 1 == config.rounds;
    const bool kill_due = config.kill_every > 0 &&
                          (round + 1) % config.kill_every == 0 && !last_round;
    // In the round leading into a kill — and while one stays deferred on
    // an in-flight swap — bypass the manager: an operator about to
    // checkpoint stops re-planning, and without new swap requests the
    // draining one retires within a round or two of stream time.
    // Otherwise epoch evaluations keep a swap in flight nearly
    // continuously and starve the kill/restore axis. EXCEPT while churn
    // ops are pending: their commit needs watermarks flowing through the
    // manager (retries fire on punctuations), so quiescing then would
    // deadlock the deferred kill.
    const bool quiesce_planning =
        (kill_pending || kill_due) && mgr->pending_churn() == 0;
    for (size_t i = begin; i < end; ++i) {
      const Event& e = arrivals[i];
      if (IsWatermark(e)) {
        for (size_t p = 0; p < producers; ++p) {
          if (quiesce_planning) {
            rt->ingest_partition(p).IngestWatermark(e.time);
          } else {
            mgr->Ingest(e, p);
          }
        }
      } else {
        const size_t p = rr++ % producers;
        if (quiesce_planning) {
          rt->ingest_partition(p).Ingest(e);
        } else {
          mgr->Ingest(e, p);
        }
        ++report.events_ingested;
        // Churn rides the same quiescence rule as re-planning: an
        // operator about to checkpoint stops changing the query set.
        // (kill_due/kill_pending alone — before quiescence engages —
        // already pauses churn, or fresh ops would re-defer the kill
        // indefinitely.)
        if (config.churn_every > 0 &&
            ++churn_data_seen % config.churn_every == 0 &&
            !quiesce_planning && !kill_due && !kill_pending) {
          churn_step();
        }
      }
    }
    ++report.rounds_run;
    if (config.verbose) {
      std::fprintf(stderr, "soak: round %zu/%zu done (topology %zux%zu)\n",
                   round + 1, config.rounds, rt->num_shards(),
                   rt->num_ingest_partitions());
    }

    if (config.validate_telemetry) {
      const std::string err = validator.Validate(*rt);
      if (!err.empty()) {
        return fail("round " + std::to_string(round) + ": telemetry: " + err);
      }
      ++report.telemetry_validations;
    }

    // Kill/restore cycle: due every kill_every rounds (never after the
    // final round — that one ends in Finish + the oracle diff).
    if (!kill_due && !kill_pending) continue;
    if (last_round) break;
    if (mgr->pending_churn() > 0) {
      // The checkpoint fingerprint pins the compiled query set; a cut
      // with churn ops still pending would restore into a mask the
      // manifest never saw. Let the ops commit at a swap boundary first.
      kill_pending = true;
      ++report.churn_deferred_kills;
      continue;
    }

    std::filesystem::remove_all(ckpt_dir);
    const ShardedRuntime::CheckpointResult cp = rt->Checkpoint(ckpt_dir);
    if (!cp.ok) {
      // The only legitimate refusal here is a swap still draining: defer
      // the kill to the next round boundary. Anything else is a bug.
      if (cp.code != OpRefusal::kSwapInFlight) {
        return fail("round " + std::to_string(round) +
                    ": checkpoint refused [" + cp.reason + "]");
      }
      kill_pending = true;
      ++report.checkpoint_retries;
      continue;
    }
    kill_pending = false;

    SoakCycleRecord cycle;
    cycle.round = round;
    cycle.checkpoint_id = cp.id;
    cycle.from_shards = rt->num_shards();
    cycle.from_producers = rt->num_ingest_partitions();

    // Kill: the incumbent plan is what the checkpoint fingerprinted.
    const SharingPlan incumbent = mgr->current_plan();
    fold_manager();
    mgr.reset();
    rt.reset();

    // Restore into the NEXT topology — different shard count AND
    // different producer count by schedule construction.
    topo_idx = (topo_idx + 1) % kScheduleSize;
    ShardedRuntime::RestoreOptions ropts;
    ropts.runtime = OptionsFor(kSchedule[topo_idx], config);
    ropts.workload = &workload;
    ropts.plan = incumbent;
    ShardedRuntime::RestoreOutcome restored =
        ShardedRuntime::Restore(ckpt_dir, ropts);
    if (!restored.runtime) {
      return fail("round " + std::to_string(round) + ": restore into " +
                  std::to_string(kSchedule[topo_idx].shards) + "x" +
                  std::to_string(kSchedule[topo_idx].producers) + ": " +
                  restored.error);
    }
    rt = std::move(restored.runtime);
    mgr = std::make_unique<PlanManager>(workload, rt.get(), incumbent, popts);
    mgr->AttachRegistry(&registry);  // intervals persist across incarnations
    rt->Start();
    validator.Reset();

    cycle.to_shards = rt->num_shards();
    cycle.to_producers = rt->num_ingest_partitions();
    report.cycles.push_back(cycle);
    if (config.verbose) {
      std::fprintf(stderr, "soak: cycle %zu: restored %zux%zu -> %zux%zu\n",
                   report.cycles.size(), cycle.from_shards,
                   cycle.from_producers, cycle.to_shards, cycle.to_producers);
    }
  }

  rt->Finish();
  fold_manager();
  if (config.validate_telemetry) {
    const std::string err = validator.Validate(*rt);
    if (!err.empty()) return fail("post-finish telemetry: " + err);
    ++report.telemetry_validations;
  }
  if (rt->stats().TotalLateDropped() != 0) {
    return fail("final incarnation dropped in-budget events as late");
  }

  // The verdict: finalized cells of the whole composed run, bit-identical
  // to the two-step oracle over the sorted stream — restricted per query
  // id to its committed live intervals (the churn result-surface
  // contract; with churn disabled every interval is [0, ∞) and the filter
  // passes everything).
  CellMap oracle_cells;
  ReferenceResults(workload, scenario.events)
      .ForEachCell([&](const ResultKey& key, const AggState& state) {
        if (registry.OwnsWindowClose(key.query, window.WindowEnd(key.window))) {
          oracle_cells[{key.query, key.window, key.group}] = state;
        }
      });
  if (oracle_cells.empty()) return fail("oracle produced no cells");
  const CellMap actual = CellsOf(rt->results());
  if (actual.size() != oracle_cells.size()) {
    return fail("cell count mismatch: oracle " +
                std::to_string(oracle_cells.size()) + ", soak " +
                std::to_string(actual.size()));
  }
  for (const auto& [key, state] : oracle_cells) {
    const auto it = actual.find(key);
    if (it == actual.end() || !(it->second == state)) {
      return fail("cell diverged at query=" +
                  std::to_string(std::get<0>(key)) +
                  " window=" + std::to_string(std::get<1>(key)) +
                  " group=" + std::to_string(std::get<2>(key)));
    }
    if (!rt->results().Finalized(std::get<0>(key), std::get<1>(key))) {
      return fail("cell not finalized at query=" +
                  std::to_string(std::get<0>(key)) +
                  " window=" + std::to_string(std::get<1>(key)));
    }
  }
  report.cells_compared = oracle_cells.size();

  // Final telemetry dumps (post-Finish: the snapshot carries the folded
  // RuntimeStats gauges), in the formats the schema checker validates.
  if (!config.metrics_out.empty()) {
    obs::ExporterOptions eopts;
    eopts.metrics_path = config.metrics_out;
    obs::SnapshotExporter exporter(
        [&] { return rt->TelemetrySnapshot(); }, eopts);
    if (!exporter.ExportNow()) {
      return fail("metrics dump failed: " + exporter.error());
    }
  }
  if (!config.trace_out.empty()) {
    const std::string err =
        obs::WriteTraceFile(config.trace_out, rt->DumpTrace());
    if (!err.empty()) return fail("trace dump failed: " + err);
  }

  std::filesystem::remove_all(ckpt_dir);
  report.ok = true;
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

}  // namespace sharon::chaos
