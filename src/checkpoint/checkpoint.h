// Watermark-consistent checkpoint/restore of executor state.
//
// A checkpoint captures the COMPLETE state of a running workload — per-
// group prefix counters and chain snapshots, staged and finalized result
// cells, reorder-buffered events, watermark frontiers, counter rollups —
// at one consistent cut of the stream, so a restored process continues as
// if it had never stopped: finalized cells are bit-identical to an
// uninterrupted run (tests/checkpoint_diff_test.cc).
//
// The cut uses the same in-band marker discipline as the plan hot-swap
// (src/runtime/plan_swap.h): the ingest thread stages a command per shard
// and broadcasts a marker punctuation ordered after everything routed so
// far, each shard worker quiesces at the marker (it sits between batches,
// so no event is mid-flight in an executor) and serializes its private
// state, then resumes. Because every shard cuts at the same marker, and
// watermark punctuations are broadcast identically to all shards, the
// per-shard frontiers of the cut agree — that is what makes the boundary
// invariant hold:
//
//   Every window is finalized by exactly one process incarnation: windows
//   finalized before the cut travel inside the checkpoint as immutable
//   result cells; every other window is finalized by whichever process
//   resumes from the checkpoint (the finalization limit is part of the
//   serialized scalars, so a restored engine never re-finalizes).
//
// On-disk layout: one directory per checkpoint — `shard-NNN.bin` written
// by each shard worker (parallel I/O) plus `manifest.bin` written LAST by
// the coordinator; a directory without a manifest is a torn checkpoint
// and refuses to restore. Every file is a sequence of length-prefixed,
// schema-tagged, CRC-checked frames of endian-stable bytes
// (src/common/serde.h), so a checkpoint written on one machine restores
// on another.
//
// Restore may target a DIFFERENT shard count: all executor state except
// the shared scalars is keyed by the partition-attribute group, so the
// router re-partitions serialized group records, result cells and
// buffered events with the same ShardIndexFor hash the ingest path uses.
// ShardedRuntime::Checkpoint / ShardedRuntime::Restore coordinate the
// shards (src/runtime/sharded_runtime.h); this header owns the format.

#ifndef SHARON_CHECKPOINT_CHECKPOINT_H_
#define SHARON_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/common/watermark.h"
#include "src/exec/engine.h"
#include "src/exec/multi_engine.h"

namespace sharon::checkpoint {

/// Per-frame magic ("SHCK" little-endian) — catches misaligned or foreign
/// files before any length is trusted.
inline constexpr uint32_t kMagic = 0x4b434853;

/// Format version; bumped on any frame-schema change. Restore refuses a
/// mismatched version outright (no cross-version migration).
inline constexpr uint32_t kFormatVersion = 1;

/// Name of the coordinator-written manifest inside a checkpoint
/// directory. Written LAST: its presence marks the checkpoint complete.
inline constexpr char kManifestFileName[] = "manifest.bin";

/// Schema tag of one frame.
enum class FrameTag : uint32_t {
  kManifest = 1,        ///< checkpoint-wide metadata (manifest.bin only)
  kShardHeader = 2,     ///< shard index / topology of one shard file
  kEngineScalars = 3,   ///< one engine's non-group-keyed state
  kGroups = 4,          ///< one engine's per-group records
  kResultCells = 5,     ///< one engine's staged + finalized cells
  kReorder = 6,         ///< one engine's reorder-buffered events
  kArchiveCells = 7,    ///< shard archive (cells of swap-retired engines)
  kRetiredCounters = 8, ///< counter rollup of swap-retired engines
  kEnd = 9,             ///< end-of-file sentinel
};

/// Appends one frame: magic | tag | u64 payload length | payload |
/// CRC-32 of the payload.
void AppendFrame(std::vector<uint8_t>& out, FrameTag tag,
                 const std::vector<uint8_t>& payload);

/// Sequential frame reader with integrity checking. Every Next() call
/// verifies magic, bounds and CRC before handing out the payload.
class FrameParser {
 public:
  FrameParser(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Advances to the next frame. Returns an empty string and fills
  /// tag/payload on success, a diagnostic otherwise (truncation, bad
  /// magic, CRC mismatch, trailing bytes past kEnd).
  std::string Next(FrameTag* tag, serde::BinaryReader* payload);

  /// True once the kEnd frame was consumed.
  bool done() const { return done_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool done_ = false;
};

/// Checkpoint-wide metadata. The fingerprint pins the compiled plan: a
/// checkpoint only restores into a runtime whose compiled templates are
/// structurally identical (group payloads are positional in them).
struct Manifest {
  uint32_t version = kFormatVersion;
  uint64_t checkpoint_id = 0;
  /// Watermark-aligned boundary recorded for the cut: the close of the
  /// last window whose start covers the ingest high-mark (the same grid
  /// point a plan swap would pick). Informational: the state cut is the
  /// marker position; the boundary names the first window whose
  /// finalization the restored incarnation can still influence.
  Timestamp boundary = 0;
  uint8_t mode = 0;  ///< 1 = uniform Engine shards, 2 = MultiEngine shards
  uint64_t num_shards = 0;
  uint64_t num_segments = 1;  ///< engines per shard (1 unless MultiEngine)
  AttrIndex partition = kNoAttr;
  uint64_t plan_fingerprint = 0;
  DisorderPolicy disorder;
  Timestamp merged_watermark = kNoWatermark;  ///< min over shard frontiers
  Timestamp ingest_high_mark = 0;  ///< max routed data-event time
  uint64_t swaps_requested = 0;    ///< incumbent plan id (adaptive baseline)
  uint64_t events_ingested = 0;    ///< lifetime ingest count at the cut
};

/// Writes `manifest` to `path` (atomically: temp file + rename). Empty
/// string on success.
std::string SaveManifest(const Manifest& m, const std::string& path);

/// Reads and verifies a manifest. Refuses missing files, corrupt frames
/// and version mismatches with a diagnostic.
std::string LoadManifest(const std::string& path, Manifest* out);

/// Structural fingerprint of a compiled uniform plan: window, partition,
/// counter templates (pattern, projected spec, shared flag) and chain
/// wiring. Two plans with equal fingerprints instantiate identical
/// per-group state layouts.
uint64_t PlanFingerprint(const CompiledEngine& compiled);

/// Fingerprint of a multi-engine plan: per-segment compiled fingerprints
/// plus the original-id routing.
uint64_t PlanFingerprint(const MultiEnginePlan& plan);

/// One serialized result cell. `store` distinguishes staged (0) from
/// finalized (1) cells; archive cells ignore it.
struct CellRecord {
  uint8_t store = 0;
  QueryId query = 0;
  WindowId window = 0;
  AttrValue group = 0;
  AggState state;
};

/// What one shard worker hands the encoder at the marker cut. Exactly one
/// of engine/multi is non-null; archive/retired may be null (empty).
struct ShardCheckpointInput {
  uint64_t checkpoint_id = 0;
  Timestamp boundary = 0;
  size_t shard_index = 0;
  size_t num_shards = 0;
  Timestamp merged_watermark = kNoWatermark;
  const Engine* engine = nullptr;
  const MultiEngine* multi = nullptr;
  const ResultCollector* archive = nullptr;
  const WatermarkStats* retired = nullptr;
};

/// Encodes one shard's complete state as a frame sequence (the contents
/// of one `shard-NNN.bin`).
std::vector<uint8_t> EncodeShardCheckpoint(const ShardCheckpointInput& in);

/// Decoded, routable form of one shard file. Group payloads stay opaque
/// (forwarded to Engine::LoadGroupState by the restore router).
struct ShardCheckpointData {
  uint64_t checkpoint_id = 0;
  Timestamp boundary = 0;
  uint64_t shard_index = 0;
  uint64_t num_shards = 0;
  uint8_t mode = 0;
  Timestamp merged_watermark = kNoWatermark;

  struct SegmentState {
    Engine::ScalarState scalars;
    std::vector<std::pair<AttrValue, std::vector<uint8_t>>> groups;
    std::vector<CellRecord> cells;
    std::vector<Event> buffered;
  };
  std::vector<SegmentState> segments;
  std::vector<CellRecord> archive;
  WatermarkStats retired;
};

/// Parses and integrity-checks one shard file. Empty string on success.
std::string DecodeShardCheckpoint(const std::vector<uint8_t>& bytes,
                                  ShardCheckpointData* out);

/// `shard-NNN.bin` for shard `index`.
std::string ShardFileName(size_t index);

/// Whole-file binary read/write helpers (write is temp-file + rename so a
/// crash never leaves a half-written file under the final name). Empty
/// string on success.
std::string WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes);
std::string ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

}  // namespace sharon::checkpoint

#endif  // SHARON_CHECKPOINT_CHECKPOINT_H_
