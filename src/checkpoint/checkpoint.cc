#include "src/checkpoint/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace sharon::checkpoint {

namespace {

// boost::hash_combine-style accumulation over 64-bit words.
uint64_t Mix(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

void SaveScalars(serde::BinaryWriter& w, const Engine::ScalarState& s) {
  w.I64(s.now);
  w.I64(s.frontier);
  w.I64(s.high_mark);
  w.I64(s.next_finalize);
  w.I64(s.results_floor);
  w.U64(s.events_since_sweep);
  w.I64(s.wm.watermark);
  w.I64(s.wm.safe_point);
  w.U64(s.wm.late_dropped);
  w.U64(s.wm.evicted_panes);
  w.U64(s.wm.evicted_groups);
  w.U64(s.wm.finalized_windows);
  w.U64(s.wm.finalized_cells);
  w.U64(s.wm.suppressed_cells);
  w.U64(s.wm.regressions);
  w.U64(s.wm.buffered_peak);
}

Engine::ScalarState LoadScalars(serde::BinaryReader& r) {
  Engine::ScalarState s;
  s.now = r.I64();
  s.frontier = r.I64();
  s.high_mark = r.I64();
  s.next_finalize = r.I64();
  s.results_floor = r.I64();
  s.events_since_sweep = r.U64();
  s.wm.watermark = r.I64();
  s.wm.safe_point = r.I64();
  s.wm.late_dropped = r.U64();
  s.wm.evicted_panes = r.U64();
  s.wm.evicted_groups = r.U64();
  s.wm.finalized_windows = r.U64();
  s.wm.finalized_cells = r.U64();
  s.wm.suppressed_cells = r.U64();
  s.wm.regressions = r.U64();
  s.wm.buffered_peak = r.U64();
  return s;
}

void SaveCell(serde::BinaryWriter& w, const CellRecord& c) {
  w.U8(c.store);
  w.U32(c.query);
  w.I64(c.window);
  w.I64(c.group);
  SaveAggState(w, c.state);
}

CellRecord LoadCell(serde::BinaryReader& r) {
  CellRecord c;
  c.store = r.U8();
  c.query = r.U32();
  c.window = r.I64();
  c.group = r.I64();
  c.state = LoadAggState(r);
  return c;
}

void SaveEvent(serde::BinaryWriter& w, const Event& e) {
  w.I64(e.time);
  w.U32(e.type);
  serde::SaveAttrs(w, e.attrs);
}

Event LoadEvent(serde::BinaryReader& r) {
  Event e;
  e.time = r.I64();
  e.type = r.U32();
  serde::LoadAttrs(r, e.attrs);
  return e;
}

/// Collects every cell of `store` tagged with `store_id`.
void CollectCells(const ResultCollector& store, uint8_t store_id,
                  std::vector<CellRecord>* out) {
  store.ForEachCell([&](const ResultKey& key, const AggState& state) {
    out->push_back({store_id, key.query, key.window, key.group, state});
  });
}

/// Encodes the four per-engine frames for segment `segment`.
void EncodeEngineFrames(const Engine& engine, size_t segment,
                        std::vector<uint8_t>& out) {
  {
    serde::BinaryWriter w;
    w.U64(segment);
    SaveScalars(w, engine.SaveScalarState());
    AppendFrame(out, FrameTag::kEngineScalars, w.buffer());
  }
  {
    serde::BinaryWriter w;
    w.U64(segment);
    engine.SaveGroupStates(w);
    AppendFrame(out, FrameTag::kGroups, w.buffer());
  }
  {
    std::vector<CellRecord> cells;
    CollectCells(engine.staged_results(), 0, &cells);
    CollectCells(engine.results(), 1, &cells);
    serde::BinaryWriter w;
    w.U64(segment);
    w.U64(cells.size());
    for (const CellRecord& c : cells) SaveCell(w, c);
    AppendFrame(out, FrameTag::kResultCells, w.buffer());
  }
  {
    std::vector<Event> buffered;
    engine.SaveBufferedEvents([&](const Event& e) { buffered.push_back(e); });
    serde::BinaryWriter w;
    w.U64(segment);
    w.U64(buffered.size());
    for (const Event& e : buffered) SaveEvent(w, e);
    AppendFrame(out, FrameTag::kReorder, w.buffer());
  }
}

}  // namespace

void AppendFrame(std::vector<uint8_t>& out, FrameTag tag,
                 const std::vector<uint8_t>& payload) {
  serde::BinaryWriter header;
  header.U32(kMagic);
  header.U32(static_cast<uint32_t>(tag));
  header.U64(payload.size());
  out.insert(out.end(), header.buffer().begin(), header.buffer().end());
  out.insert(out.end(), payload.begin(), payload.end());
  serde::BinaryWriter crc;
  crc.U32(serde::Crc32(payload.data(), payload.size()));
  out.insert(out.end(), crc.buffer().begin(), crc.buffer().end());
}

std::string FrameParser::Next(FrameTag* tag, serde::BinaryReader* payload) {
  if (done_) return "frame read past the end-of-file sentinel";
  if (size_ - pos_ < 20) return "truncated frame header";
  serde::BinaryReader header(data_ + pos_, 16);
  if (header.U32() != kMagic) return "bad frame magic (not a checkpoint?)";
  const uint32_t raw_tag = header.U32();
  const uint64_t len = header.U64();
  if (raw_tag < static_cast<uint32_t>(FrameTag::kManifest) ||
      raw_tag > static_cast<uint32_t>(FrameTag::kEnd)) {
    return "unknown frame tag " + std::to_string(raw_tag);
  }
  if (len > size_ - pos_ - 20) return "frame length exceeds file size";
  const uint8_t* body = data_ + pos_ + 16;
  serde::BinaryReader crc(body + len, 4);
  if (crc.U32() != serde::Crc32(body, static_cast<size_t>(len))) {
    return "frame CRC mismatch (corrupt checkpoint)";
  }
  pos_ += 20 + static_cast<size_t>(len);
  *tag = static_cast<FrameTag>(raw_tag);
  *payload = serde::BinaryReader(body, static_cast<size_t>(len));
  if (*tag == FrameTag::kEnd) {
    done_ = true;
    if (pos_ != size_) return "trailing bytes after end-of-file frame";
  }
  return "";
}

uint64_t PlanFingerprint(const CompiledEngine& compiled) {
  uint64_t h = 0x53686172u;  // "Shar"
  h = Mix(h, static_cast<uint64_t>(compiled.window.length));
  h = Mix(h, static_cast<uint64_t>(compiled.window.slide));
  h = Mix(h, compiled.partition);
  h = Mix(h, compiled.counters.size());
  for (const auto& c : compiled.counters) {
    h = Mix(h, c.shared ? 1 : 0);
    h = Mix(h, static_cast<uint64_t>(c.spec.fn));
    h = Mix(h, c.spec.target_type);
    h = Mix(h, c.spec.target_attr);
    h = Mix(h, c.pattern.length());
    for (EventTypeId t : c.pattern.types()) h = Mix(h, t);
  }
  h = Mix(h, compiled.chains.size());
  for (const auto& ch : compiled.chains) {
    h = Mix(h, ch.queries.size());
    for (QueryId q : ch.queries) h = Mix(h, q);
    h = Mix(h, ch.counter_idx.size());
    for (uint32_t ci : ch.counter_idx) h = Mix(h, ci);
  }
  return h;
}

uint64_t PlanFingerprint(const MultiEnginePlan& plan) {
  uint64_t h = 0x4d756c74u;  // "Mult"
  h = Mix(h, plan.segments.size());
  for (const auto& seg : plan.segments) {
    h = Mix(h, seg.compiled ? PlanFingerprint(*seg.compiled) : 0);
    h = Mix(h, seg.original_ids.size());
    for (QueryId q : seg.original_ids) h = Mix(h, q);
  }
  h = Mix(h, plan.total_queries);
  return h;
}

std::string SaveManifest(const Manifest& m, const std::string& path) {
  serde::BinaryWriter w;
  w.U32(m.version);
  w.U64(m.checkpoint_id);
  w.I64(m.boundary);
  w.U8(m.mode);
  w.U64(m.num_shards);
  w.U64(m.num_segments);
  w.U32(m.partition);
  w.U64(m.plan_fingerprint);
  w.U8(m.disorder.enabled ? 1 : 0);
  w.I64(m.disorder.max_lateness);
  w.U8(m.disorder.evict ? 1 : 0);
  w.U8(m.disorder.close_on_finish ? 1 : 0);
  w.I64(m.merged_watermark);
  w.I64(m.ingest_high_mark);
  w.U64(m.swaps_requested);
  w.U64(m.events_ingested);
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, FrameTag::kManifest, w.buffer());
  AppendFrame(bytes, FrameTag::kEnd, {});
  return WriteFileBytes(path, bytes);
}

std::string LoadManifest(const std::string& path, Manifest* out) {
  std::vector<uint8_t> bytes;
  std::string err = ReadFileBytes(path, &bytes);
  if (!err.empty()) return err;
  FrameParser parser(bytes.data(), bytes.size());
  FrameTag tag;
  serde::BinaryReader r(nullptr, 0);
  err = parser.Next(&tag, &r);
  if (!err.empty()) return err;
  if (tag != FrameTag::kManifest) return "manifest frame missing";
  out->version = r.U32();
  if (out->version != kFormatVersion) {
    return "checkpoint format version mismatch: file has v" +
           std::to_string(out->version) + ", this build reads v" +
           std::to_string(kFormatVersion);
  }
  out->checkpoint_id = r.U64();
  out->boundary = r.I64();
  out->mode = r.U8();
  out->num_shards = r.U64();
  out->num_segments = r.U64();
  out->partition = r.U32();
  out->plan_fingerprint = r.U64();
  out->disorder.enabled = r.U8() != 0;
  out->disorder.max_lateness = r.I64();
  out->disorder.evict = r.U8() != 0;
  out->disorder.close_on_finish = r.U8() != 0;
  out->merged_watermark = r.I64();
  out->ingest_high_mark = r.I64();
  out->swaps_requested = r.U64();
  out->events_ingested = r.U64();
  if (!r.ok()) return "manifest truncated";
  return "";
}

std::vector<uint8_t> EncodeShardCheckpoint(const ShardCheckpointInput& in) {
  std::vector<uint8_t> out;
  const uint8_t mode = in.engine ? 1 : 2;
  const size_t num_segments = in.engine ? 1 : in.multi->engines().size();
  {
    serde::BinaryWriter w;
    w.U64(in.checkpoint_id);
    w.I64(in.boundary);
    w.U64(in.shard_index);
    w.U64(in.num_shards);
    w.U8(mode);
    w.U64(num_segments);
    w.I64(in.merged_watermark);
    AppendFrame(out, FrameTag::kShardHeader, w.buffer());
  }
  if (in.engine) {
    EncodeEngineFrames(*in.engine, 0, out);
  } else {
    for (size_t s = 0; s < num_segments; ++s) {
      EncodeEngineFrames(*in.multi->engines()[s], s, out);
    }
  }
  {
    std::vector<CellRecord> cells;
    if (in.archive) CollectCells(*in.archive, 1, &cells);
    serde::BinaryWriter w;
    w.U64(cells.size());
    for (const CellRecord& c : cells) SaveCell(w, c);
    AppendFrame(out, FrameTag::kArchiveCells, w.buffer());
  }
  {
    Engine::ScalarState retired;  // reuse the scalar schema, wm counters only
    if (in.retired) retired.wm = *in.retired;
    serde::BinaryWriter w;
    SaveScalars(w, retired);
    AppendFrame(out, FrameTag::kRetiredCounters, w.buffer());
  }
  AppendFrame(out, FrameTag::kEnd, {});
  return out;
}

std::string DecodeShardCheckpoint(const std::vector<uint8_t>& bytes,
                                  ShardCheckpointData* out) {
  FrameParser parser(bytes.data(), bytes.size());
  bool saw_header = false;
  while (!parser.done()) {
    FrameTag tag;
    serde::BinaryReader r(nullptr, 0);
    std::string err = parser.Next(&tag, &r);
    if (!err.empty()) return err;
    if (tag != FrameTag::kShardHeader && tag != FrameTag::kEnd && !saw_header) {
      return "shard file does not start with a shard header frame";
    }
    switch (tag) {
      case FrameTag::kShardHeader: {
        saw_header = true;
        out->checkpoint_id = r.U64();
        out->boundary = r.I64();
        out->shard_index = r.U64();
        out->num_shards = r.U64();
        out->mode = r.U8();
        const uint64_t num_segments = r.U64();
        out->merged_watermark = r.I64();
        if (!r.ok()) return "shard header truncated";
        if (num_segments == 0 || num_segments > 4096) {
          return "implausible segment count in shard header";
        }
        out->segments.resize(static_cast<size_t>(num_segments));
        break;
      }
      case FrameTag::kEngineScalars: {
        const uint64_t seg = r.U64();
        if (seg >= out->segments.size()) return "segment index out of range";
        out->segments[static_cast<size_t>(seg)].scalars = LoadScalars(r);
        if (!r.ok()) return "engine scalars truncated";
        break;
      }
      case FrameTag::kGroups: {
        const uint64_t seg = r.U64();
        if (seg >= out->segments.size()) return "segment index out of range";
        auto& groups = out->segments[static_cast<size_t>(seg)].groups;
        const uint64_t count = r.U64();
        for (uint64_t i = 0; i < count && r.ok(); ++i) {
          // SaveFlatMap layout: length-prefixed record of (key, payload);
          // keep the payload opaque for the resharding router.
          serde::BinaryReader rec = r.Block();
          const AttrValue g = rec.I64();
          groups.emplace_back(g, rec.Rest());
        }
        if (!r.ok()) return "group records truncated";
        break;
      }
      case FrameTag::kResultCells: {
        const uint64_t seg = r.U64();
        if (seg >= out->segments.size()) return "segment index out of range";
        auto& cells = out->segments[static_cast<size_t>(seg)].cells;
        const uint64_t count = r.U64();
        for (uint64_t i = 0; i < count && r.ok(); ++i) {
          cells.push_back(LoadCell(r));
        }
        if (!r.ok()) return "result cells truncated";
        break;
      }
      case FrameTag::kReorder: {
        const uint64_t seg = r.U64();
        if (seg >= out->segments.size()) return "segment index out of range";
        auto& buffered = out->segments[static_cast<size_t>(seg)].buffered;
        const uint64_t count = r.U64();
        for (uint64_t i = 0; i < count && r.ok(); ++i) {
          buffered.push_back(LoadEvent(r));
        }
        if (!r.ok()) return "reorder buffer truncated";
        break;
      }
      case FrameTag::kArchiveCells: {
        const uint64_t count = r.U64();
        for (uint64_t i = 0; i < count && r.ok(); ++i) {
          out->archive.push_back(LoadCell(r));
        }
        if (!r.ok()) return "archive cells truncated";
        break;
      }
      case FrameTag::kRetiredCounters: {
        out->retired = LoadScalars(r).wm;
        if (!r.ok()) return "retired counters truncated";
        break;
      }
      case FrameTag::kManifest:
        return "manifest frame inside a shard file";
      case FrameTag::kEnd:
        break;
    }
  }
  if (!saw_header) return "shard file has no shard header frame";
  return "";
}

std::string ShardFileName(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%03zu.bin", index);
  return buf;
}

std::string WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
  // Temp file + fsync + rename + directory fsync: after a power loss the
  // final name either does not exist or holds the complete bytes — which
  // is what lets "manifest present" mean "checkpoint valid". A rename
  // without the fsyncs can survive a crash that the data blocks did not.
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return "cannot open " + tmp + " for writing";
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  const bool flushed = std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!wrote || !flushed) return "write failed on " + tmp;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return "rename " + tmp + " -> " + path + " failed";
  }
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(),
                            O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // make the rename itself durable
    ::close(dir_fd);
  }
  return "";
#else
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return "cannot open " + tmp + " for writing";
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) return "write failed on " + tmp;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return "rename " + tmp + " -> " + path + " failed";
  }
  return "";
#endif
}

std::string ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return "cannot open " + path;
  const std::streamsize size = f.tellg();
  f.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !f.read(reinterpret_cast<char*>(out->data()), size)) {
    return "read failed on " + path;
  }
  return "";
}

}  // namespace sharon::checkpoint
