#!/usr/bin/env python3
"""Validates telemetry JSON-lines dumps (src/obs/exporter.h wire format).

Usage:
    python3 tools/check_metrics_schema.py FILE [FILE ...]

Every line of every FILE must be one self-contained JSON object of
schema_version 1, either

  kind="metrics"  a whole metrics snapshot:
      {"schema_version":1,"kind":"metrics","seq":N,"wall_seconds":F,
       "counters":[{"name":S,"labels":{S:S...},"value":N>=0}...],
       "gauges":  [{"name":S,"labels":{...},"value":INT}...],
       "histograms":[{"name":S,"labels":{...},"count":N,"sum":N,
                      "buckets":[34 non-negative ints]}...]}
      with count == sum(buckets) for every histogram, or

  kind="trace"    one lifecycle event:
      {"schema_version":1,"kind":"trace","nanos":N,"seq":N,"source":N,
       "event":S,"stream_time":INT,"a":INT,"b":INT}
      with event drawn from the TraceKind name set (src/obs/trace.h).

Unknown schema versions are refused, never guessed at — bump
obs::kSchemaVersion and teach this checker the new shape first. Exit 0
when every line of every file validates, 1 otherwise. CI runs this on a
metrics-enabled bench_runtime_scaling --quick smoke.
"""

import json
import sys

KNOWN_SCHEMA_VERSIONS = {1}
NUM_HISTOGRAM_BUCKETS = 34  # HistogramCell::kNumBuckets (src/obs/metrics.h)

# TraceKindName values, src/obs/trace.cc.
TRACE_EVENTS = {
    "swap_requested", "swap_boundary", "swap_dual_run_start", "swap_retired",
    "checkpoint_requested", "checkpoint_quiesce", "checkpoint_shard_done",
    "checkpoint_sealed", "watermark_advance", "reorder_release", "late_drop",
    "queue_full_stall", "reopt_triggered", "reopt_decision",
    "swap_rejected", "checkpoint_rejected",
    "query_registered", "query_retired",
}


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def check_labels(labels, where):
    if not isinstance(labels, dict):
        return [f"{where}: labels must be an object"]
    return [f"{where}: label {k!r} -> {v!r} must be string:string"
            for k, v in labels.items()
            if not (isinstance(k, str) and isinstance(v, str))]


def check_series(entry, where, value_check, value_desc):
    errors = []
    if not isinstance(entry, dict):
        return [f"{where}: must be an object"]
    if not isinstance(entry.get("name"), str) or not entry.get("name"):
        errors.append(f"{where}: missing/empty name")
    errors += check_labels(entry.get("labels"), where)
    if not value_check(entry.get("value")):
        errors.append(f"{where}: value must be {value_desc}")
    return errors


def check_metrics_line(rec):
    errors = []
    if not is_uint(rec.get("seq")):
        errors.append("seq must be a non-negative integer")
    if not isinstance(rec.get("wall_seconds"), (int, float)) \
            or isinstance(rec.get("wall_seconds"), bool):
        errors.append("wall_seconds must be a number")
    for key, value_check, desc in (("counters", is_uint, "a uint"),
                                   ("gauges", is_int, "an int")):
        series = rec.get(key)
        if not isinstance(series, list):
            errors.append(f"{key} must be an array")
            continue
        for i, entry in enumerate(series):
            errors += check_series(entry, f"{key}[{i}]", value_check, desc)
    histograms = rec.get("histograms")
    if not isinstance(histograms, list):
        errors.append("histograms must be an array")
        return errors
    for i, h in enumerate(histograms):
        where = f"histograms[{i}]"
        if not isinstance(h, dict):
            errors.append(f"{where}: must be an object")
            continue
        if not isinstance(h.get("name"), str) or not h.get("name"):
            errors.append(f"{where}: missing/empty name")
        errors += check_labels(h.get("labels"), where)
        buckets = h.get("buckets")
        if (not isinstance(buckets, list)
                or len(buckets) != NUM_HISTOGRAM_BUCKETS
                or not all(is_uint(b) for b in buckets)):
            errors.append(f"{where}: buckets must be "
                          f"{NUM_HISTOGRAM_BUCKETS} non-negative ints")
            continue
        if not is_uint(h.get("count")) or not is_uint(h.get("sum")):
            errors.append(f"{where}: count/sum must be non-negative ints")
            continue
        if h["count"] != sum(buckets):
            errors.append(f"{where}: count {h['count']} != "
                          f"sum(buckets) {sum(buckets)}")
    return errors


def check_trace_line(rec):
    errors = []
    for key in ("nanos", "seq", "source"):
        if not is_uint(rec.get(key)):
            errors.append(f"{key} must be a non-negative integer")
    event = rec.get("event")
    if event not in TRACE_EVENTS:
        errors.append(f"event {event!r} not a known trace kind")
    for key in ("stream_time", "a", "b"):
        if not is_int(rec.get(key)):
            errors.append(f"{key} must be an integer")
    return errors


def check_file(path):
    """Returns a list of 'path:line: message' validation errors."""
    errors = []
    lines = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            where = f"{path}:{lineno}"
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON: {e}")
                continue
            if not isinstance(rec, dict):
                errors.append(f"{where}: line must be a JSON object")
                continue
            version = rec.get("schema_version")
            if version not in KNOWN_SCHEMA_VERSIONS:
                errors.append(
                    f"{where}: schema_version {version!r} not in known set "
                    f"{sorted(KNOWN_SCHEMA_VERSIONS)}; refusing to validate")
                continue
            kind = rec.get("kind")
            if kind == "metrics":
                line_errors = check_metrics_line(rec)
            elif kind == "trace":
                line_errors = check_trace_line(rec)
            else:
                line_errors = [f"kind {kind!r} must be 'metrics' or 'trace'"]
            errors += [f"{where}: {e}" for e in line_errors]
    if lines == 0:
        errors.append(f"{path}: no JSON lines found (empty dump)")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = []
    for path in sys.argv[1:]:
        errors = check_file(path)
        if errors:
            failures += errors
        else:
            print(f"OK  {path}")
    if failures:
        print("\ntelemetry schema check FAILED:", file=sys.stderr)
        for e in failures[:50]:
            print(f"  {e}", file=sys.stderr)
        if len(failures) > 50:
            print(f"  ... and {len(failures) - 50} more", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
