#!/usr/bin/env python3
"""CI bench regression gate for bench_micro_executor.

Usage:
    ./build/bench/bench_micro_executor --quick > run.txt
    python3 tools/check_bench_regression.py \
        --baseline bench/baseline_micro_executor.json --run run.txt

Compares the run's `events_per_second_norm` (events/s divided by an
in-process arithmetic calibration loop, emitted by the bench itself)
against the checked-in baseline and FAILS on a drop beyond the tolerance
(default 20%, override with --tolerance or BENCH_REGRESSION_TOLERANCE).
Normalizing by the calibration loop absorbs most of the raw speed
difference between CI runners and the machine that recorded the
baseline; the residual noise is what the tolerance is for.

To refresh the baseline after an intentional perf change:
    ./build/bench/bench_micro_executor --quick > run.txt
    python3 tools/check_bench_regression.py --run run.txt --write-baseline \
        bench/baseline_micro_executor.json
"""

import argparse
import json
import os
import sys

# Bench-record schema versions this checker understands (the
# `schema_version` field PrintJsonRecord appends to every record; the
# telemetry dumps carry the same policy via tools/check_metrics_schema.py).
# Records with an unknown or missing version are REFUSED, never guessed at.
KNOWN_SCHEMA_VERSIONS = {1}


class SchemaVersionError(Exception):
    pass


def load_run_records(path):
    cases = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line.startswith('{"bench":"micro_executor"'):
                continue
            rec = json.loads(line)
            version = rec.get("schema_version")
            if version not in KNOWN_SCHEMA_VERSIONS:
                raise SchemaVersionError(
                    f"record schema_version {version!r} not in known set "
                    f"{sorted(KNOWN_SCHEMA_VERSIONS)}; refusing to compare "
                    f"(update this checker alongside the record format)")
            params = rec.get("params", {})
            if params.get("case") == "calibration":
                continue
            key = "|".join(f"{k}={v}" for k, v in sorted(params.items()))
            norm = rec.get("metrics", {}).get("events_per_second_norm")
            if norm:
                cases[key] = norm
    return cases


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", default="bench/baseline_micro_executor.json")
    ap.add_argument("--run", required=True,
                    help="file with the bench's stdout (JSON record lines)")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get(
                        "BENCH_REGRESSION_TOLERANCE", "0.20")),
                    help="allowed fractional drop (0.20 = 20%%)")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write the run as the new baseline and exit")
    args = ap.parse_args()

    try:
        cases = load_run_records(args.run)
    except SchemaVersionError as e:
        print(f"bench record schema check failed: {e}", file=sys.stderr)
        return 2
    if not cases:
        print("no micro_executor records found in run output", file=sys.stderr)
        return 2

    if args.write_baseline:
        doc = {
            "description": "bench_micro_executor --quick baseline: "
                           "events_per_second_norm (events/s per million "
                           "calibration ops) per case. Refresh with "
                           "tools/check_bench_regression.py --write-baseline.",
            "cases": cases,
        }
        with open(args.write_baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.write_baseline} ({len(cases)} cases)")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)["cases"]

    failures = []
    for key, base in sorted(baseline.items()):
        got = cases.get(key)
        if got is None:
            failures.append(f"{key}: missing from run")
            continue
        ratio = got / base
        status = "OK " if ratio >= 1 - args.tolerance else "FAIL"
        print(f"{status} {key}: norm {got:.0f} vs baseline {base:.0f} "
              f"({ratio:.2f}x)")
        if ratio < 1 - args.tolerance:
            failures.append(
                f"{key}: {ratio:.2f}x of baseline "
                f"(tolerance {1 - args.tolerance:.2f}x)")
    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nbench regression gate passed ({len(baseline)} cases, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
