#!/usr/bin/env python3
"""Markdown doc-rot checker for the docs CI job.

Two classes of reference are verified across the repo's markdown files:

1. Relative markdown links ``[text](path)`` — the target file must exist
   (``#anchors`` are stripped; ``http(s)://`` and ``mailto:`` links are
   skipped; anchors-only links are skipped).
2. Backtick code references like ``src/exec/engine.h:Engine`` or
   ``tests/adaptive_swap_test.cc`` — the file must exist, and when a
   ``:Symbol`` suffix is given the symbol must literally occur in that
   file. This is what keeps docs/PAPER_MAP.md honest as code moves.

Exit code 0 when everything resolves, 1 otherwise (one line per problem).

Usage: tools/check_markdown_links.py [file.md ...]
       (no arguments: checks the repo's tracked *.md files)
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/to/file.ext` or `path/to/file.ext:Symbol` inside backticks; only
# repo-rooted paths are checked (src/, tests/, bench/, examples/, docs/,
# tools/, .github/).
CODE_REF_RE = re.compile(
    r"`((?:src|tests|bench|examples|docs|tools|\.github)/[A-Za-z0-9_./-]+"
    r"\.(?:h|cc|cpp|md|py|yml))(?::([A-Za-z0-9_:~]+))?`"
)


def tracked_markdown():
    out = subprocess.run(
        ["git", "ls-files", "*.md"], cwd=REPO, capture_output=True, text=True
    )
    return [REPO / line for line in out.stdout.splitlines() if line]


def check_file(md: Path) -> list:
    problems = []
    text = md.read_text(encoding="utf-8")

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            problems.append(f"{md.relative_to(REPO)}: broken link -> {target}")

    for match in CODE_REF_RE.finditer(text):
        path, symbol = match.group(1), match.group(2)
        resolved = REPO / path
        if not resolved.exists():
            problems.append(
                f"{md.relative_to(REPO)}: missing file reference -> {path}"
            )
            continue
        if symbol:
            # `file.h:Symbol` — the symbol (last :: component) must occur
            # literally in the file.
            needle = symbol.split("::")[-1]
            if needle not in resolved.read_text(encoding="utf-8"):
                problems.append(
                    f"{md.relative_to(REPO)}: {path} no longer defines "
                    f"'{needle}'"
                )
    return problems


def main(argv) -> int:
    files = [Path(a).resolve() for a in argv[1:]] or tracked_markdown()
    problems = []
    for md in files:
        problems.extend(check_file(md))
    for p in problems:
        print(p)
    print(
        f"checked {len(files)} markdown file(s): "
        f"{'OK' if not problems else f'{len(problems)} problem(s)'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
