#!/usr/bin/env python3
"""Runs the bench suite in Release and consolidates the results.

Usage:
    python3 tools/run_benches.py [--build-dir build] [--out BENCH_PR4.json]
                                 [--quick] [--skip-build]

Each bench prints one-line JSON records ({"bench": ..., "params": ...,
"metrics": ...}; see bench/bench_util.h). This driver
  1. configures + builds the Release bench targets (unless --skip-build),
  2. runs each bench, scraping its JSON records and measuring the child's
     peak RSS (resource usage of the benchmark process),
  3. merges the checked-in pre-PR executor baseline
     (bench/baseline_pre_pr4.json, an interleaved seed-vs-PR4 A/B) and
     computes the speedup summary for the micro-executor cases,
  4. writes one consolidated JSON document (default BENCH_PR4.json).

The output format is documented in README.md ("Benchmarks").
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import time

BENCHES = [
    # (target, args, args in --quick mode)
    ("bench_micro_executor", [], ["--quick"]),
    ("bench_runtime_scaling", [], ["--quick"]),
    ("bench_runtime_scaling", ["--long-stream"], ["--long-stream", "--quick"]),
    ("bench_checkpoint", [], ["--quick"]),
    # Chaos soak (pass/fail harness, not a perf bench): its one JSON record
    # carries ok/cycles/retries evidence alongside the perf numbers.
    ("soak_main", [], ["--quick"]),
]

# Version stamped onto every scraped record (benches append it themselves
# via PrintJsonRecord; records from older binaries are stamped here so a
# consolidated document is uniformly versioned).
RECORD_SCHEMA_VERSION = 1


def run_bench(path, args):
    """Runs one bench; returns (json_records, peak_rss_bytes, seconds)."""
    start = time.monotonic()
    proc = subprocess.Popen([path] + args, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    output, _ = proc.communicate()
    seconds = time.monotonic() - start
    if proc.returncode != 0:
        sys.stderr.write(output)
        raise RuntimeError(f"{path} exited with {proc.returncode}")
    records = []
    for line in output.splitlines():
        line = line.strip()
        if line.startswith('{"bench":'):
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            rec.setdefault("schema_version", RECORD_SCHEMA_VERSION)
            records.append(rec)
    # ru_maxrss of children accumulates in the parent after wait;
    # query the children's high-water mark (KiB on Linux).
    peak_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
    return records, peak_rss, seconds


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_PR4.json")
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized runs (smaller streams)")
    ap.add_argument("--skip-build", action="store_true",
                    help="assume the build dir already has Release benches")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    build = os.path.join(root, args.build_dir)

    if not args.skip_build:
        subprocess.check_call(
            ["cmake", "-B", build, "-S", root, "-DCMAKE_BUILD_TYPE=Release"])
        subprocess.check_call(
            ["cmake", "--build", build, "-j", str(os.cpu_count() or 2),
             "--target"] + sorted({b for b, _, _ in BENCHES}))

    runs = []
    for target, full_args, quick_args in BENCHES:
        path = os.path.join(build, "bench", target)
        if not os.path.exists(path):
            print(f"skipping {target} (not built)", file=sys.stderr)
            continue
        bench_args = quick_args if args.quick else full_args
        print(f"running {target} {' '.join(bench_args)} ...")
        records, peak_rss, seconds = run_bench(path, bench_args)
        runs.append({
            "target": target,
            "args": bench_args,
            "wall_seconds": round(seconds, 3),
            "peak_rss_bytes": peak_rss,
            "records": records,
        })

    baseline_path = os.path.join(root, "bench", "baseline_pre_pr4.json")
    baseline = None
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = json.load(f)

    # Speedup summary: current micro-executor events/s vs the pre-PR
    # baseline. NOTE: the authoritative speedup figures are the
    # interleaved A/B numbers inside the baseline document itself
    # (same-session seed-vs-PR4); the ratio against a fresh run also
    # reflects host speed drift between sessions.
    summary = []
    if baseline:
        current = {}
        for run in runs:
            if run["target"] != "bench_micro_executor":
                continue
            for rec in run["records"]:
                params = rec.get("params", {})
                if params.get("case", "").startswith("engine_"):
                    key = (params["case"], int(params["queries"]))
                    current[key] = rec["metrics"]["events_per_second"]
        for case in baseline.get("cases", []):
            key = (case["case"], case["queries"])
            entry = dict(case)
            if key in current:
                entry["current_events_per_second"] = round(current[key])
                entry["current_vs_seed"] = round(
                    current[key] / case["seed_events_per_second"], 3)
            summary.append(entry)

    doc = {
        "generated_by": "tools/run_benches.py" + (" --quick" if args.quick else ""),
        "schema_version": RECORD_SCHEMA_VERSION,
        "baseline_pre_pr4": baseline,
        "speedup_summary": summary,
        "runs": runs,
    }
    out_path = os.path.join(root, args.out)
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(runs)} bench runs)")
    for entry in summary:
        print(f"  {entry['case']} q={entry['queries']}: "
              f"A/B speedup {entry['speedup']}x"
              + (f", this-run vs seed {entry['current_vs_seed']}x"
                 if "current_vs_seed" in entry else ""))


if __name__ == "__main__":
    main()
