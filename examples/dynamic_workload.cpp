// Dynamic workload example (paper §7.4): per-type event rates drift, the
// startup sharing plan goes stale, and the adaptive planner re-optimizes
// and hot-swaps the plan into the RUNNING sharded runtime — no restart,
// no lost windows, results identical to a never-swapped run.
//
// The loop (src/adaptive/plan_manager.h):
//   RateMonitor epochs -> drift detection -> Reoptimize (re-cost the
//   incumbent under fresh rates, GO, escalate to SO on a big gap) ->
//   hysteresis -> ShardedRuntime::RequestPlanSwap at a watermark-aligned
//   window boundary (src/runtime/plan_swap.h).
//
// Note the drift scenario flips WHICH types are hot. A rate ramp that
// scales every type together (e.g. the Linear Road ramp) never changes
// the optimal plan — sharing benefit is homogeneous in rates — which is
// exactly why the monitor tracks per-type rates, not volume.
//
// Build & run:  ./build/examples/example_dynamic_workload

#include <cstdio>

#include "src/sharon.h"

using namespace sharon;

int main() {
  // A stream whose hot type cluster flips every 30 seconds.
  DriftConfig dcfg;
  dcfg.num_types = 8;
  dcfg.num_groups = 32;
  dcfg.events_per_second = 2000;
  dcfg.phase_length = Seconds(30);
  dcfg.num_phases = 4;
  Scenario stream = GenerateDrift(dcfg);

  const WindowSpec window{Seconds(10), Seconds(5)};
  Workload workload = DriftWorkload(dcfg, window);

  // Plan for the rates visible at startup (phase 0).
  RateMonitor startup(Seconds(1), 4);
  for (const Event& e : stream.events) {
    if (e.time >= Seconds(5)) break;
    startup.OnEvent(e);
  }
  CostModel cm(startup.CurrentRates());
  OptimizerResult initial = OptimizeSharon(workload, cm);
  std::printf("initial plan: %zu candidates, score %.0f at startup rates\n",
              initial.plan.size(), initial.score);

  // The adaptive runtime: watermarks drive window finalization AND give
  // the planner its safe swap points.
  runtime::RuntimeOptions ropts;
  ropts.num_shards = 4;
  ropts.disorder.enabled = true;
  ropts.disorder.max_lateness = Seconds(1);
  runtime::ShardedRuntime rt(workload, initial.plan, ropts);
  if (!rt.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", rt.error().c_str());
    return 1;
  }

  adaptive::PlanManagerOptions popts;
  popts.epoch = Seconds(5);
  popts.window_epochs = 2;
  popts.drift_threshold = 0.4;
  popts.hysteresis = 0.10;
  adaptive::PlanManager manager(workload, &rt, initial.plan, popts);

  // Disorder-inject for realism; watermarks ride in-band.
  DisorderConfig inj;
  inj.max_lateness = Seconds(1);
  inj.punctuation_period = Seconds(1);
  const std::vector<Event> arrivals = InjectDisorder(stream.events, inj);

  rt.Start();
  for (const Event& e : arrivals) manager.Ingest(e);
  rt.Finish();

  const adaptive::PlanManagerStats& ms = manager.stats();
  std::printf(
      "epochs %llu, evaluations %llu (drift %llu, SO escalations %llu), "
      "holds %llu, swaps accepted %llu / rejected %llu, planning %.1f ms\n",
      static_cast<unsigned long long>(ms.epochs_seen),
      static_cast<unsigned long long>(ms.evaluations),
      static_cast<unsigned long long>(ms.drift_detections),
      static_cast<unsigned long long>(ms.escalations),
      static_cast<unsigned long long>(ms.holds),
      static_cast<unsigned long long>(ms.swaps_accepted),
      static_cast<unsigned long long>(ms.swaps_rejected), ms.planning_millis);

  const runtime::RuntimeStats rs = rt.stats();
  for (const runtime::PlanSwapStats& swap : rs.plan_swaps) {
    std::printf(
        "swap #%llu at boundary %llds: stall %.3fs (slowest shard), "
        "%llu teed events, dual-run peak %.2f MB -> %.2f MB after retire\n",
        static_cast<unsigned long long>(swap.id),
        static_cast<long long>(swap.boundary / kTicksPerSecond),
        swap.max_dual_run_seconds,
        static_cast<unsigned long long>(swap.teed_events),
        static_cast<double>(swap.peak_dual_bytes) / (1 << 20),
        static_cast<double>(swap.post_swap_bytes) / (1 << 20));
  }

  double total = 0;
  rt.results().ForEachCell(
      [&](const ResultKey&, const AggState& s) { total += s.count; });
  std::printf("finalized cells %zu, matched sequences %.0f, %.0f events/s\n",
              rt.results().NumCells(), total, rs.EventsPerSecond());
  return 0;
}
