// Dynamic workload example (paper §7.4): event rates drift over time, the
// chosen sharing plan goes stale, and the optimizer is re-run on fresh
// statistics to produce a new plan.
//
// The Linear Road stream's event rate ramps up continuously. We process it
// in epochs; after each epoch we re-estimate per-type rates from the
// observed slice, re-optimize, and — when the new plan differs — migrate by
// instantiating a new engine for subsequent windows (windows are the
// natural migration boundary for tumbling epochs; nothing is lost since
// epochs align with window boundaries).
//
// Build & run:  ./build/examples/example_dynamic_workload

#include <cstdio>

#include "src/sharon.h"

using namespace sharon;

namespace {

TypeRates RatesOfSlice(const std::vector<Event>& events, size_t begin,
                       size_t end, size_t num_types, Duration span) {
  std::vector<double> counts(num_types, 0.0);
  for (size_t i = begin; i < end; ++i) counts[events[i].type] += 1;
  TypeRates rates;
  double seconds = static_cast<double>(span) / kTicksPerSecond;
  for (size_t t = 0; t < num_types; ++t) {
    rates.Set(static_cast<EventTypeId>(t), counts[t] / seconds);
  }
  return rates;
}

}  // namespace

int main() {
  LinearRoadConfig config;
  config.num_segments = 16;
  config.num_cars = 30;
  config.start_rate = 100;
  config.end_rate = 2500;  // rate ramps 25x over the run
  config.duration = Minutes(8);
  Scenario stream = GenerateLinearRoad(config);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 12;
  wcfg.pattern_length = 5;
  wcfg.cluster_size = 4;
  wcfg.window = {Minutes(1), Minutes(1)};  // tumbling = epoch boundary
  wcfg.partition_attr = 0;
  Workload workload = GenerateWorkload(wcfg, config.num_segments);

  const Duration epoch = Minutes(2);
  size_t cursor = 0;
  SharingPlan current_plan;
  int epoch_id = 0;

  while (cursor < stream.events.size()) {
    const Timestamp epoch_start = stream.events[cursor].time;
    const Timestamp epoch_end = epoch_start + epoch;
    size_t end = cursor;
    while (end < stream.events.size() && stream.events[end].time < epoch_end) {
      ++end;
    }

    // Re-estimate rates from this epoch and re-optimize (§7.4: runtime
    // statistics trigger the optimizer on workload drift).
    TypeRates rates =
        RatesOfSlice(stream.events, cursor, end, config.num_segments, epoch);
    CostModel cm(rates);
    OptimizerResult opt = OptimizeSharon(workload, cm);

    const bool migrate = opt.plan != current_plan;
    if (migrate) current_plan = opt.plan;

    Engine engine(workload, current_plan);
    for (size_t i = cursor; i < end; ++i) engine.OnEvent(stream.events[i]);

    double total = 0;
    for (const auto& [key, state] : engine.results().cells()) {
      total += state.count;
    }
    std::printf(
        "epoch %d: %6zu events (%5.0f ev/s), plan score %8.0f, "
        "%zu shared patterns%s, matched sequences %.0f\n",
        epoch_id++, end - cursor,
        static_cast<double>(end - cursor) * kTicksPerSecond /
            static_cast<double>(epoch),
        opt.score, current_plan.size(),
        migrate ? " [plan migrated]" : "", total);
    cursor = end;
  }
  return 0;
}
