// E-commerce recommendation example (paper Fig. 2, queries q8-q11):
// purchase-dependency counting with different aggregation functions, all
// sharing the (Laptop, Case) pattern.
//
// Demonstrates sharing across queries with DIFFERENT RETURN clauses: the
// shared (Laptop, Case) counter carries pure counts; each query's private
// suffix carries its own aggregate (see ProjectSpec in src/exec/engine.h).
//
// Build & run:  ./build/examples/example_ecommerce_recs

#include <cstdio>

#include "src/sharon.h"

using namespace sharon;

int main() {
  Scenario stream = GenerateEcommerce({.duration = Minutes(5), .seed = 9});

  Workload workload;
  const char* queries[] = {
      // q8: how often is an adapter bought after a laptop + case?
      "RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Adapter) WHERE [customer] "
      "WITHIN 3 min SLIDE 30 sec",
      // q9: revenue of keyboards bought in such chains.
      "RETURN SUM(Keyboard.price) PATTERN SEQ(Laptop, Case, Keyboard) "
      "WHERE [customer] WITHIN 3 min SLIDE 30 sec",
      // q10: the bare laptop+case count.
      "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
      "WITHIN 3 min SLIDE 30 sec",
      // q11: priciest screen protector in the full chain.
      "RETURN MAX(ScreenProtector.price) PATTERN SEQ(Laptop, Case, iPhone, "
      "ScreenProtector) WHERE [customer] WITHIN 3 min SLIDE 30 sec",
  };
  for (const char* text : queries) {
    ParseResult parsed = ParseQuery(text, stream.types, stream.schema);
    if (!parsed.ok) {
      std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
      return 1;
    }
    workload.Add(parsed.query);
  }

  CostModel cost_model(EstimateRates(stream));
  OptimizerResult opt = OptimizeSharon(workload, cost_model);
  std::printf("Sharing plan (score %.1f):\n", opt.score);
  for (const Candidate& c : opt.plan) {
    std::printf("  share %s\n", c.ToString(stream.types).c_str());
  }

  Engine engine(workload, opt.plan);
  if (!engine.ok()) {
    std::fprintf(stderr, "plan rejected: %s\n", engine.error().c_str());
    return 1;
  }
  RunStats stats = engine.Run(stream.events, stream.duration);
  std::printf("\nProcessed %llu query-events in %.1f ms (%zu shared "
              "counters per group)\n",
              static_cast<unsigned long long>(stats.events_processed),
              stats.wall_seconds * 1e3, engine.num_shared_counters());

  // Aggregate each query over all windows for a compact report.
  std::printf("\nPer-query totals across windows (customer 0):\n");
  const WindowSpec& w = workload.window();
  const WindowId last = w.LastWindowCovering(stream.duration - 1);
  for (const Query& q : workload.queries()) {
    double best = 0;
    WindowId best_w = 0;
    for (WindowId j = 0; j <= last; ++j) {
      double v = engine.results().Value(q.id, j, 0, q.agg.fn);
      if (v == v && v > best) {  // skip NaN (empty MIN/MAX windows)
        best = v;
        best_w = j;
      }
    }
    std::printf("  q%-2u %-14s peak %.0f in window %lld\n", q.id + 8,
                AggFunctionName(q.agg.fn), best,
                static_cast<long long>(best_w));
  }
  return 0;
}
