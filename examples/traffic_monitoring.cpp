// Traffic monitoring example: the paper's running example end to end
// (Fig. 1, Table 1, Fig. 4) on a synthetic taxi position-report stream.
//
// Shows the optimizer internals a user can inspect: sharable candidates,
// the Sharon graph with benefits and conflicts, the reduction, and the
// final plan, then executes the workload both ways and prints route
// popularity counts.
//
// Build & run:  ./build/examples/example_traffic_monitoring

#include <cstdio>

#include "src/sharon.h"

using namespace sharon;

int main() {
  // The seven queries of Fig. 1 over the first six streets of the taxi
  // generator's street list (OakSt, MainSt, ParkAve, WestSt, StateSt,
  // ElmSt); 10-minute windows sliding every minute.
  TrafficFixture fixture = MakeTrafficFixture();

  // A taxi stream over those streets. The fixture and generator intern
  // street names in the same order, so type ids line up; we assert it.
  TaxiConfig config;
  config.num_streets = 12;
  config.num_vehicles = 30;
  config.events_per_second = 800;
  config.duration = Minutes(20);
  Scenario stream = GenerateTaxi(config);
  for (EventTypeId t = 0; t < fixture.types.size(); ++t) {
    if (stream.types.Name(t) != fixture.types.Name(t)) {
      std::fprintf(stderr, "type registries diverged\n");
      return 1;
    }
  }

  // Optimizer internals, step by step.
  CostModel cost_model(EstimateRates(stream));
  auto candidates = FindSharableCandidates(fixture.workload);
  std::printf("Sharable candidates (modified CCSpan, Table 1):\n");
  for (const Candidate& c : candidates) {
    std::printf("  %-44s benefit %8.1f\n", c.ToString(stream.types).c_str(),
                cost_model.BValue(c, fixture.workload));
  }

  SharonGraph graph = SharonGraph::Build(
      fixture.workload, candidates, [&](const Candidate& c) {
        return cost_model.BValue(c, fixture.workload);
      });
  std::printf("\nSharon graph: %zu beneficial candidates, %zu conflicts\n",
              graph.num_vertices(), graph.num_edges());

  SharonGraph reduced = graph;
  ReductionResult red = ReduceGraph(reduced);
  std::printf("After reduction: %zu remain (%zu conflict-free extracted, "
              "%zu conflict-ridden pruned)\n",
              red.remaining, red.conflict_free.size(),
              red.pruned_ridden.size());

  OptimizerResult opt = OptimizeSharon(fixture.workload, cost_model);
  std::printf("\nOptimal sharing plan (score %.1f):\n", opt.score);
  for (const Candidate& c : opt.plan) {
    std::printf("  share %s\n", c.ToString(stream.types).c_str());
  }

  // Execute shared vs non-shared.
  Engine shared(fixture.workload, opt.plan);
  RunStats ss = shared.Run(stream.events, stream.duration);
  Engine plain(fixture.workload);
  RunStats ps = plain.Run(stream.events, stream.duration);
  std::printf("\nExecution: shared %.1f ms vs non-shared %.1f ms "
              "(%.2fx), state %zu vs %zu bytes\n",
              ss.wall_seconds * 1e3, ps.wall_seconds * 1e3,
              ps.wall_seconds / ss.wall_seconds, ss.peak_state_bytes,
              ps.peak_state_bytes);

  // Route popularity: total trips per query over all windows/vehicles.
  std::printf("\nTrips counted per query (all windows, all vehicles):\n");
  std::vector<double> totals(fixture.workload.size(), 0);
  shared.results().ForEachCell(
      [&](const ResultKey& key, const AggState& state) {
        totals[key.query] += state.count;
      });
  for (const Query& q : fixture.workload.queries()) {
    std::printf("  %-3s %-40s %12.0f\n", q.name.c_str(),
                q.pattern.ToString(stream.types).c_str(), totals[q.id]);
  }
  return 0;
}
