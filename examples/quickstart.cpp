// Quickstart: the complete Sharon pipeline in ~60 lines.
//
//  1. Describe a workload of event sequence aggregation queries (here via
//     the textual query language).
//  2. Generate (or ingest) an event stream and estimate per-type rates.
//  3. Let the Sharon optimizer pick an optimal sharing plan.
//  4. Execute the whole workload with the shared online engine and read
//     per-window results.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "src/sharon.h"

using namespace sharon;

int main() {
  // --- 1. The workload: three similar purchase-monitoring queries. ------
  Scenario stream = GenerateEcommerce({.duration = Minutes(3), .seed = 5});
  Workload workload;
  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 2 min SLIDE 30 sec",
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Adapter) "
           "WHERE [customer] WITHIN 2 min SLIDE 30 sec",
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Keyboard) "
           "WHERE [customer] WITHIN 2 min SLIDE 30 sec",
       }) {
    ParseResult parsed = ParseQuery(text, stream.types, stream.schema);
    if (!parsed.ok) {
      std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
      return 1;
    }
    workload.Add(parsed.query);
  }

  // --- 2. Cost model from observed per-type stream rates. ---------------
  CostModel cost_model(EstimateRates(stream));

  // --- 3. Optimize: which queries share which patterns? -----------------
  OptimizerResult opt = OptimizeSharon(workload, cost_model);
  std::printf("Sharing plan (score %.1f):\n", opt.score);
  for (const Candidate& c : opt.plan) {
    std::printf("  share %s\n", c.ToString(stream.types).c_str());
  }

  // --- 4. Execute shared, compare with the non-shared A-Seq baseline. ---
  Engine shared(workload, opt.plan);
  RunStats shared_stats = shared.Run(stream.events, stream.duration);
  Engine nonshared(workload);
  RunStats plain_stats = nonshared.Run(stream.events, stream.duration);

  std::printf("\nShared engine:     %.1f ms, peak state %zu bytes\n",
              shared_stats.wall_seconds * 1e3, shared_stats.peak_state_bytes);
  std::printf("Non-shared engine: %.1f ms, peak state %zu bytes\n",
              plain_stats.wall_seconds * 1e3, plain_stats.peak_state_bytes);

  // Read a few results: counts for customer 0 in the first windows.
  std::printf("\ncount(Laptop,Case) per window, customer 0:\n");
  for (WindowId w = 0; w < 4; ++w) {
    std::printf("  window %lld: %.0f\n", static_cast<long long>(w),
                shared.results().Value(0, w, 0, AggFunction::kCountStar));
  }
  return 0;
}
