// Sharded pipeline: the production-shaped deployment of Sharon.
//
//  1. Build a workload and let the optimizer pick a sharing plan (once).
//  2. Stand up a ShardedRuntime: the plan is compiled once, each worker
//     shard instantiates private state from it, and incoming events are
//     hash-partitioned by the grouping attribute.
//  3. Drive the runtime at a target load with the rate-controlled replay
//     driver, as a live feed would.
//  4. Read merged results through the same Value() surface as Engine,
//     plus per-shard runtime counters.
//  5. Optionally export telemetry (src/obs/): --metrics-out=<path> dumps
//     the final metrics snapshot as JSON-lines, --trace-out=<path> the
//     lifecycle trace (both validated by tools/check_metrics_schema.py).
//
// Build & run:  ./build/examples/example_sharded_pipeline
//               [--metrics-out=<path>] [--trace-out=<path>]

#include <cstdio>
#include <cstring>
#include <string>

#include "src/obs/exporter.h"
#include "src/sharon.h"

using namespace sharon;

int main(int argc, char** argv) {
  std::string metrics_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    }
  }
  // --- 1. Workload + sharing plan (one optimizer pass for all shards). --
  TaxiConfig tcfg;
  tcfg.num_streets = 16;
  tcfg.num_vehicles = 64;
  tcfg.events_per_second = 5000;
  tcfg.duration = Minutes(1);
  Scenario stream = GenerateTaxi(tcfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 12;
  wcfg.pattern_length = 6;
  wcfg.window = {Seconds(30), Seconds(10)};
  wcfg.partition_attr = 0;  // group by vehicle
  Workload workload = GenerateWorkload(wcfg, tcfg.num_streets);

  CostModel cost_model(EstimateRates(stream));
  OptimizerResult opt = OptimizeSharon(workload, cost_model);
  std::printf("sharing plan: %zu candidates (score %.1f)\n",
              opt.plan.size(), opt.score);

  // --- 2. The sharded runtime. ------------------------------------------
  runtime::RuntimeOptions ropts;
  ropts.num_shards = 4;
  ropts.batch_size = 128;
  ropts.obs.metrics = !metrics_out.empty();
  ropts.obs.trace = !trace_out.empty();
  runtime::ShardedRuntime rt(workload, opt.plan, ropts);
  if (!rt.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", rt.error().c_str());
    return 1;
  }

  // --- 3. Replay the recorded stream at 50k events/s wall clock. --------
  ReplayConfig rcfg;
  rcfg.target_events_per_second = 50000;
  rt.Start();
  ReplayReport replay = ReplayScenario(
      stream, rcfg, [&](const Event& e) { rt.Ingest(e); });
  rt.Finish();
  std::printf("replayed %llu events at %.0f events/s (target %.0f)\n",
              static_cast<unsigned long long>(replay.events_delivered),
              replay.AchievedRate(), rcfg.target_events_per_second);

  // --- 4. Merged results + runtime counters. ----------------------------
  std::printf("\nquery 0, vehicle 3, first windows:\n");
  for (WindowId wid = 0; wid < 4; ++wid) {
    std::printf("  window %lld: %.0f\n", static_cast<long long>(wid),
                rt.Value(0, wid, 3, AggFunction::kCountStar));
  }

  runtime::RuntimeStats stats = rt.stats();
  std::printf("\nshard   events   batches   occupancy   busy-ms\n");
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    const runtime::ShardStats& ss = stats.shards[i];
    std::printf("%5zu %8llu %9llu %11.1f %9.1f\n", i,
                static_cast<unsigned long long>(ss.events),
                static_cast<unsigned long long>(ss.batches),
                ss.AvgBatchOccupancy(), ss.busy_seconds * 1e3);
  }
  std::printf("total: %llu events, %.2f s wall, %.0f events/s, %llu stalls\n",
              static_cast<unsigned long long>(stats.events_ingested),
              stats.wall_seconds, stats.EventsPerSecond(),
              static_cast<unsigned long long>(stats.TotalStalls()));

  // --- 5. Telemetry export (after Finish: rollup gauges are folded). ----
  if (!metrics_out.empty()) {
    obs::ExporterOptions eopts;
    eopts.metrics_path = metrics_out;
    obs::SnapshotExporter exporter([&rt] { return rt.TelemetrySnapshot(); },
                                   eopts);
    if (exporter.ExportNow()) {
      std::printf("metrics snapshot -> %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics dump failed: %s\n",
                   exporter.error().c_str());
    }
  }
  if (!trace_out.empty()) {
    const std::string err = obs::WriteTraceFile(trace_out, rt.DumpTrace());
    if (err.empty()) {
      std::printf("lifecycle trace -> %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace dump failed: %s\n", err.c_str());
    }
  }
  return 0;
}
