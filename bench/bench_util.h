// Shared helpers for the figure/table reproduction benches: aligned table
// printing, byte formatting, and the standard workload/stream pairings
// used across experiments (§8.1 defaults: 20 queries, pattern length 10).

#ifndef SHARON_BENCH_BENCH_UTIL_H_
#define SHARON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/exporter.h"
#include "src/sharon.h"

namespace sharon::bench {

/// Prints a row of right-aligned cells, 14 chars wide.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
}

inline std::string Num(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Bytes(size_t b) {
  char buf[64];
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(b) / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", static_cast<double>(b) / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", b);
  }
  return buf;
}

/// Latency in ms per window for a run over `duration` with window `w`.
inline double LatencyMsPerWindow(const RunStats& stats, Duration duration,
                                 const WindowSpec& w) {
  const double windows =
      static_cast<double>(duration) / static_cast<double>(w.slide);
  return windows > 0 ? stats.wall_seconds * 1e3 / windows : 0;
}

/// Optimizer settings for executor-focused benches: sharp limits so
/// planning is quick (the §6 GWMIN fallback kicks in on big workloads)
/// and the measured time goes to execution.
inline OptimizerConfig FastOptimizerConfig() {
  OptimizerConfig config;
  // Conflict resolution (§7.1) only pays off when the exact plan finder
  // completes on the expanded graph; on bench-sized workloads the GWMIN
  // fallback would pick fragmented option subsets instead, so executor
  // benches run on the unexpanded graph.
  config.expand = false;
  config.finder.time_limit_seconds = 3.0;
  config.finder.max_level_plans = 200'000;
  return config;
}

/// "DNF" when a baseline exceeded its budget, else the number.
inline std::string OrDnf(const RunStats& stats, double value,
                         int precision = 2) {
  return stats.finished ? Num(value, precision) : "DNF";
}

/// One machine-readable result record. Benches print one JSON object per
/// line next to their human tables so sweeps can be scraped:
///   {"bench":"<name>","params":{...},"metrics":{...},"schema_version":1}
/// Params are strings, metrics are numbers; keys must be plain
/// identifiers (no escaping is performed). The schema version rides at
/// the END so the `{"bench":"<name>"` prefix scrapers key on stays put;
/// tools/check_bench_regression.py refuses records whose version it does
/// not know (same policy as obs::kSchemaVersion for telemetry dumps).
inline void PrintJsonRecord(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::printf("{\"bench\":\"%s\",\"params\":{", bench.c_str());
  for (size_t i = 0; i < params.size(); ++i) {
    std::printf("%s\"%s\":\"%s\"", i ? "," : "", params[i].first.c_str(),
                params[i].second.c_str());
  }
  std::printf("},\"metrics\":{");
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::printf("%s\"%s\":%.6g", i ? "," : "", metrics[i].first.c_str(),
                metrics[i].second);
  }
  std::printf("},\"schema_version\":%u}\n", obs::kSchemaVersion);
}

/// Telemetry output flags shared by the runtime benches and examples:
///   --metrics-out=<path>  final metrics snapshot, JSON-lines (appended
///                         once per runtime, so sweeps accumulate lines)
///   --trace-out=<path>    lifecycle trace, JSON-lines (rewritten; holds
///                         the most recently dumped runtime's trace)
/// Both formats are validated by tools/check_metrics_schema.py.
struct ObsFlags {
  std::string metrics_out;  ///< "" = metrics dump off
  std::string trace_out;    ///< "" = trace dump off

  /// True when any telemetry output was requested.
  bool any() const { return !metrics_out.empty() || !trace_out.empty(); }

  /// Turns on the matching RuntimeOptions::obs switches.
  void Apply(runtime::RuntimeOptions* opts) const {
    opts->obs.metrics = opts->obs.metrics || !metrics_out.empty();
    opts->obs.trace = opts->obs.trace || !trace_out.empty();
  }
};

/// Consumes `--metrics-out=`/`--trace-out=` arguments; returns false for
/// anything else (the bench handles its own flags).
inline bool ParseObsFlag(const std::string& arg, ObsFlags* flags) {
  constexpr const char* kMetrics = "--metrics-out=";
  constexpr const char* kTrace = "--trace-out=";
  if (arg.rfind(kMetrics, 0) == 0) {
    flags->metrics_out = arg.substr(std::string(kMetrics).size());
    return true;
  }
  if (arg.rfind(kTrace, 0) == 0) {
    flags->trace_out = arg.substr(std::string(kTrace).size());
    return true;
  }
  return false;
}

/// Dumps the finished runtime's telemetry per `flags` (call after
/// Finish(): the snapshot then carries the folded RuntimeStats gauges).
inline void DumpObs(const runtime::ShardedRuntime& rt, const ObsFlags& flags) {
  if (!flags.metrics_out.empty()) {
    obs::ExporterOptions eopts;
    eopts.metrics_path = flags.metrics_out;
    obs::SnapshotExporter exporter([&rt] { return rt.TelemetrySnapshot(); },
                                   eopts);
    if (!exporter.ExportNow()) {
      std::fprintf(stderr, "metrics dump failed: %s\n",
                   exporter.error().c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    const std::string err = obs::WriteTraceFile(flags.trace_out,
                                                rt.DumpTrace());
    if (!err.empty()) {
      std::fprintf(stderr, "trace dump failed: %s\n", err.c_str());
    }
  }
}

}  // namespace sharon::bench

#endif  // SHARON_BENCH_BENCH_UTIL_H_
