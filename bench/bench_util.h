// Shared helpers for the figure/table reproduction benches: aligned table
// printing, byte formatting, and the standard workload/stream pairings
// used across experiments (§8.1 defaults: 20 queries, pattern length 10).

#ifndef SHARON_BENCH_BENCH_UTIL_H_
#define SHARON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/sharon.h"

namespace sharon::bench {

/// Prints a row of right-aligned cells, 14 chars wide.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
}

inline std::string Num(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string Bytes(size_t b) {
  char buf[64];
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(b) / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", static_cast<double>(b) / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", b);
  }
  return buf;
}

/// Latency in ms per window for a run over `duration` with window `w`.
inline double LatencyMsPerWindow(const RunStats& stats, Duration duration,
                                 const WindowSpec& w) {
  const double windows =
      static_cast<double>(duration) / static_cast<double>(w.slide);
  return windows > 0 ? stats.wall_seconds * 1e3 / windows : 0;
}

/// Optimizer settings for executor-focused benches: sharp limits so
/// planning is quick (the §6 GWMIN fallback kicks in on big workloads)
/// and the measured time goes to execution.
inline OptimizerConfig FastOptimizerConfig() {
  OptimizerConfig config;
  // Conflict resolution (§7.1) only pays off when the exact plan finder
  // completes on the expanded graph; on bench-sized workloads the GWMIN
  // fallback would pick fragmented option subsets instead, so executor
  // benches run on the unexpanded graph.
  config.expand = false;
  config.finder.time_limit_seconds = 3.0;
  config.finder.max_level_plans = 200'000;
  return config;
}

/// "DNF" when a baseline exceeded its budget, else the number.
inline std::string OrDnf(const RunStats& stats, double value,
                         int precision = 2) {
  return stats.finished ? Num(value, precision) : "DNF";
}

/// One machine-readable result record. Benches print one JSON object per
/// line next to their human tables so sweeps can be scraped:
///   {"bench":"<name>","params":{...},"metrics":{...}}
/// Params are strings, metrics are numbers; keys must be plain
/// identifiers (no escaping is performed).
inline void PrintJsonRecord(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::printf("{\"bench\":\"%s\",\"params\":{", bench.c_str());
  for (size_t i = 0; i < params.size(); ++i) {
    std::printf("%s\"%s\":\"%s\"", i ? "," : "", params[i].first.c_str(),
                params[i].second.c_str());
  }
  std::printf("},\"metrics\":{");
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::printf("%s\"%s\":%.6g", i ? "," : "", metrics[i].first.c_str(),
                metrics[i].second);
  }
  std::printf("}}\n");
}

}  // namespace sharon::bench

#endif  // SHARON_BENCH_BENCH_UTIL_H_
