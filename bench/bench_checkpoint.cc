// Checkpoint/restore cost on the Fig. 14 taxi workload: serialized state
// size (total, per live group, vs. logical executor bytes), save stall
// (ingest-thread block during ShardedRuntime::Checkpoint), restore time,
// and heap allocations on both paths — at shard counts {1, 2, 8} with a
// cross-shard-count restore row (8 -> 2).
//
// The "bytes/group" column is the operator-facing number (README "Restart
// & recovery"): multiply by the live group count of a deployment to size
// checkpoint storage and transfer. Pass --quick for a CI-sized run.
//
// Each row also goes out as a one-line JSON record (PrintJsonRecord,
// bench/bench_util.h) for scraping.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/alloc_stats.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::Num;
using bench::PrintJsonRecord;
using bench::PrintRow;
using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

void Run(bool quick, const bench::ObsFlags& obs_flags) {
  std::printf(
      "=== Checkpoint/restore: Fig. 14 workload (taxi, 20 queries, "
      "length 10)%s ===\n\n",
      quick ? " (quick mode)" : "");

  TaxiConfig cfg;
  cfg.num_streets = 24;
  cfg.num_vehicles = quick ? 64 : 256;
  cfg.events_per_second = quick ? 2000 : 10000;
  cfg.duration = quick ? Seconds(40) : Minutes(2);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 20;     // paper default
  wcfg.pattern_length = 10;  // paper default
  wcfg.cluster_size = 10;
  wcfg.backbone_extra = 2;
  wcfg.window = {Seconds(30), Seconds(10)};
  wcfg.partition_attr = 0;
  Workload workload = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  SharingPlan plan = OptimizeSharon(workload, cm, bench::FastOptimizerConfig()).plan;

  DisorderConfig inj;
  inj.max_lateness = Seconds(2);
  inj.punctuation_period = Seconds(1);
  inj.seed = 7;
  const std::vector<Event> arrivals = InjectDisorder(s.events, inj);
  const size_t split = arrivals.size() * 3 / 5;

  PrintRow({"shards", "restore_to", "groups", "file_bytes", "bytes/group",
            "state_bytes", "save_ms", "restore_ms"});

  for (auto [from_shards, to_shards] :
       {std::pair<size_t, size_t>{1, 1}, {2, 2}, {8, 8}, {8, 2}}) {
    const std::string dir =
        std::filesystem::temp_directory_path().string() +
        "/sharon_bench_ckpt_" + std::to_string(from_shards) + "_" +
        std::to_string(to_shards);
    std::filesystem::remove_all(dir);

    RuntimeOptions opts;
    opts.num_shards = from_shards;
    opts.disorder.enabled = true;
    opts.disorder.max_lateness = inj.max_lateness;
    obs_flags.Apply(&opts);

    ShardedRuntime rt(workload, plan, opts);
    if (!rt.ok()) {
      std::printf("runtime error: %s\n", rt.error().c_str());
      return;
    }
    rt.Start();
    for (size_t i = 0; i < split; ++i) rt.Ingest(arrivals[i]);

    const alloc_stats::Counters before_save = alloc_stats::Snapshot();
    StopWatch save_watch;
    const ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
    const double save_ms = save_watch.ElapsedMillis();
    const alloc_stats::Counters save_allocs =
        alloc_stats::Snapshot() - before_save;
    if (!cp.ok) {
      std::printf("checkpoint error: %s\n", cp.reason.c_str());
      return;
    }

    ShardedRuntime::RestoreOptions ropts;
    ropts.runtime = opts;
    ropts.runtime.num_shards = to_shards;
    ropts.workload = &workload;
    ropts.plan = plan;
    const alloc_stats::Counters before_restore = alloc_stats::Snapshot();
    StopWatch restore_watch;
    ShardedRuntime::RestoreOutcome restored = ShardedRuntime::Restore(dir, ropts);
    const double restore_ms = restore_watch.ElapsedMillis();
    const alloc_stats::Counters restore_allocs =
        alloc_stats::Snapshot() - before_restore;
    if (!restored.runtime) {
      std::printf("restore error: %s\n", restored.error.c_str());
      return;
    }
    // Census the checkpointed state on the restored runtime BEFORE it
    // starts: no worker threads exist yet, so the numbers are exact (the
    // source runtime's workers race a mid-stream census).
    const size_t state_bytes = restored.runtime->EstimatedBytes();
    const LiveState live = restored.runtime->LiveStateSnapshot();
    // Drain the rest of the stream so the restored runtime is exercised,
    // not just constructed.
    restored.runtime->Start();
    for (size_t i = split; i < arrivals.size(); ++i) {
      restored.runtime->Ingest(arrivals[i]);
    }
    restored.runtime->Finish();
    // Telemetry of the SOURCE runtime (which took the checkpoint): the
    // trace carries the checkpoint lifecycle the dump is most useful for.
    rt.Finish();
    bench::DumpObs(rt, obs_flags);

    const double groups = static_cast<double>(live.groups);
    const double bytes_per_group =
        groups > 0 ? static_cast<double>(cp.bytes) / groups : 0;
    PrintRow({std::to_string(from_shards), std::to_string(to_shards),
              std::to_string(live.groups), Bytes(cp.bytes),
              Num(bytes_per_group, 0), Bytes(state_bytes), Num(save_ms, 2),
              Num(restore_ms, 2)});
    PrintJsonRecord(
        "checkpoint",
        {{"shards", std::to_string(from_shards)},
         {"restore_to", std::to_string(to_shards)},
         {"quick", quick ? "1" : "0"}},
        {{"groups", groups},
         {"file_bytes", static_cast<double>(cp.bytes)},
         {"bytes_per_group", bytes_per_group},
         {"state_bytes", static_cast<double>(state_bytes)},
         {"live_panes", static_cast<double>(live.LivePanes())},
         {"save_ms", save_ms},
         {"restore_ms", restore_ms},
         {"save_allocs", static_cast<double>(save_allocs.allocations)},
         {"restore_allocs", static_cast<double>(restore_allocs.allocations)},
         {"result_cells",
          static_cast<double>(restored.runtime->results().NumCells())}});
    std::filesystem::remove_all(dir);
  }
  std::printf(
      "\nbytes/group multiplies out to deployment checkpoint size; the\n"
      "save_ms column is the ingest stall of the blocking Checkpoint call\n"
      "(docs/OPERATIONS.md \"Checkpoint & restore\").\n");
}

}  // namespace
}  // namespace sharon

int main(int argc, char** argv) {
  bool quick = false;
  sharon::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (sharon::bench::ParseObsFlag(argv[i], &obs_flags)) continue;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  sharon::Run(quick, obs_flags);
  return 0;
}
