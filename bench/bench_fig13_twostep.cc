// Reproduces Fig. 13: two-step approaches (Flink-like, SPASS-like) versus
// online approaches (A-Seq, Sharon) on the Linear Road data set, varying
// the number of events per window.
//
// Expected shape (paper §8.2): two-step latency grows exponentially and the
// baselines stop terminating beyond a few thousand events per window
// (printed as DNF under the work budget), while the online approaches stay
// orders of magnitude faster.
//
// Pattern length is 4 here (the two-step baselines materialise every
// match, so the paper-default length 10 would put even the smallest point
// past any budget); the comparison shape is unaffected.

#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::LatencyMsPerWindow;
using bench::Num;
using bench::OrDnf;
using bench::PrintRow;

void Run() {
  std::printf(
      "=== Fig. 13: two-step vs online, Linear Road, latency (ms/window) "
      "and throughput (events/s, all queries) ===\n");
  PrintRow({"events/win", "Flink lat", "SPASS lat", "A-Seq lat", "Sharon lat",
            "Flink thr", "SPASS thr", "A-Seq thr", "Sharon thr"});

  const Duration window = Seconds(10);
  const Duration slide = Seconds(10);

  for (int events_per_window : {1000, 2000, 3000, 4000, 5000, 6000, 7000}) {
    LinearRoadConfig cfg;
    cfg.num_segments = 10;
    cfg.num_cars = 12;
    cfg.start_rate = cfg.end_rate =
        static_cast<double>(events_per_window) / 10.0;  // flat rate
    cfg.duration = Minutes(1);
    Scenario s = GenerateLinearRoad(cfg);

    WorkloadGenConfig wcfg;
    wcfg.num_queries = 10;
    wcfg.pattern_length = 4;
    wcfg.cluster_size = 5;
    wcfg.backbone_extra = 2;
    wcfg.window = {window, slide};
    wcfg.partition_attr = 0;  // per-car
    Workload w = GenerateWorkload(wcfg, cfg.num_segments);

    CostModel cm(EstimateRates(s));
    OptimizerResult opt = OptimizeSharon(w, cm, bench::FastOptimizerConfig());

    TwoStepBudget budget;
    budget.max_operations = 25'000'000;

    ResultCollector sink;
    RunStats flink = RunFlinkLike(w, s.events, budget, &sink);
    sink.Clear();
    RunStats spass = RunSpassLike(w, opt.plan, s.events, budget, &sink);

    Engine aseq(w);
    RunStats aseq_stats = aseq.Run(s.events, s.duration);
    Engine sharon_engine(w, opt.plan);
    RunStats sharon_stats = sharon_engine.Run(s.events, s.duration);

    WindowSpec ws{window, slide};
    PrintRow({std::to_string(events_per_window),
              OrDnf(flink, LatencyMsPerWindow(flink, s.duration, ws)),
              OrDnf(spass, LatencyMsPerWindow(spass, s.duration, ws)),
              Num(LatencyMsPerWindow(aseq_stats, s.duration, ws)),
              Num(LatencyMsPerWindow(sharon_stats, s.duration, ws)),
              OrDnf(flink, flink.Throughput(), 0),
              OrDnf(spass, spass.Throughput(), 0),
              Num(aseq_stats.Throughput(), 0),
              Num(sharon_stats.Throughput(), 0)});
  }
  std::printf(
      "\nPaper: Flink fails >6k events/window, SPASS >7k; online approaches "
      "are ~5 orders of magnitude faster at 7k.\n");
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
