// Reproduces Fig. 16: sharing plan quality — executor latency and memory
// when the Sharon executor is guided by the greedily chosen plan (GWMIN)
// versus the optimal plan (Sharon optimizer), on the taxi data set,
// varying the number of queries.
//
// The workload replicates the paper's own running example: each block of
// 7 queries is the Fig. 1 traffic workload over a fresh set of streets.
// On that structure GWMIN provably picks the inferior plan ({p1, p7},
// score 43) while the plan finder picks the optimal one ({p2, p4, p6,
// p7}, score 50; Example 12), so the executor gap below is exactly the
// paper's "greedy plan vs optimal plan" effect.
//
// Expected shape (§8.3): the optimal plan's executor latency and memory
// stay below the greedy plan's (paper: 2-fold latency and 3-fold memory
// at 180 queries).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::LatencyMsPerWindow;
using bench::Num;
using bench::PrintRow;

// q1..q7 of Fig. 1 over street type ids [base, base+6).
void AddTrafficCluster(Workload* w, EventTypeId base, const WindowSpec& win) {
  const EventTypeId oak = base, main = base + 1, park = base + 2,
                    west = base + 3, state = base + 4, elm = base + 5;
  auto add = [&](std::vector<EventTypeId> types) {
    Query q;
    q.pattern = Pattern(std::move(types));
    q.agg = AggSpec::CountStar();
    q.window = win;
    q.partition_attr = 0;
    w->Add(std::move(q));
  };
  add({oak, main, state});
  add({oak, main, west});
  add({park, oak, main});
  add({park, oak, main, west});
  add({main, state});
  add({elm, park});
  add({elm, park, state});
}

void Run() {
  std::printf(
      "=== Fig. 16: executor under greedy vs optimal plan (taxi data, "
      "replicated Fig. 1 clusters) ===\n");
  PrintRow({"queries", "greedy lat", "optimal lat", "greedy mem",
            "optimal mem", "lat ratio", "mem ratio"});

  const WindowSpec win{Minutes(2), Seconds(30)};

  for (int clusters : {3, 8, 14, 20, 26}) {  // 21..182 queries
    const int queries = clusters * 7;
    const uint32_t num_streets = static_cast<uint32_t>(clusters) * 6;

    TaxiConfig cfg;
    cfg.num_streets = num_streets;
    cfg.num_vehicles = 40;
    // Constant per-cluster load: total rate grows with the workload, as
    // more queries monitor more routes.
    cfg.events_per_second = 350.0 * clusters;
    cfg.duration = Minutes(3);
    cfg.zipf_s = 0.0;  // uniform so every cluster sees the same traffic
    Scenario s = GenerateTaxi(cfg);

    Workload w;
    for (int c = 0; c < clusters; ++c) {
      AddTrafficCluster(&w, static_cast<EventTypeId>(c * 6), win);
    }

    // The paper's Fig. 4 benefit weights make GWMIN pick {p1, p7} per
    // cluster while the plan finder picks the optimal {p2, p4, p6, p7}
    // (Example 12). Run both optimizers with those weights injected so
    // the executor comparison is exactly "greedy plan vs optimal plan".
    auto candidates = FindSharableCandidates(w);
    const double paper_weights[] = {25, 9, 12, 15, 20, 8, 18};
    TrafficFixture fixture = MakeTrafficFixture();
    auto weight = [&](const Candidate& c) -> double {
      // Identify which paper pattern this candidate is within its cluster
      // by normalising type ids to the cluster base.
      std::vector<EventTypeId> rel = c.pattern.types();
      EventTypeId base = (*std::min_element(rel.begin(), rel.end())) / 6 * 6;
      for (EventTypeId& t : rel) t -= base;
      for (size_t i = 0; i < fixture.paper_patterns.size(); ++i) {
        if (Pattern(rel) == fixture.paper_patterns[i]) {
          return paper_weights[i];
        }
      }
      return 0.0;
    };
    OptimizerResult greedy = OptimizeGreedy(w, candidates, weight);
    OptimizerConfig so_config = bench::FastOptimizerConfig();
    so_config.expand = false;
    OptimizerResult optimal = OptimizeSharon(w, candidates, weight, so_config);

    Engine ge(w, greedy.plan);
    RunStats gs = ge.Run(s.events, s.duration);
    Engine oe(w, optimal.plan);
    RunStats os = oe.Run(s.events, s.duration);

    PrintRow({std::to_string(queries),
              Num(LatencyMsPerWindow(gs, s.duration, win)),
              Num(LatencyMsPerWindow(os, s.duration, win)),
              Bytes(gs.peak_state_bytes), Bytes(os.peak_state_bytes),
              Num(gs.wall_seconds / os.wall_seconds, 2) + "x",
              Num(static_cast<double>(gs.peak_state_bytes) /
                      static_cast<double>(os.peak_state_bytes),
                  2) + "x"});
  }
  std::printf(
      "\nPaper: at 180 queries the optimal plan halves executor latency "
      "and cuts memory 3-fold versus the greedy plan.\n");
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
