// Google-benchmark micro benchmarks for the optimizer building blocks:
// CCSpan candidate detection, Sharon graph construction, GWMIN, graph
// reduction and the plan finder, as workload size grows.

#include <benchmark/benchmark.h>

#include "src/sharon.h"

namespace sharon {
namespace {

struct Prepared {
  Workload workload;
  std::vector<Candidate> candidates;
  SharonGraph::WeightFn weight;
};

Prepared Prepare(uint32_t num_queries) {
  Prepared p;
  WorkloadGenConfig cfg;
  cfg.num_queries = num_queries;
  cfg.pattern_length = 6;
  cfg.cluster_size = 5;
  cfg.backbone_extra = 2;
  cfg.window = {512, 64};
  p.workload = GenerateWorkload(cfg, 30);
  p.candidates = FindSharableCandidates(p.workload);
  p.weight = [](const Candidate& c) {
    return 1.0 + static_cast<double>(c.queries.size() * c.pattern.length());
  };
  return p;
}

void BM_CcspanDetection(benchmark::State& state) {
  Prepared p = Prepare(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindSharableCandidates(p.workload));
  }
}
BENCHMARK(BM_CcspanDetection)->Arg(10)->Arg(40)->Arg(160);

void BM_GraphConstruction(benchmark::State& state) {
  Prepared p = Prepare(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SharonGraph::Build(p.workload, p.candidates, p.weight));
  }
}
BENCHMARK(BM_GraphConstruction)->Arg(10)->Arg(40)->Arg(160);

void BM_Gwmin(benchmark::State& state) {
  Prepared p = Prepare(static_cast<uint32_t>(state.range(0)));
  SharonGraph g = SharonGraph::Build(p.workload, p.candidates, p.weight);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunGwmin(g));
  }
}
BENCHMARK(BM_Gwmin)->Arg(10)->Arg(40)->Arg(160);

void BM_GraphReduction(benchmark::State& state) {
  Prepared p = Prepare(static_cast<uint32_t>(state.range(0)));
  SharonGraph g = SharonGraph::Build(p.workload, p.candidates, p.weight);
  for (auto _ : state) {
    SharonGraph copy = g;
    benchmark::DoNotOptimize(ReduceGraph(copy));
  }
}
BENCHMARK(BM_GraphReduction)->Arg(10)->Arg(40)->Arg(160);

void BM_PlanFinder(benchmark::State& state) {
  Prepared p = Prepare(static_cast<uint32_t>(state.range(0)));
  SharonGraph g = SharonGraph::Build(p.workload, p.candidates, p.weight);
  ReduceGraph(g);
  PlanFinderOptions opts;
  opts.time_limit_seconds = 5;
  opts.max_level_plans = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindOptimalPlan(g, opts));
  }
}
BENCHMARK(BM_PlanFinder)->Arg(10)->Arg(20)->Arg(40);

void BM_FullSharonOptimizer(benchmark::State& state) {
  Prepared p = Prepare(static_cast<uint32_t>(state.range(0)));
  OptimizerConfig config;
  config.finder.time_limit_seconds = 5;
  config.finder.max_level_plans = 100'000;
  config.expansion.max_options_per_candidate = 16;
  config.expansion.max_total_candidates = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimizeSharon(p.workload, p.candidates, p.weight, config));
  }
}
BENCHMARK(BM_FullSharonOptimizer)->Arg(10)->Arg(20)->Arg(40);

}  // namespace
}  // namespace sharon

BENCHMARK_MAIN();
