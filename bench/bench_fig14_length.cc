// Reproduces Fig. 14(c,g,h): online approaches (A-Seq vs Sharon) on the
// e-commerce (EC) data set, varying pattern length; reports latency,
// throughput and peak state memory.
//
// Expected shape (§8.2): the speed-up grows with pattern length (paper:
// 4- to 6-fold from length 10 to 30) and Sharon needs ~20-fold less
// memory at length 30.

#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::LatencyMsPerWindow;
using bench::Num;
using bench::PrintRow;

void Run() {
  std::printf(
      "=== Fig. 14(c,g,h): latency (ms/window), throughput (events/s) and "
      "peak memory, e-commerce data, varying pattern length ===\n");
  PrintRow({"length", "A-Seq lat", "Sharon lat", "A-Seq thr", "Sharon thr",
            "A-Seq mem", "Sharon mem", "speedup"});

  const Duration window = Minutes(2);
  const Duration slide = Seconds(30);

  EcommerceConfig cfg;  // 50 items, 20 customers, 3k events/s (§8.1)
  cfg.duration = Minutes(2);
  Scenario s = GenerateEcommerce(cfg);
  CostModel cm(EstimateRates(s));

  for (int length : {10, 15, 20, 25, 30}) {
    WorkloadGenConfig wcfg;
    wcfg.num_queries = 20;
    wcfg.pattern_length = static_cast<uint32_t>(length);
    wcfg.cluster_size = 10;
    wcfg.backbone_extra = 2;
    wcfg.window = {window, slide};
    wcfg.partition_attr = 0;
    Workload w = GenerateWorkload(wcfg, cfg.num_items);

    OptimizerResult opt = OptimizeSharon(w, cm, bench::FastOptimizerConfig());

    Engine aseq(w);
    RunStats an = aseq.Run(s.events, s.duration);
    Engine sharon_engine(w, opt.plan);
    RunStats sh = sharon_engine.Run(s.events, s.duration);

    WindowSpec ws{window, slide};
    PrintRow({std::to_string(length),
              Num(LatencyMsPerWindow(an, s.duration, ws)),
              Num(LatencyMsPerWindow(sh, s.duration, ws)),
              Num(an.Throughput(), 0), Num(sh.Throughput(), 0),
              Bytes(an.peak_state_bytes), Bytes(sh.peak_state_bytes),
              Num(an.wall_seconds / sh.wall_seconds, 2) + "x"});
  }
  std::printf(
      "\nPaper: speed-up grows linearly with pattern length (4-fold at 10 "
      "to 6-fold at 30); ~20-fold memory reduction at length 30.\n");
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
