// Reproduces Fig. 15(a,b): optimizer latency and memory — Sharon optimizer
// (SO) vs greedy optimizer (GO) vs exhaustive optimizer (EO) on e-commerce
// query workloads, varying the number of queries. Each bar is segmented
// into pipeline phases exactly as in the paper (graph construction, graph
// expansion, graph reduction / GWMIN, plan search).
//
// Expected shape (§8.3): EO explodes and stops terminating beyond ~20
// queries; SO stays orders of magnitude below EO thanks to reduction and
// invalid-branch pruning but above polynomial GO; GO's own cost is
// dominated by graph construction.

#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::Num;

void PrintResult(const char* name, const OptimizerResult& r) {
  std::printf("  %-10s total=%9.2fms peak=%10s score=%8.0f %s\n", name,
              r.TotalMillis(), Bytes(r.PeakBytes()).c_str(), r.score,
              r.completed ? "" : (r.used_fallback ? "(GWMIN fallback)"
                                                  : "(did not finish)"));
  for (const auto& phase : r.phases) {
    std::printf("      %-20s %9.2fms %10s\n", phase.name.c_str(),
                phase.millis, Bytes(phase.bytes).c_str());
  }
}

void Run() {
  std::printf(
      "=== Fig. 15: optimizer latency and memory by phase (e-commerce "
      "workloads) ===\n");

  EcommerceConfig scfg;
  scfg.duration = Minutes(1);
  Scenario s = GenerateEcommerce(scfg);
  CostModel cm(EstimateRates(s));

  OptimizerConfig config;  // default SO/EO settings
  config.finder.time_limit_seconds = 20.0;
  config.expansion.max_options_per_candidate = 32;
  config.expansion.max_total_candidates = 1024;

  for (int queries : {10, 20, 30, 40, 50, 60, 70}) {
    WorkloadGenConfig wcfg;
    wcfg.num_queries = static_cast<uint32_t>(queries);
    wcfg.pattern_length = 6;
    wcfg.cluster_size = 5;
    wcfg.backbone_extra = 2;
    wcfg.window = {Minutes(2), Seconds(30)};
    wcfg.partition_attr = 0;
    Workload w = GenerateWorkload(wcfg, scfg.num_items);

    std::printf("\n--- %d queries ---\n", queries);
    OptimizerResult go = OptimizeGreedy(w, cm);
    PrintResult("GO", go);

    if (queries <= 20) {
      OptimizerConfig eo_config = config;
      eo_config.finder.time_limit_seconds = 30.0;
      // The naive exhaustive search enumerates 2^V subsets. It runs on
      // the unexpanded graph: with §7.1 options included even 10-query
      // graphs exceed 2^35 subsets, while the paper's EO still terminates
      // at 20 queries — the unexpanded graph reproduces that boundary.
      eo_config.expand = false;
      OptimizerResult eo = OptimizeExhaustive(w, cm, eo_config);
      PrintResult("EO", eo);
    } else {
      std::printf("  %-10s (skipped: fails to terminate beyond 20 queries, "
                  "as in the paper)\n", "EO");
    }

    OptimizerResult so = OptimizeSharon(w, cm, config);
    PrintResult("SO", so);
    std::printf(
        "  SO pruning: %zu candidates -> %zu vertices -> %zu expanded -> "
        "%zu after reduction (%zu ridden pruned, %zu conflict-free)\n",
        so.candidates, so.graph_vertices, so.expanded_vertices,
        so.reduced_vertices, so.pruned_ridden, so.conflict_free);
  }
  std::printf(
      "\nPaper: EO is 4 orders of magnitude slower than GO at 20 queries "
      "and fails beyond; SO sits in between, ~3 orders below EO in latency "
      "and 2 in memory, and on average prunes 36%% of expanded candidates "
      "= 99%% of the plan search space.\n");
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
