// Sharded-runtime scaling on the Fig. 14 workload: events/s at shard
// counts {1, 2, 4, 8} for the Sharon shared plan and the A-Seq baseline.
//
// Expected shape: wall-clock events/s grows with the shard count up to
// the host's core count (groups are independent, so sharding is
// embarrassingly parallel; the ingest thread and queue traffic are the
// only serial parts). On hosts with fewer cores than shards the wall
// numbers flatten — the per-shard busy-time column then still shows that
// shard work shrank proportionally. Pass --quick for a CI-sized run.
//
// --long-stream runs the bounded-state experiment instead: a stream
// covering many window lengths through (a) the seed grow-forever engine
// and (b) the watermarked engine with eviction + finalized-result
// draining. Live pane count and logical bytes are sampled along the run;
// with eviction both stay flat (O(active panes)) where the seed's
// pending-window count and result bytes grow linearly with the stream.
//
// Each row also goes out as a one-line JSON record (PrintJsonRecord,
// bench/bench_util.h) for scraping. --metrics-out=<path> / --trace-out=
// <path> dump the runtimes' telemetry (src/obs/) as validated JSON-lines.

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/alloc_stats.h"

namespace sharon {
namespace {

using bench::Num;
using bench::ObsFlags;
using bench::PrintJsonRecord;
using bench::PrintRow;

void Run(bool quick, const ObsFlags& obs_flags) {
  std::printf(
      "=== Runtime scaling: Fig. 14 workload (taxi, 20 queries, length 10), "
      "shard counts {1,2,4,8} ===\n");
  std::printf("host hardware threads: %u%s\n\n",
              std::thread::hardware_concurrency(),
              quick ? " (quick mode)" : "");

  const Duration window = Minutes(2);
  const Duration slide = Seconds(30);

  TaxiConfig cfg;
  cfg.num_streets = 24;
  cfg.num_vehicles = quick ? 64 : 256;
  cfg.events_per_second = quick ? 2000 : 20000;
  cfg.duration = quick ? Minutes(1) : Minutes(5);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 20;     // paper default
  wcfg.pattern_length = 10;  // paper default
  wcfg.cluster_size = 10;
  wcfg.backbone_extra = 2;
  wcfg.window = {window, slide};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  OptimizerResult opt = OptimizeSharon(w, cm, bench::FastOptimizerConfig());
  std::printf("stream: %zu events, %zu groups; plan: %zu candidates\n\n",
              s.events.size(), static_cast<size_t>(cfg.num_vehicles),
              opt.plan.size());

  PrintRow({"shards", "plan", "wall s", "events/s", "vs 1 shard",
            "busy s/shard", "occupancy", "stalls"});

  for (const bool shared : {true, false}) {
    const SharingPlan& plan = shared ? opt.plan : SharingPlan{};
    const char* plan_name = shared ? "sharon" : "aseq";
    double base_rate = 0;
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      runtime::RuntimeOptions ropts;
      ropts.num_shards = shards;
      obs_flags.Apply(&ropts);
      runtime::ShardedRuntime rt(w, plan, ropts);
      if (!rt.ok()) {
        std::fprintf(stderr, "runtime error: %s\n", rt.error().c_str());
        return;
      }
      const auto alloc_before = alloc_stats::Snapshot();
      rt.Run(s.events, s.duration);
      const auto alloc_delta = alloc_stats::Snapshot() - alloc_before;
      bench::DumpObs(rt, obs_flags);
      runtime::RuntimeStats stats = rt.stats();

      const double rate = stats.EventsPerSecond();
      if (shards == 1) base_rate = rate;
      const double busy_per_shard =
          stats.TotalBusySeconds() / static_cast<double>(shards);
      const double allocs_per_event =
          s.events.empty() ? 0
                           : static_cast<double>(alloc_delta.allocations) /
                                 static_cast<double>(s.events.size());

      PrintRow({std::to_string(shards), plan_name, Num(stats.wall_seconds),
                Num(rate, 0),
                Num(base_rate > 0 ? rate / base_rate : 0, 2) + "x",
                Num(busy_per_shard, 3), Num(stats.AvgBatchOccupancy(), 1),
                std::to_string(stats.TotalStalls())});
      PrintJsonRecord(
          "runtime_scaling",
          {{"plan", plan_name},
           {"shards", std::to_string(shards)},
           {"events", std::to_string(s.events.size())}},
          {{"wall_seconds", stats.wall_seconds},
           {"events_per_second", rate},
           {"speedup_vs_1", base_rate > 0 ? rate / base_rate : 0},
           {"busy_seconds_per_shard", busy_per_shard},
           {"batch_occupancy", stats.AvgBatchOccupancy()},
           {"queue_full_stalls", static_cast<double>(stats.TotalStalls())},
           {"batch_allocs", static_cast<double>(stats.TotalBatchAllocs())},
           {"batches_recycled",
            static_cast<double>(stats.TotalBatchesRecycled())},
           {"allocs_per_event", allocs_per_event}});
    }
  }
  std::printf(
      "\nGroups are hash-partitioned across shards, so per-shard busy time "
      "drops ~1/shards;\nwall-clock events/s scales with shards up to the "
      "host's core count.\n");

  // --- sharded ingest: N producer threads feeding one runtime -------------
  // The stream is pre-split round-robin; every producer drives its own
  // IngestPartition and punctuates the running high-mark each slide.
  // Watermarks merge per shard (min over producer frontiers), so the
  // finalized results stay bit-identical (tests/hotpath_diff_test.cc).
  std::printf("\n=== Sharded ingest: producer partitions x 4 shards ===\n\n");
  PrintRow({"producers", "wall s", "events/s", "stalls", "batch allocs",
            "recycled", "allocs/event"});
  for (size_t producers : {1u, 2u, 4u}) {
    runtime::RuntimeOptions ropts;
    ropts.num_shards = 4;
    ropts.ingest_partitions = producers;
    ropts.disorder.enabled = true;
    ropts.disorder.max_lateness = 0;
    obs_flags.Apply(&ropts);
    runtime::ShardedRuntime rt(w, opt.plan, ropts);
    if (!rt.ok()) {
      std::fprintf(stderr, "runtime error: %s\n", rt.error().c_str());
      return;
    }
    // Pre-split: producer p takes events i with i %% producers == p.
    std::vector<std::vector<Event>> splits(producers);
    for (size_t i = 0; i < s.events.size(); ++i) {
      splits[i % producers].push_back(s.events[i]);
    }
    const auto alloc_before = alloc_stats::Snapshot();
    rt.Start();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&rt, &splits, p, slide] {
        runtime::IngestPartition& ingest = rt.ingest_partition(p);
        Timestamp next_punctuation = slide;
        for (const Event& e : splits[p]) {
          ingest.Ingest(e);
          if (e.time >= next_punctuation) {
            ingest.IngestWatermark(e.time);
            next_punctuation = e.time + slide;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    rt.Finish();
    const auto alloc_delta = alloc_stats::Snapshot() - alloc_before;
    bench::DumpObs(rt, obs_flags);
    runtime::RuntimeStats stats = rt.stats();
    const double rate = stats.EventsPerSecond();
    const double allocs_per_event =
        s.events.empty() ? 0
                         : static_cast<double>(alloc_delta.allocations) /
                               static_cast<double>(s.events.size());
    PrintRow({std::to_string(producers), Num(stats.wall_seconds),
              Num(rate, 0), std::to_string(stats.TotalStalls()),
              std::to_string(stats.TotalBatchAllocs()),
              std::to_string(stats.TotalBatchesRecycled()),
              Num(allocs_per_event, 3)});
    PrintJsonRecord(
        "runtime_scaling_ingest",
        {{"producers", std::to_string(producers)},
         {"shards", "4"},
         {"events", std::to_string(s.events.size())}},
        {{"wall_seconds", stats.wall_seconds},
         {"events_per_second", rate},
         {"queue_full_stalls", static_cast<double>(stats.TotalStalls())},
         {"batch_allocs", static_cast<double>(stats.TotalBatchAllocs())},
         {"batches_recycled",
          static_cast<double>(stats.TotalBatchesRecycled())},
         {"allocs_per_event", allocs_per_event}});
  }
  std::printf(
      "\nBatch buffers ride producer<->shard recycling rings: batch allocs "
      "stay at the\nwarm-up figure while recycled batches track the batch "
      "count (zero-allocation\nsteady state).\n");
}

// --- long-stream bounded-state experiment ---------------------------------

void RunLongStream(bool quick) {
  const Duration window = Seconds(20);
  const Duration slide = Seconds(6);  // slide does not divide length
  const int window_multiples = quick ? 12 : 40;

  TaxiConfig cfg;
  cfg.num_streets = 16;
  cfg.num_vehicles = 48;
  cfg.events_per_second = quick ? 400 : 1000;
  cfg.duration = window_multiples * window;
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 8;
  wcfg.pattern_length = 4;
  wcfg.cluster_size = 4;
  wcfg.window = {window, slide};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  DisorderConfig inj;
  inj.max_lateness = slide / 4;
  inj.punctuation_period = slide / 2;
  const std::vector<Event> disordered = InjectDisorder(s.events, inj);

  std::printf(
      "=== Long stream: %zu events over %d window lengths "
      "(window %lds, slide %lds, lateness %ld ticks) ===\n\n",
      s.events.size(), window_multiples,
      static_cast<long>(window / kTicksPerSecond),
      static_cast<long>(slide / kTicksPerSecond),
      static_cast<long>(inj.max_lateness));
  PrintRow({"mode", "events", "live panes", "pending wins", "bytes",
            "drained"});

  const size_t samples = 24;
  for (const bool evict : {false, true}) {
    const char* mode = evict ? "evict" : "seed";
    Engine engine(w);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine error: %s\n", engine.error().c_str());
      return;
    }
    if (evict) {
      DisorderPolicy policy;
      policy.enabled = true;
      policy.max_lateness = inj.max_lateness;
      engine.SetDisorderPolicy(policy);
    }
    const std::vector<Event>& input = evict ? disordered : s.events;
    const size_t stride = std::max<size_t>(input.size() / samples, 1);
    size_t max_live_panes = 0, max_bytes = 0, drained = 0, processed = 0;
    for (size_t i = 0; i < input.size(); ++i) {
      engine.OnEvent(input[i]);
      if (!IsWatermark(input[i])) ++processed;
      if ((i + 1) % stride == 0 || i + 1 == input.size()) {
        if (evict) {
          // A real sink consumes finalized windows; draining is what
          // keeps the result store (and RSS) flat.
          drained += engine.DrainFinalized(
              [](const ResultKey&, const AggState&) {});
        }
        const LiveState live = engine.LiveStateSnapshot();
        const size_t bytes = engine.EstimatedBytes();
        max_live_panes = std::max(max_live_panes, live.LivePanes());
        max_bytes = std::max(max_bytes, bytes);
        PrintRow({mode, std::to_string(processed),
                  std::to_string(live.LivePanes()),
                  std::to_string(live.pending_windows), bench::Bytes(bytes),
                  std::to_string(drained)});
        PrintJsonRecord(
            "long_stream_sample",
            {{"mode", mode}},
            {{"events", static_cast<double>(processed)},
             {"live_panes", static_cast<double>(live.LivePanes())},
             {"pending_windows", static_cast<double>(live.pending_windows)},
             {"bytes", static_cast<double>(bytes)},
             {"drained_cells", static_cast<double>(drained)}});
      }
    }
    if (evict) {
      engine.CloseStream();
      drained += engine.DrainFinalized([](const ResultKey&, const AggState&) {});
      const WatermarkStats& ws = engine.watermark_stats();
      PrintJsonRecord(
          "long_stream_summary", {{"mode", mode}},
          {{"max_live_panes", static_cast<double>(max_live_panes)},
           {"max_bytes", static_cast<double>(max_bytes)},
           {"drained_cells", static_cast<double>(drained)},
           {"finalized_windows", static_cast<double>(ws.finalized_windows)},
           {"evicted_panes", static_cast<double>(ws.evicted_panes)},
           {"evicted_groups", static_cast<double>(ws.evicted_groups)},
           {"late_dropped", static_cast<double>(ws.late_dropped)}});
    } else {
      PrintJsonRecord(
          "long_stream_summary", {{"mode", mode}},
          {{"max_live_panes", static_cast<double>(max_live_panes)},
           {"max_bytes", static_cast<double>(max_bytes)},
           {"drained_cells", 0.0}});
    }
    std::printf("\n");
  }
  std::printf(
      "With eviction + draining, live panes and bytes plateau at the\n"
      "active-pane working set; the seed engine's pending windows and\n"
      "result bytes grow linearly with the stream.\n");
}

}  // namespace
}  // namespace sharon

int main(int argc, char** argv) {
  bool quick = false;
  bool long_stream = false;
  sharon::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (sharon::bench::ParseObsFlag(argv[i], &obs_flags)) continue;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--long-stream") == 0) long_stream = true;
  }
  if (long_stream) {
    sharon::RunLongStream(quick);
  } else {
    sharon::Run(quick, obs_flags);
  }
  return 0;
}
