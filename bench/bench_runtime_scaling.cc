// Sharded-runtime scaling on the Fig. 14 workload: events/s at shard
// counts {1, 2, 4, 8} for the Sharon shared plan and the A-Seq baseline.
//
// Expected shape: wall-clock events/s grows with the shard count up to
// the host's core count (groups are independent, so sharding is
// embarrassingly parallel; the ingest thread and queue traffic are the
// only serial parts). On hosts with fewer cores than shards the wall
// numbers flatten — the per-shard busy-time column then still shows that
// shard work shrank proportionally. Pass --quick for a CI-sized run.
//
// Each row also goes out as a one-line JSON record (PrintJsonRecord,
// bench/bench_util.h) for scraping.

#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Num;
using bench::PrintJsonRecord;
using bench::PrintRow;

void Run(bool quick) {
  std::printf(
      "=== Runtime scaling: Fig. 14 workload (taxi, 20 queries, length 10), "
      "shard counts {1,2,4,8} ===\n");
  std::printf("host hardware threads: %u%s\n\n",
              std::thread::hardware_concurrency(),
              quick ? " (quick mode)" : "");

  const Duration window = Minutes(2);
  const Duration slide = Seconds(30);

  TaxiConfig cfg;
  cfg.num_streets = 24;
  cfg.num_vehicles = quick ? 64 : 256;
  cfg.events_per_second = quick ? 2000 : 20000;
  cfg.duration = quick ? Minutes(1) : Minutes(5);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 20;     // paper default
  wcfg.pattern_length = 10;  // paper default
  wcfg.cluster_size = 10;
  wcfg.backbone_extra = 2;
  wcfg.window = {window, slide};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  OptimizerResult opt = OptimizeSharon(w, cm, bench::FastOptimizerConfig());
  std::printf("stream: %zu events, %zu groups; plan: %zu candidates\n\n",
              s.events.size(), static_cast<size_t>(cfg.num_vehicles),
              opt.plan.size());

  PrintRow({"shards", "plan", "wall s", "events/s", "vs 1 shard",
            "busy s/shard", "occupancy", "stalls"});

  for (const bool shared : {true, false}) {
    const SharingPlan& plan = shared ? opt.plan : SharingPlan{};
    const char* plan_name = shared ? "sharon" : "aseq";
    double base_rate = 0;
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      runtime::RuntimeOptions ropts;
      ropts.num_shards = shards;
      runtime::ShardedRuntime rt(w, plan, ropts);
      if (!rt.ok()) {
        std::fprintf(stderr, "runtime error: %s\n", rt.error().c_str());
        return;
      }
      rt.Run(s.events, s.duration);
      runtime::RuntimeStats stats = rt.stats();

      const double rate = stats.EventsPerSecond();
      if (shards == 1) base_rate = rate;
      const double busy_per_shard =
          stats.TotalBusySeconds() / static_cast<double>(shards);

      PrintRow({std::to_string(shards), plan_name, Num(stats.wall_seconds),
                Num(rate, 0),
                Num(base_rate > 0 ? rate / base_rate : 0, 2) + "x",
                Num(busy_per_shard, 3), Num(stats.AvgBatchOccupancy(), 1),
                std::to_string(stats.TotalStalls())});
      PrintJsonRecord(
          "runtime_scaling",
          {{"plan", plan_name},
           {"shards", std::to_string(shards)},
           {"events", std::to_string(s.events.size())}},
          {{"wall_seconds", stats.wall_seconds},
           {"events_per_second", rate},
           {"speedup_vs_1", base_rate > 0 ? rate / base_rate : 0},
           {"busy_seconds_per_shard", busy_per_shard},
           {"batch_occupancy", stats.AvgBatchOccupancy()},
           {"queue_full_stalls", static_cast<double>(stats.TotalStalls())}});
    }
  }
  std::printf(
      "\nGroups are hash-partitioned across shards, so per-shard busy time "
      "drops ~1/shards;\nwall-clock events/s scales with shards up to the "
      "host's core count.\n");
}

}  // namespace
}  // namespace sharon

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  sharon::Run(quick);
  return 0;
}
