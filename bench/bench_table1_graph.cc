// Reproduces Table 1 (the sharing candidates of the traffic workload),
// Fig. 4 (the Sharon graph), and the Example 7-12 optimizer arithmetic:
// GWMIN's guaranteed weight, conflict-ridden/-free pruning, the Fig. 8
// search-space reduction percentages, and greedy vs optimal plan scores.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

void Run() {
  TrafficFixture f = MakeTrafficFixture();

  std::printf("=== Traffic monitoring workload Q (Fig. 1) ===\n");
  for (const Query& q : f.workload.queries()) {
    std::printf("  %-3s PATTERN %s WITHIN 10 min SLIDE 1 min\n",
                q.name.c_str(), q.pattern.ToString(f.types).c_str());
  }

  auto candidates = FindSharableCandidates(f.workload);
  std::printf("\n=== Table 1: sharing candidates (p, Qp) ===\n");
  std::printf("  %-28s %s\n", "Pattern p", "Queries Qp");
  for (size_t i = 0; i < f.paper_patterns.size(); ++i) {
    for (const Candidate& c : candidates) {
      if (c.pattern == f.paper_patterns[i]) {
        std::string qs;
        for (QueryId q : c.queries) qs += "q" + std::to_string(q + 1) + " ";
        std::printf("  p%zu = %-24s %s\n", i + 1,
                    c.pattern.ToString(f.types).c_str(), qs.c_str());
      }
    }
  }

  auto weight = [&](const Candidate& c) {
    for (const auto& [p, w] : f.paper_weights) {
      if (p == c.pattern) return w;
    }
    return 0.0;
  };
  SharonGraph graph = SharonGraph::Build(f.workload, candidates, weight);

  std::printf("\n=== Fig. 4: Sharon graph (paper benefit weights) ===\n");
  std::printf("%s", graph.ToString(f.types).c_str());
  std::printf("vertices=%zu edges=%zu\n", graph.num_vertices(),
              graph.num_edges());

  std::printf("\n=== Example 7: GWMIN guaranteed weight ===\n");
  std::printf("  guaranteed weight = %.2f (paper: ~38.57)\n",
              graph.GuaranteedWeight());

  SharonGraph reduced = graph;
  ReductionResult red = ReduceGraph(reduced);
  std::printf("\n=== Examples 8-9: graph reduction ===\n");
  std::printf("  conflict-ridden pruned: %zu (paper: 1, p3)\n",
              red.pruned_ridden.size());
  std::printf("  conflict-free extracted: %zu (paper: 1, p7)\n",
              red.conflict_free.size());
  std::printf("  remaining candidates: %zu (paper: 5)\n", red.remaining);
  const double full_space = std::pow(2.0, static_cast<double>(graph.num_vertices()));
  const double red_space = std::pow(2.0, static_cast<double>(red.remaining));
  std::printf("  search space: 2^%zu=%.0f -> 2^%zu=%.0f (%.2f%% pruned; "
              "paper: 75.59%% of space outside the solid frame)\n",
              graph.num_vertices(), full_space, red.remaining, red_space,
              100.0 * (full_space - red_space) / full_space);

  PlanFinderResult found = FindOptimalPlan(reduced);
  std::printf("\n=== Example 10: valid-space traversal ===\n");
  std::printf("  valid plans considered: %llu (paper: 10)\n",
              static_cast<unsigned long long>(found.plans_considered));

  OptimizerResult greedy = OptimizeGreedy(f.workload, candidates, weight);
  OptimizerConfig cfg;
  cfg.expand = false;
  OptimizerResult sharon = OptimizeSharon(f.workload, candidates, weight, cfg);
  std::printf("\n=== Example 12: greedy vs optimal plan ===\n");
  std::printf("  greedy (GWMIN) plan score:  %.0f (paper: 43)\n", greedy.score);
  std::printf("  optimal plan score:         %.0f (paper: 50)\n", sharon.score);
  std::printf("  optimal plan:\n");
  for (const Candidate& c : sharon.plan) {
    std::printf("    %s\n", c.ToString(f.types).c_str());
  }
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
