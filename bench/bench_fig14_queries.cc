// Reproduces Fig. 14(b,f,d): online approaches (A-Seq vs Sharon) on the
// Linear Road (LR) data set, varying the number of queries; reports
// latency, throughput and peak state memory.
//
// Expected shape (§8.2): both latencies grow linearly in the number of
// queries; Sharon's speed-up over A-Seq widens with more queries (paper:
// 5- to 18-fold from 20 to 120 queries) and it needs up to two orders of
// magnitude less memory at 120 queries.

#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::LatencyMsPerWindow;
using bench::Num;
using bench::PrintRow;

void Run() {
  std::printf(
      "=== Fig. 14(b,f,d): latency (ms/window), throughput (events/s) and "
      "peak memory, Linear Road data, varying number of queries ===\n");
  PrintRow({"queries", "A-Seq lat", "Sharon lat", "A-Seq thr", "Sharon thr",
            "A-Seq mem", "Sharon mem", "speedup"});

  const Duration window = Minutes(2);
  const Duration slide = Seconds(30);

  LinearRoadConfig cfg;
  cfg.num_segments = 24;
  cfg.num_cars = 50;
  cfg.start_rate = 300;
  cfg.end_rate = 900;
  cfg.duration = Minutes(3);
  Scenario s = GenerateLinearRoad(cfg);
  CostModel cm(EstimateRates(s));

  for (int queries : {20, 40, 60, 80, 100, 120}) {
    WorkloadGenConfig wcfg;
    wcfg.num_queries = static_cast<uint32_t>(queries);
    wcfg.pattern_length = 10;
    // As in the paper's workloads, more queries monitor the same routes:
    // the pattern pool stays fixed (4 clusters), so sharing density — and
    // with it Sharon's advantage — grows with the query count.
    wcfg.cluster_size = static_cast<uint32_t>(queries) / 4;
    wcfg.backbone_extra = 2;
    wcfg.window = {window, slide};
    wcfg.partition_attr = 0;
    Workload w = GenerateWorkload(wcfg, cfg.num_segments);

    OptimizerResult opt = OptimizeSharon(w, cm, bench::FastOptimizerConfig());

    Engine aseq(w);
    RunStats an = aseq.Run(s.events, s.duration);
    Engine sharon_engine(w, opt.plan);
    RunStats sh = sharon_engine.Run(s.events, s.duration);

    WindowSpec ws{window, slide};
    PrintRow({std::to_string(queries),
              Num(LatencyMsPerWindow(an, s.duration, ws)),
              Num(LatencyMsPerWindow(sh, s.duration, ws)),
              Num(an.Throughput(), 0), Num(sh.Throughput(), 0),
              Bytes(an.peak_state_bytes), Bytes(sh.peak_state_bytes),
              Num(an.wall_seconds / sh.wall_seconds, 2) + "x"});
  }
  std::printf(
      "\nPaper: speed-up grows from 5-fold (20 queries) to 18-fold (120 "
      "queries); memory gap reaches two orders of magnitude.\n");
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
