// Ablation bench for the design choices DESIGN.md calls out:
//
//  A. Graph reduction (§5) on/off on the EXPANDED graph — how many weak
//     candidate options do conflict-ridden pruning and conflict-free
//     extraction remove, and what does that do to plan finder work?
//  B. Conflict resolution / expansion (§7.1) on/off — how much plan score
//     does resolving conflicts buy, at what optimizer cost? (Sized so the
//     finder completes on the expanded graph; with unbounded expansion the
//     finder would fall back to GWMIN, which is exactly the §6 story.)
//  C. Invalid-branch pruning (§6) — plan finder (valid-space traversal)
//     vs exhaustive subset enumeration on identical graphs.
//
// Weights come from the real cost model over an e-commerce stream.

#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Num;

void Run() {
  std::printf("=== Ablation: Sharon optimizer pruning machinery ===\n");

  EcommerceConfig scfg;
  scfg.duration = Minutes(1);
  Scenario s = GenerateEcommerce(scfg);
  CostModel cm(EstimateRates(s));

  for (uint32_t queries : {6, 8, 10}) {
    WorkloadGenConfig wcfg;
    wcfg.num_queries = queries;
    wcfg.pattern_length = 4;
    wcfg.cluster_size = 3;
    wcfg.backbone_extra = 2;
    wcfg.window = {Minutes(2), Seconds(30)};
    wcfg.partition_attr = 0;
    Workload w = GenerateWorkload(wcfg, scfg.num_items);
    auto candidates = FindSharableCandidates(w);
    auto weight = [&](const Candidate& c) { return cm.BValue(c, w); };

    std::printf("\n--- %u queries (%zu candidates) ---\n", queries,
                candidates.size());

    // A: reduction on/off, with expansion on (the §5 pruning acts on the
    // expanded graph in the full SO pipeline).
    for (bool reduce : {true, false}) {
      OptimizerConfig config;
      config.expand = true;
      config.reduce = reduce;
      config.expansion.max_options_per_candidate = 16;
      config.expansion.max_total_candidates = 256;
      config.finder.time_limit_seconds = 20;
      OptimizerResult r = OptimizeSharon(w, candidates, weight, config);
      std::printf(
          "  reduction %-3s  expanded %3zu -> kept %3zu  plans %9llu  "
          "time %8.2fms  score %10.0f%s\n",
          reduce ? "ON" : "OFF", r.expanded_vertices,
          reduce ? r.reduced_vertices : r.expanded_vertices,
          static_cast<unsigned long long>(r.plans_considered),
          r.TotalMillis(), r.score, r.completed ? "" : " (fallback)");
    }

    // B: expansion on/off.
    for (bool expand : {false, true}) {
      OptimizerConfig config;
      config.expand = expand;
      config.expansion.max_options_per_candidate = 16;
      config.expansion.max_total_candidates = 256;
      config.finder.time_limit_seconds = 20;
      OptimizerResult r = OptimizeSharon(w, candidates, weight, config);
      std::printf(
          "  expansion %-3s  vertices %4zu  time %8.2fms  score %10.0f%s\n",
          expand ? "ON" : "OFF",
          expand ? r.expanded_vertices : r.graph_vertices, r.TotalMillis(),
          r.score, r.completed ? "" : " (fallback)");
    }

    // C: valid-space traversal vs exhaustive subsets on the same graph.
    SharonGraph g = SharonGraph::Build(w, candidates, weight);
    if (g.num_vertices() <= 24) {
      PlanFinderOptions opts;
      opts.time_limit_seconds = 30;
      StopWatch t1;
      PlanFinderResult finder = FindOptimalPlan(g, opts);
      double finder_ms = t1.ElapsedMillis();
      StopWatch t2;
      PlanFinderResult exhaustive = ExhaustiveSearch(g, opts);
      double exhaustive_ms = t2.ElapsedMillis();
      std::printf(
          "  invalid-branch pruning: finder %llu plans / %.2fms vs "
          "exhaustive %llu subsets / %.2fms (same optimum: %s)\n",
          static_cast<unsigned long long>(finder.plans_considered),
          finder_ms,
          static_cast<unsigned long long>(exhaustive.plans_considered),
          exhaustive_ms,
          finder.best_score == exhaustive.best_score ? "yes" : "NO");
    } else {
      std::printf(
          "  invalid-branch pruning: graph too large for exhaustive "
          "comparison (%zu vertices)\n",
          g.num_vertices());
    }
  }
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
