// Reproduces Fig. 14(a,e): online approaches (A-Seq vs Sharon) on the
// taxi (TX) data set, varying the number of events per window.
//
// Expected shape (§8.2): Sharon's speed-up over A-Seq grows linearly with
// events per window (paper: 5- to 7-fold from 200k to 1.2M events). Event
// counts are scaled down (factor 20) to keep one bench run under a minute;
// the trend — the speed-up growing with window size — is what matters.

#include <cstdio>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::LatencyMsPerWindow;
using bench::Num;
using bench::PrintRow;

void Run() {
  std::printf(
      "=== Fig. 14(a,e): latency (ms/window) and throughput (events/s), "
      "taxi data, varying events per window (paper nominal / scaled 1:20) "
      "===\n");
  PrintRow({"events/win", "A-Seq lat", "Sharon lat", "A-Seq thr",
            "Sharon thr", "speedup"});

  const Duration window = Minutes(2);
  const Duration slide = Seconds(30);

  for (int nominal : {200, 400, 600, 800, 1000, 1200}) {  // x1000 in paper
    const double events_per_window = nominal * 1000.0 / 20.0;
    TaxiConfig cfg;
    cfg.num_streets = 24;
    cfg.num_vehicles = 50;
    cfg.events_per_second =
        events_per_window / (static_cast<double>(window) / kTicksPerSecond);
    cfg.duration = Minutes(5);
    Scenario s = GenerateTaxi(cfg);

    WorkloadGenConfig wcfg;
    wcfg.num_queries = 20;       // paper default
    wcfg.pattern_length = 10;    // paper default
    wcfg.cluster_size = 10;
    wcfg.backbone_extra = 2;
    wcfg.window = {window, slide};
    wcfg.partition_attr = 0;
    Workload w = GenerateWorkload(wcfg, cfg.num_streets);

    CostModel cm(EstimateRates(s));
    OptimizerResult opt = OptimizeSharon(w, cm, bench::FastOptimizerConfig());

    Engine aseq(w);
    RunStats an = aseq.Run(s.events, s.duration);
    Engine sharon_engine(w, opt.plan);
    RunStats sh = sharon_engine.Run(s.events, s.duration);

    WindowSpec ws{window, slide};
    PrintRow({std::to_string(nominal) + "k",
              Num(LatencyMsPerWindow(an, s.duration, ws)),
              Num(LatencyMsPerWindow(sh, s.duration, ws)),
              Num(an.Throughput(), 0), Num(sh.Throughput(), 0),
              Num(an.wall_seconds / sh.wall_seconds, 2) + "x"});
  }
  std::printf(
      "\nPaper: Sharon's win grows linearly with events/window "
      "(5-fold at 200k to 7-fold at 1.2M on their testbed).\n");
}

}  // namespace
}  // namespace sharon

int main() {
  sharon::Run();
  return 0;
}
