// Adaptive re-optimization under rate drift (src/adaptive/ +
// src/runtime/plan_swap.h) vs. a static plan.
//
// The drift stream (src/streamgen/drift.h) flips its hot type cluster at
// each phase boundary, which flips which sharing candidates the §3 cost
// model favours. Three configurations process the same disordered stream:
//
//   static    the phase-0 plan, frozen (what a startup-time optimizer
//             leaves you with)
//   adaptive  PlanManager re-optimizes on drift and hot-swaps at a
//             watermark-aligned boundary
//   fresh     the phase-1 plan from the start (the post-drift optimum;
//             upper bound on what adaptation can recover)
//
// Reported per configuration: total and POST-DRIFT throughput (wall-clock
// past the first phase flip; small queues keep ingest backpressure-bound,
// so wall time tracks processing cost), executor state, and for the
// adaptive run the swap schedule — count, per-swap stall (slowest shard's
// dual-run span) and the live-state recovery (peak dual-run bytes vs.
// bytes right after the old engines retired).
//
// Expected shape: static and adaptive match until the flip; past it the
// adaptive run approaches the fresh plan's throughput while static pays
// non-shared prices for the hot cluster. One JSON record per
// configuration (PrintJsonRecord) for scraping.
//
// Usage: bench_adaptive_drift [--quick] [--shards N]
//        [--metrics-out=<path>] [--trace-out=<path>]   (bench/bench_util.h)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace sharon {
namespace {

using bench::Bytes;
using bench::Num;
using bench::PrintJsonRecord;
using bench::PrintRow;

struct ModeResult {
  double wall_seconds = 0;
  double post_drift_wall = 0;
  uint64_t post_drift_events = 0;
  uint64_t total_events = 0;
  double busy_seconds = 0;
  uint64_t swaps = 0;
  double max_stall = 0;
  size_t peak_dual_bytes = 0;
  size_t post_swap_bytes = 0;

  double TotalEps() const {
    return wall_seconds > 0 ? static_cast<double>(total_events) / wall_seconds
                            : 0;
  }
  double PostDriftEps() const {
    return post_drift_wall > 0
               ? static_cast<double>(post_drift_events) / post_drift_wall
               : 0;
  }
};

ModeResult RunMode(const Workload& w, const SharingPlan& plan,
                   const std::vector<Event>& arrivals, Timestamp drift_at,
                   Duration lateness, size_t shards, bool adaptive,
                   const bench::ObsFlags& obs_flags) {
  runtime::RuntimeOptions opts;
  opts.num_shards = shards;
  // Small queues: ingest stays backpressure-bound, so ingest-side wall
  // checkpoints track executor cost rather than queue slack.
  opts.batch_size = 128;
  opts.queue_capacity = 4;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = lateness;
  obs_flags.Apply(&opts);
  runtime::ShardedRuntime rt(w, plan, opts);
  if (!rt.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", rt.error().c_str());
    return {};
  }

  adaptive::PlanManagerOptions popts;
  popts.epoch = Seconds(4);
  popts.window_epochs = 2;
  popts.drift_threshold = 0.3;
  popts.hysteresis = 0.10;
  popts.optimizer = bench::FastOptimizerConfig();
  adaptive::PlanManager mgr(w, &rt, plan, popts);

  ModeResult r;
  StopWatch wall;
  double drift_checkpoint = -1;
  rt.Start();
  for (const Event& e : arrivals) {
    if (drift_checkpoint < 0 && !IsWatermark(e) && e.time >= drift_at) {
      drift_checkpoint = wall.ElapsedSeconds();
    }
    if (!IsWatermark(e)) ++r.total_events;
    if (adaptive) {
      mgr.Ingest(e);
    } else {
      rt.Ingest(e);
    }
  }
  rt.Finish();
  bench::DumpObs(rt, obs_flags);
  r.wall_seconds = wall.ElapsedSeconds();
  if (drift_checkpoint >= 0) {
    r.post_drift_wall = r.wall_seconds - drift_checkpoint;
    for (const Event& e : arrivals) {
      if (!IsWatermark(e) && e.time >= drift_at) ++r.post_drift_events;
    }
  }

  const runtime::RuntimeStats stats = rt.stats();
  r.busy_seconds = stats.TotalBusySeconds();
  r.swaps = stats.CompletedSwaps();
  r.max_stall = stats.MaxSwapStallSeconds();
  for (const runtime::PlanSwapStats& s : stats.plan_swaps) {
    r.peak_dual_bytes = std::max(r.peak_dual_bytes, s.peak_dual_bytes);
    r.post_swap_bytes = std::max(r.post_swap_bytes, s.post_swap_bytes);
  }
  return r;
}

void Run(bool quick, size_t shards, const bench::ObsFlags& obs_flags) {
  std::printf(
      "=== Adaptive re-optimization under rate drift: static vs adaptive vs "
      "fresh plan ===\n%s\n", quick ? "(quick mode)" : "");

  DriftConfig cfg;
  cfg.num_types = 8;
  cfg.num_groups = quick ? 16 : 64;
  cfg.events_per_second = quick ? 2000 : 12000;
  cfg.phase_length = quick ? Seconds(24) : Minutes(1);
  cfg.num_phases = 2;
  cfg.seed = 11;
  Scenario s = GenerateDrift(cfg);

  const WindowSpec window{Seconds(10), Seconds(5)};
  Workload w = DriftWorkload(cfg, window, /*anchors_per_side=*/8,
                             /*bridges=*/3);

  const Duration lateness = Seconds(1);
  DisorderConfig inj;
  inj.max_lateness = lateness;
  inj.punctuation_period = Seconds(1);
  inj.seed = 7;
  const std::vector<Event> arrivals = InjectDisorder(s.events, inj);

  // Static = phase-0 optimum; fresh = phase-1 optimum (post-drift oracle).
  CostModel cm0(RatesOfSlice(s.events, 0, cfg.phase_length, cfg.num_types));
  CostModel cm1(RatesOfSlice(s.events, cfg.phase_length,
                             2 * cfg.phase_length, cfg.num_types));
  const SharingPlan static_plan = OptimizeGreedy(w, cm0).plan;
  const SharingPlan fresh_plan = OptimizeGreedy(w, cm1).plan;
  std::printf(
      "stream: %zu events, %u groups, flip at %llds; workload: %zu queries; "
      "static plan %zu candidates (score %0.f @p0, %.0f @p1), fresh plan %zu "
      "candidates (score %.0f @p1)\n\n",
      s.events.size(), cfg.num_groups,
      static_cast<long long>(cfg.phase_length / kTicksPerSecond), w.size(),
      static_plan.size(), PlanScore(static_plan, w, cm0),
      PlanScore(static_plan, w, cm1), fresh_plan.size(),
      PlanScore(fresh_plan, w, cm1));

  PrintRow({"mode", "wall s", "events/s", "post-drift e/s", "busy s",
            "swaps", "stall s", "dual peak", "post swap"});
  struct Mode {
    const char* name;
    const SharingPlan* plan;
    bool adaptive;
  };
  const Mode modes[] = {{"static", &static_plan, false},
                        {"adaptive", &static_plan, true},
                        {"fresh", &fresh_plan, false}};
  for (const Mode& m : modes) {
    ModeResult r = RunMode(w, *m.plan, arrivals, cfg.phase_length, lateness,
                           shards, m.adaptive, obs_flags);
    PrintRow({m.name, Num(r.wall_seconds), Num(r.TotalEps(), 0),
              Num(r.PostDriftEps(), 0), Num(r.busy_seconds),
              Num(static_cast<double>(r.swaps), 0), Num(r.max_stall, 4),
              Bytes(r.peak_dual_bytes), Bytes(r.post_swap_bytes)});
    PrintJsonRecord(
        "adaptive_drift",
        {{"mode", m.name},
         {"shards", std::to_string(shards)},
         {"quick", quick ? "1" : "0"}},
        {{"wall_seconds", r.wall_seconds},
         {"events_per_second", r.TotalEps()},
         {"post_drift_events_per_second", r.PostDriftEps()},
         {"busy_seconds", r.busy_seconds},
         {"swaps", static_cast<double>(r.swaps)},
         {"max_swap_stall_seconds", r.max_stall},
         {"peak_dual_bytes", static_cast<double>(r.peak_dual_bytes)},
         {"post_swap_bytes", static_cast<double>(r.post_swap_bytes)}});
  }
}

}  // namespace
}  // namespace sharon

int main(int argc, char** argv) {
  bool quick = false;
  size_t shards = 2;
  sharon::bench::ObsFlags obs_flags;
  for (int i = 1; i < argc; ++i) {
    if (sharon::bench::ParseObsFlag(argv[i], &obs_flags)) continue;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }
  sharon::Run(quick, shards, obs_flags);
  return 0;
}
