// Google-benchmark micro benchmarks for the executor building blocks:
// per-event cost of SegmentCounter updates, chain combination, and the
// complete engines (A-Seq vs Sharon) on a canned stream.

#include <benchmark/benchmark.h>

#include "src/sharon.h"

namespace sharon {
namespace {

std::vector<Event> CannedStream(size_t n, uint32_t num_types,
                                uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.time = static_cast<Timestamp>(i + 1);
    e.type = static_cast<EventTypeId>(rng.Below(num_types));
    e.attrs = {static_cast<AttrValue>(rng.Below(8)),
               static_cast<AttrValue>(rng.Below(100))};
    events.push_back(std::move(e));
  }
  return events;
}

void BM_SegmentCounterUpdate(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  std::vector<EventTypeId> types(len);
  for (size_t i = 0; i < len; ++i) types[i] = static_cast<EventTypeId>(i);
  auto events = CannedStream(1 << 14, static_cast<uint32_t>(len));
  for (auto _ : state) {
    SegmentCounter sc(Pattern(types), AggSpec::CountStar(), {512, 64});
    for (const Event& e : events) sc.OnEvent(e);
    benchmark::DoNotOptimize(sc.num_live_starts());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_SegmentCounterUpdate)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AggStateConcat(benchmark::State& state) {
  AggState a, b;
  a.count = 17; a.sum = 130; a.target_count = 9; a.min = 2; a.max = 80;
  b.count = 5; b.sum = 44; b.target_count = 3; b.min = 1; b.max = 90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AggState::Concat(a, b));
  }
}
BENCHMARK(BM_AggStateConcat);

Workload SharedWorkload(uint32_t num_queries, uint32_t len,
                        uint32_t num_types) {
  WorkloadGenConfig cfg;
  cfg.num_queries = num_queries;
  cfg.pattern_length = len;
  cfg.cluster_size = num_queries;  // one cluster: maximal sharing
  cfg.backbone_extra = 2;
  cfg.window = {512, 64};
  cfg.partition_attr = 0;
  return GenerateWorkload(cfg, num_types);
}

void BM_EngineNonShared(benchmark::State& state) {
  const auto queries = static_cast<uint32_t>(state.range(0));
  Workload w = SharedWorkload(queries, 6, 12);
  auto events = CannedStream(1 << 14, 12);
  for (auto _ : state) {
    Engine engine(w);
    for (const Event& e : events) engine.OnEvent(e);
    benchmark::DoNotOptimize(engine.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()) * queries);
}
BENCHMARK(BM_EngineNonShared)->Arg(4)->Arg(8)->Arg(16);

void BM_EngineShared(benchmark::State& state) {
  const auto queries = static_cast<uint32_t>(state.range(0));
  Workload w = SharedWorkload(queries, 6, 12);
  auto events = CannedStream(1 << 14, 12);
  CostModel cm(TypeRates(std::vector<double>(12, 10.0)));
  OptimizerResult opt = OptimizeSharon(w, cm);
  for (auto _ : state) {
    Engine engine(w, opt.plan);
    for (const Event& e : events) engine.OnEvent(e);
    benchmark::DoNotOptimize(engine.results().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()) * queries);
}
BENCHMARK(BM_EngineShared)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace sharon

BENCHMARK_MAIN();
