// Micro benchmarks for the executor building blocks: per-event cost of
// SegmentCounter updates and the complete engines (A-Seq vs Sharon) on a
// canned stream, plus the hot-path allocation figures the zero-allocation
// work is measured by (src/common/alloc_stats.h).
//
// Plain main() (not google-benchmark) so it runs everywhere the figure
// benches run, emits the repo's one-line JSON records for scraping
// (bench/bench_util.h), and can ship a CI regression gate: --quick runs a
// CI-sized sweep whose `events_per_second_norm` metric (events/s divided
// by an in-process arithmetic calibration loop) is compared against
// bench/baseline_micro_executor.json by tools/check_bench_regression.py
// — normalization absorbs most cross-machine speed differences.
//
// Reported per case:
//   events_per_second       raw stream events/s through one engine
//   items_per_second        events/s * queries (the paper's convention,
//                           comparable with the seed's google-benchmark
//                           items_per_second)
//   allocs_per_event        heap allocations per event over the run
//                           (engine construction + warm-up included)
//   steady_allocs_per_event allocations per event AFTER warm-up — ~0 on
//                           the shipped schemas (the zero-allocation
//                           contract, tests/zero_alloc_test.cc)

#include <cstdint>
#include <cstring>

#include "bench/bench_util.h"
#include "src/common/alloc_stats.h"

namespace sharon {
namespace {

using bench::Num;
using bench::PrintJsonRecord;
using bench::PrintRow;

std::vector<Event> CannedStream(size_t n, uint32_t num_types,
                                uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.time = static_cast<Timestamp>(i + 1);
    e.type = static_cast<EventTypeId>(rng.Below(num_types));
    e.attrs = {static_cast<AttrValue>(rng.Below(8)),
               static_cast<AttrValue>(rng.Below(100))};
    events.push_back(std::move(e));
  }
  return events;
}

Workload SharedWorkload(uint32_t num_queries, uint32_t len,
                        uint32_t num_types) {
  WorkloadGenConfig cfg;
  cfg.num_queries = num_queries;
  cfg.pattern_length = len;
  cfg.cluster_size = num_queries;  // one cluster: maximal sharing
  cfg.backbone_extra = 2;
  cfg.window = {512, 64};
  cfg.partition_attr = 0;
  return GenerateWorkload(cfg, num_types);
}

/// Throughput of a fixed integer kernel, used to normalize events/s
/// across machines for the CI regression gate.
double CalibrationOpsPerSecond() {
  const uint64_t kOps = 50'000'000;
  uint64_t x = 88172645463325252ull;
  StopWatch watch;
  for (uint64_t i = 0; i < kOps; ++i) {  // xorshift64
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  const double seconds = watch.ElapsedSeconds();
  // Defeat dead-code elimination without affecting the numbers.
  if (x == 0) std::printf("unreachable\n");
  return seconds > 0 ? static_cast<double>(kOps) / seconds : 0;
}

struct CaseResult {
  double events_per_second = 0;
  double items_per_second = 0;
  double allocs_per_event = 0;
  double steady_allocs_per_event = 0;
};

/// Best-of-`reps` timing of `iters` engine runs over `events`.
template <typename MakeRunner>
CaseResult MeasureEngine(const MakeRunner& make_runner,
                         const std::vector<Event>& events, size_t queries,
                         int iters, int reps) {
  CaseResult out;
  double best_seconds = -1;
  for (int r = 0; r < reps; ++r) {
    const auto alloc_before = alloc_stats::Snapshot();
    StopWatch watch;
    for (int it = 0; it < iters; ++it) {
      auto runner = make_runner();
      for (const Event& e : events) runner.OnEvent(e);
    }
    const double seconds = watch.ElapsedSeconds();
    const auto alloc_delta = alloc_stats::Snapshot() - alloc_before;
    if (best_seconds < 0 || seconds < best_seconds) {
      best_seconds = seconds;
      const double total_events =
          static_cast<double>(events.size()) * iters;
      out.events_per_second = total_events / seconds;
      out.items_per_second =
          out.events_per_second * static_cast<double>(queries);
      out.allocs_per_event =
          static_cast<double>(alloc_delta.allocations) / total_events;
    }
  }
  // Steady state: one warmed engine, allocations over a second pass of
  // the same stream with timestamps shifted forward (state keeps
  // rolling; no window is re-opened).
  {
    auto runner = make_runner();
    for (const Event& e : events) runner.OnEvent(e);
    std::vector<Event> shifted = events;
    const Timestamp span = events.empty() ? 0 : events.back().time;
    for (Event& e : shifted) e.time += span;
    const auto before = alloc_stats::Snapshot();
    for (const Event& e : shifted) runner.OnEvent(e);
    const auto delta = alloc_stats::Snapshot() - before;
    out.steady_allocs_per_event = static_cast<double>(delta.allocations) /
                                  static_cast<double>(shifted.size());
  }
  return out;
}

void EmitCase(const char* name, const std::string& param_key,
              const std::string& param_value, const CaseResult& r,
              double calib) {
  PrintRow({name + (" " + param_key + "=" + param_value),
            Num(r.events_per_second / 1e6, 3) + "M e/s",
            Num(r.items_per_second / 1e6, 3) + "M it/s",
            Num(r.allocs_per_event, 4) + " a/e",
            Num(r.steady_allocs_per_event, 4) + " sa/e"});
  // events_per_second_norm: stream events per MILLION calibration ops —
  // roughly machine-independent, the quantity the CI gate compares.
  const double norm = calib > 0 ? r.events_per_second / calib * 1e6 : 0;
  PrintJsonRecord("micro_executor", {{"case", name}, {param_key, param_value}},
                  {{"events_per_second", r.events_per_second},
                   {"events_per_second_norm", norm},
                   {"items_per_second", r.items_per_second},
                   {"allocs_per_event", r.allocs_per_event},
                   {"steady_allocs_per_event", r.steady_allocs_per_event}});
}

struct CounterRunner {
  SegmentCounter counter;
  void OnEvent(const Event& e) { counter.OnEvent(e); }
};

void Run(bool quick) {
  std::printf("=== Micro executor: per-event cost of counters and engines "
              "(%s) ===\n\n", quick ? "quick" : "full");
  const int iters = quick ? 5 : 25;
  const int reps = quick ? 3 : 5;
  const size_t num_events = 1 << 14;

  const double calib = CalibrationOpsPerSecond();
  PrintJsonRecord("micro_executor", {{"case", "calibration"}},
                  {{"ops_per_second", calib}});

  // SegmentCounter alone: pattern lengths {2,4,8,16} over a stream whose
  // type universe equals the pattern (every event matches some position).
  for (uint32_t len : {2u, 4u, 8u, 16u}) {
    std::vector<EventTypeId> types(len);
    for (uint32_t i = 0; i < len; ++i) types[i] = i;
    const auto events = CannedStream(num_events, len);
    const Pattern pattern{types};
    CaseResult r = MeasureEngine(
        [&] {
          return CounterRunner{
              SegmentCounter(pattern, AggSpec::CountStar(), {512, 64})};
        },
        events, 1, iters, reps);
    EmitCase("segment_counter", "len", std::to_string(len), r, calib);
  }

  // Whole engines on the shared-cluster workload (§8.1-style): A-Seq
  // (non-shared) vs the Sharon shared plan.
  for (uint32_t queries : {4u, 8u, 16u}) {
    Workload w = SharedWorkload(queries, 6, 12);
    const auto events = CannedStream(num_events, 12);
    CostModel cm(TypeRates(std::vector<double>(12, 10.0)));
    OptimizerResult opt = OptimizeSharon(w, cm);

    CaseResult ns = MeasureEngine([&] { return Engine(w); }, events, queries,
                                  iters, reps);
    EmitCase("engine_nonshared", "queries", std::to_string(queries), ns, calib);

    CaseResult sh = MeasureEngine([&] { return Engine(w, opt.plan); }, events,
                                  queries, iters, reps);
    EmitCase("engine_shared", "queries", std::to_string(queries), sh, calib);
  }
}

}  // namespace
}  // namespace sharon

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  sharon::Run(quick);
  return 0;
}
