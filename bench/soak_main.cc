// Chaos soak driver (src/chaos/soak.h): composes drifting rates, bounded
// disorder, adaptive plan swaps, checkpoints and kill/restore topology
// changes into one seeded run, diffed against the two-step oracle.
//
//   soak_main [--quick] [--seed=N] [--rounds=N] [--kill-every=N]
//             [--churn-every=N] [--verbose] [--metrics-out=...]
//             [--trace-out=...]
//
// --quick is the CI smoke shape: 28 rounds, a kill every 4, so the
// topology schedule (shards {1,2,8} x producers {1,3}) wraps fully even
// when some kills defer a round or two on an in-flight swap.
// Without it the soak runs the long nightly shape. Exits non-zero on the
// first failed validation, with the diagnostic on stderr; always prints
// one JSON record (tools/run_benches.py scrapes it).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/chaos/soak.h"

namespace {

bool ParseSizeFlag(const std::string& arg, const char* name, size_t* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = static_cast<size_t>(std::atoll(arg.substr(prefix.size()).c_str()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sharon::chaos::SoakConfig config;
  // Nightly shape by default; --quick shrinks to the CI smoke.
  config.rounds = 96;
  config.kill_every = 4;
  size_t seed = 1;
  bool quick = false;
  sharon::bench::ObsFlags obs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    size_t value = 0;
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else if (ParseSizeFlag(arg, "--seed", &value)) {
      seed = value;
    } else if (ParseSizeFlag(arg, "--rounds", &value)) {
      config.rounds = value;
    } else if (ParseSizeFlag(arg, "--kill-every", &value)) {
      config.kill_every = value;
    } else if (ParseSizeFlag(arg, "--churn-every", &value)) {
      config.churn_every = value;
    } else if (sharon::bench::ParseObsFlag(arg, &obs)) {
      // Telemetry dump paths, wired through below: the soak validates
      // telemetry internally either way; the dumps additionally feed
      // tools/check_metrics_schema.py.
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (quick) {
    config.rounds = 28;
    config.kill_every = 4;
  }
  config.seed = seed;
  config.metrics_out = obs.metrics_out;
  config.trace_out = obs.trace_out;

  const sharon::chaos::SoakReport report = sharon::chaos::RunSoak(config);

  std::printf("chaos soak: seed=%zu rounds=%zu/%zu cycles=%zu retries=%zu "
              "swaps=%llu/%llu churn=%llu+%llu/%llu cells=%zu wall=%.2fs "
              "-> %s\n",
              static_cast<size_t>(config.seed), report.rounds_run,
              config.rounds, report.cycles.size(), report.checkpoint_retries,
              static_cast<unsigned long long>(report.swaps_accepted),
              static_cast<unsigned long long>(report.swaps_accepted +
                                              report.swaps_rejected),
              static_cast<unsigned long long>(report.queries_registered),
              static_cast<unsigned long long>(report.queries_retired),
              static_cast<unsigned long long>(report.churn_swaps),
              report.cells_compared, report.wall_seconds,
              report.ok ? "OK" : "FAIL");
  sharon::bench::PrintJsonRecord(
      "chaos_soak",
      {{"seed", std::to_string(config.seed)},
       {"rounds", std::to_string(config.rounds)},
       {"kill_every", std::to_string(config.kill_every)},
       {"churn_every", std::to_string(config.churn_every)},
       {"mode", quick ? "quick" : "long"}},
      {{"ok", report.ok ? 1.0 : 0.0},
       {"rounds_run", static_cast<double>(report.rounds_run)},
       {"events_ingested", static_cast<double>(report.events_ingested)},
       {"cycles", static_cast<double>(report.cycles.size())},
       {"checkpoint_retries", static_cast<double>(report.checkpoint_retries)},
       {"churn_deferred_kills",
        static_cast<double>(report.churn_deferred_kills)},
       {"queries_registered", static_cast<double>(report.queries_registered)},
       {"queries_retired", static_cast<double>(report.queries_retired)},
       {"churn_swaps", static_cast<double>(report.churn_swaps)},
       {"swaps_accepted", static_cast<double>(report.swaps_accepted)},
       {"swaps_rejected", static_cast<double>(report.swaps_rejected)},
       {"telemetry_validations",
        static_cast<double>(report.telemetry_validations)},
       {"cells_compared", static_cast<double>(report.cells_compared)},
       {"wall_seconds", report.wall_seconds}});
  if (!report.ok) {
    std::fprintf(stderr, "soak FAILED (seed=%zu): %s\n",
                 static_cast<size_t>(config.seed), report.error.c_str());
    return 1;
  }
  return 0;
}
