// Unit tests for GWMIN (Algorithm 8) on hand-built graphs where the greedy
// trace is known exactly.

#include "src/graph/gwmin.h"

#include <gtest/gtest.h>

namespace sharon {
namespace {

// Builds a workload where queries q0..qn-1 have hand-chosen patterns so
// candidate conflicts are controllable. Pattern (a,b) conflicts with (b,c)
// inside a query containing (a,b,c).
struct GraphBuilder {
  Workload workload;
  std::vector<Candidate> candidates;
  std::vector<double> weights;

  QueryId AddQuery(std::vector<EventTypeId> types) {
    Query q;
    q.pattern = Pattern(std::move(types));
    q.agg = AggSpec::CountStar();
    q.window = {100, 10};
    return workload.Add(std::move(q));
  }

  void AddCandidate(std::vector<EventTypeId> types, QueryList queries,
                    double weight) {
    candidates.push_back({Pattern(std::move(types)), std::move(queries)});
    weights.push_back(weight);
  }

  SharonGraph Build() {
    return SharonGraph::Build(workload, candidates, [this](const Candidate& c) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i] == c) return weights[i];
      }
      return 0.0;
    });
  }
};

TEST(GwminTest, PicksIsolatedHeavyVertexFirst) {
  GraphBuilder b;
  b.AddQuery({0, 1, 2});   // q0 creates conflict between (0,1) and (1,2)
  b.AddQuery({0, 1, 2});
  b.AddQuery({5, 6});      // isolated pattern
  b.AddQuery({5, 6});
  b.AddCandidate({0, 1}, {0, 1}, 10);
  b.AddCandidate({1, 2}, {0, 1}, 9);
  b.AddCandidate({5, 6}, {2, 3}, 6);
  SharonGraph g = b.Build();
  ASSERT_EQ(g.num_vertices(), 3u);

  GwminResult r = RunGwmin(g);
  // Ratios: (0,1): 10/2=5, (1,2): 9/2=4.5, (5,6): 6/1=6 -> picks (5,6)
  // first, then (0,1), which eliminates (1,2).
  EXPECT_DOUBLE_EQ(r.weight, 16.0);
  EXPECT_EQ(r.independent_set.size(), 2u);
}

TEST(GwminTest, DegreeCanMisleadGreedy) {
  // A "star": heavy center conflicting with three medium leaves. Greedy
  // ratio picks a leaf first only if leaves beat the center's ratio;
  // with center 20/(3+1)=5 and leaves 6/(1+1)=3, the center wins and the
  // result is optimal here.
  GraphBuilder b;
  b.AddQuery({0, 1, 2, 3, 4});
  b.AddQuery({0, 1, 2, 3, 4});
  // Center (1,2,3) overlaps each leaf; leaves are mutually disjoint.
  b.AddCandidate({1, 2, 3}, {0, 1}, 20);
  b.AddCandidate({0, 1}, {0, 1}, 6);
  b.AddCandidate({2, 3}, {0, 1}, 6);  // overlaps center, not (0,1)
  SharonGraph g = b.Build();
  ASSERT_EQ(g.num_vertices(), 3u);
  GwminResult r = RunGwmin(g);
  EXPECT_DOUBLE_EQ(r.weight, 20.0);
  EXPECT_EQ(r.independent_set.size(), 1u);
}

TEST(GwminTest, EmptyGraph) {
  GraphBuilder b;
  b.AddQuery({0, 1});
  SharonGraph g = b.Build();
  GwminResult r = RunGwmin(g);
  EXPECT_TRUE(r.independent_set.empty());
  EXPECT_EQ(r.weight, 0);
}

TEST(GwminTest, InputGraphIsNotMutated) {
  GraphBuilder b;
  b.AddQuery({0, 1, 2});
  b.AddQuery({0, 1, 2});
  b.AddCandidate({0, 1}, {0, 1}, 5);
  b.AddCandidate({1, 2}, {0, 1}, 4);
  SharonGraph g = b.Build();
  const size_t before = g.num_vertices();
  RunGwmin(g);
  EXPECT_EQ(g.num_vertices(), before);
}

}  // namespace
}  // namespace sharon
