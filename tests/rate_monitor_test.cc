// RateMonitor edge cases (§7.4 runtime statistics). The monitor feeds the
// adaptive planner's drift decisions (src/adaptive/plan_manager.cc), so
// the boundary behaviours that were previously only exercised indirectly
// get direct coverage here: epoch-boundary straddling under bounded
// disorder, type-id growth mid-epoch, estimates with no closed epochs,
// and silent-stream decay.

#include <gtest/gtest.h>

#include "src/streamgen/rate_monitor.h"

namespace sharon {
namespace {

Event Ev(EventTypeId type, Timestamp t) {
  Event e;
  e.type = type;
  e.time = t;
  return e;
}

// Before any epoch has closed there is nothing to estimate: the rates
// must be identically zero (not NaN, not the partial current epoch), and
// drift must not trigger against an empty estimate.
TEST(RateMonitorEdge, EmptyClosedWindowRatesAreZero) {
  RateMonitor mon(Seconds(1), 2);
  TypeRates none = mon.CurrentRates();
  EXPECT_EQ(none.size(), 0u);
  EXPECT_DOUBLE_EQ(none.Of(0), 0.0);
  EXPECT_FALSE(mon.DriftDetected());

  // Half an epoch of events: still nothing closed, still zero.
  for (int i = 0; i < 50; ++i) mon.OnEvent(Ev(0, i));
  EXPECT_EQ(mon.epochs_closed(), 0u);
  EXPECT_DOUBLE_EQ(mon.CurrentRates().Of(0), 0.0);

  // Rebasing on the empty estimate then observing traffic must not
  // divide by zero: every new type's relative deviation is finite.
  mon.RebaseOnCurrent();
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
  }
  EXPECT_TRUE(mon.DriftDetected());  // 0 -> 10/s is drift, finitely so
}

// A bounded-disorder feed can deliver an event of epoch k after an event
// of epoch k+1 opened the new epoch. The straggler must fold into the
// CURRENT epoch — closing epochs exactly once each — instead of
// re-opening the old epoch and thrashing the sliding window.
TEST(RateMonitorEdge, EpochBoundaryStraddlingFoldsForward) {
  RateMonitor mon(Seconds(1), /*window_epochs=*/4);
  // Epoch 0: 10 events. Then epoch 1 opens... and two stragglers from
  // epoch 0 arrive late, then epoch 1 continues.
  for (int i = 0; i < 10; ++i) mon.OnEvent(Ev(0, 100 + i));
  mon.OnEvent(Ev(0, Seconds(1) + 1));     // opens epoch 1
  mon.OnEvent(Ev(0, Seconds(1) - 2));     // straggler (epoch 0)
  mon.OnEvent(Ev(0, Seconds(1) - 1));     // straggler (epoch 0)
  for (int i = 0; i < 7; ++i) mon.OnEvent(Ev(0, Seconds(1) + 10 + i));
  mon.OnEvent(Ev(0, Seconds(2) + 1));     // closes epoch 1

  // Exactly two epochs closed — not four (the naive re-open behaviour
  // would have closed epoch 0 twice and a nearly-empty epoch 1 once).
  EXPECT_EQ(mon.epochs_closed(), 2u);
  // All 20 events are accounted for across the two closed epochs:
  // 10 in epoch 0, 8 + 2 stragglers in epoch 1 -> average 10/s.
  EXPECT_DOUBLE_EQ(mon.CurrentRates().Of(0), 10.0);
}

// A type id first seen mid-epoch grows every vector consistently: the
// estimate covers the new type, older epochs implicitly contribute zero,
// and drift against a baseline that never saw the type stays finite.
TEST(RateMonitorEdge, TypeIdGrowthMidEpoch) {
  RateMonitor mon(Seconds(1), 2, /*drift_threshold=*/0.5);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 8; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
  }
  mon.RebaseOnCurrent();

  // Type 9 appears mid-epoch-3, with enough volume to matter.
  for (int s = 3; s < 5; ++s) {
    for (int i = 0; i < 8; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
    for (int i = 0; i < 6; ++i) mon.OnEvent(Ev(9, Seconds(s) + 100 + i));
  }
  mon.OnEvent(Ev(0, Seconds(5) + 1));  // close epoch 4

  TypeRates rates = mon.CurrentRates();
  EXPECT_GE(rates.size(), 10u);
  EXPECT_DOUBLE_EQ(rates.Of(9), 6.0);
  EXPECT_DOUBLE_EQ(rates.Of(0), 8.0);
  // 0 -> 6/s on a fresh type is drift relative to the old baseline.
  EXPECT_TRUE(mon.DriftDetected());
}

// Epochs the stream skips entirely close EMPTY: a stream that goes silent
// decays the estimate toward zero instead of freezing the last busy
// epoch's rates forever (which would mask drift-to-idle).
TEST(RateMonitorEdge, SilentEpochsDecayTheEstimate) {
  RateMonitor mon(Seconds(1), /*window_epochs=*/2);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
  }
  EXPECT_DOUBLE_EQ(mon.CurrentRates().Of(0), 10.0);

  // Next event arrives three epochs later: epochs 3 and 4 passed silent.
  mon.OnEvent(Ev(0, Seconds(6) + 1));
  // Sliding window now holds the two silent epochs only.
  EXPECT_DOUBLE_EQ(mon.CurrentRates().Of(0), 0.0);
  // And the dropped-epoch accounting stayed monotone.
  EXPECT_GE(mon.epochs_closed(), 5u);
}

}  // namespace
}  // namespace sharon
