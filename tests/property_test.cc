// Randomized equivalence properties, the strongest correctness evidence in
// this repository. For dozens of random (workload, stream) pairs:
//
//   * the non-shared engine (A-Seq),
//   * the shared engine under the Sharon-optimal plan,
//   * the shared engine under the greedy plan,
//   * the non-shared two-step baseline (sequence construction), and
//   * the shared two-step baseline
//
// must all produce exactly the per-(query, window, group) results of the
// independent per-window DP oracle. Counts are integers below 2^53, so
// double comparisons are exact.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/exec/engine.h"
#include "src/planner/optimizer.h"
#include "src/sharing/ccspan.h"
#include "src/twostep/reference.h"
#include "src/twostep/two_step.h"

namespace sharon {
namespace {

struct RandomCase {
  Workload workload;
  std::vector<Event> events;
  Timestamp last_time = 0;
};

// Random workload with deliberate overlap (queries slice a common
// backbone) and a random stream over the same types.
RandomCase MakeCase(uint64_t seed, AggFunction fn) {
  Rng rng(seed);
  RandomCase c;
  const uint32_t num_types = 5 + static_cast<uint32_t>(rng.Below(4));
  const Duration length = 8 + static_cast<Duration>(rng.Below(20));
  const Duration slide = 1 + static_cast<Duration>(rng.Below(length));
  const uint32_t num_queries = 3 + static_cast<uint32_t>(rng.Below(4));
  const AttrIndex partition =
      rng.Chance(0.5) ? 0 : kNoAttr;  // half the cases use grouping

  // Backbone = random permutation of the alphabet.
  std::vector<EventTypeId> backbone(num_types);
  for (uint32_t i = 0; i < num_types; ++i) backbone[i] = i;
  for (uint32_t i = num_types - 1; i > 0; --i) {
    uint32_t j = static_cast<uint32_t>(rng.Below(i + 1));
    std::swap(backbone[i], backbone[j]);
  }

  for (uint32_t qi = 0; qi < num_queries; ++qi) {
    const uint32_t len =
        2 + static_cast<uint32_t>(rng.Below(std::min(num_types - 1, 3u)));
    const uint32_t off = static_cast<uint32_t>(rng.Below(num_types - len + 1));
    Query q;
    q.pattern = Pattern(std::vector<EventTypeId>(
        backbone.begin() + off, backbone.begin() + off + len));
    q.agg = fn == AggFunction::kCountStar
                ? AggSpec::CountStar()
                : AggSpec::Of(fn, q.pattern.type(rng.Below(len)), 1);
    q.window = {length, slide};
    q.partition_attr = partition;
    c.workload.Add(std::move(q));
  }

  const uint32_t num_events = 40 + static_cast<uint32_t>(rng.Below(80));
  Timestamp t = 0;
  for (uint32_t i = 0; i < num_events; ++i) {
    Event e;
    e.time = (t += 1 + static_cast<Timestamp>(rng.Below(3)));
    e.type = static_cast<EventTypeId>(rng.Below(num_types));
    e.attrs = {static_cast<AttrValue>(rng.Below(3)),
               static_cast<AttrValue>(rng.Range(-5, 20))};
    c.events.push_back(std::move(e));
  }
  c.last_time = t;
  return c;
}

// Exact comparison of all cells of `got` against oracle `want` for every
// query/window/group combination present in either.
void ExpectSameResults(const Workload& w, const ResultCollector& want,
                       const ResultCollector& got, AggFunction fn,
                       const char* label) {
  auto check_cells = [&](const ResultCollector& cells,
                         const ResultCollector& other, bool got_is_left) {
    cells.ForEachCell([&](const ResultKey& key, const AggState& state) {
      const Query& q = w.query(key.query);
      double a = state.Final(q.agg.fn);
      double b = other.Get(key.query, key.window, key.group).Final(q.agg.fn);
      if (got_is_left) std::swap(a, b);
      if (std::isnan(a) && std::isnan(b)) return;
      ASSERT_DOUBLE_EQ(a, b)
          << label << ": query " << key.query << " window " << key.window
          << " group " << key.group << " fn " << static_cast<int>(fn);
    });
  };
  check_cells(want, got, /*got_is_left=*/false);
  check_cells(got, want, /*got_is_left=*/true);
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, AggFunction>> {};

TEST_P(EngineEquivalence, AllExecutorsMatchOracle) {
  const auto [seed, fn] = GetParam();
  RandomCase c = MakeCase(seed, fn);
  ResultCollector oracle = ReferenceResults(c.workload, c.events);

  // Non-shared online (A-Seq).
  {
    Engine engine(c.workload);
    ASSERT_TRUE(engine.ok()) << engine.error();
    for (const Event& e : c.events) engine.OnEvent(e);
    ExpectSameResults(c.workload, oracle, engine.results(), fn, "A-Seq");
  }

  // Shared online under the Sharon-optimal and the greedy plans.
  CostModel cm(TypeRates(std::vector<double>(10, 1.0)));
  for (bool greedy : {false, true}) {
    OptimizerResult opt = greedy ? OptimizeGreedy(c.workload, cm)
                                 : OptimizeSharon(c.workload, cm);
    Engine engine(c.workload, opt.plan);
    ASSERT_TRUE(engine.ok()) << engine.error();
    for (const Event& e : c.events) engine.OnEvent(e);
    ExpectSameResults(c.workload, oracle, engine.results(), fn,
                      greedy ? "shared/greedy" : "shared/optimal");
  }

  // Two-step baselines.
  {
    ResultCollector flink;
    RunStats stats = RunFlinkLike(c.workload, c.events, {}, &flink);
    ASSERT_TRUE(stats.finished);
    ExpectSameResults(c.workload, oracle, flink, fn, "flink-like");
  }
  {
    OptimizerResult opt = OptimizeSharon(c.workload, cm);
    ResultCollector spass;
    RunStats stats =
        RunSpassLike(c.workload, opt.plan, c.events, {}, &spass);
    ASSERT_TRUE(stats.finished);
    ExpectSameResults(c.workload, oracle, spass, fn, "spass-like");
  }
}

INSTANTIATE_TEST_SUITE_P(
    CountStar, EngineEquivalence,
    ::testing::Combine(::testing::Range<uint64_t>(0, 12),
                       ::testing::Values(AggFunction::kCountStar)));

INSTANTIATE_TEST_SUITE_P(
    Sum, EngineEquivalence,
    ::testing::Combine(::testing::Range<uint64_t>(100, 108),
                       ::testing::Values(AggFunction::kSum)));

INSTANTIATE_TEST_SUITE_P(
    MinMaxAvgCount, EngineEquivalence,
    ::testing::Combine(
        ::testing::Range<uint64_t>(200, 204),
        ::testing::Values(AggFunction::kMin, AggFunction::kMax,
                          AggFunction::kAvg, AggFunction::kCountType)));

}  // namespace
}  // namespace sharon
