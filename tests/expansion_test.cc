// Tests for sharing conflict resolution (§7.1, Algorithms 5-6,
// Examples 13-15): candidate expansion opens sharing opportunities that
// the original graph's conflicts excluded.

#include "src/graph/expansion.h"

#include <gtest/gtest.h>

#include <set>

#include "src/planner/optimizer.h"
#include "src/sharing/ccspan.h"
#include "src/streamgen/fixtures.h"

namespace sharon {
namespace {

class ExpansionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeTrafficFixture();
    candidates_ = FindSharableCandidates(fixture_.workload);
    weight_ = [this](const Candidate& c) {
      for (const auto& [p, w] : fixture_.paper_weights) {
        if (p == c.pattern) return w;
      }
      // Options (subsets of the original query set) get a weight
      // proportional to their query count, which keeps them beneficial.
      return 1.0 + static_cast<double>(c.queries.size());
    };
    graph_ = SharonGraph::Build(fixture_.workload, candidates_, weight_);
  }

  VertexId VertexOf(const Pattern& p) const {
    for (VertexId v = 0; v < graph_.capacity(); ++v) {
      if (graph_.candidate(v).pattern == p) return v;
    }
    ADD_FAILURE() << "pattern not found";
    return 0;
  }

  TrafficFixture fixture_;
  std::vector<Candidate> candidates_;
  SharonGraph::WeightFn weight_;
  SharonGraph graph_;
};

TEST_F(ExpansionTest, Example14OptionsForP1) {
  // Expanding p1 = (Oak, Main) shared by {q1..q4}: dropping {q3,q4}
  // resolves the conflicts with p2/p3; dropping {q2,q4} resolves p4/p5;
  // dropping {q1} resolves p6 (Fig. 11).
  const Pattern& p1 = fixture_.paper_patterns[0];
  auto options = ExpandCandidate(graph_, VertexOf(p1), fixture_.workload, {});
  ASSERT_GE(options.size(), 4u);
  EXPECT_EQ(options.front().queries, (QueryList{0, 1, 2, 3}));  // original

  std::set<QueryList> sets;
  for (const Candidate& o : options) {
    EXPECT_EQ(o.pattern, p1);
    EXPECT_GE(o.queries.size(), 2u);  // |Q'p| > 1 (Alg. 5 line 9)
    sets.insert(o.queries);
  }
  EXPECT_TRUE(sets.count({0, 1}));  // (p1, {q1,q2}) from Fig. 11
  EXPECT_TRUE(sets.count({1, 2, 3}));  // drop q1: resolves p6 conflict
}

TEST_F(ExpansionTest, Example13OptionCoexistsWithP4) {
  // The option (p1, {q1, q3}) is not in conflict with (p4, {q2, q4}).
  const Pattern& p1 = fixture_.paper_patterns[0];
  const Pattern& p4 = fixture_.paper_patterns[3];
  Candidate opt{p1, {0, 2}};
  Candidate c4{p4, {1, 3}};
  EXPECT_FALSE(SharonGraph::InConflict(opt, c4, fixture_.workload));
  // Whereas the original candidate is.
  Candidate orig{p1, {0, 1, 2, 3}};
  EXPECT_TRUE(SharonGraph::InConflict(orig, c4, fixture_.workload));
}

TEST_F(ExpansionTest, SamePatternOptionsConflictIffQueriesIntersect) {
  const Pattern& p1 = fixture_.paper_patterns[0];
  Candidate a{p1, {0, 1}};
  Candidate b{p1, {1, 2}};
  Candidate c{p1, {2, 3}};
  EXPECT_TRUE(SharonGraph::InConflict(a, b, fixture_.workload));
  EXPECT_FALSE(SharonGraph::InConflict(a, c, fixture_.workload));
}

TEST_F(ExpansionTest, ExpandedGraphContainsAllOriginals) {
  SharonGraph expanded =
      ExpandGraph(graph_, fixture_.workload, weight_, {});
  EXPECT_GT(expanded.num_vertices(), graph_.num_vertices());
  // Every original candidate survives as its own option.
  for (const Candidate& c : candidates_) {
    bool found = false;
    for (VertexId v : expanded.AliveVertices()) {
      if (expanded.candidate(v) == c) found = true;
    }
    EXPECT_TRUE(found) << "missing original candidate";
  }
}

TEST_F(ExpansionTest, ExpansionNeverLowersTheOptimalScore) {
  OptimizerConfig no_expand;
  no_expand.expand = false;
  OptimizerResult base =
      OptimizeSharon(fixture_.workload, candidates_, weight_, no_expand);
  OptimizerConfig with_expand;
  OptimizerResult expanded =
      OptimizeSharon(fixture_.workload, candidates_, weight_, with_expand);
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(expanded.completed);
  EXPECT_GE(expanded.score, base.score);
}

TEST_F(ExpansionTest, OptionCapsRespected) {
  ExpansionOptions opts;
  opts.max_options_per_candidate = 3;
  const Pattern& p1 = fixture_.paper_patterns[0];
  auto options = ExpandCandidate(graph_, VertexOf(p1), fixture_.workload, opts);
  EXPECT_LE(options.size(), 3u);
}

}  // namespace
}  // namespace sharon
