// Unit and refusal-path coverage for the checkpoint subsystem:
//  - serde primitives (endian-stable round trips, bounds-checked reads),
//  - frame integrity (CRC detects corruption, version mismatches refuse),
//  - Checkpoint/RequestPlanSwap mutual exclusion, regression-tested in
//    BOTH orders with the typed refusal codes (runtime::OpRefusal),
//  - restore refusals: torn checkpoint (no manifest), corrupt shard file,
//    plan-fingerprint mismatch, missing disorder policy,
//  - multi-producer acceptance: a checkpoint cut with ingest_partitions=2
//    (per-channel marker alignment) restores into a different topology.
// The end-to-end bit-identity matrix lives in checkpoint_diff_test.cc.

#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <string>
#include <vector>

#include "src/adaptive/plan_manager.h"
#include "src/checkpoint/checkpoint.h"
#include "src/query/parser.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

using runtime::OpRefusal;
using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "sharon_ckpt_unit_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Serde, PrimitiveRoundTrip) {
  serde::BinaryWriter w;
  w.U8(0xab);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.F64(-0.0);
  w.F64(1.0 / 3.0);
  w.Str("sharon");
  serde::BinaryReader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  // Bit-identical doubles, signed zero included.
  EXPECT_EQ(std::bit_cast<uint64_t>(r.F64()), std::bit_cast<uint64_t>(-0.0));
  EXPECT_EQ(r.F64(), 1.0 / 3.0);
  EXPECT_EQ(r.Str(), "sharon");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serde, TruncatedReadFailsSticky) {
  serde::BinaryWriter w;
  w.U32(7);
  serde::BinaryReader r(w.buffer());
  EXPECT_EQ(r.U64(), 0u);  // needs 8 bytes, only 4 present
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // sticky: nothing reads after an overrun
}

TEST(Serde, BlockRoundTripAndAttrs) {
  serde::BinaryWriter w;
  const size_t mark = w.BeginBlock();
  InlineAttrs attrs{1, -2, 3};
  serde::SaveAttrs(w, attrs);
  w.EndBlock(mark);
  w.U32(0x5a5a5a5au);  // trailing data the block must not swallow

  serde::BinaryReader r(w.buffer());
  serde::BinaryReader block = r.Block();
  InlineAttrs restored;
  serde::LoadAttrs(block, restored);
  EXPECT_TRUE(restored == attrs);
  EXPECT_EQ(r.U32(), 0x5a5a5a5au);
  EXPECT_TRUE(r.ok());
}

TEST(Frames, CrcDetectsCorruption) {
  serde::BinaryWriter payload;
  payload.Str("state bytes");
  std::vector<uint8_t> file;
  checkpoint::AppendFrame(file, checkpoint::FrameTag::kShardHeader,
                          payload.buffer());
  checkpoint::AppendFrame(file, checkpoint::FrameTag::kEnd, {});
  {
    checkpoint::FrameParser parser(file.data(), file.size());
    checkpoint::FrameTag tag;
    serde::BinaryReader r(nullptr, 0);
    EXPECT_EQ(parser.Next(&tag, &r), "");
    EXPECT_EQ(tag, checkpoint::FrameTag::kShardHeader);
    EXPECT_EQ(parser.Next(&tag, &r), "");
    EXPECT_TRUE(parser.done());
  }
  file[22] ^= 0x01;  // flip one payload bit
  checkpoint::FrameParser parser(file.data(), file.size());
  checkpoint::FrameTag tag;
  serde::BinaryReader r(nullptr, 0);
  const std::string err = parser.Next(&tag, &r);
  EXPECT_NE(err.find("CRC"), std::string::npos) << err;
}

struct CheckpointFixture {
  Workload workload;
  SharingPlan plan;
  std::vector<Event> arrivals;  // disordered, with punctuations
  std::vector<Event> sorted;
};

CheckpointFixture MakeFixture() {
  CheckpointFixture f;
  TaxiConfig cfg;
  cfg.num_streets = 8;
  cfg.num_vehicles = 10;
  cfg.events_per_second = 400;
  cfg.duration = Seconds(20);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 5;
  wcfg.pattern_length = 3;
  wcfg.cluster_size = 3;
  wcfg.window = {Seconds(8), Seconds(4)};
  wcfg.partition_attr = 0;
  f.workload = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  OptimizerConfig ocfg;
  ocfg.expand = false;
  f.plan = OptimizeSharon(f.workload, cm, ocfg).plan;

  DisorderConfig inj;
  inj.max_lateness = Seconds(2);
  inj.punctuation_period = Seconds(1);
  inj.seed = 4242;
  f.sorted = s.events;
  f.arrivals = InjectDisorder(s.events, inj);
  return f;
}

RuntimeOptions FixtureOptions(size_t shards) {
  RuntimeOptions opts;
  opts.num_shards = shards;
  opts.batch_size = 64;
  opts.queue_capacity = 8;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = Seconds(2);
  return opts;
}

/// Runs the prefix, checkpoints, returns the checkpoint dir (asserts ok).
std::string CheckpointPrefix(const CheckpointFixture& f, size_t shards,
                             size_t split, const std::string& tag) {
  const std::string dir = FreshDir(tag);
  ShardedRuntime rt(f.workload, f.plan, FixtureOptions(shards));
  EXPECT_TRUE(rt.ok()) << rt.error();
  rt.Start();
  for (size_t i = 0; i < split; ++i) rt.Ingest(f.arrivals[i]);
  const ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
  EXPECT_TRUE(cp.ok) << cp.reason;
  return dir;
}

ShardedRuntime::RestoreOutcome RestoreAt(const CheckpointFixture& f,
                                         const std::string& dir,
                                         size_t shards) {
  ShardedRuntime::RestoreOptions ropts;
  ropts.runtime = FixtureOptions(shards);
  ropts.workload = &f.workload;
  ropts.plan = f.plan;
  return ShardedRuntime::Restore(dir, ropts);
}

// --- mutual exclusion, both orders -----------------------------------------

// Order 1: a checkpoint requested while a plan swap drains is refused
// with the typed kSwapInFlight code — and the stream stays exact.
TEST(CheckpointSwapExclusion, CheckpointRefusedWhileSwapInFlight) {
  CheckpointFixture f = MakeFixture();
  ShardedRuntime rt(f.workload, f.plan, FixtureOptions(2));
  ASSERT_TRUE(rt.ok()) << rt.error();
  std::string error;
  CompiledPlanHandle handle = CompilePlanShared(f.workload, {}, &error);
  ASSERT_TRUE(handle) << error;

  rt.Start();
  for (size_t i = 0; i < 1000; ++i) rt.Ingest(f.arrivals[i]);
  const ShardedRuntime::SwapRequest swap = rt.RequestPlanSwap(handle);
  ASSERT_TRUE(swap.accepted) << swap.reason;

  const std::string dir = FreshDir("refused_during_swap");
  const ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
  EXPECT_FALSE(cp.ok);
  EXPECT_EQ(cp.code, OpRefusal::kSwapInFlight);
  EXPECT_NE(cp.reason.find("swap"), std::string::npos) << cp.reason;
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + checkpoint::kManifestFileName));

  for (size_t i = 1000; i < f.arrivals.size(); ++i) rt.Ingest(f.arrivals[i]);
  rt.Finish();
  EXPECT_EQ(rt.stats().CompletedSwaps(), 1u);
  const ResultCollector oracle = ReferenceResults(f.workload, f.sorted);
  oracle.ForEachCell([&](const ResultKey& key, const AggState& state) {
    EXPECT_EQ(rt.Get(key.query, key.window, key.group), state);
  });
  std::filesystem::remove_all(dir);
}

// Order 2: a swap requested while a checkpoint marker is still in the
// queues is refused with kCheckpointInFlight; the checkpoint then
// completes (manifest sealed at Finish) and restores cleanly.
TEST(CheckpointSwapExclusion, SwapRefusedWhileCheckpointInFlight) {
  CheckpointFixture f = MakeFixture();
  ShardedRuntime rt(f.workload, f.plan, FixtureOptions(2));
  ASSERT_TRUE(rt.ok()) << rt.error();
  std::string error;
  CompiledPlanHandle handle = CompilePlanShared(f.workload, {}, &error);
  ASSERT_TRUE(handle) << error;

  rt.Start();
  const size_t split = 1000;
  for (size_t i = 0; i < split; ++i) rt.Ingest(f.arrivals[i]);
  const std::string dir = FreshDir("swap_refused_during_ckpt");
  // Async request: the marker is NOT flushed, so the checkpoint stays in
  // flight deterministically until further ingest pushes it through.
  const ShardedRuntime::CheckpointRequest req = rt.RequestCheckpoint(dir);
  ASSERT_TRUE(req.accepted) << req.reason;
  ASSERT_TRUE(rt.CheckpointInFlight());

  const ShardedRuntime::SwapRequest swap = rt.RequestPlanSwap(handle);
  EXPECT_FALSE(swap.accepted);
  EXPECT_EQ(swap.code, OpRefusal::kCheckpointInFlight);
  EXPECT_NE(swap.reason.find("checkpoint"), std::string::npos) << swap.reason;

  for (size_t i = split; i < f.arrivals.size(); ++i) rt.Ingest(f.arrivals[i]);
  rt.Finish();
  ASSERT_TRUE(rt.last_checkpoint().ok) << rt.last_checkpoint().reason;
  EXPECT_EQ(rt.last_checkpoint().id, req.id);

  // The sealed checkpoint is a valid cut: restoring it and replaying the
  // suffix reproduces the oracle exactly.
  ShardedRuntime::RestoreOutcome restored = RestoreAt(f, dir, 2);
  ASSERT_TRUE(restored.runtime) << restored.error;
  restored.runtime->Start();
  for (size_t i = split; i < f.arrivals.size(); ++i) {
    restored.runtime->Ingest(f.arrivals[i]);
  }
  restored.runtime->Finish();
  const ResultCollector oracle = ReferenceResults(f.workload, f.sorted);
  oracle.ForEachCell([&](const ResultKey& key, const AggState& state) {
    EXPECT_EQ(restored.runtime->Get(key.query, key.window, key.group), state);
  });
  std::filesystem::remove_all(dir);
}

// --- refusal paths ----------------------------------------------------------

TEST(CheckpointRefusal, RequiresDisorderPolicy) {
  CheckpointFixture f = MakeFixture();
  RuntimeOptions opts;
  opts.num_shards = 2;  // no disorder policy
  ShardedRuntime rt(f.workload, f.plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  const ShardedRuntime::CheckpointResult cp =
      rt.Checkpoint(FreshDir("no_disorder"));
  EXPECT_FALSE(cp.ok);
  EXPECT_EQ(cp.code, OpRefusal::kNoDisorderPolicy);
}

// Multi-producer checkpoints are supported: the marker is broadcast on
// EVERY ingest partition's channels and each shard cuts only once all of
// them arrived (per-channel marker alignment, src/runtime/shard.h). The
// cut restores into a different shard AND producer count and replaying
// the suffix reproduces the single-stream oracle exactly.
TEST(CheckpointMultiProducer, AcceptedAndRestoresAcrossTopologies) {
  CheckpointFixture f = MakeFixture();
  RuntimeOptions opts = FixtureOptions(2);
  opts.ingest_partitions = 2;
  ShardedRuntime rt(f.workload, f.plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  rt.Start();
  const size_t split = f.arrivals.size() / 2;
  size_t rr = 0;
  for (size_t i = 0; i < split; ++i) {
    const Event& e = f.arrivals[i];
    if (IsWatermark(e)) {
      rt.ingest_partition(0).IngestWatermark(e.time);
      rt.ingest_partition(1).IngestWatermark(e.time);
    } else {
      rt.ingest_partition(rr++ % 2).Ingest(e);
    }
  }
  const std::string dir = FreshDir("multi_producer");
  const ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
  ASSERT_TRUE(cp.ok) << cp.reason;
  ASSERT_TRUE(
      std::filesystem::exists(dir + "/" + checkpoint::kManifestFileName));

  // Restore into 3 shards / 1 producer and replay the suffix.
  ShardedRuntime::RestoreOutcome restored = RestoreAt(f, dir, 3);
  ASSERT_TRUE(restored.runtime) << restored.error;
  restored.runtime->Start();
  for (size_t i = split; i < f.arrivals.size(); ++i) {
    restored.runtime->Ingest(f.arrivals[i]);
  }
  restored.runtime->Finish();
  const ResultCollector oracle = ReferenceResults(f.workload, f.sorted);
  oracle.ForEachCell([&](const ResultKey& key, const AggState& state) {
    EXPECT_EQ(restored.runtime->Get(key.query, key.window, key.group), state);
  });
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRefusal, CorruptShardFileRefusesRestore) {
  CheckpointFixture f = MakeFixture();
  const std::string dir = CheckpointPrefix(f, 2, 2000, "corrupt");
  const std::string shard_file = dir + "/" + checkpoint::ShardFileName(0);
  std::vector<uint8_t> bytes;
  ASSERT_EQ(checkpoint::ReadFileBytes(shard_file, &bytes), "");
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() * 3 / 5] ^= 0x40;  // one flipped bit mid-payload
  ASSERT_EQ(checkpoint::WriteFileBytes(shard_file, bytes), "");

  ShardedRuntime::RestoreOutcome restored = RestoreAt(f, dir, 2);
  EXPECT_FALSE(restored.runtime);
  EXPECT_FALSE(restored.error.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRefusal, VersionMismatchRefusesRestore) {
  CheckpointFixture f = MakeFixture();
  const std::string dir = CheckpointPrefix(f, 1, 1500, "version");
  const std::string manifest_path =
      dir + "/" + checkpoint::kManifestFileName;
  checkpoint::Manifest m;
  ASSERT_EQ(checkpoint::LoadManifest(manifest_path, &m), "");
  m.version = checkpoint::kFormatVersion + 1;
  ASSERT_EQ(checkpoint::SaveManifest(m, manifest_path), "");

  ShardedRuntime::RestoreOutcome restored = RestoreAt(f, dir, 1);
  EXPECT_FALSE(restored.runtime);
  EXPECT_NE(restored.error.find("version"), std::string::npos)
      << restored.error;
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRefusal, TornCheckpointWithoutManifestRefusesRestore) {
  CheckpointFixture f = MakeFixture();
  const std::string dir = CheckpointPrefix(f, 2, 1500, "torn");
  std::filesystem::remove(dir + "/" + checkpoint::kManifestFileName);
  ShardedRuntime::RestoreOutcome restored = RestoreAt(f, dir, 2);
  EXPECT_FALSE(restored.runtime);
  EXPECT_FALSE(restored.error.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRefusal, PlanFingerprintMismatchRefusesRestore) {
  CheckpointFixture f = MakeFixture();
  ASSERT_FALSE(f.plan.empty()) << "fixture needs a non-trivial plan";
  const std::string dir = CheckpointPrefix(f, 2, 1500, "fingerprint");
  ShardedRuntime::RestoreOptions ropts;
  ropts.runtime = FixtureOptions(2);
  ropts.workload = &f.workload;
  ropts.plan = SharingPlan{};  // A-Seq compiles to different templates
  ShardedRuntime::RestoreOutcome restored = ShardedRuntime::Restore(dir, ropts);
  EXPECT_FALSE(restored.runtime);
  EXPECT_NE(restored.error.find("fingerprint"), std::string::npos)
      << restored.error;
  std::filesystem::remove_all(dir);
}

// The incumbent plan id survives a restart: a manager on the restored
// runtime continues the id sequence instead of restarting at zero.
TEST(Checkpoint, IncumbentPlanIdSurvivesRestore) {
  CheckpointFixture f = MakeFixture();
  ShardedRuntime rt(f.workload, f.plan, FixtureOptions(2));
  ASSERT_TRUE(rt.ok()) << rt.error();
  std::string error;
  CompiledPlanHandle handle = CompilePlanShared(f.workload, {}, &error);
  ASSERT_TRUE(handle) << error;

  rt.Start();
  for (size_t i = 0; i < 1000; ++i) rt.Ingest(f.arrivals[i]);
  const ShardedRuntime::SwapRequest swap = rt.RequestPlanSwap(handle);
  ASSERT_TRUE(swap.accepted) << swap.reason;
  // Keep ingesting until the swap retires (watermarks past its cap), then
  // cut — a checkpoint during the dual-run is refused by design.
  const std::string dir = FreshDir("plan_id");
  size_t i = 1000 + f.arrivals.size() / 2;
  for (size_t j = 1000; j < i; ++j) rt.Ingest(f.arrivals[j]);
  ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
  while (!cp.ok && cp.code == OpRefusal::kSwapInFlight &&
         i < f.arrivals.size()) {
    rt.Ingest(f.arrivals[i++]);
    cp = rt.Checkpoint(dir);
  }
  ASSERT_TRUE(cp.ok) << cp.reason;
  EXPECT_EQ(rt.swaps_requested(), 1u);

  ShardedRuntime::RestoreOptions ropts;
  ropts.runtime = FixtureOptions(4);
  ropts.workload = &f.workload;
  ropts.plan = SharingPlan{};  // the incumbent at the cut is the A-Seq plan
  ShardedRuntime::RestoreOutcome restored = ShardedRuntime::Restore(dir, ropts);
  ASSERT_TRUE(restored.runtime) << restored.error;
  EXPECT_EQ(restored.runtime->swaps_requested(), 1u);
  EXPECT_EQ(restored.manifest.swaps_requested, 1u);

  adaptive::PlanManager mgr(f.workload, restored.runtime.get(), SharingPlan{});
  EXPECT_EQ(mgr.incumbent_plan_id(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sharon
