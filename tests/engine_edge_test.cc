// Failure-injection and edge-case tests for the engine: malformed plans,
// degenerate workloads, unknown event types, empty streams, tumbling
// windows, and long-gap expiration.

#include <gtest/gtest.h>

#include "src/exec/engine.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

constexpr EventTypeId kA = 0, kB = 1, kC = 2;

Event Ev(EventTypeId type, Timestamp t) {
  Event e;
  e.type = type;
  e.time = t;
  e.attrs = {0};
  return e;
}

Query MakeQuery(std::vector<EventTypeId> pattern, Duration len = 100,
                Duration slide = 10) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = AggSpec::CountStar();
  q.window = {len, slide};
  return q;
}

TEST(EngineEdgeTest, EmptyWorkloadRejected) {
  Workload w;
  Engine e(w);
  EXPECT_FALSE(e.ok());
}

TEST(EngineEdgeTest, NonUniformWorkloadRejected) {
  Workload w;
  w.Add(MakeQuery({kA, kB}, 100, 10));
  w.Add(MakeQuery({kA, kB}, 200, 10));  // different window
  Engine e(w);
  EXPECT_FALSE(e.ok());
  EXPECT_NE(e.error().find("uniform"), std::string::npos);
}

TEST(EngineEdgeTest, PlanPatternNotInQueryRejected) {
  Workload w;
  w.Add(MakeQuery({kA, kB}));
  w.Add(MakeQuery({kA, kB}));
  SharingPlan plan = {{Pattern({kB, kC}), {0, 1}}};
  Engine e(w, plan);
  EXPECT_FALSE(e.ok());
}

TEST(EngineEdgeTest, UnknownEventTypesIgnored) {
  Workload w;
  w.Add(MakeQuery({kA, kB}));
  Engine e(w);
  ASSERT_TRUE(e.ok());
  e.OnEvent(Ev(kA, 1));
  e.OnEvent(Ev(99, 2));  // type no query mentions
  e.OnEvent(Ev(kB, 3));
  EXPECT_EQ(e.results().Value(0, 0, 0, AggFunction::kCountStar), 1);
}

TEST(EngineEdgeTest, EmptyStream) {
  Workload w;
  w.Add(MakeQuery({kA, kB}));
  Engine e(w);
  RunStats stats = e.Run({}, 0);
  EXPECT_EQ(stats.events_processed, 0u);
  EXPECT_EQ(e.results().size(), 0u);
}

TEST(EngineEdgeTest, TumblingWindowsDoNotDoubleCount) {
  Workload w;
  w.Add(MakeQuery({kA, kB}, 10, 10));
  Engine e(w);
  // (a,b) entirely in window 0; (a12,b15) entirely in window 1.
  for (const Event& ev :
       {Ev(kA, 1), Ev(kB, 2), Ev(kA, 12), Ev(kB, 15)}) {
    e.OnEvent(ev);
  }
  EXPECT_EQ(e.results().Value(0, 0, 0, AggFunction::kCountStar), 1);
  EXPECT_EQ(e.results().Value(0, 1, 0, AggFunction::kCountStar), 1);
  // Cross-boundary pair (a1 .. b15) matches no window.
  EXPECT_EQ(e.results().size(), 2u);
}

TEST(EngineEdgeTest, LongGapExpiresEverything) {
  Workload w;
  w.Add(MakeQuery({kA, kB}, 10, 5));
  Engine e(w);
  e.OnEvent(Ev(kA, 1));
  e.OnEvent(Ev(kB, 1000000));  // far beyond any shared window
  EXPECT_EQ(e.results().size(), 0u);
  EXPECT_LT(e.EstimatedBytes(), 4096u);  // stale state was dropped
}

TEST(EngineEdgeTest, SweepKeepsStateBounded) {
  // Feed many events over a long horizon; state must stay proportional
  // to the window, not the stream.
  Workload w;
  w.Add(MakeQuery({kA, kB}, 64, 16));
  Engine e(w);
  size_t peak = 0;
  for (Timestamp t = 1; t <= 100000; ++t) {
    e.OnEvent(Ev(t % 2 == 0 ? kA : kB, t));
    if (t % 10000 == 0) peak = std::max(peak, e.EstimatedBytes());
  }
  // ~32 live starts x ~100B plus snapshots and results; the point is it
  // is nowhere near 100k events' worth of state.
  EXPECT_LT(e.EstimatedBytes(), 1u << 20);
}

TEST(EngineEdgeTest, CandidateWithSubsetOfQueriesSharesOnlyThose) {
  // Plan shares (A,B) between q0 and q1 only; q2 runs privately. All
  // three must produce identical (correct) results.
  Workload w;
  w.Add(MakeQuery({kA, kB}));
  w.Add(MakeQuery({kA, kB}));
  w.Add(MakeQuery({kA, kB}));
  SharingPlan plan = {{Pattern({kA, kB}), {0, 1}}};
  Engine e(w, plan);
  ASSERT_TRUE(e.ok());
  std::vector<Event> stream = {Ev(kA, 1), Ev(kB, 2), Ev(kB, 3)};
  for (const Event& ev : stream) e.OnEvent(ev);
  for (QueryId q : {0u, 1u, 2u}) {
    EXPECT_EQ(e.results().Value(q, 0, 0, AggFunction::kCountStar), 2)
        << "q" << q;
  }
}

TEST(EngineEdgeTest, DuplicateCandidatePatternsDisjointQueries) {
  // Two candidates with the SAME pattern over disjoint query sets (the
  // §7.1 option shape): both compile and share one physical counter.
  Workload w;
  for (int i = 0; i < 4; ++i) w.Add(MakeQuery({kA, kB}));
  SharingPlan plan = {
      {Pattern({kA, kB}), {0, 1}},
      {Pattern({kA, kB}), {2, 3}},
  };
  Engine e(w, plan);
  ASSERT_TRUE(e.ok()) << e.error();
  EXPECT_EQ(e.num_shared_counters(), 1u);
  e.OnEvent(Ev(kA, 1));
  e.OnEvent(Ev(kB, 2));
  for (QueryId q = 0; q < 4; ++q) {
    EXPECT_EQ(e.results().Value(q, 0, 0, AggFunction::kCountStar), 1);
  }
}

}  // namespace
}  // namespace sharon
