// Unit tests for the sharing benefit model (Equations 1-8).

#include "src/sharing/cost_model.h"

#include <gtest/gtest.h>

#include "src/streamgen/fixtures.h"

namespace sharon {
namespace {

// Types A=0 B=1 C=2 D=3 E=4 with easy rates.
constexpr EventTypeId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

Query MakeQuery(std::vector<EventTypeId> pattern) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = AggSpec::CountStar();
  q.window = {100, 10};
  return q;
}

CostModel SimpleModel() {
  // Rate(A)=2, Rate(B)=3, Rate(C)=5, Rate(D)=7, Rate(E)=11.
  return CostModel(TypeRates({2, 3, 5, 7, 11}));
}

TEST(CostModelTest, RateOfPatternIsSum) {
  CostModel cm = SimpleModel();
  EXPECT_EQ(cm.rates().OfPattern(Pattern({kA, kB, kC})), 10);
  EXPECT_EQ(cm.rates().Of(kD), 7);
  EXPECT_EQ(cm.rates().Of(99), 0);  // unknown types are silent
}

TEST(CostModelTest, NonSharedQueryEq2) {
  CostModel cm = SimpleModel();
  // NonShared = Rate(E1) * Rate(P) = 2 * (2+3+5) = 20.
  EXPECT_EQ(cm.NonSharedQuery(MakeQuery({kA, kB, kC})), 20);
}

TEST(CostModelTest, CompAndCombEq4And5) {
  CostModel cm = SimpleModel();
  Query q = MakeQuery({kA, kB, kC, kD, kE});
  Pattern p({kB, kC});  // prefix (A), suffix (D,E)
  // Comp = Rate(A)*Rate(A) + Rate(D)*Rate(D,E) = 4 + 7*18 = 130.
  EXPECT_EQ(cm.Comp(p, q), 2 * 2 + 7 * (7 + 11));
  // Comb = Rate(A) * Rate(B) * Rate(D) = 2*3*7 = 42.
  EXPECT_EQ(cm.Comb(p, q), 2 * 3 * 7);
  EXPECT_EQ(cm.SharedQuery(p, q), 130 + 42);
}

TEST(CostModelTest, EmptyPrefixDropsTerms) {
  CostModel cm = SimpleModel();
  Query q = MakeQuery({kA, kB, kC});
  Pattern p({kA, kB});  // no prefix, suffix (C)
  // Comp = suffix only: Rate(C)*Rate(C) = 25.
  EXPECT_EQ(cm.Comp(p, q), 25);
  // Comb = Rate(A) * Rate(C): prefix factor degenerates to 1.
  EXPECT_EQ(cm.Comb(p, q), 2 * 5);
}

TEST(CostModelTest, WholePatternSharingHasNoCombination) {
  CostModel cm = SimpleModel();
  Query q = MakeQuery({kA, kB});
  Pattern p({kA, kB});
  EXPECT_EQ(cm.Comp(p, q), 0);
  EXPECT_EQ(cm.Comb(p, q), 0);
  // Sharing identical full patterns across n queries: NonShared = n*cost,
  // Shared = 1*cost -> benefit = (n-1)*cost > 0.
  Workload w;
  w.Add(MakeQuery({kA, kB}));
  w.Add(MakeQuery({kA, kB}));
  w.Add(MakeQuery({kA, kB}));
  Candidate c{p, {0, 1, 2}};
  const double per_query = 2 * (2 + 3);
  EXPECT_EQ(cm.NonShared(c, w), 3 * per_query);
  EXPECT_EQ(cm.Shared(c, w), per_query);
  EXPECT_EQ(cm.BValue(c, w), 2 * per_query);
}

TEST(CostModelTest, SharingCanBeNonBeneficial) {
  // A shared pattern whose combination overhead exceeds the gain: rare
  // shared pattern inside queries with hot boundary types.
  CostModel cm(CostModel(TypeRates({100, 1, 1, 100, 100})));
  Workload w;
  w.Add(MakeQuery({kA, kB, kC, kD}));
  w.Add(MakeQuery({kE, kB, kC, kD}));
  Candidate c{Pattern({kB, kC}), {0, 1}};
  // Comb per query = 100 * 1 * 100 = 10000, dwarfing the shared gain.
  EXPECT_LT(cm.BValue(c, w), 0);
}

TEST(CostModelTest, MultiplicityFactorSection73) {
  CostModel cm = SimpleModel();
  // (A,B,A): type A occurs twice -> k = 2 doubles the per-event work.
  EXPECT_EQ(cm.NonSharedQuery(MakeQuery({kA, kB, kA})),
            2 * (2 + 3 + 2) * 2);
}

TEST(CostModelTest, BenefitGrowsWithQueriesAndLength) {
  // The paper's §3.4 conclusion: more queries and longer patterns raise
  // the benefit of sharing.
  CostModel cm = SimpleModel();
  Workload w2;
  w2.Add(MakeQuery({kA, kB, kC}));
  w2.Add(MakeQuery({kA, kB, kC}));
  Workload w3 = w2;
  w3.Add(MakeQuery({kA, kB, kC}));
  Candidate c2{Pattern({kA, kB, kC}), {0, 1}};
  Candidate c3{Pattern({kA, kB, kC}), {0, 1, 2}};
  EXPECT_GT(cm.BValue(c3, w3), cm.BValue(c2, w2));

  Workload wl;
  wl.Add(MakeQuery({kA, kB}));
  wl.Add(MakeQuery({kA, kB}));
  Candidate cshort{Pattern({kA, kB}), {0, 1}};
  EXPECT_GT(cm.BValue(c2, w2), cm.BValue(cshort, wl));
}

TEST(CostModelTest, EstimatedRatesFeedModel) {
  TrafficFixture f = MakeTrafficFixture();
  // Hand-build a tiny scenario to check EstimateRates wiring.
  Scenario s;
  s.types = f.types;
  s.duration = Seconds(10);
  for (int i = 0; i < 20; ++i) {
    Event e;
    e.time = i * Seconds(10) / 20;
    e.type = static_cast<EventTypeId>(i % 2);
    e.attrs = {0};
    s.events.push_back(e);
  }
  TypeRates rates = EstimateRates(s);
  EXPECT_DOUBLE_EQ(rates.Of(0), 1.0);  // 10 events / 10 seconds
  EXPECT_DOUBLE_EQ(rates.Of(1), 1.0);
  EXPECT_DOUBLE_EQ(rates.Of(2), 0.0);
}

}  // namespace
}  // namespace sharon
