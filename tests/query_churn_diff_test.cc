// Differential fuzz suite for live query churn (src/query/registration.h
// + adaptive::PlanManager churn integration).
//
// The relaxation under test is "the standing query SET may change
// mid-stream": a seeded random register/retire/reactivate schedule runs
// interleaved with rate drift and bounded disorder through the adaptive
// runtime at shards {1,2,8} x producers {1,3}. The oracle is the
// independent per-window DP reference (src/twostep/reference.h) over the
// FINAL workload and the sorted stream, restricted per query id to the
// id's committed live intervals: a cell belongs to id's result surface
// iff some interval contains its window-close time. For every id the
// finalized cells must be bit-identical to that restriction —
//
//   - a REGISTERED id owns windows closing strictly after its commit
//     boundary, at full-stream values (the dual-run tee hands the new
//     engine every event of its first full window);
//   - a RETIRED id keeps windows closing at or before its boundary
//     readable forever (frozen into the shard archive), and nothing else;
//   - an op still pending at shutdown never opened/closed its interval,
//     so both sides agree it contributes nothing / everything untouched.
//
// Seeds honor SHARON_DISORDER_SEED_BASE (CI sweeps a seed matrix).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "src/adaptive/plan_manager.h"
#include "src/planner/optimizer.h"
#include "src/query/registration.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/drift.h"
#include "src/streamgen/rates.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

using adaptive::PlanManager;
using adaptive::PlanManagerOptions;
using query::QueryRegistry;
using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

uint64_t SweepBaseSeed() {
  const char* env = std::getenv("SHARON_DISORDER_SEED_BASE");
  return env ? static_cast<uint64_t>(std::atoll(env)) : 0;
}

CellMap CellsOf(const ResultCollector& collector) {
  CellMap cells;
  collector.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

CellMap CellsOf(const ShardedRuntime& rt) {
  CellMap cells;
  rt.results().ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

/// Restricts the full-stream oracle to each id's committed live
/// intervals — the churn result-surface contract.
CellMap FilterByIntervals(const CellMap& all, const QueryRegistry& reg,
                          const WindowSpec& w) {
  CellMap out;
  for (const auto& [key, state] : all) {
    const Timestamp close = w.WindowEnd(std::get<1>(key));
    if (reg.OwnsWindowClose(std::get<0>(key), close)) out.emplace(key, state);
  }
  return out;
}

void ExpectBitIdentical(const CellMap& expected, const CellMap& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, state] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end())
        << label << ": missing cell query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
    EXPECT_EQ(state, it->second)
        << label << ": cell differs at query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
  }
}

struct ChurnCaseConfig {
  DriftConfig drift;
  WindowSpec window{Seconds(10), Seconds(4)};
  Duration lateness = Seconds(2);
  size_t churn_every = 3000;  ///< data events between churn attempts
  uint64_t schedule_seed = 0;
};

ChurnCaseConfig MakeChurnConfig(uint64_t seed) {
  ChurnCaseConfig c;
  c.drift.num_types = 8;
  c.drift.num_groups = 12;
  c.drift.events_per_second = 600;
  c.drift.phase_length = Seconds(20);
  c.drift.num_phases = 2;
  c.drift.seed = seed;
  c.schedule_seed = seed * 977 + 13;
  return c;
}

Query RandomChurnQuery(std::mt19937_64& rng, const ChurnCaseConfig& c) {
  std::uniform_int_distribution<size_t> len_dist(2, 3);
  const size_t len = len_dist(rng);
  std::vector<EventTypeId> types(c.drift.num_types);
  for (uint32_t t = 0; t < c.drift.num_types; ++t) types[t] = t;
  std::shuffle(types.begin(), types.end(), rng);
  types.resize(len);
  Query q;
  q.pattern = Pattern(types);
  q.agg = AggSpec::CountStar();
  q.window = c.window;
  q.partition_attr = 0;
  return q;
}

struct ChurnRunResult {
  uint64_t registered = 0;   ///< accepted register/reactivate calls
  uint64_t retired = 0;      ///< accepted retire calls
  uint64_t churn_swaps = 0;  ///< churn-committing swaps accepted
};

/// One topology run: fresh workload + registry + runtime, seeded churn
/// schedule interleaved with the drifting disordered stream, finalized
/// cells diffed per id against the interval-filtered oracle.
ChurnRunResult RunChurnDifferentialOne(const ChurnCaseConfig& c,
                                       size_t shards, size_t producers) {
  Scenario s = GenerateDrift(c.drift);
  Workload workload = DriftWorkload(c.drift, c.window, /*anchors_per_side=*/6,
                                    /*bridges=*/3);
  const std::vector<Event> sorted = s.events;

  DisorderConfig inj;
  inj.max_lateness = c.lateness;
  inj.punctuation_period = Seconds(1);
  inj.seed = c.schedule_seed ^ 0xabadcafe;
  const std::vector<Event> arrivals = InjectDisorder(sorted, inj);

  CostModel cm0(RatesOfSlice(sorted, 0, c.drift.phase_length,
                             c.drift.num_types));
  const SharingPlan initial_plan = OptimizeGreedy(workload, cm0).plan;

  RuntimeOptions opts;
  opts.num_shards = shards;
  opts.ingest_partitions = producers;
  opts.batch_size = 32;
  opts.queue_capacity = 2;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = c.lateness;
  ShardedRuntime rt(workload, initial_plan, opts);
  EXPECT_TRUE(rt.ok()) << rt.error();
  if (!rt.ok()) return {};

  PlanManagerOptions popts;
  popts.epoch = Seconds(4);
  popts.window_epochs = 2;
  popts.drift_threshold = 0.3;
  popts.hysteresis = 0.05;
  PlanManager mgr(workload, &rt, initial_plan, popts);
  QueryRegistry registry(&workload);
  mgr.AttachRegistry(&registry);

  std::mt19937_64 sched(c.schedule_seed);
  std::vector<QueryId> churn_registered;  ///< ids this schedule added

  rt.Start();
  size_t rr = 0;
  size_t data_seen = 0;
  for (const Event& e : arrivals) {
    if (IsWatermark(e)) {
      for (size_t p = 0; p < producers; ++p) mgr.Ingest(e, p);
      continue;
    }
    mgr.Ingest(e, rr++ % producers);
    if (++data_seen % c.churn_every != 0) continue;

    // One schedule step. Refusals (last active query, already-retired id)
    // are normal outcomes of a random schedule; the registry's typed
    // refusal keeps the run going.
    const uint64_t roll = sched() % 4;
    if (roll == 0) {
      query::ChurnResult r = mgr.RegisterQuery(RandomChurnQuery(sched, c));
      if (r.accepted) churn_registered.push_back(r.id);
    } else if (roll == 1 && !churn_registered.empty()) {
      // Retire the oldest schedule-registered id still live.
      for (const QueryId id : churn_registered) {
        if (registry.live(id) && mgr.RetireQuery(id).accepted) break;
      }
    } else if (roll == 2) {
      // Retire a random query, original drift queries included — the
      // archive path must also hold for ids with long history.
      const QueryId id =
          static_cast<QueryId>(sched() % workload.size());
      mgr.RetireQuery(id);
    } else {
      // Reactivate a random retired id: its surface re-opens with a
      // SECOND live interval.
      std::vector<QueryId> dead;
      for (const Query& q : workload.queries()) {
        if (!registry.live(q.id)) dead.push_back(q.id);
      }
      if (!dead.empty()) mgr.ReactivateQuery(dead[sched() % dead.size()]);
    }
  }
  rt.Finish();

  const std::string label = "churn shards=" + std::to_string(shards) +
                            " producers=" + std::to_string(producers) +
                            " seed=" + std::to_string(c.schedule_seed);

  // The oracle never saw churn: full-stream reference over EVERY query
  // ever known, then restricted per id to its committed live intervals.
  const CellMap full = CellsOf(ReferenceResults(workload, sorted));
  const CellMap expected =
      FilterByIntervals(full, registry, c.window);
  ExpectBitIdentical(expected, CellsOf(rt), label);
  for (const auto& [key, state] : expected) {
    EXPECT_TRUE(rt.results().Finalized(std::get<0>(key), std::get<1>(key)))
        << label << " query=" << std::get<0>(key)
        << " window=" << std::get<1>(key);
  }
  EXPECT_EQ(rt.stats().TotalLateDropped(), 0u) << label;

  ChurnRunResult result;
  result.registered = mgr.stats().queries_registered;
  result.retired = mgr.stats().queries_retired;
  result.churn_swaps = mgr.stats().churn_swaps;
  return result;
}

/// The full topology sweep. At least one register AND one retire must
/// commit somewhere, or the suite would pass vacuously.
void RunChurnDifferential(uint64_t seed) {
  const ChurnCaseConfig c = MakeChurnConfig(seed);
  uint64_t committed_swaps = 0, registered = 0, retired = 0;
  for (size_t shards : {1u, 2u, 8u}) {
    for (size_t producers : {1u, 3u}) {
      const ChurnRunResult r = RunChurnDifferentialOne(c, shards, producers);
      committed_swaps += r.churn_swaps;
      registered += r.registered;
      retired += r.retired;
    }
  }
  EXPECT_GT(committed_swaps, 0u) << "no churn swap ever committed";
  EXPECT_GT(registered, 0u) << "schedule never registered a query";
  EXPECT_GT(retired, 0u) << "schedule never retired a query";
}

TEST(QueryChurnDiff, SeededScheduleMatchesIntervalOracle) {
  RunChurnDifferential(SweepBaseSeed() + 11);
}

TEST(QueryChurnDiff, SecondSeedMatchesIntervalOracle) {
  RunChurnDifferential(SweepBaseSeed() + 29);
}

}  // namespace
}  // namespace sharon
