// Executor tests: the paper's hand-worked traces (Examples 1-3, Figs. 6-7)
// plus window/expiration semantics, grouping, and shared-vs-non-shared
// agreement on the running example.

#include "src/exec/engine.h"

#include <gtest/gtest.h>

#include "src/streamgen/fixtures.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

// Types used by the hand traces.
constexpr EventTypeId kA = 0, kB = 1, kC = 2, kD = 3;

Event Ev(EventTypeId type, Timestamp t, AttrValue group = 0,
         AttrValue val = 0) {
  Event e;
  e.type = type;
  e.time = t;
  e.attrs = {group, val};
  return e;
}

Query CountQuery(std::vector<EventTypeId> pattern, Duration length,
                 Duration slide, AttrIndex partition = kNoAttr) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = AggSpec::CountStar();
  q.window = {length, slide};
  q.partition_attr = partition;
  return q;
}

TEST(EngineTest, Example1OnlineSequenceCount) {
  // Fig. 6(a): stream a1, b2, a3, b4 -> count(A,B) = 3 in one window.
  Workload w;
  w.Add(CountQuery({kA, kB}, 100, 100));
  Engine engine(w);
  ASSERT_TRUE(engine.ok()) << engine.error();
  for (const Event& e : {Ev(kA, 1), Ev(kB, 2), Ev(kA, 3), Ev(kB, 4)}) {
    engine.OnEvent(e);
  }
  EXPECT_EQ(engine.results().Value(0, 0, 0, AggFunction::kCountStar), 3);
}

TEST(EngineTest, Example2EventExpiration) {
  // Fig. 6(b): window length 4 sliding by 1; stream a1 b2 a3 b4 b5.
  Workload w;
  w.Add(CountQuery({kA, kB}, 4, 1));
  Engine engine(w);
  ASSERT_TRUE(engine.ok());
  for (const Event& e :
       {Ev(kA, 1), Ev(kB, 2), Ev(kA, 3), Ev(kB, 4), Ev(kB, 5)}) {
    engine.OnEvent(e);
  }
  auto count = [&](WindowId j) {
    return engine.results().Value(0, j, 0, AggFunction::kCountStar);
  };
  EXPECT_EQ(count(0), 1);  // (a1,b2)
  EXPECT_EQ(count(1), 3);  // (a1,b2) (a1,b4) (a3,b4)
  EXPECT_EQ(count(2), 2);  // (a3,b4) (a3,b5): a1 expired
  EXPECT_EQ(count(3), 2);  // (a3,b4) (a3,b5)
  EXPECT_EQ(count(4), 0);
}

TEST(EngineTest, Example3SharedCombination) {
  // Fig. 7: count(A,B,C,D) from shared count(A,B) and count(C,D).
  // Stream chosen so the trace matches the paper exactly:
  //   count(A,B) = 1 when the first c arrives, 5 at the second c;
  //   count(c3,D) = 2, count(c7,D) = 1; total = 1*2 + 5*1 = 7.
  std::vector<Event> stream = {Ev(kA, 1), Ev(kB, 2), Ev(kC, 3),
                               Ev(kD, 4), Ev(kA, 5), Ev(kB, 6),
                               Ev(kB, 7), Ev(kC, 8), Ev(kD, 9)};
  Workload w;
  w.Add(CountQuery({kA, kB, kC, kD}, 100, 100));
  w.Add(CountQuery({kA, kB, kC, kD}, 100, 100));

  SharingPlan plan = {
      {Pattern({kA, kB}), {0, 1}},
      {Pattern({kC, kD}), {0, 1}},
  };
  Engine shared(w, plan);
  ASSERT_TRUE(shared.ok()) << shared.error();
  for (const Event& e : stream) shared.OnEvent(e);
  EXPECT_EQ(shared.results().Value(0, 0, 0, AggFunction::kCountStar), 7);
  EXPECT_EQ(shared.results().Value(1, 0, 0, AggFunction::kCountStar), 7);
  // Both queries use the same two shared counters.
  EXPECT_EQ(shared.num_shared_counters(), 2u);

  Engine nonshared(w);
  for (const Event& e : stream) nonshared.OnEvent(e);
  EXPECT_EQ(nonshared.results().Value(0, 0, 0, AggFunction::kCountStar), 7);
}

TEST(EngineTest, SharedPrefixAndSuffixDecomposition) {
  // Query (A,B,C,D) sharing only (B,C): private prefix (A), shared (B,C),
  // private suffix (D). Must agree with the non-shared engine.
  std::vector<Event> stream = {Ev(kA, 1), Ev(kB, 2), Ev(kC, 3), Ev(kD, 4),
                               Ev(kB, 5), Ev(kA, 6), Ev(kC, 7), Ev(kD, 8),
                               Ev(kB, 9), Ev(kC, 10), Ev(kD, 11)};
  Workload w;
  w.Add(CountQuery({kA, kB, kC, kD}, 6, 2));
  w.Add(CountQuery({kB, kC, kD}, 6, 2));
  SharingPlan plan = {{Pattern({kB, kC}), {0, 1}}};

  Engine shared(w, plan);
  ASSERT_TRUE(shared.ok()) << shared.error();
  Engine nonshared(w);
  for (const Event& e : stream) {
    shared.OnEvent(e);
    nonshared.OnEvent(e);
  }
  ResultCollector ref = ReferenceResults(w, stream);
  for (WindowId j = 0; j <= 5; ++j) {
    for (QueryId q : {0u, 1u}) {
      EXPECT_EQ(shared.results().Value(q, j, 0, AggFunction::kCountStar),
                ref.Value(q, j, 0, AggFunction::kCountStar))
          << "shared q" << q << " window " << j;
      EXPECT_EQ(nonshared.results().Value(q, j, 0, AggFunction::kCountStar),
                ref.Value(q, j, 0, AggFunction::kCountStar))
          << "nonshared q" << q << " window " << j;
    }
  }
}

TEST(EngineTest, GroupingPartitionsTheStream) {
  // Two vehicles interleaved; sequences must not mix groups.
  Workload w;
  w.Add(CountQuery({kA, kB}, 100, 100, /*partition=*/0));
  Engine engine(w);
  ASSERT_TRUE(engine.ok());
  engine.OnEvent(Ev(kA, 1, /*group=*/7));
  engine.OnEvent(Ev(kA, 2, /*group=*/9));
  engine.OnEvent(Ev(kB, 3, /*group=*/7));
  engine.OnEvent(Ev(kB, 4, /*group=*/9));
  EXPECT_EQ(engine.results().Value(0, 0, 7, AggFunction::kCountStar), 1);
  EXPECT_EQ(engine.results().Value(0, 0, 9, AggFunction::kCountStar), 1);
  EXPECT_EQ(engine.results().Value(0, 0, 0, AggFunction::kCountStar), 0);
}

TEST(EngineTest, SingleEventPattern) {
  Workload w;
  w.Add(CountQuery({kA}, 4, 2));
  Engine engine(w);
  ASSERT_TRUE(engine.ok());
  for (const Event& e : {Ev(kA, 1), Ev(kB, 2), Ev(kA, 5)}) engine.OnEvent(e);
  EXPECT_EQ(engine.results().Value(0, 0, 0, AggFunction::kCountStar), 1);
  EXPECT_EQ(engine.results().Value(0, 1, 0, AggFunction::kCountStar), 1);
  EXPECT_EQ(engine.results().Value(0, 2, 0, AggFunction::kCountStar), 1);
}

TEST(EngineTest, SumAggregateSharedAndNot) {
  // SUM(D.val) over (A,B,C,D) with shared (A,B): the shared segment
  // carries pure counts; the suffix carries the sum.
  std::vector<Event> stream = {Ev(kA, 1), Ev(kB, 2), Ev(kC, 3),
                               Ev(kD, 4, 0, 10), Ev(kD, 5, 0, 3)};
  Workload w;
  Query q1 = CountQuery({kA, kB, kC, kD}, 100, 100);
  q1.agg = AggSpec::Of(AggFunction::kSum, kD, 1);
  Query q2 = q1;
  w.Add(q1);
  w.Add(q2);
  SharingPlan plan = {{Pattern({kA, kB}), {0, 1}}};

  Engine shared(w, plan);
  ASSERT_TRUE(shared.ok()) << shared.error();
  for (const Event& e : stream) shared.OnEvent(e);
  // Sequences: (a1,b2,c3,d4) sum 10 and (a1,b2,c3,d5) sum 3.
  EXPECT_EQ(shared.results().Value(0, 0, 0, AggFunction::kSum), 13);
  EXPECT_EQ(shared.results().Value(1, 0, 0, AggFunction::kSum), 13);
  EXPECT_EQ(shared.results().Value(0, 0, 0, AggFunction::kCountStar), 2);
}

TEST(EngineTest, MinMaxAvgAggregates) {
  std::vector<Event> stream = {Ev(kA, 1, 0, 5), Ev(kB, 2, 0, 4),
                               Ev(kA, 3, 0, 2), Ev(kB, 4, 0, 9)};
  for (AggFunction fn :
       {AggFunction::kMin, AggFunction::kMax, AggFunction::kAvg,
        AggFunction::kCountType}) {
    Workload w;
    Query q = CountQuery({kA, kB}, 100, 100);
    q.agg = AggSpec::Of(fn, kA, 1);
    w.Add(q);
    Engine engine(w);
    for (const Event& e : stream) engine.OnEvent(e);
    // Sequences: (a1,b2) (a1,b4) (a3,b4); A-values 5, 5, 2.
    double got = engine.results().Value(0, 0, 0, fn);
    switch (fn) {
      case AggFunction::kMin: EXPECT_EQ(got, 2); break;
      case AggFunction::kMax: EXPECT_EQ(got, 5); break;
      case AggFunction::kAvg: EXPECT_EQ(got, 4); break;  // (5+5+2)/3
      case AggFunction::kCountType: EXPECT_EQ(got, 3); break;
      default: break;
    }
  }
}

TEST(EngineTest, InvalidPlanOverlapRejected) {
  Workload w;
  w.Add(CountQuery({kA, kB, kC}, 100, 100));
  w.Add(CountQuery({kA, kB, kC}, 100, 100));
  SharingPlan plan = {
      {Pattern({kA, kB}), {0, 1}},
      {Pattern({kB, kC}), {0, 1}},  // overlaps the first inside q0/q1
  };
  Engine engine(w, plan);
  EXPECT_FALSE(engine.ok());
  EXPECT_NE(engine.error().find("overlap"), std::string::npos);
}

TEST(EngineTest, TrafficFixtureSharedMatchesNonShared) {
  // The paper's optimal plan {p2, p4, p6, p7} over q1..q7 on a small
  // hand-rolled position stream: every query must agree with A-Seq.
  TrafficFixture f = MakeTrafficFixture();
  EventTypeId oak = f.types.Find("OakSt"), main = f.types.Find("MainSt"),
              park = f.types.Find("ParkAve"), west = f.types.Find("WestSt"),
              state = f.types.Find("StateSt"), elm = f.types.Find("ElmSt");
  SharingPlan plan = {
      {Pattern({park, oak}), {2, 3}},
      {Pattern({main, west}), {1, 3}},
      {Pattern({main, state}), {0, 4}},
      {Pattern({elm, park}), {5, 6}},
  };
  // One vehicle driving Park -> Oak -> Main -> West -> State, then Elm ->
  // Park, twice, spread over several minutes.
  std::vector<Event> stream;
  Timestamp t = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (EventTypeId ty : {park, oak, main, west, state, elm, park}) {
      stream.push_back(Ev(ty, t += Seconds(20), /*group=*/1));
    }
  }
  Engine shared(f.workload, plan);
  ASSERT_TRUE(shared.ok()) << shared.error();
  Engine nonshared(f.workload);
  for (const Event& e : stream) {
    shared.OnEvent(e);
    nonshared.OnEvent(e);
  }
  ResultCollector ref = ReferenceResults(f.workload, stream);
  const WindowSpec& ws = f.workload.window();
  for (const Query& q : f.workload.queries()) {
    for (WindowId j = 0; j <= ws.LastWindowCovering(t); ++j) {
      double want = ref.Value(q.id, j, 1, AggFunction::kCountStar);
      EXPECT_EQ(shared.results().Value(q.id, j, 1, AggFunction::kCountStar),
                want)
          << "shared " << q.name << " window " << j;
      EXPECT_EQ(
          nonshared.results().Value(q.id, j, 1, AggFunction::kCountStar),
          want)
          << "nonshared " << q.name << " window " << j;
    }
  }
}

}  // namespace
}  // namespace sharon
