// Unit tests for sliding-window arithmetic: coverage ranges, panes and the
// §3.2 expiration rule. Includes an exhaustive consistency sweep over many
// (length, slide, time) combinations.

#include "src/query/window.h"

#include <gtest/gtest.h>

namespace sharon {
namespace {

TEST(WindowTest, CoverageBasics) {
  WindowSpec w{10, 2};  // [0,10) [2,12) [4,14) ...
  EXPECT_EQ(w.FirstWindowCovering(0), 0);
  EXPECT_EQ(w.LastWindowCovering(0), 0);
  EXPECT_EQ(w.FirstWindowCovering(9), 0);
  EXPECT_EQ(w.LastWindowCovering(9), 4);
  EXPECT_EQ(w.FirstWindowCovering(10), 1);  // window 0 ends at 10
  EXPECT_EQ(w.FirstWindowCovering(11), 1);
  EXPECT_EQ(w.FirstWindowCovering(12), 2);
}

TEST(WindowTest, PanesPerWindow) {
  EXPECT_EQ((WindowSpec{10, 2}).PanesPerWindow(), 5);
  EXPECT_EQ((WindowSpec{10, 3}).PanesPerWindow(), 4);  // rounded up
  EXPECT_EQ((WindowSpec{10, 10}).PanesPerWindow(), 1);  // tumbling
}

TEST(WindowTest, Expiration) {
  WindowSpec w{4, 1};
  // Fig. 6(b): with length 4, a1 is expired once b5 arrives.
  EXPECT_TRUE(w.Expired(1, 5));
  EXPECT_FALSE(w.Expired(2, 5));
  EXPECT_FALSE(w.Expired(1, 4));
}

class WindowSweep
    : public ::testing::TestWithParam<std::pair<Duration, Duration>> {};

TEST_P(WindowSweep, CoverageIsConsistent) {
  const auto [length, slide] = GetParam();
  WindowSpec w{length, slide};
  ASSERT_TRUE(w.Valid());
  for (Timestamp t = 0; t < 4 * length; ++t) {
    const WindowId lo = w.FirstWindowCovering(t);
    const WindowId hi = w.LastWindowCovering(t);
    ASSERT_LE(lo, hi);
    // Every window in [lo, hi] contains t; the neighbors do not.
    for (WindowId j = lo; j <= hi; ++j) {
      ASSERT_GE(t, w.WindowStart(j));
      ASSERT_LT(t, w.WindowEnd(j));
    }
    // Neighbors do not contain t (windows below 0 do not exist: lo is
    // clamped, so the left neighbor check only applies when lo > 0).
    if (lo > 0) ASSERT_GE(t, w.WindowEnd(lo - 1));
    ASSERT_LT(t, w.WindowStart(hi + 1));
    // Expiration agrees with window coverage: start s expired relative to
    // t iff no window contains both.
    for (Timestamp s = 0; s <= t; ++s) {
      const bool shares_window = w.LastWindowCovering(s) >= lo;
      ASSERT_EQ(!w.Expired(s, t), shares_window)
          << "s=" << s << " t=" << t << " len=" << length << " sl=" << slide;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSweep,
    ::testing::Values(std::pair<Duration, Duration>{4, 1},
                      std::pair<Duration, Duration>{10, 2},
                      std::pair<Duration, Duration>{10, 3},
                      std::pair<Duration, Duration>{7, 7},
                      std::pair<Duration, Duration>{12, 5}));

}  // namespace
}  // namespace sharon
