// Tests for the TX / LR / EC stream generators and the workload generator:
// strict timestamp order, configured rates and cardinalities, the LR rate
// ramp, and assumption-3 compliance of generated workloads.

#include <gtest/gtest.h>

#include <set>

#include "src/streamgen/ecommerce.h"
#include "src/streamgen/linear_road.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"

namespace sharon {
namespace {

void ExpectStrictOrder(const Scenario& s) {
  for (size_t i = 1; i < s.events.size(); ++i) {
    ASSERT_LT(s.events[i - 1].time, s.events[i].time) << "at index " << i;
  }
}

TEST(TaxiGenTest, RespectsConfig) {
  TaxiConfig cfg;
  cfg.num_streets = 8;
  cfg.num_vehicles = 5;
  cfg.events_per_second = 200;
  cfg.duration = Minutes(2);
  Scenario s = GenerateTaxi(cfg);
  ExpectStrictOrder(s);
  EXPECT_EQ(s.types.size(), 8u);
  EXPECT_NEAR(s.EventsPerSecond(), 200, 20);
  std::set<AttrValue> vehicles;
  for (const Event& e : s.events) {
    ASSERT_LT(e.type, 8u);
    vehicles.insert(e.attrs[0]);
  }
  EXPECT_LE(vehicles.size(), 5u);
  EXPECT_GE(vehicles.size(), 2u);
}

TEST(TaxiGenTest, DeterministicUnderSeed) {
  TaxiConfig cfg;
  cfg.duration = Minutes(1);
  Scenario a = GenerateTaxi(cfg);
  Scenario b = GenerateTaxi(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i].time, b.events[i].time);
    ASSERT_EQ(a.events[i].type, b.events[i].type);
  }
}

TEST(TaxiGenTest, ZipfSkewsStreetPopularity) {
  TaxiConfig cfg;
  cfg.duration = Minutes(5);
  cfg.zipf_s = 1.2;
  Scenario s = GenerateTaxi(cfg);
  TypeRates rates = EstimateRates(s);
  // The hottest street should be clearly hotter than the coldest.
  double hottest = 0, coldest = 1e18;
  for (EventTypeId t = 0; t < cfg.num_streets; ++t) {
    hottest = std::max(hottest, rates.Of(t));
    coldest = std::min(coldest, rates.Of(t));
  }
  EXPECT_GT(hottest, 2 * coldest);
}

TEST(LinearRoadGenTest, RateRampsUp) {
  LinearRoadConfig cfg;
  cfg.start_rate = 50;
  cfg.end_rate = 2000;
  cfg.duration = Minutes(10);
  Scenario s = GenerateLinearRoad(cfg);
  ExpectStrictOrder(s);
  // Count events in the first and last fifth of the stream time.
  const Duration fifth = cfg.duration / 5;
  size_t first = 0, last = 0;
  for (const Event& e : s.events) {
    if (e.time < fifth) ++first;
    if (e.time >= cfg.duration - fifth) ++last;
  }
  EXPECT_GT(last, 5 * first) << "Linear Road rate must ramp up";
}

TEST(EcommerceGenTest, MatchesPaperParameters) {
  EcommerceConfig cfg;
  cfg.duration = Minutes(2);
  Scenario s = GenerateEcommerce(cfg);
  ExpectStrictOrder(s);
  EXPECT_EQ(s.types.size(), 50u);  // 50 items (§8.1)
  EXPECT_NEAR(s.EventsPerSecond(), 3000, 300);  // 3k events/s (§8.1)
  std::set<AttrValue> customers;
  for (const Event& e : s.events) customers.insert(e.attrs[0]);
  EXPECT_LE(customers.size(), 20u);  // 20 users (§8.1)
  EXPECT_GE(customers.size(), 10u);
}

TEST(WorkloadGenTest, PatternsAreDistinctTyped) {
  WorkloadGenConfig cfg;
  cfg.num_queries = 40;
  cfg.pattern_length = 6;
  Workload w = GenerateWorkload(cfg, /*num_types=*/20);
  ASSERT_EQ(w.size(), 40u);
  EXPECT_TRUE(w.Uniform());
  for (const Query& q : w.queries()) {
    EXPECT_EQ(q.pattern.length(), 6u);
    std::set<EventTypeId> uniq(q.pattern.types().begin(),
                               q.pattern.types().end());
    EXPECT_EQ(uniq.size(), q.pattern.length()) << "assumption 3 violated";
  }
}

TEST(WorkloadGenTest, ClustersShareSubPatterns) {
  WorkloadGenConfig cfg;
  cfg.num_queries = 8;
  cfg.pattern_length = 5;
  cfg.cluster_size = 4;
  Workload w = GenerateWorkload(cfg, 20);
  // Queries within a cluster slice the same backbone, so some contiguous
  // bigram must repeat across queries.
  std::set<std::pair<EventTypeId, EventTypeId>> bigrams;
  bool shared = false;
  for (const Query& q : w.queries()) {
    for (size_t i = 0; i + 1 < q.pattern.length(); ++i) {
      auto bg = std::make_pair(q.pattern.type(i), q.pattern.type(i + 1));
      if (!bigrams.insert(bg).second) shared = true;
    }
  }
  EXPECT_TRUE(shared);
}

TEST(WorkloadGenTest, PatternLengthCappedByAlphabet) {
  WorkloadGenConfig cfg;
  cfg.num_queries = 3;
  cfg.pattern_length = 50;
  Workload w = GenerateWorkload(cfg, 10);
  for (const Query& q : w.queries()) EXPECT_LE(q.pattern.length(), 10u);
}

}  // namespace
}  // namespace sharon
