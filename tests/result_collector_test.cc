// Unit tests for ResultCollector and the engine's chain-merging compile
// step (queries with identical segmentations share one chain).

#include <gtest/gtest.h>

#include "src/exec/engine.h"

namespace sharon {
namespace {

TEST(ResultCollectorTest, AccumulatesPerCell) {
  ResultCollector rc;
  AggState one = AggState::Identity();
  rc.Add(1, 2, 3, one);
  rc.Add(1, 2, 3, one);
  rc.Add(1, 2, 4, one);
  EXPECT_EQ(rc.Value(1, 2, 3, AggFunction::kCountStar), 2);
  EXPECT_EQ(rc.Value(1, 2, 4, AggFunction::kCountStar), 1);
  EXPECT_EQ(rc.Value(9, 9, 9, AggFunction::kCountStar), 0);
  EXPECT_EQ(rc.size(), 2u);
}

TEST(ResultCollectorTest, ZeroDeltasAreDropped) {
  ResultCollector rc;
  rc.Add(1, 2, 3, AggState::Zero());
  EXPECT_EQ(rc.size(), 0u);
}

TEST(ResultCollectorTest, NegativeGroupValues) {
  ResultCollector rc;
  rc.Add(0, 0, -42, AggState::Identity());
  EXPECT_EQ(rc.Value(0, 0, -42, AggFunction::kCountStar), 1);
}

Query MakeQuery(std::vector<EventTypeId> pattern,
                AggSpec agg = AggSpec::CountStar()) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = agg;
  q.window = {100, 10};
  return q;
}

TEST(CompileTest, IdenticalFullySharedQueriesMergeChains) {
  Workload w;
  w.Add(MakeQuery({0, 1, 2}));
  w.Add(MakeQuery({0, 1, 2}));
  w.Add(MakeQuery({0, 1, 2}));
  SharingPlan plan = {{Pattern({0, 1, 2}), {0, 1, 2}}};
  CompiledEngine compiled;
  ASSERT_EQ(CompilePlan(w, plan, &compiled), "");
  // One shared counter, one chain serving all three queries.
  ASSERT_EQ(compiled.counters.size(), 1u);
  ASSERT_EQ(compiled.chains.size(), 1u);
  EXPECT_EQ(compiled.chains[0].queries.size(), 3u);
}

TEST(CompileTest, PrivateGapsPreventChainMerge) {
  Workload w;
  w.Add(MakeQuery({0, 1, 2, 3}));
  w.Add(MakeQuery({0, 1, 2, 3}));
  SharingPlan plan = {{Pattern({1, 2}), {0, 1}}};
  CompiledEngine compiled;
  ASSERT_EQ(CompilePlan(w, plan, &compiled), "");
  // Shared middle counter + per-query private prefix/suffix counters.
  ASSERT_EQ(compiled.chains.size(), 2u);
  size_t shared = 0;
  for (const auto& c : compiled.counters) shared += c.shared;
  EXPECT_EQ(shared, 1u);
  EXPECT_EQ(compiled.counters.size(), 5u);  // 1 shared + 2x(prefix+suffix)
}

TEST(CompileTest, DifferentAggTargetsInSharedPatternSplitCounters) {
  // Two queries share (0,1) but aggregate different attributes of type 1:
  // their projections differ, so they need separate counters.
  Workload w;
  w.Add(MakeQuery({0, 1}, AggSpec::Of(AggFunction::kSum, 1, 0)));
  w.Add(MakeQuery({0, 1}, AggSpec::Of(AggFunction::kSum, 1, 1)));
  SharingPlan plan = {{Pattern({0, 1}), {0, 1}}};
  CompiledEngine compiled;
  ASSERT_EQ(CompilePlan(w, plan, &compiled), "");
  EXPECT_EQ(compiled.counters.size(), 2u);
}

TEST(CompileTest, CountStarProjectionEnablesCrossAggSharing) {
  // The shared segment does not contain either aggregation target: both
  // queries project it to COUNT(*) and share one counter.
  Workload w;
  w.Add(MakeQuery({0, 1, 2}, AggSpec::Of(AggFunction::kSum, 2, 0)));
  w.Add(MakeQuery({0, 1, 3}, AggSpec::Of(AggFunction::kMax, 3, 1)));
  SharingPlan plan = {{Pattern({0, 1}), {0, 1}}};
  CompiledEngine compiled;
  ASSERT_EQ(CompilePlan(w, plan, &compiled), "");
  size_t shared = 0;
  for (const auto& c : compiled.counters) shared += c.shared;
  EXPECT_EQ(shared, 1u);
  EXPECT_EQ(compiled.counters.size(), 3u);  // shared (0,1) + suffixes
}

TEST(ProjectSpecTest, Projection) {
  AggSpec sum = AggSpec::Of(AggFunction::kSum, 5, 0);
  EXPECT_EQ(ProjectSpec(sum, Pattern({5, 6})), sum);
  EXPECT_EQ(ProjectSpec(sum, Pattern({6, 7})), AggSpec::CountStar());
  EXPECT_EQ(ProjectSpec(AggSpec::CountStar(), Pattern({5, 6})),
            AggSpec::CountStar());
}

}  // namespace
}  // namespace sharon
