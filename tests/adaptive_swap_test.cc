// Differential oracle suite for adaptive re-optimization with
// watermark-aligned plan hot-swap (src/adaptive/ + src/runtime/plan_swap.h).
//
// The discipline mirrors tests/watermark_diff_test.cc: every relaxation is
// checked against an exact reference that never relaxed it. Here the
// relaxation is "the sharing plan may change mid-stream": the drift stream
// runs through the adaptive runtime (PlanManager re-optimizing and
// hot-swapping), the sorted stream runs through the independent per-window
// DP oracle (src/twostep/reference.h), and with >= 1 observed swap the
// finalized cells must be bit-identical for every (query, window, group)
// at 1/2/8 shards — a swap is allowed to change HOW cells are computed,
// never WHAT they contain.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/adaptive/plan_manager.h"
#include "src/planner/optimizer.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/drift.h"
#include "src/streamgen/rates.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

using adaptive::PlanManager;
using adaptive::PlanManagerOptions;
using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

CellMap CellsOf(const ResultCollector& collector) {
  CellMap cells;
  collector.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

CellMap CellsOf(const ShardedRuntime& rt) {
  CellMap cells;
  rt.results().ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

void ExpectBitIdentical(const CellMap& expected, const CellMap& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, state] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end())
        << label << ": missing cell query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
    EXPECT_EQ(state, it->second)
        << label << ": cell differs at query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
  }
}

struct AdaptiveCase {
  DriftConfig config;
  Workload workload;
  std::vector<Event> events;  // sorted
  SharingPlan initial_plan;   // optimized for phase-0 rates only
  CellMap oracle;
};

AdaptiveCase MakeDriftCase(uint32_t num_phases = 2, uint64_t seed = 11) {
  AdaptiveCase c;
  c.config.num_types = 8;
  c.config.num_groups = 12;
  c.config.events_per_second = 600;
  c.config.phase_length = Seconds(20);
  c.config.num_phases = num_phases;
  c.config.seed = seed;
  Scenario s = GenerateDrift(c.config);

  const WindowSpec window{Seconds(10), Seconds(4)};  // slide ∤ length
  c.workload = DriftWorkload(c.config, window, /*anchors_per_side=*/6,
                             /*bridges=*/3);
  c.events = std::move(s.events);

  // The static planner only ever sees phase 0: its plan shares the
  // cluster that is about to go cold.
  CostModel cm(RatesOfSlice(c.events, 0, c.config.phase_length,
                            c.config.num_types));
  c.initial_plan = OptimizeGreedy(c.workload, cm).plan;
  c.oracle = CellsOf(ReferenceResults(c.workload, c.events));
  return c;
}

PlanManagerOptions FastManagerOptions() {
  PlanManagerOptions opts;
  opts.epoch = Seconds(4);
  opts.window_epochs = 2;
  opts.drift_threshold = 0.3;
  opts.hysteresis = 0.05;
  return opts;
}

/// The drift scenario must actually flip the optimal plan — otherwise the
/// whole suite would pass vacuously with zero swaps.
TEST(AdaptiveDrift, PhaseFlipChangesTheOptimalPlan) {
  AdaptiveCase c = MakeDriftCase();
  ASSERT_FALSE(c.initial_plan.empty());
  // Phase-1 rates: re-optimize with the hot cluster flipped.
  const Timestamp flip = c.config.phase_length;
  CostModel cm1(RatesOfSlice(c.events, flip, 2 * flip, c.config.num_types));
  SharingPlan fresh = OptimizeGreedy(c.workload, cm1).plan;
  EXPECT_NE(fresh, c.initial_plan);
  // And the stale plan is measurably worse under the new rates.
  EXPECT_GT(PlanScore(fresh, c.workload, cm1),
            PlanScore(c.initial_plan, c.workload, cm1));
}

void RunAdaptiveDifferentialOne(const AdaptiveCase& c,
                                const std::vector<Event>& arrivals,
                                Duration lateness, uint64_t min_swaps,
                                const PlanManagerOptions& popts, size_t shards,
                                size_t producers) {
  RuntimeOptions opts;
  opts.num_shards = shards;
  opts.ingest_partitions = producers;
  // Tight queues: ingest stays backpressure-bound, so the manager's
  // epoch clock (driven by ingested stream time) cannot run a whole
  // phase ahead of the workers. With deep queues on a small host, every
  // post-swap evaluation would find the previous swap still in flight
  // and the swap SCHEDULE — not its correctness — would degenerate.
  opts.batch_size = 32;
  opts.queue_capacity = 2;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = lateness;
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();

  // Multi-producer split ingest: data events round-robin across the
  // partitions, punctuations broadcast to every partition (the swap
  // markers then align per channel inside each shard). The cells must
  // come out bit-identical to the producers=1 pass of the same case.
  PlanManager mgr(c.workload, &rt, c.initial_plan, popts);
  rt.Start();
  size_t rr = 0;
  for (const Event& e : arrivals) {
    if (IsWatermark(e)) {
      for (size_t p = 0; p < producers; ++p) mgr.Ingest(e, p);
    } else {
      mgr.Ingest(e, rr++ % producers);
    }
  }
  rt.Finish();

  const std::string label = "adaptive shards=" + std::to_string(shards) +
                            " producers=" + std::to_string(producers) +
                            " lateness=" + std::to_string(lateness);
  EXPECT_GE(mgr.stats().swaps_accepted, min_swaps) << label;

  // RuntimeStats reports every swap with a per-swap stall figure, and
  // every boundary sits on the workload's window-close grid.
  const runtime::RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.CompletedSwaps(), mgr.stats().swaps_accepted) << label;
  const WindowSpec& w = c.workload.window();
  for (const runtime::PlanSwapStats& swap : stats.plan_swaps) {
    EXPECT_EQ(swap.shards_completed, shards) << label;
    EXPECT_GE(swap.max_dual_run_seconds, 0.0) << label;
    EXPECT_GT(swap.boundary, 0) << label;
    EXPECT_EQ((swap.boundary - w.length) % w.slide, 0)
        << label << ": boundary off the window-close grid";
  }

  // The heart of the suite: bit-identical finalized cells, all sealed.
  ExpectBitIdentical(c.oracle, CellsOf(rt), label);
  for (const auto& [key, state] : c.oracle) {
    EXPECT_TRUE(rt.results().Finalized(std::get<0>(key), std::get<1>(key)))
        << label;
  }
  EXPECT_EQ(stats.TotalLateDropped(), 0u) << label;
}

void RunAdaptiveDifferential(const AdaptiveCase& c, Duration lateness,
                             uint64_t min_swaps,
                             const PlanManagerOptions& popts) {
  ASSERT_FALSE(c.oracle.empty());
  DisorderConfig inj;
  inj.max_lateness = lateness;
  inj.punctuation_period = Seconds(1);
  inj.seed = 0xabadcafe + static_cast<uint64_t>(lateness);
  const std::vector<Event> arrivals = InjectDisorder(c.events, inj);

  for (size_t shards : {1u, 2u, 8u}) {
    for (size_t producers : {1u, 3u}) {
      RunAdaptiveDifferentialOne(c, arrivals, lateness, min_swaps, popts,
                                 shards, producers);
    }
  }
}

TEST(AdaptiveDrift, SortedStreamSwapMatchesOracle) {
  AdaptiveCase c = MakeDriftCase();
  RunAdaptiveDifferential(c, /*lateness=*/0, /*min_swaps=*/1,
                          FastManagerOptions());
}

TEST(AdaptiveDrift, DisorderedStreamSwapMatchesOracle) {
  AdaptiveCase c = MakeDriftCase();
  RunAdaptiveDifferential(c, /*lateness=*/Seconds(4), /*min_swaps=*/1,
                          FastManagerOptions());
}

// Repeated flips force repeated swaps; exactly-once must survive a swap
// SCHEDULE, not just a single handoff.
TEST(AdaptiveDrift, RepeatedFlipsRepeatedSwapsStayExact) {
  AdaptiveCase c = MakeDriftCase(/*num_phases=*/4, /*seed=*/23);
  RunAdaptiveDifferential(c, /*lateness=*/Seconds(2), /*min_swaps=*/2,
                          FastManagerOptions());
}

// An in-order runtime has no watermarks to drain the old engines with, so
// the swap must be refused — visibly, not silently dropped.
TEST(AdaptiveSwap, RefusedWithoutDisorderPolicy) {
  AdaptiveCase c = MakeDriftCase();
  RuntimeOptions opts;
  opts.num_shards = 2;
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  std::string error;
  CompiledPlanHandle handle = CompilePlanShared(c.workload, {}, &error);
  ASSERT_TRUE(handle) << error;
  ShardedRuntime::SwapRequest req = rt.RequestPlanSwap(handle);
  EXPECT_FALSE(req.accepted);
  EXPECT_NE(req.reason.find("disorder"), std::string::npos) << req.reason;
  rt.Run(c.events, 0);
  EXPECT_EQ(rt.stats().CompletedSwaps(), 0u);
}

// A second swap while one is in flight is refused (one handoff at a time);
// the refusal is the signal PlanManager uses to retry next epoch.
TEST(AdaptiveSwap, SecondSwapWhileInFlightIsRefused) {
  AdaptiveCase c = MakeDriftCase();
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = Seconds(1);
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  std::string error;
  CompiledPlanHandle handle = CompilePlanShared(c.workload, {}, &error);
  ASSERT_TRUE(handle) << error;

  rt.Start();
  // Ingest a prefix so the boundary is meaningful, then request twice
  // back-to-back: the shards cannot have retired the first swap yet
  // because no watermark past its boundary has been broadcast.
  for (size_t i = 0; i < 1000 && i < c.events.size(); ++i) {
    rt.Ingest(c.events[i]);
  }
  ShardedRuntime::SwapRequest first = rt.RequestPlanSwap(handle);
  ASSERT_TRUE(first.accepted) << first.reason;
  ShardedRuntime::SwapRequest second = rt.RequestPlanSwap(handle);
  EXPECT_FALSE(second.accepted);
  EXPECT_NE(second.reason.find("in flight"), std::string::npos)
      << second.reason;
  for (size_t i = 1000; i < c.events.size(); ++i) rt.Ingest(c.events[i]);
  rt.Finish();
  // The accepted swap completed on every shard and results stay exact.
  ASSERT_EQ(rt.stats().CompletedSwaps(), 1u);
  ExpectBitIdentical(c.oracle, CellsOf(rt), "in-flight refusal");
}

// Regression for the partial-stage unwind in RequestPlanSwap: when a late
// shard refuses the staged command, the runtime must cancel the commands
// already pushed to the earlier shards — a missed cancel leaves a shard
// with swap_in_flight permanently set (its marker is never broadcast) and
// every later control operation refused forever. The soak harness flushes
// this class of bug only probabilistically; this pins it deterministically
// by planting a bare checkpoint command on the LAST shard so that shard —
// and only that shard — refuses the swap.
TEST(AdaptiveSwap, ShardRefusalUnwindsStagedCommands) {
  AdaptiveCase c = MakeDriftCase();
  RuntimeOptions opts;
  opts.num_shards = 3;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = Seconds(1);
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  std::string error;
  CompiledPlanHandle handle = CompilePlanShared(c.workload, {}, &error);
  ASSERT_TRUE(handle) << error;

  rt.Start();
  for (size_t i = 0; i < 1000 && i < c.events.size(); ++i) {
    rt.Ingest(c.events[i]);
  }
  // Plant a checkpoint command directly on the last shard (no marker, no
  // runtime-level job): shards 0 and 1 will accept the swap command, the
  // last will refuse it with checkpoint_in_flight.
  const size_t last = opts.num_shards - 1;
  runtime::CheckpointCommand planted;
  planted.id = 1;
  planted.num_shards = opts.num_shards;
  planted.path = ::testing::TempDir() + "sharon_unwind_planted.bin";
  ASSERT_TRUE(rt.shard_for_test(last).PushCheckpointCommand(planted));

  const ShardedRuntime::SwapRequest refused = rt.RequestPlanSwap(handle);
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.code, runtime::OpRefusal::kShardRefused);
  // The unwind must leave NO shard armed: the staged commands of the
  // earlier shards were cancelled before any marker was broadcast.
  for (size_t i = 0; i < opts.num_shards; ++i) {
    EXPECT_FALSE(rt.shard_for_test(i).swap_in_flight()) << "shard " << i;
  }

  // Un-plant the checkpoint; the very next swap must go through and the
  // stream must stay exact end to end.
  rt.shard_for_test(last).CancelCheckpointCommand();
  const ShardedRuntime::SwapRequest accepted = rt.RequestPlanSwap(handle);
  ASSERT_TRUE(accepted.accepted) << accepted.reason;
  for (size_t i = 1000; i < c.events.size(); ++i) rt.Ingest(c.events[i]);
  rt.Finish();
  EXPECT_EQ(rt.stats().CompletedSwaps(), 1u);
  ExpectBitIdentical(c.oracle, CellsOf(rt), "post-unwind swap");
}

// The swap rejects a plan compiled for a different workload outright.
TEST(AdaptiveSwap, RefusesForeignPlan) {
  AdaptiveCase c = MakeDriftCase();
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.disorder.enabled = true;
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();

  Workload other;
  Query q;
  q.pattern = Pattern({0, 1});
  q.agg = AggSpec::CountStar();
  q.window = {Seconds(3), Seconds(3)};  // different window grid
  q.partition_attr = 0;
  other.Add(q);
  std::string error;
  CompiledPlanHandle foreign = CompilePlanShared(other, {}, &error);
  ASSERT_TRUE(foreign) << error;
  ShardedRuntime::SwapRequest req = rt.RequestPlanSwap(foreign);
  EXPECT_FALSE(req.accepted);
  EXPECT_NE(req.reason.find("different workload"), std::string::npos)
      << req.reason;
}

}  // namespace
}  // namespace sharon
