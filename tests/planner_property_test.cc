// Randomized properties of the optimizer machinery on random conflict
// graphs:
//  - GWMIN returns an independent set meeting its Eq. 10 bound;
//  - graph reduction never changes the optimum (Lemmas 1-2);
//  - the plan finder's optimum equals exhaustive search's;
//  - plan finder plans are always valid (independent sets).
//
// Random graphs are built from random workloads so conflicts come from
// real pattern overlaps, not synthetic adjacency.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/graph/gwmin.h"
#include "src/graph/reduction.h"
#include "src/planner/plan_finder.h"
#include "src/sharing/ccspan.h"

namespace sharon {
namespace {

struct RandomGraphCase {
  Workload workload;
  std::vector<Candidate> candidates;
  SharonGraph graph;
};

RandomGraphCase MakeRandomGraph(uint64_t seed) {
  Rng rng(seed);
  RandomGraphCase c;
  const uint32_t num_types = 6 + static_cast<uint32_t>(rng.Below(4));
  const uint32_t num_queries = 4 + static_cast<uint32_t>(rng.Below(5));

  std::vector<EventTypeId> backbone(num_types);
  for (uint32_t i = 0; i < num_types; ++i) backbone[i] = i;
  for (uint32_t i = num_types - 1; i > 0; --i) {
    uint32_t j = static_cast<uint32_t>(rng.Below(i + 1));
    std::swap(backbone[i], backbone[j]);
  }
  for (uint32_t qi = 0; qi < num_queries; ++qi) {
    const uint32_t len =
        2 + static_cast<uint32_t>(rng.Below(num_types - 2));
    const uint32_t off = static_cast<uint32_t>(rng.Below(num_types - len + 1));
    Query q;
    q.pattern = Pattern(std::vector<EventTypeId>(
        backbone.begin() + off, backbone.begin() + off + len));
    q.agg = AggSpec::CountStar();
    q.window = {100, 10};
    c.workload.Add(std::move(q));
  }
  c.candidates = FindSharableCandidates(c.workload);
  // Deterministic pseudo-random positive weights.
  c.graph = SharonGraph::Build(
      c.workload, c.candidates, [seed](const Candidate& cand) {
        Rng wrng(seed ^ PatternHash()(cand.pattern));
        return 1.0 + static_cast<double>(wrng.Below(100));
      });
  return c;
}

bool IsIndependent(const SharonGraph& g, const std::vector<VertexId>& vs) {
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      if (g.HasEdge(vs[i], vs[j])) return false;
    }
  }
  return true;
}

class PlannerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerProperty, GwminMeetsGuaranteedWeight) {
  RandomGraphCase c = MakeRandomGraph(GetParam());
  if (c.graph.num_vertices() == 0) GTEST_SKIP();
  GwminResult r = RunGwmin(c.graph);
  EXPECT_TRUE(IsIndependent(c.graph, r.independent_set));
  EXPECT_GE(r.weight, c.graph.GuaranteedWeight() - 1e-9);
}

TEST_P(PlannerProperty, FinderMatchesExhaustiveAndIsValid) {
  RandomGraphCase c = MakeRandomGraph(GetParam());
  if (c.graph.num_vertices() == 0 || c.graph.num_vertices() > 18) {
    GTEST_SKIP();
  }
  PlanFinderResult finder = FindOptimalPlan(c.graph);
  PlanFinderResult exhaustive = ExhaustiveSearch(c.graph);
  ASSERT_TRUE(finder.completed);
  ASSERT_TRUE(exhaustive.completed);
  EXPECT_TRUE(IsIndependent(c.graph, finder.best));
  EXPECT_DOUBLE_EQ(finder.best_score, exhaustive.best_score);
  // The finder visits only valid plans; exhaustive visits all subsets.
  EXPECT_LE(finder.plans_considered, exhaustive.plans_considered);
}

TEST_P(PlannerProperty, ReductionPreservesTheOptimum) {
  RandomGraphCase c = MakeRandomGraph(GetParam());
  if (c.graph.num_vertices() == 0 || c.graph.num_vertices() > 18) {
    GTEST_SKIP();
  }
  PlanFinderResult before = FindOptimalPlan(c.graph);
  SharonGraph reduced = c.graph;
  ReductionResult red = ReduceGraph(reduced);
  PlanFinderResult after = FindOptimalPlan(reduced);
  double reduced_score =
      after.best_score + reduced.WeightOf(red.conflict_free);
  ASSERT_TRUE(before.completed);
  ASSERT_TRUE(after.completed);
  EXPECT_DOUBLE_EQ(before.best_score, reduced_score)
      << "reduction changed the optimum (pruned "
      << red.pruned_ridden.size() << ", free " << red.conflict_free.size()
      << ")";
}

TEST_P(PlannerProperty, GwminNeverBeatsTheOptimum) {
  RandomGraphCase c = MakeRandomGraph(GetParam());
  if (c.graph.num_vertices() == 0 || c.graph.num_vertices() > 18) {
    GTEST_SKIP();
  }
  GwminResult greedy = RunGwmin(c.graph);
  PlanFinderResult optimal = FindOptimalPlan(c.graph);
  EXPECT_LE(greedy.weight, optimal.best_score + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerProperty,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace sharon
