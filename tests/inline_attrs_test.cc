// InlineAttrs / inline-attr Event tests (src/common/inline_attrs.h):
// inline storage for the shipped schemas, heap spill beyond the inline
// capacity, value semantics across copy/move, and the debug-assert
// contract of Event::attr on out-of-schema reads.

#include "src/common/inline_attrs.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/event.h"

namespace sharon {
namespace {

TEST(InlineAttrsTest, InlineBasics) {
  InlineAttrs a;
  EXPECT_TRUE(a.empty());
  a = {7, -3};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 7);
  EXPECT_EQ(a[1], -3);
  EXPECT_FALSE(a.spilled());
  a.push_back(9);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 9);
  EXPECT_FALSE(a.spilled());
}

TEST(InlineAttrsTest, SpillsPastInlineCapacity) {
  InlineAttrs a;
  for (int i = 0; i < 10; ++i) a.push_back(i * 11);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_TRUE(a.spilled());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a[static_cast<size_t>(i)], i * 11);
  // Assignment back down to an inline-sized payload reuses the spill
  // buffer; values are what matters.
  a = {1, 2};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 2);
}

TEST(InlineAttrsTest, CopyAndMoveSemantics) {
  InlineAttrs inline_src = {1, 2, 3};
  InlineAttrs c1 = inline_src;
  EXPECT_EQ(c1, inline_src);

  InlineAttrs spill_src;
  for (int i = 0; i < 8; ++i) spill_src.push_back(i);
  InlineAttrs c2 = spill_src;  // deep copy
  ASSERT_TRUE(c2.spilled());
  EXPECT_EQ(c2, spill_src);
  c2[0] = 99;
  EXPECT_EQ(spill_src[0], 0) << "copies must not alias";

  InlineAttrs m = std::move(spill_src);
  EXPECT_EQ(m.size(), 8u);
  EXPECT_EQ(m[7], 7);
  EXPECT_TRUE(spill_src.empty());  // NOLINT(bugprone-use-after-move)

  InlineAttrs m2;
  m2 = std::move(m);
  EXPECT_EQ(m2.size(), 8u);
  InlineAttrs m3;
  m3 = std::move(c1);  // inline move
  EXPECT_EQ(m3.size(), 3u);
  EXPECT_EQ(m3[2], 3);
}

TEST(InlineAttrsTest, EventsAreFlatAndCheap) {
  // The whole point: a shipped-schema event is one flat block (time +
  // type + inline attrs), so batches are contiguous and copies don't
  // allocate. Guard the size so attrs growth is a conscious decision.
  static_assert(InlineAttrs::kInlineCapacity >= 2,
                "every shipped schema carries two attributes");
  EXPECT_LE(sizeof(Event), 64u);
  std::vector<Event> batch(3);
  batch[0].attrs = {5, 6};
  batch[1] = batch[0];
  EXPECT_EQ(batch[1].attrs[0], 5);
}

TEST(EventAttrTest, InRangeReads) {
  Event e;
  e.attrs = {42, 7};
  EXPECT_EQ(e.attr(0), 42);
  EXPECT_EQ(e.attr(1), 7);
}

#ifdef NDEBUG
TEST(EventAttrTest, OutOfRangeReadsZeroInRelease) {
  // Release keeps the seed's tolerant degrade-to-zero; debug/ASan builds
  // assert instead (see the death test below).
  Event e;
  e.attrs = {42};
  EXPECT_EQ(e.attr(5), 0);
  EXPECT_EQ(e.attr(kNoAttr), 0);
}
#else
TEST(EventAttrDeathTest, OutOfRangeAssertsInDebug) {
  // A query grouping or aggregating on an attribute the stream does not
  // carry is a schema bug: it must surface at the offending event, not
  // silently aggregate zeros (the seed behaviour this PR fixes).
  Event e;
  e.attrs = {42};
  EXPECT_DEATH((void)e.attr(5), "schema");
  EXPECT_DEATH((void)e.attr(kNoAttr), "schema");
}
#endif

}  // namespace
}  // namespace sharon
