// Sharded runtime tests. The load-bearing property is DETERMINISM: for
// any shard count, every (query, window, group) aggregate must be
// bit-identical to the single-threaded Engine / MultiEngine — sharding by
// group is a pure repartitioning of independent state (DESIGN.md). Plus
// backpressure/stat accounting and the ingest lifecycle.

#include "src/runtime/sharded_runtime.h"

#include <gtest/gtest.h>

#include <map>

#include "src/planner/optimizer.h"
#include "src/query/parser.h"
#include "src/streamgen/ecommerce.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"

namespace sharon {
namespace {

using runtime::RuntimeOptions;
using runtime::RuntimeStats;
using runtime::ShardedRuntime;
using runtime::ShardIndexFor;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

CellMap CellsOf(const ResultCollector& collector) {
  CellMap cells;
  collector.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

CellMap CellsOf(const ShardedRuntime& rt) {
  CellMap cells;
  rt.results().ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

void ExpectBitIdentical(const CellMap& expected, const CellMap& actual,
                        const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, state] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end())
        << label << ": missing cell query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
    EXPECT_EQ(state, it->second)
        << label << ": cell differs at query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
  }
}

RuntimeOptions Opts(size_t shards, size_t batch = 64, size_t queue = 8) {
  RuntimeOptions o;
  o.num_shards = shards;
  o.batch_size = batch;
  o.queue_capacity = queue;
  return o;
}

// --- determinism: taxi, uniform workload, shared plan ---------------------

TEST(ShardedRuntimeDeterminism, TaxiMatchesEngineAtAnyShardCount) {
  TaxiConfig cfg;
  cfg.num_streets = 12;
  cfg.num_vehicles = 24;
  cfg.events_per_second = 1000;
  cfg.duration = Minutes(1);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 8;
  wcfg.pattern_length = 5;
  wcfg.cluster_size = 4;
  wcfg.window = {Seconds(30), Seconds(10)};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  OptimizerConfig ocfg;
  ocfg.expand = false;
  OptimizerResult opt = OptimizeSharon(w, cm, ocfg);

  Engine reference(w, opt.plan);
  ASSERT_TRUE(reference.ok()) << reference.error();
  reference.Run(s.events, s.duration);
  CellMap expected = CellsOf(reference.results());
  ASSERT_FALSE(expected.empty());

  for (size_t shards : {1u, 2u, 8u}) {
    ShardedRuntime rt(w, opt.plan, Opts(shards));
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Run(s.events, s.duration);
    ExpectBitIdentical(expected, CellsOf(rt),
                       ("taxi shards=" + std::to_string(shards)).c_str());
  }
}

// --- determinism: e-commerce, non-uniform workload (MultiEngine) ----------

TEST(ShardedRuntimeDeterminism, EcommerceMultiWindowMatchesMultiEngine) {
  EcommerceConfig cfg;
  cfg.num_items = 20;
  cfg.num_customers = 12;
  cfg.events_per_second = 800;
  cfg.duration = Minutes(2);
  Scenario s = GenerateEcommerce(cfg);

  // Different windows and aggregates, one common grouping attribute.
  Workload w;
  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 1 min SLIDE 20 sec",
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Adapter) "
           "WHERE [customer] WITHIN 1 min SLIDE 20 sec",
           "RETURN SUM(Case.price) PATTERN SEQ(Laptop, Case) "
           "WHERE [customer] WITHIN 2 min SLIDE 30 sec",
           "RETURN MAX(iPhone.price) PATTERN SEQ(iPhone, ScreenProtector) "
           "WHERE [customer] WITHIN 2 min SLIDE 30 sec",
       }) {
    ParseResult parsed = ParseQuery(text, s.types, s.schema);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    w.Add(parsed.query);
  }

  CostModel cm(EstimateRates(s));
  auto plan = PlanMultiEngine(w, cm);
  ASSERT_TRUE(plan->ok()) << plan->error;

  MultiEngine reference(plan);
  ASSERT_TRUE(reference.ok()) << reference.error();
  reference.Run(s.events, s.duration);

  // Enumerate reference cells with original query ids.
  CellMap expected;
  for (size_t seg = 0; seg < reference.engines().size(); ++seg) {
    const auto& originals = plan->segments[seg].original_ids;
    reference.engines()[seg]->results().ForEachCell(
        [&](const ResultKey& key, const AggState& state) {
          expected[{originals.at(key.query), key.window, key.group}] = state;
        });
  }
  ASSERT_FALSE(expected.empty());

  for (size_t shards : {1u, 2u, 8u}) {
    ShardedRuntime rt(w, plan, Opts(shards));
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Run(s.events, s.duration);
    ExpectBitIdentical(expected, CellsOf(rt),
                       ("ecommerce shards=" + std::to_string(shards)).c_str());
  }
}

// --- routing and merged lookups -------------------------------------------

TEST(ShardedRuntimeTest, ValueRoutesToOwningShard) {
  TaxiConfig cfg;
  cfg.num_vehicles = 16;
  cfg.events_per_second = 500;
  cfg.duration = Seconds(40);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 4;
  wcfg.pattern_length = 3;
  wcfg.window = {Seconds(20), Seconds(5)};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  Engine reference(w);
  ASSERT_TRUE(reference.ok());
  reference.Run(s.events, s.duration);

  ShardedRuntime rt(w, SharingPlan{}, Opts(4));
  ASSERT_TRUE(rt.ok()) << rt.error();
  rt.Run(s.events, s.duration);

  reference.results().ForEachCell([&](const ResultKey& key,
                                      const AggState& state) {
    // Merged lookup agrees with the single-threaded collector...
    EXPECT_EQ(rt.Get(key.query, key.window, key.group), state);
    // ...and the cell lives on exactly the shard the partitioner names.
    const size_t owner = ShardIndexFor(key.group, rt.num_shards());
    EXPECT_EQ(rt.results().OwnerOf(key.group).index(), owner);
  });
}

// --- lifecycle, backpressure and stats ------------------------------------

TEST(ShardedRuntimeTest, IncrementalIngestMatchesRun) {
  TaxiConfig cfg;
  cfg.num_vehicles = 8;
  cfg.events_per_second = 400;
  cfg.duration = Seconds(30);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 4;
  wcfg.pattern_length = 3;
  wcfg.window = {Seconds(10), Seconds(5)};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  ShardedRuntime whole(w, SharingPlan{}, Opts(2));
  ASSERT_TRUE(whole.ok());
  whole.Run(s.events, s.duration);

  ShardedRuntime incremental(w, SharingPlan{}, Opts(2));
  ASSERT_TRUE(incremental.ok());
  incremental.Start();
  for (const Event& e : s.events) incremental.Ingest(e);
  incremental.Finish();

  ExpectBitIdentical(CellsOf(whole), CellsOf(incremental), "incremental");
}

TEST(ShardedRuntimeTest, BackpressureConservesEvents) {
  TaxiConfig cfg;
  cfg.num_vehicles = 32;
  cfg.events_per_second = 2000;
  cfg.duration = Seconds(30);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 4;
  wcfg.pattern_length = 4;
  wcfg.window = {Seconds(10), Seconds(5)};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  // Tiny queues and batches force the producer through the stall path.
  ShardedRuntime rt(w, SharingPlan{}, Opts(4, /*batch=*/8, /*queue=*/2));
  ASSERT_TRUE(rt.ok());
  rt.Run(s.events, s.duration);

  RuntimeStats stats = rt.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.events_ingested, s.events.size());
  uint64_t processed = 0;
  for (const auto& shard : stats.shards) {
    processed += shard.events;
    EXPECT_LE(shard.AvgBatchOccupancy(), 8.0);
  }
  EXPECT_EQ(processed, s.events.size());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.EventsPerSecond(), 0.0);
  EXPECT_GT(stats.AvgBatchOccupancy(), 0.0);
}

TEST(ShardedRuntimeTest, RunStatsFollowEngineConventions) {
  TaxiConfig cfg;
  cfg.num_vehicles = 8;
  cfg.events_per_second = 300;
  cfg.duration = Seconds(20);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 5;
  wcfg.pattern_length = 3;
  wcfg.window = {Seconds(10), Seconds(5)};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  ShardedRuntime rt(w, SharingPlan{}, Opts(2));
  ASSERT_TRUE(rt.ok());
  RunStats stats = rt.Run(s.events, s.duration);
  // Engine::Run convention: each event counts once per query.
  EXPECT_EQ(stats.events_processed, s.events.size() * w.size());
  EXPECT_EQ(stats.results_emitted, rt.results().NumCells());
  EXPECT_GT(stats.peak_state_bytes, 0u);
}

// --- invalid configurations ------------------------------------------------

TEST(ShardedRuntimeTest, RejectsMixedPartitionAttributes) {
  EcommerceConfig cfg;
  cfg.duration = Seconds(10);
  Scenario s = GenerateEcommerce(cfg);

  Workload w;
  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 1 min SLIDE 20 sec",
           // No grouping clause: partitions by kNoAttr, not [customer].
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) "
           "WITHIN 1 min SLIDE 20 sec",
       }) {
    ParseResult parsed = ParseQuery(text, s.types, s.schema);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    w.Add(parsed.query);
  }

  CostModel cm(EstimateRates(s));
  ShardedRuntime rt(w, cm);
  EXPECT_FALSE(rt.ok());
  EXPECT_NE(rt.error().find("grouping attribute"), std::string::npos)
      << rt.error();
}

TEST(ShardedRuntimeTest, RejectsEmptyWorkload) {
  Workload w;
  ShardedRuntime rt(w, SharingPlan{});
  EXPECT_FALSE(rt.ok());
  // Ingest/Run and the result surface on a failed runtime must be safe
  // no-ops, not UB.
  Event e;
  e.type = 0;
  e.time = 1;
  rt.Ingest(e);
  RunStats stats = rt.Run({e}, 10);
  EXPECT_EQ(stats.events_processed, 0u);
  EXPECT_EQ(rt.Get(0, 0, 0), AggState::Zero());
  EXPECT_EQ(rt.Value(0, 0, 0, AggFunction::kCountStar), 0.0);
  EXPECT_EQ(rt.results().NumCells(), 0u);
  rt.results().ForEachCell([](const ResultKey&, const AggState&) {
    FAIL() << "failed runtime must expose no cells";
  });
}

TEST(ShardedRuntimeTest, RuntimeIsSingleUse) {
  TaxiConfig cfg;
  cfg.num_vehicles = 8;
  cfg.events_per_second = 200;
  cfg.duration = Seconds(10);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 3;
  wcfg.pattern_length = 3;
  wcfg.window = {Seconds(5), Seconds(5)};
  wcfg.partition_attr = 0;
  Workload w = GenerateWorkload(wcfg, cfg.num_streets);

  ShardedRuntime rt(w, SharingPlan{}, Opts(2));
  ASSERT_TRUE(rt.ok());
  rt.Run(s.events, s.duration);
  const size_t cells = rt.results().NumCells();
  const uint64_t ingested = rt.stats().events_ingested;

  // After Finish() the workers are gone: further ingestion must neither
  // hang on a full queue nor disturb the first run's results.
  for (int round = 0; round < 3; ++round) {
    RunStats again = rt.Run(s.events, s.duration);
    EXPECT_EQ(again.events_processed, 0u);
  }
  for (const Event& e : s.events) rt.Ingest(e);
  EXPECT_EQ(rt.results().NumCells(), cells);
  EXPECT_EQ(rt.stats().events_ingested, ingested);
}

TEST(ShardedRuntimeTest, SurfacesCompileErrors) {
  // A plan candidate not contained in the query is a compile error.
  Workload w;
  Query q;
  q.pattern = Pattern({0, 1});
  q.agg = AggSpec::CountStar();
  q.window = {100, 10};
  q.partition_attr = 0;
  w.Add(q);
  Candidate bad;
  bad.pattern = Pattern({2, 3});
  bad.queries = {0};
  ShardedRuntime rt(w, SharingPlan{bad});
  EXPECT_FALSE(rt.ok());
  EXPECT_FALSE(rt.error().empty());
}

}  // namespace
}  // namespace sharon
