// Tests for the modified CCSpan (Alg. 7) beyond the Table 1 case covered
// in graph_paper_test: the purchase fixture (Fig. 2), repeated types,
// duplicate patterns inside one query, and scaling structure.

#include "src/sharing/ccspan.h"

#include <gtest/gtest.h>

#include <map>

#include "src/streamgen/fixtures.h"

namespace sharon {
namespace {

Query MakeQuery(std::vector<EventTypeId> pattern) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = AggSpec::CountStar();
  q.window = {100, 10};
  return q;
}

TEST(CcspanTest, PurchaseFixtureFindsLaptopCase) {
  PurchaseFixture f = MakePurchaseFixture();
  auto candidates = FindSharableCandidates(f.workload);
  // (Laptop, Case) appears in all four queries (paper §1).
  EventTypeId laptop = f.types.Find("Laptop");
  EventTypeId cse = f.types.Find("Case");
  bool found = false;
  for (const Candidate& c : candidates) {
    if (c.pattern == Pattern({laptop, cse})) {
      found = true;
      EXPECT_EQ(c.queries, (QueryList{0, 1, 2, 3}));
    }
    EXPECT_GT(c.pattern.length(), 1u);
    EXPECT_GT(c.queries.size(), 1u);
  }
  EXPECT_TRUE(found);
}

TEST(CcspanTest, NoSharablePatternsInDisjointWorkload) {
  Workload w;
  w.Add(MakeQuery({0, 1}));
  w.Add(MakeQuery({2, 3}));
  EXPECT_TRUE(FindSharableCandidates(w).empty());
}

TEST(CcspanTest, SingleQueryWorkloadHasNoCandidates) {
  Workload w;
  w.Add(MakeQuery({0, 1, 2, 3}));
  EXPECT_TRUE(FindSharableCandidates(w).empty());
}

TEST(CcspanTest, LengthOnePatternsExcluded) {
  Workload w;
  w.Add(MakeQuery({0, 1}));
  w.Add(MakeQuery({1, 2}));
  auto candidates = FindSharableCandidates(w);
  // Type 1 alone appears in both, but length-1 patterns are not sharable.
  EXPECT_TRUE(candidates.empty());
}

TEST(CcspanTest, PatternRepeatedInsideOneQueryCountedOnce) {
  // (0,1) occurs twice in q0 and once in q1: Qp = {q0, q1}, not {q0, q0,
  // q1}.
  Workload w;
  w.Add(MakeQuery({0, 1, 0, 1}));
  w.Add(MakeQuery({0, 1}));
  auto candidates = FindSharableCandidates(w);
  std::map<std::vector<EventTypeId>, QueryList> by_pattern;
  for (const Candidate& c : candidates) by_pattern[c.pattern.types()] = c.queries;
  std::vector<EventTypeId> key = {0, 1};
  ASSERT_TRUE(by_pattern.count(key));
  EXPECT_EQ(by_pattern[key], (QueryList{0, 1}));
}

TEST(CcspanTest, AllSubpatternsReported) {
  // Two identical length-4 queries: candidates are every contiguous
  // sub-pattern of length >= 2, i.e. 3 + 2 + 1 = 6.
  Workload w;
  w.Add(MakeQuery({0, 1, 2, 3}));
  w.Add(MakeQuery({0, 1, 2, 3}));
  EXPECT_EQ(FindSharableCandidates(w).size(), 6u);
}

TEST(CcspanTest, CandidatesAreSortedAndQueriesSorted) {
  Workload w;
  w.Add(MakeQuery({3, 2, 1}));
  w.Add(MakeQuery({3, 2, 1}));
  w.Add(MakeQuery({1, 2, 3}));
  w.Add(MakeQuery({1, 2, 3}));
  auto candidates = FindSharableCandidates(w);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_TRUE(candidates[i - 1] < candidates[i] ||
                candidates[i - 1] == candidates[i]);
  }
  for (const Candidate& c : candidates) {
    EXPECT_TRUE(std::is_sorted(c.queries.begin(), c.queries.end()));
  }
}

}  // namespace
}  // namespace sharon
