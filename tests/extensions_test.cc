// Tests for the §7 extension modules: MultiEngine (§7.2 different windows
// and groupings), RateMonitor (§7.4 dynamic workloads), and the export
// utilities.

#include <gtest/gtest.h>

#include "src/exec/multi_engine.h"
#include "src/graph/export.h"
#include "src/sharing/ccspan.h"
#include "src/streamgen/fixtures.h"
#include "src/streamgen/rate_monitor.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

constexpr EventTypeId kA = 0, kB = 1, kC = 2;

Event Ev(EventTypeId type, Timestamp t, AttrValue g = 0) {
  Event e;
  e.type = type;
  e.time = t;
  e.attrs = {g};
  return e;
}

Query MakeQuery(std::vector<EventTypeId> pattern, Duration len,
                Duration slide, AttrIndex part = kNoAttr) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = AggSpec::CountStar();
  q.window = {len, slide};
  q.partition_attr = part;
  return q;
}

TEST(MultiEngineTest, SplitsByWindowAndPartition) {
  Workload w;
  w.Add(MakeQuery({kA, kB}, 100, 10));
  w.Add(MakeQuery({kA, kB}, 100, 10));
  w.Add(MakeQuery({kA, kB}, 50, 10));       // different window
  w.Add(MakeQuery({kA, kB}, 100, 10, 0));   // different partition
  CostModel cm(TypeRates({1, 1, 1}));
  MultiEngine me(w, cm);
  ASSERT_TRUE(me.ok()) << me.error();
  EXPECT_EQ(me.num_segments(), 3u);
}

TEST(MultiEngineTest, ResultsMatchPerSegmentReference) {
  Workload w;
  w.Add(MakeQuery({kA, kB}, 10, 5));
  w.Add(MakeQuery({kA, kB, kC}, 10, 5));
  w.Add(MakeQuery({kA, kB}, 20, 10));  // second segment
  CostModel cm(TypeRates({1, 1, 1}));
  MultiEngine me(w, cm);
  ASSERT_TRUE(me.ok()) << me.error();

  std::vector<Event> stream = {Ev(kA, 1), Ev(kB, 3),  Ev(kC, 4),
                               Ev(kA, 7), Ev(kB, 11), Ev(kC, 14)};
  me.Run(stream, 20);

  // Per-query oracle: evaluate each query alone as a uniform workload.
  for (const Query& q : w.queries()) {
    Workload solo;
    solo.Add(q);
    ResultCollector ref = ReferenceResults(solo, stream);
    for (WindowId j = 0; j <= q.window.LastWindowCovering(14); ++j) {
      EXPECT_EQ(me.Value(q.id, j, 0, AggFunction::kCountStar),
                ref.Value(0, j, 0, AggFunction::kCountStar))
          << "query " << q.id << " window " << j;
    }
  }
}

TEST(MultiEngineTest, SharingHappensWithinSegments) {
  Workload w;
  w.Add(MakeQuery({kA, kB, kC}, 100, 10));
  w.Add(MakeQuery({kA, kB, kC}, 100, 10));
  w.Add(MakeQuery({kA, kB, kC}, 50, 10));
  CostModel cm(TypeRates({5, 5, 5}));
  MultiEngine me(w, cm);
  ASSERT_TRUE(me.ok());
  // The first two queries share inside their segment; the third cannot.
  EXPECT_GE(me.num_shared_counters(), 1u);
  ASSERT_EQ(me.plans().size(), 2u);
  EXPECT_FALSE(me.plans()[0].plan.empty());
  EXPECT_TRUE(me.plans()[1].plan.empty());
}

TEST(RateMonitorTest, EstimatesRatesOverClosedEpochs) {
  RateMonitor mon(Seconds(1), /*window_epochs=*/2);
  // 3 events of type 0 and 1 of type 1 per second, over 3 seconds.
  for (int s = 0; s < 3; ++s) {
    Timestamp base = Seconds(s);
    mon.OnEvent(Ev(0, base + 1));
    mon.OnEvent(Ev(0, base + 2));
    mon.OnEvent(Ev(0, base + 3));
    mon.OnEvent(Ev(1, base + 4));
  }
  TypeRates rates = mon.CurrentRates();  // two closed epochs
  EXPECT_DOUBLE_EQ(rates.Of(0), 3.0);
  EXPECT_DOUBLE_EQ(rates.Of(1), 1.0);
}

TEST(RateMonitorTest, DetectsDrift) {
  RateMonitor mon(Seconds(1), 2, /*drift_threshold=*/0.5);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 4; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
  }
  mon.RebaseOnCurrent();
  EXPECT_FALSE(mon.DriftDetected());
  // Rate quadruples.
  for (int s = 3; s < 6; ++s) {
    for (int i = 0; i < 16; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
  }
  EXPECT_TRUE(mon.DriftDetected());
  mon.RebaseOnCurrent();
  EXPECT_FALSE(mon.DriftDetected());
}

TEST(RateMonitorTest, IgnoresNegligibleTypes) {
  RateMonitor mon(Seconds(1), 2, 0.5);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 1));
  }
  mon.RebaseOnCurrent();
  // A single stray event of a new type must not trigger drift.
  mon.OnEvent(Ev(7, Seconds(3) + 1));
  for (int s = 3; s < 6; ++s) {
    for (int i = 0; i < 10; ++i) mon.OnEvent(Ev(0, Seconds(s) + i + 2));
  }
  EXPECT_FALSE(mon.DriftDetected());
}

TEST(ExportTest, DotContainsVerticesAndConflicts) {
  TrafficFixture f = MakeTrafficFixture();
  auto candidates = FindSharableCandidates(f.workload);
  SharonGraph g = SharonGraph::Build(
      f.workload, candidates, [](const Candidate&) { return 1.0; });
  std::string dot = ToDot(g, f.types, {0});
  EXPECT_NE(dot.find("graph sharon {"), std::string::npos);
  EXPECT_NE(dot.find("(OakSt,MainSt)"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

TEST(ExportTest, CsvIsSortedAndSkipsNan) {
  Workload w;
  w.Add(MakeQuery({kA, kB}, 10, 5));
  ResultCollector rc;
  rc.Add(0, 1, 2, AggState::Identity());
  rc.Add(0, 0, 1, AggState::Identity());
  std::string csv = ResultsToCsv(rc, w);
  EXPECT_EQ(csv,
            "query,window,group,value\n"
            "0,0,1,1.000000\n"
            "0,1,2,1.000000\n");
}

}  // namespace
}  // namespace sharon
