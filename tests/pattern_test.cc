// Unit tests for Pattern: sub-pattern search, positional overlap (Def. 6)
// and the §7.3 multiplicity helper.

#include "src/query/pattern.h"

#include <gtest/gtest.h>

namespace sharon {
namespace {

TEST(PatternTest, Basics) {
  Pattern p({1, 2, 3});
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 3u);
  EXPECT_EQ(p.Sub(1, 2), Pattern({2, 3}));
}

TEST(PatternTest, FindOccurrences) {
  Pattern p({1, 2, 3, 4});
  EXPECT_EQ(p.FindOccurrences(Pattern({2, 3})), (std::vector<size_t>{1}));
  EXPECT_EQ(p.FindOccurrences(Pattern({1, 2, 3, 4})),
            (std::vector<size_t>{0}));
  EXPECT_TRUE(p.FindOccurrences(Pattern({3, 2})).empty());
  EXPECT_TRUE(p.FindOccurrences(Pattern({1, 2, 3, 4, 5})).empty());
}

TEST(PatternTest, FindOccurrencesWithRepeats) {
  Pattern p({1, 2, 1, 2});
  EXPECT_EQ(p.FindOccurrences(Pattern({1, 2})), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(p.CountType(1), 2u);
  EXPECT_EQ(p.CountType(3), 0u);
}

TEST(PatternTest, OverlapsIntersectingRanges) {
  // q4 = (Park, Oak, Main, West) with Park=0 Oak=1 Main=2 West=3.
  Pattern q({0, 1, 2, 3});
  // p2 = (Park, Oak) [0,1] and p1 = (Oak, Main) [1,2] overlap at Oak.
  EXPECT_TRUE(q.Overlaps(Pattern({0, 1}), Pattern({1, 2})));
  // p2 [0,1] and p4 = (Main, West) [2,3] are disjoint (Example 5).
  EXPECT_FALSE(q.Overlaps(Pattern({0, 1}), Pattern({2, 3})));
  // Containment overlaps: p3 = (Park, Oak, Main) vs p1 = (Oak, Main).
  EXPECT_TRUE(q.Overlaps(Pattern({0, 1, 2}), Pattern({1, 2})));
  // A pattern trivially overlaps itself.
  EXPECT_TRUE(q.Overlaps(Pattern({1, 2}), Pattern({1, 2})));
  // Absent patterns never overlap.
  EXPECT_FALSE(q.Overlaps(Pattern({7, 8}), Pattern({1, 2})));
}

TEST(PatternTest, OrderingIsLexicographic) {
  EXPECT_LT(Pattern({1, 2}), Pattern({1, 3}));
  EXPECT_LT(Pattern({1, 2}), Pattern({1, 2, 0}));
}

TEST(PatternTest, ToStringUsesRegistry) {
  TypeRegistry reg;
  EventTypeId a = reg.Intern("OakSt");
  EventTypeId b = reg.Intern("MainSt");
  EXPECT_EQ(Pattern({a, b}).ToString(reg), "(OakSt,MainSt)");
}

TEST(TypeRegistryTest, InternIsIdempotent) {
  TypeRegistry reg;
  EXPECT_EQ(reg.Intern("A"), reg.Intern("A"));
  EXPECT_NE(reg.Intern("A"), reg.Intern("B"));
  EXPECT_EQ(reg.Find("C"), kInvalidType);
  EXPECT_EQ(reg.Name(reg.Find("B")), "B");
}

}  // namespace
}  // namespace sharon
