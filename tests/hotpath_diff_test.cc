// Differential tests for the PR-4 hot-path data layout: inline-attr
// events (spill path included), the flat group table under churn +
// rehash + watermark eviction, and the sharded multi-producer ingest
// path. Every relaxation is checked against an executor that does not
// use it:
//   - wide spilled events vs the same data remapped into the inline
//     2-attr schema,
//   - eviction+rehash churn vs the no-eviction engine (value
//     neutrality),
//   - the sharded runtime at 1/2/8 shards x 1/2/3 ingest partitions x
//     {sorted, disordered} vs the single-threaded in-order Engine on
//     TX / LR / EC streams — bit-identical cells, the invariant the
//     whole runtime design rests on (DESIGN.md).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/exec/engine.h"
#include "src/planner/optimizer.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/ecommerce.h"
#include "src/streamgen/linear_road.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"

namespace sharon {
namespace {

using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

CellMap CellsOf(const ResultCollector& collector) {
  CellMap cells;
  collector.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

CellMap CellsOf(const ShardedRuntime& rt) {
  CellMap cells;
  rt.results().ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

void ExpectBitIdentical(const CellMap& expected, const CellMap& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, state] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end())
        << label << ": missing cell query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
    EXPECT_EQ(state, it->second)
        << label << ": cell differs at query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
  }
}

// --- 1. inline-attr spill path --------------------------------------------

TEST(InlineAttrSpillDiff, WideSchemaMatchesNarrowRemap) {
  // A 6-attribute schema spills past the inline capacity; grouping on
  // attr 4 and summing attr 5 must agree bit-for-bit with the same data
  // remapped into the inline 2-attr layout.
  constexpr EventTypeId kA = 0, kB = 1;
  constexpr size_t kEvents = 4000;

  std::vector<Event> wide, narrow;
  for (size_t i = 0; i < kEvents; ++i) {
    const auto group = static_cast<AttrValue>(i % 5);
    const auto value = static_cast<AttrValue>((i * 13) % 101);
    Event w;
    w.time = static_cast<Timestamp>(i + 1);
    w.type = i % 2 == 0 ? kA : kB;
    w.attrs = {-1, -2, -3, -4, group, value};
    Event n;
    n.time = w.time;
    n.type = w.type;
    n.attrs = {group, value};
    wide.push_back(std::move(w));
    narrow.push_back(std::move(n));
  }
  ASSERT_TRUE(wide.front().attrs.spilled());
  ASSERT_FALSE(narrow.front().attrs.spilled());

  auto make_query = [](AttrIndex partition, AttrIndex target) {
    Query q;
    q.pattern = Pattern({kA, kB});
    q.agg = AggSpec::Of(AggFunction::kSum, kB, target);
    q.window = {50, 10};
    q.partition_attr = partition;
    return q;
  };
  Workload wide_w, narrow_w;
  wide_w.Add(make_query(4, 5));
  narrow_w.Add(make_query(0, 1));

  Engine wide_engine(wide_w), narrow_engine(narrow_w);
  ASSERT_TRUE(wide_engine.ok()) << wide_engine.error();
  ASSERT_TRUE(narrow_engine.ok()) << narrow_engine.error();
  for (const Event& e : wide) wide_engine.OnEvent(e);
  for (const Event& e : narrow) narrow_engine.OnEvent(e);

  const CellMap expected = CellsOf(narrow_engine.results());
  ASSERT_FALSE(expected.empty());
  ExpectBitIdentical(expected, CellsOf(wide_engine.results()), "spill");
}

// --- 2. flat group table: churn + rehash + eviction -----------------------

TEST(GroupChurnDiff, EvictionUnderChurnIsValueNeutral) {
  // A fresh group every 50 events, dead groups evicted as watermarks
  // pass: the flat table sees sustained insert + backward-shift-erase +
  // rehash churn. Finalized values must match the no-eviction engine
  // exactly, and the live table must stay small (state actually
  // evicted, ExpireBefore interplay).
  constexpr EventTypeId kA = 0, kB = 1;
  Query q;
  q.pattern = Pattern({kA, kB});
  q.agg = AggSpec::CountStar();
  q.window = {32, 8};
  q.partition_attr = 0;
  Workload w;
  w.Add(q);

  constexpr size_t kEvents = 60000;
  std::vector<Event> stream;
  Timestamp next_punctuation = 16;
  for (size_t i = 0; i < kEvents; ++i) {
    Event e;
    e.time = static_cast<Timestamp>(i + 1);
    e.type = i % 2 == 0 ? kA : kB;
    e.attrs = {static_cast<AttrValue>(i / 50), 0};
    if (e.time >= next_punctuation) {
      stream.push_back(WatermarkEvent(e.time - 1));
      next_punctuation += 16;
    }
    stream.push_back(std::move(e));
  }

  DisorderPolicy evicting;
  evicting.enabled = true;
  evicting.max_lateness = 0;
  DisorderPolicy keeping = evicting;
  keeping.evict = false;

  Engine evict_engine(w), keep_engine(w);
  evict_engine.SetDisorderPolicy(evicting);
  keep_engine.SetDisorderPolicy(keeping);
  for (const Event& e : stream) {
    evict_engine.OnEvent(e);
    keep_engine.OnEvent(e);
  }
  evict_engine.CloseStream();
  keep_engine.CloseStream();

  EXPECT_GT(evict_engine.watermark_stats().evicted_groups, 500u)
      << "churn must actually erase groups";
  ExpectBitIdentical(CellsOf(keep_engine.results()),
                     CellsOf(evict_engine.results()), "churn");
}

// --- 3. sharded runtime x ingest partitions x disorder --------------------

struct DiffCase {
  std::string name;
  Workload workload;
  SharingPlan plan;
  std::vector<Event> sorted;
  CellMap oracle;
  Duration slide = 0;
};

DiffCase MakeCase(const std::string& name, Scenario s, uint32_t num_types,
                  WindowSpec window, bool optimize) {
  DiffCase c;
  c.name = name;
  c.slide = window.slide;
  WorkloadGenConfig wcfg;
  wcfg.num_queries = 6;
  wcfg.pattern_length = 4;
  wcfg.cluster_size = 3;
  wcfg.window = window;
  wcfg.partition_attr = 0;
  c.workload = GenerateWorkload(wcfg, num_types);
  if (optimize) {
    CostModel cm(EstimateRates(s));
    OptimizerConfig ocfg;
    ocfg.expand = false;
    c.plan = OptimizeSharon(c.workload, cm, ocfg).plan;
  }
  c.sorted = std::move(s.events);

  // Oracle: the single-threaded in-order executor on the sorted stream —
  // the seed evaluation path, no reordering, no finalization, no
  // eviction.
  Engine oracle(c.workload, c.plan);
  EXPECT_TRUE(oracle.ok()) << oracle.error();
  for (const Event& e : c.sorted) oracle.OnEvent(e);
  c.oracle = CellsOf(oracle.results());
  EXPECT_FALSE(c.oracle.empty());
  return c;
}

std::vector<DiffCase> MakeCases() {
  std::vector<DiffCase> cases;
  {
    TaxiConfig cfg;
    cfg.num_streets = 10;
    cfg.num_vehicles = 16;
    cfg.events_per_second = 500;
    cfg.duration = Seconds(30);
    cases.push_back(MakeCase("TX", GenerateTaxi(cfg), cfg.num_streets,
                             {Seconds(12), Seconds(5)}, true));
  }
  {
    LinearRoadConfig cfg;
    cfg.num_segments = 8;
    cfg.num_cars = 12;
    cfg.start_rate = 200;
    cfg.end_rate = 600;
    cfg.duration = Seconds(30);
    cases.push_back(MakeCase("LR", GenerateLinearRoad(cfg), cfg.num_segments,
                             {Seconds(10), Seconds(4)}, false));
  }
  {
    EcommerceConfig cfg;
    cfg.num_items = 10;
    cfg.num_customers = 10;
    cfg.events_per_second = 400;
    cfg.duration = Seconds(30);
    cases.push_back(MakeCase("EC", GenerateEcommerce(cfg), cfg.num_items,
                             {Seconds(8), Seconds(2)}, true));
  }
  return cases;
}

/// Feeds `arrivals` through `producers` partitions from one thread:
/// data events round-robin, punctuations broadcast to every producer
/// (each producer vouches for the global high-mark, which its channel
/// order makes true for its own share of the stream).
void SplitIngest(ShardedRuntime& rt, const std::vector<Event>& arrivals,
                 size_t producers) {
  size_t rr = 0;
  for (const Event& e : arrivals) {
    if (IsWatermark(e)) {
      for (size_t p = 0; p < producers; ++p) {
        rt.ingest_partition(p).IngestWatermark(e.time);
      }
    } else {
      rt.ingest_partition(rr++ % producers).Ingest(e);
    }
  }
}

TEST(ShardedIngestDiff, BitIdenticalAcrossShardsProducersAndDisorder) {
  for (DiffCase& c : MakeCases()) {
    for (const Duration lateness : {Duration{0}, c.slide}) {
      DisorderConfig inj;
      inj.max_lateness = lateness;
      inj.punctuation_period = c.slide;
      inj.seed = 7;
      const std::vector<Event> arrivals = InjectDisorder(c.sorted, inj);

      DisorderPolicy policy;
      policy.enabled = true;
      policy.max_lateness = lateness;

      for (size_t shards : {1u, 2u, 8u}) {
        for (size_t producers : {1u, 2u, 3u}) {
          RuntimeOptions opts;
          opts.num_shards = shards;
          opts.batch_size = 32;
          opts.queue_capacity = 8;
          opts.ingest_partitions = producers;
          opts.disorder = policy;
          ShardedRuntime rt(c.workload, c.plan, opts);
          ASSERT_TRUE(rt.ok()) << rt.error();
          ASSERT_EQ(rt.num_ingest_partitions(), producers);
          rt.Start();
          SplitIngest(rt, arrivals, producers);
          rt.Finish();
          const std::string label =
              c.name + " lateness=" + std::to_string(lateness) +
              " shards=" + std::to_string(shards) +
              " producers=" + std::to_string(producers);
          ExpectBitIdentical(c.oracle, CellsOf(rt), label);
          const auto stats = rt.stats();
          EXPECT_EQ(stats.TotalLateDropped(), 0u) << label;
          ASSERT_EQ(stats.ingest.size(), producers) << label;
          uint64_t ingested = 0;
          for (const auto& is : stats.ingest) ingested += is.events;
          EXPECT_EQ(ingested, c.sorted.size()) << label;
        }
      }
    }
  }
}

TEST(ShardedIngestDiff, ConcurrentProducerThreadsMatchOracle) {
  DiffCase c = std::move(MakeCases().front());  // TX
  DisorderConfig inj;
  inj.max_lateness = c.slide;
  inj.punctuation_period = c.slide;
  inj.seed = 11;
  const std::vector<Event> arrivals = InjectDisorder(c.sorted, inj);

  // Pre-split: data events round-robin, punctuations to every producer.
  constexpr size_t kProducers = 3;
  std::vector<std::vector<Event>> splits(kProducers);
  size_t rr = 0;
  for (const Event& e : arrivals) {
    if (IsWatermark(e)) {
      for (auto& split : splits) split.push_back(e);
    } else {
      splits[rr++ % kProducers].push_back(e);
    }
  }

  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = c.slide;

  for (int round = 0; round < 3; ++round) {  // vary the OS interleaving
    RuntimeOptions opts;
    opts.num_shards = 2;
    opts.batch_size = 16;
    opts.queue_capacity = 4;
    opts.ingest_partitions = kProducers;
    opts.disorder = policy;
    ShardedRuntime rt(c.workload, c.plan, opts);
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Start();
    std::vector<std::thread> threads;
    threads.reserve(kProducers);
    for (size_t p = 0; p < kProducers; ++p) {
      threads.emplace_back([&rt, &splits, p] {
        runtime::IngestPartition& ingest = rt.ingest_partition(p);
        for (const Event& e : splits[p]) ingest.Ingest(e);
      });
    }
    for (auto& t : threads) t.join();
    rt.Finish();
    ExpectBitIdentical(c.oracle, CellsOf(rt),
                       "threaded round " + std::to_string(round));
  }
}

TEST(ShardedIngestDiff, DuplicatePunctuationCannotOutrunSilentProducers) {
  // Producer 0 punctuates the same frontier twice while producer 1 has
  // neither punctuated nor delivered its events. The duplicate is a
  // producer-LOCAL regression; it must not advance any shard past ticks
  // producer 1 has not vouched for — producer 1's older events must
  // still be absorbed, not dropped as late.
  constexpr EventTypeId kA = 0, kB = 1;
  Query q;
  q.pattern = Pattern({kA, kB});
  q.agg = AggSpec::CountStar();
  q.window = {20, 10};
  q.partition_attr = 0;
  Workload w;
  w.Add(q);

  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = 0;
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.batch_size = 4;
  opts.ingest_partitions = 2;
  opts.disorder = policy;
  ShardedRuntime rt(w, SharingPlan{}, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  rt.Start();

  auto ev = [](EventTypeId type, Timestamp t, AttrValue g) {
    Event e;
    e.type = type;
    e.time = t;
    e.attrs = {g, 0};
    return e;
  };
  // Producer 0: events up to t=50, then the same punctuation twice.
  for (Timestamp t = 1; t <= 50; ++t) {
    rt.ingest_partition(0).Ingest(ev(t % 2 == 0 ? kB : kA, t, 0));
  }
  rt.ingest_partition(0).IngestWatermark(100);
  rt.ingest_partition(0).IngestWatermark(100);
  rt.ingest_partition(0).Flush();
  // Producer 1 delivers ITS events (times below 100) only now.
  for (Timestamp t = 1; t <= 50; ++t) {
    rt.ingest_partition(1).Ingest(ev(t % 2 == 0 ? kA : kB, t, 1));
  }
  rt.Finish();

  const auto stats = rt.stats();
  EXPECT_EQ(stats.TotalLateDropped(), 0u)
      << "a duplicate punctuation from one producer advanced a shard "
         "past another producer's in-flight events";
  // Both groups produced matches: group 1's events survived.
  EXPECT_GT(rt.Value(0, 0, 1, AggFunction::kCountStar), 0);
}

TEST(ShardedIngestDiff, NonPowerOfTwoQueueCapacityNeverDropsRecycledBatches) {
  DiffCase c = std::move(MakeCases().front());  // TX
  DisorderConfig inj;
  inj.max_lateness = 0;
  inj.punctuation_period = c.slide;
  inj.seed = 5;
  const std::vector<Event> arrivals = InjectDisorder(c.sorted, inj);

  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = 0;
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.batch_size = 8;
  opts.queue_capacity = 5;  // rounds up to 8 inside SpscQueue
  opts.ingest_partitions = 2;
  opts.disorder = policy;
  ShardedRuntime rt(c.workload, c.plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  rt.Start();
  SplitIngest(rt, arrivals, 2);
  rt.Finish();
  ExpectBitIdentical(c.oracle, CellsOf(rt), "non-pow2 capacity");
  for (const auto& shard_stats : rt.stats().shards) {
    EXPECT_EQ(shard_stats.recycle_drops, 0u)
        << "free ring must absorb every circulating buffer";
  }
}

TEST(ShardedIngestDiff, MultiProducerWithoutDisorderIsRefused) {
  DiffCase c = std::move(MakeCases().front());
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.ingest_partitions = 2;  // no disorder policy: nondeterministic
  ShardedRuntime rt(c.workload, c.plan, opts);
  EXPECT_FALSE(rt.ok());
  EXPECT_NE(rt.error().find("disorder"), std::string::npos) << rt.error();
}

}  // namespace
}  // namespace sharon
