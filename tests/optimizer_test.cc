// End-to-end optimizer pipeline tests over generated workloads and real
// cost-model weights: pipeline invariants, fallback behaviour, and the
// executor actually getting faster state under a shared plan.

#include "src/planner/optimizer.h"

#include <gtest/gtest.h>

#include "src/exec/engine.h"
#include "src/sharing/ccspan.h"
#include "src/streamgen/ecommerce.h"
#include "src/streamgen/fixtures.h"
#include "src/streamgen/workload_gen.h"

namespace sharon {
namespace {

CostModel UniformModel(size_t num_types, double rate = 10.0) {
  return CostModel(TypeRates(std::vector<double>(num_types, rate)));
}

TEST(OptimizerTest, SharonBeatsOrMatchesGreedy) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    WorkloadGenConfig cfg;
    cfg.num_queries = 12;
    cfg.pattern_length = 5;
    cfg.seed = seed;
    Workload w = GenerateWorkload(cfg, 16);
    CostModel cm = UniformModel(16);
    OptimizerResult so = OptimizeSharon(w, cm);
    OptimizerResult go = OptimizeGreedy(w, cm);
    ASSERT_TRUE(so.completed);
    EXPECT_GE(so.score, go.score - 1e-9) << "seed " << seed;
  }
}

TEST(OptimizerTest, SharonMatchesExhaustiveOnSmallWorkloads) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    WorkloadGenConfig cfg;
    cfg.num_queries = 6;
    cfg.pattern_length = 4;
    cfg.seed = seed;
    Workload w = GenerateWorkload(cfg, 10);
    CostModel cm = UniformModel(10);
    OptimizerConfig config;
    config.expansion.max_options_per_candidate = 16;
    OptimizerResult so = OptimizeSharon(w, cm, config);
    OptimizerResult eo = OptimizeExhaustive(w, cm, config);
    if (!so.completed || !eo.completed) continue;
    EXPECT_DOUBLE_EQ(so.score, eo.score) << "seed " << seed;
  }
}

TEST(OptimizerTest, PlanIsExecutable) {
  // Every plan an optimizer emits must compile in the engine.
  WorkloadGenConfig cfg;
  cfg.num_queries = 20;
  cfg.pattern_length = 6;
  Workload w = GenerateWorkload(cfg, 16);
  CostModel cm = UniformModel(16);
  for (const OptimizerResult& r :
       {OptimizeSharon(w, cm), OptimizeGreedy(w, cm)}) {
    Engine engine(w, r.plan);
    EXPECT_TRUE(engine.ok()) << engine.error();
  }
}

TEST(OptimizerTest, TimeLimitTriggersGwminFallback) {
  WorkloadGenConfig cfg;
  cfg.num_queries = 40;
  cfg.pattern_length = 8;
  cfg.cluster_size = 8;
  Workload w = GenerateWorkload(cfg, 24);
  CostModel cm = UniformModel(24);
  OptimizerConfig config;
  config.finder.time_limit_seconds = 0.0;  // force immediate fallback
  OptimizerResult r = OptimizeSharon(w, cm, config);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.plan.empty());  // GWMIN still returns a usable plan
  Engine engine(w, r.plan);
  EXPECT_TRUE(engine.ok()) << engine.error();
  // The incomplete result names the limit that actually triggered — both
  // in the structured field and in the plan-finder phase's note, so
  // Fig. 15 output distinguishes time-outs from level overflows.
  EXPECT_EQ(r.limit, PlanFinderLimit::kTime);
  ASSERT_FALSE(r.phases.empty());
  const OptimizerPhase& finder_phase = r.phases.back();
  EXPECT_EQ(finder_phase.name, "plan finder");
  EXPECT_NE(finder_phase.note.find("time limit"), std::string::npos)
      << finder_phase.note;
}

TEST(OptimizerTest, LevelSizeLimitIsSurfacedDistinctly) {
  WorkloadGenConfig cfg;
  cfg.num_queries = 40;
  cfg.pattern_length = 8;
  cfg.cluster_size = 8;
  Workload w = GenerateWorkload(cfg, 24);
  CostModel cm = UniformModel(24);
  OptimizerConfig config;
  config.finder.time_limit_seconds = 1e9;  // time can never trigger
  config.finder.max_level_plans = 2;       // ...but the level size will
  OptimizerResult r = OptimizeSharon(w, cm, config);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.limit, PlanFinderLimit::kLevelSize);
  ASSERT_FALSE(r.phases.empty());
  EXPECT_NE(r.phases.back().note.find("level-size limit"), std::string::npos)
      << r.phases.back().note;
  // A completed run reports no limit and clean phase notes.
  OptimizerResult clean = OptimizeSharon(w, cm);
  if (clean.completed) {
    EXPECT_EQ(clean.limit, PlanFinderLimit::kNone);
    EXPECT_TRUE(clean.phases.back().note.empty());
  }
}

TEST(OptimizerTest, PhasesAreReported) {
  TrafficFixture f = MakeTrafficFixture();
  CostModel cm = UniformModel(f.types.size());
  OptimizerResult so = OptimizeSharon(f.workload, cm);
  ASSERT_EQ(so.phases.size(), 4u);  // construct, expand, reduce, find
  EXPECT_EQ(so.phases[0].name, "graph construction");
  EXPECT_EQ(so.phases[1].name, "graph expansion");
  EXPECT_EQ(so.phases[2].name, "graph reduction");
  EXPECT_EQ(so.phases[3].name, "plan finder");
  OptimizerResult go = OptimizeGreedy(f.workload, cm);
  ASSERT_EQ(go.phases.size(), 2u);  // construct, GWMIN
  EXPECT_GT(so.TotalMillis(), 0);
  EXPECT_GT(so.PeakBytes(), 0u);
}

TEST(OptimizerTest, NoSharingOpportunitiesYieldsEmptyPlan) {
  // Disjoint patterns: CCSpan finds nothing; Sharon defaults to the
  // Non-Shared method (§6 extreme case 2).
  Workload w;
  Query q1, q2;
  q1.pattern = Pattern({0, 1});
  q2.pattern = Pattern({2, 3});
  q1.agg = q2.agg = AggSpec::CountStar();
  q1.window = q2.window = {100, 10};
  w.Add(q1);
  w.Add(q2);
  CostModel cm = UniformModel(4);
  OptimizerResult r = OptimizeSharon(w, cm);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.plan.empty());
  EXPECT_EQ(r.score, 0);
}

TEST(OptimizerTest, SharedPlanShrinksExecutorState) {
  // Identical queries sharing everything: the shared engine must keep
  // far less state than per-query A-Seq.
  Workload w;
  for (int i = 0; i < 8; ++i) {
    Query q;
    q.pattern = Pattern({0, 1, 2, 3});
    q.agg = AggSpec::CountStar();
    q.window = {Seconds(60), Seconds(10)};
    q.partition_attr = 0;
    w.Add(q);
  }
  EcommerceConfig ecfg;
  ecfg.num_items = 6;
  ecfg.events_per_second = 500;
  ecfg.duration = Minutes(3);
  Scenario s = GenerateEcommerce(ecfg);

  CostModel cm(EstimateRates(s));
  OptimizerResult opt = OptimizeSharon(w, cm);
  ASSERT_FALSE(opt.plan.empty());

  Engine shared(w, opt.plan);
  Engine nonshared(w);
  RunStats ss = shared.Run(s.events, s.duration);
  RunStats ns = nonshared.Run(s.events, s.duration);
  EXPECT_TRUE(ss.finished);
  EXPECT_LT(ss.peak_state_bytes, ns.peak_state_bytes);
}

}  // namespace
}  // namespace sharon
