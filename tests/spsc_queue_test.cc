// SPSC ring buffer tests: capacity rounding, FIFO order, full/empty
// behavior, and a two-thread stress run that checks every value crosses
// exactly once, in order.

#include "src/runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/runtime/partition.h"

namespace sharon::runtime {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscQueue<int>(65).capacity(), 128u);
}

TEST(SpscQueueTest, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.Empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99));  // full
  EXPECT_EQ(q.Size(), 8u);
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(v));  // empty
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, ReusesSlotsAcrossWraparound) {
  SpscQueue<std::vector<int>> q(2);
  std::vector<int> out;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.TryPush(std::vector<int>{round}));
    ASSERT_TRUE(q.TryPop(out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], round);
  }
}

TEST(SpscQueueTest, TwoThreadStressPreservesOrder) {
  constexpr int kN = 200000;
  SpscQueue<int> q(64);
  std::vector<int> received;
  received.reserve(kN);

  std::thread consumer([&] {
    int v;
    while (received.size() < kN) {
      if (q.TryPop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kN; ++i) {
    while (!q.TryPush(int(i))) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) ASSERT_EQ(received[i], i);
}

TEST(PartitionTest, ShardIndexIsStableAndInRange) {
  for (AttrValue g = -100; g < 100; ++g) {
    const size_t a = ShardIndexFor(g, 8);
    EXPECT_LT(a, 8u);
    EXPECT_EQ(a, ShardIndexFor(g, 8));  // deterministic
  }
  EXPECT_EQ(ShardIndexFor(12345, 1), 0u);
}

TEST(PartitionTest, SpreadsDenseGroupIds) {
  // Dense small ids (vehicle/customer ids) must not collapse onto few
  // shards: with 64 groups over 8 shards every shard should own some.
  std::vector<int> owned(8, 0);
  for (AttrValue g = 0; g < 64; ++g) ++owned[ShardIndexFor(g, 8)];
  for (int count : owned) EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace sharon::runtime
