// Unit tests for the textual query parser.

#include "src/query/parser.h"

#include <gtest/gtest.h>

namespace sharon {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    schema_.Register("vehicle");
    schema_.Register("speed");
  }
  TypeRegistry types_;
  StreamSchema schema_;
};

TEST_F(ParserTest, PaperQueryQ1) {
  auto r = ParseQuery(
      "RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WHERE [vehicle] "
      "WITHIN 10 min SLIDE 1 min",
      types_, schema_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.agg.fn, AggFunction::kCountStar);
  EXPECT_EQ(r.query.pattern.length(), 2u);
  EXPECT_EQ(r.query.pattern.type(0), types_.Find("OakSt"));
  EXPECT_EQ(r.query.pattern.type(1), types_.Find("MainSt"));
  EXPECT_EQ(r.query.partition_attr, schema_.Find("vehicle"));
  EXPECT_EQ(r.query.window.length, Minutes(10));
  EXPECT_EQ(r.query.window.slide, Minutes(1));
}

TEST_F(ParserTest, AllAggregateFunctions) {
  struct Case {
    const char* text;
    AggFunction fn;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"RETURN COUNT(A) ", AggFunction::kCountType},
           {"RETURN SUM(A.speed) ", AggFunction::kSum},
           {"RETURN MIN(A.speed) ", AggFunction::kMin},
           {"RETURN MAX(A.speed) ", AggFunction::kMax},
           {"RETURN AVG(A.speed) ", AggFunction::kAvg}}) {
    std::string text = std::string(c.text) +
                       "PATTERN SEQ(A, B) WITHIN 60 sec SLIDE 10 sec";
    auto r = ParseQuery(text, types_, schema_);
    ASSERT_TRUE(r.ok) << text << ": " << r.error;
    EXPECT_EQ(r.query.agg.fn, c.fn);
    EXPECT_EQ(r.query.agg.target_type, types_.Find("A"));
  }
}

TEST_F(ParserTest, GroupByClause) {
  auto r = ParseQuery(
      "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY vehicle "
      "WITHIN 600 SLIDE 60",
      types_, schema_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.query.partition_attr, schema_.Find("vehicle"));
  EXPECT_EQ(r.query.window.length, 600);  // raw ticks
}

TEST_F(ParserTest, Errors) {
  const char* bad[] = {
      "",
      "PATTERN SEQ(A,B) WITHIN 10 min SLIDE 1 min",       // missing RETURN
      "RETURN COUNT(*) WITHIN 10 min SLIDE 1 min",        // missing PATTERN
      "RETURN COUNT(*) PATTERN SEQ() WITHIN 1 min SLIDE 1 min",  // empty
      "RETURN COUNT(*) PATTERN SEQ(A,B) WITHIN 1 min",    // missing SLIDE
      "RETURN COUNT(*) PATTERN SEQ(A,B) WITHIN 1 min SLIDE 2 min",  // slide>len
      "RETURN SUM(A) PATTERN SEQ(A,B) WITHIN 2 min SLIDE 1 min",  // no attr
      "RETURN COUNT(*) PATTERN SEQ(A,B) WHERE [bogus] WITHIN 2 min SLIDE 1 "
      "min",                                               // unknown attr
      "RETURN COUNT(*) PATTERN SEQ(A,B) WITHIN 2 min SLIDE 1 min trailing",
  };
  for (const char* text : bad) {
    auto r = ParseQuery(text, types_, schema_);
    EXPECT_FALSE(r.ok) << "should fail: " << text;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST_F(ParserTest, WhereAndGroupByMustAgree) {
  auto r = ParseQuery(
      "RETURN COUNT(*) PATTERN SEQ(A,B) WHERE [vehicle] GROUP BY speed "
      "WITHIN 2 min SLIDE 1 min",
      types_, schema_);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace sharon
