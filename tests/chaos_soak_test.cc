// Coverage for the chaos soak harness itself (src/chaos/soak.h): the
// composed scenario must pass end to end at test-sized configs, be
// deterministic in its seed, exercise the axes it claims to (swaps,
// kill/restore cycles into different topologies, telemetry validation),
// and refuse nonsensical configs loudly. The CI smoke runs the full
// --quick shape through bench/soak_main.cc; these tests keep the harness
// honest at unit scale so a soak failure means the ENGINE broke.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/chaos/soak.h"

namespace sharon {
namespace {

using chaos::RunSoak;
using chaos::SoakConfig;
using chaos::SoakCycleRecord;
using chaos::SoakReport;

SoakConfig SmallConfig(uint64_t seed) {
  SoakConfig config;
  config.seed = seed;
  config.rounds = 8;
  config.kill_every = 2;
  config.round_length = Seconds(10);
  config.events_per_second = 300;
  config.checkpoint_dir =
      ::testing::TempDir() + "sharon_soak_test_" + std::to_string(seed);
  return config;
}

TEST(ChaosSoak, SmallComposedRunPassesAndCoversItsAxes) {
  const SoakReport report = RunSoak(SmallConfig(7));
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.rounds_run, 8u);
  EXPECT_GT(report.events_ingested, 0u);
  EXPECT_GT(report.cells_compared, 0u);
  EXPECT_GT(report.telemetry_validations, 0u);
  // kill_every=2 over 8 rounds: kills come due after rounds 2, 4 and 6.
  // Each due point either completes a cycle or defers on an in-flight
  // swap (a counted retry), so the two must account for all three — and
  // the stream is long enough that at least one kill lands.
  EXPECT_GE(report.cycles.size() + report.checkpoint_retries, 3u);
  EXPECT_GE(report.cycles.size(), 1u);
  for (const SoakCycleRecord& cycle : report.cycles) {
    // The schedule changes BOTH counts on every transition.
    EXPECT_NE(cycle.from_shards, cycle.to_shards);
    EXPECT_NE(cycle.from_producers, cycle.to_producers);
  }
}

TEST(ChaosSoak, DriftForcesSwapsUnderTheDefaultShape) {
  // Longer run, no kills: isolates the adaptive axis — the drift phases
  // must actually trigger accepted swaps or the soak soaks nothing.
  SoakConfig config = SmallConfig(11);
  config.rounds = 6;
  config.kill_every = 0;
  const SoakReport report = RunSoak(config);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.cycles.empty());
  EXPECT_GE(report.swaps_accepted, 1u);
}

TEST(ChaosSoak, DeterministicInTheSeed) {
  const SoakReport a = RunSoak(SmallConfig(3));
  const SoakReport b = RunSoak(SmallConfig(3));
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.events_ingested, b.events_ingested);
  EXPECT_EQ(a.cells_compared, b.cells_compared);
  EXPECT_EQ(a.rounds_run, b.rounds_run);
  // The topology WALK is seed-deterministic (same schedule, same start),
  // even though how many kills complete may differ run to run: whether a
  // checkpoint is deferred depends on whether the workers retired an
  // in-flight swap yet. Results are exact either way — both runs diffed
  // clean against the same oracle above.
  const size_t common = std::min(a.cycles.size(), b.cycles.size());
  for (size_t i = 0; i < common; ++i) {
    EXPECT_EQ(a.cycles[i].from_shards, b.cycles[i].from_shards);
    EXPECT_EQ(a.cycles[i].to_shards, b.cycles[i].to_shards);
    EXPECT_EQ(a.cycles[i].from_producers, b.cycles[i].from_producers);
    EXPECT_EQ(a.cycles[i].to_producers, b.cycles[i].to_producers);
  }
}

TEST(ChaosSoak, ChurnAxisCommitsAndStaysExact) {
  // Churn on top of the full composition: the seeded schedule must
  // actually register AND retire queries (or the axis soaks nothing),
  // while the interval-filtered oracle diff inside RunSoak stays exact
  // across kill/restore cycles. kill_every=4 keeps rounds 0-2 free of
  // kill gating, so the 18 churn steps of that prefix fire at fixed
  // data-event counts no matter how worker timing lands — the
  // register/retire floor below is deterministic, not probabilistic.
  SoakConfig config = SmallConfig(5);
  config.kill_every = 4;
  config.churn_every = 500;
  const SoakReport report = RunSoak(config);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.queries_registered, 0u);
  EXPECT_GT(report.queries_retired, 0u);
  EXPECT_GT(report.cells_compared, 0u);
  // The one kill due (after round 4; round 8 is the final round) either
  // completes, defers on an in-flight swap, or defers on pending churn —
  // all counted. Which of the three is worker-timing dependent.
  EXPECT_GE(report.cycles.size() + report.checkpoint_retries +
                report.churn_deferred_kills,
            1u);
}

TEST(ChaosSoak, ChurnScheduleIsDeterministic) {
  // Kills off: with no kill deferrals gating churn steps, the schedule
  // fires at fixed global data-event counts and every accept/refuse
  // decision depends only on registry state — so the accepted-op counts
  // replay exactly. (WHICH boundary each op commits at still depends on
  // worker timing, like swap completion in DeterministicInTheSeed; both
  // runs diffed clean against their own interval-filtered oracle.)
  SoakConfig config = SmallConfig(9);
  config.kill_every = 0;
  config.churn_every = 1500;
  const SoakReport a = RunSoak(config);
  const SoakReport b = RunSoak(config);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.events_ingested, b.events_ingested);
  EXPECT_EQ(a.queries_registered, b.queries_registered);
  EXPECT_EQ(a.queries_retired, b.queries_retired);
  EXPECT_GT(a.queries_registered, 0u);
}

TEST(ChaosSoak, RefusesNonsenseConfigs) {
  SoakConfig config = SmallConfig(1);
  config.rounds = 0;
  EXPECT_FALSE(RunSoak(config).ok);

  config = SmallConfig(1);
  config.max_lateness = config.round_length;  // lateness must stay below
  const SoakReport report = RunSoak(config);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("lateness"), std::string::npos) << report.error;
}

}  // namespace
}  // namespace sharon
