// Property suite for the incremental sharing optimizer
// (src/sharing/incremental.h): across seeded query-set edit scripts —
// register / retire / reactivate in random order — the PATCHED optimizer
// must be indistinguishable from a FROM-SCRATCH rebuild over the same
// active set: identical conflict clusters, identical sharing plan,
// identical (bit-exact) plan score. Both the patch path and the fallback
// threshold path are forced explicitly.
//
// Seeds honor SHARON_DISORDER_SEED_BASE like the other property suites,
// so the CI seed matrix sweeps disjoint script families.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/planner/optimizer.h"
#include "src/sharing/cost_model.h"
#include "src/sharing/incremental.h"

namespace sharon {
namespace {

using sharing::IncrementalConfig;
using sharing::IncrementalSharingOptimizer;

uint64_t SweepBaseSeed() {
  const char* env = std::getenv("SHARON_DISORDER_SEED_BASE");
  return env ? static_cast<uint64_t>(std::atoll(env)) : 0;
}

constexpr uint32_t kNumTypes = 6;
const WindowSpec kWindow{Seconds(10), Seconds(5)};

Query RandomQuery(std::mt19937_64& rng) {
  std::uniform_int_distribution<size_t> len_dist(2, 4);
  const size_t len = len_dist(rng);
  // Distinct types (assumption 3), random order.
  std::vector<EventTypeId> types(kNumTypes);
  for (uint32_t t = 0; t < kNumTypes; ++t) types[t] = t;
  std::shuffle(types.begin(), types.end(), rng);
  types.resize(len);
  Query q;
  q.pattern = Pattern(types);
  q.agg = AggSpec::CountStar();
  q.window = kWindow;
  q.partition_attr = 0;
  return q;
}

TypeRates RandomRates(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> rate_dist(0.5, 12.0);
  TypeRates rates;
  for (uint32_t t = 0; t < kNumTypes; ++t) rates.Set(t, rate_dist(rng));
  return rates;
}

Workload SeedWorkload(std::mt19937_64& rng, size_t n) {
  Workload w;
  for (size_t i = 0; i < n; ++i) w.Add(RandomQuery(rng));
  return w;
}

/// The heart of the suite: a patched optimizer and a freshly constructed
/// one (ctor = full Rebuild) must agree on EVERYTHING observable.
void ExpectEquivalent(const IncrementalSharingOptimizer& patched,
                      const Workload& w, const CostModel& cm,
                      const IncrementalConfig& cfg, const std::string& label) {
  IncrementalSharingOptimizer fresh(&w, cm, cfg);
  EXPECT_EQ(patched.Clusters(), fresh.Clusters()) << label;
  EXPECT_EQ(patched.plan(), fresh.plan()) << label;
  // Bit-exact: both scores are PlanScore over the identical plan vector.
  EXPECT_EQ(patched.score(), fresh.score()) << label;
  EXPECT_EQ(patched.num_vertices(), fresh.num_vertices()) << label;
}

/// Runs one seeded edit script and checks patch ≡ rebuild after EVERY op.
/// Returns the optimizer's final stats for path assertions.
sharing::IncrementalStats RunEditScript(uint64_t seed,
                                        const IncrementalConfig& cfg,
                                        size_t ops = 14) {
  std::mt19937_64 rng(seed);
  Workload w = SeedWorkload(rng, 8);
  CostModel cm(RandomRates(rng));
  IncrementalSharingOptimizer inc(&w, cm, cfg);
  ExpectEquivalent(inc, w, cm, cfg, "seed=" + std::to_string(seed) + " init");

  for (size_t op = 0; op < ops; ++op) {
    const std::string label = "seed=" + std::to_string(seed) +
                              " fallback=" + std::to_string(cfg.fallback_fraction) +
                              " op=" + std::to_string(op);
    std::vector<QueryId> active, inactive;
    for (const Query& q : w.queries()) {
      (w.active(q.id) ? active : inactive).push_back(q.id);
    }
    const uint64_t roll = rng() % 3;
    if (roll == 0 && active.size() > 1) {
      // Retire a random active query.
      const QueryId id = active[rng() % active.size()];
      w.SetActive(id, false);
      inc.OnRetire(id);
    } else if (roll == 1 && !inactive.empty()) {
      // Reactivate a random retired query.
      const QueryId id = inactive[rng() % inactive.size()];
      w.SetActive(id, true);
      inc.OnRegister(id);
    } else {
      // Register a brand-new query.
      const QueryId id = w.Add(RandomQuery(rng));
      inc.OnRegister(id);
    }
    ExpectEquivalent(inc, w, cm, cfg, label);

    // Sanity floor: the clustered per-component solve can never lose to
    // a single global GWMIN pass (GWMIN decomposes across components and
    // each cluster takes max(GO, SO)).
    const OptimizerResult go = OptimizeGreedy(w, cm);
    EXPECT_GE(inc.score() + 1e-9, go.score) << label;
  }
  return inc.stats();
}

TEST(IncrementalOptimizer, PatchEqualsRebuildAcrossEditScripts) {
  const uint64_t base = SweepBaseSeed();
  for (uint64_t s = 0; s < 5; ++s) {
    IncrementalConfig cfg;  // default threshold: both paths can fire
    RunEditScript(base + 101 + s, cfg);
  }
}

// fallback_fraction = 1.0: touched can never exceed the whole graph, so
// every op takes the PATCH path — the pure incremental algebra.
TEST(IncrementalOptimizer, PatchPathOnlyStaysEquivalent) {
  IncrementalConfig cfg;
  cfg.fallback_fraction = 1.0;
  const sharing::IncrementalStats stats = RunEditScript(SweepBaseSeed() + 7, cfg);
  EXPECT_GT(stats.patches, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

// fallback_fraction = 0.0: any touched vertex at all trips the threshold,
// exercising the fallback path on (nearly) every op.
TEST(IncrementalOptimizer, FallbackPathFiresAndStaysEquivalent) {
  IncrementalConfig cfg;
  cfg.fallback_fraction = 0.0;
  const sharing::IncrementalStats stats = RunEditScript(SweepBaseSeed() + 7, cfg);
  EXPECT_GT(stats.fallbacks, 0u);
}

// Rate drift invalidates every cluster weight: SetRates must rebuild and
// land exactly where a fresh optimizer under the new rates lands.
TEST(IncrementalOptimizer, SetRatesMatchesFreshRebuild) {
  std::mt19937_64 rng(SweepBaseSeed() + 31);
  Workload w = SeedWorkload(rng, 8);
  CostModel cm0(RandomRates(rng));
  IncrementalConfig cfg;
  IncrementalSharingOptimizer inc(&w, cm0, cfg);

  TypeRates drifted = RandomRates(rng);
  inc.SetRates(drifted);
  ExpectEquivalent(inc, w, CostModel(drifted), cfg, "post-drift");
}

// Deterministic replay: the same seed yields the same final plan object,
// which is what makes CI's seed matrix reproducible.
TEST(IncrementalOptimizer, ScriptsAreDeterministic) {
  const uint64_t seed = SweepBaseSeed() + 57;
  IncrementalConfig cfg;

  auto run = [&]() {
    std::mt19937_64 rng(seed);
    Workload w = SeedWorkload(rng, 6);
    CostModel cm(RandomRates(rng));
    IncrementalSharingOptimizer inc(&w, cm, cfg);
    for (size_t op = 0; op < 6; ++op) {
      const QueryId id = w.Add(RandomQuery(rng));
      inc.OnRegister(id);
    }
    return inc.plan();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sharon
