// Unit tests for the observability layer (src/obs/): histogram bucket
// boundaries, trace-ring wraparound and cross-ring merge ordering,
// snapshot determinism under concurrent writers, and the exporter's two
// wire formats (JSON-lines shape, Prometheus golden text).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/runtime_telemetry.h"
#include "src/obs/trace.h"

namespace sharon::obs {
namespace {

// --- histogram buckets ------------------------------------------------------

TEST(HistogramCell, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(HistogramCell::BucketFor(0), 0u);
  // Bucket i (1..32) holds bit-width-i values: [2^(i-1), 2^i - 1].
  EXPECT_EQ(HistogramCell::BucketFor(1), 1u);
  EXPECT_EQ(HistogramCell::BucketFor(2), 2u);
  EXPECT_EQ(HistogramCell::BucketFor(3), 2u);
  EXPECT_EQ(HistogramCell::BucketFor(4), 3u);
  EXPECT_EQ(HistogramCell::BucketFor(7), 3u);
  EXPECT_EQ(HistogramCell::BucketFor(8), 4u);
  EXPECT_EQ(HistogramCell::BucketFor((uint64_t{1} << 31)), 32u);
  EXPECT_EQ(HistogramCell::BucketFor((uint64_t{1} << 32) - 1), 32u);
  // 2^32 and above land in the overflow bucket, up to UINT64_MAX.
  EXPECT_EQ(HistogramCell::BucketFor(uint64_t{1} << 32),
            HistogramCell::kOverflowBucket);
  EXPECT_EQ(HistogramCell::BucketFor(UINT64_MAX),
            HistogramCell::kOverflowBucket);
}

TEST(HistogramCell, UpperBoundsMatchBuckets) {
  EXPECT_EQ(HistogramCell::UpperBound(0), 0u);
  EXPECT_EQ(HistogramCell::UpperBound(1), 1u);
  EXPECT_EQ(HistogramCell::UpperBound(3), 7u);
  EXPECT_EQ(HistogramCell::UpperBound(32), (uint64_t{1} << 32) - 1);
  EXPECT_EQ(HistogramCell::UpperBound(HistogramCell::kOverflowBucket),
            UINT64_MAX);
  // Every value is <= the upper bound of its own bucket and > the upper
  // bound of the previous one.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{100},
                     uint64_t{65536}, (uint64_t{1} << 32) - 1}) {
    const size_t b = HistogramCell::BucketFor(v);
    EXPECT_LE(v, HistogramCell::UpperBound(b)) << v;
    if (b > 0) EXPECT_GT(v, HistogramCell::UpperBound(b - 1)) << v;
  }
}

TEST(HistogramCell, RecordAccumulatesCountAndSum) {
  HistogramCell h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(uint64_t{1} << 40);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u + (uint64_t{1} << 40));
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 2u);  // 5 has bit width 3
  EXPECT_EQ(h.bucket(HistogramCell::kOverflowBucket), 1u);
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistry, CellPointersAreStableAcrossRegistrations) {
  MetricsRegistry registry;
  CounterCell* first = registry.Counter("first_total");
  first->Add(7);
  // A deque backs the entries, so growing the registry must not move the
  // early cells (the hot path holds raw pointers).
  std::vector<CounterCell*> cells;
  for (int i = 0; i < 100; ++i) {
    cells.push_back(registry.Counter("c" + std::to_string(i) + "_total"));
  }
  first->Add(1);
  cells[0]->Add(2);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 101u);
  EXPECT_EQ(snap.counters[0].name, "first_total");
  EXPECT_EQ(snap.counters[0].value, 8u);
  EXPECT_EQ(snap.counters[1].value, 2u);
}

TEST(MetricsRegistry, SnapshotIsConsistentUnderConcurrentWriters) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  struct WriterCells {
    CounterCell* counter;
    HistogramCell* histogram;
  };
  std::vector<WriterCells> cells;
  for (int w = 0; w < kWriters; ++w) {
    cells.push_back(
        {registry.Counter("events_total", {{"writer", std::to_string(w)}}),
         registry.Histogram("sizes", {{"writer", std::to_string(w)}})});
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        cells[w].counter->Inc();
        cells[w].histogram->Record(i % 257);
      }
    });
  }
  // Sample while the writers hammer their cells: every snapshot must be
  // internally consistent (histogram count == sum of buckets) and
  // counters monotone across snapshots.
  std::vector<uint64_t> last_counts(kWriters, 0);
  while (!stop.load()) {
    const MetricsSnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.counters.size(), static_cast<size_t>(kWriters));
    for (int w = 0; w < kWriters; ++w) {
      EXPECT_GE(snap.counters[w].value, last_counts[w]);
      last_counts[w] = snap.counters[w].value;
      uint64_t bucket_sum = 0;
      for (uint64_t b : snap.histograms[w].data.buckets) bucket_sum += b;
      EXPECT_EQ(snap.histograms[w].data.count, bucket_sum);
    }
    bool all_done = true;
    for (int w = 0; w < kWriters; ++w) {
      all_done = all_done && last_counts[w] == kPerWriter;
    }
    if (all_done) stop.store(true);
  }
  for (auto& t : writers) t.join();
  const MetricsSnapshot final_snap = registry.Snapshot();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(final_snap.counters[w].value, kPerWriter);
    EXPECT_EQ(final_snap.histograms[w].data.count, kPerWriter);
  }
}

// --- trace ring -------------------------------------------------------------

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceClock clock;
  EXPECT_EQ(TraceRing(&clock, 0, 1).capacity(), 8u);    // minimum
  EXPECT_EQ(TraceRing(&clock, 0, 8).capacity(), 8u);
  EXPECT_EQ(TraceRing(&clock, 0, 9).capacity(), 16u);
  EXPECT_EQ(TraceRing(&clock, 0, 4096).capacity(), 4096u);
}

TEST(TraceRing, WraparoundKeepsTheNewestEvents) {
  TraceClock clock;
  TraceRing ring(&clock, 3, 8);
  for (int i = 0; i < 20; ++i) {
    ring.Emit(TraceKind::kWatermarkAdvance, /*stream_time=*/i, /*a=*/i);
  }
  EXPECT_EQ(ring.emitted(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const std::vector<TraceEvent> events = ring.Dump();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    // The survivors are emissions 12..19, oldest first, seq = emission
    // index and source stamped from the ring.
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].a, static_cast<int64_t>(12 + i));
    EXPECT_EQ(events[i].source, 3u);
    EXPECT_EQ(events[i].kind, TraceKind::kWatermarkAdvance);
    if (i > 0) EXPECT_GE(events[i].nanos, events[i - 1].nanos);
  }
}

TEST(TraceRing, MergeOrdersAcrossRingsBySharedClock) {
  TraceClock clock;
  TraceRing a(&clock, 0, 64);
  TraceRing b(&clock, 1, 64);
  // Interleave emissions; the shared steady clock makes the real-time
  // emission order recoverable in the merge.
  for (int i = 0; i < 10; ++i) {
    a.Emit(TraceKind::kWatermarkAdvance, i);
    b.Emit(TraceKind::kReorderRelease, i);
  }
  const std::vector<TraceEvent> merged = MergeTraces({&a, &b, nullptr});
  ASSERT_EQ(merged.size(), 20u);
  for (size_t i = 1; i < merged.size(); ++i) {
    const TraceEvent& prev = merged[i - 1];
    const TraceEvent& cur = merged[i];
    const bool ordered =
        prev.nanos < cur.nanos ||
        (prev.nanos == cur.nanos &&
         (prev.source < cur.source ||
          (prev.source == cur.source && prev.seq < cur.seq)));
    EXPECT_TRUE(ordered) << "at " << i;
  }
  // Per-ring relative order always survives the merge.
  uint64_t last_a_seq = 0;
  for (const TraceEvent& e : merged) {
    if (e.source == 0) {
      EXPECT_GE(e.seq, last_a_seq);
      last_a_seq = e.seq;
    }
  }
}

TEST(TraceRing, DumpIsSafeWhileEmitting) {
  TraceClock clock;
  TraceRing ring(&clock, 0, 16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Emit(TraceKind::kWatermarkAdvance, static_cast<Timestamp>(i), 1, 2);
      ++i;
    }
  });
  // Concurrent dumps must only ever see fully-published slots: payloads
  // are constant per emission except stream_time, so any torn read would
  // show a/b mismatched.
  for (int round = 0; round < 200; ++round) {
    for (const TraceEvent& e : ring.Dump()) {
      EXPECT_EQ(e.kind, TraceKind::kWatermarkAdvance);
      EXPECT_EQ(e.a, 1);
      EXPECT_EQ(e.b, 2);
    }
  }
  stop.store(true);
  writer.join();
}

// --- runtime telemetry hub --------------------------------------------------

TEST(RuntimeTelemetry, TopologyAndToggles) {
  ObsOptions both;
  both.metrics = true;
  both.trace = true;
  both.trace_ring_capacity = 32;
  RuntimeTelemetry t(/*num_shards=*/2, /*num_partitions=*/3, both);
  EXPECT_NE(t.engine_obs(0)->late_dropped, nullptr);
  EXPECT_NE(t.engine_obs(1)->ring, nullptr);
  EXPECT_NE(t.shard_cells(1).events, nullptr);
  EXPECT_NE(t.ingest_cells(2).events, nullptr);
  EXPECT_NE(t.control_cells().swap_requests, nullptr);
  EXPECT_NE(t.control_ring(), nullptr);
  EXPECT_EQ(t.control_source(), 2u);
  EXPECT_EQ(t.partition_source(0), 3u);
  EXPECT_EQ(t.shard_ring(0)->source(), 0u);
  EXPECT_EQ(t.partition_ring(2)->source(), 5u);

  ObsOptions metrics_only;
  metrics_only.metrics = true;
  RuntimeTelemetry m(1, 1, metrics_only);
  EXPECT_EQ(m.shard_ring(0), nullptr);
  EXPECT_EQ(m.control_ring(), nullptr);
  EXPECT_NE(m.shard_cells(0).events, nullptr);
  EXPECT_EQ(m.engine_obs(0)->ring, nullptr);

  ObsOptions trace_only;
  trace_only.trace = true;
  RuntimeTelemetry tr(1, 1, trace_only);
  EXPECT_NE(tr.shard_ring(0), nullptr);
  EXPECT_EQ(tr.shard_cells(0).events, nullptr);
  EXPECT_EQ(tr.engine_obs(0)->late_dropped, nullptr);
  EXPECT_EQ(tr.engine_obs(0)->ring, tr.shard_ring(0));
}

// --- exporter ---------------------------------------------------------------

TEST(Exporter, MetricsJsonLineShape) {
  MetricsRegistry registry;
  registry.Counter("sharon_events_total", {{"shard", "0"}})->Add(42);
  registry.Gauge("sharon_watermark_ticks")->Set(-1);
  registry.Histogram("sharon_lat")->Record(5);
  const std::string line =
      MetricsJsonLine(registry.Snapshot(), /*seq=*/3, /*wall_seconds=*/1.5);
  EXPECT_NE(line.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"metrics\""), std::string::npos);
  EXPECT_NE(line.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(line.find("\"wall_seconds\":1.500000"), std::string::npos);
  EXPECT_NE(line.find("{\"name\":\"sharon_events_total\",\"labels\":{\"shard\":"
                      "\"0\"},\"value\":42}"),
            std::string::npos);
  EXPECT_NE(line.find("{\"name\":\"sharon_watermark_ticks\",\"labels\":{},"
                      "\"value\":-1}"),
            std::string::npos);
  EXPECT_NE(line.find("\"count\":1,\"sum\":5,\"buckets\":[0,0,0,1,0"),
            std::string::npos);
  // One self-contained object per line: no embedded newline, brace-closed.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.back(), '}');
}

TEST(Exporter, TraceJsonLineShape) {
  TraceEvent e;
  e.nanos = 12345;
  e.seq = 7;
  e.source = 2;
  e.kind = TraceKind::kSwapRetired;
  e.stream_time = 800;
  e.a = 1;
  e.b = 96;
  const std::string line = TraceJsonLine(e);
  EXPECT_EQ(line,
            "{\"schema_version\":1,\"kind\":\"trace\",\"nanos\":12345,"
            "\"seq\":7,\"source\":2,\"event\":\"swap_retired\","
            "\"stream_time\":800,\"a\":1,\"b\":96}");
}

TEST(Exporter, PrometheusGoldenText) {
  MetricsRegistry registry;
  registry.Counter("t_total")->Add(3);
  registry.Gauge("g", {{"shard", "1"}})->Set(-2);
  HistogramCell* h = registry.Histogram("h");
  h->Record(0);
  h->Record(5);
  const std::string expected =
      "# TYPE t_total counter\n"
      "t_total 3\n"
      "# TYPE g gauge\n"
      "g{shard=\"1\"} -2\n"
      "# TYPE h histogram\n"
      "h_bucket{le=\"0\"} 1\n"
      "h_bucket{le=\"1\"} 1\n"
      "h_bucket{le=\"3\"} 1\n"
      "h_bucket{le=\"7\"} 2\n"
      "h_bucket{le=\"15\"} 2\n"
      "h_bucket{le=\"31\"} 2\n"
      "h_bucket{le=\"63\"} 2\n"
      "h_bucket{le=\"127\"} 2\n"
      "h_bucket{le=\"255\"} 2\n"
      "h_bucket{le=\"511\"} 2\n"
      "h_bucket{le=\"1023\"} 2\n"
      "h_bucket{le=\"2047\"} 2\n"
      "h_bucket{le=\"4095\"} 2\n"
      "h_bucket{le=\"8191\"} 2\n"
      "h_bucket{le=\"16383\"} 2\n"
      "h_bucket{le=\"32767\"} 2\n"
      "h_bucket{le=\"65535\"} 2\n"
      "h_bucket{le=\"131071\"} 2\n"
      "h_bucket{le=\"262143\"} 2\n"
      "h_bucket{le=\"524287\"} 2\n"
      "h_bucket{le=\"1048575\"} 2\n"
      "h_bucket{le=\"2097151\"} 2\n"
      "h_bucket{le=\"4194303\"} 2\n"
      "h_bucket{le=\"8388607\"} 2\n"
      "h_bucket{le=\"16777215\"} 2\n"
      "h_bucket{le=\"33554431\"} 2\n"
      "h_bucket{le=\"67108863\"} 2\n"
      "h_bucket{le=\"134217727\"} 2\n"
      "h_bucket{le=\"268435455\"} 2\n"
      "h_bucket{le=\"536870911\"} 2\n"
      "h_bucket{le=\"1073741823\"} 2\n"
      "h_bucket{le=\"2147483647\"} 2\n"
      "h_bucket{le=\"4294967295\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_sum 5\n"
      "h_count 2\n";
  EXPECT_EQ(PrometheusText(registry.Snapshot()), expected);
}

TEST(Exporter, PrometheusGroupsSeriesOfOneMetricName) {
  MetricsRegistry registry;
  registry.Counter("a_total", {{"shard", "0"}})->Add(1);
  registry.Counter("b_total")->Add(2);
  registry.Counter("a_total", {{"shard", "1"}})->Add(3);
  const std::string text = PrometheusText(registry.Snapshot());
  // One contiguous group per metric name, # TYPE emitted exactly once.
  EXPECT_EQ(text,
            "# TYPE a_total counter\n"
            "a_total{shard=\"0\"} 1\n"
            "a_total{shard=\"1\"} 3\n"
            "# TYPE b_total counter\n"
            "b_total 2\n");
}

TEST(Exporter, FileSinksAppendMetricsAndRewritePrometheus) {
  MetricsRegistry registry;
  CounterCell* c = registry.Counter("n_total");
  const std::string dir = ::testing::TempDir();
  ExporterOptions opts;
  opts.metrics_path = dir + "/obs_test_metrics.jsonl";
  opts.prometheus_path = dir + "/obs_test.prom";
  opts.period_seconds = 0;  // every Tick exports
  std::remove(opts.metrics_path.c_str());
  std::vector<std::string> sunk;
  opts.sink = [&](const std::string& line) { sunk.push_back(line); };
  SnapshotExporter exporter([&] { return registry.Snapshot(); }, opts);
  c->Add(1);
  EXPECT_TRUE(exporter.Tick());
  c->Add(1);
  EXPECT_TRUE(exporter.ExportNow());
  EXPECT_EQ(exporter.exports(), 2u);
  EXPECT_TRUE(exporter.error().empty());
  ASSERT_EQ(sunk.size(), 2u);
  EXPECT_NE(sunk[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(sunk[1].find("\"seq\":1"), std::string::npos);

  std::ifstream metrics(opts.metrics_path);
  std::string line;
  size_t lines = 0;
  while (std::getline(metrics, line)) {
    EXPECT_EQ(line, sunk[lines]);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);  // JSON-lines file appends

  std::ifstream prom(opts.prometheus_path);
  std::stringstream buf;
  buf << prom.rdbuf();
  // Prometheus file is rewritten whole: only the LATEST exposition.
  EXPECT_EQ(buf.str(),
            "# TYPE n_total counter\n"
            "n_total 2\n");
}

TEST(Exporter, WriteTraceFileRoundTrips) {
  TraceClock clock;
  TraceRing ring(&clock, 1, 8);
  ring.Emit(TraceKind::kCheckpointSealed, 100, 1, 2048);
  const std::string path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  ASSERT_EQ(WriteTraceFile(path, ring.Dump()), "");
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\":\"checkpoint_sealed\""), std::string::npos);
  EXPECT_NE(line.find("\"stream_time\":100"), std::string::npos);
  EXPECT_NE(line.find("\"b\":2048"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
}

TEST(Exporter, EveryTraceKindHasAStableName) {
  for (int k = 0; k <= static_cast<int>(TraceKind::kReoptDecision); ++k) {
    const char* name = TraceKindName(static_cast<TraceKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "kind " << k;
  }
}

}  // namespace
}  // namespace sharon::obs
