// Unit tests for the AggState semiring (src/query/aggregate.h): the algebra
// underlying both the A-Seq updates and the Sharon combination step.

#include "src/query/aggregate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sharon {
namespace {

Event MakeEvent(EventTypeId type, Timestamp t, AttrValue v) {
  Event e;
  e.type = type;
  e.time = t;
  e.attrs = {v};
  return e;
}

TEST(AggStateTest, ZeroIsEmpty) {
  AggState z = AggState::Zero();
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.count, 0);
  EXPECT_EQ(z.Final(AggFunction::kCountStar), 0);
}

TEST(AggStateTest, IdentityIsConcatNeutral) {
  AggSpec spec = AggSpec::Of(AggFunction::kSum, 3, 0);
  Event e = MakeEvent(3, 1, 7);
  AggState u = AggState::Unit(ContributionOf(e, spec));
  AggState left = AggState::Concat(AggState::Identity(), u);
  AggState right = AggState::Concat(u, AggState::Identity());
  EXPECT_EQ(left, u);
  EXPECT_EQ(right, u);
}

TEST(AggStateTest, UnitCountsOneSequence) {
  AggSpec spec = AggSpec::Of(AggFunction::kSum, 3, 0);
  AggState u = AggState::Unit(ContributionOf(MakeEvent(3, 1, 7), spec));
  EXPECT_EQ(u.count, 1);
  EXPECT_EQ(u.sum, 7);
  EXPECT_EQ(u.target_count, 1);
  EXPECT_EQ(u.min, 7);
  EXPECT_EQ(u.max, 7);
}

TEST(AggStateTest, UnitOfNonTargetEvent) {
  AggSpec spec = AggSpec::Of(AggFunction::kSum, 3, 0);
  AggState u = AggState::Unit(ContributionOf(MakeEvent(5, 1, 7), spec));
  EXPECT_EQ(u.count, 1);
  EXPECT_EQ(u.sum, 0);
  EXPECT_EQ(u.target_count, 0);
  EXPECT_TRUE(std::isinf(u.min));
}

TEST(AggStateTest, ExtendMultipliesByCount) {
  // Three sequences with total sum 10, extended by a target event of
  // value 4: each sequence grows by 4, so sum = 10 + 3*4 = 22.
  AggState a;
  a.count = 3;
  a.sum = 10;
  a.target_count = 2;
  a.min = 2;
  a.max = 8;
  AggSpec spec = AggSpec::Of(AggFunction::kSum, 1, 0);
  AggState b = AggState::Extend(a, ContributionOf(MakeEvent(1, 5, 4), spec));
  EXPECT_EQ(b.count, 3);
  EXPECT_EQ(b.sum, 22);
  EXPECT_EQ(b.target_count, 5);
  EXPECT_EQ(b.min, 2);  // 4 > existing min 2
  EXPECT_EQ(b.max, 8);  // 4 < existing max 8
}

TEST(AggStateTest, ExtendOfZeroIsZero) {
  AggSpec spec = AggSpec::CountStar();
  AggState b = AggState::Extend(AggState::Zero(),
                                ContributionOf(MakeEvent(1, 5, 4), spec));
  EXPECT_TRUE(b.IsZero());
}

TEST(AggStateTest, ConcatCrossMultiplies) {
  // A: 2 sequences, sum 5. B: 3 sequences, sum 7.
  // Concatenated: 6 sequences; each A-sequence appears 3 times and each
  // B-sequence twice, so sum = 5*3 + 7*2 = 29.
  AggState a;
  a.count = 2;
  a.sum = 5;
  a.target_count = 1;
  a.min = 1;
  a.max = 4;
  AggState b;
  b.count = 3;
  b.sum = 7;
  b.target_count = 4;
  b.min = 0;
  b.max = 9;
  AggState c = AggState::Concat(a, b);
  EXPECT_EQ(c.count, 6);
  EXPECT_EQ(c.sum, 29);
  EXPECT_EQ(c.target_count, 1 * 3 + 4 * 2);
  EXPECT_EQ(c.min, 0);
  EXPECT_EQ(c.max, 9);
}

TEST(AggStateTest, ConcatWithZeroIsZero) {
  AggState a;
  a.count = 2;
  EXPECT_TRUE(AggState::Concat(a, AggState::Zero()).IsZero());
  EXPECT_TRUE(AggState::Concat(AggState::Zero(), a).IsZero());
}

TEST(AggStateTest, ConcatIsAssociative) {
  AggState a, b, c;
  a.count = 2; a.sum = 5; a.target_count = 1; a.min = 1; a.max = 4;
  b.count = 3; b.sum = 7; b.target_count = 4; b.min = 0; b.max = 9;
  c.count = 4; c.sum = 1; c.target_count = 2; c.min = 3; c.max = 3;
  AggState left = AggState::Concat(AggState::Concat(a, b), c);
  AggState right = AggState::Concat(a, AggState::Concat(b, c));
  EXPECT_EQ(left, right);
}

TEST(AggStateTest, MergeAdds) {
  AggState a, b;
  a.count = 2; a.sum = 5; a.min = 1; a.max = 4;
  b.count = 3; b.sum = 7; b.min = 0; b.max = 9;
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 5);
  EXPECT_EQ(a.sum, 12);
  EXPECT_EQ(a.min, 0);
  EXPECT_EQ(a.max, 9);
}

TEST(AggStateTest, ConcatDistributesOverMerge) {
  // Concat(a, b1 + b2) == Concat(a, b1) + Concat(a, b2): required for the
  // correctness of merging pane buckets before combination.
  AggState a, b1, b2;
  a.count = 2; a.sum = 5; a.target_count = 3; a.min = 1; a.max = 4;
  b1.count = 3; b1.sum = 7; b1.target_count = 1; b1.min = 0; b1.max = 9;
  b2.count = 1; b2.sum = 2; b2.target_count = 5; b2.min = 6; b2.max = 6;
  AggState merged = b1;
  merged.MergeFrom(b2);
  AggState lhs = AggState::Concat(a, merged);
  AggState rhs = AggState::Concat(a, b1);
  rhs.MergeFrom(AggState::Concat(a, b2));
  EXPECT_EQ(lhs, rhs);
}

TEST(AggStateTest, FinalExtraction) {
  AggState s;
  s.count = 4;
  s.sum = 20;
  s.target_count = 8;
  s.min = 2;
  s.max = 9;
  EXPECT_EQ(s.Final(AggFunction::kCountStar), 4);
  EXPECT_EQ(s.Final(AggFunction::kCountType), 8);
  EXPECT_EQ(s.Final(AggFunction::kSum), 20);
  EXPECT_EQ(s.Final(AggFunction::kMin), 2);
  EXPECT_EQ(s.Final(AggFunction::kMax), 9);
  EXPECT_EQ(s.Final(AggFunction::kAvg), 2.5);
}

TEST(AggStateTest, FinalOfEmptyMinIsNaN) {
  EXPECT_TRUE(std::isnan(AggState::Zero().Final(AggFunction::kMin)));
  EXPECT_TRUE(std::isnan(AggState::Zero().Final(AggFunction::kAvg)));
}

TEST(ContributionTest, CountTypeContributesOnePerTargetEvent) {
  AggSpec spec = AggSpec::Of(AggFunction::kCountType, 2, kNoAttr);
  EventContribution c = ContributionOf(MakeEvent(2, 1, 99), spec);
  EXPECT_EQ(c.add, 1);
  EXPECT_TRUE(c.is_target);
  EventContribution other = ContributionOf(MakeEvent(3, 1, 99), spec);
  EXPECT_EQ(other.add, 0);
  EXPECT_FALSE(other.is_target);
}

TEST(ContributionTest, CountStarIgnoresEverything) {
  AggSpec spec = AggSpec::CountStar();
  EventContribution c = ContributionOf(MakeEvent(2, 1, 99), spec);
  EXPECT_EQ(c.add, 0);
  EXPECT_FALSE(c.is_target);
}

}  // namespace
}  // namespace sharon
