// FlatMap unit + property tests (src/common/flat_map.h): the group table
// and result-row store of the hot path. The load-bearing behaviours are
// robin-hood insertion, backward-shift deletion (no tombstones), erase
// during iteration (the eviction sweep), rehash under churn, move-only
// values, and capacity retention across clear().

#include "src/common/flat_map.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_map>

#include "src/common/rng.h"

namespace sharon {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int64_t, int, Mix64Hash> m;
  EXPECT_TRUE(m.empty());
  m[7] = 70;
  m[8] = 80;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), m.end());
  EXPECT_EQ(m.find(7)->second, 70);
  EXPECT_EQ(m.find(9), m.end());
  EXPECT_FALSE(m.contains(9));
  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.find(8)->second, 80);
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<int64_t, int, Mix64Hash> m;
  EXPECT_EQ(m[42], 0);
  m[42] += 5;
  EXPECT_EQ(m[42], 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, TryEmplaceOnlyInsertsWhenAbsent) {
  FlatMap<int64_t, int, Mix64Hash> m;
  auto [it1, inserted1] = m.try_emplace(1, 10);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(it1->second, 10);
  auto [it2, inserted2] = m.try_emplace(1, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 10);
}

TEST(FlatMapTest, MoveOnlyValues) {
  FlatMap<int64_t, std::unique_ptr<int>, Mix64Hash> m;
  m[1] = std::make_unique<int>(11);
  m[2] = std::make_unique<int>(22);
  // Force rehash well past the initial capacity: pointers must survive.
  int* p1 = m[1].get();
  for (int64_t k = 10; k < 200; ++k) m[k] = std::make_unique<int>(0);
  EXPECT_EQ(m[1].get(), p1);
  EXPECT_EQ(*m[1], 11);
  EXPECT_EQ(*m[2], 22);
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.find(1), m.end());
}

TEST(FlatMapTest, IterationVisitsEveryEntry) {
  FlatMap<int64_t, int, Mix64Hash> m;
  std::set<int64_t> want;
  for (int64_t k = 0; k < 500; ++k) {
    m[k * 3] = static_cast<int>(k);
    want.insert(k * 3);
  }
  std::set<int64_t> got;
  for (const auto& [k, v] : m) {
    EXPECT_TRUE(got.insert(k).second) << "duplicate visit of " << k;
  }
  EXPECT_EQ(got, want);
}

TEST(FlatMapTest, EraseDuringIterationSweep) {
  FlatMap<int64_t, int, Mix64Hash> m;
  for (int64_t k = 0; k < 1000; ++k) m[k] = static_cast<int>(k % 7);
  // Evict-style sweep: erase every entry with value 0. Backward-shift
  // relocation may revisit survivors (documented), never skip a match.
  for (auto it = m.begin(); it != m.end();) {
    if (it->second == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  size_t live = 0;
  for (const auto& [k, v] : m) {
    EXPECT_NE(v, 0) << "unswept entry " << k;
    ++live;
  }
  EXPECT_EQ(live, m.size());
  for (int64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(m.contains(k), k % 7 != 0);
  }
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<int64_t, int, Mix64Hash> m;
  for (int64_t k = 0; k < 100; ++k) m[k] = 1;
  const size_t cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  for (int64_t k = 0; k < 100; ++k) m[k] = 2;
  EXPECT_EQ(m.capacity(), cap);  // refill within retained capacity
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<int64_t, int, Mix64Hash> m;
  m.reserve(1000);
  const size_t cap = m.capacity();
  for (int64_t k = 0; k < 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

// Randomized churn against a std::unordered_map mirror: interleaved
// inserts, merges, erases and sweeps must agree exactly. This is the
// rehash-under-group-churn regime watermark eviction produces.
TEST(FlatMapTest, ChurnMatchesUnorderedMapMirror) {
  FlatMap<int64_t, int64_t, Mix64Hash> m;
  std::unordered_map<int64_t, int64_t> mirror;
  Rng rng(1234);
  for (int op = 0; op < 30000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Below(700)) - 350;
    switch (rng.Below(4)) {
      case 0:
      case 1:  // upsert (biased: tables should mostly be full)
        m[key] += key;
        mirror[key] += key;
        break;
      case 2:  // point erase
        EXPECT_EQ(m.erase(key), mirror.erase(key));
        break;
      default:  // probe
        auto it = m.find(key);
        auto mit = mirror.find(key);
        ASSERT_EQ(it == m.end(), mit == mirror.end()) << "key " << key;
        if (mit != mirror.end()) EXPECT_EQ(it->second, mit->second);
        break;
    }
    if (op % 5000 == 4999) {  // periodic sweep, erase-while-iterating
      for (auto it = m.begin(); it != m.end();) {
        if (it->first % 5 == 0) {
          it = m.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = mirror.begin(); it != mirror.end();) {
        it = it->first % 5 == 0 ? mirror.erase(it) : std::next(it);
      }
    }
    ASSERT_EQ(m.size(), mirror.size()) << "after op " << op;
  }
  for (const auto& [k, v] : mirror) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end()) << "missing " << k;
    EXPECT_EQ(it->second, v);
  }
}

}  // namespace
}  // namespace sharon
