// Unit tests for SegmentCounter: per-START prefix aggregation, complete
// deltas, expiration, repeated types (§7.3) and state accounting.

#include "src/exec/segment_counter.h"

#include <gtest/gtest.h>

namespace sharon {
namespace {

constexpr EventTypeId kA = 0, kB = 1, kC = 2;

Event Ev(EventTypeId type, Timestamp t, AttrValue v = 0) {
  Event e;
  e.type = type;
  e.time = t;
  e.attrs = {v};
  return e;
}

TEST(SegmentCounterTest, PrefixCountsFollowFig6a) {
  SegmentCounter sc(Pattern({kA, kB}), AggSpec::CountStar(), {100, 100});
  sc.OnEvent(Ev(kA, 1));
  EXPECT_EQ(sc.num_live_starts(), 1u);
  EXPECT_TRUE(sc.last_deltas().empty());

  sc.OnEvent(Ev(kB, 2));
  ASSERT_EQ(sc.last_deltas().size(), 1u);
  EXPECT_EQ(sc.last_deltas()[0].delta.count, 1);

  sc.OnEvent(Ev(kA, 3));
  sc.OnEvent(Ev(kB, 4));
  // b4 completes one sequence per live start: (a1,b4) and (a3,b4).
  ASSERT_EQ(sc.last_deltas().size(), 2u);
  double total = 0;
  for (const auto& d : sc.last_deltas()) total += d.delta.count;
  EXPECT_EQ(total, 2);
  // Accumulated complete count for start a1 is now 2: (a1,b2), (a1,b4).
  EXPECT_EQ(sc.CompleteFor(0).count, 2);
  EXPECT_EQ(sc.CompleteFor(1).count, 1);
}

TEST(SegmentCounterTest, ExpirationDropsOldStarts) {
  SegmentCounter sc(Pattern({kA, kB}), AggSpec::CountStar(), {4, 1});
  sc.OnEvent(Ev(kA, 1));
  sc.OnEvent(Ev(kA, 3));
  sc.OnEvent(Ev(kB, 5));  // a1 expired (Fig. 6b), only a3 extends
  ASSERT_EQ(sc.last_deltas().size(), 1u);
  EXPECT_EQ(sc.last_deltas()[0].start_time, 3);
  EXPECT_EQ(sc.num_live_starts(), 1u);
  // Expired starts read as Zero.
  EXPECT_TRUE(sc.CompleteFor(0).IsZero());
  EXPECT_EQ(sc.StartTimeFor(0), -1);
}

TEST(SegmentCounterTest, NonPatternTypesAreIgnored) {
  SegmentCounter sc(Pattern({kA, kB}), AggSpec::CountStar(), {100, 100});
  sc.OnEvent(Ev(kC, 1));
  sc.OnEvent(Ev(kA, 2));
  sc.OnEvent(Ev(kC, 3));
  sc.OnEvent(Ev(kB, 4));
  ASSERT_EQ(sc.last_deltas().size(), 1u);
  EXPECT_EQ(sc.last_deltas()[0].delta.count, 1);
}

TEST(SegmentCounterTest, SingleTypeSegmentCompletesImmediately) {
  SegmentCounter sc(Pattern({kA}), AggSpec::CountStar(), {100, 100});
  sc.OnEvent(Ev(kA, 1));
  ASSERT_EQ(sc.last_deltas().size(), 1u);
  EXPECT_EQ(sc.last_deltas()[0].delta.count, 1);
  EXPECT_EQ(sc.NewestStartId(), 0u);
}

TEST(SegmentCounterTest, RepeatedTypeSection73) {
  // Pattern (A, B, A): an event of type A both starts sequences and ends
  // them, but must never extend through itself.
  SegmentCounter sc(Pattern({kA, kB, kA}), AggSpec::CountStar(), {100, 100});
  sc.OnEvent(Ev(kA, 1));
  sc.OnEvent(Ev(kB, 2));
  sc.OnEvent(Ev(kA, 3));  // completes (a1,b2,a3), starts a new a3
  ASSERT_EQ(sc.last_deltas().size(), 1u);
  EXPECT_EQ(sc.last_deltas()[0].delta.count, 1);
  EXPECT_EQ(sc.num_live_starts(), 2u);
  sc.OnEvent(Ev(kB, 4));
  sc.OnEvent(Ev(kA, 5));
  // New completions: (a1,b2,a5), (a1,b4,a5), (a3,b4,a5).
  double total = 0;
  for (const auto& d : sc.last_deltas()) total += d.delta.count;
  EXPECT_EQ(total, 3);
}

TEST(SegmentCounterTest, SumAggregation) {
  AggSpec spec = AggSpec::Of(AggFunction::kSum, kB, 0);
  SegmentCounter sc(Pattern({kA, kB}), spec, {100, 100});
  sc.OnEvent(Ev(kA, 1));
  sc.OnEvent(Ev(kB, 2, 10));
  sc.OnEvent(Ev(kB, 3, 5));
  // Sequences (a1,b2) sum 10 and (a1,b3) sum 5.
  EXPECT_EQ(sc.CompleteFor(0).sum, 15);
  EXPECT_EQ(sc.CompleteFor(0).count, 2);
  EXPECT_EQ(sc.CompleteFor(0).min, 5);
  EXPECT_EQ(sc.CompleteFor(0).max, 10);
}

TEST(SegmentCounterTest, EstimatedBytesTracksStarts) {
  SegmentCounter sc(Pattern({kA, kB}), AggSpec::CountStar(), {10, 1});
  EXPECT_EQ(sc.EstimatedBytes(), 0u);
  sc.OnEvent(Ev(kA, 1));
  size_t one = sc.EstimatedBytes();
  EXPECT_GT(one, 0u);
  sc.OnEvent(Ev(kA, 2));
  EXPECT_EQ(sc.EstimatedBytes(), 2 * one);
  sc.ExpireBefore(100);
  EXPECT_EQ(sc.EstimatedBytes(), 0u);
}

}  // namespace
}  // namespace sharon
