// Tests for the two-step baselines: exactness on small streams (already
// covered per-seed in property_test) plus the behaviours the paper calls
// out — explosive cost and budget-bounded "does not terminate" runs.

#include "src/twostep/two_step.h"

#include <gtest/gtest.h>

#include "src/twostep/reference.h"

namespace sharon {
namespace {

constexpr EventTypeId kA = 0, kB = 1, kC = 2;

Event Ev(EventTypeId type, Timestamp t) {
  Event e;
  e.type = type;
  e.time = t;
  e.attrs = {0, 0};
  return e;
}

Workload MakeWorkload(int copies) {
  Workload w;
  for (int i = 0; i < copies; ++i) {
    Query q;
    q.pattern = Pattern({kA, kB, kC});
    q.agg = AggSpec::CountStar();
    q.window = {50, 10};
    w.Add(q);
  }
  return w;
}

std::vector<Event> DenseStream(int n) {
  std::vector<Event> events;
  for (int i = 0; i < n; ++i) {
    events.push_back(Ev(static_cast<EventTypeId>(i % 3), i + 1));
  }
  return events;
}

TEST(TwoStepTest, FlinkLikeMatchesReference) {
  Workload w = MakeWorkload(2);
  std::vector<Event> events = DenseStream(60);
  ResultCollector got;
  RunStats stats = RunFlinkLike(w, events, {}, &got);
  ASSERT_TRUE(stats.finished);
  ResultCollector want = ReferenceResults(w, events);
  want.ForEachCell([&](const ResultKey& key, const AggState& state) {
    EXPECT_EQ(got.Get(key.query, key.window, key.group).count, state.count);
  });
}

TEST(TwoStepTest, SpassLikeSharesConstruction) {
  Workload w = MakeWorkload(3);
  std::vector<Event> events = DenseStream(60);
  SharingPlan plan = {{Pattern({kA, kB, kC}), {0, 1, 2}}};
  ResultCollector got;
  RunStats stats = RunSpassLike(w, plan, events, {}, &got);
  ASSERT_TRUE(stats.finished);
  ResultCollector want = ReferenceResults(w, events);
  want.ForEachCell([&](const ResultKey& key, const AggState& state) {
    EXPECT_EQ(got.Get(key.query, key.window, key.group).count, state.count);
  });
}

TEST(TwoStepTest, BudgetExhaustionReportsDnf) {
  // A stream dense in matches with a tiny budget must stop and report
  // finished = false (the paper's Flink/SPASS "does not terminate").
  Workload w = MakeWorkload(4);
  std::vector<Event> events = DenseStream(3000);
  TwoStepBudget budget;
  budget.max_operations = 10'000;
  ResultCollector sink;
  RunStats flink = RunFlinkLike(w, events, budget, &sink);
  EXPECT_FALSE(flink.finished);
  sink.Clear();
  RunStats spass = RunSpassLike(w, {}, events, budget, &sink);
  EXPECT_FALSE(spass.finished);
}

TEST(TwoStepTest, ConstructionCostIsSuperlinear) {
  // The number of constructed sequences is polynomial in events per
  // window (§1): ops must grow much faster than the event count.
  Workload w = MakeWorkload(1);
  TwoStepBudget budget;
  auto ops_for = [&](int n) {
    ResultCollector sink;
    std::vector<Event> events = DenseStream(n);
    StopWatch watch;
    RunStats stats = RunFlinkLike(w, events, budget, &sink);
    EXPECT_TRUE(stats.finished);
    return stats.peak_state_bytes + sink.size();  // proxy: matches stored
  };
  // Compare wall work via the result count of an exact count query: the
  // per-window match count for 4x the events should exceed 8x.
  Workload wc = MakeWorkload(1);
  std::vector<Event> small = DenseStream(30), big = DenseStream(120);
  ResultCollector rs, rb;
  RunFlinkLike(wc, small, budget, &rs);
  RunFlinkLike(wc, big, budget, &rb);
  double small_total = 0, big_total = 0;
  rs.ForEachCell(
      [&](const ResultKey&, const AggState& v) { small_total += v.count; });
  rb.ForEachCell(
      [&](const ResultKey&, const AggState& v) { big_total += v.count; });
  EXPECT_GT(big_total, 8 * small_total);
  (void)ops_for;
}

TEST(TwoStepTest, SpassWithEmptyPlanStillCorrect) {
  // No sharing candidates: SPASS degenerates to per-query construction.
  Workload w = MakeWorkload(2);
  std::vector<Event> events = DenseStream(40);
  ResultCollector got;
  RunStats stats = RunSpassLike(w, {}, events, {}, &got);
  ASSERT_TRUE(stats.finished);
  ResultCollector want = ReferenceResults(w, events);
  want.ForEachCell([&](const ResultKey& key, const AggState& state) {
    EXPECT_EQ(got.Get(key.query, key.window, key.group).count, state.count);
  });
}

}  // namespace
}  // namespace sharon
