// The zero-allocation contract of the executor hot path (DESIGN.md
// "Hot-path memory layout"), regression-tested with the process-wide
// allocation hook (src/common/alloc_stats.h):
//
// After warm-up — group state instantiated, ring buffers and recycling
// pools grown to the workload's high-water mark, finalized results
// drained once — a bounded-state Engine::Run over a shipped-schema
// stream performs ZERO heap allocations per event. Every per-event
// structure either lives inline (Event attrs), in a warmed flat table
// (groups, result rows), in a ring buffer (counter starts, snapshots),
// or rides a recycling pool (prefix vectors, pane vectors, batches).
//
// The test drives the full watermark pipeline (reorder buffer, window
// finalization, eviction) because that is the configuration whose steady
// state is genuinely bounded; grow-forever mode allocates for its
// monotonically growing result store by design.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/common/alloc_stats.h"
#include "src/exec/engine.h"
#include "src/planner/optimizer.h"
#include "src/sharing/cost_model.h"
#include "src/streamgen/rates.h"

namespace sharon {
namespace {

constexpr EventTypeId kA = 0, kB = 1, kC = 2;
constexpr Duration kLength = 64, kSlide = 16;
constexpr Timestamp kPunctuate = 32;
constexpr AttrValue kGroups = 4;

Query CountQuery(std::vector<EventTypeId> pattern) {
  Query q;
  q.pattern = Pattern(std::move(pattern));
  q.agg = AggSpec::CountStar();
  q.window = {kLength, kSlide};
  q.partition_attr = 0;
  return q;
}

Workload MakeWorkload() {
  Workload w;
  w.Add(CountQuery({kA, kB}));
  w.Add(CountQuery({kA, kB, kC}));
  w.Add(CountQuery({kB, kC}));
  return w;
}

/// Deterministic PERIODIC stream: groups round-robin, types cycling, one
/// tick per event, a watermark punctuation every kPunctuate ticks. The
/// event pattern repeats every LCM(3 types, kGroups) = 12 ticks, and all
/// window/punctuation periods divide 192 — so a phase-aligned steady
/// phase replays exactly the warm-up's state trajectory and every pool
/// and ring buffer already sits at its high-water mark.
std::vector<Event> MakeStream(Timestamp from, size_t events) {
  std::vector<Event> out;
  out.reserve(events + events / kPunctuate + 1);
  Timestamp next_punctuation = from + kPunctuate;
  for (size_t i = 0; i < events; ++i) {
    Event e;
    e.time = from + static_cast<Timestamp>(i) + 1;
    e.type = static_cast<EventTypeId>(i % 3);
    e.attrs = {static_cast<AttrValue>(i % kGroups), 1};
    if (e.time >= next_punctuation) {
      out.push_back(WatermarkEvent(e.time - 1));
      next_punctuation += kPunctuate;
    }
    out.push_back(std::move(e));
  }
  return out;
}

void ExpectZeroSteadyStateAllocs(Engine& engine, const char* label) {
  ASSERT_TRUE(engine.ok()) << engine.error();
  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = 0;
  engine.SetDisorderPolicy(policy);

  // 100 full 192-tick periods each; kWarm % 192 == 0 keeps the steady
  // phase aligned with warm-up (see MakeStream).
  constexpr size_t kWarm = 19200, kSteady = 19200;
  const std::vector<Event> warm = MakeStream(0, kWarm);
  const std::vector<Event> steady =
      MakeStream(static_cast<Timestamp>(kWarm), kSteady);

  // Warm-up: instantiate groups, grow rings/pools/tables to the
  // workload's high-water mark, cycle one full drain so the finalized
  // store's rows exist with capacity.
  engine.Run(warm, kWarm);
  uint64_t checksum = 0;
  std::function<void(const ResultKey&, const AggState&)> drain =
      [&checksum](const ResultKey& key, const AggState& state) {
        checksum += static_cast<uint64_t>(key.window) +
                    static_cast<uint64_t>(state.count);
      };
  ASSERT_GT(engine.DrainFinalized(drain), 0u) << label;

  const auto before = alloc_stats::Snapshot();
  engine.Run(steady, kSteady);
  const auto delta = alloc_stats::Snapshot() - before;
  EXPECT_EQ(delta.allocations, 0u)
      << label << ": the steady-state event path must not allocate ("
      << delta.allocations << " allocations over " << kSteady << " events)";

  // The run still did real work: events released, windows finalized.
  EXPECT_GT(engine.watermark_stats().finalized_windows, kWarm / kSlide)
      << label;
  EXPECT_GT(engine.DrainFinalized(drain), 0u) << label;
  (void)checksum;
}

TEST(ZeroAllocTest, AllocHookCounts) {
  const auto before = alloc_stats::Snapshot();
  auto* p = new int(7);
  const auto mid = alloc_stats::Snapshot() - before;
  EXPECT_GE(mid.allocations, 1u);
  EXPECT_GE(mid.bytes, sizeof(int));
  delete p;
  const auto delta = alloc_stats::Snapshot() - before;
  EXPECT_GE(delta.frees, 1u);
}

TEST(ZeroAllocTest, NonSharedEngineSteadyStateIsAllocationFree) {
  Workload w = MakeWorkload();
  Engine engine(w);  // A-Seq: one private chain per query
  ExpectZeroSteadyStateAllocs(engine, "non-shared");
}

TEST(ZeroAllocTest, SharedEngineSteadyStateIsAllocationFree) {
  Workload w = MakeWorkload();
  CostModel cm(TypeRates(std::vector<double>(3, 10.0)));
  OptimizerResult opt = OptimizeSharon(w, cm);
  ASSERT_FALSE(opt.plan.empty());
  Engine engine(w, opt.plan);
  ExpectZeroSteadyStateAllocs(engine, "shared");
}

// Metrics AND lifecycle tracing enabled: cells are preallocated at
// registration and the trace ring at construction, so the instrumented
// steady state stays allocation-free (the src/obs/metrics.h contract).
TEST(ZeroAllocTest, SteadyStateWithMetricsAndTracingIsAllocationFree) {
  Workload w = MakeWorkload();
  Engine engine(w);
  obs::MetricsRegistry registry;
  obs::EngineObs eo = obs::RegisterEngineObs(registry, /*shard=*/0);
  obs::TraceClock clock;
  obs::TraceRing ring(&clock, /*source=*/0, /*capacity=*/4096);
  eo.ring = &ring;
  engine.SetObservability(&eo);
  ExpectZeroSteadyStateAllocs(engine, "metrics+trace");

  // The instrumentation actually fired during the run.
  EXPECT_GT(eo.released_events->value(), 0u);
  EXPECT_GT(eo.finalized_windows->value(), 0u);
  EXPECT_GT(eo.event_lateness->count(), 0u);
  EXPECT_GT(ring.emitted(), 0u);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_FALSE(snap.counters.empty());
}

}  // namespace
}  // namespace sharon
