// Lifecycle-reconstruction suite for the runtime telemetry layer
// (src/obs/ wired through ShardedRuntime, PlanManager, checkpoint).
//
// An adaptive drift run with a mid-stream checkpoint produces a merged
// trace from which every swap and checkpoint lifecycle must be
// reconstructible as paired begin/end events in causal order:
//   swap:       kSwapRequested -> kSwapBoundary -> per-shard
//               kSwapDualRunStart -> per-shard kSwapRetired
//   checkpoint: kCheckpointRequested -> per-shard kCheckpointQuiesce +
//               kCheckpointShardDone -> kCheckpointSealed
// and the folded metrics snapshot must agree with the runtime's own
// RuntimeStats rollups (one export surface, no second bookkeeping).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/adaptive/plan_manager.h"
#include "src/obs/exporter.h"
#include "src/planner/optimizer.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/drift.h"
#include "src/streamgen/rates.h"

namespace sharon {
namespace {

using adaptive::PlanManager;
using adaptive::PlanManagerOptions;
using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

struct DriftCase {
  DriftConfig config;
  Workload workload;
  std::vector<Event> events;  // sorted
  SharingPlan initial_plan;   // optimized for phase-0 rates only
};

DriftCase MakeDriftCase() {
  DriftCase c;
  c.config.num_types = 8;
  c.config.num_groups = 12;
  c.config.events_per_second = 600;
  c.config.phase_length = Seconds(20);
  c.config.num_phases = 2;
  c.config.seed = 11;
  Scenario s = GenerateDrift(c.config);
  const WindowSpec window{Seconds(10), Seconds(4)};
  c.workload = DriftWorkload(c.config, window, /*anchors_per_side=*/6,
                             /*bridges=*/3);
  c.events = std::move(s.events);
  CostModel cm(RatesOfSlice(c.events, 0, c.config.phase_length,
                            c.config.num_types));
  c.initial_plan = OptimizeGreedy(c.workload, cm).plan;
  return c;
}

PlanManagerOptions FastManagerOptions() {
  PlanManagerOptions opts;
  opts.epoch = Seconds(4);
  opts.window_epochs = 2;
  opts.drift_threshold = 0.3;
  opts.hysteresis = 0.05;
  return opts;
}

/// Events of `kind` whose `a` payload (the lifecycle id) equals `id`.
std::vector<obs::TraceEvent> EventsOf(const std::vector<obs::TraceEvent>& trace,
                                      obs::TraceKind kind, int64_t id) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : trace) {
    if (e.kind == kind && e.a == id) out.push_back(e);
  }
  return out;
}

uint64_t CounterSum(const obs::MetricsSnapshot& snap, const std::string& name) {
  uint64_t sum = 0;
  for (const auto& c : snap.counters) {
    if (c.name == name) sum += c.value;
  }
  return sum;
}

TEST(ObsRuntime, AdaptiveRunWithCheckpointReconstructsLifecycles) {
  DriftCase c = MakeDriftCase();
  DisorderConfig inj;
  inj.max_lateness = Seconds(2);
  inj.punctuation_period = Seconds(1);
  inj.seed = 0xabadcafe;
  const std::vector<Event> arrivals = InjectDisorder(c.events, inj);

  const size_t kShards = 2;
  RuntimeOptions opts;
  opts.num_shards = kShards;
  opts.batch_size = 32;
  opts.queue_capacity = 2;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = Seconds(2);
  opts.obs.metrics = true;
  opts.obs.trace = true;
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  ASSERT_NE(rt.telemetry(), nullptr);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "sharon_obs_runtime_ckpt")
          .string();
  std::filesystem::remove_all(dir);

  PlanManager mgr(c.workload, &rt, c.initial_plan, FastManagerOptions());
  rt.Start();
  // Checkpoint once the drift phase (and with it at least one swap
  // opportunity) has passed; retry while a swap is still draining. Starts
  // at 60% of the stream because a swap accepted near the END never
  // retires before Finish (no watermark past its boundary remains) and
  // would refuse the checkpoint for the whole tail.
  const size_t checkpoint_at = (arrivals.size() * 6) / 10;
  bool checkpoint_accepted = false;
  std::string last_refusal;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    mgr.Ingest(arrivals[i]);
    if (!checkpoint_accepted && i >= checkpoint_at && i % 256 == 0) {
      const ShardedRuntime::CheckpointRequest req = rt.RequestCheckpoint(dir);
      checkpoint_accepted = req.accepted;
      if (!req.accepted) last_refusal = req.reason;
    }
  }
  rt.Finish();

  ASSERT_TRUE(checkpoint_accepted) << last_refusal;
  ASSERT_TRUE(rt.last_checkpoint().ok) << rt.last_checkpoint().reason;
  ASSERT_GE(mgr.stats().swaps_accepted, 1u);

  const std::vector<obs::TraceEvent> trace = rt.DumpTrace();
  ASSERT_FALSE(trace.empty());
  // Nothing was overwritten, so the reconstruction below sees every event.
  EXPECT_EQ(rt.telemetry()->trace_dropped(), 0u);
  // The merged dump is ordered.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].nanos, trace[i - 1].nanos);
  }
  const uint32_t control = rt.telemetry()->control_source();

  // --- swap lifecycles, paired per swap id ----------------------------
  const runtime::RuntimeStats stats = rt.stats();
  ASSERT_EQ(stats.CompletedSwaps(), mgr.stats().swaps_accepted);
  std::map<int64_t, size_t> requested_ids;
  for (const obs::TraceEvent& e : trace) {
    if (e.kind == obs::TraceKind::kSwapRequested) ++requested_ids[e.a];
  }
  EXPECT_EQ(requested_ids.size(), mgr.stats().swaps_accepted);
  for (const runtime::PlanSwapStats& swap : stats.plan_swaps) {
    const int64_t id = static_cast<int64_t>(swap.id);
    const auto req = EventsOf(trace, obs::TraceKind::kSwapRequested, id);
    const auto boundary = EventsOf(trace, obs::TraceKind::kSwapBoundary, id);
    const auto starts = EventsOf(trace, obs::TraceKind::kSwapDualRunStart, id);
    const auto retired = EventsOf(trace, obs::TraceKind::kSwapRetired, id);
    ASSERT_EQ(req.size(), 1u) << "swap " << id;
    ASSERT_EQ(boundary.size(), 1u) << "swap " << id;
    ASSERT_EQ(starts.size(), kShards) << "swap " << id;
    ASSERT_EQ(retired.size(), kShards) << "swap " << id;
    EXPECT_EQ(req[0].source, control);
    EXPECT_EQ(boundary[0].stream_time, swap.boundary);
    // Causal order: the request happens-before every shard's dual-run
    // start, which happens-before that same shard's retirement.
    std::map<uint32_t, uint64_t> start_nanos;
    for (const obs::TraceEvent& s : starts) {
      EXPECT_GE(s.nanos, req[0].nanos) << "swap " << id;
      EXPECT_EQ(s.stream_time, swap.boundary) << "swap " << id;
      start_nanos[s.source] = s.nanos;
    }
    int64_t teed_total = 0;
    for (const obs::TraceEvent& r : retired) {
      ASSERT_TRUE(start_nanos.count(r.source)) << "swap " << id;
      EXPECT_GE(r.nanos, start_nanos[r.source]) << "swap " << id;
      teed_total += r.b;
    }
    EXPECT_EQ(teed_total, static_cast<int64_t>(swap.teed_events))
        << "swap " << id;
  }
  // Every re-optimization decision follows a trigger, all on the control
  // ring, and at least one decision accepted a swap.
  size_t triggers = 0, accepts = 0;
  for (const obs::TraceEvent& e : trace) {
    if (e.kind == obs::TraceKind::kReoptTriggered) {
      EXPECT_EQ(e.source, control);
      ++triggers;
    }
    if (e.kind == obs::TraceKind::kReoptDecision &&
        e.a == static_cast<int64_t>(obs::ReoptOutcome::kSwapAccepted)) {
      ++accepts;
    }
  }
  EXPECT_GE(triggers, mgr.stats().evaluations);
  EXPECT_EQ(accepts, mgr.stats().swaps_accepted);

  // --- checkpoint lifecycle, paired per checkpoint id -----------------
  const int64_t ckpt_id = static_cast<int64_t>(rt.last_checkpoint().id);
  const auto creq = EventsOf(trace, obs::TraceKind::kCheckpointRequested,
                             ckpt_id);
  const auto quiesce = EventsOf(trace, obs::TraceKind::kCheckpointQuiesce,
                                ckpt_id);
  const auto shard_done = EventsOf(trace, obs::TraceKind::kCheckpointShardDone,
                                   ckpt_id);
  const auto sealed = EventsOf(trace, obs::TraceKind::kCheckpointSealed,
                               ckpt_id);
  ASSERT_EQ(creq.size(), 1u);
  ASSERT_EQ(quiesce.size(), kShards);
  ASSERT_EQ(shard_done.size(), kShards);
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(creq[0].source, control);
  EXPECT_EQ(sealed[0].source, control);
  int64_t bytes_total = 0;
  for (const obs::TraceEvent& d : shard_done) {
    EXPECT_GE(d.nanos, creq[0].nanos);
    EXPECT_LE(d.nanos, sealed[0].nanos);
    EXPECT_GT(d.b, 0);
    bytes_total += d.b;
  }
  EXPECT_EQ(sealed[0].b, bytes_total);
  EXPECT_EQ(sealed[0].stream_time, creq[0].stream_time);

  // Watermark progress was traced on every shard.
  std::map<uint32_t, size_t> advances;
  for (const obs::TraceEvent& e : trace) {
    if (e.kind == obs::TraceKind::kWatermarkAdvance) ++advances[e.source];
  }
  EXPECT_EQ(advances.size(), kShards);

  // --- folded metrics snapshot agree with RuntimeStats ----------------
  const obs::MetricsSnapshot snap = rt.TelemetrySnapshot();
  ASSERT_FALSE(snap.counters.empty());
  uint64_t data_events = 0;
  for (const Event& e : arrivals) {
    if (!IsWatermark(e)) ++data_events;
  }
  EXPECT_EQ(CounterSum(snap, "sharon_shard_events_total"), data_events);
  EXPECT_EQ(CounterSum(snap, "sharon_ingest_events_total"), data_events);
  EXPECT_EQ(CounterSum(snap, "sharon_swap_requests_total"),
            mgr.stats().swaps_accepted);
  EXPECT_EQ(CounterSum(snap, "sharon_swaps_retired_total"),
            mgr.stats().swaps_accepted * kShards);
  EXPECT_EQ(CounterSum(snap, "sharon_checkpoint_requests_total"), 1u);
  EXPECT_EQ(CounterSum(snap, "sharon_checkpoints_sealed_total"), 1u);
  EXPECT_EQ(CounterSum(snap, "sharon_checkpoint_bytes_total"),
            static_cast<uint64_t>(bytes_total));
  EXPECT_EQ(CounterSum(snap, "sharon_late_dropped_total"), 0u);
  // Fold-time gauges carry the RuntimeStats rollups.
  int64_t completed_swaps = -1, wall_micros = -1;
  for (const auto& g : snap.gauges) {
    if (g.name == "sharon_completed_swaps") completed_swaps = g.value;
    if (g.name == "sharon_wall_micros") wall_micros = g.value;
  }
  EXPECT_EQ(completed_swaps,
            static_cast<int64_t>(mgr.stats().swaps_accepted));
  EXPECT_GT(wall_micros, 0);

  // The snapshot serializes under both wire formats.
  const std::string json = obs::MetricsJsonLine(snap, 0, stats.wall_seconds);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("sharon_shard_events_total"), std::string::npos);
  const std::string prom = obs::PrometheusText(snap);
  EXPECT_NE(prom.find("# TYPE sharon_shard_events_total counter"),
            std::string::npos);

  std::filesystem::remove_all(dir);
}

// Observability fully off: no telemetry hub, empty snapshot and trace —
// the seed behavior is untouched by default.
TEST(ObsRuntime, DisabledByDefault) {
  DriftCase c = MakeDriftCase();
  RuntimeOptions opts;
  opts.num_shards = 2;
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  EXPECT_EQ(rt.telemetry(), nullptr);
  EXPECT_EQ(rt.control_trace(), nullptr);
  rt.Run(c.events, 0);
  EXPECT_TRUE(rt.TelemetrySnapshot().counters.empty());
  EXPECT_TRUE(rt.DumpTrace().empty());
}

// Metrics without tracing: counters live, no rings anywhere.
TEST(ObsRuntime, MetricsOnlyRunCountsEvents) {
  DriftCase c = MakeDriftCase();
  RuntimeOptions opts;
  opts.num_shards = 2;
  opts.obs.metrics = true;
  ShardedRuntime rt(c.workload, c.initial_plan, opts);
  ASSERT_TRUE(rt.ok()) << rt.error();
  ASSERT_NE(rt.telemetry(), nullptr);
  EXPECT_EQ(rt.control_trace(), nullptr);
  rt.Run(c.events, 0);
  EXPECT_TRUE(rt.DumpTrace().empty());
  const obs::MetricsSnapshot snap = rt.TelemetrySnapshot();
  EXPECT_EQ(CounterSum(snap, "sharon_shard_events_total"), c.events.size());
}

}  // namespace
}  // namespace sharon
