// Differential oracle suite for checkpoint/restore of executor state
// (src/checkpoint/ + ShardedRuntime::Checkpoint/Restore).
//
// The discipline mirrors tests/watermark_diff_test.cc: the relaxation
// under test is "the process may stop at an arbitrary point and a new
// incarnation (possibly with a different shard count) continues from the
// checkpoint". For TX / LR / EC the stream is split at a seeded random
// boundary: the prefix runs through one runtime which checkpoints and is
// destroyed, the suffix through a runtime restored from the checkpoint —
// at every (from, to) pair in {1,2,8} x {1,2,8} shards, sorted and
// disordered — and the finalized cells must be bit-identical to the
// sorted oracle for every (query, window, group). A restart is allowed to
// change WHERE cells are computed, never WHAT they contain.
//
// Also covers the non-uniform MultiEngine restore path (per-segment
// engine state) and the restored-runtime finalization surface.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/exec/engine.h"
#include "src/query/parser.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/ecommerce.h"
#include "src/streamgen/linear_road.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

CellMap CellsOf(const ShardedRuntime& rt) {
  CellMap cells;
  rt.results().ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

CellMap CellsOfCollector(const ResultCollector& collector) {
  CellMap cells;
  collector.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

void ExpectBitIdentical(const CellMap& expected, const CellMap& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, state] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end())
        << label << ": missing cell query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
    EXPECT_EQ(state, it->second)
        << label << ": cell differs at query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
  }
}

uint64_t SeedBase() {
  const char* env = std::getenv("SHARON_DISORDER_SEED_BASE");
  return env ? static_cast<uint64_t>(std::atoll(env)) : 0;
}

/// Fresh, empty checkpoint directory under the test temp root.
std::string CheckpointDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "sharon_ckpt_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

struct DiffCase {
  std::string name;
  Workload workload;
  SharingPlan plan;
  std::vector<Event> events;  // sorted
  CellMap oracle;
};

DiffCase MakeTaxiCase() {
  DiffCase c;
  c.name = "TX";
  TaxiConfig cfg;
  cfg.num_streets = 10;
  cfg.num_vehicles = 14;
  cfg.events_per_second = 500;
  cfg.duration = Seconds(32);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 6;
  wcfg.pattern_length = 4;
  wcfg.cluster_size = 3;
  wcfg.window = {Seconds(12), Seconds(5)};  // slide does not divide length
  wcfg.partition_attr = 0;
  c.workload = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  OptimizerConfig ocfg;
  ocfg.expand = false;
  c.plan = OptimizeSharon(c.workload, cm, ocfg).plan;
  c.events = std::move(s.events);
  c.oracle = CellsOfCollector(ReferenceResults(c.workload, c.events));
  return c;
}

DiffCase MakeLinearRoadCase() {
  DiffCase c;
  c.name = "LR";
  LinearRoadConfig cfg;
  cfg.num_segments = 8;
  cfg.num_cars = 12;
  cfg.start_rate = 100;
  cfg.end_rate = 700;
  cfg.duration = Seconds(32);
  Scenario s = GenerateLinearRoad(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 5;
  wcfg.pattern_length = 3;
  wcfg.cluster_size = 5;
  wcfg.window = {Seconds(10), Seconds(4)};
  wcfg.partition_attr = 0;
  c.workload = GenerateWorkload(wcfg, cfg.num_segments);
  // A-Seq (empty plan): the checkpoint machinery must be plan-agnostic.
  c.events = std::move(s.events);
  c.oracle = CellsOfCollector(ReferenceResults(c.workload, c.events));
  return c;
}

DiffCase MakeEcommerceCase() {
  DiffCase c;
  c.name = "EC";
  EcommerceConfig cfg;
  cfg.num_items = 15;
  cfg.num_customers = 10;
  cfg.events_per_second = 450;
  cfg.duration = Seconds(36);
  Scenario s = GenerateEcommerce(cfg);

  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 15 sec SLIDE 6 sec",
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Adapter) "
           "WHERE [customer] WITHIN 15 sec SLIDE 6 sec",
           "RETURN SUM(Case.price) PATTERN SEQ(Laptop, Case) "
           "WHERE [customer] WITHIN 15 sec SLIDE 6 sec",
           "RETURN MAX(iPhone.price) PATTERN SEQ(iPhone, ScreenProtector) "
           "WHERE [customer] WITHIN 15 sec SLIDE 6 sec",
       }) {
    ParseResult parsed = ParseQuery(text, s.types, s.schema);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    c.workload.Add(parsed.query);
  }
  CostModel cm(EstimateRates(s));
  c.plan = OptimizeSharon(c.workload, cm).plan;
  c.events = std::move(s.events);
  c.oracle = CellsOfCollector(ReferenceResults(c.workload, c.events));
  return c;
}

RuntimeOptions OptionsFor(size_t shards, Duration lateness) {
  RuntimeOptions opts;
  opts.num_shards = shards;
  opts.batch_size = 64;
  opts.queue_capacity = 8;
  opts.disorder.enabled = true;
  opts.disorder.max_lateness = lateness;
  return opts;
}

/// Drives `[begin, end)` of `arrivals` through `producers` ingest
/// partitions from the calling thread: data events round-robin,
/// punctuations broadcast to every partition (tests/hotpath_diff_test.cc
/// discipline). producers == 1 degenerates to plain Ingest.
void SplitIngestRange(ShardedRuntime& rt, const std::vector<Event>& arrivals,
                      size_t begin, size_t end, size_t producers) {
  size_t rr = 0;
  for (size_t i = begin; i < end; ++i) {
    const Event& e = arrivals[i];
    if (IsWatermark(e)) {
      for (size_t p = 0; p < producers; ++p) {
        rt.ingest_partition(p).IngestWatermark(e.time);
      }
    } else {
      rt.ingest_partition(rr++ % producers).Ingest(e);
    }
  }
}

/// One checkpoint round trip: prefix through a fresh runtime at
/// `from_shards` x `from_producers`, Checkpoint, destroy, Restore at
/// `to_shards` x `to_producers`, suffix, Finish — finalized cells must
/// equal the uninterrupted (single-stream) oracle.
void RunRoundTrip(const DiffCase& c, const std::vector<Event>& arrivals,
                  Duration lateness, size_t from_shards, size_t to_shards,
                  size_t split, const std::string& label,
                  size_t from_producers = 1, size_t to_producers = 1) {
  const std::string dir = CheckpointDir(label);
  uint64_t checkpoint_id = 0;
  {
    RuntimeOptions opts = OptionsFor(from_shards, lateness);
    opts.ingest_partitions = from_producers;
    ShardedRuntime rt(c.workload, c.plan, opts);
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Start();
    SplitIngestRange(rt, arrivals, 0, split, from_producers);
    const ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
    ASSERT_TRUE(cp.ok) << label << ": " << cp.reason;
    EXPECT_GT(cp.bytes, 0u) << label;
    EXPECT_TRUE(std::filesystem::exists(cp.manifest_path)) << label;
    // The recorded boundary sits on the workload's window-close grid.
    const WindowSpec& w = c.workload.window();
    EXPECT_EQ((cp.boundary - w.length) % w.slide, 0)
        << label << ": boundary off the window-close grid";
    checkpoint_id = cp.id;
    // The first incarnation is destroyed WITHOUT draining the rest of the
    // stream — everything the second incarnation needs is on disk.
  }
  ShardedRuntime::RestoreOptions ropts;
  ropts.runtime = OptionsFor(to_shards, lateness);
  ropts.runtime.ingest_partitions = to_producers;
  ropts.workload = &c.workload;
  ropts.plan = c.plan;
  ShardedRuntime::RestoreOutcome restored = ShardedRuntime::Restore(dir, ropts);
  ASSERT_TRUE(restored.runtime) << label << ": " << restored.error;
  ShardedRuntime& rt = *restored.runtime;
  ASSERT_TRUE(rt.ok()) << rt.error();
  ASSERT_NE(rt.restored_from(), nullptr) << label;
  EXPECT_EQ(rt.restored_from()->checkpoint_id, checkpoint_id) << label;
  EXPECT_EQ(restored.manifest.num_shards, from_shards) << label;
  EXPECT_EQ(rt.num_shards(), to_shards) << label;

  rt.Start();
  SplitIngestRange(rt, arrivals, split, arrivals.size(), to_producers);
  rt.Finish();

  ExpectBitIdentical(c.oracle, CellsOf(rt), label);
  for (const auto& [key, state] : c.oracle) {
    EXPECT_TRUE(rt.results().Finalized(std::get<0>(key), std::get<1>(key)))
        << label;
  }
  EXPECT_EQ(rt.stats().TotalLateDropped(), 0u)
      << label << ": restore must not re-classify in-budget events as late";
  std::filesystem::remove_all(dir);
}

/// The full (from, to) matrix at one lateness budget, split points drawn
/// from a seeded RNG per combination (the "random boundaries" of the
/// acceptance criteria — reproducible via SHARON_DISORDER_SEED_BASE).
void RunCheckpointDifferential(const DiffCase& c, Duration lateness) {
  ASSERT_FALSE(c.oracle.empty()) << c.name;
  const WindowSpec& w = c.workload.window();
  DisorderConfig inj;
  inj.max_lateness = lateness;
  inj.punctuation_period = w.slide / 2 > 0 ? w.slide / 2 : 1;
  inj.seed = 0xc0ffee + static_cast<uint64_t>(lateness) + SeedBase();
  const std::vector<Event> arrivals = InjectDisorder(c.events, inj);
  ASSERT_LE(ObservedLateness(arrivals), lateness) << c.name;

  // Besides the single-producer baseline, every (from, to) shard pair
  // also runs one multi-producer combination — cycling through 3->1,
  // 1->3 and 3->3 ingest partitions so the matrix covers checkpointing
  // UNDER multiple producers, restoring INTO a different producer count,
  // and both at once, against the same single-stream oracle.
  static constexpr std::pair<size_t, size_t> kProducerPairs[] = {
      {3, 1}, {1, 3}, {3, 3}};
  size_t combo = 0;
  for (size_t from_shards : {1u, 2u, 8u}) {
    for (size_t to_shards : {1u, 2u, 8u}) {
      std::mt19937_64 rng(SeedBase() * 7919 + from_shards * 131 +
                          to_shards * 17 + static_cast<uint64_t>(lateness));
      const size_t lo = arrivals.size() / 5;
      const size_t hi = arrivals.size() * 4 / 5;
      const size_t split =
          lo + static_cast<size_t>(rng() % static_cast<uint64_t>(hi - lo));
      const std::string label = c.name + "_lat" + std::to_string(lateness) +
                                "_" + std::to_string(from_shards) + "to" +
                                std::to_string(to_shards);
      RunRoundTrip(c, arrivals, lateness, from_shards, to_shards, split,
                   label);
      const auto [from_producers, to_producers] =
          kProducerPairs[combo++ % std::size(kProducerPairs)];
      RunRoundTrip(c, arrivals, lateness, from_shards, to_shards, split,
                   label + "_p" + std::to_string(from_producers) + "to" +
                       std::to_string(to_producers),
                   from_producers, to_producers);
    }
  }
}

TEST(CheckpointDifferential, TaxiSortedMatchesOracle) {
  RunCheckpointDifferential(MakeTaxiCase(), /*lateness=*/0);
}

TEST(CheckpointDifferential, TaxiDisorderedMatchesOracle) {
  DiffCase c = MakeTaxiCase();
  RunCheckpointDifferential(c, /*lateness=*/c.workload.window().slide);
}

TEST(CheckpointDifferential, LinearRoadSortedMatchesOracle) {
  RunCheckpointDifferential(MakeLinearRoadCase(), /*lateness=*/0);
}

TEST(CheckpointDifferential, LinearRoadDisorderedMatchesOracle) {
  DiffCase c = MakeLinearRoadCase();
  RunCheckpointDifferential(c, /*lateness=*/c.workload.window().slide);
}

TEST(CheckpointDifferential, EcommerceSortedMatchesOracle) {
  RunCheckpointDifferential(MakeEcommerceCase(), /*lateness=*/0);
}

TEST(CheckpointDifferential, EcommerceDisorderedMatchesOracle) {
  DiffCase c = MakeEcommerceCase();
  RunCheckpointDifferential(c, /*lateness=*/c.workload.window().slide);
}

// Non-uniform workload (different windows): per-segment engine state
// round-trips through the MultiEngine save/load path, including restore
// into a different shard count.
TEST(CheckpointDifferential, MultiEngineNonUniformWindowsRoundTrip) {
  EcommerceConfig cfg;
  cfg.num_items = 12;
  cfg.num_customers = 8;
  cfg.events_per_second = 400;
  cfg.duration = Seconds(40);
  Scenario s = GenerateEcommerce(cfg);

  Workload w;
  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 10 sec SLIDE 4 sec",
           "RETURN SUM(Case.price) PATTERN SEQ(Laptop, Case, Adapter) "
           "WHERE [customer] WITHIN 10 sec SLIDE 4 sec",
           "RETURN COUNT(*) PATTERN SEQ(iPhone, ScreenProtector) "
           "WHERE [customer] WITHIN 18 sec SLIDE 5 sec",
       }) {
    ParseResult parsed = ParseQuery(text, s.types, s.schema);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    w.Add(parsed.query);
  }

  // Per-query oracle on the sorted stream, keyed by original query id.
  CellMap oracle;
  for (const Query& q : w.queries()) {
    Workload single;
    Query copy = q;
    single.Add(copy);
    const ResultCollector ref = ReferenceResults(single, s.events);
    ref.ForEachCell([&](const ResultKey& key, const AggState& state) {
      oracle[{q.id, key.window, key.group}] = state;
    });
  }
  ASSERT_FALSE(oracle.empty());

  const Duration lateness = Seconds(4);
  DisorderConfig inj;
  inj.max_lateness = lateness;
  inj.punctuation_period = Seconds(2);
  inj.seed = 99 + SeedBase();
  const std::vector<Event> arrivals = InjectDisorder(s.events, inj);

  CostModel cm(EstimateRates(s));
  auto plan = PlanMultiEngine(w, cm);
  ASSERT_TRUE(plan->ok()) << plan->error;

  for (auto [from_shards, to_shards] :
       {std::pair<size_t, size_t>{1, 8}, {8, 2}, {2, 2}}) {
    const std::string label = "multi_" + std::to_string(from_shards) + "to" +
                              std::to_string(to_shards);
    const std::string dir = CheckpointDir(label);
    const size_t split = arrivals.size() / 2 + from_shards * 97;
    {
      ShardedRuntime rt(w, plan, OptionsFor(from_shards, lateness));
      ASSERT_TRUE(rt.ok()) << rt.error();
      rt.Start();
      for (size_t i = 0; i < split; ++i) rt.Ingest(arrivals[i]);
      const ShardedRuntime::CheckpointResult cp = rt.Checkpoint(dir);
      ASSERT_TRUE(cp.ok) << label << ": " << cp.reason;
    }
    ShardedRuntime::RestoreOptions ropts;
    ropts.runtime = OptionsFor(to_shards, lateness);
    ropts.workload = &w;
    ropts.multi_plan = plan;
    ShardedRuntime::RestoreOutcome restored =
        ShardedRuntime::Restore(dir, ropts);
    ASSERT_TRUE(restored.runtime) << label << ": " << restored.error;
    ShardedRuntime& rt = *restored.runtime;
    rt.Start();
    for (size_t i = split; i < arrivals.size(); ++i) rt.Ingest(arrivals[i]);
    rt.Finish();
    ExpectBitIdentical(oracle, CellsOf(rt), label);
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace sharon
