// Ground-truth tests reproducing the paper's running example end to end:
// Table 1 (sharing candidates), Fig. 4 (the Sharon graph), Example 7
// (GWMIN bound and conflict-ridden pruning), Example 8/9 (conflict-free
// extraction and search-space reduction), Example 10 (the 10-plan valid
// space), and Example 12 (greedy score 43 vs optimal score 50).

#include <gtest/gtest.h>

#include <map>

#include "src/graph/gwmin.h"
#include "src/graph/reduction.h"
#include "src/graph/sharon_graph.h"
#include "src/planner/optimizer.h"
#include "src/planner/plan_finder.h"
#include "src/sharing/ccspan.h"
#include "src/streamgen/fixtures.h"

namespace sharon {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeTrafficFixture();
    candidates_ = FindSharableCandidates(fixture_.workload);
    weight_ = [this](const Candidate& c) {
      for (const auto& [p, w] : fixture_.paper_weights) {
        if (p == c.pattern) return w;
      }
      return 0.0;
    };
    graph_ = SharonGraph::Build(fixture_.workload, candidates_, weight_);
  }

  // Vertex id of paper candidate p<i> (1-based) in graph_.
  VertexId VertexOf(size_t i) const {
    const Pattern& p = fixture_.paper_patterns[i - 1];
    for (VertexId v = 0; v < graph_.capacity(); ++v) {
      if (graph_.candidate(v).pattern == p) return v;
    }
    ADD_FAILURE() << "pattern p" << i << " not in graph";
    return 0;
  }

  TrafficFixture fixture_;
  std::vector<Candidate> candidates_;
  SharonGraph::WeightFn weight_;
  SharonGraph graph_;
};

TEST_F(PaperExampleTest, Table1CandidatesExactly) {
  // CCSpan must find exactly p1..p7 with the paper's query sets.
  ASSERT_EQ(candidates_.size(), 7u);
  std::map<std::vector<EventTypeId>, QueryList> found;
  for (const Candidate& c : candidates_) {
    found[c.pattern.types()] = c.queries;
  }
  // Table 1 query sets (ids are 0-based: q1 -> 0).
  EXPECT_EQ(found.at(fixture_.paper_patterns[0].types()),
            (QueryList{0, 1, 2, 3}));  // p1: q1-q4
  EXPECT_EQ(found.at(fixture_.paper_patterns[1].types()),
            (QueryList{2, 3}));  // p2: q3, q4
  EXPECT_EQ(found.at(fixture_.paper_patterns[2].types()),
            (QueryList{2, 3}));  // p3: q3, q4
  EXPECT_EQ(found.at(fixture_.paper_patterns[3].types()),
            (QueryList{1, 3}));  // p4: q2, q4
  EXPECT_EQ(found.at(fixture_.paper_patterns[4].types()),
            (QueryList{1, 3}));  // p5: q2, q4
  EXPECT_EQ(found.at(fixture_.paper_patterns[5].types()),
            (QueryList{0, 4}));  // p6: q1, q5
  EXPECT_EQ(found.at(fixture_.paper_patterns[6].types()),
            (QueryList{5, 6}));  // p7: q6, q7
}

TEST_F(PaperExampleTest, Fig4GraphShape) {
  ASSERT_EQ(graph_.num_vertices(), 7u);
  // Degrees from Example 7's denominators: 25/6, 9/4, 12/5, 15/4, 20/5,
  // 8/2, 18/1 -> degrees 5, 3, 4, 3, 4, 1, 0.
  const size_t expected_degree[] = {5, 3, 4, 3, 4, 1, 0};
  for (size_t i = 1; i <= 7; ++i) {
    EXPECT_EQ(graph_.Degree(VertexOf(i)), expected_degree[i - 1])
        << "degree of p" << i;
    EXPECT_EQ(graph_.weight(VertexOf(i)), fixture_.paper_weights[i - 1].second);
  }
  // Spot-check edges: p2-p4 do NOT conflict (Example 5), p1-p2 do.
  EXPECT_FALSE(graph_.HasEdge(VertexOf(2), VertexOf(4)));
  EXPECT_TRUE(graph_.HasEdge(VertexOf(1), VertexOf(2)));
  EXPECT_TRUE(graph_.HasEdge(VertexOf(1), VertexOf(6)));
  EXPECT_TRUE(graph_.HasEdge(VertexOf(3), VertexOf(5)));
}

TEST_F(PaperExampleTest, Example7GuaranteedWeight) {
  // 25/6 + 9/4 + 12/5 + 15/4 + 20/5 + 8/2 + 18/1 ~= 38.57.
  EXPECT_NEAR(graph_.GuaranteedWeight(), 38.566, 0.01);
  // Scoremax(p3) = BValue(p3) + BValue(p6) + BValue(p7) = 38.
  EXPECT_DOUBLE_EQ(graph_.ScoreMax(VertexOf(3)), 38.0);
  EXPECT_LT(graph_.ScoreMax(VertexOf(3)), graph_.GuaranteedWeight());
}

TEST_F(PaperExampleTest, Example8And9Reduction) {
  VertexId p3 = VertexOf(3);
  VertexId p7 = VertexOf(7);
  ReductionResult red = ReduceGraph(graph_);
  // p3 is conflict-ridden (Example 7), p7 conflict-free (Example 8).
  EXPECT_EQ(red.pruned_ridden, std::vector<VertexId>{p3});
  EXPECT_EQ(red.conflict_free, std::vector<VertexId>{p7});
  // Five candidates remain: p1, p2, p4, p5, p6 (Example 9).
  EXPECT_EQ(red.remaining, 5u);
  EXPECT_FALSE(graph_.alive(p3));
  EXPECT_FALSE(graph_.alive(p7));
}

TEST_F(PaperExampleTest, Example10TenValidPlans) {
  ReduceGraph(graph_);
  PlanFinderResult found = FindOptimalPlan(graph_);
  EXPECT_TRUE(found.completed);
  // Example 10: the valid space after reduction has exactly 10 plans.
  EXPECT_EQ(found.plans_considered, 10u);
  // The optimal sub-plan over the reduced graph is {p2, p4, p6}: 9+15+8.
  EXPECT_DOUBLE_EQ(found.best_score, 32.0);
}

TEST_F(PaperExampleTest, Example12GreedyVsOptimal) {
  OptimizerResult greedy =
      OptimizeGreedy(fixture_.workload, candidates_, weight_);
  EXPECT_DOUBLE_EQ(greedy.score, 43.0);  // {p1, p7}
  ASSERT_EQ(greedy.plan.size(), 2u);

  OptimizerConfig config;
  config.expand = false;  // Example 12 compares on the original graph
  OptimizerResult sharon =
      OptimizeSharon(fixture_.workload, candidates_, weight_, config);
  EXPECT_TRUE(sharon.completed);
  EXPECT_DOUBLE_EQ(sharon.score, 50.0);  // {p2, p4, p6, p7}
  ASSERT_EQ(sharon.plan.size(), 4u);

  // Optimal plan contents: p2, p4, p6, p7 with Table 1 query sets.
  std::map<std::vector<EventTypeId>, QueryList> got;
  for (const Candidate& c : sharon.plan) got[c.pattern.types()] = c.queries;
  EXPECT_TRUE(got.count(fixture_.paper_patterns[1].types()));  // p2
  EXPECT_TRUE(got.count(fixture_.paper_patterns[3].types()));  // p4
  EXPECT_TRUE(got.count(fixture_.paper_patterns[5].types()));  // p6
  EXPECT_TRUE(got.count(fixture_.paper_patterns[6].types()));  // p7

  // Exhaustive search agrees with the plan finder.
  OptimizerConfig exh_config;
  exh_config.expand = false;
  OptimizerResult exhaustive = OptimizeExhaustive(
      fixture_.workload, candidates_, weight_, exh_config);
  EXPECT_TRUE(exhaustive.completed);
  EXPECT_DOUBLE_EQ(exhaustive.score, 50.0);
}

TEST_F(PaperExampleTest, Example5PlanScores) {
  // Plan {p2, p4} is valid with score 24; {p1} alone scores 25.
  VertexId p2 = VertexOf(2), p4 = VertexOf(4);
  EXPECT_FALSE(graph_.HasEdge(p2, p4));
  EXPECT_DOUBLE_EQ(graph_.WeightOf({p2, p4}), 24.0);
  EXPECT_DOUBLE_EQ(graph_.WeightOf({VertexOf(1)}), 25.0);
}

}  // namespace
}  // namespace sharon
