// Differential oracle suite for watermark-driven out-of-order ingestion.
//
// The verification discipline: every relaxation of the in-order
// assumption is checked against an exact reference that never relaxed it.
// For the TX / LR / EC workloads the same recorded stream is run twice —
// disordered (bounded lateness + punctuation watermarks) through the
// watermarked executors, and sorted through the independent per-window DP
// oracle (src/twostep/reference.h). After the closing watermark, the
// finalized results must be bit-identical for every (query, window,
// group) cell, at lateness budgets {0, 1, slide, length}, single-threaded
// and at 1/2/8 shards.
//
// Also covers the ResultMerger shard-minimum watermark surface: identical
// finalized window sets across shard counts, a stalled watermark holding
// the merged frontier (and the result surface) back, and resumption.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/exec/engine.h"
#include "src/planner/optimizer.h"
#include "src/query/parser.h"
#include "src/runtime/sharded_runtime.h"
#include "src/streamgen/disorder.h"
#include "src/streamgen/ecommerce.h"
#include "src/streamgen/linear_road.h"
#include "src/streamgen/rates.h"
#include "src/streamgen/taxi.h"
#include "src/streamgen/workload_gen.h"
#include "src/twostep/reference.h"

namespace sharon {
namespace {

using runtime::RuntimeOptions;
using runtime::ShardedRuntime;

using CellMap = std::map<std::tuple<QueryId, WindowId, AttrValue>, AggState>;

CellMap CellsOf(const ResultCollector& collector) {
  CellMap cells;
  collector.ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

CellMap CellsOf(const ShardedRuntime& rt) {
  CellMap cells;
  rt.results().ForEachCell([&](const ResultKey& key, const AggState& state) {
    cells[{key.query, key.window, key.group}] = state;
  });
  return cells;
}

void ExpectBitIdentical(const CellMap& expected, const CellMap& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, state] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end())
        << label << ": missing cell query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
    EXPECT_EQ(state, it->second)
        << label << ": cell differs at query=" << std::get<0>(key)
        << " window=" << std::get<1>(key) << " group=" << std::get<2>(key);
  }
}

/// One differential case: a sorted stream, a uniform workload and a
/// sharing plan. The oracle runs on the sorted stream once.
struct DiffCase {
  std::string name;
  Workload workload;
  SharingPlan plan;
  std::vector<Event> events;  // sorted
  CellMap oracle;
};

DiffCase MakeTaxiCase() {
  DiffCase c;
  c.name = "TX";
  TaxiConfig cfg;
  cfg.num_streets = 10;
  cfg.num_vehicles = 16;
  cfg.events_per_second = 600;
  cfg.duration = Seconds(40);
  Scenario s = GenerateTaxi(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 6;
  wcfg.pattern_length = 4;
  wcfg.cluster_size = 3;
  wcfg.window = {Seconds(12), Seconds(5)};  // slide does not divide length
  wcfg.partition_attr = 0;
  c.workload = GenerateWorkload(wcfg, cfg.num_streets);

  CostModel cm(EstimateRates(s));
  OptimizerConfig ocfg;
  ocfg.expand = false;
  c.plan = OptimizeSharon(c.workload, cm, ocfg).plan;
  c.events = std::move(s.events);
  c.oracle = CellsOf(ReferenceResults(c.workload, c.events));
  return c;
}

DiffCase MakeLinearRoadCase() {
  DiffCase c;
  c.name = "LR";
  LinearRoadConfig cfg;
  cfg.num_segments = 8;
  cfg.num_cars = 12;
  cfg.start_rate = 100;
  cfg.end_rate = 800;
  cfg.duration = Seconds(40);
  Scenario s = GenerateLinearRoad(cfg);

  WorkloadGenConfig wcfg;
  wcfg.num_queries = 5;
  wcfg.pattern_length = 3;
  wcfg.cluster_size = 5;
  wcfg.window = {Seconds(10), Seconds(4)};
  wcfg.partition_attr = 0;
  c.workload = GenerateWorkload(wcfg, cfg.num_segments);
  // A-Seq (empty plan): the disorder machinery must be plan-agnostic.
  c.events = std::move(s.events);
  c.oracle = CellsOf(ReferenceResults(c.workload, c.events));
  return c;
}

DiffCase MakeEcommerceCase() {
  DiffCase c;
  c.name = "EC";
  EcommerceConfig cfg;
  cfg.num_items = 15;
  cfg.num_customers = 10;
  cfg.events_per_second = 500;
  cfg.duration = Seconds(50);
  Scenario s = GenerateEcommerce(cfg);

  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 15 sec SLIDE 6 sec",
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case, Adapter) "
           "WHERE [customer] WITHIN 15 sec SLIDE 6 sec",
           "RETURN SUM(Case.price) PATTERN SEQ(Laptop, Case) "
           "WHERE [customer] WITHIN 15 sec SLIDE 6 sec",
           "RETURN MAX(iPhone.price) PATTERN SEQ(iPhone, ScreenProtector) "
           "WHERE [customer] WITHIN 15 sec SLIDE 6 sec",
       }) {
    ParseResult parsed = ParseQuery(text, s.types, s.schema);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    c.workload.Add(parsed.query);
  }
  CostModel cm(EstimateRates(s));
  c.plan = OptimizeSharon(c.workload, cm).plan;
  c.events = std::move(s.events);
  c.oracle = CellsOf(ReferenceResults(c.workload, c.events));
  return c;
}

std::vector<Duration> LatenessBudgets(const WindowSpec& w) {
  return {0, 1, w.slide, w.length};
}

DisorderConfig InjectionFor(Duration lateness, const WindowSpec& w) {
  DisorderConfig d;
  d.max_lateness = lateness;
  d.punctuation_period = w.slide / 2 > 0 ? w.slide / 2 : 1;
  d.seed = 0xdeadbeef + static_cast<uint64_t>(lateness);
  return d;
}

void RunDifferential(const DiffCase& c) {
  ASSERT_FALSE(c.oracle.empty()) << c.name;
  const WindowSpec& w = c.workload.window();
  for (Duration lateness : LatenessBudgets(w)) {
    const DisorderConfig inj = InjectionFor(lateness, w);
    const std::vector<Event> disordered = InjectDisorder(c.events, inj);
    ASSERT_LE(ObservedLateness(disordered), lateness) << c.name;
    // The injection is a permutation: sorting it back gives the input.
    ASSERT_EQ(SortedDataEvents(disordered).size(), c.events.size());

    DisorderPolicy policy;
    policy.enabled = true;
    policy.max_lateness = lateness;

    // Single-threaded watermarked engine.
    {
      Engine engine(c.workload, c.plan);
      ASSERT_TRUE(engine.ok()) << engine.error();
      engine.SetDisorderPolicy(policy);
      for (const Event& e : disordered) engine.OnEvent(e);
      engine.CloseStream();
      ExpectBitIdentical(c.oracle, CellsOf(engine.results()),
                         c.name + " engine lateness=" +
                             std::to_string(lateness));
      // Everything was finalized and the reorder buffer fully drained.
      EXPECT_EQ(engine.LiveStateSnapshot().buffered_events, 0u);
      EXPECT_EQ(engine.staged_results().size(), 0u);
      EXPECT_EQ(engine.watermark_stats().late_dropped, 0u)
          << c.name << ": injector must honour the declared budget";
    }

    // Sharded runtime at 1/2/8 shards: watermarks broadcast, results
    // merged, still bit-identical to the sorted oracle.
    for (size_t shards : {1u, 2u, 8u}) {
      RuntimeOptions opts;
      opts.num_shards = shards;
      opts.batch_size = 64;
      opts.queue_capacity = 8;
      opts.disorder = policy;
      ShardedRuntime rt(c.workload, c.plan, opts);
      ASSERT_TRUE(rt.ok()) << rt.error();
      rt.Run(disordered, 0);
      ExpectBitIdentical(c.oracle, CellsOf(rt),
                         c.name + " shards=" + std::to_string(shards) +
                             " lateness=" + std::to_string(lateness));
      // The closing watermark finalized every window that has results.
      for (const auto& [key, state] : c.oracle) {
        EXPECT_TRUE(rt.results().Finalized(std::get<0>(key), std::get<1>(key)))
            << c.name << " shards=" << shards;
      }
      EXPECT_EQ(rt.stats().TotalLateDropped(), 0u);
    }
  }
}

TEST(WatermarkDifferential, TaxiMatchesSortedOracle) {
  RunDifferential(MakeTaxiCase());
}

TEST(WatermarkDifferential, LinearRoadMatchesSortedOracle) {
  RunDifferential(MakeLinearRoadCase());
}

TEST(WatermarkDifferential, EcommerceMatchesSortedOracle) {
  RunDifferential(MakeEcommerceCase());
}

// Non-uniform workload (different windows): each segment engine reorders
// and finalizes against its own window grid. Oracle = per-query reference
// over single-query workloads on the sorted stream.
TEST(WatermarkDifferential, MultiEngineNonUniformWindowsMatchOracle) {
  EcommerceConfig cfg;
  cfg.num_items = 12;
  cfg.num_customers = 8;
  cfg.events_per_second = 400;
  cfg.duration = Seconds(50);
  Scenario s = GenerateEcommerce(cfg);

  Workload w;
  for (const char* text : {
           "RETURN COUNT(*) PATTERN SEQ(Laptop, Case) WHERE [customer] "
           "WITHIN 10 sec SLIDE 4 sec",
           "RETURN SUM(Case.price) PATTERN SEQ(Laptop, Case, Adapter) "
           "WHERE [customer] WITHIN 10 sec SLIDE 4 sec",
           "RETURN COUNT(*) PATTERN SEQ(iPhone, ScreenProtector) "
           "WHERE [customer] WITHIN 18 sec SLIDE 5 sec",
       }) {
    ParseResult parsed = ParseQuery(text, s.types, s.schema);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    w.Add(parsed.query);
  }

  // Per-query oracle on the sorted stream, keyed by original query id.
  CellMap oracle;
  for (const Query& q : w.queries()) {
    Workload single;
    Query copy = q;
    single.Add(copy);
    const ResultCollector ref = ReferenceResults(single, s.events);
    ref.ForEachCell([&](const ResultKey& key, const AggState& state) {
      oracle[{q.id, key.window, key.group}] = state;
    });
  }
  ASSERT_FALSE(oracle.empty());

  const Duration lateness = Seconds(4);
  DisorderConfig inj;
  inj.max_lateness = lateness;
  inj.punctuation_period = Seconds(2);
  inj.seed = 99;
  const std::vector<Event> disordered = InjectDisorder(s.events, inj);

  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = lateness;

  CostModel cm(EstimateRates(s));
  auto plan = PlanMultiEngine(w, cm);
  ASSERT_TRUE(plan->ok()) << plan->error;

  // Single-threaded MultiEngine.
  {
    MultiEngine multi(plan);
    ASSERT_TRUE(multi.ok()) << multi.error();
    multi.SetDisorderPolicy(policy);
    for (const Event& e : disordered) multi.OnEvent(e);
    multi.CloseStream();
    for (const auto& [key, state] : oracle) {
      EXPECT_EQ(multi.Get(std::get<0>(key), std::get<1>(key),
                          std::get<2>(key)),
                state)
          << "query=" << std::get<0>(key) << " window=" << std::get<1>(key);
      EXPECT_TRUE(
          multi.Finalized(std::get<0>(key), std::get<1>(key)));
    }
    EXPECT_EQ(multi.watermark_stats().late_dropped, 0u);
  }

  // Sharded (MultiEngine per shard).
  for (size_t shards : {1u, 2u, 8u}) {
    RuntimeOptions opts;
    opts.num_shards = shards;
    opts.batch_size = 64;
    opts.queue_capacity = 8;
    opts.disorder = policy;
    ShardedRuntime rt(w, plan, opts);
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Run(disordered, 0);
    ExpectBitIdentical(oracle, CellsOf(rt),
                       "multi shards=" + std::to_string(shards));
  }
}

// --- ResultMerger shard-minimum watermark ---------------------------------

// All shard counts must finalize exactly the same window set, in the same
// (ascending, watermark-driven) order; a stalled watermark exposes only
// the finalized prefix; after the watermark resumes the remainder
// finalizes and matches the oracle.
TEST(ResultMergerWatermark, SameFinalizedWindowsAtAnyShardCount) {
  DiffCase c = MakeTaxiCase();
  const WindowSpec& w = c.workload.window();
  const Duration lateness = w.slide;
  const std::vector<Event> disordered =
      InjectDisorder(c.events, InjectionFor(lateness, w));

  // Watermark stalls at mid-stream: stop forwarding punctuations past
  // `stall_at`. Windows closing after the stalled safe point must not
  // finalize, and their cells must not appear in results().
  const Timestamp last_time = c.events.back().time;
  const Timestamp stall_at = last_time / 2;

  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = lateness;
  policy.close_on_finish = false;  // observe the stall, do not auto-close

  const Timestamp safe = policy.SafePoint(stall_at);
  const WindowId last_window = w.LastWindowCovering(last_time);

  std::vector<std::vector<bool>> finalized_by_run;
  for (size_t shards : {1u, 2u, 8u}) {
    RuntimeOptions opts;
    opts.num_shards = shards;
    opts.batch_size = 32;
    opts.queue_capacity = 8;
    opts.disorder = policy;
    ShardedRuntime rt(c.workload, c.plan, opts);
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Start();
    Timestamp applied = kNoWatermark;
    for (const Event& e : disordered) {
      if (IsWatermark(e)) {
        if (e.time <= stall_at) {
          rt.IngestWatermark(e.time);
          applied = e.time;
        }
        continue;  // watermark stalled
      }
      rt.Ingest(e);
    }
    rt.Finish();
    ASSERT_NE(applied, kNoWatermark);

    // Merged frontier is the shard minimum; every shard got the same
    // broadcast, so it equals the last applied punctuation.
    EXPECT_EQ(rt.results().MinWatermark(), applied)
        << "shards=" << shards;

    std::vector<bool> finalized;
    for (WindowId j = 0; j <= last_window; ++j) {
      const bool f = rt.results().Finalized(0, j);
      finalized.push_back(f);
      // Finalization follows the stalled safe point exactly.
      EXPECT_EQ(f, w.WindowEnd(j) <= policy.SafePoint(applied))
          << "shards=" << shards << " window=" << j;
    }
    finalized_by_run.push_back(std::move(finalized));

    // Results expose finalized windows only; each finalized cell matches
    // the oracle (the unfinalized remainder is withheld, not wrong).
    CellMap merged = CellsOf(rt);
    EXPECT_FALSE(merged.empty());
    for (const auto& [key, state] : merged) {
      EXPECT_TRUE(rt.results().Finalized(std::get<0>(key), std::get<1>(key)));
      auto it = c.oracle.find(key);
      ASSERT_NE(it, c.oracle.end());
      EXPECT_EQ(state, it->second);
    }
    EXPECT_LT(merged.size(), c.oracle.size())
        << "a stalled watermark must withhold the open windows";
  }
  // Identical finalized window sets (and therefore order: finalization
  // is monotone in window id) across 1/2/8 shards.
  EXPECT_EQ(finalized_by_run[0], finalized_by_run[1]);
  EXPECT_EQ(finalized_by_run[0], finalized_by_run[2]);
  (void)safe;
}

// A shard whose groups go quiet mid-stream still advances: watermarks are
// broadcast to every shard, so an idle shard cannot hold the merged
// frontier back, and resuming events finalize identically to the oracle.
TEST(ResultMergerWatermark, IdleShardResumesAndMatchesOracle) {
  DiffCase c = MakeTaxiCase();
  const WindowSpec& w = c.workload.window();

  // Phase 1: all groups active. Phase 2: only group 0's events (other
  // shards idle). Build the phased stream, then disorder it as a whole.
  const Timestamp split = c.events.back().time / 2;
  std::vector<Event> phased;
  for (const Event& e : c.events) {
    if (e.time <= split || e.attr(0) == 0) phased.push_back(e);
  }
  CellMap oracle = CellsOf(ReferenceResults(c.workload, phased));

  DisorderConfig inj = InjectionFor(w.slide, w);
  const std::vector<Event> disordered = InjectDisorder(phased, inj);

  DisorderPolicy policy;
  policy.enabled = true;
  policy.max_lateness = w.slide;

  for (size_t shards : {2u, 8u}) {
    RuntimeOptions opts;
    opts.num_shards = shards;
    opts.batch_size = 32;
    opts.queue_capacity = 8;
    opts.disorder = policy;
    ShardedRuntime rt(c.workload, c.plan, opts);
    ASSERT_TRUE(rt.ok()) << rt.error();
    rt.Run(disordered, 0);
    ExpectBitIdentical(oracle, CellsOf(rt),
                       "idle-resume shards=" + std::to_string(shards));
    // Every shard reached the closing watermark — idle ones included.
    const auto stats = rt.stats();
    ASSERT_EQ(stats.shard_watermarks.size(), shards);
    for (const WatermarkStats& ws : stats.shard_watermarks) {
      EXPECT_EQ(ws.watermark, kWatermarkMax);
    }
    for (const auto& [key, state] : oracle) {
      EXPECT_TRUE(rt.results().Finalized(std::get<0>(key), std::get<1>(key)));
    }
  }
}

}  // namespace
}  // namespace sharon
